#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "rt/rt_monitor.h"
#include "rt/rt_stats.h"

namespace ctrlshed {
namespace {

constexpr double kCost = 0.001;  // 1 ms nominal entry cost

RtMonitorOptions MonitorOptions() {
  RtMonitorOptions o;
  o.period = 1.0;
  o.headroom = 0.97;
  return o;
}

// Mimics one engine Publish: the worker republishes its cumulative
// counters back-to-back between pumps (single writer, relaxed stores).
void Publish(RtSharedStats* stats, uint64_t admitted, uint64_t departed,
             double busy, double drained, uint64_t queued,
             double outstanding) {
  stats->admitted.store(admitted, std::memory_order_relaxed);
  stats->departed.store(departed, std::memory_order_relaxed);
  stats->busy_seconds.store(busy, std::memory_order_relaxed);
  stats->drained_base_load.store(drained, std::memory_order_relaxed);
  stats->queued_tuples.store(queued, std::memory_order_relaxed);
  stats->outstanding_base_load.store(outstanding, std::memory_order_relaxed);
  stats->delay_sum.store(busy, std::memory_order_relaxed);
  stats->delay_count.store(departed, std::memory_order_relaxed);
}

// Regression for the documented Snapshot skew bound (rt_stats.h): a
// snapshot taken mid-pump mixes fresh ingress counters with engine
// mirrors from the previous Publish. The monitor's per-period deltas must
// stay non-negative anyway, because each field is individually monotonic —
// the exporter and timeline depend on that.
TEST(RtSharedStatsTest, MidPumpSkewNeverProducesNegativeRates) {
  RtSharedStats stats;
  RtMonitor monitor(kCost, MonitorOptions());

  // Period 1: sources offered 100; the engine has pumped and published
  // all of them.
  stats.offered.fetch_add(100, std::memory_order_relaxed);
  Publish(&stats, /*admitted=*/100, /*departed=*/90, /*busy=*/0.09,
          /*drained=*/0.09, /*queued=*/10, /*outstanding=*/10 * kCost);
  PeriodMeasurement m1 = monitor.Sample(stats.Snapshot(1.0), 2.0);
  EXPECT_GE(m1.fin, 0.0);
  EXPECT_GE(m1.admitted, 0.0);
  EXPECT_GE(m1.fout, 0.0);
  EXPECT_GE(m1.queue, 0.0);

  // Period 2, snapshot lands MID-PUMP: sources have already bumped
  // offered by another 80, but the engine mirrors are still the previous
  // Publish (it is holding those 80 tuples in the rings). This is the
  // worst skew Snapshot allows — engine fields lag by one pump.
  stats.offered.fetch_add(80, std::memory_order_relaxed);
  PeriodMeasurement m2 = monitor.Sample(stats.Snapshot(2.0), 2.0);
  EXPECT_GE(m2.fin, 0.0);
  EXPECT_GE(m2.admitted, 0.0);  // delta is 0, not negative
  EXPECT_GE(m2.fout, 0.0);
  EXPECT_GE(m2.queue, 0.0);
  EXPECT_DOUBLE_EQ(m2.admitted, 0.0);
  EXPECT_DOUBLE_EQ(m2.fin, 80.0);

  // Period 3: the engine caught up. Nothing went backwards, so the
  // catch-up shows as a burst, never a negative.
  Publish(&stats, /*admitted=*/180, /*departed=*/170, /*busy=*/0.17,
          /*drained=*/0.17, /*queued=*/10, /*outstanding=*/10 * kCost);
  PeriodMeasurement m3 = monitor.Sample(stats.Snapshot(3.0), 2.0);
  EXPECT_GE(m3.fin, 0.0);
  EXPECT_GE(m3.admitted, 0.0);
  EXPECT_GE(m3.fout, 0.0);
  EXPECT_DOUBLE_EQ(m3.admitted, 80.0);
}

// Cross-field invariants may be transiently violated by one in-flight
// pump (guarantee 2 in rt_stats.h) — the mid-pump snapshot above has
// admitted lagging offered — but each field alone must be monotonic
// non-decreasing across snapshots even while writers are live.
TEST(RtSharedStatsTest, SnapshotFieldsMonotonicUnderConcurrentWriters) {
  RtSharedStats stats;
  std::atomic<bool> stop{false};

  // Ingress writer: multi-writer counters, fetch_add relaxed.
  std::thread ingress([&] {
    while (!stop.load(std::memory_order_acquire)) {
      stats.offered.fetch_add(3, std::memory_order_relaxed);
      stats.entry_shed.fetch_add(1, std::memory_order_relaxed);
      stats.ring_dropped.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Engine writer: single-writer cumulative mirrors, plain stores of
  // ever-increasing values — exactly what RtEngine::Publish does.
  std::thread engine([&] {
    uint64_t admitted = 0;
    double busy = 0.0;
    while (!stop.load(std::memory_order_acquire)) {
      admitted += 2;
      busy += 0.0001;
      Publish(&stats, admitted, admitted, busy, busy, admitted % 7,
              (admitted % 7) * kCost);
    }
  });

  RtSample prev = stats.Snapshot(0.0);
  for (int i = 0; i < 20000; ++i) {
    const RtSample s = stats.Snapshot(static_cast<double>(i + 1));
    EXPECT_GE(s.offered, prev.offered);
    EXPECT_GE(s.entry_shed, prev.entry_shed);
    EXPECT_GE(s.ring_dropped, prev.ring_dropped);
    EXPECT_GE(s.admitted, prev.admitted);
    EXPECT_GE(s.departed, prev.departed);
    EXPECT_GE(s.busy_seconds, prev.busy_seconds);
    EXPECT_GE(s.drained_base_load, prev.drained_base_load);
    EXPECT_GE(s.delay_sum, prev.delay_sum);
    EXPECT_GE(s.delay_count, prev.delay_count);
    prev = s;
  }

  stop.store(true, std::memory_order_release);
  ingress.join();
  engine.join();
}

TEST(RtSharedStatsDeathTest, MonitorRejectsBackwardsTime) {
  RtSharedStats stats;
  RtMonitor monitor(kCost, MonitorOptions());
  stats.offered.fetch_add(10, std::memory_order_relaxed);
  monitor.Sample(stats.Snapshot(1.0), 2.0);
  EXPECT_DEATH(monitor.Sample(stats.Snapshot(0.5), 2.0), "forward");
}

}  // namespace
}  // namespace ctrlshed
