#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "control/pi_controller.h"
#include "workload/traces.h"

namespace ctrlshed {
namespace {

PeriodMeasurement MakeMeasurement(double y_hat, double fout, double cost,
                                  double queue = 0.0) {
  PeriodMeasurement m;
  m.period = 1.0;
  m.target_delay = 2.0;
  m.fout = fout;
  m.queue = queue;
  m.cost = cost;
  m.y_hat = y_hat;
  return m;
}

TEST(PiControllerTest, ProportionalActionOnFirstError) {
  PiController pi(0.97, PiController::Gains{0.5, 0.0});
  // e = 2 - 4 = -2; u = H/(cT) * 0.5 * (-2).
  const double v = pi.DesiredRate(MakeMeasurement(4.0, 100.0, 0.005));
  EXPECT_NEAR(v, 0.97 / 0.005 * 0.5 * (-2.0) + 100.0, 1e-9);
}

TEST(PiControllerTest, IntegralAccumulates) {
  PiController pi(1.0, PiController::Gains{0.0 + 1e-9, 0.1}, false);
  PeriodMeasurement m = MakeMeasurement(1.0, 0.0, 0.01);  // e = +1 each call
  const double v1 = pi.DesiredRate(m);
  const double v2 = pi.DesiredRate(m);
  EXPECT_NEAR(v2, 2.0 * v1, 1e-6);  // pure-integral command doubles
}

TEST(PiControllerTest, ClosedLoopConvergesOnModelPlant) {
  PiController pi(0.97);
  const double c = 0.005, H = 0.97, T = 1.0;
  const double service = H / c;
  double q = 2000.0;
  double y = 0.0;
  for (int k = 0; k < 150; ++k) {
    PeriodMeasurement m = MakeMeasurement((q + 1) * c / H, service, c, q);
    const double v = pi.DesiredRate(m);
    pi.NotifyActuation(v);
    q = std::max(0.0, q + T * (v - service));
    y = (q + 1) * c / H;
  }
  EXPECT_NEAR(y, 2.0, 0.05);
}

TEST(PiControllerTest, SlowerThanPaperDesignAtSameSmoothness) {
  // Count periods to settle within 5% from the same initial condition;
  // the paper's phase-lead design should not be slower than the PI tuned
  // to avoid oscillation.
  auto settle = [](auto& ctrl) {
    const double c = 0.005, H = 0.97, T = 1.0, service = H / c;
    double q = 2000.0;
    for (int k = 0; k < 200; ++k) {
      PeriodMeasurement m = MakeMeasurement((q + 1) * c / H, service, c, q);
      const double v = ctrl.DesiredRate(m);
      ctrl.NotifyActuation(v);
      q = std::max(0.0, q + T * (v - service));
      if (std::abs((q + 1) * c / H - 2.0) < 0.1) return k;
    }
    return 200;
  };
  PiController pi(0.97);
  const int pi_settle = settle(pi);
  EXPECT_GT(pi_settle, 0);
  EXPECT_LT(pi_settle, 100);  // it does converge, just not deadbeat-fast
}

TEST(PiControllerTest, AntiWindupLimitsIntegralRunaway) {
  auto run = [](bool aw) {
    PiController pi(0.97, PiController::Gains{0.5, 0.05}, aw);
    for (int k = 0; k < 30; ++k) {
      PeriodMeasurement m = MakeMeasurement(10.0, 50.0, 0.005);
      const double v = pi.DesiredRate(m);
      pi.NotifyActuation(std::max(0.0, v));
    }
    PeriodMeasurement m = MakeMeasurement(1.9, 190.0, 0.005);
    return pi.DesiredRate(m);
  };
  EXPECT_GT(run(true), run(false));  // wound-up integral keeps the gate shut
}

TEST(PiControllerTest, ResetClearsState) {
  PiController pi(0.97);
  PeriodMeasurement m = MakeMeasurement(5.0, 100.0, 0.005);
  const double v1 = pi.DesiredRate(m);
  pi.Reset();
  EXPECT_DOUBLE_EQ(pi.DesiredRate(m), v1);
}

TEST(MmppTraceTest, RatesAreTwoValued) {
  MmppTraceParams p;
  RateTrace t = MakeMmppTrace(600.0, p, 5);
  int quiet = 0, burst = 0;
  for (double v : t.values()) {
    if (v == p.quiet_rate) {
      ++quiet;
    } else if (v == p.burst_rate) {
      ++burst;
    } else {
      FAIL() << "unexpected rate " << v;
    }
  }
  EXPECT_GT(quiet, 0);
  EXPECT_GT(burst, 0);
}

TEST(MmppTraceTest, SojournFractionsMatchMeans) {
  MmppTraceParams p;
  RateTrace t = MakeMmppTrace(60000.0, p, 6);
  int burst = 0;
  for (double v : t.values()) burst += (v == p.burst_rate);
  const double want = p.mean_burst_seconds /
                      (p.mean_burst_seconds + p.mean_quiet_seconds);
  EXPECT_NEAR(static_cast<double>(burst) / t.values().size(), want, 0.03);
}

TEST(MmppTraceTest, DeterministicPerSeed) {
  MmppTraceParams p;
  EXPECT_EQ(MakeMmppTrace(100.0, p, 9).values(),
            MakeMmppTrace(100.0, p, 9).values());
}

}  // namespace
}  // namespace ctrlshed
