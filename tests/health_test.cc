#include "telemetry/health.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

namespace ctrlshed {
namespace {

PeriodRecord MakeRow(int k, double alpha, double y_hat = 2.0,
                     double yd = 2.0) {
  PeriodRecord row;
  row.m.k = k;
  row.m.t = static_cast<double>(k);
  row.m.target_delay = yd;
  row.m.fin = 300.0;
  row.m.fout = 100.0;
  row.m.y_hat = y_hat;
  row.v = 100.0;  // u = v - fout = 0: no oscillation signal
  row.alpha = alpha;
  return row;
}

TEST(HeadroomTrackerTest, NanUntilFirstInformativePeriod) {
  HeadroomTracker t;
  EXPECT_TRUE(std::isnan(t.value()));
  // Zero busy time carries no information.
  t.Update(5.0, 0.0);
  EXPECT_TRUE(std::isnan(t.value()));
  // First sample seeds the EWMA directly.
  EXPECT_DOUBLE_EQ(t.Update(1.94, 2.0), 0.97);
  EXPECT_DOUBLE_EQ(t.value(), 0.97);
}

TEST(HeadroomTrackerTest, EwmaBlendsTowardNewSamples) {
  HeadroomTracker t(0.5);
  t.Update(1.0, 1.0);  // seeds at 1.0
  t.Update(0.5, 1.0);  // 0.5 * 0.5 + 0.5 * 1.0 = 0.75
  EXPECT_DOUBLE_EQ(t.value(), 0.75);
  // Negative drained deltas (counter glitch) are ignored.
  t.Update(-1.0, 1.0);
  EXPECT_DOUBLE_EQ(t.value(), 0.75);
}

TEST(HealthMonitorTest, StartsOkAndStaysOkAtModerateShedding) {
  HealthMonitor mon;
  EXPECT_EQ(mon.Report().verdict, HealthVerdict::kOk);
  // 2x overload: alpha ~= 0.5, on-setpoint tracking. Must stay ok.
  for (int k = 1; k <= 40; ++k) mon.ObservePeriod(MakeRow(k, 0.5));
  const HealthReport r = mon.Report();
  EXPECT_EQ(r.verdict, HealthVerdict::kOk);
  EXPECT_TRUE(r.reasons.empty());
  EXPECT_EQ(r.periods, 40u);
}

TEST(HealthMonitorTest, SustainedAlphaSaturationDegradesThenRecovers) {
  HealthMonitor mon;
  // 3x overload: alpha ~= 0.667, well past the 0.6 saturation level.
  for (int k = 1; k <= 40; ++k) mon.ObservePeriod(MakeRow(k, 0.667));
  HealthReport r = mon.Report();
  EXPECT_EQ(r.verdict, HealthVerdict::kDegraded);
  ASSERT_EQ(r.reasons.size(), 1u);
  EXPECT_EQ(r.reasons[0], "alpha_saturated");
  EXPECT_GE(r.alpha_sat_frac, 0.5);
  EXPECT_NE(r.ToJson().find("\"verdict\":\"degraded\""), std::string::npos);
  EXPECT_EQ(r.HttpStatus(), 200);  // degraded is in the body, not the code

  // Load returns to 2x: the saturated periods age out of the window.
  for (int k = 41; k <= 80; ++k) mon.ObservePeriod(MakeRow(k, 0.4));
  r = mon.Report();
  EXPECT_EQ(r.verdict, HealthVerdict::kOk);
  EXPECT_TRUE(r.reasons.empty());
}

TEST(HealthMonitorTest, WarmupSuppressesEverythingButStaleNodes) {
  HealthMonitor mon;
  // 4 saturated periods — below min_periods, so no verdict change...
  for (int k = 1; k <= 4; ++k) mon.ObservePeriod(MakeRow(k, 0.9, 8.0));
  EXPECT_EQ(mon.Report().verdict, HealthVerdict::kOk);
  // ...but a stale node degrades even during warmup.
  mon.SetStaleNodes(1, 2);
  const HealthReport r = mon.Report();
  EXPECT_EQ(r.verdict, HealthVerdict::kDegraded);
  ASSERT_EQ(r.reasons.size(), 1u);
  EXPECT_EQ(r.reasons[0], "stale_node");
}

TEST(HealthMonitorTest, AllNodesStaleIsCritical) {
  HealthMonitor mon;
  mon.SetStaleNodes(3, 3);
  const HealthReport r = mon.Report();
  EXPECT_EQ(r.verdict, HealthVerdict::kCritical);
  EXPECT_EQ(r.HttpStatus(), 503);
}

TEST(HealthMonitorTest, TrackingErrorWhileSheddingDegrades) {
  HealthMonitor mon;
  // Shedding hard at triple the setpoint: |yd - y|/yd = 2.0 — critical
  // territory once combined with saturation.
  for (int k = 1; k <= 40; ++k) mon.ObservePeriod(MakeRow(k, 0.7, 6.0));
  const HealthReport r = mon.Report();
  EXPECT_EQ(r.verdict, HealthVerdict::kCritical);
  EXPECT_GE(r.tracking_rms, 1.0);
}

TEST(HealthMonitorTest, TrackingErrorIgnoredWhenNotShedding) {
  HealthMonitor mon;
  // Underloaded loop far below the setpoint with the gate open: a shedder
  // cannot create delay, so this is healthy, not a tracking failure.
  for (int k = 1; k <= 40; ++k) mon.ObservePeriod(MakeRow(k, 0.0, 0.1));
  const HealthReport r = mon.Report();
  EXPECT_EQ(r.verdict, HealthVerdict::kOk);
  EXPECT_DOUBLE_EQ(r.tracking_rms, 0.0);
}

TEST(HealthMonitorTest, USignFlipsAboveNoiseFloorFlagOscillation) {
  HealthMonitor mon;
  for (int k = 1; k <= 40; ++k) {
    PeriodRecord row = MakeRow(k, 0.3);
    // u alternates +/-60 against fin = 300 (floor = 15): every pair flips.
    row.v = row.m.fout + (k % 2 == 0 ? 60.0 : -60.0);
    mon.ObservePeriod(row);
  }
  const HealthReport r = mon.Report();
  EXPECT_EQ(r.verdict, HealthVerdict::kDegraded);
  EXPECT_GE(r.oscillation, 0.6);
  ASSERT_EQ(r.reasons.size(), 1u);
  EXPECT_EQ(r.reasons[0], "oscillating");
}

TEST(HealthMonitorTest, SmallUFlipsAreSteadyStateNoise) {
  HealthMonitor mon;
  for (int k = 1; k <= 40; ++k) {
    PeriodRecord row = MakeRow(k, 0.3);
    // Flips of +/-5 sit under the 0.05 * 300 = 15 noise floor.
    row.v = row.m.fout + (k % 2 == 0 ? 5.0 : -5.0);
    mon.ObservePeriod(row);
  }
  const HealthReport r = mon.Report();
  EXPECT_EQ(r.verdict, HealthVerdict::kOk);
  EXPECT_DOUBLE_EQ(r.oscillation, 0.0);
}

TEST(HealthMonitorTest, TelemetrySelfLossDegrades) {
  HealthMonitor mon;
  for (int k = 1; k <= 20; ++k) mon.ObservePeriod(MakeRow(k, 0.1));
  mon.SetSelfLoss(/*trace_events=*/900, /*trace_dropped=*/100,
                  /*sse_published=*/100, /*sse_dropped=*/0);
  const HealthReport r = mon.Report();
  EXPECT_EQ(r.verdict, HealthVerdict::kDegraded);
  ASSERT_EQ(r.reasons.size(), 1u);
  EXPECT_EQ(r.reasons[0], "telemetry_loss");
  EXPECT_DOUBLE_EQ(r.trace_loss, 0.1);
}

TEST(HealthMonitorTest, HeadroomDriftWarnsWithoutDegrading) {
  HealthMonitor mon;
  for (int k = 1; k <= 20; ++k) mon.ObservePeriod(MakeRow(k, 0.1));
  mon.SetHeadroom(/*configured=*/0.97, /*measured=*/0.5);
  const HealthReport r = mon.Report();
  EXPECT_EQ(r.verdict, HealthVerdict::kOk);
  ASSERT_EQ(r.warnings.size(), 1u);
  EXPECT_EQ(r.warnings[0], "headroom_drift");
  EXPECT_NE(r.ToJson().find("\"warnings\":[\"headroom_drift\"]"),
            std::string::npos);
}

TEST(HealthMonitorTest, JsonCarriesNullForUnknownHeadroom) {
  HealthMonitor mon;
  const std::string json = mon.Report().ToJson();
  EXPECT_NE(json.find("\"h_hat\":null"), std::string::npos);
  EXPECT_NE(json.find("\"h_configured\":null"), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"ok\""), std::string::npos);
}

TEST(HealthMonitorTest, SummaryLineNamesVerdictAndReasons) {
  HealthMonitor mon;
  for (int k = 1; k <= 40; ++k) mon.ObservePeriod(MakeRow(k, 0.7));
  mon.SetStaleNodes(1, 4);
  const std::string line = mon.Report().Summary();
  EXPECT_NE(line.find("degraded"), std::string::npos);
  EXPECT_NE(line.find("stale_node"), std::string::npos);
  EXPECT_NE(line.find("alpha_saturated"), std::string::npos);
  EXPECT_NE(line.find("stale 1/4"), std::string::npos);
}

}  // namespace
}  // namespace ctrlshed
