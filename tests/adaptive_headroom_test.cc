#include <gtest/gtest.h>

#include "runner/experiment.h"

namespace ctrlshed {
namespace {

// The engine's true headroom is 0.80 but the loop believes 0.97. Without
// adaptation the Eq. (11) estimate is biased and the controller settles
// the real delay ABOVE the target by ~0.97/0.80; with online headroom
// estimation the bias disappears.
double SteadyStateDelay(bool adapt) {
  ExperimentConfig cfg;
  cfg.method = Method::kCtrl;
  cfg.workload = WorkloadKind::kConstant;
  cfg.constant_rate = 300.0;
  cfg.duration = 200.0;
  cfg.headroom_true = 0.80;
  cfg.headroom_est = 0.97;
  cfg.adapt_headroom = adapt;
  ExperimentResult r = RunExperiment(cfg);

  double sum = 0.0;
  int n = 0;
  for (const PeriodRecord& row : r.recorder.rows()) {
    if (row.m.t > 120.0 && row.m.has_y_measured) {
      sum += row.m.y_measured;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

TEST(AdaptiveHeadroomTest, MisidentifiedHeadroomBiasesDelay) {
  const double y = SteadyStateDelay(/*adapt=*/false);
  // Bias factor ~ H_est / H_true = 1.21: y settles near 2.4 s, not 2.0.
  EXPECT_GT(y, 2.2);
}

TEST(AdaptiveHeadroomTest, OnlineEstimateRemovesBias) {
  const double y = SteadyStateDelay(/*adapt=*/true);
  EXPECT_NEAR(y, 2.0, 0.15);
}

TEST(AdaptiveHeadroomTest, NoEffectWhenHeadroomCorrect) {
  ExperimentConfig cfg;
  cfg.method = Method::kCtrl;
  cfg.workload = WorkloadKind::kConstant;
  cfg.constant_rate = 300.0;
  cfg.duration = 120.0;
  cfg.adapt_headroom = true;
  ExperimentResult r = RunExperiment(cfg);
  double sum = 0.0;
  int n = 0;
  for (const PeriodRecord& row : r.recorder.rows()) {
    if (row.m.t > 60.0 && row.m.has_y_measured) {
      sum += row.m.y_measured;
      ++n;
    }
  }
  EXPECT_NEAR(sum / n, 2.0, 0.25);
}

}  // namespace
}  // namespace ctrlshed
