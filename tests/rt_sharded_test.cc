// Multi-shard rt runtime: SPSC routing stress across 4 shards x 2 global
// sources each (8 producer threads), and an end-to-end sharded closed
// loop. The stress test is the TSan workhorse for the partitioned
// ingress/aggregation paths: every cross-thread handoff in RtLoop's
// sharded OnArrival, the per-shard shedder mutexes, and the N-worker
// departure fan-in get exercised concurrently.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "engine/operator.h"
#include "engine/query_network.h"
#include "rt/rt_clock.h"
#include "rt/rt_engine.h"
#include "rt/rt_loop.h"
#include "rt/rt_runtime.h"

namespace ctrlshed {
namespace {

constexpr int kShards = 4;
constexpr int kSourcesPerShard = 2;
constexpr int kGlobalSources = kShards * kSourcesPerShard;

/// A two-source chain: both local sources enter the same map operator.
void BuildTwoSourceNetwork(QueryNetwork* net, double entry_cost) {
  auto* op = net->Add(std::make_unique<MapOp>("m0", entry_cost));
  net->AddEntry(0, op);
  net->AddEntry(1, op);
  net->Finalize();
}

TEST(RtShardedTest, EightProducersRouteAcrossFourShards) {
  constexpr int kTuplesPerSource = 2000;
  RtClock clock(/*compression=*/2000.0);

  std::vector<std::unique_ptr<QueryNetwork>> nets;
  std::vector<std::unique_ptr<RtEngine>> engines;
  std::vector<RtShard> shards;
  for (int i = 0; i < kShards; ++i) {
    nets.push_back(std::make_unique<QueryNetwork>());
    BuildTwoSourceNetwork(nets.back().get(), /*entry_cost=*/20e-6);
    RtEngineOptions eopts;
    eopts.ring_capacity = 1 << 14;
    eopts.shard_index = i;
    engines.push_back(std::make_unique<RtEngine>(
        nets.back().get(), &clock, kSourcesPerShard, eopts));
    shards.push_back(RtShard{engines.back().get(), nullptr});
  }

  RtLoopOptions lopts;
  lopts.period = 0.5;
  RtLoop loop(std::move(shards), &clock, /*controller=*/nullptr, lopts);
  ASSERT_EQ(loop.num_shards(), kShards);

  std::atomic<uint64_t> departed_observed{0};
  loop.SetDepartureObserver(
      [&departed_observed](const Departure&) { ++departed_observed; });

  clock.Start();
  loop.Start();

  // One producer thread per GLOBAL source index — the SPSC contract RtLoop
  // must preserve through its global->local remap.
  std::vector<std::thread> producers;
  for (int s = 0; s < kGlobalSources; ++s) {
    producers.emplace_back([&loop, &clock, s] {
      for (int i = 0; i < kTuplesPerSource; ++i) {
        Tuple t;
        t.source = s;
        t.arrival_time = clock.Now();
        t.value = static_cast<double>(i);
        loop.OnArrival(t);
      }
    });
  }
  for (std::thread& p : producers) p.join();

  // Give the workers a moment to drain, then stop everything.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  loop.Stop();

  // Conservation: every offer landed on exactly one shard.
  const uint64_t total =
      static_cast<uint64_t>(kGlobalSources) * kTuplesPerSource;
  EXPECT_EQ(loop.offered(), total);
  uint64_t per_shard_sum = 0;
  for (const auto& engine : engines) {
    const uint64_t offered =
        engine->stats()->offered.load(std::memory_order_relaxed);
    // Each shard owns exactly 2 of the 8 global sources.
    EXPECT_EQ(offered,
              static_cast<uint64_t>(kSourcesPerShard) * kTuplesPerSource);
    per_shard_sum += offered;
  }
  EXPECT_EQ(per_shard_sum, total);

  // No controller and huge rings: nothing may be shed; everything that
  // departed was observed exactly once (the departure fan-in is
  // serialized, no lost updates).
  EXPECT_EQ(loop.entry_shed(), 0u);
  EXPECT_EQ(loop.ring_dropped(), 0u);
  uint64_t departed = 0;
  for (const auto& engine : engines) {
    departed += engine->stats()->departed.load(std::memory_order_relaxed);
  }
  EXPECT_EQ(departed_observed.load(), departed);
  EXPECT_EQ(loop.qos().departures(), departed);
  EXPECT_LE(departed, total);
}

RtRunConfig ShardedConfig() {
  RtRunConfig cfg;
  cfg.base.workload = WorkloadKind::kConstant;
  cfg.base.seed = 7;
  cfg.time_compression = 40.0;
  cfg.workers = 4;
  return cfg;
}

TEST(RtShardedTest, UnderloadedShardedRunShedsNothing) {
  // 380 t/s against 4 workers x 190 t/s: what overloads one worker is
  // comfortable for four. The sharded runtime's whole point.
  RtRunConfig cfg = ShardedConfig();
  cfg.base.method = Method::kCtrl;
  cfg.base.constant_rate = 380.0;
  cfg.base.duration = 8.0;

  RtRunResult r = RunRtExperiment(cfg);

  EXPECT_EQ(r.workers, 4);
  ASSERT_EQ(r.shards.size(), 4u);
  EXPECT_LT(r.summary.loss_ratio, 0.05);
  EXPECT_LT(r.summary.mean_delay, 0.5);

  // The 1/N trace split keeps the shards statistically balanced.
  uint64_t shard_sum = 0;
  for (const RtShardSummary& s : r.shards) {
    EXPECT_GT(s.offered, r.summary.offered / 8);
    EXPECT_LT(s.offered, r.summary.offered / 2);
    shard_sum += s.offered;
  }
  EXPECT_EQ(shard_sum, r.summary.offered);
}

TEST(RtShardedTest, OverloadedShardedLoopTracksSetpoint) {
  // 2x overload of the AGGREGATE: 4 workers x 190 t/s x 2. One controller
  // must hold the summed plant near the setpoint through the fan-out.
  RtRunConfig cfg = ShardedConfig();
  cfg.base.method = Method::kCtrl;
  cfg.base.constant_rate = 1520.0;
  cfg.base.duration = 15.0;
  cfg.base.target_delay = 2.0;

  RtRunResult r = RunRtExperiment(cfg);

  EXPECT_GT(r.summary.loss_ratio, 0.25);
  EXPECT_LT(r.summary.loss_ratio, 0.70);
  ASSERT_GE(r.recorder.rows().size(), 10u);

  double sum = 0.0;
  int n = 0;
  for (const PeriodRecord& row : r.recorder.rows()) {
    if (row.m.k <= 5) continue;
    sum += row.m.y_hat;
    ++n;
    // Sharded rows export the queue decomposition; it must sum to the
    // aggregate the controller saw.
    ASSERT_EQ(row.shard_q.size(), 4u);
    double q = 0.0;
    for (double qi : row.shard_q) q += qi;
    EXPECT_NEAR(q, row.m.queue, 1e-9);
  }
  ASSERT_GT(n, 4);
  const double mean_yhat = sum / n;
  EXPECT_GT(mean_yhat, 0.5 * cfg.base.target_delay);
  EXPECT_LT(mean_yhat, 1.5 * cfg.base.target_delay);
  EXPECT_GT(r.summary.shed, 0u);
}

}  // namespace
}  // namespace ctrlshed
