#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "runner/experiment.h"
#include "sysid/identification.h"
#include "sysid/integrator_model.h"

namespace ctrlshed {
namespace {

TEST(IntegratorModelTest, UnderloadGivesConstantDelay) {
  ModelParams p{0.005, 1.0, 1.0};
  auto y = SimulateIntegratorModel(p, std::vector<double>(20, 100.0));
  for (double v : y) EXPECT_NEAR(v, 0.005, 1e-9);
}

TEST(IntegratorModelTest, OverloadIntegrates) {
  ModelParams p{0.005, 1.0, 1.0};  // capacity 200
  auto y = SimulateIntegratorModel(p, std::vector<double>(10, 300.0));
  // Queue grows by 100/period: y(k) = (100 (k) + 1) * 0.005.
  EXPECT_NEAR(y[1], (100.0 + 1.0) * 0.005, 1e-9);
  EXPECT_NEAR(y[9], (900.0 + 1.0) * 0.005, 1e-9);
}

TEST(IntegratorModelTest, HeadroomScalesServiceRate) {
  ModelParams full{0.005, 1.0, 1.0}, half{0.005, 0.5, 1.0};
  auto yf = SimulateIntegratorModel(full, std::vector<double>(10, 150.0));
  auto yh = SimulateIntegratorModel(half, std::vector<double>(10, 150.0));
  // Capacity 200 vs 100: the half-headroom system diverges.
  EXPECT_NEAR(yf.back(), 0.005, 1e-9);
  EXPECT_GT(yh.back(), 0.5);
}

TEST(IntegratorModelTest, QueueDrainsAfterBurst) {
  ModelParams p{0.005, 1.0, 1.0};
  std::vector<double> fin(20, 50.0);
  fin[5] = 500.0;  // one burst second
  auto y = SimulateIntegratorModel(p, fin);
  EXPECT_GT(y[6], y[4]);          // burst raised the delay
  EXPECT_NEAR(y.back(), 0.005, 1e-6);  // fully drained by the end
}

TEST(ModelDelayFromQueueTest, UsesPreviousQueue) {
  auto y = ModelDelayFromQueue({100.0, 200.0, 300.0}, 0.005, 1.0);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_NEAR(y[0], 0.005, 1e-12);             // q(-1) = 0
  EXPECT_NEAR(y[1], 101.0 * 0.005, 1e-12);
  EXPECT_NEAR(y[2], 201.0 * 0.005, 1e-12);
}

TEST(ModelingErrorTest, ElementwiseDifference) {
  auto e = ModelingError({1.0, 2.0}, {0.5, 2.5});
  EXPECT_DOUBLE_EQ(e[0], 0.5);
  EXPECT_DOUBLE_EQ(e[1], -0.5);
}

TEST(ArrivalGroupedDelaysTest, GroupsByArrivalPeriod) {
  ArrivalGroupedDelays g(1.0);
  Departure d;
  d.arrival_time = 0.5;
  d.depart_time = 1.0;
  g.OnDeparture(d);
  d.arrival_time = 0.9;
  d.depart_time = 2.9;
  g.OnDeparture(d);
  d.arrival_time = 1.5;
  d.depart_time = 2.0;
  g.OnDeparture(d);
  TimeSeries s = g.Series(3.0);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_NEAR(s[0].value, (0.5 + 2.0) / 2.0, 1e-12);
  EXPECT_NEAR(s[1].value, 0.5, 1e-12);
  EXPECT_NEAR(s[2].value, 0.5, 1e-12);  // empty period holds last value
}

TEST(StepResponseTest, BelowCapacityStaysFlat) {
  StepResponse r = RunStepResponse(150.0, 50.0, 10.0, 190.0, 0.97, 1);
  EXPECT_FALSE(DelayDiverges(r.delay, 10.0));
  // Post-step delay stays near the pure service time.
  EXPECT_LT(r.delay[40].value, 0.05);
}

TEST(StepResponseTest, AboveCapacityDiverges) {
  StepResponse r = RunStepResponse(300.0, 50.0, 10.0, 190.0, 0.97, 1);
  EXPECT_TRUE(DelayDiverges(r.delay, 10.0));
  EXPECT_GT(r.delay[35].value, 5.0);
}

TEST(StepResponseTest, DeltaDelayConvergesUnderOverload) {
  // Fig. 5C: the growth rate of y settles to a constant — the signature of
  // a pure integrator with no further dynamics.
  StepResponse r = RunStepResponse(300.0, 50.0, 10.0, 190.0, 0.97, 1);
  ASSERT_GT(r.delta_delay.size(), 30u);
  // After the step transient, consecutive deltas are similar. Stay away
  // from the end of the run: arrivals there depart after it finishes, so
  // their periods carry stale delay values.
  double d1 = r.delta_delay[20], d2 = r.delta_delay[28];
  EXPECT_GT(d1, 0.0);
  EXPECT_NEAR(d1, d2, 0.4 * std::max(d1, d2));
}

TEST(StepResponseTest, QueueSeriesRecorded) {
  StepResponse r = RunStepResponse(300.0, 30.0, 10.0, 190.0, 0.97, 1);
  EXPECT_EQ(r.queue.size(), 30u);
  EXPECT_GT(r.queue[25].value, 1000.0);
}

TEST(EstimateCapacityThresholdTest, FindsTrueCapacity) {
  // True sustainable rate is capacity_rate (H_true cancels by design).
  double est = EstimateCapacityThreshold(100.0, 300.0, 4.0, 60.0, 190.0,
                                         0.97, 3);
  EXPECT_NEAR(est, 190.0, 8.0);
}

TEST(HeadroomFitErrorTest, TrueHeadroomFitsBest) {
  // Generate a synthetic run from the model itself with H = 0.97.
  const double c = 0.005;
  std::vector<double> q, y;
  double qq = 0.0;
  for (int k = 0; k < 100; ++k) {
    y.push_back((qq + 1.0) * c / 0.97);
    qq += 50.0;  // growing backlog
    q.push_back(qq);
  }
  const double e95 = HeadroomFitError(y, q, c, 0.95);
  const double e97 = HeadroomFitError(y, q, c, 0.97);
  const double e100 = HeadroomFitError(y, q, c, 1.00);
  EXPECT_LT(e97, e95);
  EXPECT_LT(e97, e100);
  EXPECT_NEAR(e97, 0.0, 1e-12);
}

TEST(HeadroomFitErrorTest, EngineRunFitsHeadroomNearTruth) {
  // The paper's Fig. 6 experiment: measure a (simulated) run, compute the
  // model delays for candidate H values, and fit. Eq. (2) references the
  // queue at the START of each period while arrivals spread across it, so
  // with a growing queue the fitted H sits slightly BELOW the engine's
  // true headroom — the same kind of small systematic modeling error the
  // paper reports in Fig. 6B. The fit must land close to the truth and
  // must clearly reject H = 1.
  StepResponse r = RunStepResponse(300.0, 60.0, 10.0, 190.0, 0.97, 3);
  std::vector<double> y, q;
  // Use only periods whose arrivals had time to depart before the run
  // ended (late arrivals in a diverging run never get a delay sample).
  for (size_t i = 0; i < 40 && i < r.delay.size(); ++i) {
    y.push_back(r.delay[i].value);
    q.push_back(r.queue[i].value);
  }
  const double c = 0.97 / 190.0;
  double best_h = 0.0, best_e = 1e300;
  for (double h = 0.90; h <= 1.005; h += 0.005) {
    const double e = HeadroomFitError(y, q, c, h);
    if (e < best_e) {
      best_e = e;
      best_h = h;
    }
  }
  EXPECT_NEAR(best_h, 0.97, 0.05);
  EXPECT_LT(best_e, 0.5 * HeadroomFitError(y, q, c, 1.00));
}


TEST(ArxFitTest, RecoversIntegratorFromSyntheticData) {
  // Generate q(k) = q(k-1) + T * net(k-1) with a rich input; the ARX fit
  // must recover the pole at 1 and gain T without being told the model.
  Rng rng(13);
  std::vector<double> u, y;
  double q = 50.0;
  const double T = 1.0;
  for (int k = 0; k < 300; ++k) {
    const double net = rng.Uniform(-30.0, 30.0);
    u.push_back(net);
    y.push_back(q);
    q = q + T * net;
  }
  // Shift so u(k-1) aligns with the transition y(k-1) -> y(k).
  ArxFit fit = FitArxModel(u, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.a1, 1.0, 0.02);
  EXPECT_NEAR(fit.b1, T, 0.05);
  EXPECT_LT(fit.rmse, 1.0);
}

TEST(ArxFitTest, RecoversStableFirstOrderSystem) {
  Rng rng(14);
  std::vector<double> u, y;
  double x = 0.0;
  for (int k = 0; k < 500; ++k) {
    const double in = rng.Uniform(-1.0, 1.0);
    u.push_back(in);
    y.push_back(x);
    x = 0.6 * x + 0.3 * in;
  }
  ArxFit fit = FitArxModel(u, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.a1, 0.6, 0.02);
  EXPECT_NEAR(fit.b1, 0.3, 0.02);
}

TEST(ArxFitTest, DegenerateInputRejected) {
  // Constant input and output: the regression is singular.
  std::vector<double> u(50, 0.0), y(50, 0.0);
  EXPECT_FALSE(FitArxModel(u, y).ok);
}

TEST(ArxFitTest, TooFewSamplesRejected) {
  EXPECT_FALSE(FitArxModel({1.0, 2.0}, {1.0, 2.0}).ok);
}

TEST(ArxFitTest, EngineDataYieldsIntegratorPole) {
  // Drive the real (simulated) engine with a sine around capacity and fit
  // the ARX model on (net inflow, virtual queue) records: the pole must
  // sit at ~1 — Eq. (3) validated from data with no structural prior.
  ArrivalGroupedDelays unused(1.0);
  ExperimentConfig cfg;
  cfg.method = Method::kNone;
  cfg.workload = WorkloadKind::kSine;
  cfg.duration = 150.0;
  cfg.sine_lo = 60.0;
  cfg.sine_hi = 330.0;
  cfg.sine_period = 40.0;
  cfg.spacing = ArrivalSource::Spacing::kDeterministic;
  ExperimentResult r = RunExperiment(cfg);
  std::vector<double> u, y;
  for (const PeriodRecord& row : r.recorder.rows()) {
    u.push_back((row.m.admitted - row.m.fout) * row.m.period);
    y.push_back(row.m.queue);
  }
  ArxFit fit = FitArxModel(u, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.a1, 1.0, 0.05);
  EXPECT_GT(fit.b1, 0.5);
  EXPECT_LT(fit.b1, 1.5);
}

}  // namespace
}  // namespace ctrlshed
