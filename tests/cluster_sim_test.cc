// Tests of the deterministic cluster simulator. The load-bearing one is
// the identity contract: a one-node cluster with zero network delay and
// zero loss must produce per-period control signals EXPECT_EQ-equal (not
// merely close) to a single-process sharded control loop built on the
// same plant — the distributed machinery (node agent, wire deltas,
// aggregate monitor, proportional fan-out, ack-driven anti-windup) must
// add exactly nothing arithmetically. The rest covers bit-reproducibility
// under delay/loss, graceful degradation when a node dies, and loss
// accounting.

#include "cluster/cluster_sim.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "control/ctrl_controller.h"
#include "control/period_math.h"
#include "engine/engine.h"
#include "engine/query_network.h"
#include "metrics/recorder.h"
#include "rt/rt_monitor.h"
#include "rt/rt_stats.h"
#include "runner/networks.h"
#include "shedding/entry_shedder.h"
#include "sim/simulation.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/prom_export.h"
#include "workload/arrival_source.h"

namespace ctrlshed {
namespace {

ExperimentConfig BaseConfig() {
  ExperimentConfig base;
  base.method = Method::kCtrl;
  base.workload = WorkloadKind::kWeb;  // ~2x overload of the 190/s plant
  base.duration = 40.0;
  base.period = 1.0;
  base.target_delay = 2.0;
  return base;
}

// --- Single-process reference ----------------------------------------------
// RtLoop::ControlTick transplanted onto the sim substrate: the same shard
// plants the cluster sim builds (cluster-wide seed/trace conventions at
// nodes=1 reduce to the plain sharded ones), one RtMonitor, one
// CtrlController, the proportional shard fan-out, NotifyActuation in the
// same call chain. No cluster machinery anywhere.

struct RefShard {
  std::unique_ptr<QueryNetwork> net;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<EntryShedder> shedder;
  std::unique_ptr<ArrivalSource> source;
  uint64_t offered = 0;
  uint64_t entry_shed = 0;
  double delay_sum = 0.0;
  uint64_t delay_count = 0;
};

Recorder RunSingleProcessReference(const ExperimentConfig& base, int workers) {
  const double nominal_cost = base.headroom_true / base.capacity_rate;
  Simulation sim;

  const RateTrace full_trace = BuildArrivalTrace(base);
  std::vector<RefShard> shards(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    RefShard& shard = shards[static_cast<size_t>(w)];
    shard.net = std::make_unique<QueryNetwork>();
    BuildIdentificationNetwork(shard.net.get(), nominal_cost);
    shard.engine = std::make_unique<Engine>(shard.net.get(), base.headroom_true);
    sim.AttachProcess(shard.engine.get());
    shard.shedder = std::make_unique<EntryShedder>(
        base.seed + 2 + 7919 * static_cast<uint64_t>(w));
    shard.source = std::make_unique<ArrivalSource>(
        w,
        workers == 1 ? full_trace
                     : full_trace.Scaled(1.0 / static_cast<double>(workers)),
        base.spacing, base.seed + 3 + static_cast<uint64_t>(w));
    shard.engine->SetDepartureCallback([&shard](const Departure& d) {
      shard.delay_sum += d.depart_time - d.arrival_time;
      ++shard.delay_count;
    });
  }

  RtMonitorOptions mo;
  mo.period = base.period;
  mo.headroom = base.headroom_est;
  mo.cost_ewma = base.cost_ewma;
  mo.adapt_headroom = base.adapt_headroom;
  RtMonitor monitor(nominal_cost, workers, mo);

  CtrlOptions co;
  co.gains = base.gains;
  co.headroom = static_cast<double>(workers) * base.headroom_est;
  co.feedback = base.ctrl_feedback;
  co.anti_windup = base.anti_windup;
  CtrlController controller(co);

  for (RefShard& shard_ref : shards) {
    RefShard* shard = &shard_ref;
    shard->source->Start(&sim, [shard](const Tuple& t) {
      ++shard->offered;
      if (!shard->shedder->Admit(t)) {
        ++shard->entry_shed;
        return;
      }
      Tuple local = t;
      local.source = 0;
      shard->engine->Inject(local, local.arrival_time);
    });
  }

  Recorder recorder;
  sim.ScheduleEvery(base.period, base.period, [&](SimTime t) {
    std::vector<RtSample> samples;
    samples.reserve(shards.size());
    for (const RefShard& shard : shards) {
      RtSample s;
      s.now = t;
      s.offered = shard.offered;
      s.entry_shed = shard.entry_shed;
      s.ring_dropped = 0;
      const EngineCounters& c = shard.engine->counters();
      s.admitted = c.admitted;
      s.departed = c.departed;
      s.queue_shed = c.shed_lineages;
      s.queue_shed_load = c.shed_base_load;
      s.busy_seconds = c.busy_seconds;
      s.drained_base_load = c.drained_base_load;
      s.queued_tuples = shard.engine->QueuedTuples();
      s.outstanding_base_load = shard.engine->OutstandingBaseLoad();
      s.delay_sum = shard.delay_sum;
      s.delay_count = shard.delay_count;
      samples.push_back(s);
    }
    const PeriodMeasurement m = monitor.Sample(samples, base.target_delay);
    const double v = controller.DesiredRate(m);

    const std::vector<double>& shard_fin = monitor.shard_fin();
    const std::vector<double>& shard_queues = monitor.shard_queues();
    const std::vector<double> shares = ProportionalShares(shard_fin);
    double applied = 0.0;
    double alpha = 0.0;
    for (size_t i = 0; i < shards.size(); ++i) {
      const double share = shares[i];
      PeriodMeasurement mi = m;
      mi.fin = shard_fin[i];
      mi.fin_forecast = m.fin_forecast * share;
      mi.admitted = m.admitted * share;
      mi.queue = shard_queues[i];
      applied += shards[i].shedder->Configure(v * share, mi);
      alpha += share * shards[i].shedder->drop_probability();
    }
    controller.NotifyActuation(applied);
    recorder.Record(m, v, alpha);
    return true;
  });

  sim.Run(base.duration);
  return recorder;
}

double MaxAlpha(const Recorder& r) {
  double max_alpha = 0.0;
  for (const PeriodRecord& row : r.rows()) {
    if (row.alpha > max_alpha) max_alpha = row.alpha;
  }
  return max_alpha;
}

void ExpectRowsIdentical(const Recorder& cluster, const Recorder& ref) {
  ASSERT_EQ(cluster.rows().size(), ref.rows().size());
  ASSERT_FALSE(cluster.rows().empty());
  for (size_t i = 0; i < ref.rows().size(); ++i) {
    const PeriodRecord& a = cluster.rows()[i];
    const PeriodRecord& b = ref.rows()[i];
    SCOPED_TRACE("period " + std::to_string(i + 1));
    EXPECT_EQ(a.m.k, b.m.k);
    EXPECT_EQ(a.m.t, b.m.t);
    EXPECT_EQ(a.m.fin, b.m.fin);
    EXPECT_EQ(a.m.admitted, b.m.admitted);
    EXPECT_EQ(a.m.fout, b.m.fout);
    EXPECT_EQ(a.m.queue, b.m.queue);
    EXPECT_EQ(a.m.cost, b.m.cost);
    EXPECT_EQ(a.m.y_hat, b.m.y_hat);
    // The acceptance tuple: (q, y_hat, u, v, alpha), u = v - fout.
    EXPECT_EQ(a.v, b.v);
    EXPECT_EQ(a.v - a.m.fout, b.v - b.m.fout);
    EXPECT_EQ(a.alpha, b.alpha);
  }
}

TEST(ClusterSimIdentityTest, OneNodeOneWorkerEqualsSingleProcessLoop) {
  ClusterSimConfig config;
  config.base = BaseConfig();
  config.nodes = 1;
  config.workers_per_node = 1;

  const ClusterSimResult cluster = RunClusterSim(config);
  const Recorder ref = RunSingleProcessReference(config.base, 1);

  EXPECT_EQ(cluster.idle_ticks, 0);
  ExpectRowsIdentical(cluster.recorder, ref);
  // The loop actually shed under overload — this was not a trivially idle
  // plant agreeing about zeros.
  EXPECT_GT(MaxAlpha(cluster.recorder), 0.0);
  EXPECT_GT(cluster.nodes[0].entry_shed, 0u);
  EXPECT_GT(cluster.nodes[0].departed, 0u);
}

TEST(ClusterSimIdentityTest, OneNodeTwoWorkersEqualsShardedLoop) {
  // The node-internal shard fan-out must also survive the trip through
  // the cluster machinery unchanged.
  ClusterSimConfig config;
  config.base = BaseConfig();
  config.base.web.mean_rate = 780.0;  // ~2x the two-worker plant
  config.nodes = 1;
  config.workers_per_node = 2;

  const ClusterSimResult cluster = RunClusterSim(config);
  const Recorder ref = RunSingleProcessReference(config.base, 2);

  ExpectRowsIdentical(cluster.recorder, ref);
  EXPECT_GT(MaxAlpha(cluster.recorder), 0.0);
}

TEST(ClusterSimTest, MultiNodeRunsAreBitReproducible) {
  ClusterSimConfig config;
  config.base = BaseConfig();
  config.base.duration = 30.0;
  config.nodes = 3;
  config.workers_per_node = 2;
  config.report_delay = 0.05;
  config.command_delay = 0.08;
  config.loss = 0.05;

  const ClusterSimResult a = RunClusterSim(config);
  const ClusterSimResult b = RunClusterSim(config);

  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_lost, b.messages_lost);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.idle_ticks, b.idle_ticks);
  ASSERT_EQ(a.recorder.rows().size(), b.recorder.rows().size());
  for (size_t i = 0; i < a.recorder.rows().size(); ++i) {
    const PeriodRecord& ra = a.recorder.rows()[i];
    const PeriodRecord& rb = b.recorder.rows()[i];
    EXPECT_EQ(ra.m.t, rb.m.t);
    EXPECT_EQ(ra.m.queue, rb.m.queue);
    EXPECT_EQ(ra.m.y_hat, rb.m.y_hat);
    EXPECT_EQ(ra.v, rb.v);
    EXPECT_EQ(ra.alpha, rb.alpha);
  }
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].offered, b.nodes[i].offered);
    EXPECT_EQ(a.nodes[i].entry_shed, b.nodes[i].entry_shed);
    EXPECT_EQ(a.nodes[i].departed, b.nodes[i].departed);
    EXPECT_EQ(a.nodes[i].final_alpha, b.nodes[i].final_alpha);
  }
  EXPECT_EQ(a.summary.mean_delay, b.summary.mean_delay);
  EXPECT_EQ(a.summary.shed, b.summary.shed);
}

TEST(ClusterSimTest, DelayedMessagesChangeNothingButTiming) {
  // Sanity: the delayed variant still controls (sheds, keeps the recorder
  // full) even though reports/commands arrive a fraction of a period late.
  ClusterSimConfig config;
  config.base = BaseConfig();
  config.nodes = 2;
  config.workers_per_node = 1;
  config.base.web.mean_rate = 780.0;
  config.report_delay = 0.2;
  config.command_delay = 0.2;

  const ClusterSimResult r = RunClusterSim(config);
  EXPECT_EQ(r.messages_lost, 0u);
  EXPECT_EQ(r.final_active_nodes, 2);
  // The first boundary's reports are still in flight at the first
  // controller tick, so exactly that tick is idle; every later one has a
  // report (0.2 s delay < one period) and produces a row.
  EXPECT_EQ(r.ticks, 40);
  EXPECT_EQ(r.idle_ticks, 1);
  ASSERT_EQ(r.recorder.rows().size(), 39u);
  EXPECT_GT(MaxAlpha(r.recorder), 0.0);
  EXPECT_GT(r.nodes[0].departed, 0u);
  EXPECT_GT(r.nodes[1].departed, 0u);
}

TEST(ClusterSimTest, KilledNodeDegradesGracefully) {
  ClusterSimConfig config;
  config.base = BaseConfig();
  config.base.duration = 40.0;
  config.base.web.mean_rate = 780.0;
  config.nodes = 2;
  config.workers_per_node = 1;
  config.stale_periods = 3;
  config.kill_node_at = 20.0;
  config.kill_node_id = 1;

  const ClusterSimResult r = RunClusterSim(config);

  ASSERT_EQ(r.nodes.size(), 2u);
  EXPECT_TRUE(r.nodes[1].killed);
  EXPECT_FALSE(r.nodes[0].killed);
  // The victim did real work before dying; the survivor kept departing
  // after.
  EXPECT_GT(r.nodes[1].departed, 0u);
  EXPECT_GT(r.nodes[0].departed, 0u);
  // The controller never stopped: every period after the stale window
  // still produced a row (no idle ticks — the survivor kept reporting).
  EXPECT_EQ(r.idle_ticks, 0);
  EXPECT_EQ(r.ticks, 40);
  EXPECT_EQ(r.final_active_nodes, 1);
  // The dead node's producers hit a closed socket: offered stops growing,
  // so its total is roughly half of the survivor's.
  EXPECT_LT(r.nodes[1].offered, r.nodes[0].offered * 3 / 4);
}

TEST(ClusterSimTest, PiggybackedMetricsFoldWithoutPerturbingThePlant) {
  ClusterSimConfig config;
  config.base = BaseConfig();
  config.base.duration = 30.0;
  config.base.web.mean_rate = 780.0;
  config.nodes = 2;
  config.workers_per_node = 1;

  MetricsRegistry fleet;
  ClusterSimConfig with = config;
  with.fleet_metrics = &fleet;  // piggyback_metrics defaults to true
  const ClusterSimResult a = RunClusterSim(with);

  ClusterSimConfig without = config;
  without.piggyback_metrics = false;
  const ClusterSimResult b = RunClusterSim(without);

  // Federation is observability-only: the control rows must be
  // EXPECT_EQ-identical with and without snapshot piggybacking.
  ExpectRowsIdentical(a.recorder, b.recorder);

  // Both nodes' snapshots landed in the controller registry under their
  // node-id prefix. The folded counter is the last report's cumulative
  // total, so it is positive but never exceeds the node's final count.
  const MetricsSnapshot snap = fleet.Snapshot();
  for (uint32_t id = 0; id < 2; ++id) {
    const std::string prefix = "node" + std::to_string(id) + ".";
    ASSERT_TRUE(snap.counters.count(prefix + "rt.offered")) << prefix;
    const uint64_t folded = snap.counters.at(prefix + "rt.offered");
    EXPECT_GT(folded, 0u);
    EXPECT_LE(folded, a.nodes[id].offered);
    EXPECT_TRUE(snap.gauges.count(prefix + "rt.alpha")) << prefix;
  }

  // The Prometheus rendering federates both nodes into one family with
  // node="<id>" labels — a single scrape sees the whole fleet.
  std::ostringstream prom;
  WritePrometheusText(snap, prom);
  const std::string text = prom.str();
  EXPECT_NE(text.find("rt_offered_total{node=\"0\"}"), std::string::npos);
  EXPECT_NE(text.find("rt_offered_total{node=\"1\"}"), std::string::npos);
}

TEST(ClusterSimTest, CostTraceAndQueueShedderActuateInNetwork) {
  ClusterSimConfig config;
  config.base = BaseConfig();
  config.base.duration = 30.0;
  config.base.web.mean_rate = 780.0;
  config.base.vary_cost = true;
  config.base.use_queue_shedder = true;
  // Pull the Fig. 14 cost jump inside the short test window so the
  // controller is forced to a negative v (queue drain) while queues are
  // full — the only way budgets reach the nodes' in-network shedders.
  config.base.cost_params.jump_at = 12.0;
  config.nodes = 2;
  config.workers_per_node = 1;

  const ClusterSimResult r = RunClusterSim(config);

  // Realized in-network drops landed on the nodes and fold into the
  // one-scheme shed accounting.
  uint64_t node_queue_shed = 0;
  for (const ClusterSimNodeResult& n : r.nodes) node_queue_shed += n.queue_shed;
  EXPECT_GT(node_queue_shed, 0u);
  EXPECT_EQ(r.summary.queue_shed, node_queue_shed);
  EXPECT_EQ(r.summary.shed, r.summary.entry_shed + r.summary.ring_dropped +
                                r.summary.queue_shed);

  // The controller's timeline knows where the shedding happened: at least
  // one period actuated in-network (or split), and the acks' victim
  // tallies flowed into the rows' queue_shed column.
  bool saw_in_network = false;
  double acked_victims = 0.0;
  for (const PeriodRecord& row : r.recorder.rows()) {
    if (row.site != ActuationSite::kEntry) saw_in_network = true;
    acked_victims += row.queue_shed;
  }
  EXPECT_TRUE(saw_in_network);
  EXPECT_GT(acked_victims, 0.0);
}

TEST(ClusterSimTest, MessageLossIsCountedAndSurvived) {
  ClusterSimConfig config;
  config.base = BaseConfig();
  config.base.duration = 30.0;
  config.base.web.mean_rate = 780.0;
  config.nodes = 2;
  config.workers_per_node = 1;
  config.loss = 0.3;

  const ClusterSimResult r = RunClusterSim(config);
  EXPECT_GT(r.messages_lost, 0u);
  EXPECT_GT(r.messages_sent, r.messages_lost);
  // Even at 30% control-plane loss the loop keeps shedding under the 2x
  // overload (lost acks are treated as fully applied, lost reports as a
  // missing period — neither stalls the controller).
  EXPECT_EQ(r.final_active_nodes, 2);
  EXPECT_GT(MaxAlpha(r.recorder), 0.0);
  EXPECT_GT(r.summary.shed, 0u);
}

}  // namespace
}  // namespace ctrlshed
