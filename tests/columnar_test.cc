// Differential tests of the columnar datapath: the vectorized executor
// must be BIT-identical to the row path — same departure timeline, same
// clock, same counters — at every quantum, because it replicates the row
// path's per-tuple floating-point operation order exactly (see
// src/engine/columnar.cc). Each test runs the same injection schedule
// through two engines, one with SetColumnarEnabled(false), and compares
// with EXPECT_EQ on doubles (no tolerance: bit-identity is the contract).

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "engine/engine.h"
#include "engine/query_network.h"

namespace ctrlshed {
namespace {

struct DepartureLog {
  std::vector<Departure> rows;
  void Attach(Engine* e) {
    e->SetDepartureCallback(
        [this](const Departure& d) { rows.push_back(d); });
  }
};

/// Byte-level equality of two departure timelines.
void ExpectIdenticalTimelines(const DepartureLog& row,
                              const DepartureLog& col) {
  ASSERT_EQ(row.rows.size(), col.rows.size());
  for (size_t i = 0; i < row.rows.size(); ++i) {
    const Departure& a = row.rows[i];
    const Departure& b = col.rows[i];
    EXPECT_EQ(a.arrival_time, b.arrival_time) << "departure " << i;
    EXPECT_EQ(a.depart_time, b.depart_time) << "departure " << i;
    EXPECT_EQ(a.source, b.source) << "departure " << i;
    EXPECT_EQ(a.kind, b.kind) << "departure " << i;
    EXPECT_EQ(a.derived, b.derived) << "departure " << i;
  }
}

void ExpectIdenticalEngines(const Engine& row, const Engine& col) {
  EXPECT_EQ(row.cpu_clock(), col.cpu_clock());
  EXPECT_EQ(row.QueuedTuples(), col.QueuedTuples());
  EXPECT_EQ(row.OutstandingBaseLoad(), col.OutstandingBaseLoad());
  const EngineCounters& a = row.counters();
  const EngineCounters& b = col.counters();
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.departed, b.departed);
  EXPECT_EQ(a.invocations, b.invocations);
  EXPECT_EQ(a.busy_seconds, b.busy_seconds);
  EXPECT_EQ(a.drained_base_load, b.drained_base_load);
}

using NetworkBuilder = void (*)(QueryNetwork*);

/// Runs the same randomized injection schedule through a row-path and a
/// columnar engine at the given quantum and asserts bit-identity.
void RunDifferential(NetworkBuilder build, size_t quantum,
                     bool vary_cost = false, int tuples = 3000,
                     uint64_t seed = 17) {
  QueryNetwork net_row, net_col;
  build(&net_row);
  build(&net_col);

  Engine row(&net_row, /*headroom=*/0.97);
  Engine col(&net_col, /*headroom=*/0.97);
  row.SetColumnarEnabled(false);
  row.scheduler().set_quantum(quantum);
  col.scheduler().set_quantum(quantum);
  if (vary_cost) {
    const CostMultiplierFn mult = [](SimTime t) {
      return 1.0 + 0.5 * (static_cast<int64_t>(t * 10.0) % 4);
    };
    row.SetCostMultiplier(mult);
    col.SetCostMultiplier(mult);
  }

  DepartureLog row_log, col_log;
  row_log.Attach(&row);
  col_log.Attach(&col);

  // Bursty schedule: batches of arrivals interleaved with partial
  // advances, so the columnar path sees full chunks, chunk remainders,
  // mid-run stops at the quantum, and idle gaps.
  Rng rng(seed);
  SimTime now = 0.0;
  int injected = 0;
  while (injected < tuples) {
    const int burst = 1 + static_cast<int>(rng.Uniform() * 300.0);
    for (int i = 0; i < burst && injected < tuples; ++i, ++injected) {
      Tuple t;
      t.source = 0;
      t.arrival_time = now;
      t.value = rng.Uniform(-10.0, 10.0);
      t.aux = rng.Uniform();
      row.Inject(t, now);
      col.Inject(t, now);
    }
    now += rng.Uniform() * 0.05;
    row.AdvanceTo(now);
    col.AdvanceTo(now);
    ExpectIdenticalEngines(row, col);
  }
  row.AdvanceTo(now + 1000.0);
  col.AdvanceTo(now + 1000.0);

  ExpectIdenticalTimelines(row_log, col_log);
  ExpectIdenticalEngines(row, col);
  EXPECT_EQ(row.QueuedTuples(), 0u);
}

void BuildFilterChain(QueryNetwork* net) {
  auto* f = net->Add(std::make_unique<FilterOp>("f", 0.0002, 0.6));
  auto* m = net->Add(std::make_unique<MapOp>("m", 0.0001));
  f->ConnectTo(m);
  net->AddEntry(0, f);
  net->Finalize();
}

void BuildFilterCascade(QueryNetwork* net) {
  // Two filters back to back: survivors of the first feed the second, so
  // the columnar compact-into-downstream path chains across operators.
  auto* f1 = net->Add(std::make_unique<FilterOp>("f1", 0.0002, 0.7));
  auto* f2 = net->Add(std::make_unique<FilterOp>("f2", 0.0001, 0.4));
  auto* m = net->Add(std::make_unique<MapOp>("m", 0.0001));
  f1->ConnectTo(f2);
  f2->ConnectTo(m);
  net->AddEntry(0, f1);
  net->Finalize();
}

void BuildWindowAggChain(QueryNetwork* net) {
  auto* m = net->Add(std::make_unique<MapOp>("m", 0.0001));
  auto* agg = net->Add(std::make_unique<WindowAggregateOp>(
      "agg", 0.0002, /*window_size=*/4, WindowAggregateOp::Kind::kMean));
  m->ConnectTo(agg);
  net->AddEntry(0, m);
  net->Finalize();
}

void BuildAggIntoFilter(QueryNetwork* net) {
  // Aggregate emissions are derived lineages pushed into a downstream
  // filter — the columnar window-close inline path must account them
  // exactly like the row path's EmitFn.
  auto* agg = net->Add(std::make_unique<WindowAggregateOp>(
      "agg", 0.0002, /*window_size=*/3, WindowAggregateOp::Kind::kMax));
  auto* f = net->Add(std::make_unique<FilterOp>("f", 0.0001, 0.5));
  agg->ConnectTo(f);
  net->AddEntry(0, agg);
  net->Finalize();
}

void BuildSingleFilterSink(QueryNetwork* net) {
  // A lone filter whose survivors exit to the sink directly.
  net->AddEntry(0, net->Add(std::make_unique<FilterOp>("f", 0.0002, 0.5)));
  net->Finalize();
}

TEST(ColumnarDifferentialTest, FilterChainAtEveryQuantum) {
  for (const size_t q : {size_t{1}, size_t{4}, size_t{64}, size_t{128},
                         size_t{256}}) {
    SCOPED_TRACE("quantum " + std::to_string(q));
    RunDifferential(BuildFilterChain, q);
  }
}

TEST(ColumnarDifferentialTest, FilterCascadeAtEveryQuantum) {
  for (const size_t q : {size_t{1}, size_t{4}, size_t{64}, size_t{256}}) {
    SCOPED_TRACE("quantum " + std::to_string(q));
    RunDifferential(BuildFilterCascade, q);
  }
}

TEST(ColumnarDifferentialTest, WindowAggregateAtEveryQuantum) {
  for (const size_t q : {size_t{1}, size_t{4}, size_t{64}, size_t{128},
                         size_t{256}}) {
    SCOPED_TRACE("quantum " + std::to_string(q));
    RunDifferential(BuildWindowAggChain, q);
  }
}

TEST(ColumnarDifferentialTest, AggregateEmissionsIntoFilter) {
  for (const size_t q : {size_t{1}, size_t{4}, size_t{64}, size_t{256}}) {
    SCOPED_TRACE("quantum " + std::to_string(q));
    RunDifferential(BuildAggIntoFilter, q);
  }
}

TEST(ColumnarDifferentialTest, FilterDirectlyToSink) {
  for (const size_t q : {size_t{1}, size_t{64}, size_t{256}}) {
    SCOPED_TRACE("quantum " + std::to_string(q));
    RunDifferential(BuildSingleFilterSink, q);
  }
}

TEST(ColumnarDifferentialTest, TimeVaryingCostMultiplier) {
  // The per-tuple cost multiplier is sampled at the pre-invocation clock;
  // the columnar path must sample it at exactly the same instants.
  for (const size_t q : {size_t{1}, size_t{64}, size_t{256}}) {
    SCOPED_TRACE("quantum " + std::to_string(q));
    RunDifferential(BuildFilterChain, q, /*vary_cost=*/true);
    RunDifferential(BuildWindowAggChain, q, /*vary_cost=*/true);
  }
}

TEST(ColumnarDifferentialTest, Batch1IsRowPath) {
  // At quantum 1 the columnar gate (quantum >= kColumnarMinQuantum) keeps
  // the row path in charge even with columnar enabled — the seed-
  // equivalent configuration runs the seed code.
  QueryNetwork net;
  BuildFilterChain(&net);
  Engine e(&net, 0.97);
  e.scheduler().set_quantum(1);
  EXPECT_TRUE(e.columnar_enabled());
  static_assert(Engine::kColumnarMinQuantum > 1);
}

TEST(ColumnarDifferentialTest, InNetworkSheddingStaysIdentical) {
  // ShedFromQueues mutates operator queues between advances; the columnar
  // path must keep producing the identical timeline afterwards.
  QueryNetwork net_row, net_col;
  BuildFilterChain(&net_row);
  BuildFilterChain(&net_col);
  Engine row(&net_row, 0.97);
  Engine col(&net_col, 0.97);
  row.SetColumnarEnabled(false);
  row.scheduler().set_quantum(64);
  col.scheduler().set_quantum(64);
  DepartureLog row_log, col_log;
  row_log.Attach(&row);
  col_log.Attach(&col);

  Rng inject_rng(5);
  SimTime now = 0.0;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 400; ++i) {
      Tuple t;
      t.arrival_time = now;
      t.value = inject_rng.Uniform(-5.0, 5.0);
      row.Inject(t, now);
      col.Inject(t, now);
    }
    // Identical victim RNGs on both sides.
    Rng shed_row(1000 + round);
    Rng shed_col(1000 + round);
    const double removed_row = row.ShedFromQueues(0.01, shed_row);
    const double removed_col = col.ShedFromQueues(0.01, shed_col);
    EXPECT_EQ(removed_row, removed_col);
    now += 0.03;
    row.AdvanceTo(now);
    col.AdvanceTo(now);
    ExpectIdenticalEngines(row, col);
  }
  row.AdvanceTo(now + 1000.0);
  col.AdvanceTo(now + 1000.0);
  ExpectIdenticalTimelines(row_log, col_log);
  ExpectIdenticalEngines(row, col);
}

}  // namespace
}  // namespace ctrlshed
