#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>

#include "control/polynomial.h"

namespace ctrlshed {
namespace {

TEST(PolynomialTest, EvaluateReal) {
  Polynomial p({1.0, -2.0, 1.0});  // 1 - 2x + x^2 = (x-1)^2
  EXPECT_DOUBLE_EQ(p.Evaluate(1.0), 0.0);
  EXPECT_DOUBLE_EQ(p.Evaluate(3.0), 4.0);
  EXPECT_EQ(p.Degree(), 2);
}

TEST(PolynomialTest, EvaluateComplex) {
  Polynomial p({1.0, 0.0, 1.0});  // 1 + x^2
  std::complex<double> v = p.Evaluate(std::complex<double>(0.0, 1.0));
  EXPECT_NEAR(std::abs(v), 0.0, 1e-12);
}

TEST(PolynomialTest, TrimsTrailingZeros) {
  Polynomial p({1.0, 2.0, 0.0, 0.0});
  EXPECT_EQ(p.Degree(), 1);
}

TEST(PolynomialTest, ZeroPolynomial) {
  Polynomial p({0.0});
  EXPECT_TRUE(p.IsZero());
  Polynomial q;
  EXPECT_TRUE(q.IsZero());
}

TEST(PolynomialTest, Addition) {
  Polynomial a({1.0, 2.0});
  Polynomial b({3.0, 0.0, 5.0});
  Polynomial c = a + b;
  EXPECT_EQ(c.Degree(), 2);
  EXPECT_DOUBLE_EQ(c[0], 4.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
  EXPECT_DOUBLE_EQ(c[2], 5.0);
}

TEST(PolynomialTest, Multiplication) {
  Polynomial a({-1.0, 1.0});  // x - 1
  Polynomial b({-2.0, 1.0});  // x - 2
  Polynomial c = a * b;       // x^2 - 3x + 2
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], -3.0);
  EXPECT_DOUBLE_EQ(c[2], 1.0);
}

TEST(PolynomialTest, ScalarMultiplication) {
  Polynomial a({1.0, 2.0});
  Polynomial b = a * 3.0;
  EXPECT_DOUBLE_EQ(b[0], 3.0);
  EXPECT_DOUBLE_EQ(b[1], 6.0);
}

TEST(PolynomialTest, FromRootsRealPair) {
  Polynomial p = Polynomial::FromRoots({{0.7, 0.0}, {0.7, 0.0}});
  // (x - 0.7)^2 = x^2 - 1.4 x + 0.49 — the paper's desired CLCE (Eq. 14).
  EXPECT_NEAR(p[0], 0.49, 1e-12);
  EXPECT_NEAR(p[1], -1.4, 1e-12);
  EXPECT_NEAR(p[2], 1.0, 1e-12);
}

TEST(PolynomialTest, FromRootsConjugatePair) {
  Polynomial p = Polynomial::FromRoots({{0.5, 0.3}, {0.5, -0.3}});
  // x^2 - x + 0.34.
  EXPECT_NEAR(p[0], 0.34, 1e-12);
  EXPECT_NEAR(p[1], -1.0, 1e-12);
}

TEST(PolynomialTest, RootsOfQuadratic) {
  Polynomial p({2.0, -3.0, 1.0});  // (x-1)(x-2)
  auto roots = p.Roots();
  ASSERT_EQ(roots.size(), 2u);
  std::vector<double> re = {roots[0].real(), roots[1].real()};
  std::sort(re.begin(), re.end());
  EXPECT_NEAR(re[0], 1.0, 1e-9);
  EXPECT_NEAR(re[1], 2.0, 1e-9);
  EXPECT_NEAR(std::abs(roots[0].imag()), 0.0, 1e-9);
}

TEST(PolynomialTest, RootsOfComplexQuadratic) {
  Polynomial p({1.0, 0.0, 1.0});  // roots +-i
  auto roots = p.Roots();
  ASSERT_EQ(roots.size(), 2u);
  for (const auto& r : roots) {
    EXPECT_NEAR(std::abs(r), 1.0, 1e-9);
    EXPECT_NEAR(r.real(), 0.0, 1e-9);
  }
}

TEST(PolynomialTest, RootsRoundTripThroughFromRoots) {
  std::vector<std::complex<double>> want = {{0.3, 0.0}, {-0.5, 0.0}, {0.9, 0.0}};
  auto got = Polynomial::FromRoots(want).Roots();
  ASSERT_EQ(got.size(), 3u);
  std::vector<double> re;
  for (const auto& r : got) {
    re.push_back(r.real());
    EXPECT_NEAR(r.imag(), 0.0, 1e-8);
  }
  std::sort(re.begin(), re.end());
  EXPECT_NEAR(re[0], -0.5, 1e-8);
  EXPECT_NEAR(re[1], 0.3, 1e-8);
  EXPECT_NEAR(re[2], 0.9, 1e-8);
}

TEST(PolynomialTest, RootsOfLinear) {
  Polynomial p({-4.0, 2.0});  // 2x - 4
  auto roots = p.Roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(roots[0].real(), 2.0, 1e-10);
}

TEST(PolynomialTest, ConstantHasNoRoots) {
  Polynomial p({5.0});
  EXPECT_TRUE(p.Roots().empty());
}

TEST(PolynomialDeathTest, RootsOfZeroPolynomialAborts) {
  Polynomial p({0.0});
  EXPECT_DEATH(p.Roots(), "zero polynomial");
}

}  // namespace
}  // namespace ctrlshed
