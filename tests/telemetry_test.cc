#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "metrics/recorder.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/telemetry.h"
#include "telemetry/timeline.h"
#include "telemetry/tracer.h"

namespace ctrlshed {
namespace {

// Minimal JSON well-formedness checker: validates balanced structure,
// string escaping, and literal/number syntax. Enough to catch a malformed
// writer without pulling in a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
            e != 'n' && e != 'r' && e != 't' && e != 'u') {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    char* end = nullptr;
    std::strtod(s_.c_str() + start, &end);
    return end == s_.c_str() + pos_;
  }

  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

std::string TempDir(const char* tag) {
  std::string dir = ::testing::TempDir();
  if (!dir.empty() && dir.back() != '/') dir += '/';
  dir += "ctrlshed_telemetry_";
  dir += tag;
  dir += "_";
  dir += std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TracerTest, SpansRoundTripThroughTheRing) {
  Tracer tracer(/*buffer_capacity=*/64);
  TraceBuffer* buf = tracer.RegisterThread("main");
  ASSERT_NE(buf, nullptr);
  { ScopedSpan span(buf, "work"); }
  buf->Instant("marker");
  tracer.Drain();
  ASSERT_EQ(buf->collected().size(), 2u);
  EXPECT_STREQ(buf->collected()[0].name, "work");
  EXPECT_GE(buf->collected()[0].dur_us, 0);
  EXPECT_STREQ(buf->collected()[1].name, "marker");
  EXPECT_LT(buf->collected()[1].dur_us, 0);  // instant marker
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST(TracerTest, NullBufferSpanIsANoOp) {
  // The disabled path: ScopedSpan on a null buffer must not touch anything.
  ScopedSpan span(nullptr, "ignored");
}

TEST(TracerTest, FullRingDropsAndCounts) {
  Tracer tracer(/*buffer_capacity=*/8);
  TraceBuffer* buf = tracer.RegisterThread("noisy");
  const int emitted = 100;
  for (int i = 0; i < emitted; ++i) buf->Emit({"e", i, 1});
  tracer.Drain();
  EXPECT_EQ(buf->collected().size() + buf->dropped(),
            static_cast<size_t>(emitted));
  EXPECT_GT(buf->dropped(), 0u);
}

TEST(TracerTest, TwoThreadStressAccountsForEveryEvent) {
  // Two producer threads hammer small rings while this thread drains
  // concurrently; at the end, collected + dropped == emitted, per thread.
  Tracer tracer(/*buffer_capacity=*/32);
  constexpr int kPerThread = 20000;
  std::atomic<bool> go{false};
  std::vector<TraceBuffer*> bufs(2, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      TraceBuffer* buf = tracer.RegisterThread("worker" + std::to_string(t));
      bufs[t] = buf;
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kPerThread; ++i) {
        ScopedSpan span(buf, "stress");
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Concurrent drains exercise the SPSC consumer side against live
  // producers.
  for (int i = 0; i < 50; ++i) {
    tracer.Drain();
    std::this_thread::yield();
  }
  for (auto& th : threads) th.join();
  tracer.Drain();  // final drain after quiesce

  uint64_t collected = 0;
  uint64_t dropped = 0;
  for (TraceBuffer* buf : bufs) {
    ASSERT_NE(buf, nullptr);
    collected += buf->collected().size();
    dropped += buf->dropped();
  }
  EXPECT_EQ(collected + dropped, 2u * kPerThread);
  EXPECT_GT(collected, 0u);
  EXPECT_EQ(tracer.collected_events(), collected);
  EXPECT_EQ(tracer.dropped_events(), dropped);
}

TEST(TracerTest, ChromeTraceIsWellFormedJson) {
  Tracer tracer(/*buffer_capacity=*/16);
  TraceBuffer* buf = tracer.RegisterThread("na\"me\\with\nescapes");
  { ScopedSpan span(buf, "span_a"); }
  buf->Instant("instant_b");
  for (int i = 0; i < 40; ++i) buf->Emit({"overflow", i, 1});  // force drops
  std::ostringstream out;
  tracer.WriteChromeTrace(out);
  const std::string json = out.str();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread_name
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // drop counter
  EXPECT_NE(json.find("span_a"), std::string::npos);
}

TEST(MetricsRegistryTest, GetIsIdempotentAndStable) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("events");
  EXPECT_EQ(reg.GetCounter("events"), c);
  c->Add(3);
  c->Add();
  EXPECT_EQ(c->Value(), 4u);

  Gauge* g = reg.GetGauge("level");
  EXPECT_EQ(reg.GetGauge("level"), g);
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->Value(), 2.5);

  HistogramMetric* h = reg.GetHistogram("lat");
  EXPECT_EQ(reg.GetHistogram("lat"), h);
  h->Record(0.5);
  h->Record(1.5);
  const LatencyHistogram snap = h->Snapshot();
  EXPECT_EQ(snap.count(), 2u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 1.0);
}

TEST(MetricsRegistryTest, JsonLineIsWellFormedAndCarriesValues) {
  MetricsRegistry reg;
  reg.GetCounter("pumps")->Add(42);
  reg.GetGauge("alpha")->Set(0.25);
  reg.GetHistogram("lateness")->Record(0.001);
  std::ostringstream out;
  reg.WriteJsonLine(1.5, out);
  const std::string line = out.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  JsonChecker checker(line);
  EXPECT_TRUE(checker.Valid()) << line;
  EXPECT_NE(line.find("\"pumps\":42"), std::string::npos);
  EXPECT_NE(line.find("\"alpha\""), std::string::npos);
  EXPECT_NE(line.find("\"lateness\""), std::string::npos);
  EXPECT_NE(line.find("\"p99\""), std::string::npos);
}

TEST(TelemetryTest, DisabledWhenDirEmpty) {
  TelemetryOptions options;  // dir empty
  EXPECT_EQ(Telemetry::Open(options), nullptr);
}

TEST(TelemetryTest, SessionWritesTraceAndMetricsFiles) {
  TelemetryOptions options;
  options.dir = TempDir("session");
  options.export_period_wall = 0.01;
  std::unique_ptr<Telemetry> telemetry = Telemetry::Open(options);
  ASSERT_NE(telemetry, nullptr);

  TraceBuffer* buf = telemetry->RegisterThread("test_main");
  ASSERT_NE(buf, nullptr);
  { ScopedSpan span(buf, "unit_of_work"); }
  telemetry->metrics()->GetCounter("test.count")->Add(7);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  telemetry->Stop();
  telemetry->Stop();  // idempotent

  EXPECT_GE(telemetry->trace_events(), 1u);
  EXPECT_EQ(telemetry->trace_dropped(), 0u);

  const std::string trace = ReadFile(telemetry->trace_path());
  JsonChecker trace_checker(trace);
  EXPECT_TRUE(trace_checker.Valid());
  EXPECT_NE(trace.find("unit_of_work"), std::string::npos);
  EXPECT_NE(trace.find("test_main"), std::string::npos);

  const std::string metrics = ReadFile(telemetry->metrics_path());
  std::istringstream lines(metrics);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    JsonChecker line_checker(line);
    EXPECT_TRUE(line_checker.Valid()) << line;
    ++n;
  }
  EXPECT_GE(n, 1);
  EXPECT_NE(metrics.find("test.count"), std::string::npos);

  std::filesystem::remove_all(options.dir);
}

TEST(TelemetryTest, TraceOffStillExportsMetrics) {
  TelemetryOptions options;
  options.dir = TempDir("notrace");
  options.trace = false;
  std::unique_ptr<Telemetry> telemetry = Telemetry::Open(options);
  ASSERT_NE(telemetry, nullptr);
  EXPECT_EQ(telemetry->RegisterThread("anything"), nullptr);
  EXPECT_EQ(telemetry->tracer(), nullptr);
  telemetry->metrics()->GetGauge("g")->Set(1.0);
  telemetry->Stop();
  EXPECT_EQ(telemetry->trace_events(), 0u);
  EXPECT_FALSE(ReadFile(telemetry->metrics_path()).empty());
  std::filesystem::remove_all(options.dir);
}

Recorder MakeRecorder() {
  Recorder r;
  PeriodMeasurement m;
  m.k = 1;
  m.t = 1.0;
  m.period = 1.0;
  m.target_delay = 2.0;
  m.fin = 100.0;
  m.fin_forecast = 110.0;
  m.admitted = 80.0;
  m.fout = 75.0;
  m.queue = 12.0;
  m.cost = 0.005;
  m.y_hat = 1.75;
  m.y_measured = 1.8;
  m.has_y_measured = true;
  r.Record(m, 85.0, 0.2, 0.001);
  m.k = 2;
  m.t = 2.0;
  m.has_y_measured = false;  // lull: y_meas should export as null/nan
  r.Record(m, 90.0, 0.1);
  return r;
}

TEST(TimelineTest, JsonlRowsAreWellFormedAndCarryControlSignals) {
  const Recorder r = MakeRecorder();
  std::ostringstream out;
  WriteTimelineJsonl(r, out);
  std::istringstream lines(out.str());
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    JsonChecker checker(line);
    EXPECT_TRUE(checker.Valid()) << line;
    for (const char* key : {"\"k\"", "\"q\"", "\"y_hat\"", "\"e\"", "\"u\"",
                            "\"v\"", "\"alpha\"", "\"loss\"", "\"lateness\""}) {
      EXPECT_NE(line.find(key), std::string::npos) << key << " in " << line;
    }
    ++n;
  }
  EXPECT_EQ(n, 2);
  // Derived signals of row 1: e = yd - y_hat = 0.25; u = v - fout = 10.
  const std::string text = out.str();
  EXPECT_NE(text.find("\"e\":0.25"), std::string::npos) << text;
  EXPECT_NE(text.find("\"u\":10"), std::string::npos) << text;
  // Row 2 has no departures: y_meas must be JSON null.
  EXPECT_NE(text.find("\"y_meas\":null"), std::string::npos) << text;
}

TEST(TimelineTest, WriteControlTimelineProducesBothFiles) {
  const Recorder r = MakeRecorder();
  const std::string dir = TempDir("timeline");
  std::filesystem::create_directories(dir);
  EXPECT_EQ(WriteControlTimeline(r, dir), 2u);
  const std::string csv = ReadFile(TimelineCsvPath(dir));
  EXPECT_NE(csv.find("k,t,"), std::string::npos);
  EXPECT_NE(csv.find("lateness"), std::string::npos);
  const std::string jsonl = ReadFile(TimelineJsonlPath(dir));
  EXPECT_NE(jsonl.find("\"y_hat\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ctrlshed
