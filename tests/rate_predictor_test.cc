#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "control/rate_predictor.h"
#include "workload/traces.h"

namespace ctrlshed {
namespace {

TEST(LastValuePredictorTest, ReturnsInput) {
  LastValuePredictor p;
  EXPECT_DOUBLE_EQ(p.Observe(123.0), 123.0);
  EXPECT_DOUBLE_EQ(p.Observe(7.0), 7.0);
}

TEST(EwmaPredictorTest, PrimesWithFirstSample) {
  EwmaPredictor p(0.5);
  EXPECT_DOUBLE_EQ(p.Observe(100.0), 100.0);
  EXPECT_DOUBLE_EQ(p.Observe(200.0), 150.0);
  EXPECT_DOUBLE_EQ(p.Observe(200.0), 175.0);
}

TEST(EwmaPredictorTest, AlphaOneIsLastValue) {
  EwmaPredictor p(1.0);
  p.Observe(10.0);
  EXPECT_DOUBLE_EQ(p.Observe(99.0), 99.0);
}

TEST(Ar1PredictorTest, LearnsPersistence) {
  // Strongly autocorrelated input: x(k+1) = 0.9 x(k) + noise.
  Ar1Predictor p;
  Rng rng(3);
  double x = 100.0;
  for (int k = 0; k < 500; ++k) {
    p.Observe(x);
    x = 200.0 + 0.9 * (x - 200.0) + rng.Normal(0.0, 5.0);
  }
  EXPECT_NEAR(p.phi(), 0.9, 0.1);
}

TEST(Ar1PredictorTest, WhiteNoisePhiNearZero) {
  Ar1Predictor p;
  Rng rng(4);
  for (int k = 0; k < 500; ++k) p.Observe(rng.Uniform(100.0, 300.0));
  EXPECT_LT(p.phi(), 0.25);
}

TEST(Ar1PredictorTest, NonNegativeForecast) {
  Ar1Predictor p;
  for (int k = 0; k < 10; ++k) {
    EXPECT_GE(p.Observe(k % 2 == 0 ? 0.0 : 1.0), 0.0);
  }
}

TEST(KalmanPredictorTest, TracksConstantLevel) {
  KalmanPredictor p;
  double forecast = 0.0;
  for (int k = 0; k < 100; ++k) forecast = p.Observe(250.0);
  EXPECT_NEAR(forecast, 250.0, 1.0);
  EXPECT_NEAR(p.slope(), 0.0, 0.5);
}

TEST(KalmanPredictorTest, AnticipatesRamp) {
  // On a steady ramp the slope state lets the forecast lead the last
  // value — exactly the Example-1 situation where last-value fails.
  KalmanPredictor p;
  double forecast = 0.0;
  double x = 100.0;
  for (int k = 0; k < 200; ++k) {
    forecast = p.Observe(x);
    x += 5.0;
  }
  // Next true value is x; last-value would predict x - 5.
  EXPECT_GT(forecast, x - 4.0);
  EXPECT_NEAR(p.slope(), 5.0, 1.0);
}

TEST(KalmanPredictorTest, NonNegative) {
  KalmanPredictor p;
  p.Observe(100.0);
  for (int k = 0; k < 20; ++k) EXPECT_GE(p.Observe(0.0), 0.0);
}

struct PredictorCase {
  PredictorKind kind;
};

class PredictorSweep : public ::testing::TestWithParam<PredictorKind> {};

TEST_P(PredictorSweep, FactoryProducesWorkingPredictor) {
  auto p = MakePredictor(GetParam());
  ASSERT_NE(p, nullptr);
  for (int k = 0; k < 50; ++k) {
    const double f = p->Observe(200.0 + 10.0 * (k % 5));
    EXPECT_GE(f, 0.0);
    EXPECT_LT(f, 1000.0);
  }
  EXPECT_FALSE(p->name().empty());
}

TEST_P(PredictorSweep, ForecastErrorBoundedOnEpisodicTrace) {
  // On the paper's episodic Pareto workload every predictor must at least
  // stay in the ballpark (mean absolute error below the trace stddev).
  RateTrace trace = MakeParetoTrace(2000.0, ParetoTraceParams{}, 9);
  auto p = MakePredictor(GetParam());
  double abs_err = 0.0;
  int n = 0;
  double forecast = trace.values()[0];
  for (size_t k = 0; k + 1 < trace.values().size(); ++k) {
    abs_err += std::abs(forecast - trace.values()[k + 1]);
    ++n;
    forecast = p->Observe(trace.values()[k + 1]);
  }
  const double mae = abs_err / n;
  EXPECT_LT(mae, 130.0);  // trace sd ~ 115-130 at the default parameters
}

INSTANTIATE_TEST_SUITE_P(AllPredictors, PredictorSweep,
                         ::testing::Values(PredictorKind::kLastValue,
                                           PredictorKind::kEwma,
                                           PredictorKind::kAr1,
                                           PredictorKind::kKalman));

TEST(PredictorComparisonTest, Ar1BeatsLastValueOnAr1Process) {
  Rng rng(11);
  Ar1Predictor ar1;
  LastValuePredictor last;
  double x = 200.0;
  double err_ar1 = 0.0, err_last = 0.0;
  double f_ar1 = x, f_last = x;
  for (int k = 0; k < 3000; ++k) {
    const double next = 200.0 + 0.85 * (x - 200.0) + rng.Normal(0.0, 20.0);
    err_ar1 += (f_ar1 - next) * (f_ar1 - next);
    err_last += (f_last - next) * (f_last - next);
    f_ar1 = ar1.Observe(next);
    f_last = last.Observe(next);
    x = next;
  }
  EXPECT_LT(err_ar1, err_last);
}

}  // namespace
}  // namespace ctrlshed
