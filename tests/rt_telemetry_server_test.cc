// End-to-end test of the live telemetry server under a real rt run: an
// SSE subscriber attached for the whole run must receive exactly the rows
// the run streamed to timeline.jsonl on disk — same bytes, same order —
// because both sinks share one serializer and one publish path.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "rt/rt_runtime.h"
#include "telemetry/timeline.h"

namespace ctrlshed {
namespace {

std::string TempDir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string(name) + "." + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// Subscribes to /timeline and drains until the server closes the stream
/// (run teardown), collecting the `data: ` payloads in arrival order.
class SseCollector {
 public:
  void Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(0, ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)))
        << std::strerror(errno);
    const char req[] = "GET /timeline HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
    ASSERT_EQ(static_cast<ssize_t>(sizeof(req) - 1),
              ::send(fd_, req, sizeof(req) - 1, 0));
    reader_ = std::thread([this] {
      char buf[4096];
      for (;;) {
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n <= 0) break;
        raw_.append(buf, static_cast<size_t>(n));
      }
    });
  }

  /// Joins the reader and splits the stream into SSE data payloads.
  std::vector<std::string> Finish() {
    if (reader_.joinable()) reader_.join();
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    std::vector<std::string> rows;
    // Skip the HTTP response headers, then parse `data: <row>\n\n` frames.
    size_t pos = raw_.find("\r\n\r\n");
    pos = pos == std::string::npos ? 0 : pos + 4;
    const std::string prefix = "data: ";
    while ((pos = raw_.find(prefix, pos)) != std::string::npos) {
      pos += prefix.size();
      const size_t end = raw_.find("\n\n", pos);
      if (end == std::string::npos) break;
      rows.push_back(raw_.substr(pos, end - pos));
      pos = end + 2;
    }
    return rows;
  }

  const std::string& raw() const { return raw_; }

 private:
  int fd_ = -1;
  std::string raw_;
  std::thread reader_;
};

std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(0, ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)));
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  EXPECT_EQ(static_cast<ssize_t>(req.size()),
            ::send(fd, req.data(), req.size(), 0));
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(RtTelemetryServerTest, LiveTimelineMatchesFileByteForByte) {
  const std::string dir = TempDir("ctrlshed_rt_sse_e2e");

  RtRunConfig cfg;
  cfg.base.method = Method::kCtrl;
  cfg.base.workload = WorkloadKind::kConstant;
  cfg.base.constant_rate = 380.0;  // sustained 2x overload: alpha active
  cfg.base.duration = 12.0;
  cfg.base.seed = 7;
  cfg.time_compression = 40.0;
  cfg.base.telemetry.dir = dir;
  cfg.base.telemetry.server_port = 0;

  SseCollector collector;
  int observed_port = -1;
  cfg.base.telemetry.on_server_start = [&](int port) {
    observed_port = port;
    collector.Connect(port);
  };

  RtRunResult r = RunRtExperiment(cfg);
  const std::vector<std::string> live = collector.Finish();

  ASSERT_GT(observed_port, 0);
  EXPECT_EQ(r.telemetry_port, observed_port);
  EXPECT_GE(r.sse_clients, 1u);
  // A loopback reader that does nothing but drain must never be slow.
  EXPECT_EQ(r.sse_rows_dropped, 0u);
  EXPECT_EQ(r.sse_rows_published, r.timeline_rows);

  // The stream and the file must agree row for row, byte for byte: both
  // are fed by the same TimelineRowJson serialization of each period.
  std::ifstream jsonl(TimelineJsonlPath(dir));
  ASSERT_TRUE(jsonl.is_open());
  std::vector<std::string> file_rows;
  for (std::string line; std::getline(jsonl, line);) {
    file_rows.push_back(line);
  }
  ASSERT_GT(file_rows.size(), 8u);
  ASSERT_EQ(live.size(), file_rows.size());
  for (size_t i = 0; i < file_rows.size(); ++i) {
    EXPECT_EQ(live[i], file_rows[i]) << "row " << i << " diverged";
  }
  EXPECT_EQ(live.size(), static_cast<size_t>(r.timeline_rows));

  std::filesystem::remove_all(dir);
}

TEST(RtTelemetryServerTest, MetricsEndpointExposesRunInstruments) {
  const std::string dir = TempDir("ctrlshed_rt_metrics_e2e");

  RtRunConfig cfg;
  cfg.base.method = Method::kCtrl;
  cfg.base.workload = WorkloadKind::kConstant;
  cfg.base.constant_rate = 380.0;
  cfg.base.duration = 10.0;
  cfg.base.seed = 7;
  cfg.time_compression = 40.0;
  cfg.workers = 2;  // the per-shard gauges only exist when sharded
  cfg.base.telemetry.dir = dir;
  cfg.base.telemetry.server_port = 0;

  // Scrape /metrics and /status mid-run from the server-start hook's
  // port, on a helper thread so the replay keeps running underneath.
  std::string metrics;
  std::string status;
  std::thread scraper;
  cfg.base.telemetry.on_server_start = [&](int port) {
    scraper = std::thread([&metrics, &status, port] {
      // Let a few control periods elapse so the gauges exist.
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      metrics = HttpGet(port, "/metrics");
      status = HttpGet(port, "/status");
    });
  };

  RtRunResult r = RunRtExperiment(cfg);
  scraper.join();

  EXPECT_GT(r.timeline_rows, 0u);
  // Per-shard control-loop gauges, folded into labeled families.
  EXPECT_NE(metrics.find("rt_shard_queue{shard=\"0\"}"), std::string::npos);
  EXPECT_NE(metrics.find("rt_shard_alpha{shard=\"0\"}"), std::string::npos);
  // Per-operator pump counters from the EngineObserver seam.
  EXPECT_NE(metrics.find("engine_op_processed_total{op=\""),
            std::string::npos);
  // The SSE feed's own health counters are scrapeable.
  EXPECT_NE(metrics.find("telemetry_sse_rows_published_total"),
            std::string::npos);
  // Status carries the run config section from the rt harness.
  EXPECT_NE(status.find("\"mode\":\"rt\""), std::string::npos);
  EXPECT_NE(status.find("\"sse\":"), std::string::npos);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ctrlshed
