// Property sweep of the closed loop on the nominal model plant: for every
// combination of per-tuple cost c, control period T, and headroom H, the
// CTRL law must drive the delay to the target with the designed dynamics —
// the controller's H/(cT) factor is exactly what makes the design
// plant-independent.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "control/ctrl_controller.h"

namespace ctrlshed {
namespace {

using GridParam = std::tuple<double, double, double>;  // c, T, H

class ClosedLoopGrid : public ::testing::TestWithParam<GridParam> {
 protected:
  // Simulates the saturated virtual-queue plant against the controller
  // for `periods` steps starting from queue `q0`; returns the final y.
  double RunLoop(double q0, int periods, double yd = 2.0) {
    const auto [c, T, H] = GetParam();
    CtrlOptions opts;
    opts.headroom = H;
    opts.anti_windup = false;
    CtrlController ctrl(opts);
    const double service = H / c;
    double q = q0;
    for (int k = 0; k < periods; ++k) {
      PeriodMeasurement m;
      m.period = T;
      m.target_delay = yd;
      m.cost = c;
      m.queue = q;
      m.fout = service;
      m.y_hat = (q + 1.0) * c / H;
      const double v = ctrl.DesiredRate(m);
      q = std::max(0.0, q + T * (v - service));
    }
    return (q + 1.0) * c / H;
  }
};

TEST_P(ClosedLoopGrid, ConvergesFromAbove) {
  const auto [c, T, H] = GetParam();
  const double y0 = 5.0;  // start 2.5x above target
  const double q0 = y0 * H / c;
  EXPECT_NEAR(RunLoop(q0, 80), 2.0, 0.05) << "c=" << c << " T=" << T;
}

TEST_P(ClosedLoopGrid, ConvergesFromBelow) {
  EXPECT_NEAR(RunLoop(/*q0=*/1.0, 80), 2.0, 0.05);
}

TEST_P(ClosedLoopGrid, ErrorDecaysAtDesignedRate) {
  // Poles at 0.7: from a 4-second initial error, after k periods the
  // error is O(4 * k * 0.7^k). Check two checkpoints with slack for the
  // zero-induced transient (the response may cross the target once).
  const auto [c, T, H] = GetParam();
  const double q0 = 6.0 * H / c;  // y0 = 6 s, error 4 s
  EXPECT_LT(std::abs(RunLoop(q0, 12) - 2.0), 0.4);
  EXPECT_LT(std::abs(RunLoop(q0, 24) - 2.0), 0.02);
}

TEST_P(ClosedLoopGrid, TracksMovedTarget) {
  const auto [c, T, H] = GetParam();
  const double q0 = 2.0 * H / c;
  EXPECT_NEAR(RunLoop(q0, 80, /*yd=*/4.0), 4.0, 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    CostPeriodHeadroom, ClosedLoopGrid,
    ::testing::Combine(::testing::Values(0.001, 0.00526, 0.020),
                       ::testing::Values(0.25, 1.0, 2.0),
                       ::testing::Values(0.5, 0.97)));

}  // namespace
}  // namespace ctrlshed
