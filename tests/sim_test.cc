#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulation.h"

namespace ctrlshed {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.Push(3.0, [&] { order.push_back(3); });
  q.Push(1.0, [&] { order.push_back(1); });
  q.Push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.Pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Push(1.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.Pop().action();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.Push(5.0, [] {});
  q.Push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.NextTime(), 2.0);
  EXPECT_EQ(q.size(), 2u);
}

TEST(SimulationTest, RunsEventsAndAdvancesClock) {
  Simulation sim;
  std::vector<double> times;
  sim.Schedule(1.5, [&] { times.push_back(sim.now()); });
  sim.Schedule(0.5, [&] { times.push_back(sim.now()); });
  sim.Run(10.0);
  EXPECT_EQ(times, (std::vector<double>{0.5, 1.5}));
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(SimulationTest, EventsPastEndAreNotRun) {
  Simulation sim;
  bool ran = false;
  sim.Schedule(5.0, [&] { ran = true; });
  sim.Run(4.0);
  EXPECT_FALSE(ran);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(SimulationTest, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) sim.Schedule(sim.now() + 1.0, chain);
  };
  sim.Schedule(1.0, chain);
  sim.Run(100.0);
  EXPECT_EQ(count, 5);
}

TEST(SimulationTest, ScheduleEveryRepeatsUntilFalse) {
  Simulation sim;
  std::vector<double> ticks;
  sim.ScheduleEvery(1.0, 1.0, [&](SimTime t) {
    ticks.push_back(t);
    return ticks.size() < 3;
  });
  sim.Run(50.0);
  EXPECT_EQ(ticks, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(SimulationTest, ScheduleEveryStopsAtEnd) {
  Simulation sim;
  int ticks = 0;
  sim.ScheduleEvery(1.0, 1.0, [&](SimTime) {
    ++ticks;
    return true;
  });
  sim.Run(5.5);
  EXPECT_EQ(ticks, 5);
}

class RecordingProcess : public Process {
 public:
  void AdvanceTo(SimTime t) override { advances.push_back(t); }
  std::vector<SimTime> advances;
};

TEST(SimulationTest, ProcessesAdvanceBeforeEachEvent) {
  Simulation sim;
  RecordingProcess proc;
  sim.AttachProcess(&proc);
  sim.Schedule(1.0, [] {});
  sim.Schedule(2.0, [] {});
  sim.Run(3.0);
  // Advance to each event time, then to the end of the run.
  EXPECT_EQ(proc.advances, (std::vector<SimTime>{1.0, 2.0, 3.0}));
}

TEST(SimulationTest, ProcessSeesEventEffectsInOrder) {
  // A process advancing to time t must run before the event at t fires.
  Simulation sim;
  RecordingProcess proc;
  sim.AttachProcess(&proc);
  double seen_at_event = -1.0;
  sim.Schedule(2.0, [&] { seen_at_event = proc.advances.back(); });
  sim.Run(5.0);
  EXPECT_DOUBLE_EQ(seen_at_event, 2.0);
}

TEST(SimulationDeathTest, SchedulingIntoThePastAborts) {
  Simulation sim;
  sim.Schedule(1.0, [] {});
  sim.Run(2.0);
  EXPECT_DEATH(sim.Schedule(1.0, [] {}), "past");
}

}  // namespace
}  // namespace ctrlshed
