#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "control/pole_placement.h"

namespace ctrlshed {
namespace {

TEST(PolePlacementTest, PaperPublishedGains) {
  // Section 5: "b0 = 0.4, b1 = -0.31, and a = -0.8" for poles at 0.7.
  ControllerGains g = DesignPolePlacement(0.7, 0.7, -0.8);
  EXPECT_NEAR(g.b0, 0.4, 1e-12);
  EXPECT_NEAR(g.b1, -0.31, 1e-12);
  EXPECT_NEAR(g.a, -0.8, 1e-12);
}

TEST(PolePlacementTest, DiophantineEquationHolds) {
  // Eq. 18: a - 1 + b0 = -(p1+p2) and -a + b1 = p1 p2.
  ControllerGains g = DesignPolePlacement(0.6, 0.8, -0.5);
  EXPECT_NEAR(g.a - 1.0 + g.b0, -(0.6 + 0.8), 1e-12);
  EXPECT_NEAR(-g.a + g.b1, 0.6 * 0.8, 1e-12);
}

TEST(PolePlacementTest, UnityStaticGainHolds) {
  // Eq. 19: closed-loop static gain must be exactly 1.
  for (double a : {-0.9, -0.8, -0.5, 0.0, 0.3}) {
    ControllerGains g = DesignPolePlacement(0.7, 0.7, a);
    TransferFunction cl = ClosedLoop(g);
    EXPECT_NEAR(cl.StaticGain(), 1.0, 1e-12) << "a = " << a;
  }
}

struct PolePair {
  double p1, p2;
};

class PolePlacementSweep : public ::testing::TestWithParam<PolePair> {};

TEST_P(PolePlacementSweep, ClosedLoopPolesLandWhereDesigned) {
  const auto [p1, p2] = GetParam();
  ControllerGains g = DesignPolePlacement(p1, p2);
  TransferFunction cl = ClosedLoop(g);
  auto poles = cl.Poles();
  ASSERT_EQ(poles.size(), 2u);
  // Sort by real part for comparison.
  double lo = std::min(poles[0].real(), poles[1].real());
  double hi = std::max(poles[0].real(), poles[1].real());
  EXPECT_NEAR(lo, std::min(p1, p2), 1e-7);
  EXPECT_NEAR(hi, std::max(p1, p2), 1e-7);
  EXPECT_NEAR(poles[0].imag(), 0.0, 1e-7);
}

TEST_P(PolePlacementSweep, ClosedLoopIsStable) {
  const auto [p1, p2] = GetParam();
  TransferFunction cl = ClosedLoop(DesignPolePlacement(p1, p2));
  EXPECT_TRUE(cl.IsStable());
}

TEST_P(PolePlacementSweep, StepResponseTracksReference) {
  const auto [p1, p2] = GetParam();
  TransferFunction cl = ClosedLoop(DesignPolePlacement(p1, p2));
  auto y = cl.StepResponse(300);
  EXPECT_NEAR(y.back(), 1.0, 1e-6);
}

TEST_P(PolePlacementSweep, CriticallyDampedNoOscillation) {
  // Equal real poles = damping 1: the step response must not overshoot
  // much. The controller zero adds some kick, which grows as the poles
  // get very fast — the paper's point that placing poles near 0 demands
  // excessive control authority — so the bound only applies to the
  // practical range.
  const auto [p1, p2] = GetParam();
  if (p1 != p2 || p1 < 0.3) return;
  TransferFunction cl = ClosedLoop(DesignPolePlacement(p1, p2));
  auto y = cl.StepResponse(300);
  for (double v : y) EXPECT_LT(v, 1.35);
}

INSTANTIATE_TEST_SUITE_P(
    PoleGrid, PolePlacementSweep,
    ::testing::Values(PolePair{0.7, 0.7}, PolePair{0.5, 0.5},
                      PolePair{0.3, 0.3}, PolePair{0.9, 0.9},
                      PolePair{0.4, 0.8}, PolePair{0.2, 0.6},
                      PolePair{0.6, 0.95}, PolePair{0.1, 0.1}));

class GainRobustnessSweep : public ::testing::TestWithParam<double> {};

TEST_P(GainRobustnessSweep, StableUnderLoopGainError) {
  // Modeling error in c or H scales the loop gain; the design must
  // tolerate a wide band (the paper's argument for closed-loop control).
  const double gain = GetParam();
  TransferFunction cl = ClosedLoop(DesignPolePlacement(0.7, 0.7), gain);
  EXPECT_TRUE(cl.IsStable()) << "gain error " << gain;
  auto y = cl.StepResponse(800);
  EXPECT_NEAR(y.back(), 1.0, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(GainGrid, GainRobustnessSweep,
                         ::testing::Values(0.3, 0.5, 0.8, 1.0, 1.3, 1.7, 2.2));

TEST(PolePlacementTest, ExcessiveGainErrorEventuallyDestabilizes) {
  // Sanity bound on the robustness claim: a large enough mismatch breaks
  // the loop, so the sweep above is not vacuous.
  bool unstable_found = false;
  for (double gain : {4.0, 6.0, 10.0, 20.0}) {
    if (!ClosedLoop(DesignPolePlacement(0.7, 0.7), gain).IsStable()) {
      unstable_found = true;
      break;
    }
  }
  EXPECT_TRUE(unstable_found);
}

TEST(PolePlacementTest, NormalizedPlantIsIntegrator) {
  TransferFunction g = NormalizedPlant();
  auto poles = g.Poles();
  ASSERT_EQ(poles.size(), 1u);
  EXPECT_NEAR(poles[0].real(), 1.0, 1e-12);
}

TEST(PolePlacementTest, ControllerPoleAtMinusA) {
  ControllerGains g = DesignPolePlacement(0.7, 0.7, -0.8);
  auto poles = NormalizedController(g).Poles();
  ASSERT_EQ(poles.size(), 1u);
  EXPECT_NEAR(poles[0].real(), 0.8, 1e-10);
}

TEST(PolePlacementTest, FasterPolesConvergeFaster) {
  auto settle = [](double pole) {
    auto y = ClosedLoop(DesignPolePlacement(pole, pole)).StepResponse(400);
    for (size_t k = 0; k < y.size(); ++k) {
      bool settled = true;
      for (size_t j = k; j < y.size(); ++j) {
        if (std::abs(y[j] - 1.0) > 0.02) {
          settled = false;
          break;
        }
      }
      if (settled) return static_cast<int>(k);
    }
    return static_cast<int>(y.size());
  };
  EXPECT_LT(settle(0.3), settle(0.9));
}

}  // namespace
}  // namespace ctrlshed
