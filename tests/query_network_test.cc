#include <gtest/gtest.h>

#include <memory>

#include "engine/query_network.h"

namespace ctrlshed {
namespace {

TEST(QueryNetworkTest, RemainingCostOfChain) {
  QueryNetwork net;
  auto* a = net.Add(std::make_unique<MapOp>("a", 1.0));
  auto* b = net.Add(std::make_unique<MapOp>("b", 2.0));
  auto* c = net.Add(std::make_unique<MapOp>("c", 4.0));
  a->ConnectTo(b);
  b->ConnectTo(c);
  net.AddEntry(0, a);
  net.Finalize();
  EXPECT_DOUBLE_EQ(net.RemainingCost(c), 4.0);
  EXPECT_DOUBLE_EQ(net.RemainingCost(b), 6.0);
  EXPECT_DOUBLE_EQ(net.RemainingCost(a), 7.0);
  EXPECT_DOUBLE_EQ(net.EntryCost(0), 7.0);
}

TEST(QueryNetworkTest, RemainingCostWeightsBySelectivity) {
  QueryNetwork net;
  auto* f = net.Add(std::make_unique<FilterOp>("f", 1.0, 0.5));
  auto* m = net.Add(std::make_unique<MapOp>("m", 10.0));
  f->ConnectTo(m);
  net.AddEntry(0, f);
  net.Finalize();
  // Only half the tuples reach m: expected remaining = 1 + 0.5 * 10.
  EXPECT_DOUBLE_EQ(net.RemainingCost(f), 6.0);
}

TEST(QueryNetworkTest, ForkSumsBranches) {
  QueryNetwork net;
  auto* a = net.Add(std::make_unique<MapOp>("a", 1.0));
  auto* b = net.Add(std::make_unique<MapOp>("b", 2.0));
  auto* c = net.Add(std::make_unique<MapOp>("c", 3.0));
  a->ConnectTo(b);
  a->ConnectTo(c);
  net.AddEntry(0, a);
  net.Finalize();
  EXPECT_DOUBLE_EQ(net.RemainingCost(a), 6.0);
}

TEST(QueryNetworkTest, MultiEntrySourceSumsEntryCosts) {
  QueryNetwork net;
  auto* a = net.Add(std::make_unique<MapOp>("a", 1.0));
  auto* b = net.Add(std::make_unique<MapOp>("b", 2.0));
  net.AddEntry(0, a);
  net.AddEntry(0, b);  // one stream entering at two points
  net.Finalize();
  EXPECT_DOUBLE_EQ(net.EntryCost(0), 3.0);
  EXPECT_EQ(net.NumSources(), 1);
}

TEST(QueryNetworkTest, MeanEntryCostAveragesSources) {
  QueryNetwork net;
  auto* a = net.Add(std::make_unique<MapOp>("a", 2.0));
  auto* b = net.Add(std::make_unique<MapOp>("b", 4.0));
  net.AddEntry(0, a);
  net.AddEntry(1, b);
  net.Finalize();
  EXPECT_DOUBLE_EQ(net.MeanEntryCost(), 3.0);
}

TEST(QueryNetworkTest, FinalizeWithMeanEntryCostScalesExactly) {
  QueryNetwork net;
  auto* a = net.Add(std::make_unique<MapOp>("a", 1.0));
  auto* b = net.Add(std::make_unique<MapOp>("b", 3.0));
  a->ConnectTo(b);
  net.AddEntry(0, a);
  net.FinalizeWithMeanEntryCost(0.008);
  EXPECT_NEAR(net.MeanEntryCost(), 0.008, 1e-12);
  // Relative costs preserved: b is 3x a.
  EXPECT_NEAR(b->cost() / a->cost(), 3.0, 1e-12);
  EXPECT_NEAR(net.RemainingCost(a), 0.008, 1e-12);
}

TEST(QueryNetworkTest, SharedOperatorCountedPerPath) {
  // Two entries feeding a shared downstream operator (computation sharing).
  QueryNetwork net;
  auto* a = net.Add(std::make_unique<MapOp>("a", 1.0));
  auto* b = net.Add(std::make_unique<MapOp>("b", 1.0));
  auto* shared = net.Add(std::make_unique<MapOp>("s", 5.0));
  a->ConnectTo(shared);
  b->ConnectTo(shared);
  net.AddEntry(0, a);
  net.AddEntry(1, b);
  net.Finalize();
  EXPECT_DOUBLE_EQ(net.RemainingCost(a), 6.0);
  EXPECT_DOUBLE_EQ(net.RemainingCost(b), 6.0);
}

TEST(QueryNetworkTest, OperatorIdsAssignedSequentially) {
  QueryNetwork net;
  auto* a = net.Add(std::make_unique<MapOp>("a", 1.0));
  auto* b = net.Add(std::make_unique<MapOp>("b", 1.0));
  EXPECT_EQ(a->id(), 0);
  EXPECT_EQ(b->id(), 1);
  EXPECT_EQ(net.NumOperators(), 2u);
}

TEST(QueryNetworkDeathTest, CycleAborts) {
  QueryNetwork net;
  auto* a = net.Add(std::make_unique<MapOp>("a", 1.0));
  auto* b = net.Add(std::make_unique<MapOp>("b", 1.0));
  a->ConnectTo(b);
  b->ConnectTo(a);
  net.AddEntry(0, a);
  EXPECT_DEATH(net.Finalize(), "cycle");
}

TEST(QueryNetworkDeathTest, NoEntriesAborts) {
  QueryNetwork net;
  net.Add(std::make_unique<MapOp>("a", 1.0));
  EXPECT_DEATH(net.Finalize(), "entry");
}

TEST(QueryNetworkDeathTest, DoubleFinalizeAborts) {
  QueryNetwork net;
  auto* a = net.Add(std::make_unique<MapOp>("a", 1.0));
  net.AddEntry(0, a);
  net.Finalize();
  EXPECT_DEATH(net.Finalize(), "twice");
}

TEST(QueryNetworkDeathTest, AddEntryAfterFinalizeAborts) {
  QueryNetwork net;
  auto* a = net.Add(std::make_unique<MapOp>("a", 1.0));
  net.AddEntry(0, a);
  net.Finalize();
  EXPECT_DEATH(net.AddEntry(0, a), "finalized");
}

TEST(QueryNetworkDeathTest, RemainingCostBeforeFinalizeAborts) {
  QueryNetwork net;
  auto* a = net.Add(std::make_unique<MapOp>("a", 1.0));
  net.AddEntry(0, a);
  EXPECT_DEATH(net.RemainingCost(a), "finalized");
}

}  // namespace
}  // namespace ctrlshed
