#include "engine/simd_kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "shedding/entry_shedder.h"
#include "shedding/shedder.h"

namespace ctrlshed {
namespace {

using kernels::FilterPassBound;
using kernels::FilterSalt;
using kernels::HashPayload;
using kernels::HashToUnit;

/// Randomized payloads with the adversarial corners mixed in: NaN,
/// infinities, signed zeros, denormals — the filter hashes raw bits, so
/// every one of these must behave identically across implementations.
std::vector<double> AdversarialPayloads(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  const double specials[] = {std::numeric_limits<double>::quiet_NaN(),
                             -std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             0.0,
                             -0.0,
                             std::numeric_limits<double>::denorm_min(),
                             std::numeric_limits<double>::max(),
                             -std::numeric_limits<double>::lowest()};
  for (size_t i = 0; i < n; ++i) {
    const double r = rng.Uniform();
    if (r < 0.15) {
      v[i] = specials[i % (sizeof(specials) / sizeof(specials[0]))];
    } else if (r < 0.5) {
      v[i] = rng.Uniform(-1e6, 1e6);
    } else {
      v[i] = rng.Uniform();
    }
  }
  return v;
}

TEST(SimdKernelsTest, IntegerPassBoundMatchesFloatComparison) {
  // The columnar filter's claim: (h >> 11) < FilterPassBound(th) decides
  // exactly what HashToUnit(v) < th decides, for every payload and
  // threshold (including the clamp corners).
  const std::vector<double> payloads = AdversarialPayloads(4096, 11);
  const double thresholds[] = {-0.5, 0.0,  1e-17, 0.25, 0.5,
                               0.75, 0.99, 1.0,   1.5};
  for (const double th : thresholds) {
    const uint64_t bound = FilterPassBound(th);
    for (int op_id = 0; op_id < 3; ++op_id) {
      const uint64_t salt = FilterSalt(op_id);
      for (const double v : payloads) {
        const bool float_pass = HashToUnit(v, op_id) < th;
        const bool int_pass = (HashPayload(v, salt) >> 11) < bound;
        ASSERT_EQ(float_pass, int_pass)
            << "threshold " << th << " payload " << v;
      }
    }
  }
}

TEST(SimdKernelsTest, ScalarFilterMaskMatchesRowPredicate) {
  const std::vector<double> payloads = AdversarialPayloads(1024, 23);
  const uint64_t salt = FilterSalt(1);
  for (const double th : {0.0, 0.3, 0.7, 1.0}) {
    const uint64_t bound = FilterPassBound(th);
    std::vector<uint8_t> mask(payloads.size(), 0xee);
    kernels::scalar::FilterMask(payloads.data(), payloads.size(), salt, bound,
                                mask.data());
    for (size_t i = 0; i < payloads.size(); ++i) {
      const uint8_t want = HashToUnit(payloads[i], 1) < th ? 1 : 0;
      ASSERT_EQ(mask[i], want) << "i=" << i << " th=" << th;
    }
  }
}

#if CTRLSHED_HAVE_AVX2
bool CpuHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }

TEST(SimdKernelsTest, Avx2FilterMaskMatchesScalar) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2 on this CPU";
  const std::vector<double> payloads = AdversarialPayloads(4096 + 3, 31);
  const uint64_t salt = FilterSalt(2);
  // Odd lengths exercise the scalar tail of the vector loop.
  for (const size_t n : {size_t{1}, size_t{3}, size_t{4}, size_t{7},
                         size_t{128}, payloads.size()}) {
    for (const double th : {0.0, 1e-12, 0.25, 0.5, 0.999, 1.0}) {
      const uint64_t bound = FilterPassBound(th);
      std::vector<uint8_t> scalar_mask(n, 0xaa), avx2_mask(n, 0x55);
      kernels::scalar::FilterMask(payloads.data(), n, salt, bound,
                                  scalar_mask.data());
      kernels::avx2::FilterMask(payloads.data(), n, salt, bound,
                                avx2_mask.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(scalar_mask[i], avx2_mask[i])
            << "n=" << n << " th=" << th << " i=" << i;
      }
    }
  }
}

TEST(SimdKernelsTest, Avx2ShedMaskMatchesScalar) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "no AVX2 on this CPU";
  Rng rng(47);
  std::vector<double> u(517);
  for (double& x : u) x = rng.Uniform();
  // Exact-boundary draws too: u == drop_p must fall on the same side.
  u[5] = 0.5;
  u[6] = std::nextafter(0.5, 0.0);
  u[7] = std::nextafter(0.5, 1.0);
  for (const double p : {1e-9, 0.25, 0.5, 0.99}) {
    for (const size_t n : {size_t{1}, size_t{5}, size_t{64}, u.size()}) {
      std::vector<uint8_t> scalar_mask(n, 0xaa), avx2_mask(n, 0x55);
      kernels::scalar::ShedMask(u.data(), n, p, scalar_mask.data());
      kernels::avx2::ShedMask(u.data(), n, p, avx2_mask.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(scalar_mask[i], avx2_mask[i])
            << "p=" << p << " n=" << n << " i=" << i;
      }
    }
  }
}
#endif  // CTRLSHED_HAVE_AVX2

TEST(BatchShedderTest, BatchAdmitIsStreamIdenticalToPerTupleCoinFlips) {
  // The batched shedder must consume the RNG stream exactly like the
  // per-tuple path: same seed => same admit/drop sequence, for every
  // alpha, across the clamp corners (which draw nothing) and batch sizes
  // spanning several 128-draw blocks.
  for (const double alpha : {0.0, 1e-12, 0.3, 0.5, 1.0 - 1e-12, 1.0}) {
    for (const size_t n : {size_t{1}, size_t{64}, size_t{128}, size_t{129},
                           size_t{1000}}) {
      Rng batch_rng(99);
      Rng seq_rng(99);
      std::vector<uint8_t> admit(n, 0xcc);
      BatchCoinFlipAdmit(batch_rng, alpha, n, admit.data());
      for (size_t i = 0; i < n; ++i) {
        const bool want = !seq_rng.Bernoulli(alpha);
        ASSERT_EQ(admit[i] != 0, want)
            << "alpha=" << alpha << " n=" << n << " i=" << i;
      }
      // Both paths must leave the RNG in the same state (so alternating
      // batched and per-tuple admission cannot diverge mid-run).
      ASSERT_DOUBLE_EQ(batch_rng.Uniform(), seq_rng.Uniform());
    }
  }
}

TEST(BatchShedderTest, EntrySheddersBatchMatchesAdmitLoop) {
  EntryShedder a(7);
  EntryShedder b(7);
  PeriodMeasurement m;
  m.fin_forecast = 100.0;
  a.Configure(60.0, m);  // alpha = 0.4
  b.Configure(60.0, m);
  const size_t kN = 777;
  std::vector<uint8_t> admit(kN, 0xcc);
  Tuple t;
  a.AdmitBatch(&t, kN, admit.data());
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(admit[i] != 0, b.Admit(t)) << "i=" << i;
  }
}

TEST(BatchShedderTest, BatchAdmitRateIsChiSquareConsistent) {
  // Goodness of fit of the batched coin flip against Bernoulli(1 - p):
  // one chi-square statistic per drop probability over a large draw count,
  // gated at the 99.9% quantile of chi^2 with 1 dof (10.83). Determinstic
  // seed, so this cannot flake — it guards against systematic bias (e.g.
  // an off-by-one in the block loop double-consuming draws).
  const size_t kN = 200000;
  std::vector<uint8_t> admit(kN);
  for (const double p : {0.1, 0.5, 0.9}) {
    Rng rng(1234);
    BatchCoinFlipAdmit(rng, p, kN, admit.data());
    const double admitted = static_cast<double>(
        kernels::CountMask(admit.data(), kN));
    const double dropped = static_cast<double>(kN) - admitted;
    const double e_admit = (1.0 - p) * static_cast<double>(kN);
    const double e_drop = p * static_cast<double>(kN);
    const double chi2 = (admitted - e_admit) * (admitted - e_admit) / e_admit +
                        (dropped - e_drop) * (dropped - e_drop) / e_drop;
    EXPECT_LT(chi2, 10.83) << "p=" << p << " admitted=" << admitted;
  }
}

TEST(SimdKernelsTest, CompactLaneKeepsMaskedPrefix) {
  const size_t kN = 300;
  std::vector<double> src(kN);
  std::vector<uint8_t> mask(kN);
  Rng rng(3);
  for (size_t i = 0; i < kN; ++i) {
    src[i] = static_cast<double>(i);
    mask[i] = rng.Uniform() < 0.4 ? 1 : 0;
  }
  std::vector<double> dst(kN, -1.0);
  const size_t k = kernels::CompactLane(src.data(), mask.data(), kN,
                                        dst.data());
  ASSERT_EQ(k, kernels::CountMask(mask.data(), kN));
  size_t j = 0;
  for (size_t i = 0; i < kN; ++i) {
    if (mask[i]) {
      ASSERT_EQ(dst[j], src[i]);
      ++j;
    }
  }
}

TEST(SimdKernelsTest, DispatchReportsAConsistentMode) {
  const kernels::KernelTable& table = kernels::Kernels();
  EXPECT_EQ(table.mode, kernels::ActiveSimdMode());
  EXPECT_NE(table.filter_mask, nullptr);
  EXPECT_NE(table.shed_mask, nullptr);
#if !CTRLSHED_HAVE_AVX2
  // A scalar-only build can never resolve to AVX2.
  EXPECT_EQ(table.mode, kernels::SimdMode::kScalar);
#endif
}

}  // namespace
}  // namespace ctrlshed
