#include "rt/adaptive_quantum.h"

#include <gtest/gtest.h>

#include "rt/cpu_affinity.h"

namespace ctrlshed {
namespace {

constexpr QuantumLimits kLim{4, 4096};

TEST(AdaptiveQuantumTest, GrowsUnderBacklogBeyondSetpoint) {
  // Behind the setpoint with a deep queue: double.
  EXPECT_EQ(NextQuantum(64, {3.0, 2.0, 1000}, kLim), 128u);
  // Repeated pressure walks multiplicatively to the ceiling, never past.
  size_t q = 4;
  for (int i = 0; i < 20; ++i) q = NextQuantum(q, {5.0, 2.0, 100000}, kLim);
  EXPECT_EQ(q, 4096u);
}

TEST(AdaptiveQuantumTest, DoesNotGrowOnShallowQueue) {
  // Delay above setpoint but barely any backlog: a bigger train could not
  // even fill, so hold.
  EXPECT_EQ(NextQuantum(64, {3.0, 2.0, 100}, kLim), 64u);
  // Boundary: queued must exceed 2x the current quantum.
  EXPECT_EQ(NextQuantum(64, {3.0, 2.0, 128}, kLim), 64u);
  EXPECT_EQ(NextQuantum(64, {3.0, 2.0, 129}, kLim), 128u);
}

TEST(AdaptiveQuantumTest, ShrinksWithLatencyHeadroom) {
  EXPECT_EQ(NextQuantum(128, {0.5, 2.0, 1000}, kLim), 64u);
  // Never below the configured-batch floor.
  EXPECT_EQ(NextQuantum(4, {0.0, 2.0, 0}, kLim), 4u);
  size_t q = 4096;
  for (int i = 0; i < 20; ++i) q = NextQuantum(q, {0.0, 2.0, 0}, kLim);
  EXPECT_EQ(q, 4u);
}

TEST(AdaptiveQuantumTest, HoldsInsideHysteresisBand) {
  // y_hat in [yd/2, yd]: no change in either direction.
  EXPECT_EQ(NextQuantum(64, {1.0, 2.0, 100000}, kLim), 64u);
  EXPECT_EQ(NextQuantum(64, {1.9, 2.0, 100000}, kLim), 64u);
  EXPECT_EQ(NextQuantum(64, {2.0, 2.0, 100000}, kLim), 64u);
}

TEST(AdaptiveQuantumTest, ClampsOutOfRangeCurrent) {
  // A current value outside the limits (e.g. after a floor change at
  // runtime) is pulled back into range even on a hold.
  EXPECT_EQ(NextQuantum(2, {1.0, 2.0, 0}, kLim), 4u);
  EXPECT_EQ(NextQuantum(8192, {1.0, 2.0, 0}, kLim), 4096u);
}

TEST(CpuAffinityTest, ParsePinCpusDisabledForms) {
  std::string err;
  for (const char* v : {"", "0", "off"}) {
    const PinPlan plan = ParsePinCpus(v, &err);
    EXPECT_FALSE(plan.enabled) << v;
    EXPECT_TRUE(err.empty()) << v;
    EXPECT_EQ(plan.CpuForShard(0), -1) << v;
  }
}

TEST(CpuAffinityTest, ParsePinCpusAutoRoundRobins) {
  std::string err;
  for (const char* v : {"auto", "1"}) {
    const PinPlan plan = ParsePinCpus(v, &err);
    ASSERT_TRUE(plan.enabled) << v;
    EXPECT_TRUE(err.empty()) << v;
    EXPECT_TRUE(plan.cpus.empty()) << v;
    const int n = NumCpus();
    EXPECT_EQ(plan.CpuForShard(0), 0);
    EXPECT_EQ(plan.CpuForShard(n), 0);
    EXPECT_EQ(plan.CpuForShard(n + 1), 1 % n);
  }
}

TEST(CpuAffinityTest, ParsePinCpusExplicitList) {
  std::string err;
  const PinPlan plan = ParsePinCpus("0,2,4", &err);
  ASSERT_TRUE(plan.enabled);
  EXPECT_TRUE(err.empty());
  ASSERT_EQ(plan.cpus.size(), 3u);
  EXPECT_EQ(plan.CpuForShard(0), 0);
  EXPECT_EQ(plan.CpuForShard(1), 2);
  EXPECT_EQ(plan.CpuForShard(2), 4);
  EXPECT_EQ(plan.CpuForShard(3), 0);  // wraps
}

TEST(CpuAffinityTest, ParsePinCpusRejectsMalformed) {
  for (const char* v : {"a", "1,x", "-1", "1,,2", "1,"}) {
    std::string err;
    const PinPlan plan = ParsePinCpus(v, &err);
    EXPECT_FALSE(plan.enabled) << v;
    EXPECT_FALSE(err.empty()) << v;
  }
}

TEST(CpuAffinityTest, NumCpusIsPositive) { EXPECT_GE(NumCpus(), 1); }

TEST(CpuAffinityTest, PinToCurrentCpuSucceedsOnLinux) {
#ifdef __linux__
  EXPECT_TRUE(PinCurrentThreadToCpu(0));
#endif
  // Out-of-range pins report failure instead of aborting.
  EXPECT_FALSE(PinCurrentThreadToCpu(-1));
  EXPECT_FALSE(PinCurrentThreadToCpu(1 << 20));
}

}  // namespace
}  // namespace ctrlshed
