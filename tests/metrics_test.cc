#include <gtest/gtest.h>

#include <sstream>

#include "metrics/qos_metrics.h"
#include "metrics/recorder.h"

namespace ctrlshed {
namespace {

Departure MakeDeparture(double arrival, double depart) {
  Departure d;
  d.arrival_time = arrival;
  d.depart_time = depart;
  return d;
}

TEST(QosAccumulatorTest, NoViolationsBelowTarget) {
  QosAccumulator q(2.0);
  q.OnDeparture(MakeDeparture(0.0, 1.5));
  q.OnDeparture(MakeDeparture(0.0, 2.0));
  EXPECT_DOUBLE_EQ(q.accumulated_violation(), 0.0);
  EXPECT_EQ(q.delayed_tuples(), 0u);
  EXPECT_DOUBLE_EQ(q.max_overshoot(), 0.0);
  EXPECT_EQ(q.departures(), 2u);
}

TEST(QosAccumulatorTest, AccumulatesViolations) {
  QosAccumulator q(2.0);
  q.OnDeparture(MakeDeparture(0.0, 3.0));   // +1.0
  q.OnDeparture(MakeDeparture(0.0, 2.5));   // +0.5
  q.OnDeparture(MakeDeparture(0.0, 1.0));   // ok
  EXPECT_DOUBLE_EQ(q.accumulated_violation(), 1.5);
  EXPECT_EQ(q.delayed_tuples(), 2u);
  EXPECT_DOUBLE_EQ(q.max_overshoot(), 1.0);
}

TEST(QosAccumulatorTest, MeanDelay) {
  QosAccumulator q(2.0);
  q.OnDeparture(MakeDeparture(0.0, 1.0));
  q.OnDeparture(MakeDeparture(1.0, 4.0));
  EXPECT_DOUBLE_EQ(q.mean_delay(), 2.0);
}

TEST(QosAccumulatorTest, EmptyMeanDelayIsZero) {
  QosAccumulator q(2.0);
  EXPECT_DOUBLE_EQ(q.mean_delay(), 0.0);
}

TEST(QosAccumulatorTest, SetpointChangeAppliesToLaterDepartures) {
  QosAccumulator q(2.0);
  q.OnDeparture(MakeDeparture(0.0, 2.5));  // +0.5 against yd = 2
  q.SetTargetDelay(5.0);
  q.OnDeparture(MakeDeparture(0.0, 4.0));  // ok against yd = 5
  EXPECT_DOUBLE_EQ(q.accumulated_violation(), 0.5);
  EXPECT_EQ(q.delayed_tuples(), 1u);
}

TEST(QosAccumulatorDeathTest, NonPositiveTargetAborts) {
  EXPECT_DEATH(QosAccumulator(0.0), "positive");
}

TEST(QosAccumulatorDeathTest, NegativeDelayAborts) {
  QosAccumulator q(2.0);
  EXPECT_DEATH(q.OnDeparture(MakeDeparture(5.0, 1.0)), "negative delay");
}

TEST(RecorderTest, StoresRowsInOrder) {
  Recorder r;
  PeriodMeasurement m;
  m.t = 1.0;
  m.fin = 100.0;
  r.Record(m, 90.0, 0.1);
  m.t = 2.0;
  r.Record(m, 80.0, 0.2);
  ASSERT_EQ(r.rows().size(), 2u);
  EXPECT_DOUBLE_EQ(r.rows()[0].m.t, 1.0);
  EXPECT_DOUBLE_EQ(r.rows()[1].v, 80.0);
  EXPECT_DOUBLE_EQ(r.rows()[1].alpha, 0.2);
}

TEST(RecorderTest, WriteProducesHeaderAndRows) {
  Recorder r;
  PeriodMeasurement m;
  m.t = 1.0;
  m.cost = 0.005;
  m.y_hat = 1.25;
  r.Record(m, 50.0, 0.0);
  std::ostringstream out;
  r.Write(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("y_hat"), std::string::npos);
  EXPECT_NE(text.find("1.2500"), std::string::npos);
  EXPECT_NE(text.find("5.0000"), std::string::npos);  // cost in ms
}

TEST(RecorderTest, EmptyRecorder) {
  Recorder r;
  EXPECT_TRUE(r.empty());
  std::ostringstream out;
  r.Write(out);
  EXPECT_FALSE(out.str().empty());  // header only
}

}  // namespace
}  // namespace ctrlshed
