#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/qos_metrics.h"
#include "metrics/recorder.h"

namespace ctrlshed {
namespace {

Departure MakeDeparture(double arrival, double depart) {
  Departure d;
  d.arrival_time = arrival;
  d.depart_time = depart;
  return d;
}

TEST(QosAccumulatorTest, NoViolationsBelowTarget) {
  QosAccumulator q(2.0);
  q.OnDeparture(MakeDeparture(0.0, 1.5));
  q.OnDeparture(MakeDeparture(0.0, 2.0));
  EXPECT_DOUBLE_EQ(q.accumulated_violation(), 0.0);
  EXPECT_EQ(q.delayed_tuples(), 0u);
  EXPECT_DOUBLE_EQ(q.max_overshoot(), 0.0);
  EXPECT_EQ(q.departures(), 2u);
}

TEST(QosAccumulatorTest, AccumulatesViolations) {
  QosAccumulator q(2.0);
  q.OnDeparture(MakeDeparture(0.0, 3.0));   // +1.0
  q.OnDeparture(MakeDeparture(0.0, 2.5));   // +0.5
  q.OnDeparture(MakeDeparture(0.0, 1.0));   // ok
  EXPECT_DOUBLE_EQ(q.accumulated_violation(), 1.5);
  EXPECT_EQ(q.delayed_tuples(), 2u);
  EXPECT_DOUBLE_EQ(q.max_overshoot(), 1.0);
}

TEST(QosAccumulatorTest, MeanDelay) {
  QosAccumulator q(2.0);
  q.OnDeparture(MakeDeparture(0.0, 1.0));
  q.OnDeparture(MakeDeparture(1.0, 4.0));
  EXPECT_DOUBLE_EQ(q.mean_delay(), 2.0);
}

TEST(QosAccumulatorTest, EmptyMeanDelayIsZero) {
  QosAccumulator q(2.0);
  EXPECT_DOUBLE_EQ(q.mean_delay(), 0.0);
}

TEST(QosAccumulatorTest, SetpointChangeAppliesToLaterDepartures) {
  QosAccumulator q(2.0);
  q.OnDeparture(MakeDeparture(0.0, 2.5));  // +0.5 against yd = 2
  q.SetTargetDelay(5.0);
  q.OnDeparture(MakeDeparture(0.0, 4.0));  // ok against yd = 5
  EXPECT_DOUBLE_EQ(q.accumulated_violation(), 0.5);
  EXPECT_EQ(q.delayed_tuples(), 1u);
}

TEST(QosAccumulatorDeathTest, NonPositiveTargetAborts) {
  EXPECT_DEATH(QosAccumulator(0.0), "positive");
}

TEST(QosAccumulatorDeathTest, NegativeDelayAborts) {
  QosAccumulator q(2.0);
  EXPECT_DEATH(q.OnDeparture(MakeDeparture(5.0, 1.0)), "negative delay");
}

TEST(RecorderTest, StoresRowsInOrder) {
  Recorder r;
  PeriodMeasurement m;
  m.t = 1.0;
  m.fin = 100.0;
  r.Record(m, 90.0, 0.1);
  m.t = 2.0;
  r.Record(m, 80.0, 0.2);
  ASSERT_EQ(r.rows().size(), 2u);
  EXPECT_DOUBLE_EQ(r.rows()[0].m.t, 1.0);
  EXPECT_DOUBLE_EQ(r.rows()[1].v, 80.0);
  EXPECT_DOUBLE_EQ(r.rows()[1].alpha, 0.2);
}

TEST(RecorderTest, WriteProducesHeaderAndRows) {
  Recorder r;
  PeriodMeasurement m;
  m.t = 1.0;
  m.cost = 0.005;
  m.y_hat = 1.25;
  r.Record(m, 50.0, 0.0);
  std::ostringstream out;
  r.Write(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("y_hat"), std::string::npos);
  EXPECT_NE(text.find("1.2500"), std::string::npos);
  EXPECT_NE(text.find("5.0000"), std::string::npos);  // cost in ms
}

TEST(RecorderTest, EmptyRecorder) {
  Recorder r;
  EXPECT_TRUE(r.empty());
  std::ostringstream out;
  r.Write(out);
  EXPECT_FALSE(out.str().empty());  // header only
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  return fields;
}

TEST(RecorderCsvTest, HeaderAndDerivedSignals) {
  Recorder r;
  PeriodMeasurement m;
  m.k = 1;
  m.t = 1.0;
  m.period = 1.0;
  m.target_delay = 2.0;
  m.fin = 100.0;
  m.fin_forecast = 105.0;
  m.admitted = 80.0;
  m.fout = 75.0;
  m.queue = 12.0;
  m.cost = 0.005;
  m.y_hat = 1.75;
  m.y_measured = 1.9;
  m.has_y_measured = true;
  r.Record(m, 85.0, 0.2, 0.0015);

  std::ostringstream out;
  r.WriteCsv(out);
  std::istringstream lines(out.str());
  std::string header, row;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  EXPECT_EQ(header,
            "k,t,period,yd,fin,fin_forecast,admitted,fout,q,c,y_hat,y_meas,"
            "e,u,v,alpha,loss,lateness,site,queue_shed");

  const std::vector<std::string> cols = SplitCsvLine(header);
  const std::vector<std::string> vals = SplitCsvLine(row);
  ASSERT_EQ(cols.size(), vals.size());
  auto col = [&](const char* name) -> double {
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == name) return std::strtod(vals[i].c_str(), nullptr);
    }
    ADD_FAILURE() << "no column " << name;
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(col("e"), 2.0 - 1.75);          // yd - y_hat
  EXPECT_DOUBLE_EQ(col("u"), 85.0 - 75.0);         // v - fout
  EXPECT_DOUBLE_EQ(col("loss"), 20.0 / 100.0);     // (fin - admitted)/fin
  EXPECT_DOUBLE_EQ(col("lateness"), 0.0015);
  EXPECT_DOUBLE_EQ(col("y_meas"), 1.9);
}

TEST(RecorderCsvTest, DoublesRoundTripExactly) {
  // %.17g must reproduce the stored doubles bit-for-bit through strtod,
  // independent of locale (no thousands separators, '.' decimal point).
  Recorder r;
  PeriodMeasurement m;
  m.k = 1;
  m.t = 1.0 / 3.0;
  m.period = 0.1;  // not representable in binary
  m.target_delay = 2.0;
  m.fin = 12345.6789012345678;
  m.y_hat = 1e-17;
  m.has_y_measured = false;
  r.Record(m, 1.0 / 7.0, 0.123456789012345678);

  std::ostringstream out;
  r.WriteCsv(out);
  std::istringstream lines(out.str());
  std::string header, row;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  const std::vector<std::string> cols = SplitCsvLine(header);
  const std::vector<std::string> vals = SplitCsvLine(row);
  ASSERT_EQ(cols.size(), vals.size());
  auto raw = [&](const char* name) -> std::string {
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == name) return vals[i];
    }
    ADD_FAILURE() << "no column " << name;
    return "";
  };
  EXPECT_EQ(std::strtod(raw("t").c_str(), nullptr), 1.0 / 3.0);
  EXPECT_EQ(std::strtod(raw("period").c_str(), nullptr), 0.1);
  EXPECT_EQ(std::strtod(raw("fin").c_str(), nullptr), 12345.6789012345678);
  EXPECT_EQ(std::strtod(raw("y_hat").c_str(), nullptr), 1e-17);
  EXPECT_EQ(std::strtod(raw("v").c_str(), nullptr), 1.0 / 7.0);
  EXPECT_EQ(std::strtod(raw("alpha").c_str(), nullptr), 0.123456789012345678);
  // Periods with no departures export y_meas as nan (strtod-parseable).
  EXPECT_TRUE(std::isnan(std::strtod(raw("y_meas").c_str(), nullptr)));
  // Locale independence: no comma can appear inside a number, so the
  // field count already proves it; also assert no spaces leak in.
  EXPECT_EQ(row.find(' '), std::string::npos);
}

}  // namespace
}  // namespace ctrlshed
