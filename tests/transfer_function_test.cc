#include <gtest/gtest.h>

#include <cmath>

#include "control/transfer_function.h"

namespace ctrlshed {
namespace {

TEST(TransferFunctionTest, FromDescendingMatchesAscending) {
  // (z + 2) / (z^2 - 1.4 z + 0.49)
  TransferFunction t = TransferFunction::FromDescending({1.0, 2.0},
                                                        {1.0, -1.4, 0.49});
  EXPECT_DOUBLE_EQ(t.num()[0], 2.0);
  EXPECT_DOUBLE_EQ(t.num()[1], 1.0);
  EXPECT_DOUBLE_EQ(t.den()[2], 1.0);
}

TEST(TransferFunctionTest, PolesAndZeros) {
  TransferFunction t = TransferFunction::FromDescending({1.0, -0.5},
                                                        {1.0, -1.4, 0.49});
  auto poles = t.Poles();
  ASSERT_EQ(poles.size(), 2u);
  EXPECT_NEAR(poles[0].real(), 0.7, 1e-8);
  EXPECT_NEAR(poles[1].real(), 0.7, 1e-8);
  auto zeros = t.Zeros();
  ASSERT_EQ(zeros.size(), 1u);
  EXPECT_NEAR(zeros[0].real(), 0.5, 1e-10);
}

TEST(TransferFunctionTest, StabilityInsideUnitCircle) {
  EXPECT_TRUE(TransferFunction::FromDescending({1.0}, {1.0, -0.9}).IsStable());
  EXPECT_FALSE(TransferFunction::FromDescending({1.0}, {1.0, -1.1}).IsStable());
  // Pole exactly on the unit circle (integrator) is not stable.
  EXPECT_FALSE(TransferFunction::FromDescending({1.0}, {1.0, -1.0}).IsStable());
}

TEST(TransferFunctionTest, StaticGain) {
  // G(z) = 0.5 / (z - 0.5): G(1) = 1.
  TransferFunction t = TransferFunction::FromDescending({0.5}, {1.0, -0.5});
  EXPECT_DOUBLE_EQ(t.StaticGain(), 1.0);
  // Integrator: infinite DC gain.
  TransferFunction i = TransferFunction::FromDescending({1.0}, {1.0, -1.0});
  EXPECT_TRUE(std::isinf(i.StaticGain()));
}

TEST(TransferFunctionTest, SimulateFirstOrderStep) {
  // y(k) = 0.5 y(k-1) + 0.5 u(k-1): step response 0, .5, .75, .875, ...
  TransferFunction t = TransferFunction::FromDescending({0.5}, {1.0, -0.5});
  auto y = t.StepResponse(5);
  ASSERT_EQ(y.size(), 5u);
  EXPECT_NEAR(y[0], 0.0, 1e-12);
  EXPECT_NEAR(y[1], 0.5, 1e-12);
  EXPECT_NEAR(y[2], 0.75, 1e-12);
  EXPECT_NEAR(y[3], 0.875, 1e-12);
}

TEST(TransferFunctionTest, SimulateIntegrator) {
  TransferFunction t = TransferFunction::FromDescending({1.0}, {1.0, -1.0});
  auto y = t.StepResponse(4);
  EXPECT_NEAR(y[0], 0.0, 1e-12);
  EXPECT_NEAR(y[1], 1.0, 1e-12);
  EXPECT_NEAR(y[2], 2.0, 1e-12);
  EXPECT_NEAR(y[3], 3.0, 1e-12);
}

TEST(TransferFunctionTest, SimulateFeedthrough) {
  // Pure gain: num and den same degree.
  TransferFunction t = TransferFunction::FromDescending({2.0, 0.0}, {1.0, 0.0});
  auto y = t.Simulate({1.0, 2.0, 3.0});
  EXPECT_NEAR(y[0], 2.0, 1e-12);
  EXPECT_NEAR(y[1], 4.0, 1e-12);
  EXPECT_NEAR(y[2], 6.0, 1e-12);
}

TEST(TransferFunctionTest, SeriesComposition) {
  TransferFunction a = TransferFunction::FromDescending({1.0}, {1.0, -0.5});
  TransferFunction b = TransferFunction::FromDescending({2.0}, {1.0, -0.25});
  TransferFunction c = a.Series(b);
  EXPECT_EQ(c.den().Degree(), 2);
  EXPECT_NEAR(c.StaticGain(), a.StaticGain() * b.StaticGain(), 1e-12);
}

TEST(TransferFunctionTest, UnityFeedbackGain) {
  // L = 4/(z-0.5); closed loop static gain = L(1)/(1+L(1)) = 8/9.
  TransferFunction l = TransferFunction::FromDescending({4.0}, {1.0, -0.5});
  TransferFunction cl = l.CloseUnityFeedback();
  EXPECT_NEAR(cl.StaticGain(), 8.0 / 9.0, 1e-12);
}

TEST(TransferFunctionTest, FeedbackStabilizesIntegrator) {
  // L = 0.5/(z-1) closed loop has pole at 0.5.
  TransferFunction l = TransferFunction::FromDescending({0.5}, {1.0, -1.0});
  TransferFunction cl = l.CloseUnityFeedback();
  EXPECT_TRUE(cl.IsStable());
  auto poles = cl.Poles();
  ASSERT_EQ(poles.size(), 1u);
  EXPECT_NEAR(poles[0].real(), 0.5, 1e-10);
}

TEST(TransferFunctionTest, StepResponseConvergesToStaticGain) {
  TransferFunction t = TransferFunction::FromDescending({0.3, 0.1},
                                                        {1.0, -0.8, 0.2});
  auto y = t.StepResponse(200);
  EXPECT_NEAR(y.back(), t.StaticGain(), 1e-9);
}

TEST(TransferFunctionDeathTest, ImproperSimulationAborts) {
  TransferFunction t(Polynomial({0.0, 0.0, 1.0}), Polynomial({1.0, 1.0}));
  EXPECT_DEATH(t.Simulate({1.0}), "improper");
}

TEST(TransferFunctionDeathTest, ZeroDenominatorAborts) {
  EXPECT_DEATH(TransferFunction(Polynomial({1.0}), Polynomial({0.0})),
               "denominator");
}

}  // namespace
}  // namespace ctrlshed
