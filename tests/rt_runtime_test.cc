// End-to-end tests of the real-time runtime: real threads, real clock,
// compressed time so each test costs well under a second of wall time.
// Assertions are deliberately loose — scheduling noise is the point of the
// subsystem — with the tight tracking gate living in bench/rt_soak.

#include "rt/rt_runtime.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "rt/rt_clock.h"
#include "telemetry/timeline.h"

namespace ctrlshed {
namespace {

TEST(RtClockTest, CompressionMapsTraceToWall) {
  RtClock clock(40.0);
  clock.Start();
  // 40 trace seconds = 1 wall second; deadlines are consistent with the
  // duration conversion.
  const auto d1 = clock.WallDeadline(40.0);
  const auto d2 = clock.WallDeadline(80.0);
  const auto gap = std::chrono::duration<double>(d2 - d1).count();
  EXPECT_NEAR(gap, 1.0, 1e-6);
  EXPECT_NEAR(std::chrono::duration<double>(clock.WallDuration(4.0)).count(),
              0.1, 1e-6);
  EXPECT_GE(clock.Now(), 0.0);
}

RtRunConfig BaseConfig() {
  RtRunConfig cfg;
  cfg.base.workload = WorkloadKind::kConstant;
  cfg.base.seed = 7;
  cfg.time_compression = 40.0;
  return cfg;
}

TEST(RtRuntimeTest, UnderloadOpenRunSmoke) {
  RtRunConfig cfg = BaseConfig();
  cfg.base.method = Method::kNone;
  cfg.base.constant_rate = 100.0;  // about half the 190 t/s capacity
  cfg.base.duration = 8.0;

  RtRunResult r = RunRtExperiment(cfg);

  // Poisson(100/s * 8s) = 800 expected offers; allow wide slack.
  EXPECT_GT(r.summary.offered, 600u);
  EXPECT_LT(r.summary.offered, 1000u);
  // Underloaded and uncontrolled: nothing shed anywhere.
  EXPECT_EQ(r.summary.shed, 0u);
  EXPECT_EQ(r.ring_dropped, 0u);
  EXPECT_DOUBLE_EQ(r.summary.loss_ratio, 0.0);
  // Nearly everything drains (a few tuples may be in flight at stop).
  EXPECT_GT(r.summary.departures,
            static_cast<uint64_t>(0.8 * static_cast<double>(r.summary.offered)));
  // An underloaded engine keeps delays near the per-tuple cost, far from
  // the overload regime.
  EXPECT_LT(r.summary.mean_delay, 0.5);
  EXPECT_GT(r.recorder.rows().size(), 4u);
}

TEST(RtRuntimeTest, OverloadControllerTracksSetpoint) {
  RtRunConfig cfg = BaseConfig();
  cfg.base.method = Method::kCtrl;
  cfg.base.constant_rate = 380.0;  // sustained 2x overload
  cfg.base.duration = 15.0;
  cfg.base.target_delay = 2.0;

  RtRunResult r = RunRtExperiment(cfg);

  // 2x overload must shed roughly half; wide band for scheduling noise.
  EXPECT_GT(r.summary.loss_ratio, 0.25);
  EXPECT_LT(r.summary.loss_ratio, 0.70);
  ASSERT_GE(r.recorder.rows().size(), 10u);

  // After the transient the delay estimate must sit near the setpoint
  // (the tight +/-20% gate is rt_soak's job; this is the sanity band).
  double sum = 0.0;
  int n = 0;
  for (const PeriodRecord& row : r.recorder.rows()) {
    if (row.m.k <= 5) continue;
    sum += row.m.y_hat;
    ++n;
  }
  ASSERT_GT(n, 4);
  const double mean_yhat = sum / n;
  EXPECT_GT(mean_yhat, 0.5 * cfg.base.target_delay);
  EXPECT_LT(mean_yhat, 1.5 * cfg.base.target_delay);
  // The entry shedder actually actuated.
  EXPECT_GT(r.summary.shed, 0u);
}

TEST(RtRuntimeTest, CostTraceAndQueueShedderTrackSetpoint) {
  // Rt parity for the two formerly sim-only actuation knobs: the Fig. 14
  // cost trace (sampled on the worker's clock) and the in-network queue
  // shedder (plan budgets executed inside the worker pump). The controlled
  // delay must still track the setpoint within the sanity band.
  RtRunConfig cfg = BaseConfig();
  cfg.base.method = Method::kCtrl;
  cfg.base.constant_rate = 380.0;
  cfg.base.duration = 15.0;
  cfg.base.target_delay = 2.0;
  cfg.base.vary_cost = true;
  cfg.base.use_queue_shedder = true;

  RtRunResult r = RunRtExperiment(cfg);

  ASSERT_GE(r.recorder.rows().size(), 10u);
  double sum = 0.0;
  int n = 0;
  for (const PeriodRecord& row : r.recorder.rows()) {
    if (row.m.k <= 5) continue;
    sum += row.m.y_hat;
    ++n;
  }
  ASSERT_GT(n, 4);
  const double mean_yhat = sum / n;
  EXPECT_GT(mean_yhat, 0.5 * cfg.base.target_delay);
  EXPECT_LT(mean_yhat, 1.5 * cfg.base.target_delay);
  // The run actually shed: with a cost trace on top of 2x overload the
  // loop cannot be idle.
  EXPECT_GT(r.summary.shed, 0u);
  // queue_shed is accounted separately from entry_shed and ring drops and
  // the summary total is their sum (the unified accounting scheme).
  EXPECT_EQ(r.summary.shed,
            r.summary.entry_shed + r.summary.ring_dropped +
                r.summary.queue_shed);
}

TEST(RtRuntimeTest, RingOverflowIsCountedAsLoss) {
  RtRunConfig cfg = BaseConfig();
  cfg.base.method = Method::kNone;  // no shedding: overflow is the relief
  cfg.base.constant_rate = 380.0;
  cfg.base.duration = 4.0;
  cfg.ring_capacity = 2;  // pathological ingress queue
  // Pump rarely (in wall time) so arrivals pile into the tiny ring
  // between pumps.
  cfg.pacing_wall_seconds = 2e-3;

  RtRunResult r = RunRtExperiment(cfg);

  EXPECT_GT(r.ring_dropped, 0u);
  // Drop-on-full feeds the loss ratio even with no controller installed.
  EXPECT_GT(r.summary.loss_ratio, 0.0);
  EXPECT_EQ(r.summary.shed, r.ring_dropped);
  // Offered splits into admitted + overflow (+ a handful still queued in
  // the ring at teardown).
  EXPECT_GE(r.summary.offered, r.ring_dropped);
}

TEST(RtRuntimeTest, SetpointScheduleIsApplied) {
  RtRunConfig cfg = BaseConfig();
  cfg.base.method = Method::kCtrl;
  cfg.base.constant_rate = 380.0;
  cfg.base.duration = 12.0;
  cfg.base.target_delay = 2.0;
  cfg.base.setpoint_schedule = {{6.0, 1.0}};

  RtRunResult r = RunRtExperiment(cfg);

  bool saw_initial = false;
  bool saw_changed = false;
  for (const PeriodRecord& row : r.recorder.rows()) {
    if (row.m.t < 5.5) saw_initial |= row.m.target_delay == 2.0;
    if (row.m.t > 7.5) saw_changed |= row.m.target_delay == 1.0;
  }
  EXPECT_TRUE(saw_initial);
  EXPECT_TRUE(saw_changed);
}

TEST(RtRuntimeTest, JitterHistogramsAreAlwaysCollected) {
  RtRunConfig cfg = BaseConfig();
  cfg.base.method = Method::kCtrl;
  cfg.base.constant_rate = 380.0;
  cfg.base.duration = 8.0;

  RtRunResult r = RunRtExperiment(cfg);

  // No telemetry dir, yet the scheduling-jitter record is there: one
  // sample per worker pump and one per control tick.
  EXPECT_GT(r.pump_intervals.count(), 100u);
  EXPECT_GT(r.actuation_lateness.count(), 4u);
  EXPECT_GT(r.pump_intervals.Quantile(0.5), 0.0);
  // Lateness is an overshoot: non-negative by construction.
  EXPECT_GE(r.actuation_lateness.min(), 0.0);
  // And telemetry stayed off.
  EXPECT_EQ(r.trace_events, 0u);
  EXPECT_EQ(r.timeline_rows, 0u);
}

TEST(RtRuntimeTest, TelemetryDirProducesTraceAndTimeline) {
  std::string dir = ::testing::TempDir();
  if (!dir.empty() && dir.back() != '/') dir += '/';
  dir += "ctrlshed_rt_telemetry_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);

  RtRunConfig cfg = BaseConfig();
  cfg.base.method = Method::kCtrl;
  cfg.base.constant_rate = 380.0;
  cfg.base.duration = 8.0;
  cfg.base.telemetry.dir = dir;
  cfg.base.telemetry.export_period_wall = 0.05;

  RtRunResult r = RunRtExperiment(cfg);

  EXPECT_GT(r.trace_events, 0u);
  EXPECT_GT(r.timeline_rows, 4u);
  EXPECT_EQ(r.timeline_rows, r.recorder.rows().size());

  // The Chrome trace carries spans from the worker, the controller, at
  // least one source thread, and the main thread.
  std::ifstream trace_in(dir + "/trace.json");
  ASSERT_TRUE(trace_in.good());
  std::ostringstream trace_buf;
  trace_buf << trace_in.rdbuf();
  const std::string trace = trace_buf.str();
  EXPECT_NE(trace.find("rt.worker"), std::string::npos);
  EXPECT_NE(trace.find("rt.controller"), std::string::npos);
  EXPECT_NE(trace.find("rt.source0"), std::string::npos);
  EXPECT_NE(trace.find("\"main\""), std::string::npos);
  EXPECT_NE(trace.find("\"pump\""), std::string::npos);
  EXPECT_NE(trace.find("control_tick"), std::string::npos);

  // The timeline CSV has the header plus one row per control period, with
  // the control signals the analysis scripts need.
  std::ifstream csv_in(TimelineCsvPath(dir));
  ASSERT_TRUE(csv_in.good());
  std::string header;
  ASSERT_TRUE(std::getline(csv_in, header));
  for (const char* col : {"q", "y_hat", "e", "u", "v", "alpha"}) {
    EXPECT_NE(header.find(col), std::string::npos) << col;
  }
  size_t rows = 0;
  std::string line;
  while (std::getline(csv_in, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, r.timeline_rows);

  // metrics.jsonl saw at least one periodic snapshot plus the final flush.
  std::ifstream metrics_in(dir + "/metrics.jsonl");
  ASSERT_TRUE(metrics_in.good());
  std::ostringstream metrics_buf;
  metrics_buf << metrics_in.rdbuf();
  EXPECT_NE(metrics_buf.str().find("rt.pump_interval_s"), std::string::npos);
  EXPECT_NE(metrics_buf.str().find("rt.actuation_lateness_s"),
            std::string::npos);

  std::filesystem::remove_all(dir);
}

TEST(RtRuntimeDeathTest, RejectsSimOnlyKnobs) {
  // The queue shedder and the cost trace now have rt parity; injected
  // estimation noise is the one remaining sim-only knob.
  RtRunConfig cfg = BaseConfig();
  cfg.base.duration = 1.0;
  cfg.base.estimation_noise = 0.05;
  EXPECT_DEATH(RunRtExperiment(cfg), "unsupported rt config");
}

TEST(RtConfigErrorTest, NamesTheOffendingKnob) {
  RtRunConfig ok = BaseConfig();
  EXPECT_EQ(RtConfigError(ok), "");

  RtRunConfig noise = BaseConfig();
  noise.base.estimation_noise = 0.05;
  EXPECT_NE(RtConfigError(noise).find("noise"), std::string::npos);

  RtRunConfig aurora = BaseConfig();
  aurora.base.method = Method::kAurora;
  aurora.base.use_queue_shedder = true;
  EXPECT_NE(RtConfigError(aurora).find("queue"), std::string::npos);

  RtRunConfig queue_ok = BaseConfig();
  queue_ok.base.use_queue_shedder = true;
  queue_ok.base.vary_cost = true;
  EXPECT_EQ(RtConfigError(queue_ok), "");

  RtRunConfig bad_workers = BaseConfig();
  bad_workers.workers = 0;
  EXPECT_NE(RtConfigError(bad_workers).find("workers"), std::string::npos);

  RtRunConfig bad_batch = BaseConfig();
  bad_batch.batch = 0;
  EXPECT_NE(RtConfigError(bad_batch).find("batch"), std::string::npos);
}

}  // namespace
}  // namespace ctrlshed
