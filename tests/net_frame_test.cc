// Unit tests of the cluster framing layer: the length-prefixed frame
// codec, the hardened tuple-batch decoder (satellite of the distributed
// subsystem: oversized frames, truncated batches, non-finite floats and
// trailing garbage are counted drops, never crashes), and the control
// wire messages — round-trips plus a seeded fuzz sweep over malformed
// bytes.

#include "net/frame.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "cluster/wire.h"
#include "common/rng.h"

namespace ctrlshed {
namespace {

Tuple MakeTuple(double at, double value, double aux) {
  Tuple t;
  t.arrival_time = at;
  t.value = value;
  t.aux = aux;
  return t;
}

std::vector<Tuple> SomeTuples(size_t n) {
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < n; ++i) {
    tuples.push_back(MakeTuple(0.5 * static_cast<double>(i),
                               static_cast<double>(i) - 3.0, 0.25));
  }
  return tuples;
}

// --- Frame header / decoder ------------------------------------------------

TEST(FrameDecoderTest, RoundTripsOneFrame) {
  std::string wire;
  AppendFrame(FrameType::kHello, "payload", &wire);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + 7);

  FrameDecoder dec;
  dec.Feed(wire.data(), wire.size());
  Frame f;
  ASSERT_EQ(dec.Next(&f), FrameDecoder::Status::kFrame);
  EXPECT_EQ(f.type, FrameType::kHello);
  EXPECT_EQ(f.payload, "payload");
  EXPECT_EQ(dec.Next(&f), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameDecoderTest, ReassemblesByteAtATime) {
  std::string wire;
  AppendFrame(FrameType::kStatsReport, std::string(100, 'x'), &wire);
  AppendFrame(FrameType::kAck, "", &wire);

  FrameDecoder dec;
  std::vector<Frame> frames;
  for (char c : wire) {
    dec.Feed(&c, 1);
    Frame f;
    while (dec.Next(&f) == FrameDecoder::Status::kFrame) frames.push_back(f);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kStatsReport);
  EXPECT_EQ(frames[0].payload.size(), 100u);
  EXPECT_EQ(frames[1].type, FrameType::kAck);
  EXPECT_TRUE(frames[1].payload.empty());
}

TEST(FrameDecoderTest, BadMagicIsCorrupt) {
  std::string wire = "GET / HTTP/1.1\r\n\r\n";  // an HTTP client, say
  FrameDecoder dec;
  dec.Feed(wire.data(), wire.size());
  Frame f;
  EXPECT_EQ(dec.Next(&f), FrameDecoder::Status::kCorrupt);
}

TEST(FrameDecoderTest, UnknownTypeIsCorrupt) {
  std::string wire;
  AppendFrame(FrameType::kTupleBatch, "abc", &wire);
  wire[4] = static_cast<char>(250);  // type byte
  FrameDecoder dec;
  dec.Feed(wire.data(), wire.size());
  Frame f;
  EXPECT_EQ(dec.Next(&f), FrameDecoder::Status::kCorrupt);
}

TEST(FrameDecoderTest, OversizedLengthIsCorruptNotAnAllocation) {
  // A corrupt length field must never turn into a giant allocation: the
  // decoder rejects anything over its ceiling while holding only the
  // 9 header bytes.
  std::string wire;
  PutU32(kFrameMagic, &wire);
  wire.push_back(static_cast<char>(FrameType::kTupleBatch));
  PutU32(0xFFFFFFFFu, &wire);
  FrameDecoder dec;
  dec.Feed(wire.data(), wire.size());
  Frame f;
  EXPECT_EQ(dec.Next(&f), FrameDecoder::Status::kCorrupt);
  EXPECT_LE(dec.buffered(), kFrameHeaderBytes);
}

TEST(FrameDecoderTest, RespectsCustomPayloadCeiling) {
  std::string wire;
  AppendFrame(FrameType::kHello, std::string(64, 'p'), &wire);
  FrameDecoder dec(/*max_payload=*/32);
  dec.Feed(wire.data(), wire.size());
  Frame f;
  EXPECT_EQ(dec.Next(&f), FrameDecoder::Status::kCorrupt);
}

// --- Tuple batch codec -----------------------------------------------------

TEST(TupleBatchTest, RoundTrip) {
  const std::vector<Tuple> in = SomeTuples(5);
  const std::string wire = EncodeTupleBatchFrame(7, in.data(), in.size());

  FrameDecoder dec;
  dec.Feed(wire.data(), wire.size());
  Frame f;
  ASSERT_EQ(dec.Next(&f), FrameDecoder::Status::kFrame);
  ASSERT_EQ(f.type, FrameType::kTupleBatch);

  TupleBatch batch;
  ASSERT_TRUE(DecodeTupleBatch(f.payload, &batch));
  EXPECT_EQ(batch.source, 7u);
  ASSERT_EQ(batch.tuples.size(), 5u);
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(batch.tuples[i].arrival_time, in[i].arrival_time);
    EXPECT_EQ(batch.tuples[i].value, in[i].value);
    EXPECT_EQ(batch.tuples[i].aux, in[i].aux);
  }
}

TEST(TupleBatchTest, RejectsTruncatedBatch) {
  const std::vector<Tuple> in = SomeTuples(3);
  const std::string wire = EncodeTupleBatchFrame(0, in.data(), in.size());
  std::string payload = wire.substr(kFrameHeaderBytes);
  payload.resize(payload.size() - 8);  // lop one double off the last tuple

  TupleBatch batch;
  EXPECT_FALSE(DecodeTupleBatch(payload, &batch));
}

TEST(TupleBatchTest, RejectsTrailingGarbage) {
  const std::vector<Tuple> in = SomeTuples(2);
  const std::string wire = EncodeTupleBatchFrame(0, in.data(), in.size());
  std::string payload = wire.substr(kFrameHeaderBytes);
  payload += "junk";

  TupleBatch batch;
  EXPECT_FALSE(DecodeTupleBatch(payload, &batch));
}

TEST(TupleBatchTest, RejectsCountPayloadMismatch) {
  const std::vector<Tuple> in = SomeTuples(2);
  const std::string wire = EncodeTupleBatchFrame(0, in.data(), in.size());
  std::string payload = wire.substr(kFrameHeaderBytes);
  // Claim 200 tuples but carry 2: the decoder must not read past the end.
  const uint32_t lie = 200;
  std::memcpy(&payload[4], &lie, sizeof(lie));

  TupleBatch batch;
  EXPECT_FALSE(DecodeTupleBatch(payload, &batch));
}

TEST(TupleBatchTest, RejectsNonFiniteFields) {
  const double bads[] = {std::numeric_limits<double>::quiet_NaN(),
                         std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity()};
  for (double bad : bads) {
    for (int field = 0; field < 3; ++field) {
      std::vector<Tuple> in = SomeTuples(2);
      double* slot = field == 0   ? &in[1].arrival_time
                     : field == 1 ? &in[1].value
                                  : &in[1].aux;
      *slot = bad;
      const std::string wire = EncodeTupleBatchFrame(0, in.data(), in.size());
      TupleBatch batch;
      EXPECT_FALSE(
          DecodeTupleBatch(wire.substr(kFrameHeaderBytes), &batch))
          << "field " << field << " value " << bad;
    }
  }
}

TEST(TupleBatchTest, EmptyBatchIsValid) {
  const std::string wire = EncodeTupleBatchFrame(3, nullptr, 0);
  TupleBatch batch;
  ASSERT_TRUE(DecodeTupleBatch(wire.substr(kFrameHeaderBytes), &batch));
  EXPECT_EQ(batch.source, 3u);
  EXPECT_TRUE(batch.tuples.empty());
}

TEST(TupleBatchTest, FuzzedPayloadsNeverCrash) {
  // Seeded mutation fuzz: flip/insert/delete bytes of a valid payload and
  // require the decoder to either succeed or return false — anything else
  // (a crash, a sanitizer report) fails the test harness itself.
  const std::vector<Tuple> in = SomeTuples(8);
  const std::string valid =
      EncodeTupleBatchFrame(1, in.data(), in.size()).substr(kFrameHeaderBytes);
  Rng rng(20260807);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string payload = valid;
    const int mutations = static_cast<int>(rng.UniformInt(1, 8));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.UniformInt(0, 2)) {
        case 0:  // flip a byte
          if (!payload.empty()) {
            payload[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(payload.size()) - 1))] =
                static_cast<char>(rng.UniformInt(0, 255));
          }
          break;
        case 1:  // truncate
          payload.resize(static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(payload.size()))));
          break;
        default:  // append garbage
          payload.push_back(static_cast<char>(rng.UniformInt(0, 255)));
          break;
      }
    }
    TupleBatch batch;
    DecodeTupleBatch(payload, &batch);  // must not crash; result irrelevant
  }
}

TEST(TupleBatchTest, FuzzedStreamsNeverCrashDecoder) {
  // Same discipline at the framing layer: arbitrary byte streams must
  // resolve to frames, kNeedMore, or kCorrupt — never UB.
  Rng rng(7);
  for (int iter = 0; iter < 500; ++iter) {
    std::string wire;
    const int len = static_cast<int>(rng.UniformInt(0, 64));
    for (int i = 0; i < len; ++i) {
      wire.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    // Half the time, lead with valid magic so deeper checks are reached.
    if (rng.Bernoulli(0.5)) {
      std::string magic;
      PutU32(kFrameMagic, &magic);
      wire = magic + wire;
    }
    FrameDecoder dec;
    dec.Feed(wire.data(), wire.size());
    Frame f;
    while (dec.Next(&f) == FrameDecoder::Status::kFrame) {
    }
  }
}

// --- Control-plane wire messages -------------------------------------------

TEST(ClusterWireTest, HelloRoundTrip) {
  NodeHello in;
  in.node_id = 3;
  in.workers = 4;
  in.headroom = 0.97;
  in.nominal_cost = 0.97 / 190.0;
  in.period = 1.0;
  const std::string wire = EncodeHelloFrame(in);

  FrameDecoder dec;
  dec.Feed(wire.data(), wire.size());
  Frame f;
  ASSERT_EQ(dec.Next(&f), FrameDecoder::Status::kFrame);
  ASSERT_EQ(f.type, FrameType::kHello);

  NodeHello out;
  ASSERT_TRUE(DecodeHello(f.payload, &out));
  EXPECT_EQ(out.node_id, in.node_id);
  EXPECT_EQ(out.workers, in.workers);
  // Exact bit round-trip: the identity of the distributed loop depends on
  // doubles crossing the wire unmolested.
  EXPECT_EQ(out.headroom, in.headroom);
  EXPECT_EQ(out.nominal_cost, in.nominal_cost);
  EXPECT_EQ(out.period, in.period);
}

TEST(ClusterWireTest, StatsReportRoundTrip) {
  NodeStatsReport in;
  in.node_id = 1;
  in.seq = 42;
  in.deltas.now = 17.0;
  in.deltas.offered = 1234;
  in.deltas.admitted = 1000;
  in.deltas.drained_base_load = 5.125;
  in.deltas.busy_seconds = 5.0625;
  in.deltas.queue = 33.5;
  in.deltas.delay_sum = 99.75;
  in.deltas.delay_count = 321;
  in.alpha = 0.4375;
  in.offered_total = 99999;
  in.entry_shed_total = 11111;
  in.ring_dropped_total = 7;
  in.queue_shed_total = 55;
  in.departed_total = 88881;
  const std::string wire = EncodeStatsReportFrame(in);

  NodeStatsReport out;
  ASSERT_TRUE(DecodeStatsReport(wire.substr(kFrameHeaderBytes), &out));
  EXPECT_EQ(out.node_id, in.node_id);
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.deltas.now, in.deltas.now);
  EXPECT_EQ(out.deltas.offered, in.deltas.offered);
  EXPECT_EQ(out.deltas.admitted, in.deltas.admitted);
  EXPECT_EQ(out.deltas.drained_base_load, in.deltas.drained_base_load);
  EXPECT_EQ(out.deltas.busy_seconds, in.deltas.busy_seconds);
  EXPECT_EQ(out.deltas.queue, in.deltas.queue);
  EXPECT_EQ(out.deltas.delay_sum, in.deltas.delay_sum);
  EXPECT_EQ(out.deltas.delay_count, in.deltas.delay_count);
  EXPECT_EQ(out.alpha, in.alpha);
  EXPECT_EQ(out.offered_total, in.offered_total);
  EXPECT_EQ(out.entry_shed_total, in.entry_shed_total);
  EXPECT_EQ(out.ring_dropped_total, in.ring_dropped_total);
  EXPECT_EQ(out.queue_shed_total, in.queue_shed_total);
  EXPECT_EQ(out.departed_total, in.departed_total);
}

TEST(ClusterWireTest, ActuationAndAckRoundTrip) {
  ClusterActuation a;
  a.seq = 9;
  a.v = 123.456789;
  a.target_delay = 2.0;
  a.queue_shed = true;
  a.cost_aware = true;
  ClusterActuation a2;
  ASSERT_TRUE(
      DecodeActuation(EncodeActuationFrame(a).substr(kFrameHeaderBytes), &a2));
  EXPECT_EQ(a2.seq, a.seq);
  EXPECT_EQ(a2.v, a.v);
  EXPECT_EQ(a2.target_delay, a.target_delay);
  EXPECT_TRUE(a2.queue_shed);
  EXPECT_TRUE(a2.cost_aware);

  a.queue_shed = false;
  a.cost_aware = false;
  ASSERT_TRUE(
      DecodeActuation(EncodeActuationFrame(a).substr(kFrameHeaderBytes), &a2));
  EXPECT_FALSE(a2.queue_shed);
  EXPECT_FALSE(a2.cost_aware);

  ActuationAck k;
  k.node_id = 2;
  k.seq = 9;
  k.applied = 120.0;
  k.alpha = 0.25;
  k.site = 2;  // split
  k.queue_shed = 17.5;
  ActuationAck k2;
  ASSERT_TRUE(DecodeAck(EncodeAckFrame(k).substr(kFrameHeaderBytes), &k2));
  EXPECT_EQ(k2.node_id, k.node_id);
  EXPECT_EQ(k2.seq, k.seq);
  EXPECT_EQ(k2.applied, k.applied);
  EXPECT_EQ(k2.alpha, k.alpha);
  EXPECT_EQ(k2.site, k.site);
  EXPECT_EQ(k2.queue_shed, k.queue_shed);
}

TEST(ClusterWireTest, RejectsUnknownPlanFlags) {
  ClusterActuation a;
  a.target_delay = 2.0;
  std::string payload = EncodeActuationFrame(a).substr(kFrameHeaderBytes);
  // flags live after seq (u32) + v (f64) + target_delay (f64).
  payload[4 + 8 + 8] = 4;  // an unknown flag bit
  ClusterActuation out;
  EXPECT_FALSE(DecodeActuation(payload, &out));
}

TEST(ClusterWireTest, RejectsInvalidAckSiteAndQueueShed) {
  ActuationAck k;
  k.applied = 100.0;
  k.alpha = 0.5;
  std::string payload = EncodeAckFrame(k).substr(kFrameHeaderBytes);
  // site lives after node_id (u32) + seq (u32) + applied (f64) + alpha (f64).
  payload[4 + 4 + 8 + 8] = 3;  // not a valid ActuationSite
  ActuationAck out;
  EXPECT_FALSE(DecodeAck(payload, &out));

  ActuationAck negative;
  negative.applied = 100.0;
  negative.queue_shed = -1.0;  // victims cannot be negative
  EXPECT_FALSE(DecodeAck(
      EncodeAckFrame(negative).substr(kFrameHeaderBytes), &out));

  ActuationAck poisoned;
  poisoned.applied = 100.0;
  poisoned.queue_shed = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(DecodeAck(
      EncodeAckFrame(poisoned).substr(kFrameHeaderBytes), &out));
}

TEST(ClusterWireTest, RejectsNonFiniteControlFloats) {
  const double nan = std::numeric_limits<double>::quiet_NaN();

  NodeStatsReport r;
  r.deltas.queue = nan;  // would poison the aggregate plant silently
  NodeStatsReport r2;
  EXPECT_FALSE(
      DecodeStatsReport(EncodeStatsReportFrame(r).substr(kFrameHeaderBytes),
                        &r2));

  ClusterActuation a;
  a.v = nan;
  ClusterActuation a2;
  EXPECT_FALSE(
      DecodeActuation(EncodeActuationFrame(a).substr(kFrameHeaderBytes), &a2));

  ActuationAck k;
  k.applied = -std::numeric_limits<double>::infinity();
  ActuationAck k2;
  EXPECT_FALSE(DecodeAck(EncodeAckFrame(k).substr(kFrameHeaderBytes), &k2));
}

TEST(ClusterWireTest, RejectsTruncationAndTrailingBytes) {
  // Must satisfy the decoder's plant invariants (workers >= 1, positive
  // headroom/cost/period) so only the byte-level mutations cause rejects.
  NodeHello h;
  h.node_id = 1;
  h.workers = 2;
  h.headroom = 0.97;
  h.nominal_cost = 0.005;
  h.period = 1.0;
  const std::string payload = EncodeHelloFrame(h).substr(kFrameHeaderBytes);

  NodeHello out;
  EXPECT_FALSE(DecodeHello(payload.substr(0, payload.size() - 1), &out));
  EXPECT_FALSE(DecodeHello(payload + "x", &out));
  EXPECT_TRUE(DecodeHello(payload, &out));
}

TEST(ClusterWireTest, FuzzedControlPayloadsNeverCrash) {
  NodeStatsReport r;
  r.deltas.offered = 1000;
  r.deltas.queue = 10.0;
  const std::string valid =
      EncodeStatsReportFrame(r).substr(kFrameHeaderBytes);
  Rng rng(99);
  for (int iter = 0; iter < 1000; ++iter) {
    std::string payload = valid;
    const size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(payload.size()) - 1));
    payload[pos] = static_cast<char>(rng.UniformInt(0, 255));
    if (rng.Bernoulli(0.3)) {
      payload.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(payload.size()))));
    }
    NodeStatsReport out;
    DecodeStatsReport(payload, &out);  // must not crash
    NodeHello hout;
    DecodeHello(payload, &hout);
    ClusterActuation aout;
    DecodeActuation(payload, &aout);
    ActuationAck kout;
    DecodeAck(payload, &kout);
  }
}

}  // namespace
}  // namespace ctrlshed
