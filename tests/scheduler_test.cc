#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "engine/engine.h"
#include "engine/query_network.h"
#include "engine/scheduler.h"
#include "runner/networks.h"

namespace ctrlshed {
namespace {

Tuple SourceTuple(double value, SimTime arrival) {
  Tuple t;
  t.arrival_time = arrival;
  t.value = value;
  return t;
}

class TwoOpNetwork : public ::testing::Test {
 protected:
  TwoOpNetwork() {
    a_ = net_.Add(std::make_unique<MapOp>("a", 0.001));
    b_ = net_.Add(std::make_unique<MapOp>("b", 0.001));
    a_->ConnectTo(b_);
    net_.AddEntry(0, a_);
    net_.Finalize();
  }
  QueryNetwork net_;
  MapOp* a_ = nullptr;
  MapOp* b_ = nullptr;
};

TEST_F(TwoOpNetwork, RoundRobinCyclesOperators) {
  RoundRobinScheduler sched;
  Tuple t = SourceTuple(0.5, 0.0);
  t.lineage = 1;
  a_->queue().push_back(t);
  a_->queue().push_back(t);
  b_->queue().push_back(t);
  EXPECT_EQ(sched.Next(&net_), a_);
  EXPECT_EQ(sched.Next(&net_), b_);
  EXPECT_EQ(sched.Next(&net_), a_);
}

TEST_F(TwoOpNetwork, RoundRobinSkipsEmpty) {
  RoundRobinScheduler sched;
  Tuple t = SourceTuple(0.5, 0.0);
  t.lineage = 1;
  b_->queue().push_back(t);
  EXPECT_EQ(sched.Next(&net_), b_);
}

TEST_F(TwoOpNetwork, AllIdleReturnsNull) {
  RoundRobinScheduler rr;
  GlobalFifoScheduler gf;
  LongestQueueScheduler lq;
  RandomScheduler rnd(1);
  EXPECT_EQ(rr.Next(&net_), nullptr);
  EXPECT_EQ(gf.Next(&net_), nullptr);
  EXPECT_EQ(lq.Next(&net_), nullptr);
  EXPECT_EQ(rnd.Next(&net_), nullptr);
}

TEST_F(TwoOpNetwork, GlobalFifoPicksEarliestFrontTuple) {
  GlobalFifoScheduler sched;
  Tuple late = SourceTuple(0.5, 5.0);
  late.lineage = 1;
  Tuple early = SourceTuple(0.5, 1.0);
  early.lineage = 2;
  a_->queue().push_back(late);
  b_->queue().push_back(early);
  EXPECT_EQ(sched.Next(&net_), b_);
}

TEST_F(TwoOpNetwork, LongestQueueWins) {
  LongestQueueScheduler sched;
  Tuple t = SourceTuple(0.5, 0.0);
  t.lineage = 1;
  a_->queue().push_back(t);
  b_->queue().push_back(t);
  b_->queue().push_back(t);
  EXPECT_EQ(sched.Next(&net_), b_);
}

TEST_F(TwoOpNetwork, RandomOnlyPicksNonEmpty) {
  RandomScheduler sched(7);
  Tuple t = SourceTuple(0.5, 0.0);
  t.lineage = 1;
  a_->queue().push_back(t);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sched.Next(&net_), a_);
}

TEST(SchedulerQuantumTest, DefaultGrantIsOneInvocation) {
  RoundRobinScheduler sched;
  MapOp op("x", 0.001);
  EXPECT_EQ(sched.quantum(), 1u);
  EXPECT_EQ(sched.GrantQuantum(op), 1u);
}

TEST(SchedulerQuantumTest, SetQuantumRaisesTheGrant) {
  RoundRobinScheduler sched;
  MapOp op("x", 0.001);
  sched.set_quantum(8);
  EXPECT_EQ(sched.quantum(), 8u);
  EXPECT_EQ(sched.GrantQuantum(op), 8u);
}

TEST(SchedulerQuantumTest, GlobalFifoClampsGrantToOne) {
  // Draining a train from one queue would process tuples out of global
  // arrival order, so the policy overrides the baseline quantum.
  GlobalFifoScheduler sched;
  MapOp op("x", 0.001);
  sched.set_quantum(16);
  EXPECT_EQ(sched.quantum(), 16u);
  EXPECT_EQ(sched.GrantQuantum(op), 1u);
}

TEST(SchedulerQuantumDeathTest, ZeroQuantumAborts) {
  RoundRobinScheduler sched;
  EXPECT_DEATH(sched.set_quantum(0), "quantum");
}

TEST(SchedulerFactoryTest, MakesEveryKind) {
  EXPECT_EQ(MakeScheduler(SchedulerKind::kRoundRobin)->name(), "round-robin");
  EXPECT_EQ(MakeScheduler(SchedulerKind::kGlobalFifo)->name(), "global-fifo");
  EXPECT_EQ(MakeScheduler(SchedulerKind::kLongestQueue)->name(),
            "longest-queue");
  EXPECT_EQ(MakeScheduler(SchedulerKind::kRandom)->name(), "random");
}

// Property sweep: on every non-priority scheduler, the engine conserves
// tuples and the Eq. (1) delay model holds for a batch on a uniform chain
// (service order may differ, but the aggregate drain rate cannot).
class SchedulerSweep : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(SchedulerSweep, ConservationHolds) {
  QueryNetwork net;
  BuildIdentificationNetwork(&net, 0.005);
  Engine engine(&net, 0.97, MakeScheduler(GetParam(), 3));
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    engine.Inject(SourceTuple(rng.Uniform(), 0.0), 0.0);
  }
  engine.AdvanceTo(1.0);
  const EngineCounters& c = engine.counters();
  EXPECT_GT(c.departed, 0u);
  EXPECT_EQ(c.admitted, 500u);
  engine.AdvanceTo(100.0);
  EXPECT_EQ(engine.counters().departed, 500u);
  EXPECT_EQ(engine.QueuedTuples(), 0u);
}

TEST_P(SchedulerSweep, BatchDrainTimeMatchesModel) {
  // 200 tuples of cost c drain in ~200 c / H regardless of service order.
  QueryNetwork net;
  BuildUniformChain(&net, 5, 0.010);
  Engine engine(&net, 1.0, MakeScheduler(GetParam(), 3));
  double last_depart = 0.0;
  engine.SetDepartureCallback(
      [&](const Departure& d) { last_depart = std::max(last_depart, d.depart_time); });
  for (int i = 0; i < 200; ++i) engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  engine.AdvanceTo(100.0);
  EXPECT_NEAR(last_depart, 200 * 0.010, 1e-6);
}

TEST_P(SchedulerSweep, MeanDelayNearModelPrediction) {
  // Average delay of a batch of N: the model predicts ~(N/2 + 1) c for any
  // work-conserving order without priorities. Allow generous tolerance for
  // order-dependent spread.
  QueryNetwork net;
  BuildUniformChain(&net, 5, 0.010);
  Engine engine(&net, 1.0, MakeScheduler(GetParam(), 3));
  double sum = 0.0;
  int n = 0;
  engine.SetDepartureCallback([&](const Departure& d) {
    sum += d.depart_time - d.arrival_time;
    ++n;
  });
  const int kN = 100;
  // Distinct (near-zero) arrival stamps keep order-based policies sane.
  for (int i = 0; i < kN; ++i) {
    engine.Inject(SourceTuple(0.5, 1e-7 * i), 1e-7 * i);
  }
  engine.AdvanceTo(100.0);
  ASSERT_EQ(n, kN);
  const double model = (kN / 2.0 + 1.0) * 0.010;
  // Queue-length-driven policies hold tuples back early in the batch and
  // skew departures late, so the per-batch mean sits above the FIFO
  // prediction; the drain-time (throughput) identity above is what the
  // paper's virtual-queue model actually relies on.
  EXPECT_NEAR(sum / n, model, 0.5 * model);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerSweep,
                         ::testing::Values(SchedulerKind::kRoundRobin,
                                           SchedulerKind::kGlobalFifo,
                                           SchedulerKind::kLongestQueue,
                                           SchedulerKind::kRandom));

}  // namespace
}  // namespace ctrlshed
