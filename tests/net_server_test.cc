// Loopback tests of the poll()-based FrameServer and the blocking
// FrameClient: frame delivery both ways, corrupt-stream disconnection, and
// the SIGPIPE regressions — a peer that vanishes mid-write must surface as
// a failed send, never as a fatal signal.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/frame_client.h"
#include "net/frame_server.h"
#include "net/socket_util.h"

namespace ctrlshed {
namespace {

/// Polls `pred` until it holds or the deadline passes.
bool WaitFor(const std::function<bool()>& pred, double timeout_s = 5.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

int RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(0,
            ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)))
      << std::strerror(errno);
  return fd;
}

/// Frames collected by a server/client handler, cross-thread.
struct FrameLog {
  std::mutex mu;
  std::vector<Frame> frames;
  std::vector<uint64_t> conns;

  void Add(uint64_t conn_id, const Frame& f) {
    std::lock_guard<std::mutex> lock(mu);
    frames.push_back(f);
    conns.push_back(conn_id);
  }
  size_t size() {
    std::lock_guard<std::mutex> lock(mu);
    return frames.size();
  }
};

TEST(FrameServerTest, DeliversClientFrames) {
  FrameLog log;
  FrameServer server(FrameServerOptions{});
  server.OnFrame([&log](uint64_t id, const Frame& f) { log.Add(id, f); });
  server.Start();

  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  std::string wire;
  AppendFrame(FrameType::kHello, "one", &wire);
  ASSERT_TRUE(client.Send(wire));
  wire.clear();
  AppendFrame(FrameType::kStatsReport, "two", &wire);
  ASSERT_TRUE(client.Send(wire));

  ASSERT_TRUE(WaitFor([&] { return log.size() == 2; }));
  {
    std::lock_guard<std::mutex> lock(log.mu);
    EXPECT_EQ(log.frames[0].type, FrameType::kHello);
    EXPECT_EQ(log.frames[0].payload, "one");
    EXPECT_EQ(log.frames[1].type, FrameType::kStatsReport);
    EXPECT_EQ(log.frames[1].payload, "two");
    EXPECT_EQ(log.conns[0], log.conns[1]);
  }
  EXPECT_EQ(server.connections_accepted(), 1u);
  EXPECT_EQ(server.frames_received(), 2u);

  client.Close();
  server.Stop();
}

TEST(FrameServerTest, SendsFramesBackToClient) {
  // The node's control channel in miniature: the client announces itself,
  // the server replies on the same connection — from inside the frame
  // handler, which must therefore not deadlock against the serve thread.
  FrameServer server(FrameServerOptions{});
  server.OnFrame([&server](uint64_t id, const Frame&) {
    std::string wire;
    AppendFrame(FrameType::kActuation, "cmd", &wire);
    server.Send(id, wire);
  });
  server.Start();

  FrameLog log;
  FrameClient client;
  client.OnFrame([&log](const Frame& f) { log.Add(0, f); });
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  std::string wire;
  AppendFrame(FrameType::kHello, "", &wire);
  ASSERT_TRUE(client.Send(wire));

  ASSERT_TRUE(WaitFor([&] { return log.size() == 1; }));
  {
    std::lock_guard<std::mutex> lock(log.mu);
    EXPECT_EQ(log.frames[0].type, FrameType::kActuation);
    EXPECT_EQ(log.frames[0].payload, "cmd");
  }

  client.Close();
  server.Stop();
}

TEST(FrameServerTest, CorruptStreamIsDroppedAndCounted) {
  std::atomic<int> disconnects{0};
  FrameServer server(FrameServerOptions{});
  server.OnFrame([](uint64_t, const Frame&) {});
  server.OnDisconnect([&disconnects](uint64_t) { ++disconnects; });
  server.Start();

  const int fd = RawConnect(server.port());
  const std::string garbage = "GET /metrics HTTP/1.1\r\n\r\n";
  ASSERT_EQ(static_cast<ssize_t>(garbage.size()),
            ::send(fd, garbage.data(), garbage.size(), 0));

  // The server hangs up on us once the magic check fails.
  ASSERT_TRUE(WaitFor([&] { return server.corrupt_streams() == 1; }));
  ASSERT_TRUE(WaitFor([&] { return disconnects.load() == 1; }));
  char buf[16];
  EXPECT_TRUE(WaitFor([&] { return ::recv(fd, buf, sizeof(buf), 0) == 0; }));
  ::close(fd);

  // A well-behaved client still gets service afterwards.
  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  std::string wire;
  AppendFrame(FrameType::kAck, "", &wire);
  EXPECT_TRUE(client.Send(wire));
  ASSERT_TRUE(WaitFor([&] { return server.frames_received() == 1; }));

  client.Close();
  server.Stop();
}

TEST(FrameServerTest, SendToUnknownConnectionFails) {
  FrameServer server(FrameServerOptions{});
  server.OnFrame([](uint64_t, const Frame&) {});
  server.Start();
  std::string wire;
  AppendFrame(FrameType::kAck, "", &wire);
  EXPECT_FALSE(server.Send(12345, wire));
  server.Stop();
}

// --- SIGPIPE regressions ---------------------------------------------------
// A SIGPIPE anywhere in these tests kills the whole gtest binary, so
// "completes normally" IS the assertion.

TEST(SigPipeTest, ServerSurvivesClientClosingMidWrite) {
  IgnoreSigPipe();
  std::atomic<uint64_t> conn{0};
  FrameServer server(FrameServerOptions{});
  server.OnFrame([&conn](uint64_t id, const Frame&) {
    conn.store(id, std::memory_order_release);
  });
  server.Start();

  const int fd = RawConnect(server.port());
  std::string hello;
  AppendFrame(FrameType::kHello, "", &hello);
  ASSERT_EQ(static_cast<ssize_t>(hello.size()),
            ::send(fd, hello.data(), hello.size(), 0));
  ASSERT_TRUE(WaitFor([&] { return conn.load() != 0; }));

  // Close the peer without reading, then pump writes at the dead socket
  // until the failure propagates. An unprotected write here would raise
  // SIGPIPE on the serve thread and take the process down.
  ::close(fd);
  std::string big;
  AppendFrame(FrameType::kActuation, std::string(64 * 1024, 'x'), &big);
  bool send_failed = false;
  for (int i = 0; i < 1000 && !send_failed; ++i) {
    send_failed = !server.Send(conn.load(std::memory_order_acquire), big);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(send_failed);
  server.Stop();
}

TEST(SigPipeTest, ClientSurvivesServerClosingMidWrite) {
  IgnoreSigPipe();
  FrameServer server(FrameServerOptions{});
  server.OnFrame([](uint64_t, const Frame&) {});
  server.Start();

  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  server.Stop();  // the peer vanishes under the client

  std::string wire;
  AppendFrame(FrameType::kStatsReport, std::string(4096, 'r'), &wire);
  bool send_failed = false;
  for (int i = 0; i < 1000 && !send_failed; ++i) {
    send_failed = !client.Send(wire);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(send_failed);
  EXPECT_FALSE(client.connected());
  client.Close();
}

}  // namespace
}  // namespace ctrlshed
