// Unit tests of the shared per-period measurement math (Eq. 11 delay
// estimate, cost EWMA, online headroom adaptation) that both the sim
// Monitor and the rt RtMonitor delegate to. The helper consumes cumulative
// counters and forms deltas itself, so every case fabricates a counter
// trajectory and checks the derived signals.

#include "control/period_math.h"

#include <gtest/gtest.h>

namespace ctrlshed {
namespace {

constexpr double kNominalCost = 0.005;  // 5 ms per entry tuple

PeriodMathOptions Opts() {
  PeriodMathOptions o;
  o.period = 1.0;
  o.headroom = 1.0;
  return o;
}

TEST(PeriodMathTest, FirstSampleRatesAndEq11) {
  PeriodMath math(kNominalCost, Opts());

  PeriodCounters c;
  c.now = 1.0;
  c.offered = 100;
  c.admitted = 80;
  c.drained_base_load = 60 * kNominalCost;
  c.busy_seconds = 60 * kNominalCost;
  c.queue = 20.0;

  PeriodMeasurement m = math.Sample(c, 2.0, /*elapsed=*/1.0);
  EXPECT_EQ(m.k, 1);
  EXPECT_DOUBLE_EQ(m.t, 1.0);
  EXPECT_DOUBLE_EQ(m.period, 1.0);
  EXPECT_DOUBLE_EQ(m.fin, 100.0);
  EXPECT_DOUBLE_EQ(m.fin_forecast, 100.0);
  EXPECT_DOUBLE_EQ(m.admitted, 80.0);
  EXPECT_DOUBLE_EQ(m.fout, 60.0);
  EXPECT_DOUBLE_EQ(m.queue, 20.0);
  // Measured cost == nominal here, so y_hat = (q+1) c / H.
  EXPECT_NEAR(m.y_hat, 21.0 * kNominalCost, 1e-12);
  EXPECT_FALSE(m.has_y_measured);
  EXPECT_DOUBLE_EQ(m.target_delay, 2.0);
}

TEST(PeriodMathTest, RatesDivideByElapsedNotNominalPeriod) {
  PeriodMath math(kNominalCost, Opts());

  PeriodCounters c1;
  c1.now = 1.0;
  c1.offered = 100;
  math.Sample(c1, 2.0, 1.0);

  // An oversleeping rt controller: the "1-second" period spans 2 s.
  PeriodCounters c2 = c1;
  c2.now = 3.0;
  c2.offered = 400;  // +300 over 2 s -> 150/s
  c2.admitted = 200;
  c2.drained_base_load = 100 * kNominalCost;
  c2.busy_seconds = 100 * kNominalCost;

  PeriodMeasurement m = math.Sample(c2, 2.0, /*elapsed=*/2.0);
  EXPECT_EQ(m.k, 2);
  EXPECT_DOUBLE_EQ(m.fin, 150.0);
  EXPECT_DOUBLE_EQ(m.admitted, 100.0);
  EXPECT_DOUBLE_EQ(m.fout, 50.0);
  // The controller still sees the nominal design period.
  EXPECT_DOUBLE_EQ(m.period, 1.0);
}

TEST(PeriodMathTest, CostEwmaAndIdlePeriodKeepsEstimate) {
  PeriodMathOptions o = Opts();
  o.cost_ewma = 0.5;
  PeriodMath math(kNominalCost, o);

  PeriodCounters c1;
  c1.now = 1.0;
  c1.drained_base_load = 100 * kNominalCost;
  c1.busy_seconds = 2 * 100 * kNominalCost;  // measured cost = 2 * nominal
  PeriodMeasurement m1 = math.Sample(c1, 2.0, 1.0);
  // EWMA from the nominal bootstrap: 0.5*2c + 0.5*c = 1.5c.
  EXPECT_NEAR(m1.cost, 1.5 * kNominalCost, 1e-12);

  // Nothing drained: the estimate must not be corrupted.
  PeriodCounters c2 = c1;
  c2.now = 2.0;
  PeriodMeasurement m2 = math.Sample(c2, 2.0, 1.0);
  EXPECT_NEAR(m2.cost, 1.5 * kNominalCost, 1e-12);
  EXPECT_DOUBLE_EQ(m2.fout, 0.0);
}

TEST(PeriodMathTest, CostNoiseAppliedOnlyWhenUpdateFires) {
  PeriodMath math(kNominalCost, Opts());
  int draws = 0;
  const std::function<double()> noise = [&draws] {
    ++draws;
    return 2.0;
  };

  // Idle period: the noise source must NOT be consumed (the sim Monitor's
  // RNG stream position depends on this).
  PeriodCounters c1;
  c1.now = 1.0;
  math.Sample(c1, 2.0, 1.0, noise);
  EXPECT_EQ(draws, 0);

  PeriodCounters c2 = c1;
  c2.now = 2.0;
  c2.drained_base_load = 100 * kNominalCost;
  c2.busy_seconds = 100 * kNominalCost;
  PeriodMeasurement m = math.Sample(c2, 2.0, 1.0, noise);
  EXPECT_EQ(draws, 1);
  EXPECT_NEAR(m.cost, 2.0 * kNominalCost, 1e-12);
}

TEST(PeriodMathTest, MeasuredDelayUsesSuppliedDeltas) {
  PeriodMath math(kNominalCost, Opts());

  PeriodCounters c;
  c.now = 1.0;
  c.delay_sum = 10.0;
  c.delay_count = 5;
  PeriodMeasurement m1 = math.Sample(c, 2.0, 1.0);
  ASSERT_TRUE(m1.has_y_measured);
  EXPECT_DOUBLE_EQ(m1.y_measured, 2.0);

  c.now = 2.0;
  c.delay_sum = 0.0;
  c.delay_count = 0;
  PeriodMeasurement m2 = math.Sample(c, 2.0, 1.0);
  EXPECT_FALSE(m2.has_y_measured);
}

TEST(PeriodMathTest, AdaptiveHeadroomConvergesUnderSaturation) {
  PeriodMathOptions o = Opts();
  o.headroom = 0.90;  // wrong belief; the "engine" actually gets 0.6
  o.adapt_headroom = true;
  o.headroom_ewma = 0.5;
  PeriodMath math(kNominalCost, o);

  PeriodCounters c;
  double busy = 0.0;
  for (int k = 1; k <= 20; ++k) {
    c.now = static_cast<double>(k);
    busy += 0.6;
    c.busy_seconds = busy;
    c.drained_base_load = busy;
    c.queue = 100.0;  // persistently backlogged
    math.Sample(c, 2.0, 1.0);
  }
  EXPECT_NEAR(math.HeadroomEstimate(), 0.6, 0.01);
}

TEST(PeriodMathTest, AggregateHeadroomAboveOneIsAccepted) {
  // A 4-worker aggregate plant: effective headroom 4*0.97, online estimate
  // clamped at 4 CPUs of work per second.
  PeriodMathOptions o;
  o.headroom = 4 * 0.97;
  o.max_headroom = 4.0;
  o.adapt_headroom = true;
  o.headroom_ewma = 1.0;  // no smoothing: track the measurement exactly
  PeriodMath math(kNominalCost, o);

  PeriodCounters c;
  c.now = 1.0;
  c.queue = 50.0;
  math.Sample(c, 2.0, 1.0);

  c.now = 2.0;
  c.busy_seconds = 3.2;  // 3.2 CPU-seconds across 4 workers in 1 s
  c.drained_base_load = 3.2;
  PeriodMeasurement m = math.Sample(c, 2.0, 1.0);
  EXPECT_NEAR(math.HeadroomEstimate(), 3.2, 1e-12);
  // y_hat uses the online aggregate estimate.
  EXPECT_NEAR(m.y_hat, (m.queue + 1.0) * m.cost / 3.2, 1e-12);
}

TEST(PeriodMathTest, SampleDeltasMatchesCumulativeSampleExactly) {
  // The wire path (cluster nodes ship deltas) and the local path
  // (cumulative counters differenced internally) must share one
  // arithmetic sequence — EXPECT_EQ, not NEAR, or the cluster identity
  // contract breaks.
  PeriodMath cumulative(kNominalCost, Opts());
  PeriodMath deltas(kNominalCost, Opts());

  PeriodCounters c;
  uint64_t offered = 0;
  uint64_t admitted_sum = 0;
  double busy = 0.0;
  for (int k = 1; k <= 6; ++k) {
    const uint64_t d_offered = 90 + static_cast<uint64_t>(7 * k);
    // Dyadic values only: cumulative counters are sums of the deltas, and
    // the cumulative path re-derives deltas by subtraction, so any value
    // that rounds on accumulation would break EXPECT_EQ for a reason that
    // has nothing to do with the math under test.
    const double d_busy = 0.25 + 0.125 * static_cast<double>(k);
    PeriodDeltas d;
    d.now = static_cast<double>(k);
    d.offered = d_offered;
    d.admitted = d_offered / 2;
    d.busy_seconds = d_busy;
    d.drained_base_load = d_busy;
    d.queue = 3.5 * static_cast<double>(k);
    d.delay_sum = 0.75 * static_cast<double>(k);
    d.delay_count = static_cast<uint64_t>(k);

    offered += d_offered;
    busy += d_busy;
    admitted_sum += d.admitted;
    c.now = d.now;
    c.offered = offered;
    c.admitted = admitted_sum;
    c.busy_seconds = busy;
    c.drained_base_load = busy;
    c.queue = d.queue;
    c.delay_sum = d.delay_sum;
    c.delay_count = d.delay_count;

    const PeriodMeasurement a = cumulative.Sample(c, 2.0, 1.0);
    const PeriodMeasurement b = deltas.SampleDeltas(d, 2.0, 1.0);
    EXPECT_EQ(a.fin, b.fin);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.fout, b.fout);
    EXPECT_EQ(a.queue, b.queue);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.y_hat, b.y_hat);
    EXPECT_EQ(a.y_measured, b.y_measured);
  }
}

TEST(PeriodMathTest, SetHeadroomRetargetsEq11KeepingCostState) {
  PeriodMathOptions o = Opts();
  o.cost_ewma = 0.5;
  PeriodMath math(kNominalCost, o);

  PeriodCounters c;
  c.now = 1.0;
  c.drained_base_load = 100 * kNominalCost;
  c.busy_seconds = 2 * 100 * kNominalCost;
  c.queue = 10.0;
  const PeriodMeasurement m1 = math.Sample(c, 2.0, 1.0);

  // Cluster membership doubles the plant: y_hat halves, but the cost EWMA
  // carries over instead of resetting to the nominal bootstrap.
  math.SetHeadroom(2.0, 2.0);
  c.now = 2.0;
  const PeriodMeasurement m2 = math.Sample(c, 2.0, 1.0);
  EXPECT_EQ(m2.cost, m1.cost);  // idle period: EWMA untouched
  EXPECT_NEAR(m2.y_hat, (c.queue + 1.0) * m2.cost / 2.0, 1e-12);
}

TEST(ProportionalSharesTest, WeightsProportionalToLoads) {
  const std::vector<double> shares = ProportionalShares({300.0, 100.0});
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_DOUBLE_EQ(shares[0], 0.75);
  EXPECT_DOUBLE_EQ(shares[1], 0.25);
}

TEST(ProportionalSharesTest, ZeroTotalFallsBackToEvenSplit) {
  const std::vector<double> shares = ProportionalShares({0.0, 0.0, 0.0, 0.0});
  ASSERT_EQ(shares.size(), 4u);
  for (double s : shares) EXPECT_DOUBLE_EQ(s, 0.25);
}

TEST(ProportionalSharesTest, SingleLoadIsExactlyOne) {
  // At one shard/node the fan-out must be the identity: v * 1.0 == v bit
  // for bit, which the cluster identity tests lean on.
  EXPECT_EQ(ProportionalShares({123.4})[0], 1.0);
  EXPECT_EQ(ProportionalShares({0.0})[0], 1.0);
}

TEST(PeriodMathDeathTest, RejectsBackwardsCounters) {
  PeriodMath math(kNominalCost, Opts());
  PeriodCounters c;
  c.now = 1.0;
  c.offered = 10;
  math.Sample(c, 2.0, 1.0);
  c.now = 2.0;
  c.offered = 5;
  EXPECT_DEATH(math.Sample(c, 2.0, 1.0), "backwards");
}

TEST(PeriodMathDeathTest, RejectsNonPositiveElapsed) {
  PeriodMath math(kNominalCost, Opts());
  PeriodCounters c;
  c.now = 1.0;
  EXPECT_DEATH(math.Sample(c, 2.0, 0.0), "elapsed");
}

}  // namespace
}  // namespace ctrlshed
