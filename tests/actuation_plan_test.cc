// Tests of the unified actuation plane: the ActuationPlanner's arithmetic,
// the per-queue budget decomposition, the upstream queue feedback, and —
// most importantly — per-period EXPECT_EQ identity between the refactored
// plan-based FeedbackLoop and a hand-written replica of the pre-plan
// control tick (Sample -> DesiredRate -> Configure -> NotifyActuation).

#include "control/actuation_plan.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "control/ctrl_controller.h"
#include "control/monitor.h"
#include "core/feedback_loop.h"
#include "engine/engine.h"
#include "engine/query_network.h"
#include "runner/networks.h"
#include "shedding/entry_shedder.h"
#include "shedding/queue_shedder.h"
#include "sim/simulation.h"
#include "workload/arrival_source.h"
#include "workload/traces.h"

namespace ctrlshed {
namespace {

PeriodMeasurement MakeMeasurement(double fin_forecast, double queue = 0.0) {
  PeriodMeasurement m;
  m.period = 1.0;
  m.fin = fin_forecast;
  m.fin_forecast = fin_forecast;
  m.queue = queue;
  m.cost = 0.005;
  return m;
}

// --- Planner: entry-only arithmetic --------------------------------------

TEST(ActuationPlannerTest, EntryOnlyMatchesEntryShedderExactly) {
  // The entry-only plan must be expression-for-expression the arithmetic
  // EntryShedder::Configure has always used: identical alpha AND identical
  // anti-windup value over a grid including both clamps and the idle gate.
  const ActuationPlanner planner;  // defaults: entry-only
  EntryShedder shedder(1);
  for (double fin : {0.0, 50.0, 100.0, 200.0, 1000.0}) {
    for (double v : {-50.0, 0.0, 10.0, 150.0, 200.0, 300.0}) {
      const PeriodMeasurement m = MakeMeasurement(fin);
      const ActuationPlan plan = planner.BuildPlan(v, m);
      const double applied = shedder.Configure(v, m);
      EXPECT_EQ(plan.site, ActuationSite::kEntry) << "fin=" << fin;
      EXPECT_FALSE(plan.in_network_enabled);
      EXPECT_EQ(plan.entry_alpha, shedder.drop_probability())
          << "v=" << v << " fin=" << fin;
      EXPECT_EQ(plan.planned_applied, applied) << "v=" << v << " fin=" << fin;
      EXPECT_TRUE(plan.budgets.empty());
    }
  }
}

TEST(ActuationPlannerTest, EntryShedderApplyPlanForwardsToConfigure) {
  const ActuationPlanner planner;
  EntryShedder via_plan(1);
  EntryShedder via_configure(1);
  const PeriodMeasurement m = MakeMeasurement(200.0);
  const ActuationPlan plan = planner.BuildPlan(150.0, m);
  EXPECT_EQ(via_plan.ApplyPlan(plan, m), via_configure.Configure(150.0, m));
  EXPECT_EQ(via_plan.drop_probability(), via_configure.drop_probability());
}

// --- Planner: in-network arithmetic --------------------------------------

TEST(ActuationPlannerTest, UnderloadPlanIsEntrySiteWithNoShedding) {
  ActuationPlannerOptions opts;
  opts.allow_in_network = true;
  const ActuationPlanner planner(opts);
  const ActuationPlan plan = planner.BuildPlan(250.0, MakeMeasurement(200.0));
  EXPECT_TRUE(plan.in_network_enabled);
  EXPECT_EQ(plan.site, ActuationSite::kEntry);
  EXPECT_DOUBLE_EQ(plan.entry_alpha, 0.0);
  // In-network anti-windup reports v itself on underload (the actuator can
  // realize any v >= fin by just admitting everything).
  EXPECT_DOUBLE_EQ(plan.planned_applied, 250.0);
  EXPECT_DOUBLE_EQ(plan.queue_target, 0.0);
}

TEST(ActuationPlannerTest, PositiveRateShedsOnlyAtEntry) {
  ActuationPlannerOptions opts;
  opts.allow_in_network = true;
  const ActuationPlanner planner(opts);
  // v=150, fin=200, T=1: to_shed=50 < incoming=200, so the queues are
  // never touched and the entry gate carries alpha = 50/200.
  const ActuationPlan plan =
      planner.BuildPlan(150.0, MakeMeasurement(200.0, /*queue=*/80.0));
  EXPECT_EQ(plan.site, ActuationSite::kEntry);
  EXPECT_DOUBLE_EQ(plan.to_shed, 50.0);
  EXPECT_DOUBLE_EQ(plan.incoming, 200.0);
  EXPECT_DOUBLE_EQ(plan.queue_target, 0.0);
  EXPECT_NEAR(plan.entry_alpha, 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(plan.planned_applied, 150.0);
}

TEST(ActuationPlannerTest, NegativeRateSplitsAcrossQueueAndEntry) {
  ActuationPlannerOptions opts;
  opts.allow_in_network = true;
  const ActuationPlanner planner(opts);
  // v=-30, fin=200, T=1: to_shed=230. Blocking the whole inflow covers
  // 200; the remaining 30 come out of the queued backlog.
  const ActuationPlan plan =
      planner.BuildPlan(-30.0, MakeMeasurement(200.0, /*queue=*/100.0));
  EXPECT_EQ(plan.site, ActuationSite::kSplit);
  EXPECT_DOUBLE_EQ(plan.to_shed, 230.0);
  EXPECT_DOUBLE_EQ(plan.queue_target, 30.0);
  EXPECT_DOUBLE_EQ(plan.entry_alpha, 1.0);
  // Budget achievable: anti-windup reports the full desired rate.
  EXPECT_DOUBLE_EQ(plan.planned_applied, -30.0);
}

TEST(ActuationPlannerTest, IdleStreamPlanIsPureInNetwork) {
  ActuationPlannerOptions opts;
  opts.allow_in_network = true;
  const ActuationPlanner planner(opts);
  // Nothing arriving, negative v: everything comes from the queues.
  const ActuationPlan plan =
      planner.BuildPlan(-50.0, MakeMeasurement(0.0, /*queue=*/100.0));
  EXPECT_EQ(plan.site, ActuationSite::kInNetwork);
  EXPECT_DOUBLE_EQ(plan.queue_target, 50.0);
  EXPECT_DOUBLE_EQ(plan.entry_alpha, 0.0);
  EXPECT_DOUBLE_EQ(plan.planned_applied, -50.0);
}

TEST(ActuationPlannerTest, UnachievableRemainderFeedsAntiWindup) {
  ActuationPlannerOptions opts;
  opts.allow_in_network = true;
  const ActuationPlanner planner(opts);
  // Queue holds only 10 of the needed 50: the unachieved 40 are reported
  // back so the integrator does not wind up against a saturated actuator.
  const ActuationPlan plan =
      planner.BuildPlan(-50.0, MakeMeasurement(0.0, /*queue=*/10.0));
  EXPECT_EQ(plan.site, ActuationSite::kInNetwork);
  EXPECT_DOUBLE_EQ(plan.queue_target, 10.0);
  EXPECT_DOUBLE_EQ(plan.planned_applied, -10.0);  // v + unachieved/T
}

TEST(ActuationPlannerTest, BudgetLoadUsesNominalEntryCost) {
  ActuationPlannerOptions opts;
  opts.allow_in_network = true;
  opts.nominal_entry_cost = 0.005;
  const ActuationPlanner planner(opts);
  const ActuationPlan plan =
      planner.BuildPlan(-30.0, MakeMeasurement(200.0, /*queue=*/100.0));
  EXPECT_DOUBLE_EQ(plan.queue_target, 30.0);
  EXPECT_DOUBLE_EQ(plan.queue_budget_load, 30.0 * 0.005);
}

// --- Per-queue budget decomposition --------------------------------------

QueueFeedback ThreeQueueFeedback() {
  QueueFeedback fb;
  fb.queues.push_back({0, 10.0, 0.50, 0.050});
  fb.queues.push_back({1, 20.0, 0.40, 0.020});
  fb.queues.push_back({2, 5.0, 0.25, 0.050});  // ties op 0's drain cost
  for (const QueueFeedbackEntry& q : fb.queues) {
    fb.total_backlog_tuples += q.backlog_tuples;
    fb.total_queued_load += q.queued_load;
  }
  return fb;
}

TEST(ActuationPlannerTest, CostAwareBudgetFillsMostCostlyFirst) {
  ActuationPlannerOptions opts;
  opts.allow_in_network = true;
  opts.cost_aware = true;
  opts.nominal_entry_cost = 0.01;
  const ActuationPlanner planner(opts);
  // queue_target = 60 tuples -> budget_load = 0.6: op 0 (0.50) fully, the
  // tied op 2 next (first-max tiebreak is the lower index, so op 0 leads),
  // and the cheap op 1 takes nothing.
  const ActuationPlan plan = planner.BuildPlan(
      -60.0, MakeMeasurement(0.0, /*queue=*/100.0), ThreeQueueFeedback());
  EXPECT_DOUBLE_EQ(plan.queue_budget_load, 0.6);
  ASSERT_EQ(plan.budgets.size(), 2u);
  EXPECT_EQ(plan.budgets[0].op_index, 0);
  EXPECT_DOUBLE_EQ(plan.budgets[0].budget_load, 0.50);
  EXPECT_EQ(plan.budgets[1].op_index, 2);
  EXPECT_NEAR(plan.budgets[1].budget_load, 0.10, 1e-12);
}

TEST(ActuationPlannerTest, RandomBudgetSplitsProportionally) {
  ActuationPlannerOptions opts;
  opts.allow_in_network = true;
  opts.nominal_entry_cost = 0.01;
  const ActuationPlanner planner(opts);
  const QueueFeedback fb = ThreeQueueFeedback();  // total load 1.15
  const ActuationPlan plan =
      planner.BuildPlan(-23.0, MakeMeasurement(0.0, /*queue=*/100.0), fb);
  EXPECT_DOUBLE_EQ(plan.queue_budget_load, 0.23);  // 20% of the backlog
  ASSERT_EQ(plan.budgets.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(plan.budgets[i].op_index, fb.queues[i].op_index);
    EXPECT_NEAR(plan.budgets[i].budget_load, 0.2 * fb.queues[i].queued_load,
                1e-12);
  }
}

TEST(ActuationPlannerTest, EmptyFeedbackYieldsScalarBudgetOnly) {
  ActuationPlannerOptions opts;
  opts.allow_in_network = true;
  const ActuationPlanner planner(opts);
  const ActuationPlan plan =
      planner.BuildPlan(-30.0, MakeMeasurement(0.0, /*queue=*/100.0));
  EXPECT_DOUBLE_EQ(plan.queue_target, 30.0);
  EXPECT_TRUE(plan.budgets.empty());  // executors consume the scalar budget
}

TEST(ActuationSiteTest, NamesAreStable) {
  EXPECT_EQ(ActuationSiteName(ActuationSite::kEntry), "entry");
  EXPECT_EQ(ActuationSiteName(ActuationSite::kInNetwork), "in_network");
  EXPECT_EQ(ActuationSiteName(ActuationSite::kSplit), "split");
}

// --- Upstream queue feedback ---------------------------------------------

TEST(CollectQueueFeedbackTest, ReportsOnlyNonEmptyQueues) {
  QueryNetwork net;
  BuildUniformChain(&net, 5, 0.010);
  Engine engine(&net, 1.0);
  QueueFeedback fb;
  CollectQueueFeedback(engine, &fb);
  EXPECT_TRUE(fb.queues.empty());
  EXPECT_DOUBLE_EQ(fb.total_queued_load, 0.0);

  for (int i = 0; i < 20; ++i) {
    Tuple t;
    t.value = 0.5;
    engine.Inject(t, 0.0);
  }
  CollectQueueFeedback(engine, &fb);
  // All tuples sit at the entry operator; its remaining drain cost is the
  // whole chain's per-tuple cost.
  ASSERT_EQ(fb.queues.size(), 1u);
  EXPECT_EQ(fb.queues[0].op_index, 0);
  EXPECT_DOUBLE_EQ(fb.queues[0].backlog_tuples, 20.0);
  EXPECT_DOUBLE_EQ(fb.queues[0].drain_cost, 0.010);
  EXPECT_DOUBLE_EQ(fb.queues[0].queued_load, 0.20);
  EXPECT_DOUBLE_EQ(fb.total_backlog_tuples, 20.0);
  EXPECT_DOUBLE_EQ(fb.total_queued_load, 0.20);
}

// --- Refactor identity: plan-based loop vs the pre-plan control tick ------

// A literal replica of the control tick as it existed before ActuationPlan:
//   m = monitor.Sample(...); v = controller.DesiredRate(m);
//   applied = shedder.Configure(v, m); controller.NotifyActuation(applied);
// driven by the same arrival/admission wiring FeedbackLoop::OnArrival uses.
struct LegacyRow {
  PeriodMeasurement m;
  double v = 0.0;
  double alpha = 0.0;
};

struct LegacyRig {
  LegacyRig(double capacity, double headroom, Shedder* (*make)(Engine*),
            CostMultiplierFn cost_multiplier = nullptr) {
    BuildIdentificationNetwork(&net, headroom / capacity);
    engine = std::make_unique<Engine>(&net, headroom);
    if (cost_multiplier) engine->SetCostMultiplier(cost_multiplier);
    sim.AttachProcess(engine.get());
    CtrlOptions ctrl_opts;
    ctrl_opts.headroom = headroom;
    controller = std::make_unique<CtrlController>(ctrl_opts);
    shedder.reset(make(engine.get()));
    MonitorOptions mo;
    mo.period = 1.0;
    mo.headroom = headroom;
    monitor = std::make_unique<Monitor>(engine.get(), mo);
  }

  void Run(RateTrace trace, SimTime end, double target_delay) {
    engine->SetDepartureCallback(
        [this](const Departure& d) { monitor->OnDeparture(d); });
    sim.ScheduleEvery(1.0, 1.0, [this, target_delay](SimTime now) {
      PeriodMeasurement m = monitor->Sample(now, offered, target_delay);
      const double v = controller->DesiredRate(m);
      const double applied = shedder->Configure(v, m);
      controller->NotifyActuation(applied);
      rows.push_back({m, v, shedder->drop_probability()});
      return true;
    });
    ArrivalSource src(0, std::move(trace), ArrivalSource::Spacing::kPoisson, 9);
    src.Start(&sim, [this](const Tuple& t) {
      ++offered;
      if (!shedder->Admit(t)) return;
      engine->Inject(t, t.arrival_time);
    });
    sim.Run(end);
  }

  Simulation sim;
  QueryNetwork net;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<CtrlController> controller;
  std::unique_ptr<Shedder> shedder;
  std::unique_ptr<Monitor> monitor;
  uint64_t offered = 0;
  std::vector<LegacyRow> rows;
};

// The refactored loop under identical seeds and wiring.
struct PlanRig {
  PlanRig(double capacity, double headroom, Shedder* (*make)(Engine*),
          bool allow_in_network,
          CostMultiplierFn cost_multiplier = nullptr) {
    BuildIdentificationNetwork(&net, headroom / capacity);
    engine = std::make_unique<Engine>(&net, headroom);
    if (cost_multiplier) engine->SetCostMultiplier(cost_multiplier);
    sim.AttachProcess(engine.get());
    CtrlOptions ctrl_opts;
    ctrl_opts.headroom = headroom;
    controller = std::make_unique<CtrlController>(ctrl_opts);
    shedder.reset(make(engine.get()));
    FeedbackLoopOptions opts;
    opts.allow_in_network_shed = allow_in_network;
    loop = std::make_unique<FeedbackLoop>(&sim, engine.get(), controller.get(),
                                          shedder.get(), opts);
  }

  void Run(RateTrace trace, SimTime end) {
    loop->Start();
    ArrivalSource src(0, std::move(trace), ArrivalSource::Spacing::kPoisson, 9);
    src.Start(&sim, [this](const Tuple& t) { loop->OnArrival(t); });
    sim.Run(end);
  }

  Simulation sim;
  QueryNetwork net;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<CtrlController> controller;
  std::unique_ptr<Shedder> shedder;
  std::unique_ptr<FeedbackLoop> loop;
};

void ExpectIdenticalTimelines(const LegacyRig& legacy, const PlanRig& plan) {
  const auto& rows = plan.loop->recorder().rows();
  ASSERT_EQ(legacy.rows.size(), rows.size());
  ASSERT_GT(rows.size(), 10u);
  for (size_t i = 0; i < rows.size(); ++i) {
    SCOPED_TRACE("period " + std::to_string(i));
    // EXPECT_EQ on doubles on purpose: the refactor promises bit identity,
    // not approximate equality.
    EXPECT_EQ(legacy.rows[i].m.queue, rows[i].m.queue);
    EXPECT_EQ(legacy.rows[i].m.y_hat, rows[i].m.y_hat);
    EXPECT_EQ(legacy.rows[i].m.fin, rows[i].m.fin);
    EXPECT_EQ(legacy.rows[i].m.fout, rows[i].m.fout);  // fixes u = v - fout
    EXPECT_EQ(legacy.rows[i].m.cost, rows[i].m.cost);
    EXPECT_EQ(legacy.rows[i].v, rows[i].v);
    EXPECT_EQ(legacy.rows[i].alpha, rows[i].alpha);
  }
  // The plants saw identical admission decisions, so every engine counter
  // agrees too.
  EXPECT_EQ(legacy.engine->counters().admitted,
            plan.engine->counters().admitted);
  EXPECT_EQ(legacy.engine->counters().departed,
            plan.engine->counters().departed);
  EXPECT_EQ(legacy.engine->counters().shed_lineages,
            plan.engine->counters().shed_lineages);
}

Shedder* MakeEntry(Engine*) { return new EntryShedder(5); }
Shedder* MakeQueue(Engine* e) { return new QueueShedder(e, 5); }

TEST(ActuationRefactorIdentityTest, EntryOnlyLoopIsBitIdentical) {
  LegacyRig legacy(190.0, 0.97, MakeEntry);
  PlanRig plan(190.0, 0.97, MakeEntry, /*allow_in_network=*/false);
  legacy.Run(MakeConstantTrace(40.0, 300.0), 40.0, /*target_delay=*/2.0);
  plan.Run(MakeConstantTrace(40.0, 300.0), 40.0);
  ExpectIdenticalTimelines(legacy, plan);
}

TEST(ActuationRefactorIdentityTest, QueueShedderLoopIsBitIdentical) {
  // A 3x cost step mid-run makes the controller demand sharp load cuts
  // (Fig. 15's regime), driving v negative so the in-network half of the
  // plan actually executes in both loops.
  CostMultiplierFn step = [](SimTime t) {
    return t < 20.0 ? 1.0 : 3.0;
  };
  LegacyRig legacy(190.0, 0.97, MakeQueue, step);
  PlanRig plan(190.0, 0.97, MakeQueue, /*allow_in_network=*/true, step);
  legacy.Run(MakeConstantTrace(40.0, 300.0), 40.0, /*target_delay=*/2.0);
  plan.Run(MakeConstantTrace(40.0, 300.0), 40.0);
  ExpectIdenticalTimelines(legacy, plan);
  // The step actually pushed shedding into the network.
  EXPECT_GT(plan.engine->counters().shed_lineages, 0u);
}

TEST(ActuationRefactorIdentityTest, PlanLoopRecordsActuationSite) {
  CostMultiplierFn step = [](SimTime t) {
    return t < 20.0 ? 1.0 : 3.0;
  };
  PlanRig plan(190.0, 0.97, MakeQueue, /*allow_in_network=*/true, step);
  plan.Run(MakeConstantTrace(40.0, 300.0), 40.0);
  bool saw_entry = false;
  bool saw_in_network = false;
  uint64_t queue_shed_rows = 0;
  for (const PeriodRecord& row : plan.loop->recorder().rows()) {
    saw_entry |= row.site == ActuationSite::kEntry;
    saw_in_network |= row.site != ActuationSite::kEntry;
    queue_shed_rows += row.queue_shed;
  }
  EXPECT_TRUE(saw_entry);
  EXPECT_TRUE(saw_in_network);
  // Per-period queue_shed deltas add up to the engine's total.
  EXPECT_EQ(queue_shed_rows, plan.engine->counters().shed_lineages);
}

}  // namespace
}  // namespace ctrlshed
