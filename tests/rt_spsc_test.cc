#include "rt/spsc_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace ctrlshed {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRingTest, FifoOrderSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_EQ(ring.SizeApprox(), 5u);
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.TryPop(&v));
  EXPECT_EQ(ring.SizeApprox(), 0u);
}

TEST(SpscRingTest, RejectsWhenFullAndRecoversAfterPop) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));
  EXPECT_FALSE(ring.TryPush(99));
  int v = -1;
  ASSERT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ring.TryPush(4));  // one slot freed
  EXPECT_FALSE(ring.TryPush(5));
  // Everything still in order, nothing duplicated.
  for (int expect : {1, 2, 3, 4}) {
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, expect);
  }
  EXPECT_FALSE(ring.TryPop(&v));
}

TEST(SpscRingTest, WrapsAroundManyTimes) {
  SpscRing<uint64_t> ring(4);
  uint64_t next_pop = 0;
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
    if (i % 3 == 0) {  // drain slower than we fill, but never overflow
      uint64_t v = 0;
      ASSERT_TRUE(ring.TryPop(&v));
      EXPECT_EQ(v, next_pop++);
    }
    if (ring.SizeApprox() >= ring.capacity() - 1) {
      uint64_t v = 0;
      while (ring.TryPop(&v)) EXPECT_EQ(v, next_pop++);
    }
  }
}

// The satellite's two-thread stress: hammer a small ring from a producer
// thread while a consumer drains it. Every popped value must be strictly
// sequential among the values actually pushed (no loss, no duplication,
// no reordering), and pushes rejected at capacity must be exactly
// accounted for.
TEST(SpscRingTest, TwoThreadStressNoLossNoDuplication) {
  constexpr uint64_t kAttempts = 200000;
  SpscRing<uint64_t> ring(64);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> pushed{0};
  std::atomic<uint64_t> dropped{0};

  std::thread producer([&] {
    uint64_t seq = 0;  // only successfully pushed values consume a seq
    for (uint64_t i = 0; i < kAttempts; ++i) {
      if (ring.TryPush(seq)) {
        ++seq;
      } else {
        dropped.fetch_add(1, std::memory_order_relaxed);
      }
    }
    pushed.store(seq, std::memory_order_release);
    done.store(true, std::memory_order_release);
  });

  uint64_t popped = 0;
  uint64_t expect = 0;
  bool ok = true;
  while (true) {
    uint64_t v = 0;
    if (ring.TryPop(&v)) {
      ok = ok && (v == expect);
      ++expect;
      ++popped;
    } else if (done.load(std::memory_order_acquire)) {
      // Producer finished; drain what's left.
      while (ring.TryPop(&v)) {
        ok = ok && (v == expect);
        ++expect;
        ++popped;
      }
      break;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();

  EXPECT_TRUE(ok) << "popped values were not sequential";
  EXPECT_EQ(popped, pushed.load());
  EXPECT_EQ(popped + dropped.load(), kAttempts);
  // On any sane schedule the tiny ring must have both accepted and
  // rejected some pushes, or the stress proved nothing.
  EXPECT_GT(popped, 0u);
}

// Same stress but with a struct payload (the actual Tuple-sized case) to
// shake out torn reads of multi-word slots.
TEST(SpscRingTest, TwoThreadStressStructPayload) {
  struct Item {
    uint64_t seq = 0;
    double a = 0.0, b = 0.0;
  };
  constexpr uint64_t kAttempts = 100000;
  SpscRing<Item> ring(32);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> pushed{0};

  std::thread producer([&] {
    uint64_t seq = 0;
    for (uint64_t i = 0; i < kAttempts; ++i) {
      Item it;
      it.seq = seq;
      it.a = static_cast<double>(seq) * 0.5;
      it.b = static_cast<double>(seq) * 2.0;
      if (ring.TryPush(it)) ++seq;
    }
    pushed.store(seq, std::memory_order_release);
    done.store(true, std::memory_order_release);
  });

  uint64_t expect = 0;
  bool consistent = true;
  while (true) {
    Item it;
    if (ring.TryPop(&it)) {
      consistent = consistent && it.seq == expect &&
                   it.a == static_cast<double>(it.seq) * 0.5 &&
                   it.b == static_cast<double>(it.seq) * 2.0;
      ++expect;
    } else if (done.load(std::memory_order_acquire)) {
      while (ring.TryPop(&it)) {
        consistent = consistent && it.seq == expect;
        ++expect;
      }
      break;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(consistent) << "payload fields were torn or out of order";
  EXPECT_EQ(expect, pushed.load());
}

// ---------------------------------------------------------------------------
// Batched operations (TryPushBatch / TryPopBatch).

TEST(SpscRingBatchTest, PushBatchAcceptsOnlyWhatFits) {
  SpscRing<int> ring(4);
  const int src[6] = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(ring.TryPushBatch(src, 6), 4u);  // partial: ring has 4 slots
  EXPECT_EQ(ring.TryPushBatch(src + 4, 2), 0u);  // full: nothing accepted
  int v = -1;
  for (int expect : {0, 1, 2, 3}) {
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, expect);
  }
  EXPECT_FALSE(ring.TryPop(&v));
}

TEST(SpscRingBatchTest, PopBatchReturnsOnlyWhatIsThere) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.TryPush(i));
  int out[8] = {0};
  EXPECT_EQ(ring.TryPopBatch(out, 8), 3u);  // partial: only 3 queued
  for (int i = 0; i < 3; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(ring.TryPopBatch(out, 8), 0u);  // empty
}

TEST(SpscRingBatchTest, BatchOpsWrapAroundCleanly) {
  SpscRing<uint64_t> ring(8);
  uint64_t next_push = 0, next_pop = 0;
  uint64_t src[5], out[7];
  for (int round = 0; round < 5000; ++round) {
    const size_t n = 1 + (static_cast<size_t>(round) % 5);
    for (size_t i = 0; i < n; ++i) src[i] = next_push + i;
    next_push += ring.TryPushBatch(src, n);
    const size_t m = ring.TryPopBatch(out, 1 + (static_cast<size_t>(round) % 7));
    for (size_t i = 0; i < m; ++i) ASSERT_EQ(out[i], next_pop + i);
    next_pop += m;
  }
  // Drain the tail; every pushed value must come out exactly once.
  uint64_t v = 0;
  while (ring.TryPop(&v)) ASSERT_EQ(v, next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscRingBatchTest, BatchOfOneMatchesScalarOps) {
  SpscRing<int> ring(4);
  const int one = 7;
  EXPECT_EQ(ring.TryPushBatch(&one, 1), 1u);
  int out = -1;
  EXPECT_EQ(ring.TryPopBatch(&out, 1), 1u);
  EXPECT_EQ(out, 7);
}

// Batched producer against a scalar consumer: the single release store
// that publishes a whole run must make every slot in the run visible.
// (Run under TSan in the sanitizer CI matrix.)
TEST(SpscRingBatchTest, TwoThreadStressBatchedProducerScalarConsumer) {
  constexpr uint64_t kAttempts = 50000;
  SpscRing<uint64_t> ring(64);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> pushed{0};

  std::thread producer([&] {
    uint64_t seq = 0;
    uint64_t batch[9];
    for (uint64_t i = 0; i < kAttempts; ++i) {
      const size_t n = 1 + (i % 9);
      for (size_t j = 0; j < n; ++j) batch[j] = seq + j;
      seq += ring.TryPushBatch(batch, n);
    }
    pushed.store(seq, std::memory_order_release);
    done.store(true, std::memory_order_release);
  });

  uint64_t expect = 0;
  bool ok = true;
  while (true) {
    uint64_t v = 0;
    if (ring.TryPop(&v)) {
      ok = ok && (v == expect);
      ++expect;
    } else if (done.load(std::memory_order_acquire)) {
      while (ring.TryPop(&v)) {
        ok = ok && (v == expect);
        ++expect;
      }
      break;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ok) << "popped values were not sequential";
  EXPECT_EQ(expect, pushed.load());
  EXPECT_GT(expect, 0u);
}

// Scalar producer against a batched consumer: the single release store of
// head_ that frees a consumed run must never let the producer overwrite a
// slot the consumer has not finished reading.
TEST(SpscRingBatchTest, TwoThreadStressScalarProducerBatchedConsumer) {
  constexpr uint64_t kAttempts = 50000;
  SpscRing<uint64_t> ring(32);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> pushed{0};

  std::thread producer([&] {
    uint64_t seq = 0;
    for (uint64_t i = 0; i < kAttempts; ++i) {
      if (ring.TryPush(seq)) ++seq;
    }
    pushed.store(seq, std::memory_order_release);
    done.store(true, std::memory_order_release);
  });

  uint64_t expect = 0;
  bool ok = true;
  uint64_t out[11];
  while (true) {
    const size_t n = ring.TryPopBatch(out, 11);
    if (n > 0) {
      for (size_t i = 0; i < n; ++i) ok = ok && (out[i] == expect + i);
      expect += n;
    } else if (done.load(std::memory_order_acquire)) {
      const size_t m = ring.TryPopBatch(out, 11);
      if (m == 0 && ring.SizeApprox() == 0) break;
      for (size_t i = 0; i < m; ++i) ok = ok && (out[i] == expect + i);
      expect += m;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ok) << "batched pops were not sequential";
  EXPECT_EQ(expect, pushed.load());
  EXPECT_GT(expect, 0u);
}

}  // namespace
}  // namespace ctrlshed
