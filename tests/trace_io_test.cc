#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "workload/trace_io.h"
#include "workload/traces.h"

namespace ctrlshed {
namespace {

TEST(TraceIoTest, RoundTrip) {
  RateTrace original(0.5, {10.0, 20.5, 0.0, 99.25});
  std::stringstream buf;
  WriteTrace(original, buf);
  TraceParseResult r = ReadTrace(buf);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.trace.slot_width(), 0.5);
  EXPECT_EQ(r.trace.values(), original.values());
}

TEST(TraceIoTest, RoundTripSyntheticTrace) {
  RateTrace original = MakeParetoTrace(50.0, ParetoTraceParams{}, 3);
  std::stringstream buf;
  WriteTrace(original, buf);
  TraceParseResult r = ReadTrace(buf);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.trace.values().size(), original.values().size());
  for (size_t i = 0; i < original.values().size(); ++i) {
    EXPECT_NEAR(r.trace.values()[i], original.values()[i],
                1e-6 * original.values()[i] + 1e-9);
  }
}

TEST(TraceIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n\nslot_width 1.0\n# another\n5\n\n7\n");
  TraceParseResult r = ReadTrace(in);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.trace.values(), (std::vector<double>{5.0, 7.0}));
}

TEST(TraceIoTest, MissingHeaderFails) {
  std::stringstream in("5\n7\n");
  TraceParseResult r = ReadTrace(in);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("slot_width"), std::string::npos);
}

TEST(TraceIoTest, NegativeValueFails) {
  std::stringstream in("slot_width 1.0\n5\n-2\n");
  TraceParseResult r = ReadTrace(in);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 3"), std::string::npos);
}

TEST(TraceIoTest, EmptyTraceFails) {
  std::stringstream in("slot_width 1.0\n");
  EXPECT_FALSE(ReadTrace(in).ok);
}

TEST(TraceIoTest, BadSlotWidthFails) {
  std::stringstream in("slot_width -1\n5\n");
  EXPECT_FALSE(ReadTrace(in).ok);
}

// NaN compares false against every threshold, so `slot_width <= 0` alone
// used to let it through and poison every downstream rate computation.
TEST(TraceIoTest, NanSlotWidthFails) {
  std::stringstream in("slot_width nan\n5\n");
  TraceParseResult r = ReadTrace(in);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("slot_width"), std::string::npos);
}

TEST(TraceIoTest, InfiniteSlotWidthFails) {
  std::stringstream in("slot_width inf\n5\n");
  EXPECT_FALSE(ReadTrace(in).ok);
}

TEST(TraceIoTest, NanRateValueFails) {
  std::stringstream in("slot_width 1.0\n5\nnan\n");
  TraceParseResult r = ReadTrace(in);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 3"), std::string::npos);
}

TEST(TraceIoTest, InfiniteRateValueFails) {
  std::stringstream in("slot_width 1.0\ninf\n");
  EXPECT_FALSE(ReadTrace(in).ok);
}

// "1.5garbage" extracts 1.5 via operator>> and used to be silently
// accepted, hiding corrupt lines.
TEST(TraceIoTest, TrailingGarbageOnValueFails) {
  std::stringstream in("slot_width 1.0\n5\n1.5garbage\n");
  TraceParseResult r = ReadTrace(in);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 3"), std::string::npos);
}

TEST(TraceIoTest, TrailingGarbageOnHeaderFails) {
  std::stringstream in("slot_width 1.0 extra\n5\n");
  EXPECT_FALSE(ReadTrace(in).ok);
}

TEST(TraceIoTest, TwoValuesOnOneLineFail) {
  std::stringstream in("slot_width 1.0\n5 7\n");
  EXPECT_FALSE(ReadTrace(in).ok);
}

TEST(TimestampTraceTest, BinsArrivalsIntoRates) {
  // 3 arrivals in [0,1), 1 in [1,2), 0 in [2,3), 2 in [3,4).
  std::stringstream in("0.1\n0.5\n0.9\n1.2\n3.0\n3.99\n");
  TraceParseResult r = ReadTimestampTrace(in, 1.0);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.trace.values(), (std::vector<double>{3.0, 1.0, 0.0, 2.0}));
}

TEST(TimestampTraceTest, SubSecondSlots) {
  std::stringstream in("0.1\n0.2\n0.3\n0.8\n");
  TraceParseResult r = ReadTimestampTrace(in, 0.5);
  ASSERT_TRUE(r.ok) << r.error;
  // 3 arrivals in the first half-second slot => 6/s; 1 in the second => 2/s.
  EXPECT_EQ(r.trace.values(), (std::vector<double>{6.0, 2.0}));
}

TEST(TimestampTraceTest, DecreasingTimestampsFail) {
  std::stringstream in("1.0\n0.5\n");
  TraceParseResult r = ReadTimestampTrace(in, 1.0);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("non-decreasing"), std::string::npos);
}

TEST(TimestampTraceTest, EmptyInputFails) {
  std::stringstream in("# only a comment\n");
  EXPECT_FALSE(ReadTimestampTrace(in, 1.0).ok);
}

TEST(TimestampTraceTest, NanTimestampFails) {
  std::stringstream in("0.5\nnan\n");
  EXPECT_FALSE(ReadTimestampTrace(in, 1.0).ok);
}

TEST(TimestampTraceTest, NanSlotWidthFails) {
  std::stringstream in("0.5\n");
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ReadTimestampTrace(in, nan).ok);
}

// A single corrupt timestamp like 1e300 must fail the parse, not attempt
// a 1e300-slot resize.
TEST(TimestampTraceTest, HugeTimestampFailsInsteadOfResizing) {
  std::stringstream in("0.5\n1e300\n");
  TraceParseResult r = ReadTimestampTrace(in, 1.0);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("trace length"), std::string::npos);
}

TEST(TimestampTraceTest, TrailingGarbageFails) {
  std::stringstream in("0.5oops\n");
  EXPECT_FALSE(ReadTimestampTrace(in, 1.0).ok);
}

TEST(TraceIoFileTest, FileRoundTrip) {
  const std::string path = "/tmp/ctrlshed_trace_io_test.trace";
  RateTrace original(2.0, {1.0, 2.0, 3.0});
  ASSERT_TRUE(WriteTraceFile(original, path));
  TraceParseResult r = ReadTraceFile(path);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.trace.values(), original.values());
}

TEST(TraceIoFileTest, MissingFileFails) {
  TraceParseResult r = ReadTraceFile("/nonexistent/path/x.trace");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("cannot open"), std::string::npos);
}

// End-to-end regression: a corrupt trace FILE (good header, NaN and
// garbage-suffixed rows) is rejected with a line-accurate error.
TEST(TraceIoFileTest, CorruptFileIsRejected) {
  const std::string path = "/tmp/ctrlshed_trace_io_corrupt.trace";
  {
    std::ofstream out(path);
    out << "# ctrlshed-trace v1\n"
        << "slot_width 0.5\n"
        << "10\n"
        << "nan\n"
        << "20trailing\n";
  }
  TraceParseResult r = ReadTraceFile(path);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 4"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ctrlshed
