// In-process end-to-end tests of the socket cluster runtime: a real
// controller, real nodes, and real feeders wired over loopback TCP inside
// one test binary. Time-compressed so each scenario costs well under a
// second of wall time. Also the ingress-hardening regression (a malformed
// producer is counted, never fatal) and the /status cluster block.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "cluster/controller_runner.h"
#include "cluster/feeder.h"
#include "cluster/node_runner.h"
#include "net/frame.h"

namespace ctrlshed {
namespace {

constexpr double kCompression = 20.0;

ExperimentConfig ControlBase(double duration) {
  ExperimentConfig base;
  base.method = Method::kCtrl;
  base.duration = duration;
  base.period = 1.0;
  base.target_delay = 2.0;
  return base;
}

/// Workload config for one feeder: web trace at ~2x one worker's capacity.
ExperimentConfig FeedBase(double duration, uint64_t seed) {
  ExperimentConfig base = ControlBase(duration);
  base.workload = WorkloadKind::kWeb;
  base.web.mean_rate = 380.0;
  base.seed = seed;
  return base;
}

int RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(0,
            ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)))
      << std::strerror(errno);
  return fd;
}

std::string HttpGet(int port, const std::string& path) {
  const int fd = RawConnect(port);
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(ClusterRuntimeTest, TwoNodesOneControllerEndToEnd) {
  const double duration = 6.0;

  std::promise<int> ctl_port_promise;
  auto ctl_port_future = ctl_port_promise.get_future();
  ClusterControllerResult ctl_result;
  std::thread ctl_thread([&] {
    ClusterControllerConfig config;
    config.base = ControlBase(duration);
    config.port = 0;
    config.min_nodes = 2;
    config.min_nodes_timeout_wall = 10.0;
    config.time_compression = kCompression;
    config.on_ready = [&ctl_port_promise](int port) {
      ctl_port_promise.set_value(port);
    };
    ctl_result = RunClusterController(config);
  });
  const int ctl_port = ctl_port_future.get();
  ASSERT_GT(ctl_port, 0);

  std::promise<int> node_port_promise[2];
  ClusterNodeResult node_result[2];
  std::vector<std::thread> node_threads;
  for (uint32_t id = 0; id < 2; ++id) {
    node_threads.emplace_back([&, id] {
      ClusterNodeConfig config;
      config.base = ControlBase(duration);
      config.node_id = id;
      config.workers = 1;
      config.ingress_port = 0;
      config.controller_port = ctl_port;
      config.time_compression = kCompression;
      config.on_ready = [&, id](int port) {
        node_port_promise[id].set_value(port);
      };
      node_result[id] = RunClusterNode(config);
    });
  }
  const int ingress0 = node_port_promise[0].get_future().get();
  const int ingress1 = node_port_promise[1].get_future().get();

  ClusterFeedResult feed_result[2];
  std::vector<std::thread> feed_threads;
  for (int i = 0; i < 2; ++i) {
    feed_threads.emplace_back([&, i] {
      ClusterFeedConfig config;
      config.base = FeedBase(duration, /*seed=*/42 + static_cast<uint64_t>(i));
      config.port = i == 0 ? ingress0 : ingress1;
      config.source_id = static_cast<uint32_t>(i);
      config.time_compression = kCompression;
      feed_result[i] = RunClusterFeeder(config);
    });
  }

  for (auto& t : feed_threads) t.join();
  for (auto& t : node_threads) t.join();
  ctl_thread.join();

  for (int i = 0; i < 2; ++i) {
    SCOPED_TRACE("node " + std::to_string(i));
    EXPECT_TRUE(feed_result[i].connected);
    EXPECT_GT(feed_result[i].tuples_sent, 0u);
    EXPECT_TRUE(node_result[i].controller_connected);
    EXPECT_GT(node_result[i].offered, 0u);
    EXPECT_GT(node_result[i].departed, 0u);
    EXPECT_GT(node_result[i].reports_sent, 0u);
    EXPECT_GT(node_result[i].actuations_applied, 0u);
    EXPECT_EQ(node_result[i].ingress_rejected, 0u);
    EXPECT_EQ(node_result[i].corrupt_streams, 0u);
    EXPECT_EQ(node_result[i].control_rejected, 0u);
    EXPECT_FALSE(node_result[i].interrupted);
  }
  EXPECT_EQ(ctl_result.nodes_seen, 2);
  EXPECT_EQ(ctl_result.final_active, 2);
  EXPECT_EQ(ctl_result.total_workers, 2);
  EXPECT_GE(ctl_result.hellos, 2u);
  EXPECT_GT(ctl_result.reports, 0u);
  EXPECT_GT(ctl_result.acks, 0u);
  EXPECT_EQ(ctl_result.rejected, 0u);
  EXPECT_EQ(ctl_result.corrupt_streams, 0u);
  EXPECT_FALSE(ctl_result.recorder.empty());
}

TEST(ClusterRuntimeTest, MalformedProducerIsCountedNotFatal) {
  const double duration = 4.0;
  std::promise<int> port_promise;
  ClusterNodeResult result;
  std::thread node_thread([&] {
    ClusterNodeConfig config;
    config.base = ControlBase(duration);
    config.node_id = 9;
    config.workers = 1;
    config.controller_port = 0;        // no controller: local-shedding mode
    config.connect_timeout_wall = 0.1;
    config.time_compression = kCompression;
    config.on_ready = [&port_promise](int port) {
      port_promise.set_value(port);
    };
    result = RunClusterNode(config);
  });
  const int ingress = port_promise.get_future().get();
  ASSERT_GT(ingress, 0);

  // (a) A well-formed frame whose payload fails the hardened decode: a
  // tuple with a NaN arrival_time. Counted as an ingress reject; the
  // connection stays up.
  Tuple bad;
  bad.arrival_time = std::numeric_limits<double>::quiet_NaN();
  std::string wire = EncodeTupleBatchFrame(0, &bad, 1);
  // (b) A control-plane frame type on the tuple port: also a reject.
  AppendFrame(FrameType::kHello, "", &wire);
  // (c) A valid batch AFTER the malformed ones, proving the stream
  // survives payload-level rejects.
  Tuple good;
  good.arrival_time = 0.5;
  good.value = 0.5;
  wire += EncodeTupleBatchFrame(0, &good, 1);
  const int fd = RawConnect(ingress);
  ASSERT_EQ(static_cast<ssize_t>(wire.size()),
            ::send(fd, wire.data(), wire.size(), 0));

  // (d) Framing garbage on a second connection: the stream is dropped and
  // counted as corrupt.
  const int fd2 = RawConnect(ingress);
  const std::string garbage(64, '\xff');
  ASSERT_EQ(static_cast<ssize_t>(garbage.size()),
            ::send(fd2, garbage.data(), garbage.size(), 0));

  node_thread.join();
  ::close(fd);
  ::close(fd2);

  EXPECT_FALSE(result.controller_connected);
  EXPECT_EQ(result.ingress_rejected, 2u);  // NaN payload + wrong type
  EXPECT_EQ(result.corrupt_streams, 1u);
  EXPECT_EQ(result.offered, 1u);  // the good tuple made it through
  EXPECT_FALSE(result.interrupted);
}

TEST(ClusterRuntimeTest, ControllerStatusExposesClusterBlock) {
  const double duration = 8.0;
  std::promise<int> ctl_port_promise;
  std::promise<int> http_port_promise;
  ClusterControllerResult ctl_result;
  std::thread ctl_thread([&] {
    ClusterControllerConfig config;
    config.base = ControlBase(duration);
    config.base.telemetry.dir = ::testing::TempDir() + "cluster_status_test";
    config.base.telemetry.trace = false;
    config.base.telemetry.server_port = 0;
    config.base.telemetry.on_server_start = [&http_port_promise](int port) {
      http_port_promise.set_value(port);
    };
    config.time_compression = kCompression;
    config.on_ready = [&ctl_port_promise](int port) {
      ctl_port_promise.set_value(port);
    };
    ctl_result = RunClusterController(config);
  });
  const int ctl_port = ctl_port_promise.get_future().get();
  const int http_port = http_port_promise.get_future().get();

  std::promise<int> node_port_promise;
  ClusterNodeResult node_result;
  std::thread node_thread([&] {
    ClusterNodeConfig config;
    config.base = ControlBase(duration);
    config.node_id = 3;
    config.workers = 2;
    config.controller_port = ctl_port;
    config.time_compression = kCompression;
    config.on_ready = [&node_port_promise](int port) {
      node_port_promise.set_value(port);
    };
    node_result = RunClusterNode(config);
  });
  node_port_promise.get_future().get();

  // Poll /status until the controller has seen the node's first report.
  std::string status;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    status = HttpGet(http_port, "/status");
    if (status.find("\"id\":3") != std::string::npos &&
        status.find("\"active\":true") != std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(status.find("\"mode\":\"cluster\""), std::string::npos) << status;
  EXPECT_NE(status.find("\"role\":\"controller\""), std::string::npos);
  EXPECT_NE(status.find("\"nodes\":1"), std::string::npos);
  EXPECT_NE(status.find("\"id\":3"), std::string::npos);
  EXPECT_NE(status.find("\"workers\":2"), std::string::npos);
  EXPECT_NE(status.find("\"last_report_age_s\""), std::string::npos);

  node_thread.join();
  ctl_thread.join();
  EXPECT_EQ(ctl_result.nodes_seen, 1);
  EXPECT_GT(ctl_result.reports, 0u);
}

TEST(ClusterRuntimeTest, ControllerFederatesNodeMetricsAndServesFleet) {
  const double duration = 8.0;
  std::promise<int> ctl_port_promise;
  std::promise<int> http_port_promise;
  ClusterControllerResult ctl_result;
  std::thread ctl_thread([&] {
    ClusterControllerConfig config;
    config.base = ControlBase(duration);
    config.base.telemetry.dir = ::testing::TempDir() + "cluster_fed_ctl";
    config.base.telemetry.trace = false;
    config.base.telemetry.server_port = 0;
    config.base.telemetry.on_server_start = [&http_port_promise](int port) {
      http_port_promise.set_value(port);
    };
    config.time_compression = kCompression;
    config.on_ready = [&ctl_port_promise](int port) {
      ctl_port_promise.set_value(port);
    };
    ctl_result = RunClusterController(config);
  });
  const int ctl_port = ctl_port_promise.get_future().get();
  const int http_port = http_port_promise.get_future().get();

  // The node runs with its own telemetry registry (no server) so each
  // kStatsReport carries a piggybacked snapshot of its real rt metrics.
  std::promise<int> node_port_promise;
  ClusterNodeResult node_result;
  std::thread node_thread([&] {
    ClusterNodeConfig config;
    config.base = ControlBase(duration);
    config.base.telemetry.dir = ::testing::TempDir() + "cluster_fed_node";
    config.base.telemetry.trace = false;
    config.node_id = 5;
    config.workers = 1;
    config.controller_port = ctl_port;
    config.time_compression = kCompression;
    config.on_ready = [&node_port_promise](int port) {
      node_port_promise.set_value(port);
    };
    node_result = RunClusterNode(config);
  });
  node_port_promise.get_future().get();

  // One controller scrape exposes the node's series under node="5", and
  // /fleet reports the node fresh. Poll: the first report may not have
  // landed yet.
  std::string metrics;
  std::string fleet;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    metrics = HttpGet(http_port, "/metrics");
    fleet = HttpGet(http_port, "/fleet");
    if (metrics.find("node=\"5\"") != std::string::npos &&
        fleet.find("\"fresh\":true") != std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(metrics.find("node=\"5\""), std::string::npos) << metrics;
  EXPECT_NE(fleet.find("\"id\":5"), std::string::npos) << fleet;
  EXPECT_NE(fleet.find("\"fresh\":true"), std::string::npos) << fleet;
  EXPECT_NE(fleet.find("\"alpha\""), std::string::npos) << fleet;

  node_thread.join();
  ctl_thread.join();
  EXPECT_GT(ctl_result.reports, 0u);
  EXPECT_GT(node_result.reports_sent, 0u);
  EXPECT_EQ(node_result.control_rejected, 0u);  // HelloAck is not a reject
}

}  // namespace
}  // namespace ctrlshed
