#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/prom_export.h"

namespace ctrlshed {
namespace {

/// Splits the exposition text into lines.
std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Family of a `# HELP <family> ...` / `# TYPE <family> ...` line.
std::string CommentFamily(const std::string& line) {
  const size_t start = line.find(' ', 2) + 1;
  const size_t end = line.find(' ', start);
  return line.substr(start, end - start);
}

/// A representative snapshot covering every sample shape the exporter
/// emits: plain and labeled counters/gauges (shard, operator, actuation
/// site, federated node), histograms-as-summaries, the health gauge
/// family, and a dynamically named metric with no curated HELP entry.
MetricsSnapshot RepresentativeSnapshot() {
  MetricsSnapshot snap;
  snap.counters["rt.offered"] = 42;
  snap.counters["engine.op.filter_a.processed"] = 10;
  snap.counters["actuation.site.entry"] = 7;
  snap.counters["node3.rt.offered"] = 5;
  snap.counters["some.unlisted.metric"] = 1;
  snap.gauges["rt.queue"] = 3.5;
  snap.gauges["rt.h_hat"] = 0.95;
  snap.gauges["rt.shard0.h_hat"] = 0.96;
  snap.gauges["ctrlshed.health.verdict"] = 0.0;
  snap.gauges["ctrlshed.health.tracking_rms"] = 0.1;
  snap.gauges["ctrlshed.health.alpha_sat_frac"] = 0.2;
  snap.gauges["ctrlshed.health.oscillation"] = 0.0;
  snap.gauges["ctrlshed.health.stale_nodes"] = 0.0;
  snap.gauges["ctrlshed.health.h_hat"] = 0.95;
  MetricsSnapshot::HistogramStats h;
  h.count = 4;
  h.sum = 2.0;
  h.p50 = 0.5;
  h.p95 = 0.75;
  h.p99 = 1.25;
  snap.histograms["rt.pump_interval_s"] = h;
  return snap;
}

TEST(PromHelpTest, EveryFamilyHasHelpThenTypeThenSamples) {
  std::ostringstream out;
  WritePrometheusText(RepresentativeSnapshot(), out);
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_FALSE(lines.empty());

  // Exposition-format contract: every family opens with exactly one
  // # HELP line immediately followed by its # TYPE line, and every
  // sample line belongs to the most recently opened family.
  std::string open_family;
  size_t families = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string family = CommentFamily(line);
      ASSERT_LT(i + 1, lines.size()) << "# HELP with no # TYPE: " << line;
      EXPECT_EQ(lines[i + 1].rfind("# TYPE " + family + " ", 0), 0u)
          << "# HELP for " << family << " not followed by its # TYPE";
      // Non-empty help text after the family name.
      EXPECT_GT(line.size(), std::string("# HELP ").size() + family.size() + 1)
          << "empty HELP text for " << family;
      open_family = family;
      ++families;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      EXPECT_EQ(CommentFamily(line), open_family)
          << "# TYPE without a preceding # HELP: " << line;
      continue;
    }
    // Sample line: name must extend the open family (exact, _sum/_count
    // suffix, or a brace-delimited label set).
    ASSERT_FALSE(open_family.empty()) << "sample before any family: " << line;
    EXPECT_EQ(line.rfind(open_family, 0), 0u)
        << "sample " << line << " outside family " << open_family;
  }
  EXPECT_GE(families, 10u);
}

TEST(PromHelpTest, CuratedFamiliesCarrySpecificHelp) {
  std::ostringstream out;
  WritePrometheusText(RepresentativeSnapshot(), out);
  const std::string text = out.str();
  // Curated entries must not fall through to the generic fallback.
  EXPECT_NE(text.find("# HELP rt_h_hat Aggregate measured headroom"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP rt_shard_h_hat Per-shard measured headroom"),
            std::string::npos);
  EXPECT_NE(
      text.find("# HELP ctrlshed_health_verdict Control-loop health verdict"),
      std::string::npos);
  EXPECT_EQ(text.find("ControlShed metric rt_h_hat"), std::string::npos);
}

TEST(PromHelpTest, UnlistedFamilyGetsFallbackHelp) {
  std::ostringstream out;
  WritePrometheusText(RepresentativeSnapshot(), out);
  EXPECT_NE(out.str().find(
                "# HELP some_unlisted_metric_total ControlShed metric "
                "some_unlisted_metric_total."),
            std::string::npos);
}

TEST(PromHelpTest, FederatedNodeMetricsShareTheBaseFamilyHelp) {
  std::ostringstream out;
  WritePrometheusText(RepresentativeSnapshot(), out);
  const std::string text = out.str();
  // node3.rt.offered folds into rt_offered_total{node="3"} under ONE
  // HELP/TYPE pair with the local sample.
  const size_t help = text.find("# HELP rt_offered_total ");
  ASSERT_NE(help, std::string::npos);
  EXPECT_EQ(text.find("# HELP rt_offered_total ", help + 1),
            std::string::npos);
  EXPECT_NE(text.find("rt_offered_total{node=\"3\"} 5"), std::string::npos);
}

}  // namespace
}  // namespace ctrlshed
