#include "telemetry/flight_recorder.h"

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/macros.h"

namespace ctrlshed {
namespace {

PeriodRecord MakeRow(uint64_t k) {
  PeriodRecord row;
  row.m.k = static_cast<int>(k);
  row.m.t = static_cast<double>(k);
  row.m.target_delay = 2.0;
  row.m.fin = 100.0 + static_cast<double>(k);
  row.m.y_hat = 1.5;
  row.v = 90.0;
  row.alpha = 0.25;
  row.h_hat = 0.5;  // exactly representable: %.17g prints the short form
  return row;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

size_t CountOccurrences(const std::string& s, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = s.find(needle); pos != std::string::npos;
       pos = s.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Structural JSON sanity: balanced braces/brackets outside strings, no
/// bare NaN/Infinity tokens. Not a full parser, but catches every way the
/// write()-based emitter could produce a torn or invalid document.
void ExpectWellFormedJson(const std::string& s) {
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s.front(), '{');
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_EQ(s.find("nan"), std::string::npos);
  EXPECT_EQ(s.find("inf"), std::string::npos);
}

std::string TempDumpPath(const char* tag) {
  return testing::TempDir() + "/flight_" + tag + ".flightdump.json";
}

TEST(FlightRecorderTest, RingKeepsLastPeriodsAfterWrap) {
  FlightRecorder rec("wrap");
  for (uint64_t k = 1; k <= 300; ++k) rec.RecordPeriod(MakeRow(k));
  EXPECT_EQ(rec.periods_recorded(), 300u);

  const std::string path = TempDumpPath("wrap");
  ASSERT_TRUE(SetFlightDumpPath(path));
  ASSERT_TRUE(WriteFlightDump("request", "unit test"));
  const std::string dump = ReadFile(path);
  ExpectWellFormedJson(dump);

  // The ring holds exactly the last kPeriodCapacity periods, oldest
  // first: 300 - 256 + 1 = 45 through 300.
  const size_t start = dump.find("\"name\":\"wrap\"");
  ASSERT_NE(start, std::string::npos);
  const std::string ours = dump.substr(start);
  EXPECT_EQ(CountOccurrences(ours, "{\"k\":"),
            FlightRecorder::kPeriodCapacity);
  EXPECT_NE(ours.find("\"k\":45,"), std::string::npos);
  EXPECT_NE(ours.find("\"k\":300,"), std::string::npos);
  EXPECT_EQ(ours.find("\"k\":44,"), std::string::npos);
  EXPECT_NE(ours.find("\"h_hat\":0.5"), std::string::npos);
}

TEST(FlightRecorderTest, EventsAreRecordedAndEscaped) {
  FlightRecorder rec("events");
  rec.RecordEvent("site_switch", "entry -> split", 12.5);
  rec.RecordEvent("decode_reject", "quote \" and back\\slash");
  EXPECT_EQ(rec.events_recorded(), 2u);

  const std::string path = TempDumpPath("events");
  ASSERT_TRUE(SetFlightDumpPath(path));
  ASSERT_TRUE(WriteFlightDump("request", "unit test"));
  const std::string dump = ReadFile(path);
  ExpectWellFormedJson(dump);
  EXPECT_NE(dump.find("\"what\":\"site_switch\""), std::string::npos);
  EXPECT_NE(dump.find("entry -> split"), std::string::npos);
  EXPECT_NE(dump.find("quote \\\" and back\\\\slash"), std::string::npos);
}

TEST(FlightRecorderTest, DumpCarriesReasonDetailAndBuild) {
  FlightRecorder rec("meta");
  const std::string path = TempDumpPath("meta");
  ASSERT_TRUE(SetFlightDumpPath(path));
  ASSERT_TRUE(WriteFlightDump("request", "POST /debug/dump"));
  const std::string dump = ReadFile(path);
  ExpectWellFormedJson(dump);
  EXPECT_NE(dump.find("\"reason\":\"request\""), std::string::npos);
  EXPECT_NE(dump.find("\"detail\":\"POST /debug/dump\""), std::string::npos);
  EXPECT_NE(dump.find("\"build\":{\"git\":"), std::string::npos);
  EXPECT_NE(dump.find("\"compiler\":"), std::string::npos);
}

TEST(FlightRecorderTest, RejectsOverlongDumpPath) {
  EXPECT_FALSE(SetFlightDumpPath(std::string(600, 'x')));
  EXPECT_FALSE(SetFlightDumpPath(""));
}

TEST(FlightRecorderTest, Sigusr1WritesDumpAndContinues) {
  InstallFlightDumpHandlers();
  FlightRecorder rec("usr1");
  for (uint64_t k = 1; k <= 100; ++k) rec.RecordPeriod(MakeRow(k));
  const std::string path = TempDumpPath("usr1");
  ASSERT_TRUE(SetFlightDumpPath(path));
  std::remove(path.c_str());

  ASSERT_EQ(::raise(SIGUSR1), 0);

  const std::string dump = ReadFile(path);
  ExpectWellFormedJson(dump);
  EXPECT_NE(dump.find("\"reason\":\"sigusr1\""), std::string::npos);
  const size_t start = dump.find("\"name\":\"usr1\"");
  ASSERT_NE(start, std::string::npos);
  // Acceptance floor: the dump must carry at least the last 64 periods.
  EXPECT_GE(CountOccurrences(dump.substr(start), "{\"k\":"), 64u);
}

TEST(FlightRecorderDeathTest, CsCheckFailureWritesWellFormedDump) {
  const std::string path = TempDumpPath("cscheck");
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        FlightRecorder rec("doomed");
        for (uint64_t k = 1; k <= 80; ++k) rec.RecordPeriod(MakeRow(k));
        SetFlightDumpPath(path);
        CS_CHECK_MSG(1 == 2, "forced for the death test");
      },
      "forced for the death test");

  const std::string dump = ReadFile(path);
  ExpectWellFormedJson(dump);
  EXPECT_NE(dump.find("\"reason\":\"cs_check\""), std::string::npos);
  EXPECT_NE(dump.find("forced for the death test"), std::string::npos);
  const size_t start = dump.find("\"name\":\"doomed\"");
  ASSERT_NE(start, std::string::npos);
  EXPECT_GE(CountOccurrences(dump.substr(start), "{\"k\":"), 64u);
}

}  // namespace
}  // namespace ctrlshed
