#include <gtest/gtest.h>

#include "core/stream_system.h"
#include "workload/traces.h"

namespace ctrlshed {
namespace {

TEST(StreamSystemTest, SingleStreamPipelineRuns) {
  StreamSystem sys;
  sys.AddStream("sensor").Filter(1.0, 0.9).Map(2.0).Map(1.0);
  sys.SetWorkload(0, MakeConstantTrace(30.0, 100.0));
  sys.Run(30.0);
  QosSummary s = sys.Summary();
  EXPECT_GT(s.offered, 2500u);
  EXPECT_GT(s.departures, 0u);
  EXPECT_NEAR(sys.NominalCost(), Millis(1.0 + 0.9 * 3.0), 1e-12);
}

TEST(StreamSystemTest, ControlledOverloadTracksTarget) {
  StreamSystem::Options opts;
  opts.target_delay = 1.0;
  StreamSystem sys(opts);
  // ~4 ms per tuple => capacity ~242/s; offer 400/s.
  sys.AddStream("s").Map(4.0);
  sys.SetWorkload(0, MakeConstantTrace(120.0, 400.0));
  sys.Run(120.0);

  double sum = 0.0;
  int n = 0;
  for (const PeriodRecord& row : sys.recorder().rows()) {
    if (row.m.t > 60.0 && row.m.has_y_measured) {
      sum += row.m.y_measured;
      ++n;
    }
  }
  ASSERT_GT(n, 30);
  EXPECT_NEAR(sum / n, 1.0, 0.2);
  EXPECT_GT(sys.LossRatio(), 0.2);
}

TEST(StreamSystemTest, PolicyNoneNeverSheds) {
  StreamSystem::Options opts;
  opts.policy = StreamSystem::Policy::kNone;
  StreamSystem sys(opts);
  sys.AddStream("s").Map(3.0);
  sys.SetWorkload(0, MakeConstantTrace(20.0, 500.0));
  sys.Run(20.0);
  EXPECT_DOUBLE_EQ(sys.LossRatio(), 0.0);
}

TEST(StreamSystemTest, JoinedPipelines) {
  StreamSystem sys;
  auto& left = sys.AddStream("left").Filter(0.5, 0.9);
  auto& right = sys.AddStream("right").Filter(0.5, 0.9);
  left.JoinWith(right, 1.0, /*window_seconds=*/0.5, /*band=*/0.05,
                /*expected_selectivity=*/1.0)
      .Map(0.5);
  sys.SetWorkload(0, MakeConstantTrace(20.0, 50.0));
  sys.SetWorkload(1, MakeConstantTrace(20.0, 50.0));
  sys.Run(20.0);
  QosSummary s = sys.Summary();
  EXPECT_GT(s.offered, 1800u);
  EXPECT_GT(s.departures, 0u);
}

TEST(StreamSystemTest, ScheduledTargetChangeTakesEffect) {
  StreamSystem::Options opts;
  opts.target_delay = 0.5;
  StreamSystem sys(opts);
  sys.AddStream("s").Map(4.0);
  sys.SetWorkload(0, MakeConstantTrace(120.0, 400.0));
  sys.ScheduleTargetDelay(60.0, 2.0);
  sys.Run(120.0);

  double late = 0.0;
  int n = 0;
  for (const PeriodRecord& row : sys.recorder().rows()) {
    if (row.m.t > 100.0 && row.m.has_y_measured) {
      late += row.m.y_measured;
      ++n;
    }
  }
  ASSERT_GT(n, 5);
  EXPECT_NEAR(late / n, 2.0, 0.4);
}

TEST(StreamSystemTest, IncrementalRunContinues) {
  StreamSystem sys;
  sys.AddStream("s").Map(3.0);
  sys.SetWorkload(0, MakeConstantTrace(40.0, 100.0));
  sys.Run(10.0);
  const uint64_t early = sys.Summary().offered;
  sys.Run(40.0);
  EXPECT_GT(sys.Summary().offered, early);
}

TEST(StreamSystemTest, SemanticActuatorDropsLowUtility) {
  StreamSystem::Options opts;
  opts.actuator = StreamSystem::Actuator::kSemantic;
  opts.target_delay = 0.5;
  StreamSystem sys(opts);
  sys.AddStream("s").Map(4.0);  // capacity ~242; offer 400
  sys.SetWorkload(0, MakeConstantTrace(60.0, 400.0));
  sys.Run(60.0);
  EXPECT_GT(sys.LossRatio(), 0.2);
  // Delay control must be as tight as with random drops.
  double sum = 0.0;
  int n = 0;
  for (const PeriodRecord& row : sys.recorder().rows()) {
    if (row.m.t > 30.0 && row.m.has_y_measured) {
      sum += row.m.y_measured;
      ++n;
    }
  }
  EXPECT_NEAR(sum / n, 0.5, 0.15);
}

TEST(StreamSystemTest, AuroraPolicyRuns) {
  StreamSystem::Options opts;
  opts.policy = StreamSystem::Policy::kAurora;
  StreamSystem sys(opts);
  sys.AddStream("s").Map(4.0);
  sys.SetWorkload(0, MakeConstantTrace(30.0, 400.0));
  sys.Run(30.0);
  EXPECT_GT(sys.LossRatio(), 0.1);
}

TEST(StreamSystemDeathTest, EmptyPipelineAborts) {
  StreamSystem sys;
  sys.AddStream("empty");
  EXPECT_DEATH(sys.Run(1.0), "empty pipeline");
}

TEST(StreamSystemDeathTest, NoStreamsAborts) {
  StreamSystem sys;
  EXPECT_DEATH(sys.Run(1.0), "no streams");
}

TEST(StreamSystemDeathTest, WorkloadForUnknownStreamAborts) {
  StreamSystem sys;
  sys.AddStream("s").Map(1.0);
  EXPECT_DEATH(sys.SetWorkload(3, MakeConstantTrace(1.0, 1.0)),
               "unknown stream");
}

TEST(StreamSystemDeathTest, TopologyFrozenAfterRun) {
  StreamSystem sys;
  sys.AddStream("s").Map(1.0);
  sys.SetWorkload(0, MakeConstantTrace(5.0, 10.0));
  sys.Run(1.0);
  EXPECT_DEATH(sys.AddStream("late"), "frozen");
}

TEST(StreamSystemDeathTest, SummaryBeforeRunAborts) {
  StreamSystem sys;
  sys.AddStream("s").Map(1.0);
  EXPECT_DEATH(sys.Summary(), "Run first");
}


TEST(StreamSystemTest, WeightedActuatorProtectsHighPriority) {
  StreamSystem::Options opts;
  opts.actuator = StreamSystem::Actuator::kWeighted;
  opts.stream_priorities = {10.0, 1.0};
  opts.track_per_stream = true;
  opts.target_delay = 1.0;
  StreamSystem sys(opts);
  sys.AddStream("vip").Map(4.0);
  sys.AddStream("bulk").Map(4.0);
  // 200 + 200 offered vs ~242/s capacity: ~40% must go.
  sys.SetWorkload(0, MakeConstantTrace(90.0, 200.0));
  sys.SetWorkload(1, MakeConstantTrace(90.0, 200.0));
  sys.Run(90.0);
  ASSERT_NE(sys.per_stream(), nullptr);
  EXPECT_LT(sys.per_stream()->LossRatio(0), 0.05);
  EXPECT_GT(sys.per_stream()->LossRatio(1), 0.5);
}

TEST(StreamSystemTest, PerStreamTrackingOffByDefault) {
  StreamSystem sys;
  sys.AddStream("s").Map(1.0);
  sys.SetWorkload(0, MakeConstantTrace(5.0, 10.0));
  sys.Run(5.0);
  EXPECT_EQ(sys.per_stream(), nullptr);
}

TEST(StreamSystemDeathTest, WeightedActuatorNeedsMatchingPriorities) {
  StreamSystem::Options opts;
  opts.actuator = StreamSystem::Actuator::kWeighted;
  opts.stream_priorities = {1.0};  // but two streams
  StreamSystem sys(opts);
  sys.AddStream("a").Map(1.0);
  sys.AddStream("b").Map(1.0);
  EXPECT_DEATH(sys.Run(1.0), "stream_priorities");
}

}  // namespace
}  // namespace ctrlshed
