#include <gtest/gtest.h>

#include "runner/experiment.h"

namespace ctrlshed {
namespace {

ExperimentConfig ShortConfig(Method m, WorkloadKind w) {
  ExperimentConfig cfg;
  cfg.method = m;
  cfg.workload = w;
  cfg.duration = 120.0;
  return cfg;
}

TEST(ExperimentTest, DeterministicForSameSeed) {
  ExperimentConfig cfg = ShortConfig(Method::kCtrl, WorkloadKind::kPareto);
  cfg.vary_cost = true;
  ExperimentResult a = RunExperiment(cfg);
  ExperimentResult b = RunExperiment(cfg);
  EXPECT_EQ(a.summary.offered, b.summary.offered);
  EXPECT_EQ(a.summary.shed, b.summary.shed);
  EXPECT_DOUBLE_EQ(a.summary.accumulated_violation,
                   b.summary.accumulated_violation);
  EXPECT_DOUBLE_EQ(a.summary.max_overshoot, b.summary.max_overshoot);
}

TEST(ExperimentTest, DifferentSeedsDiffer) {
  ExperimentConfig cfg = ShortConfig(Method::kCtrl, WorkloadKind::kPareto);
  ExperimentConfig cfg2 = cfg;
  cfg2.seed = 777;
  EXPECT_NE(RunExperiment(cfg).summary.offered,
            RunExperiment(cfg2).summary.offered);
}

TEST(ExperimentTest, NominalCostPinsCapacity) {
  ExperimentConfig cfg = ShortConfig(Method::kNone, WorkloadKind::kConstant);
  cfg.capacity_rate = 190.0;
  cfg.headroom_true = 0.97;
  ExperimentResult r = RunExperiment(cfg);
  EXPECT_NEAR(r.nominal_cost, 0.97 / 190.0, 1e-12);
}

TEST(ExperimentTest, UncontrolledOverloadDiverges) {
  ExperimentConfig cfg = ShortConfig(Method::kNone, WorkloadKind::kConstant);
  cfg.constant_rate = 300.0;
  ExperimentResult r = RunExperiment(cfg);
  EXPECT_DOUBLE_EQ(r.summary.loss_ratio, 0.0);
  // The virtual queue grows roughly linearly: (300-190) tuples/s.
  const auto& rows = r.recorder.rows();
  EXPECT_GT(rows.back().m.queue, 0.7 * 110.0 * cfg.duration);
}

TEST(ExperimentTest, CtrlKeepsDelaysNearTargetUnderOverload) {
  ExperimentConfig cfg = ShortConfig(Method::kCtrl, WorkloadKind::kConstant);
  cfg.constant_rate = 300.0;
  ExperimentResult r = RunExperiment(cfg);
  EXPECT_LT(r.summary.max_overshoot, 1.0);
  EXPECT_GT(r.summary.loss_ratio, 0.2);
}

TEST(ExperimentTest, AuroraWorseThanCtrlOnBurstyInput) {
  ExperimentConfig ctrl = ShortConfig(Method::kCtrl, WorkloadKind::kPareto);
  ExperimentConfig aurora = ShortConfig(Method::kAurora, WorkloadKind::kPareto);
  ctrl.vary_cost = aurora.vary_cost = true;
  ctrl.duration = aurora.duration = 400.0;
  ExperimentResult rc = RunExperiment(ctrl);
  ExperimentResult ra = RunExperiment(aurora);
  EXPECT_GT(ra.summary.accumulated_violation,
            2.0 * rc.summary.accumulated_violation);
}

TEST(ExperimentTest, RampDestabilizesAurora) {
  // Section 4.3.2 Example 1: under a monotonically increasing rate the
  // Aurora shedder lags by one period forever (S(k) derived from
  // fin(k-1)), so the queue — and the delay — grows through the whole
  // ramp.
  ExperimentConfig cfg = ShortConfig(Method::kAurora, WorkloadKind::kRamp);
  cfg.ramp_from = 150.0;
  cfg.ramp_to = 900.0;
  cfg.spacing = ArrivalSource::Spacing::kDeterministic;
  ExperimentResult r = RunExperiment(cfg);
  const auto& rows = r.recorder.rows();
  const size_t n = rows.size();
  double mid = rows[n / 2].m.y_hat;
  double late = rows[n - 2].m.y_hat;
  EXPECT_GT(late, mid + 1.0);
}

TEST(ExperimentTest, CtrlHandlesTheSameRamp) {
  ExperimentConfig cfg = ShortConfig(Method::kCtrl, WorkloadKind::kRamp);
  cfg.ramp_from = 150.0;
  cfg.ramp_to = 900.0;
  cfg.spacing = ArrivalSource::Spacing::kDeterministic;
  ExperimentResult r = RunExperiment(cfg);
  EXPECT_LT(r.summary.max_overshoot, 1.0);
}

TEST(ExperimentTest, SetpointScheduleIsApplied) {
  ExperimentConfig cfg = ShortConfig(Method::kCtrl, WorkloadKind::kConstant);
  cfg.constant_rate = 300.0;
  cfg.target_delay = 1.0;
  cfg.setpoint_schedule = {{60.0, 3.0}};
  ExperimentResult r = RunExperiment(cfg);
  const auto& rows = r.recorder.rows();
  EXPECT_DOUBLE_EQ(rows[30].m.target_delay, 1.0);
  EXPECT_DOUBLE_EQ(rows[80].m.target_delay, 3.0);

  // Steady-state measured delays before and after.
  double before = 0, after = 0;
  int nb = 0, na = 0;
  for (const auto& row : rows) {
    if (!row.m.has_y_measured) continue;
    if (row.m.t > 30 && row.m.t < 60) {
      before += row.m.y_measured;
      ++nb;
    }
    if (row.m.t > 100) {
      after += row.m.y_measured;
      ++na;
    }
  }
  EXPECT_NEAR(before / nb, 1.0, 0.25);
  EXPECT_NEAR(after / na, 3.0, 0.4);
}

TEST(ExperimentTest, QueueShedderConfigRuns) {
  ExperimentConfig cfg = ShortConfig(Method::kCtrl, WorkloadKind::kPareto);
  cfg.use_queue_shedder = true;
  cfg.vary_cost = true;
  ExperimentResult r = RunExperiment(cfg);
  EXPECT_GT(r.summary.offered, 0u);
  EXPECT_GT(r.summary.loss_ratio, 0.0);
}

TEST(ExperimentTest, ArrivalTraceExposed) {
  ExperimentConfig cfg = ShortConfig(Method::kNone, WorkloadKind::kSine);
  ExperimentResult r = RunExperiment(cfg);
  EXPECT_FALSE(r.arrival_trace.empty());
  EXPECT_GE(r.arrival_trace.Duration(), cfg.duration - 1.0);
}

TEST(ExperimentTest, DepartureObserverInvoked) {
  ExperimentConfig cfg = ShortConfig(Method::kNone, WorkloadKind::kConstant);
  cfg.constant_rate = 50.0;
  uint64_t count = 0;
  cfg.departure_observer = [&count](const Departure&) { ++count; };
  ExperimentResult r = RunExperiment(cfg);
  EXPECT_GT(count, 0u);
  EXPECT_EQ(count, r.summary.departures);
}

TEST(ExperimentTest, EstimationNoiseChangesOutcome) {
  ExperimentConfig a = ShortConfig(Method::kCtrl, WorkloadKind::kPareto);
  ExperimentConfig b = a;
  b.estimation_noise = 0.2;
  EXPECT_NE(RunExperiment(a).summary.accumulated_violation,
            RunExperiment(b).summary.accumulated_violation);
}

TEST(ExperimentTest, MistunedHeadroomChangesAuroraLoss) {
  // Fig. 16: a smaller H estimate makes AURORA shed more.
  ExperimentConfig a = ShortConfig(Method::kAurora, WorkloadKind::kPareto);
  a.duration = 400.0;
  ExperimentConfig b = a;
  b.headroom_est = 0.90;
  double loss_a = RunExperiment(a).summary.loss_ratio;
  double loss_b = RunExperiment(b).summary.loss_ratio;
  EXPECT_GT(loss_b, loss_a);
}

}  // namespace
}  // namespace ctrlshed
