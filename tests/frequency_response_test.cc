#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sysid/frequency_response.h"

namespace ctrlshed {
namespace {

TEST(IntegratorGainTest, LowFrequencyAsymptote) {
  // For w T << 1, |T/(e^{jwT}-1)| ~ 1/w.
  const double f = 0.001;
  EXPECT_NEAR(IntegratorGain(f, 1.0), 1.0 / (2.0 * std::numbers::pi * f),
              0.5);
}

TEST(IntegratorGainTest, MonotoneDecreasing) {
  double prev = 1e18;
  for (double f : {0.01, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    const double g = IntegratorGain(f, 1.0);
    EXPECT_LT(g, prev);
    prev = g;
  }
}

class FrequencySweepFixture : public ::testing::Test {
 protected:
  static const std::vector<FrequencyPoint>& Points() {
    static const std::vector<FrequencyPoint>* points = [] {
      FrequencySweepParams params;
      params.freqs_hz = {0.01, 0.05, 0.2};
      return new std::vector<FrequencyPoint>(
          MeasureFrequencyResponse(params));
    }();
    return *points;
  }
};

TEST_F(FrequencySweepFixture, GainMatchesIntegratorModel) {
  for (const FrequencyPoint& p : Points()) {
    EXPECT_NEAR(p.gain, p.model_gain, 0.25 * p.model_gain)
        << "f = " << p.freq_hz;
  }
}

TEST_F(FrequencySweepFixture, RollOffIsFirstOrder) {
  // Gain ratio across a decade-ish span must track the frequency ratio
  // (-20 dB/decade).
  const auto& pts = Points();
  ASSERT_EQ(pts.size(), 3u);
  const double measured_ratio = pts.front().gain / pts.back().gain;
  const double freq_ratio = pts.back().freq_hz / pts.front().freq_hz;
  EXPECT_NEAR(measured_ratio, freq_ratio, 0.35 * freq_ratio);
}

TEST_F(FrequencySweepFixture, PhaseLagsLikeAnIntegrator) {
  // The discrete integrator's phase is -(pi/2 + w T / 2); sampling and the
  // zero-order-hold of slot-wise rates add up to about another half
  // sample of lag. The lag must sit in that band and deepen with f.
  double prev = 0.0;
  for (const FrequencyPoint& p : Points()) {
    const double wt = 2.0 * std::numbers::pi * p.freq_hz * 1.0;
    const double ideal = -(std::numbers::pi / 2.0 + wt / 2.0);
    EXPECT_LT(p.phase_rad, ideal + 0.35) << "f = " << p.freq_hz;
    EXPECT_GT(p.phase_rad, ideal - wt - 0.35) << "f = " << p.freq_hz;
    EXPECT_LT(p.phase_rad, prev + 1e-9);  // monotonically deeper lag
    prev = p.phase_rad;
  }
}

}  // namespace
}  // namespace ctrlshed
