#include "engine/lineage_table.h"

#include <gtest/gtest.h>

#include <vector>

#include "engine/tuple.h"

namespace ctrlshed {
namespace {

TEST(LineageTableTest, SingleInstanceLifecycle) {
  LineageTable table;
  const LineageId id = table.Allocate(/*derived=*/false);
  EXPECT_NE(id, kPendingLineage);
  EXPECT_EQ(table.live_lineages(), 1u);
  table.AddInstance(id);
  const LineageTable::Released r = table.Release(id, /*shed=*/false);
  EXPECT_TRUE(r.last);
  EXPECT_FALSE(r.tainted);
  EXPECT_FALSE(r.derived);
  EXPECT_EQ(table.live_lineages(), 0u);
}

TEST(LineageTableTest, LastReleaseReportsWhenAllInstancesGone) {
  LineageTable table;
  const LineageId id = table.Allocate(false);
  table.AddInstance(id);
  table.AddInstance(id);
  table.AddInstance(id);
  EXPECT_FALSE(table.Release(id, false).last);
  EXPECT_FALSE(table.Release(id, false).last);
  EXPECT_TRUE(table.Release(id, false).last);
}

TEST(LineageTableTest, ShedOnAnyInstanceTaintsTheLineage) {
  LineageTable table;
  const LineageId id = table.Allocate(false);
  table.AddInstance(id);
  table.AddInstance(id);
  // The FIRST copy is shed; the taint must survive to the final release
  // even though that release itself is not a shed.
  EXPECT_FALSE(table.Release(id, /*shed=*/true).last);
  const LineageTable::Released r = table.Release(id, /*shed=*/false);
  EXPECT_TRUE(r.last);
  EXPECT_TRUE(r.tainted);
}

TEST(LineageTableTest, DerivedFlagRoundTrips) {
  LineageTable table;
  const LineageId id = table.Allocate(/*derived=*/true);
  table.AddInstance(id);
  const LineageTable::Released r = table.Release(id, false);
  EXPECT_TRUE(r.last);
  EXPECT_TRUE(r.derived);
}

TEST(LineageTableTest, SlotsAreRecycledWithoutGrowingTheSlab) {
  LineageTable table;
  for (int i = 0; i < 10000; ++i) {
    const LineageId id = table.Allocate(false);
    table.AddInstance(id);
    table.Release(id, false);
  }
  // One allocate-release cycle at a time keeps the slab at one slot.
  EXPECT_EQ(table.capacity(), 1u);
  EXPECT_EQ(table.live_lineages(), 0u);
}

TEST(LineageTableTest, RecycledSlotClearsShedAndDerivedState) {
  LineageTable table;
  const LineageId a = table.Allocate(/*derived=*/true);
  table.AddInstance(a);
  table.Release(a, /*shed=*/true);
  // Same slot, fresh generation: no stale taint or derived flag.
  const LineageId b = table.Allocate(/*derived=*/false);
  EXPECT_NE(a, b);
  table.AddInstance(b);
  const LineageTable::Released r = table.Release(b, false);
  EXPECT_TRUE(r.last);
  EXPECT_FALSE(r.tainted);
  EXPECT_FALSE(r.derived);
}

TEST(LineageTableTest, InterleavedLineagesStayIndependent) {
  LineageTable table;
  std::vector<LineageId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(table.Allocate(i % 2 == 0));
    table.AddInstance(ids.back());
  }
  EXPECT_EQ(table.live_lineages(), 64u);
  // Release the even ones shed, odd ones clean.
  for (int i = 0; i < 64; ++i) {
    const LineageTable::Released r =
        table.Release(ids[static_cast<size_t>(i)], /*shed=*/i % 2 == 0);
    EXPECT_TRUE(r.last);
    EXPECT_EQ(r.tainted, i % 2 == 0);
    EXPECT_EQ(r.derived, i % 2 == 0);
  }
  EXPECT_EQ(table.live_lineages(), 0u);
  const size_t high_water = table.capacity();
  // Re-allocating reuses the freed slots.
  for (int i = 0; i < 64; ++i) table.Allocate(false);
  EXPECT_EQ(table.capacity(), high_water);
}

TEST(LineageTableDeathTest, StaleGenerationIsDetected) {
  LineageTable table;
  const LineageId stale = table.Allocate(false);
  table.AddInstance(stale);
  table.Release(stale, false);     // slot recycled, generation bumped
  table.Allocate(false);           // same slot, new generation
  EXPECT_DEATH(table.Release(stale, false), "unknown lineage");
}

TEST(LineageTableDeathTest, RefcountUnderflowIsDetected) {
  LineageTable table;
  const LineageId id = table.Allocate(false);
  // No AddInstance: releasing drives the refcount negative.
  EXPECT_DEATH(table.Release(id, false), "underflow");
}

}  // namespace
}  // namespace ctrlshed
