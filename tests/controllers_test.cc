#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "control/aurora_controller.h"
#include "control/baseline_controller.h"
#include "control/ctrl_controller.h"
#include "control/pole_placement.h"

namespace ctrlshed {
namespace {

PeriodMeasurement MakeMeasurement(double y_hat, double fout, double cost,
                                  double queue = 0.0, double fin = 0.0) {
  PeriodMeasurement m;
  m.k = 1;
  m.period = 1.0;
  m.target_delay = 2.0;
  m.fin = fin;
  m.fout = fout;
  m.queue = queue;
  m.cost = cost;
  m.y_hat = y_hat;
  return m;
}

TEST(CtrlControllerTest, ImplementsEq10DifferenceEquation) {
  CtrlOptions opts;
  opts.headroom = 0.97;
  opts.anti_windup = false;
  CtrlController ctrl(opts);
  const double c = 0.005, T = 1.0, H = 0.97;
  const ControllerGains& g = opts.gains;

  // Drive with a sequence of errors and compare against a direct
  // evaluation of u(k) = H/(cT) (b0 e(k) + b1 e(k-1)) - a u(k-1).
  std::vector<double> y_hats = {0.0, 0.5, 1.5, 2.5, 3.0, 2.0, 1.0};
  double e_prev = 0.0, u_prev = 0.0;
  for (size_t k = 0; k < y_hats.size(); ++k) {
    PeriodMeasurement m = MakeMeasurement(y_hats[k], /*fout=*/100.0, c);
    m.period = T;
    const double v = ctrl.DesiredRate(m);
    const double e = m.target_delay - y_hats[k];
    const double u_want =
        H / (c * T) * (g.b0 * e + g.b1 * e_prev) - g.a * u_prev;
    EXPECT_NEAR(v, u_want + 100.0, 1e-9) << "period " << k;
    e_prev = e;
    u_prev = u_want;
  }
}

TEST(CtrlControllerTest, SheddingWhenOverTarget) {
  CtrlController ctrl(CtrlOptions{});
  // First call: e = 2 - 10 = -8, u strongly negative.
  PeriodMeasurement m = MakeMeasurement(/*y_hat=*/10.0, /*fout=*/190.0, 0.005);
  const double v = ctrl.DesiredRate(m);
  EXPECT_LT(v, 190.0);  // admit less than the drain rate => queue shrinks
}

TEST(CtrlControllerTest, AdmitsMoreWhenUnderTarget) {
  CtrlController ctrl(CtrlOptions{});
  PeriodMeasurement m = MakeMeasurement(/*y_hat=*/0.1, /*fout=*/190.0, 0.005);
  const double v = ctrl.DesiredRate(m);
  EXPECT_GT(v, 190.0);
}

TEST(CtrlControllerTest, ClosedLoopConvergesOnModelPlant) {
  // Simulate the virtual-queue plant q(k) = q(k-1) + T (v - fout) against
  // the controller; y must converge to yd with the designed dynamics.
  CtrlOptions opts;
  opts.anti_windup = false;
  CtrlController ctrl(opts);
  const double c = 0.005, H = 0.97, T = 1.0;
  const double service = H / c;
  double q = 3000.0;  // start far above target
  double y_last = 0.0;
  for (int k = 0; k < 60; ++k) {
    PeriodMeasurement m = MakeMeasurement((q + 1) * c / H, service, c, q);
    double v = ctrl.DesiredRate(m);
    q = std::max(0.0, q + T * (v - service));
    y_last = (q + 1) * c / H;
  }
  EXPECT_NEAR(y_last, 2.0, 0.05);
}

TEST(CtrlControllerTest, ConvergenceRateMatchesDesign) {
  // Poles at 0.7 => error decays ~0.7^k once transients pass; after 12
  // periods the paper expects ~98% convergence.
  CtrlOptions opts;
  opts.anti_windup = false;
  CtrlController ctrl(opts);
  const double c = 0.005, H = 0.97, T = 1.0;
  const double service = H / c;
  double q = 1000.0;
  double y12 = 0.0;
  for (int k = 0; k < 12; ++k) {
    PeriodMeasurement m = MakeMeasurement((q + 1) * c / H, service, c, q);
    q = std::max(0.0, q + T * (ctrl.DesiredRate(m) - service));
    y12 = (q + 1) * c / H;
  }
  const double initial_error = 1000.0 * c / H - 2.0;  // ~3.15 s
  EXPECT_LT(std::abs(y12 - 2.0), 0.05 * initial_error);
}

TEST(CtrlControllerTest, AntiWindupReopensPromptlyAfterSaturation) {
  // Saturate hard (entry shedder cannot realize a negative rate) for many
  // periods, then let the error clear. With anti-windup the state tracks
  // the realized actuation and the controller re-admits immediately;
  // without it, the wound-down recursion keeps the gate closed although
  // the delay is already back at its target.
  auto run = [](bool aw) {
    CtrlOptions opts;
    opts.anti_windup = aw;
    CtrlController ctrl(opts);
    for (int k = 0; k < 20; ++k) {
      PeriodMeasurement m = MakeMeasurement(/*y_hat=*/8.0, /*fout=*/50.0, 0.005);
      double v = ctrl.DesiredRate(m);
      ctrl.NotifyActuation(std::max(0.0, v));  // actuator floor at 0
    }
    PeriodMeasurement m = MakeMeasurement(/*y_hat=*/1.9, /*fout=*/190.0, 0.005);
    return ctrl.DesiredRate(m);
  };
  EXPECT_GT(run(true), 190.0);      // admits at least the drain rate again
  EXPECT_LT(run(false), run(true));  // the wound-up state lags behind
}

TEST(CtrlControllerTest, ResetClearsState) {
  CtrlController ctrl(CtrlOptions{});
  PeriodMeasurement m = MakeMeasurement(5.0, 100.0, 0.005);
  double v1 = ctrl.DesiredRate(m);
  ctrl.Reset();
  double v2 = ctrl.DesiredRate(m);
  EXPECT_DOUBLE_EQ(v1, v2);
}

TEST(CtrlControllerDeathTest, NonPositiveCostAborts) {
  CtrlController ctrl(CtrlOptions{});
  PeriodMeasurement m = MakeMeasurement(1.0, 100.0, 0.0);
  EXPECT_DEATH(ctrl.DesiredRate(m), "cost");
}

TEST(BaselineControllerTest, ImplementsModelInversion) {
  BaselineController ctrl(0.97);
  // v = (yd H/c - q)/T + H/c.
  PeriodMeasurement m = MakeMeasurement(0.0, 0.0, 0.005, /*queue=*/100.0);
  const double want = (2.0 * 0.97 / 0.005 - 100.0) / 1.0 + 0.97 / 0.005;
  EXPECT_NEAR(ctrl.DesiredRate(m), want, 1e-9);
}

TEST(BaselineControllerTest, NegativeWhenQueueFarAboveTarget) {
  BaselineController ctrl(0.97);
  PeriodMeasurement m = MakeMeasurement(0.0, 0.0, 0.005, /*queue=*/5000.0);
  EXPECT_LT(ctrl.DesiredRate(m), 0.0);
}

TEST(BaselineControllerTest, DeadbeatOnModelPlant) {
  // With exact measurements the baseline reaches the target queue in one
  // period (that is its defining property).
  BaselineController ctrl(0.97);
  const double c = 0.005, H = 0.97, T = 1.0;
  const double service = H / c;
  double q = 1000.0;
  PeriodMeasurement m = MakeMeasurement(0.0, service, c, q);
  double v = ctrl.DesiredRate(m);
  q = q + T * (v - service);
  EXPECT_NEAR(q, 2.0 * H / c, 1e-6);
}

TEST(AuroraControllerTest, ShedsToCapacityWhenOverloaded) {
  AuroraController ctrl(0.97);
  PeriodMeasurement m = MakeMeasurement(0.0, 0.0, 0.005, 0.0, /*fin=*/400.0);
  EXPECT_NEAR(ctrl.DesiredRate(m), 0.97 / 0.005, 1e-9);
}

TEST(AuroraControllerTest, AdmitsEverythingWhenUnderloaded) {
  AuroraController ctrl(0.97);
  PeriodMeasurement m = MakeMeasurement(0.0, 0.0, 0.005, 0.0, /*fin=*/100.0);
  // v = fin => the entry shedder computes alpha = 0.
  EXPECT_NEAR(ctrl.DesiredRate(m), 100.0, 1e-9);
}

TEST(AuroraControllerTest, IgnoresQueueAndDelay) {
  // Open-loop: the decision must not depend on q or y_hat.
  AuroraController ctrl(0.97);
  PeriodMeasurement a = MakeMeasurement(0.0, 0.0, 0.005, 0.0, 400.0);
  PeriodMeasurement b = MakeMeasurement(50.0, 120.0, 0.005, 9999.0, 400.0);
  EXPECT_DOUBLE_EQ(ctrl.DesiredRate(a), ctrl.DesiredRate(b));
}

TEST(AuroraControllerTest, AdaptsCapacityToMeasuredCost) {
  AuroraController ctrl(0.97);
  PeriodMeasurement cheap = MakeMeasurement(0.0, 0.0, 0.005, 0.0, 1000.0);
  PeriodMeasurement pricey = MakeMeasurement(0.0, 0.0, 0.020, 0.0, 1000.0);
  EXPECT_NEAR(ctrl.DesiredRate(cheap) / ctrl.DesiredRate(pricey), 4.0, 1e-9);
}

TEST(ControllerNamesTest, Names) {
  EXPECT_EQ(CtrlController(CtrlOptions{}).name(), "CTRL");
  EXPECT_EQ(BaselineController(0.97).name(), "BASELINE");
  EXPECT_EQ(AuroraController(0.97).name(), "AURORA");
}

}  // namespace
}  // namespace ctrlshed
