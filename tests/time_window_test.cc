#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "engine/engine.h"
#include "engine/operator.h"
#include "engine/query_network.h"
#include "metrics/per_source_stats.h"

namespace ctrlshed {
namespace {

std::vector<Tuple> Collect(OperatorBase& op, const Tuple& in, SimTime now) {
  std::vector<Tuple> out;
  op.Process(in, now, [&](const Tuple& t) { out.push_back(t); });
  return out;
}

Tuple At(double arrival, double value) {
  Tuple t;
  t.lineage = 7;
  t.arrival_time = arrival;
  t.value = value;
  return t;
}

TEST(TimeWindowAggregateTest, EmitsWhenWindowRollsOver) {
  TimeWindowAggregateOp agg("a", 0.001, /*window=*/1.0, 0.1,
                            WindowAggregateOp::Kind::kSum);
  EXPECT_TRUE(Collect(agg, At(0.2, 1.0), 0.2).empty());
  EXPECT_TRUE(Collect(agg, At(0.7, 2.0), 0.7).empty());
  // First tuple of window [1,2) closes window [0,1).
  auto out = Collect(agg, At(1.1, 5.0), 1.1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 3.0);
  EXPECT_EQ(out[0].lineage, kPendingLineage);
}

TEST(TimeWindowAggregateTest, SkipsEmptyWindowsWithoutEmitting) {
  TimeWindowAggregateOp agg("a", 0.001, 1.0, 0.1,
                            WindowAggregateOp::Kind::kCount);
  Collect(agg, At(0.5, 1.0), 0.5);
  // Jump straight to window 5: exactly one aggregate (for window 0).
  auto out = Collect(agg, At(5.2, 1.0), 5.2);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 1.0);  // count of window 0
}

TEST(TimeWindowAggregateTest, MeanAndMax) {
  TimeWindowAggregateOp mean("m", 0.001, 1.0, 0.1,
                             WindowAggregateOp::Kind::kMean);
  TimeWindowAggregateOp mx("x", 0.001, 1.0, 0.1,
                           WindowAggregateOp::Kind::kMax);
  for (double v : {1.0, 2.0, 6.0}) {
    Collect(mean, At(0.1, v), 0.1);
    Collect(mx, At(0.1, v), 0.1);
  }
  EXPECT_DOUBLE_EQ(Collect(mean, At(1.5, 0.0), 1.5)[0].value, 3.0);
  EXPECT_DOUBLE_EQ(Collect(mx, At(1.5, 0.0), 1.5)[0].value, 6.0);
}

TEST(TimeWindowAggregateTest, SelectivityAccessor) {
  TimeWindowAggregateOp agg("a", 0.001, 2.5, 0.05);
  EXPECT_DOUBLE_EQ(agg.Selectivity(), 0.05);
  EXPECT_DOUBLE_EQ(agg.window_seconds(), 2.5);
}

TEST(SplitOpTest, EngineDuplicatesToAllDownstreams) {
  QueryNetwork net;
  auto* split = net.Add(std::make_unique<SplitOp>("split", 0.001));
  auto* a = net.Add(std::make_unique<MapOp>("a", 0.001));
  auto* b = net.Add(std::make_unique<MapOp>("b", 0.001));
  auto* c = net.Add(std::make_unique<MapOp>("c", 0.001));
  split->ConnectTo(a);
  split->ConnectTo(b);
  split->ConnectTo(c);
  net.AddEntry(0, split);
  net.Finalize();
  // Expected remaining cost of the split = own + all three branches.
  EXPECT_DOUBLE_EQ(net.RemainingCost(split), 0.004);

  Engine engine(&net, 1.0);
  int departures = 0;
  engine.SetDepartureCallback([&](const Departure&) { ++departures; });
  Tuple t;
  t.value = 0.5;
  engine.Inject(t, 0.0);
  engine.AdvanceTo(1.0);
  EXPECT_EQ(departures, 1);  // one lineage, last branch reports
  EXPECT_EQ(engine.counters().invocations, 4u);
}

TEST(PerSourceStatsTest, TracksPerStreamCounters) {
  PerSourceStats stats(2);
  Tuple t0;
  t0.source = 0;
  Tuple t1;
  t1.source = 1;
  stats.OnOffered(t0);
  stats.OnOffered(t0);
  stats.OnOffered(t1);
  stats.OnAdmitted(t0);
  Departure d;
  d.source = 0;
  d.arrival_time = 1.0;
  d.depart_time = 3.0;
  stats.OnDeparture(d);

  EXPECT_EQ(stats.offered(0), 2u);
  EXPECT_EQ(stats.offered(1), 1u);
  EXPECT_DOUBLE_EQ(stats.LossRatio(0), 0.5);
  EXPECT_DOUBLE_EQ(stats.LossRatio(1), 1.0);
  EXPECT_DOUBLE_EQ(stats.MeanDelay(0), 2.0);
  EXPECT_DOUBLE_EQ(stats.MeanDelay(1), 0.0);
}

TEST(PerSourceStatsTest, IdleSourceHasZeroLoss) {
  PerSourceStats stats(1);
  EXPECT_DOUBLE_EQ(stats.LossRatio(0), 0.0);
}

TEST(PerSourceStatsDeathTest, UnknownSourceAborts) {
  PerSourceStats stats(1);
  Tuple t;
  t.source = 4;
  EXPECT_DEATH(stats.OnOffered(t), "unknown source");
}

TEST(CostAwareSheddingTest, MostCostlyPolicyPrefersExpensiveQueues) {
  QueryNetwork net;
  auto* cheap_tail = net.Add(std::make_unique<MapOp>("cheap", 0.001));
  auto* expensive_head = net.Add(std::make_unique<MapOp>("exp1", 0.004));
  auto* expensive_tail = net.Add(std::make_unique<MapOp>("exp2", 0.004));
  expensive_head->ConnectTo(expensive_tail);
  net.AddEntry(0, cheap_tail);
  net.AddEntry(1, expensive_head);
  net.Finalize();
  Engine engine(&net, 1.0);

  // Queue 5 tuples at each entry.
  for (int i = 0; i < 5; ++i) {
    Tuple t;
    t.source = 0;
    engine.Inject(t, 0.0);
    t.source = 1;
    engine.Inject(t, 0.0);
  }
  Rng rng(1);
  // Remove ~0.016 s of load cost-aware: two expensive tuples (0.008 each)
  // suffice; the cheap queue must be untouched.
  engine.ShedFromQueues(0.016, rng, Engine::QueueVictimPolicy::kMostCostly);
  EXPECT_EQ(cheap_tail->queue().size(), 5u);
  EXPECT_EQ(expensive_head->queue().size(), 3u);
}

}  // namespace
}  // namespace ctrlshed
