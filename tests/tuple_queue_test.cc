#include "engine/tuple_queue.h"

#include <gtest/gtest.h>

#include <deque>

#include "common/rng.h"
#include "engine/tuple.h"

namespace ctrlshed {
namespace {

Tuple MakeTuple(uint64_t seq) {
  Tuple t;
  t.lineage = seq;
  t.arrival_time = static_cast<double>(seq) * 1e-3;
  t.value = static_cast<double>(seq) * 0.5;
  return t;
}

TEST(TupleQueueTest, FifoOrderAcrossChunkBoundaries) {
  TupleQueue q;
  // Three chunks' worth plus a remainder, so the front chunk is released
  // and re-walked several times.
  const uint64_t kN = 3 * TupleChunk::kTuples + 17;
  for (uint64_t i = 0; i < kN; ++i) q.push_back(MakeTuple(i));
  EXPECT_EQ(q.size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.front().lineage, i);
    EXPECT_EQ(q.back().lineage, kN - 1);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(TupleQueueTest, PopBackRemovesNewestFirst) {
  TupleQueue q;
  const uint64_t kN = TupleChunk::kTuples + 5;  // back chunk nearly empty
  for (uint64_t i = 0; i < kN; ++i) q.push_back(MakeTuple(i));
  for (uint64_t i = kN; i-- > 0;) {
    EXPECT_EQ(q.back().lineage, i);
    q.pop_back();
  }
  EXPECT_TRUE(q.empty());
  // The queue must still work after draining from the back.
  q.push_back(MakeTuple(42));
  EXPECT_EQ(q.front().lineage, 42u);
}

TEST(TupleQueueTest, ExactChunkBoundaryPopBack) {
  // pop_back exactly at a chunk boundary must release the emptied back
  // chunk and re-expose the previous chunk's last slot.
  TupleQueue q;
  for (uint64_t i = 0; i < TupleChunk::kTuples + 1; ++i) q.push_back(MakeTuple(i));
  q.pop_back();  // back chunk now empty
  EXPECT_EQ(q.back().lineage, TupleChunk::kTuples - 1);
  q.push_back(MakeTuple(999));
  EXPECT_EQ(q.back().lineage, 999u);
  EXPECT_EQ(q.size(), TupleChunk::kTuples + 1);
}

TEST(TupleQueueTest, RandomizedDifferentialAgainstDeque) {
  TupleQueue q;
  std::deque<uint64_t> ref;
  Rng rng(91);
  uint64_t seq = 0;
  for (int step = 0; step < 200000; ++step) {
    const double r = rng.Uniform();
    if (r < 0.5 || ref.empty()) {
      q.push_back(MakeTuple(seq));
      ref.push_back(seq);
      ++seq;
    } else if (r < 0.8) {
      ASSERT_EQ(q.front().lineage, ref.front());
      q.pop_front();
      ref.pop_front();
    } else {
      ASSERT_EQ(q.back().lineage, ref.back());
      q.pop_back();
      ref.pop_back();
    }
    ASSERT_EQ(q.size(), ref.size());
    if (!ref.empty()) {
      ASSERT_EQ(q.front().lineage, ref.front());
      ASSERT_EQ(q.back().lineage, ref.back());
    }
  }
}

TEST(TupleQueueTest, PooledSteadyStateRecyclesChunks) {
  TupleChunkPool pool;
  TupleQueue q;
  q.BindPool(&pool);
  const uint64_t kDepth = 8 * TupleChunk::kTuples;  // high-water mark
  uint64_t allocated_after_first_round = 0;
  for (int round = 0; round < 50; ++round) {
    for (uint64_t i = 0; i < kDepth; ++i) q.push_back(MakeTuple(i));
    for (uint64_t i = 0; i < kDepth; ++i) q.pop_front();
    ASSERT_TRUE(q.empty());
    if (round == 0) {
      allocated_after_first_round = pool.allocated();
      ASSERT_GT(allocated_after_first_round, 0u);
    } else {
      // Past the high-water mark every chunk comes from the free list.
      ASSERT_EQ(pool.allocated(), allocated_after_first_round)
          << "round " << round << " heap-allocated a chunk in steady state";
    }
  }
  q.clear();
  // Everything the pool ever handed out is back on its free list.
  EXPECT_EQ(pool.free_count(), pool.allocated());
}

TEST(TupleQueueTest, ClearReturnsChunksToPool) {
  TupleChunkPool pool;
  TupleQueue q;
  q.BindPool(&pool);
  for (uint64_t i = 0; i < 3 * TupleChunk::kTuples; ++i) q.push_back(MakeTuple(i));
  const uint64_t allocated = pool.allocated();
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(pool.free_count(), allocated);
  // A rebuilt queue reuses the same chunks.
  for (uint64_t i = 0; i < 3 * TupleChunk::kTuples; ++i) q.push_back(MakeTuple(i));
  EXPECT_EQ(pool.allocated(), allocated);
}

TEST(TupleQueueTest, TwoQueuesShareOnePool) {
  TupleChunkPool pool;
  TupleQueue a, b;
  a.BindPool(&pool);
  b.BindPool(&pool);
  for (uint64_t i = 0; i < TupleChunk::kTuples; ++i) a.push_back(MakeTuple(i));
  const uint64_t after_a = pool.allocated();
  a.clear();
  // b picks up the chunks a released instead of allocating fresh ones.
  for (uint64_t i = 0; i < TupleChunk::kTuples; ++i) b.push_back(MakeTuple(i));
  EXPECT_EQ(pool.allocated(), after_a);
  b.clear();
}

TEST(TupleQueueTest, FrontRunExposesContiguousPrefixLanes) {
  TupleQueue q;
  const uint64_t kN = TupleChunk::kTuples + 40;
  for (uint64_t i = 0; i < kN; ++i) q.push_back(MakeTuple(i));

  // First run: the whole front chunk.
  TupleLaneView run = q.FrontRun();
  ASSERT_EQ(run.len, TupleChunk::kTuples);
  for (size_t i = 0; i < run.len; ++i) {
    EXPECT_EQ(run.lineage[i], i);
    EXPECT_DOUBLE_EQ(run.value[i], static_cast<double>(i) * 0.5);
    EXPECT_DOUBLE_EQ(run.arrival_time[i], static_cast<double>(i) * 1e-3);
  }

  // A partially consumed chunk yields the remaining suffix only.
  q.PopFrontN(100);
  run = q.FrontRun();
  ASSERT_EQ(run.len, TupleChunk::kTuples - 100);
  EXPECT_EQ(run.lineage[0], 100u);

  // Crossing into the second chunk exposes its prefix.
  q.PopFrontN(run.len);
  run = q.FrontRun();
  ASSERT_EQ(run.len, 40u);
  EXPECT_EQ(run.lineage[0], TupleChunk::kTuples);
}

TEST(TupleQueueTest, PopFrontNMatchesRepeatedPopFront) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    TupleQueue a, b;
    const uint64_t kN = 1 + static_cast<uint64_t>(rng.Uniform() * 400.0);
    for (uint64_t i = 0; i < kN; ++i) {
      a.push_back(MakeTuple(i));
      b.push_back(MakeTuple(i));
    }
    uint64_t left = kN;
    while (left > 0) {
      const size_t n = 1 + static_cast<size_t>(rng.Uniform() * 200.0) % left;
      a.PopFrontN(n);
      for (size_t i = 0; i < n; ++i) b.pop_front();
      left -= n;
      ASSERT_EQ(a.size(), b.size());
      if (left > 0) {
        ASSERT_EQ(a.front().lineage, b.front().lineage);
        ASSERT_EQ(a.back().lineage, b.back().lineage);
      }
    }
    ASSERT_TRUE(a.empty());
    // Post-drain reuse must behave like a fresh queue (slot rewind).
    a.push_back(MakeTuple(77));
    ASSERT_EQ(a.FrontRun().len, 1u);
    ASSERT_EQ(a.FrontRun().lineage[0], 77u);
  }
}

TEST(TupleQueueTest, BackFillCommitEquivalentToPushBack) {
  TupleQueue q, ref;
  uint64_t seq = 0;
  // Interleave lane-wise bulk appends with scalar pushes across several
  // chunk boundaries; the queue must be indistinguishable from push_back.
  Rng rng(13);
  for (int step = 0; step < 60; ++step) {
    if (rng.Uniform() < 0.5) {
      TupleLaneFill fill = q.BackFill();
      ASSERT_GT(fill.capacity, 0u);
      const size_t n =
          1 + static_cast<size_t>(rng.Uniform() * 300.0) % fill.capacity;
      for (size_t i = 0; i < n; ++i) {
        const Tuple t = MakeTuple(seq);
        fill.value[i] = t.value;
        fill.aux[i] = t.aux;
        fill.arrival_time[i] = t.arrival_time;
        fill.lineage[i] = t.lineage;
        fill.source[i] = t.source;
        fill.port[i] = t.port;
        ref.push_back(t);
        ++seq;
      }
      q.CommitBack(n);
    } else {
      q.push_back(MakeTuple(seq));
      ref.push_back(MakeTuple(seq));
      ++seq;
    }
  }
  ASSERT_EQ(q.size(), ref.size());
  while (!ref.empty()) {
    ASSERT_EQ(q.front().lineage, ref.front().lineage);
    ASSERT_DOUBLE_EQ(q.front().value, ref.front().value);
    q.pop_front();
    ref.pop_front();
  }
}

TEST(TupleQueueDeathTest, BindPoolOnNonEmptyQueueAborts) {
  TupleChunkPool pool;
  TupleQueue q;
  q.push_back(MakeTuple(1));
  EXPECT_DEATH(q.BindPool(&pool), "empty");
}

TEST(TupleQueueDeathTest, PopFromEmptyAborts) {
  TupleQueue q;
  EXPECT_DEATH(q.pop_front(), "");
  EXPECT_DEATH(q.pop_back(), "");
}

}  // namespace
}  // namespace ctrlshed
