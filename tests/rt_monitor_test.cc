// RtMonitor period bookkeeping, driven entirely by a fake clock: the
// monitor consumes RtSample snapshots, so a test can fabricate the exact
// counter trajectories a real run would produce and check the per-period
// math (rates over actual elapsed time, Eq. 11 delay estimate, cost
// estimation, measured-delay deltas) without any threads.

#include "rt/rt_monitor.h"

#include <gtest/gtest.h>

namespace ctrlshed {
namespace {

constexpr double kNominalCost = 0.005;  // 5 ms per entry tuple

RtMonitorOptions Opts() {
  RtMonitorOptions o;
  o.period = 1.0;
  o.headroom = 1.0;
  return o;
}

TEST(RtMonitorTest, FirstSampleRatesAndQueue) {
  RtMonitor mon(kNominalCost, Opts());

  RtSample s;
  s.now = 1.0;
  s.offered = 100;
  s.admitted = 80;
  s.drained_base_load = 60 * kNominalCost;  // 60 entry equivalents drained
  s.busy_seconds = 60 * kNominalCost;
  s.queued_tuples = 20;
  s.outstanding_base_load = 20 * kNominalCost;

  PeriodMeasurement m = mon.Sample(s, 2.0);
  EXPECT_EQ(m.k, 1);
  EXPECT_DOUBLE_EQ(m.t, 1.0);
  EXPECT_DOUBLE_EQ(m.fin, 100.0);
  EXPECT_DOUBLE_EQ(m.admitted, 80.0);
  EXPECT_DOUBLE_EQ(m.fout, 60.0);
  EXPECT_DOUBLE_EQ(m.queue, 20.0);
  // Measured cost == nominal here, so y_hat = (q+1) c / H = 21 * 0.005.
  EXPECT_NEAR(m.y_hat, 21.0 * kNominalCost, 1e-12);
  EXPECT_FALSE(m.has_y_measured);
  EXPECT_DOUBLE_EQ(m.target_delay, 2.0);
}

TEST(RtMonitorTest, DeltasUseActualElapsedTime) {
  RtMonitor mon(kNominalCost, Opts());

  RtSample s1;
  s1.now = 1.0;
  s1.offered = 100;
  mon.Sample(s1, 2.0);

  // The controller thread overslept: this "1-second" period actually
  // spans 2 s of trace time. Rates must divide by the real elapsed time.
  RtSample s2 = s1;
  s2.now = 3.0;
  s2.offered = 400;              // +300 over 2 s -> 150/s
  s2.admitted = 200;             // +200 over 2 s -> 100/s
  s2.drained_base_load = 100 * kNominalCost;
  s2.busy_seconds = 100 * kNominalCost;

  PeriodMeasurement m = mon.Sample(s2, 2.0);
  EXPECT_EQ(m.k, 2);
  EXPECT_DOUBLE_EQ(m.fin, 150.0);
  EXPECT_DOUBLE_EQ(m.admitted, 100.0);
  EXPECT_DOUBLE_EQ(m.fout, 50.0);
  // The controller still sees the nominal design period.
  EXPECT_DOUBLE_EQ(m.period, 1.0);
}

TEST(RtMonitorTest, MeasuredCostTracksBusyOverDrained) {
  RtMonitor mon(kNominalCost, Opts());

  RtSample s;
  s.now = 1.0;
  s.offered = 100;
  s.admitted = 100;
  // 100 entry equivalents drained but the CPU spent twice the nominal
  // work on them -> measured cost = 2 * nominal.
  s.drained_base_load = 100 * kNominalCost;
  s.busy_seconds = 2 * 100 * kNominalCost;
  s.queued_tuples = 10;
  s.outstanding_base_load = 10 * kNominalCost;

  PeriodMeasurement m = mon.Sample(s, 2.0);
  EXPECT_NEAR(m.cost, 2 * kNominalCost, 1e-12);
  EXPECT_NEAR(m.y_hat, 11.0 * 2 * kNominalCost, 1e-12);
  EXPECT_NEAR(mon.CostEstimate(), 2 * kNominalCost, 1e-12);
}

TEST(RtMonitorTest, CostEstimateKeepsLastValueWhenNothingDrained) {
  RtMonitor mon(kNominalCost, Opts());

  RtSample s1;
  s1.now = 1.0;
  s1.drained_base_load = 50 * kNominalCost;
  s1.busy_seconds = 1.5 * 50 * kNominalCost;
  PeriodMeasurement m1 = mon.Sample(s1, 2.0);
  EXPECT_NEAR(m1.cost, 1.5 * kNominalCost, 1e-12);

  // An idle period (nothing drained) must not corrupt the estimate.
  RtSample s2 = s1;
  s2.now = 2.0;
  PeriodMeasurement m2 = mon.Sample(s2, 2.0);
  EXPECT_NEAR(m2.cost, 1.5 * kNominalCost, 1e-12);
  EXPECT_DOUBLE_EQ(m2.fout, 0.0);
}

TEST(RtMonitorTest, MeasuredDelayIsPerPeriodDelta) {
  RtMonitor mon(kNominalCost, Opts());

  RtSample s1;
  s1.now = 1.0;
  s1.delay_sum = 10.0;
  s1.delay_count = 5;
  PeriodMeasurement m1 = mon.Sample(s1, 2.0);
  ASSERT_TRUE(m1.has_y_measured);
  EXPECT_DOUBLE_EQ(m1.y_measured, 2.0);

  // No departures this period: the stale cumulative sums must not be
  // re-reported.
  RtSample s2 = s1;
  s2.now = 2.0;
  PeriodMeasurement m2 = mon.Sample(s2, 2.0);
  EXPECT_FALSE(m2.has_y_measured);

  RtSample s3 = s2;
  s3.now = 3.0;
  s3.delay_sum = 16.0;  // +6 over +2 departures -> mean 3
  s3.delay_count = 7;
  PeriodMeasurement m3 = mon.Sample(s3, 2.0);
  ASSERT_TRUE(m3.has_y_measured);
  EXPECT_DOUBLE_EQ(m3.y_measured, 3.0);
}

TEST(RtMonitorTest, EmptyQueueClampsResidue) {
  RtMonitor mon(kNominalCost, Opts());
  RtSample s;
  s.now = 1.0;
  s.queued_tuples = 0;
  s.outstanding_base_load = 1e-16;  // incremental bookkeeping residue
  PeriodMeasurement m = mon.Sample(s, 2.0);
  EXPECT_DOUBLE_EQ(m.queue, 0.0);
}

TEST(RtMonitorTest, AdaptiveHeadroomConvergesUnderSaturation) {
  RtMonitorOptions o = Opts();
  o.headroom = 0.90;  // wrong belief; the "engine" actually gets 0.6
  o.adapt_headroom = true;
  o.headroom_ewma = 0.5;
  RtMonitor mon(kNominalCost, o);

  RtSample s;
  double busy = 0.0;
  for (int k = 1; k <= 20; ++k) {
    s.now = static_cast<double>(k);
    busy += 0.6;  // saturated CPU doing 0.6 s of work per second
    s.busy_seconds = busy;
    s.drained_base_load = busy;
    s.queued_tuples = 100;  // persistently backlogged
    s.outstanding_base_load = 100 * kNominalCost;
    mon.Sample(s, 2.0);
  }
  EXPECT_NEAR(mon.HeadroomEstimate(), 0.6, 0.01);
}

TEST(RtMonitorDeathTest, RejectsNonMonotonicTime) {
  RtMonitor mon(kNominalCost, Opts());
  RtSample s;
  s.now = 2.0;
  mon.Sample(s, 2.0);
  s.now = 1.5;
  EXPECT_DEATH(mon.Sample(s, 2.0), "forward");
}

}  // namespace
}  // namespace ctrlshed
