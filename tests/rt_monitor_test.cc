// RtMonitor period bookkeeping, driven entirely by a fake clock: the
// monitor consumes RtSample snapshots, so a test can fabricate the exact
// counter trajectories a real run would produce and check the per-period
// math (rates over actual elapsed time, Eq. 11 delay estimate, cost
// estimation, measured-delay deltas) without any threads.

#include "rt/rt_monitor.h"

#include <gtest/gtest.h>

#include <vector>

namespace ctrlshed {
namespace {

constexpr double kNominalCost = 0.005;  // 5 ms per entry tuple

RtMonitorOptions Opts() {
  RtMonitorOptions o;
  o.period = 1.0;
  o.headroom = 1.0;
  return o;
}

TEST(RtMonitorTest, FirstSampleRatesAndQueue) {
  RtMonitor mon(kNominalCost, Opts());

  RtSample s;
  s.now = 1.0;
  s.offered = 100;
  s.admitted = 80;
  s.drained_base_load = 60 * kNominalCost;  // 60 entry equivalents drained
  s.busy_seconds = 60 * kNominalCost;
  s.queued_tuples = 20;
  s.outstanding_base_load = 20 * kNominalCost;

  PeriodMeasurement m = mon.Sample(s, 2.0);
  EXPECT_EQ(m.k, 1);
  EXPECT_DOUBLE_EQ(m.t, 1.0);
  EXPECT_DOUBLE_EQ(m.fin, 100.0);
  EXPECT_DOUBLE_EQ(m.admitted, 80.0);
  EXPECT_DOUBLE_EQ(m.fout, 60.0);
  EXPECT_DOUBLE_EQ(m.queue, 20.0);
  // Measured cost == nominal here, so y_hat = (q+1) c / H = 21 * 0.005.
  EXPECT_NEAR(m.y_hat, 21.0 * kNominalCost, 1e-12);
  EXPECT_FALSE(m.has_y_measured);
  EXPECT_DOUBLE_EQ(m.target_delay, 2.0);
}

TEST(RtMonitorTest, DeltasUseActualElapsedTime) {
  RtMonitor mon(kNominalCost, Opts());

  RtSample s1;
  s1.now = 1.0;
  s1.offered = 100;
  mon.Sample(s1, 2.0);

  // The controller thread overslept: this "1-second" period actually
  // spans 2 s of trace time. Rates must divide by the real elapsed time.
  RtSample s2 = s1;
  s2.now = 3.0;
  s2.offered = 400;              // +300 over 2 s -> 150/s
  s2.admitted = 200;             // +200 over 2 s -> 100/s
  s2.drained_base_load = 100 * kNominalCost;
  s2.busy_seconds = 100 * kNominalCost;

  PeriodMeasurement m = mon.Sample(s2, 2.0);
  EXPECT_EQ(m.k, 2);
  EXPECT_DOUBLE_EQ(m.fin, 150.0);
  EXPECT_DOUBLE_EQ(m.admitted, 100.0);
  EXPECT_DOUBLE_EQ(m.fout, 50.0);
  // The controller still sees the nominal design period.
  EXPECT_DOUBLE_EQ(m.period, 1.0);
}

TEST(RtMonitorTest, MeasuredCostTracksBusyOverDrained) {
  RtMonitor mon(kNominalCost, Opts());

  RtSample s;
  s.now = 1.0;
  s.offered = 100;
  s.admitted = 100;
  // 100 entry equivalents drained but the CPU spent twice the nominal
  // work on them -> measured cost = 2 * nominal.
  s.drained_base_load = 100 * kNominalCost;
  s.busy_seconds = 2 * 100 * kNominalCost;
  s.queued_tuples = 10;
  s.outstanding_base_load = 10 * kNominalCost;

  PeriodMeasurement m = mon.Sample(s, 2.0);
  EXPECT_NEAR(m.cost, 2 * kNominalCost, 1e-12);
  EXPECT_NEAR(m.y_hat, 11.0 * 2 * kNominalCost, 1e-12);
  EXPECT_NEAR(mon.CostEstimate(), 2 * kNominalCost, 1e-12);
}

TEST(RtMonitorTest, CostEstimateKeepsLastValueWhenNothingDrained) {
  RtMonitor mon(kNominalCost, Opts());

  RtSample s1;
  s1.now = 1.0;
  s1.drained_base_load = 50 * kNominalCost;
  s1.busy_seconds = 1.5 * 50 * kNominalCost;
  PeriodMeasurement m1 = mon.Sample(s1, 2.0);
  EXPECT_NEAR(m1.cost, 1.5 * kNominalCost, 1e-12);

  // An idle period (nothing drained) must not corrupt the estimate.
  RtSample s2 = s1;
  s2.now = 2.0;
  PeriodMeasurement m2 = mon.Sample(s2, 2.0);
  EXPECT_NEAR(m2.cost, 1.5 * kNominalCost, 1e-12);
  EXPECT_DOUBLE_EQ(m2.fout, 0.0);
}

TEST(RtMonitorTest, MeasuredDelayIsPerPeriodDelta) {
  RtMonitor mon(kNominalCost, Opts());

  RtSample s1;
  s1.now = 1.0;
  s1.delay_sum = 10.0;
  s1.delay_count = 5;
  PeriodMeasurement m1 = mon.Sample(s1, 2.0);
  ASSERT_TRUE(m1.has_y_measured);
  EXPECT_DOUBLE_EQ(m1.y_measured, 2.0);

  // No departures this period: the stale cumulative sums must not be
  // re-reported.
  RtSample s2 = s1;
  s2.now = 2.0;
  PeriodMeasurement m2 = mon.Sample(s2, 2.0);
  EXPECT_FALSE(m2.has_y_measured);

  RtSample s3 = s2;
  s3.now = 3.0;
  s3.delay_sum = 16.0;  // +6 over +2 departures -> mean 3
  s3.delay_count = 7;
  PeriodMeasurement m3 = mon.Sample(s3, 2.0);
  ASSERT_TRUE(m3.has_y_measured);
  EXPECT_DOUBLE_EQ(m3.y_measured, 3.0);
}

TEST(RtMonitorTest, EmptyQueueClampsResidue) {
  RtMonitor mon(kNominalCost, Opts());
  RtSample s;
  s.now = 1.0;
  s.queued_tuples = 0;
  s.outstanding_base_load = 1e-16;  // incremental bookkeeping residue
  PeriodMeasurement m = mon.Sample(s, 2.0);
  EXPECT_DOUBLE_EQ(m.queue, 0.0);
}

TEST(RtMonitorTest, AdaptiveHeadroomConvergesUnderSaturation) {
  RtMonitorOptions o = Opts();
  o.headroom = 0.90;  // wrong belief; the "engine" actually gets 0.6
  o.adapt_headroom = true;
  o.headroom_ewma = 0.5;
  RtMonitor mon(kNominalCost, o);

  RtSample s;
  double busy = 0.0;
  for (int k = 1; k <= 20; ++k) {
    s.now = static_cast<double>(k);
    busy += 0.6;  // saturated CPU doing 0.6 s of work per second
    s.busy_seconds = busy;
    s.drained_base_load = busy;
    s.queued_tuples = 100;  // persistently backlogged
    s.outstanding_base_load = 100 * kNominalCost;
    mon.Sample(s, 2.0);
  }
  EXPECT_NEAR(mon.HeadroomEstimate(), 0.6, 0.01);
}

TEST(RtMonitorDeathTest, RejectsNonMonotonicTime) {
  RtMonitor mon(kNominalCost, Opts());
  RtSample s;
  s.now = 2.0;
  mon.Sample(s, 2.0);
  s.now = 1.5;
  EXPECT_DEATH(mon.Sample(s, 2.0), "forward");
}

// --- Multi-shard aggregation -----------------------------------------------

TEST(RtMonitorShardedTest, SkewedShardsAggregateToOnePlant) {
  // Two shards, maximally skewed: shard 0 idle, shard 1 overloaded. The
  // controller must see exactly the single plant the shard sums describe.
  RtMonitor mon(kNominalCost, /*num_shards=*/2, Opts());

  RtSample idle;
  idle.now = 1.0;

  RtSample busy;
  busy.now = 1.0;
  busy.offered = 200;
  busy.admitted = 160;
  busy.drained_base_load = 120 * kNominalCost;
  busy.busy_seconds = 120 * kNominalCost;
  busy.queued_tuples = 40;
  busy.outstanding_base_load = 40 * kNominalCost;
  busy.delay_sum = 12.0;
  busy.delay_count = 4;

  PeriodMeasurement m = mon.Sample({idle, busy}, 2.0);
  EXPECT_DOUBLE_EQ(m.fin, 200.0);
  EXPECT_DOUBLE_EQ(m.admitted, 160.0);
  EXPECT_DOUBLE_EQ(m.fout, 120.0);
  EXPECT_DOUBLE_EQ(m.queue, 40.0);
  // Eq. 11 against the aggregate's effective headroom N*H = 2.
  EXPECT_NEAR(m.y_hat, 41.0 * kNominalCost / 2.0, 1e-12);
  ASSERT_TRUE(m.has_y_measured);
  EXPECT_DOUBLE_EQ(m.y_measured, 3.0);

  // The per-shard decomposition feeds the actuation fan-out.
  EXPECT_DOUBLE_EQ(mon.shard_fin()[0], 0.0);
  EXPECT_DOUBLE_EQ(mon.shard_fin()[1], 200.0);
  EXPECT_DOUBLE_EQ(mon.shard_queues()[0], 0.0);
  EXPECT_DOUBLE_EQ(mon.shard_queues()[1], 40.0);
}

TEST(RtMonitorShardedTest, AggregateMatchesEquivalentSinglePlant) {
  // Summing the shard counters into one RtSample and feeding a 1-shard
  // monitor with headroom N*H must reproduce the 2-shard measurement —
  // the sharded monitor IS the single-plant abstraction.
  RtMonitorOptions per_worker = Opts();
  per_worker.headroom = 0.8;
  RtMonitor sharded(kNominalCost, 2, per_worker);

  RtMonitorOptions agg = Opts();
  agg.headroom = 1.0;  // RtMonitor checks per-worker H <= 1; emulate 2*0.8
  RtMonitor reference(kNominalCost, 1, agg);

  RtSample a;
  a.now = 1.0;
  a.offered = 150;
  a.admitted = 120;
  a.drained_base_load = 90 * kNominalCost;
  a.busy_seconds = 110 * kNominalCost;
  a.queued_tuples = 30;
  a.outstanding_base_load = 30 * kNominalCost;

  RtSample b;
  b.now = 1.0;
  b.offered = 50;
  b.admitted = 40;
  b.drained_base_load = 30 * kNominalCost;
  b.busy_seconds = 35 * kNominalCost;
  b.queued_tuples = 10;
  b.outstanding_base_load = 10 * kNominalCost;

  RtSample sum;
  sum.now = 1.0;
  sum.offered = a.offered + b.offered;
  sum.admitted = a.admitted + b.admitted;
  sum.drained_base_load = a.drained_base_load + b.drained_base_load;
  sum.busy_seconds = a.busy_seconds + b.busy_seconds;
  sum.queued_tuples = a.queued_tuples + b.queued_tuples;
  sum.outstanding_base_load =
      a.outstanding_base_load + b.outstanding_base_load;

  PeriodMeasurement ms = sharded.Sample({a, b}, 2.0);
  PeriodMeasurement mr = reference.Sample(sum, 2.0);
  EXPECT_DOUBLE_EQ(ms.fin, mr.fin);
  EXPECT_DOUBLE_EQ(ms.fout, mr.fout);
  EXPECT_DOUBLE_EQ(ms.queue, mr.queue);
  // Drain-weighted cost is identical; only the headroom divisor differs
  // (2 * 0.8 vs 1.0), so y_hat scales by exactly 1.0 / 1.6.
  EXPECT_DOUBLE_EQ(ms.cost, mr.cost);
  EXPECT_NEAR(ms.y_hat, mr.y_hat / 1.6, 1e-12);
}

TEST(RtMonitorShardedTest, PerShardQueueClampIsAppliedBeforeSumming) {
  // An empty shard's bookkeeping residue must not leak into the aggregate
  // queue, even when another shard is backlogged.
  RtMonitor mon(kNominalCost, 2, Opts());

  RtSample empty;
  empty.now = 1.0;
  empty.queued_tuples = 0;
  empty.outstanding_base_load = 1e-16;  // residue

  RtSample backlogged;
  backlogged.now = 1.0;
  backlogged.queued_tuples = 10;
  backlogged.outstanding_base_load = 10 * kNominalCost;

  PeriodMeasurement m = mon.Sample({empty, backlogged}, 2.0);
  EXPECT_DOUBLE_EQ(m.queue, 10.0);
}

TEST(RtMonitorShardedDeathTest, RejectsWrongShardCount) {
  RtMonitor mon(kNominalCost, 2, Opts());
  RtSample s;
  s.now = 1.0;
  EXPECT_DEATH(mon.Sample(std::vector<RtSample>{s}, 2.0),
               "one snapshot per shard");
}

TEST(RtMonitorShardedDeathTest, RejectsMismatchedSnapshotTimes) {
  RtMonitor mon(kNominalCost, 2, Opts());
  RtSample a;
  a.now = 1.0;
  RtSample b;
  b.now = 1.5;
  EXPECT_DEATH(mon.Sample({a, b}, 2.0), "one sample time");
}

}  // namespace
}  // namespace ctrlshed
