#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "engine/operator.h"

namespace ctrlshed {
namespace {

std::vector<Tuple> Collect(OperatorBase& op, const Tuple& in, SimTime now = 0.0) {
  std::vector<Tuple> out;
  op.Process(in, now, [&](const Tuple& t) { out.push_back(t); });
  return out;
}

Tuple MakeTuple(double value, double aux = 0.0, int port = 0) {
  Tuple t;
  t.lineage = 42;
  t.value = value;
  t.aux = aux;
  t.port = port;
  return t;
}

TEST(FilterOpTest, SelectivityMatchesThresholdStatistically) {
  FilterOp f("f", 0.001, 0.7);
  f.set_id(3);
  Rng rng(1);
  int passed = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (!Collect(f, MakeTuple(rng.Uniform())).empty()) ++passed;
  }
  EXPECT_NEAR(static_cast<double>(passed) / n, 0.7, 0.01);
}

TEST(FilterOpTest, DecisionsIndependentAcrossOperators) {
  // Two filters with the same threshold but different ids must make
  // (nearly) independent decisions on the same tuples: joint pass rate ~
  // t^2, not min(t,t) = t.
  FilterOp f1("f1", 0.001, 0.6), f2("f2", 0.001, 0.6);
  f1.set_id(1);
  f2.set_id(2);
  Rng rng(2);
  int both = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    Tuple t = MakeTuple(rng.Uniform());
    const bool p1 = !Collect(f1, t).empty();
    const bool p2 = !Collect(f2, t).empty();
    if (p1 && p2) ++both;
  }
  EXPECT_NEAR(static_cast<double>(both) / n, 0.36, 0.01);
}

TEST(FilterOpTest, DeterministicPerTuple) {
  FilterOp f("f", 0.001, 0.5);
  f.set_id(9);
  Tuple t = MakeTuple(0.123456);
  const bool first = !Collect(f, t).empty();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(!Collect(f, t).empty(), first);
  }
}

TEST(FilterOpTest, ExtremeThresholds) {
  FilterOp never("f0", 0.001, 0.0), always("f1", 0.001, 1.0);
  never.set_id(1);
  always.set_id(2);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    Tuple t = MakeTuple(rng.Uniform());
    EXPECT_TRUE(Collect(never, t).empty());
    EXPECT_EQ(Collect(always, t).size(), 1u);
  }
}

TEST(FilterOpTest, SelectivityAccessor) {
  FilterOp f("f", 0.001, 0.85);
  EXPECT_DOUBLE_EQ(f.Selectivity(), 0.85);
  EXPECT_DOUBLE_EQ(f.threshold(), 0.85);
}

TEST(MapOpTest, IdentityByDefault) {
  MapOp m("m", 0.002);
  Tuple in = MakeTuple(0.5, 7.0);
  auto out = Collect(m, in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 0.5);
  EXPECT_DOUBLE_EQ(out[0].aux, 7.0);
  EXPECT_EQ(out[0].lineage, in.lineage);
}

TEST(MapOpTest, AppliesTransform) {
  MapOp m("m", 0.002, [](Tuple& t) { t.value *= 2.0; });
  auto out = Collect(m, MakeTuple(0.25));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 0.5);
}

TEST(UnionOpTest, PassesThrough) {
  UnionOp u("u", 0.001);
  auto out = Collect(u, MakeTuple(0.9));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 0.9);
  EXPECT_DOUBLE_EQ(u.Selectivity(), 1.0);
}

TEST(WindowAggregateTest, EmitsOnceEveryWindow) {
  WindowAggregateOp agg("a", 0.001, 4, WindowAggregateOp::Kind::kMean);
  int emitted = 0;
  for (int i = 0; i < 12; ++i) {
    emitted += static_cast<int>(Collect(agg, MakeTuple(1.0)).size());
  }
  EXPECT_EQ(emitted, 3);
  EXPECT_DOUBLE_EQ(agg.Selectivity(), 0.25);
}

TEST(WindowAggregateTest, MeanValue) {
  WindowAggregateOp agg("a", 0.001, 3, WindowAggregateOp::Kind::kMean);
  Collect(agg, MakeTuple(1.0));
  Collect(agg, MakeTuple(2.0));
  auto out = Collect(agg, MakeTuple(6.0));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 3.0);
}

TEST(WindowAggregateTest, SumMaxCount) {
  WindowAggregateOp sum("s", 0.001, 2, WindowAggregateOp::Kind::kSum);
  WindowAggregateOp mx("m", 0.001, 2, WindowAggregateOp::Kind::kMax);
  WindowAggregateOp cnt("c", 0.001, 2, WindowAggregateOp::Kind::kCount);
  Collect(sum, MakeTuple(1.5));
  Collect(mx, MakeTuple(1.5));
  Collect(cnt, MakeTuple(1.5));
  EXPECT_DOUBLE_EQ(Collect(sum, MakeTuple(2.0))[0].value, 3.5);
  EXPECT_DOUBLE_EQ(Collect(mx, MakeTuple(2.0))[0].value, 2.0);
  EXPECT_DOUBLE_EQ(Collect(cnt, MakeTuple(2.0))[0].value, 2.0);
}

TEST(WindowAggregateTest, OutputIsDerivedLineage) {
  WindowAggregateOp agg("a", 0.001, 1, WindowAggregateOp::Kind::kMean);
  auto out = Collect(agg, MakeTuple(1.0));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].lineage, kPendingLineage);
}

TEST(WindowAggregateTest, ResetsBetweenWindows) {
  WindowAggregateOp agg("a", 0.001, 2, WindowAggregateOp::Kind::kSum);
  Collect(agg, MakeTuple(10.0));
  EXPECT_DOUBLE_EQ(Collect(agg, MakeTuple(10.0))[0].value, 20.0);
  Collect(agg, MakeTuple(1.0));
  EXPECT_DOUBLE_EQ(Collect(agg, MakeTuple(1.0))[0].value, 2.0);
}

TEST(SlidingJoinTest, MatchesWithinBand) {
  SlidingJoinOp j("j", 0.001, 10.0, 0.1, 1.0);
  Collect(j, MakeTuple(1.0, /*aux=*/0.50, /*port=*/0), 0.0);
  auto out = Collect(j, MakeTuple(2.0, /*aux=*/0.55, /*port=*/1), 1.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 1.5);
  EXPECT_EQ(out[0].lineage, kPendingLineage);
}

TEST(SlidingJoinTest, NoMatchOutsideBand) {
  SlidingJoinOp j("j", 0.001, 10.0, 0.1, 1.0);
  Collect(j, MakeTuple(1.0, 0.2, 0), 0.0);
  auto out = Collect(j, MakeTuple(2.0, 0.9, 1), 1.0);
  EXPECT_TRUE(out.empty());
}

TEST(SlidingJoinTest, WindowEvictsOldEntries) {
  SlidingJoinOp j("j", 0.001, 2.0, 0.5, 1.0);
  Collect(j, MakeTuple(1.0, 0.5, 0), 0.0);
  EXPECT_EQ(j.WindowSize(0), 1u);
  // Probe at t = 5: the port-0 entry from t=0 is older than the window.
  auto out = Collect(j, MakeTuple(2.0, 0.5, 1), 5.0);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(j.WindowSize(0), 0u);
}

TEST(SlidingJoinTest, MultipleMatches) {
  SlidingJoinOp j("j", 0.001, 10.0, 1.0, 1.0);
  Collect(j, MakeTuple(1.0, 0.1, 0), 0.0);
  Collect(j, MakeTuple(2.0, 0.2, 0), 0.5);
  auto out = Collect(j, MakeTuple(3.0, 0.15, 1), 1.0);
  EXPECT_EQ(out.size(), 2u);
}

TEST(SlidingJoinTest, SymmetricProbing) {
  SlidingJoinOp j("j", 0.001, 10.0, 0.5, 1.0);
  Collect(j, MakeTuple(1.0, 0.5, 1), 0.0);  // port 1 first
  auto out = Collect(j, MakeTuple(2.0, 0.5, 0), 1.0);
  EXPECT_EQ(out.size(), 1u);
}

TEST(OperatorBaseTest, ConnectToBuildsDownstreamList) {
  MapOp a("a", 0.001), b("b", 0.001), c("c", 0.001);
  a.ConnectTo(&b);
  a.ConnectTo(&c, 1);
  ASSERT_EQ(a.downstream().size(), 2u);
  EXPECT_EQ(a.downstream()[0].op, &b);
  EXPECT_EQ(a.downstream()[1].op, &c);
  EXPECT_EQ(a.downstream()[1].port, 1);
}

TEST(OperatorBaseDeathTest, SelfLoopAborts) {
  MapOp a("a", 0.001);
  EXPECT_DEATH(a.ConnectTo(&a), "itself");
}

TEST(OperatorBaseDeathTest, NegativeCostAborts) {
  EXPECT_DEATH(MapOp("m", -1.0), "non-negative");
}

}  // namespace
}  // namespace ctrlshed
