#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/wire.h"
#include "net/frame.h"
#include "telemetry/fleet_metrics.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/prom_export.h"
#include "telemetry/trace_merge.h"

namespace ctrlshed {
namespace {

std::string PayloadOf(const std::string& frame, FrameType expect_type) {
  FrameDecoder decoder;
  decoder.Feed(frame.data(), frame.size());
  Frame f;
  EXPECT_EQ(FrameDecoder::Status::kFrame, decoder.Next(&f));
  EXPECT_EQ(expect_type, f.type);
  return f.payload;
}

// ---------------------------------------------------------------------------
// Flatten / fold.

TEST(FleetMetrics, FlattenCarriesEverySection) {
  MetricsRegistry reg;
  reg.GetCounter("rt.offered")->Add(7);
  reg.GetGauge("rt.queue")->Set(3.5);
  HistogramMetric* h = reg.GetHistogram("rt.pump_interval_s");
  h->Record(0.001);
  h->Record(0.002);

  const MetricsWireSnapshot snap = FlattenSnapshot(reg.Snapshot());
  ASSERT_EQ(1u, snap.counters.size());
  EXPECT_EQ("rt.offered", snap.counters[0].first);
  EXPECT_EQ(7u, snap.counters[0].second);
  ASSERT_EQ(1u, snap.gauges.size());
  EXPECT_DOUBLE_EQ(3.5, snap.gauges[0].second);
  ASSERT_EQ(1u, snap.histograms.size());
  EXPECT_EQ(2u, snap.histograms[0].stats.count);
  EXPECT_TRUE(ValidMetricsWireSnapshot(snap));
}

TEST(FleetMetrics, FlattenDropsOverCapAndNonFiniteEntries) {
  MetricsSnapshot snap;
  for (uint32_t i = 0; i < kMaxFleetEntries + 10; ++i) {
    snap.counters["c." + std::to_string(i)] = i;
  }
  snap.gauges["bad"] = std::numeric_limits<double>::quiet_NaN();
  snap.gauges[std::string(kMaxFleetNameBytes + 1, 'x')] = 1.0;
  snap.gauges["good"] = 2.0;

  const MetricsWireSnapshot wire = FlattenSnapshot(snap);
  EXPECT_EQ(kMaxFleetEntries, wire.counters.size());
  ASSERT_EQ(1u, wire.gauges.size());
  EXPECT_EQ("good", wire.gauges[0].first);
  EXPECT_TRUE(ValidMetricsWireSnapshot(wire));
}

TEST(FleetMetrics, FoldPrefixesWithNodeId) {
  MetricsWireSnapshot snap;
  snap.counters.push_back({"rt.offered", 41});
  snap.gauges.push_back({"rt.queue", 9.0});
  MetricsSnapshot::HistogramStats hs;
  hs.count = 3;
  hs.sum = 0.3;
  hs.p50 = 0.1;
  snap.histograms.push_back({"rt.pump_interval_s", hs});

  MetricsRegistry reg;
  FoldMetricsSnapshot(5, snap, &reg);
  // Counters are Store()d absolutes: a re-fold with a newer value must
  // replace, not accumulate.
  snap.counters[0].second = 42;
  FoldMetricsSnapshot(5, snap, &reg);

  const MetricsSnapshot out = reg.Snapshot();
  EXPECT_EQ(42u, out.counters.at("node5.rt.offered"));
  EXPECT_DOUBLE_EQ(9.0, out.gauges.at("node5.rt.queue"));
  EXPECT_EQ(3u, out.histograms.at("node5.rt.pump_interval_s").count);
}

// ---------------------------------------------------------------------------
// Prometheus rendering of federated families.

TEST(FleetMetrics, PromFoldsNodeLabel) {
  MetricsSnapshot snap;
  snap.counters["node0.rt.offered"] = 10;
  snap.counters["node1.rt.offered"] = 20;
  std::ostringstream out;
  WritePrometheusText(snap, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("rt_offered_total{node=\"0\"} 10\n"), std::string::npos);
  EXPECT_NE(text.find("rt_offered_total{node=\"1\"} 20\n"), std::string::npos);
}

TEST(FleetMetrics, PromMergesNodeAndShardLabels) {
  MetricsSnapshot snap;
  snap.gauges["node0.rt.shard0.queue"] = 1.0;
  snap.gauges["node0.rt.shard1.queue"] = 2.0;
  snap.gauges["node3.rt.shard0.queue"] = 3.0;
  std::ostringstream out;
  WritePrometheusText(snap, out);
  const std::string text = out.str();
  // ONE family, three samples with node x shard label sets.
  size_t type_lines = 0;
  for (size_t pos = text.find("# TYPE rt_shard_queue gauge\n");
       pos != std::string::npos;
       pos = text.find("# TYPE rt_shard_queue gauge\n", pos + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(1u, type_lines);
  EXPECT_NE(text.find("rt_shard_queue{node=\"0\",shard=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rt_shard_queue{node=\"0\",shard=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("rt_shard_queue{node=\"3\",shard=\"0\"} 3\n"),
            std::string::npos);
}

TEST(FleetMetrics, PromEscapesLabelValuesUnderNodePrefix) {
  MetricsSnapshot snap;
  snap.counters["node3.engine.op.fil\"ter.processed"] = 4;
  std::ostringstream out;
  WritePrometheusText(snap, out);
  EXPECT_NE(out.str().find(
                "engine_op_processed_total{node=\"3\",op=\"fil\\\"ter\"} 4\n"),
            std::string::npos);
}

TEST(FleetMetrics, PromBareNodePrefixIsNotALabel) {
  // "node" without digits or without a dot must sanitize whole, not grow a
  // bogus empty label.
  MetricsSnapshot snap;
  snap.counters["nodeless.count"] = 1;
  snap.counters["node7" ] = 2;
  std::ostringstream out;
  WritePrometheusText(snap, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("nodeless_count_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("node7_total 2\n"), std::string::npos);
}

TEST(FleetMetrics, PromMergesQuantilesIntoNodeLabelSet) {
  MetricsSnapshot snap;
  MetricsSnapshot::HistogramStats h;
  h.count = 4;
  h.sum = 2.0;
  h.p50 = 0.5;
  h.p95 = 0.75;
  h.p99 = 1.25;
  snap.histograms["node2.rt.pump_interval_s"] = h;
  std::ostringstream out;
  WritePrometheusText(snap, out);
  const std::string text = out.str();
  EXPECT_NE(
      text.find("rt_pump_interval_s{node=\"2\",quantile=\"0.5\"} 0.5\n"),
      std::string::npos);
  EXPECT_NE(text.find("rt_pump_interval_s_sum{node=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("rt_pump_interval_s_count{node=\"2\"} 4\n"),
            std::string::npos);
}

TEST(FleetMetrics, ExternalHistogramLosesToLocalRecording) {
  MetricsRegistry reg;
  MetricsSnapshot::HistogramStats ext;
  ext.count = 100;
  ext.sum = 50.0;
  reg.SetExternalHistogramStats("rt.pump_interval_s", ext);
  reg.GetHistogram("rt.pump_interval_s")->Record(1.0);

  const MetricsSnapshot snap = reg.Snapshot();
  // The locally recorded histogram shadows the external stats.
  EXPECT_EQ(1u, snap.histograms.at("rt.pump_interval_s").count);

  std::ostringstream out;
  reg.WriteJsonLine(0.0, out);
  // One histogram entry, not two.
  const std::string line = out.str();
  size_t n = 0;
  for (size_t pos = line.find("\"rt.pump_interval_s\"");
       pos != std::string::npos;
       pos = line.find("\"rt.pump_interval_s\"", pos + 1)) {
    ++n;
  }
  EXPECT_EQ(1u, n);
}

// ---------------------------------------------------------------------------
// Wire codec: piggyback round trip + hardening.

NodeStatsReport SampleReport() {
  NodeStatsReport r;
  r.node_id = 3;
  r.seq = 9;
  r.ctrl_seq = 8;
  r.deltas.offered = 100;
  r.deltas.admitted = 90;
  r.deltas.queue = 4.5;
  r.alpha = 0.25;
  r.offered_total = 1000;
  r.entry_shed_total = 100;
  r.ring_dropped_total = 5;
  r.departed_total = 800;
  r.has_metrics = true;
  r.metrics.counters.push_back({"rt.offered", 1000});
  r.metrics.gauges.push_back({"rt.queue", 17.5});
  MetricsSnapshot::HistogramStats hs;
  hs.count = 12;
  hs.sum = 0.6;
  hs.min = 0.01;
  hs.max = 0.2;
  hs.p50 = 0.04;
  hs.p95 = 0.1;
  hs.p99 = 0.15;
  r.metrics.histograms.push_back({"rt.pump_interval_s", hs});
  return r;
}

TEST(FleetWire, StatsReportPiggybackRoundTrips) {
  const NodeStatsReport r = SampleReport();
  const std::string payload =
      PayloadOf(EncodeStatsReportFrame(r), FrameType::kStatsReport);
  NodeStatsReport out;
  ASSERT_TRUE(DecodeStatsReport(payload, &out));
  EXPECT_EQ(r.node_id, out.node_id);
  EXPECT_EQ(r.ctrl_seq, out.ctrl_seq);
  ASSERT_TRUE(out.has_metrics);
  ASSERT_EQ(1u, out.metrics.counters.size());
  EXPECT_EQ("rt.offered", out.metrics.counters[0].first);
  EXPECT_EQ(1000u, out.metrics.counters[0].second);
  ASSERT_EQ(1u, out.metrics.gauges.size());
  EXPECT_DOUBLE_EQ(17.5, out.metrics.gauges[0].second);
  ASSERT_EQ(1u, out.metrics.histograms.size());
  EXPECT_EQ(12u, out.metrics.histograms[0].stats.count);
  EXPECT_DOUBLE_EQ(0.1, out.metrics.histograms[0].stats.p95);
}

TEST(FleetWire, StatsReportWithoutMetricsRoundTrips) {
  NodeStatsReport r = SampleReport();
  r.has_metrics = false;
  r.metrics = MetricsWireSnapshot{};
  const std::string payload =
      PayloadOf(EncodeStatsReportFrame(r), FrameType::kStatsReport);
  NodeStatsReport out;
  ASSERT_TRUE(DecodeStatsReport(payload, &out));
  EXPECT_FALSE(out.has_metrics);
  EXPECT_TRUE(out.metrics.empty());
}

TEST(FleetWire, DecodeRejectsTruncationAndTrailingGarbage) {
  const std::string payload =
      PayloadOf(EncodeStatsReportFrame(SampleReport()), FrameType::kStatsReport);
  NodeStatsReport out;
  ASSERT_TRUE(DecodeStatsReport(payload, &out));
  for (size_t cut = 1; cut < payload.size(); cut += 7) {
    EXPECT_FALSE(
        DecodeStatsReport(payload.substr(0, payload.size() - cut), &out));
  }
  EXPECT_FALSE(DecodeStatsReport(payload + "x", &out));
}

TEST(FleetWire, DecodeRejectsOversizedSectionCount) {
  // A report whose counter count claims more entries than the cap must be
  // rejected before any giant allocation happens.
  NodeStatsReport r = SampleReport();
  r.metrics = MetricsWireSnapshot{};
  std::string payload =
      PayloadOf(EncodeStatsReportFrame(r), FrameType::kStatsReport);
  // Overwrite the counters-section count (first u32 after has_metrics=1).
  std::string hacked = payload.substr(0, payload.size() - 12);
  PutU32(kMaxFleetEntries + 1, &hacked);
  PutU32(0, &hacked);  // gauges
  PutU32(0, &hacked);  // histograms
  NodeStatsReport out;
  EXPECT_FALSE(DecodeStatsReport(hacked, &out));
}

TEST(FleetWire, DecodeRejectsNonFiniteGauge) {
  NodeStatsReport r = SampleReport();
  r.metrics.gauges[0].second = std::numeric_limits<double>::infinity();
  const std::string payload =
      PayloadOf(EncodeStatsReportFrame(r), FrameType::kStatsReport);
  NodeStatsReport out;
  EXPECT_FALSE(DecodeStatsReport(payload, &out));
}

TEST(FleetWire, HelloCarriesTraceClock) {
  NodeHello h;
  h.node_id = 2;
  h.workers = 4;
  h.headroom = 0.97;
  h.nominal_cost = 0.005;
  h.period = 1.0;
  h.trace_clock_us = 123456789ull;
  const std::string payload = PayloadOf(EncodeHelloFrame(h), FrameType::kHello);
  NodeHello out;
  ASSERT_TRUE(DecodeHello(payload, &out));
  EXPECT_EQ(123456789ull, out.trace_clock_us);
}

TEST(FleetWire, HelloAckRoundTrips) {
  HelloAck a;
  a.node_id = 7;
  a.echo_t0_us = 1000;
  a.ctrl_clock_us = 2500;
  const std::string payload =
      PayloadOf(EncodeHelloAckFrame(a), FrameType::kHelloAck);
  HelloAck out;
  ASSERT_TRUE(DecodeHelloAck(payload, &out));
  EXPECT_EQ(7u, out.node_id);
  EXPECT_EQ(1000u, out.echo_t0_us);
  EXPECT_EQ(2500u, out.ctrl_clock_us);
  EXPECT_FALSE(DecodeHelloAck(payload.substr(0, payload.size() - 1), &out));
  EXPECT_FALSE(DecodeHelloAck(payload + "z", &out));
}

// ---------------------------------------------------------------------------
// Trace merge.

TEST(TraceMerge, MergesTracksAppliesOffsetsAndIntersectsPeriods) {
  // Controller track: periods 5 and 6; no clock_sync (offset 0).
  const std::string ctl = R"([
    {"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"x"}},
    {"name":"cluster.tick","ph":"X","pid":1,"tid":1,"ts":100,"dur":10,
     "args":{"period":5}},
    {"name":"cluster.tick","ph":"X","pid":1,"tid":1,"ts":200,"dur":10,
     "args":{"period":6}}])";
  // Node track: clock_sync says this file is 50us behind the controller;
  // saw periods 5 and 7.
  const std::string node = R"([
    {"name":"clock_sync","ph":"i","pid":1,"tid":2,"ts":1,"s":"t",
     "args":{"offset_us":50}},
    {"name":"cluster.apply","ph":"X","pid":1,"tid":2,"ts":60,"dur":5,
     "args":{"period":5}},
    {"name":"cluster.apply","ph":"X","pid":1,"tid":2,"ts":160,"dur":5,
     "args":{"period":7}}])";

  std::ostringstream out;
  TraceMergeResult res;
  ASSERT_TRUE(MergeTraceJson({{"ctl", ctl}, {"node0", node}}, out, &res))
      << res.error;
  EXPECT_EQ(2u, res.files);
  ASSERT_EQ(2u, res.offsets_us.size());
  EXPECT_EQ(0, res.offsets_us[0]);
  EXPECT_EQ(50, res.offsets_us[1]);
  ASSERT_EQ(1u, res.common_periods.size());
  EXPECT_EQ(5, res.common_periods[0]);

  const std::string merged = out.str();
  // Per-file pids: input 0 -> pid 1, input 1 -> pid 2, with process names.
  EXPECT_NE(merged.find("\"args\":{\"name\":\"ctl\"}"), std::string::npos);
  EXPECT_NE(merged.find("\"args\":{\"name\":\"node0\"}"), std::string::npos);
  EXPECT_NE(merged.find("\"pid\":2"), std::string::npos);
  // Node timestamps shifted onto the controller timebase: 60 -> 110.
  EXPECT_NE(merged.find("\"ts\":110"), std::string::npos);
  // Controller timestamps untouched.
  EXPECT_NE(merged.find("\"ts\":100"), std::string::npos);
}

TEST(TraceMerge, MergedOutputReparses) {
  const std::string a =
      R"([{"name":"s","ph":"X","pid":1,"tid":1,"ts":1,"dur":2}])";
  const std::string b =
      R"([{"name":"t","ph":"i","pid":1,"tid":1,"ts":3,"s":"t"}])";
  std::ostringstream out;
  TraceMergeResult res;
  ASSERT_TRUE(MergeTraceJson({{"a", a}, {"b", b}}, out, &res));
  // The merged array must itself be valid input for another merge.
  std::ostringstream out2;
  TraceMergeResult res2;
  EXPECT_TRUE(MergeTraceJson({{"m", out.str()}}, out2, &res2)) << res2.error;
  EXPECT_EQ(res.events, res2.events);
}

TEST(TraceMerge, RejectsMalformedJson) {
  std::ostringstream out;
  TraceMergeResult res;
  EXPECT_FALSE(MergeTraceJson({{"bad", "{not json"}}, out, &res));
  EXPECT_FALSE(res.error.empty());
  EXPECT_FALSE(MergeTraceJson({{"obj", "{\"a\":1}"}}, out, &res));
}

TEST(TraceMerge, NoCommonPeriodWhenAnyFileLacksPeriods) {
  const std::string with =
      R"([{"name":"s","ph":"X","pid":1,"tid":1,"ts":1,"dur":2,
           "args":{"period":4}}])";
  const std::string without =
      R"([{"name":"t","ph":"X","pid":1,"tid":1,"ts":1,"dur":2}])";
  std::ostringstream out;
  TraceMergeResult res;
  ASSERT_TRUE(MergeTraceJson({{"a", with}, {"b", without}}, out, &res));
  EXPECT_TRUE(res.common_periods.empty());
}

}  // namespace
}  // namespace ctrlshed
