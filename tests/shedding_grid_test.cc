// Property sweep across every actuator: whatever drops tuples, the
// loop-level accounting must balance and the delay control must still
// work. Runs a hand-assembled loop (CTRL controller, identification
// plant, bursty arrivals) with each shedder implementation.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "control/ctrl_controller.h"
#include "core/feedback_loop.h"
#include "engine/engine.h"
#include "engine/query_network.h"
#include "runner/networks.h"
#include "shedding/aurora_shedder.h"
#include "shedding/entry_shedder.h"
#include "shedding/queue_shedder.h"
#include "shedding/semantic_shedder.h"
#include "shedding/weighted_shedder.h"
#include "sim/simulation.h"
#include "workload/arrival_source.h"
#include "workload/traces.h"

namespace ctrlshed {
namespace {

enum class ShedderKindForTest {
  kEntry,
  kQueue,
  kQueueCostAware,
  kSemantic,
  kWeighted,
  kAuroraQuota,
};

class ShedderGrid : public ::testing::TestWithParam<ShedderKindForTest> {
 protected:
  std::unique_ptr<Shedder> MakeShedderUnderTest(Engine* engine) {
    switch (GetParam()) {
      case ShedderKindForTest::kEntry:
        return std::make_unique<EntryShedder>(3);
      case ShedderKindForTest::kQueue:
        return std::make_unique<QueueShedder>(engine, 3);
      case ShedderKindForTest::kQueueCostAware:
        return std::make_unique<QueueShedder>(engine, 3, /*cost_aware=*/true);
      case ShedderKindForTest::kSemantic:
        return std::make_unique<SemanticShedder>();
      case ShedderKindForTest::kWeighted:
        return std::make_unique<WeightedEntryShedder>(
            std::vector<double>{1.0}, 3);
      case ShedderKindForTest::kAuroraQuota:
        return std::make_unique<AuroraQuotaShedder>();
    }
    return nullptr;
  }
};

TEST_P(ShedderGrid, AccountingBalancesUnderBurstyOverload) {
  Simulation sim;
  QueryNetwork net;
  BuildIdentificationNetwork(&net, 0.97 / 190.0);
  Engine engine(&net, 0.97);
  sim.AttachProcess(&engine);

  CtrlOptions copts;
  copts.headroom = 0.97;
  CtrlController controller(copts);
  std::unique_ptr<Shedder> shedder = MakeShedderUnderTest(&engine);

  FeedbackLoopOptions opts;
  opts.target_delay = 1.5;
  FeedbackLoop loop(&sim, &engine, &controller, shedder.get(), opts);
  loop.Start();

  ParetoTraceParams wl;
  wl.mean_rate = 260.0;  // solid overload: every shedder must act
  ArrivalSource source(0, MakeParetoTrace(180.0, wl, 7),
                       ArrivalSource::Spacing::kPoisson, 9);
  source.Start(&sim, [&loop](const Tuple& t) { loop.OnArrival(t); });
  sim.Run(180.0);

  const EngineCounters& c = engine.counters();
  // Offered splits exactly into entry drops + engine admissions.
  EXPECT_EQ(loop.offered(), loop.entry_shed() + c.admitted);
  // Admissions split exactly into departures + in-network sheds + queued.
  EXPECT_EQ(c.admitted, c.departed + c.shed_lineages + engine.QueuedTuples());
  // Overload means real loss, and control means bounded delays.
  const QosSummary s = loop.Summary();
  EXPECT_GT(s.loss_ratio, 0.1) << "shedder never acted";
  EXPECT_LT(s.loss_ratio, 0.9);
  EXPECT_LT(s.max_overshoot, 10.0);
  EXPECT_GT(s.departures, 0u);
}

TEST_P(ShedderGrid, IdleStreamLosesNothing) {
  Simulation sim;
  QueryNetwork net;
  BuildIdentificationNetwork(&net, 0.97 / 190.0);
  Engine engine(&net, 0.97);
  sim.AttachProcess(&engine);
  CtrlOptions copts;
  CtrlController controller(copts);
  std::unique_ptr<Shedder> shedder = MakeShedderUnderTest(&engine);
  FeedbackLoopOptions opts;
  FeedbackLoop loop(&sim, &engine, &controller, shedder.get(), opts);
  loop.Start();

  ArrivalSource source(0, MakeConstantTrace(60.0, 40.0),
                       ArrivalSource::Spacing::kPoisson, 9);
  source.Start(&sim, [&loop](const Tuple& t) { loop.OnArrival(t); });
  sim.Run(60.0);
  EXPECT_DOUBLE_EQ(loop.LossRatio(), 0.0);
  EXPECT_EQ(loop.qos().delayed_tuples(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllShedders, ShedderGrid,
                         ::testing::Values(ShedderKindForTest::kEntry,
                                           ShedderKindForTest::kQueue,
                                           ShedderKindForTest::kQueueCostAware,
                                           ShedderKindForTest::kSemantic,
                                           ShedderKindForTest::kWeighted,
                                           ShedderKindForTest::kAuroraQuota));

}  // namespace
}  // namespace ctrlshed
