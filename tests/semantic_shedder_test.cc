#include <gtest/gtest.h>

#include "common/rng.h"
#include "shedding/semantic_shedder.h"
#include "shedding/weighted_shedder.h"

namespace ctrlshed {
namespace {

PeriodMeasurement MakeMeasurement(double fin) {
  PeriodMeasurement m;
  m.period = 1.0;
  m.fin = fin;
  m.fin_forecast = fin;
  m.cost = 0.005;
  return m;
}

Tuple MakeTuple(double value, int source = 0) {
  Tuple t;
  t.value = value;
  t.source = source;
  return t;
}

TEST(SemanticShedderTest, AdmitsEverythingBeforeFirstConfigure) {
  SemanticShedder s;
  EXPECT_TRUE(s.Admit(MakeTuple(0.01)));
  EXPECT_TRUE(s.Admit(MakeTuple(0.99)));
}

TEST(SemanticShedderTest, DropsLowestUtilityFraction) {
  SemanticShedder s;
  Rng rng(3);
  // Period 1: no shedding yet, builds the utility sample.
  s.Configure(/*v=*/100.0, MakeMeasurement(100.0));
  for (int i = 0; i < 5000; ++i) s.Admit(MakeTuple(rng.Uniform()));
  // Period 2: shed 30% => threshold ~ 0.3 quantile of U[0,1].
  s.Configure(/*v=*/70.0, MakeMeasurement(100.0));
  EXPECT_NEAR(s.threshold(), 0.3, 0.03);

  int admitted = 0, low_admitted = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.Uniform();
    const bool ok = s.Admit(MakeTuple(u));
    if (ok) ++admitted;
    if (ok && u < 0.25) ++low_admitted;
  }
  EXPECT_NEAR(static_cast<double>(admitted) / n, 0.7, 0.03);
  EXPECT_EQ(low_admitted, 0);  // the bottom quartile is entirely gone
}

TEST(SemanticShedderTest, CustomUtilityFunction) {
  // Utility = aux: drop low-aux tuples regardless of value.
  SemanticShedder s([](const Tuple& t) { return t.aux; });
  Rng rng(4);
  s.Configure(100.0, MakeMeasurement(100.0));
  for (int i = 0; i < 2000; ++i) {
    Tuple t = MakeTuple(rng.Uniform());
    t.aux = rng.Uniform();
    s.Admit(t);
  }
  s.Configure(50.0, MakeMeasurement(100.0));  // shed 50%
  Tuple low = MakeTuple(0.99);
  low.aux = 0.1;
  Tuple high = MakeTuple(0.01);
  high.aux = 0.9;
  EXPECT_FALSE(s.Admit(low));
  EXPECT_TRUE(s.Admit(high));
}

TEST(SemanticShedderTest, NoSheddingAdmitsLowUtility) {
  SemanticShedder s;
  Rng rng(5);
  s.Configure(100.0, MakeMeasurement(100.0));
  for (int i = 0; i < 100; ++i) s.Admit(MakeTuple(rng.Uniform()));
  s.Configure(200.0, MakeMeasurement(100.0));  // v > fin: no shedding
  EXPECT_TRUE(s.Admit(MakeTuple(0.001)));
}

TEST(WeightedShedderTest, LowPriorityAbsorbsAllLoss) {
  WeightedEntryShedder s({/*source 0=*/1.0, /*source 1=*/10.0}, 7);
  // Period 1: learn rates (100 tuples/s each).
  s.Configure(200.0, MakeMeasurement(200.0));
  for (int i = 0; i < 100; ++i) {
    s.Admit(MakeTuple(0.5, 0));
    s.Admit(MakeTuple(0.5, 1));
  }
  // Period 2: shed 80 of 200 => all from source 0 (priority 1 < 10).
  s.Configure(120.0, MakeMeasurement(200.0));
  EXPECT_NEAR(s.drop_probability(0), 0.8, 1e-9);
  EXPECT_NEAR(s.drop_probability(1), 0.0, 1e-9);
  EXPECT_NEAR(s.drop_probability(), 0.4, 1e-9);
}

TEST(WeightedShedderTest, OverflowSpillsToNextPriority) {
  WeightedEntryShedder s({1.0, 10.0}, 7);
  s.Configure(200.0, MakeMeasurement(200.0));
  for (int i = 0; i < 100; ++i) {
    s.Admit(MakeTuple(0.5, 0));
    s.Admit(MakeTuple(0.5, 1));
  }
  // Shed 150 of 200: source 0 fully blocked, source 1 sheds 50%.
  s.Configure(50.0, MakeMeasurement(200.0));
  EXPECT_NEAR(s.drop_probability(0), 1.0, 1e-9);
  EXPECT_NEAR(s.drop_probability(1), 0.5, 1e-9);
}

TEST(WeightedShedderTest, AdmitRespectsPerSourceAlpha) {
  WeightedEntryShedder s({1.0, 10.0}, 9);
  s.Configure(200.0, MakeMeasurement(200.0));
  for (int i = 0; i < 100; ++i) {
    s.Admit(MakeTuple(0.5, 0));
    s.Admit(MakeTuple(0.5, 1));
  }
  s.Configure(120.0, MakeMeasurement(200.0));
  int admitted0 = 0, admitted1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (s.Admit(MakeTuple(0.5, 0))) ++admitted0;
    if (s.Admit(MakeTuple(0.5, 1))) ++admitted1;
  }
  EXPECT_NEAR(static_cast<double>(admitted0) / n, 0.2, 0.02);
  EXPECT_EQ(admitted1, n);
}

TEST(WeightedShedderTest, ReportsUnrealizableDemand) {
  WeightedEntryShedder s({1.0}, 3);
  s.Configure(100.0, MakeMeasurement(100.0));
  for (int i = 0; i < 100; ++i) s.Admit(MakeTuple(0.5, 0));
  // Demand a negative rate: even blocking everything only sheds 100/s.
  const double applied = s.Configure(-50.0, MakeMeasurement(100.0));
  EXPECT_NEAR(s.drop_probability(0), 1.0, 1e-9);
  EXPECT_NEAR(applied, 0.0, 1e-9);
}

TEST(WeightedShedderDeathTest, UnknownSourceAborts) {
  WeightedEntryShedder s({1.0}, 3);
  EXPECT_DEATH(s.Admit(MakeTuple(0.5, 5)), "unknown source");
}

}  // namespace
}  // namespace ctrlshed
