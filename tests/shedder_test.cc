#include <gtest/gtest.h>

#include <memory>

#include "engine/engine.h"
#include "engine/query_network.h"
#include "runner/networks.h"
#include "shedding/entry_shedder.h"
#include "shedding/queue_shedder.h"

namespace ctrlshed {
namespace {

PeriodMeasurement MakeMeasurement(double fin, double queue = 0.0) {
  PeriodMeasurement m;
  m.period = 1.0;
  m.fin = fin;
  m.fin_forecast = fin;
  m.queue = queue;
  m.cost = 0.005;
  return m;
}

Tuple SourceTuple(double value) {
  Tuple t;
  t.value = value;
  return t;
}

TEST(EntryShedderTest, AlphaFollowsEq13) {
  EntryShedder s(1);
  s.Configure(/*v=*/150.0, MakeMeasurement(/*fin=*/200.0));
  EXPECT_NEAR(s.drop_probability(), 0.25, 1e-12);
}

TEST(EntryShedderTest, AlphaClampedToZeroWhenUnderloaded) {
  EntryShedder s(1);
  s.Configure(/*v=*/300.0, MakeMeasurement(/*fin=*/200.0));
  EXPECT_DOUBLE_EQ(s.drop_probability(), 0.0);
}

TEST(EntryShedderTest, AlphaClampedToOneForNegativeRate) {
  EntryShedder s(1);
  const double applied = s.Configure(/*v=*/-50.0, MakeMeasurement(200.0));
  EXPECT_DOUBLE_EQ(s.drop_probability(), 1.0);
  EXPECT_DOUBLE_EQ(applied, 0.0);  // the floor the controller learns about
}

TEST(EntryShedderTest, IdleStreamAdmitsEverything) {
  EntryShedder s(1);
  s.Configure(/*v=*/10.0, MakeMeasurement(/*fin=*/0.0));
  EXPECT_DOUBLE_EQ(s.drop_probability(), 0.0);
  EXPECT_TRUE(s.Admit(SourceTuple(0.5)));
}

TEST(EntryShedderTest, DropFrequencyMatchesAlpha) {
  EntryShedder s(7);
  s.Configure(120.0, MakeMeasurement(200.0));  // alpha = 0.4
  int admitted = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (s.Admit(SourceTuple(0.5))) ++admitted;
  }
  EXPECT_NEAR(static_cast<double>(admitted) / n, 0.6, 0.01);
}

TEST(EntryShedderTest, AppliedRateReported) {
  EntryShedder s(1);
  const double applied = s.Configure(150.0, MakeMeasurement(200.0));
  EXPECT_NEAR(applied, 150.0, 1e-9);
}

class QueueShedderFixture : public ::testing::Test {
 protected:
  QueueShedderFixture() {
    BuildUniformChain(&net_, 5, 0.010);
    engine_ = std::make_unique<Engine>(&net_, 1.0);
  }

  void Fill(int n) {
    for (int i = 0; i < n; ++i) {
      Tuple t = SourceTuple(0.5);
      engine_->Inject(t, 0.0);
    }
  }

  QueryNetwork net_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(QueueShedderFixture, NoSheddingWhenDesiredExceedsInflow) {
  QueueShedder s(engine_.get(), 1);
  Fill(50);
  const double applied = s.Configure(/*v=*/250.0, MakeMeasurement(200.0, 50.0));
  EXPECT_DOUBLE_EQ(s.drop_probability(), 0.0);
  EXPECT_EQ(engine_->QueuedTuples(), 50u);
  EXPECT_DOUBLE_EQ(applied, 250.0);
}

TEST_F(QueueShedderFixture, PositiveRateShedsOnlyFromEntry) {
  QueueShedder s(engine_.get(), 1);
  Fill(50);
  s.Configure(/*v=*/120.0, MakeMeasurement(200.0, 50.0));
  EXPECT_NEAR(s.drop_probability(), 0.4, 1e-9);
  EXPECT_EQ(engine_->QueuedTuples(), 50u);  // queues untouched
}

TEST_F(QueueShedderFixture, NegativeRateCutsQueuedWork) {
  QueueShedder s(engine_.get(), 1);
  Fill(100);
  PeriodMeasurement m = MakeMeasurement(/*fin=*/200.0, /*queue=*/100.0);
  const double applied = s.Configure(/*v=*/-30.0, m);
  // All inflow blocked...
  EXPECT_DOUBLE_EQ(s.drop_probability(), 1.0);
  // ...and 30 tuple-equivalents removed from the queues.
  EXPECT_NEAR(static_cast<double>(engine_->QueuedTuples()), 70.0, 1.0);
  EXPECT_NEAR(applied, -30.0, 1.0);
}

TEST_F(QueueShedderFixture, CannotShedMoreThanExists) {
  QueueShedder s(engine_.get(), 1);
  Fill(10);
  PeriodMeasurement m = MakeMeasurement(/*fin=*/50.0, /*queue=*/10.0);
  const double applied = s.Configure(/*v=*/-500.0, m);
  EXPECT_EQ(engine_->QueuedTuples(), 0u);
  EXPECT_DOUBLE_EQ(s.drop_probability(), 1.0);
  // The unachievable remainder is reported back (anti-windup).
  EXPECT_GT(applied, -500.0);
}

TEST_F(QueueShedderFixture, ShedTuplesCountAsLoss) {
  QueueShedder s(engine_.get(), 1);
  Fill(100);
  s.Configure(-50.0, MakeMeasurement(100.0, 100.0));
  engine_->AdvanceTo(100.0);
  const EngineCounters& c = engine_->counters();
  EXPECT_GT(c.shed_lineages, 0u);
  EXPECT_EQ(c.shed_lineages + c.departed, 100u);
}

TEST_F(QueueShedderFixture, AdmitUsesConfiguredAlpha) {
  QueueShedder s(engine_.get(), 7);
  Fill(10);
  s.Configure(/*v=*/50.0, MakeMeasurement(100.0, 10.0));  // alpha = 0.5
  int admitted = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (s.Admit(SourceTuple(0.5))) ++admitted;
  }
  EXPECT_NEAR(static_cast<double>(admitted) / n, 0.5, 0.02);
}

}  // namespace
}  // namespace ctrlshed
