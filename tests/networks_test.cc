#include <gtest/gtest.h>

#include "engine/engine.h"
#include "runner/networks.h"

namespace ctrlshed {
namespace {

TEST(IdentificationNetworkTest, HasFourteenOperators) {
  QueryNetwork net;
  BuildIdentificationNetwork(&net, 0.00526);
  EXPECT_EQ(net.NumOperators(), 14u);
  EXPECT_EQ(net.NumSources(), 1);
}

TEST(IdentificationNetworkTest, EntryCostMatchesTargetExactly) {
  QueryNetwork net;
  const double target = 0.97 / 190.0;
  BuildIdentificationNetwork(&net, target);
  EXPECT_NEAR(net.MeanEntryCost(), target, 1e-12);
}

TEST(IdentificationNetworkTest, UniformPerOperatorCosts) {
  QueryNetwork net;
  BuildIdentificationNetwork(&net, 0.005);
  const double c0 = net.Operator(0)->cost();
  for (size_t i = 1; i < net.NumOperators(); ++i) {
    EXPECT_NEAR(net.Operator(i)->cost(), c0, 1e-15);
  }
}

TEST(IdentificationNetworkTest, MeasuredCostMatchesStaticEstimate) {
  // Drive the network and check that the CPU work per tuple matches the
  // static cost x selectivity estimate (validates filter independence).
  QueryNetwork net;
  const double target = 0.005;
  BuildIdentificationNetwork(&net, target);
  Engine engine(&net, 1.0);
  Rng rng(5);
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    Tuple t;
    t.value = rng.Uniform();
    engine.Inject(t, 0.0);
  }
  engine.AdvanceTo(1e9);
  const double measured = engine.counters().busy_seconds / kN;
  EXPECT_NEAR(measured, target, 0.02 * target);
}

TEST(BranchedNetworkTest, TopologyAndSources) {
  QueryNetwork net;
  BuildBranchedNetwork(&net, 0.005);
  EXPECT_EQ(net.NumOperators(), 12u);
  EXPECT_EQ(net.NumSources(), 3);
  // S2 enters at two points (the paper's Fig. 2 shape).
  EXPECT_EQ(net.Entries(1).size(), 2u);
  EXPECT_NEAR(net.MeanEntryCost(), 0.005, 1e-12);
}

TEST(BranchedNetworkTest, RunsEndToEnd) {
  QueryNetwork net;
  BuildBranchedNetwork(&net, 0.002);
  Engine engine(&net, 1.0);
  int departures = 0;
  engine.SetDepartureCallback([&](const Departure&) { ++departures; });
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    Tuple t;
    t.source = i % 3;
    t.value = rng.Uniform();
    t.aux = rng.Uniform();
    t.arrival_time = 0.01 * i;
    engine.Inject(t, 0.01 * i);
    engine.AdvanceTo(0.01 * (i + 1));
  }
  engine.AdvanceTo(1e9);
  EXPECT_GT(departures, 250);  // all source lineages eventually depart
  EXPECT_EQ(engine.QueuedTuples(), 0u);
}

TEST(UniformChainTest, CostSplitEvenly) {
  QueryNetwork net;
  BuildUniformChain(&net, 8, 0.008);
  EXPECT_EQ(net.NumOperators(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(net.Operator(i)->cost(), 0.001, 1e-15);
  }
  EXPECT_NEAR(net.MeanEntryCost(), 0.008, 1e-12);
}

}  // namespace
}  // namespace ctrlshed
