#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "metrics/histogram.h"

namespace ctrlshed {
namespace {

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionAbove(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(LatencyHistogramTest, ExactMeanMinMax) {
  LatencyHistogram h;
  h.Record(1.0);
  h.Record(2.0);
  h.Record(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(LatencyHistogramTest, QuantilesWithinBucketResolution) {
  LatencyHistogram h(1e-4, 1e3, 1.05);
  Rng rng(5);
  for (int i = 0; i < 200000; ++i) h.Record(rng.Uniform(0.0, 10.0));
  // Uniform[0,10]: p50 ~ 5, p95 ~ 9.5, p99 ~ 9.9, within 6% bucket width.
  EXPECT_NEAR(h.Quantile(0.50), 5.0, 0.35);
  EXPECT_NEAR(h.Quantile(0.95), 9.5, 0.6);
  EXPECT_NEAR(h.Quantile(0.99), 9.9, 0.6);
}

TEST(LatencyHistogramTest, QuantileMonotone) {
  LatencyHistogram h;
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) h.Record(rng.Exponential(1.0));
  double prev = 0.0;
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 1.0}) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_LE(h.Quantile(1.0), h.max() + 1e-12);
}

TEST(LatencyHistogramTest, FractionAbove) {
  LatencyHistogram h;
  for (int i = 0; i < 80; ++i) h.Record(0.5);
  for (int i = 0; i < 20; ++i) h.Record(5.0);
  EXPECT_NEAR(h.FractionAbove(2.0), 0.20, 1e-12);
  EXPECT_NEAR(h.FractionAbove(10.0), 0.0, 1e-12);
}

TEST(LatencyHistogramTest, ClampsOutOfRange) {
  LatencyHistogram h(1e-3, 10.0, 1.1);
  h.Record(0.0);      // below range -> underflow bucket
  h.Record(1e6);      // above range -> overflow bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
  EXPECT_GE(h.Quantile(1.0), 10.0);
}

TEST(LatencyHistogramTest, BucketEdgesAreLowerInclusive) {
  // Layout 1,2,4,8,...: a value exactly on a bucket edge belongs to the
  // bucket ABOVE the edge, so FractionAbove at an edge excludes it.
  LatencyHistogram h(1.0, 64.0, 2.0);
  h.Record(1.0);
  h.Record(2.0);
  h.Record(4.0);
  h.Record(8.0);
  EXPECT_NEAR(h.FractionAbove(1.0), 0.75, 1e-12);
  EXPECT_NEAR(h.FractionAbove(2.0), 0.50, 1e-12);
  EXPECT_NEAR(h.FractionAbove(4.0), 0.25, 1e-12);
  EXPECT_NEAR(h.FractionAbove(8.0), 0.0, 1e-12);
  // A below-range threshold cuts at the underflow bucket: everything
  // recorded in a real bucket counts as above.
  EXPECT_NEAR(h.FractionAbove(0.5), 1.0, 1e-12);
  h.Record(0.25);  // underflow bucket
  EXPECT_NEAR(h.FractionAbove(0.5), 0.8, 1e-12);
}

TEST(LatencyHistogramTest, QuantileReturnsContainingBucketUpperEdge) {
  LatencyHistogram h(1.0, 64.0, 2.0);
  for (int i = 0; i < 99; ++i) h.Record(3.0);  // bucket [2, 4)
  h.Record(5.0);                               // bucket [4, 8)
  // The median falls in [2, 4): its upper edge is 4, below max = 5, so
  // the bucket edge is reported verbatim.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 4.0);
  // The top quantile's bucket edge (8) exceeds the true max; the clamp
  // keeps Quantile(1) at the exact max.
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 5.0);
}

TEST(LatencyHistogramTest, UnderflowBucketReportsMinValueEdge) {
  LatencyHistogram h(1.0, 64.0, 2.0);
  for (int i = 0; i < 10; ++i) h.Record(0.01);  // all below range
  h.Record(3.0);
  // Median sits in the underflow bucket, whose upper edge is min_value.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.0);
}

TEST(LatencyHistogramTest, PercentilesBracketTrueValuesOnKnownData) {
  // Deterministic 1..1000 ms ramp at 5% resolution: each reported
  // percentile must be >= the true order statistic (it is a bucket upper
  // edge) and <= one bucket-growth factor above it.
  LatencyHistogram h(1e-3, 10.0, 1.05);
  for (int i = 1; i <= 1000; ++i) h.Record(i * 1e-3);
  for (double q : {0.50, 0.90, 0.95, 0.99}) {
    const double truth = std::ceil(q * 1000.0) * 1e-3;
    const double reported = h.Quantile(q);
    EXPECT_GE(reported, truth - 1e-12) << "q=" << q;
    EXPECT_LE(reported, truth * 1.05 + 1e-12) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, MergeCombinesCounts) {
  LatencyHistogram a, b;
  a.Record(1.0);
  a.Record(2.0);
  b.Record(8.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max(), 8.0);
  EXPECT_NEAR(a.Mean(), 11.0 / 3.0, 1e-12);
}

TEST(LatencyHistogramDeathTest, NegativeValueAborts) {
  LatencyHistogram h;
  EXPECT_DEATH(h.Record(-1.0), "negative");
}

TEST(LatencyHistogramDeathTest, MergeLayoutMismatchAborts) {
  LatencyHistogram a(1e-4, 1e3, 1.08);
  LatencyHistogram b(1e-4, 1e3, 1.10);
  EXPECT_DEATH(a.Merge(b), "layout");
}

}  // namespace
}  // namespace ctrlshed
