#include <gtest/gtest.h>

#include <memory>

#include "control/monitor.h"
#include "engine/engine.h"
#include "engine/query_network.h"
#include "runner/networks.h"

namespace ctrlshed {
namespace {

Tuple SourceTuple(double value, SimTime arrival) {
  Tuple t;
  t.arrival_time = arrival;
  t.value = value;
  return t;
}

class MonitorFixture : public ::testing::Test {
 protected:
  MonitorFixture() {
    BuildUniformChain(&net_, 5, 0.010);
    engine_ = std::make_unique<Engine>(&net_, 1.0);
  }
  QueryNetwork net_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(MonitorFixture, MeasuresRatesFromCounterDeltas) {
  Monitor mon(engine_.get(), MonitorOptions{1.0, 1.0, 1.0, 0.0, 1});
  // Period 1: 30 offered, 20 admitted (10 "shed" upstream of the engine).
  for (int i = 0; i < 20; ++i) engine_->Inject(SourceTuple(0.5, 0.0), 0.0);
  engine_->AdvanceTo(1.0);  // 0.2 s of work: everything drains
  PeriodMeasurement m = mon.Sample(1.0, /*offered_cum=*/30, 2.0);
  EXPECT_EQ(m.k, 1);
  EXPECT_DOUBLE_EQ(m.fin, 30.0);
  EXPECT_DOUBLE_EQ(m.admitted, 20.0);
  EXPECT_NEAR(m.fout, 20.0, 1e-9);
  EXPECT_NEAR(m.queue, 0.0, 1e-9);

  // Period 2: nothing.
  PeriodMeasurement m2 = mon.Sample(2.0, 30, 2.0);
  EXPECT_DOUBLE_EQ(m2.fin, 0.0);
  EXPECT_DOUBLE_EQ(m2.admitted, 0.0);
  EXPECT_EQ(m2.k, 2);
}

TEST_F(MonitorFixture, CostEstimateMatchesNominalOnCleanRun) {
  Monitor mon(engine_.get(), MonitorOptions{1.0, 1.0, 1.0, 0.0, 1});
  for (int i = 0; i < 50; ++i) engine_->Inject(SourceTuple(0.5, 0.0), 0.0);
  engine_->AdvanceTo(1.0);
  PeriodMeasurement m = mon.Sample(1.0, 50, 2.0);
  EXPECT_NEAR(m.cost, 0.010, 1e-9);
}

TEST_F(MonitorFixture, CostEstimateTracksMultiplier) {
  engine_->SetCostMultiplier([](SimTime) { return 2.5; });
  Monitor mon(engine_.get(), MonitorOptions{1.0, 1.0, 1.0, 0.0, 1});
  for (int i = 0; i < 30; ++i) engine_->Inject(SourceTuple(0.5, 0.0), 0.0);
  engine_->AdvanceTo(1.0);
  PeriodMeasurement m = mon.Sample(1.0, 30, 2.0);
  EXPECT_NEAR(m.cost, 0.025, 1e-9);
}

TEST_F(MonitorFixture, YHatFollowsEq11) {
  Monitor mon(engine_.get(), MonitorOptions{1.0, /*headroom=*/0.97, 1.0, 0.0, 1});
  for (int i = 0; i < 40; ++i) engine_->Inject(SourceTuple(0.5, 0.0), 0.0);
  // Process only some of the work.
  engine_->AdvanceTo(0.1);
  PeriodMeasurement m = mon.Sample(1.0, 40, 2.0);
  EXPECT_NEAR(m.y_hat, (m.queue + 1.0) * m.cost / 0.97, 1e-9);
  EXPECT_GT(m.queue, 0.0);
}

TEST_F(MonitorFixture, MeasuredDelayAveragesDepartures) {
  Monitor mon(engine_.get(), MonitorOptions{1.0, 1.0, 1.0, 0.0, 1});
  engine_->SetDepartureCallback([&](const Departure& d) { mon.OnDeparture(d); });
  engine_->Inject(SourceTuple(0.5, 0.0), 0.0);
  engine_->AdvanceTo(1.0);
  PeriodMeasurement m = mon.Sample(1.0, 1, 2.0);
  ASSERT_TRUE(m.has_y_measured);
  EXPECT_NEAR(m.y_measured, 0.010, 1e-9);

  PeriodMeasurement m2 = mon.Sample(2.0, 1, 2.0);
  EXPECT_FALSE(m2.has_y_measured);
}

TEST_F(MonitorFixture, CostEstimateHoldsWhenIdle) {
  Monitor mon(engine_.get(), MonitorOptions{1.0, 1.0, 1.0, 0.0, 1});
  PeriodMeasurement m = mon.Sample(1.0, 0, 2.0);
  // Falls back to the static (nominal) estimate.
  EXPECT_NEAR(m.cost, 0.010, 1e-9);
}

TEST_F(MonitorFixture, EwmaSmoothsCostJumps) {
  Monitor raw(engine_.get(), MonitorOptions{1.0, 1.0, /*ewma=*/1.0, 0.0, 1});
  QueryNetwork net2;
  BuildUniformChain(&net2, 5, 0.010);
  Engine engine2(&net2, 1.0);
  Monitor smooth(&engine2, MonitorOptions{1.0, 1.0, /*ewma=*/0.3, 0.0, 1});

  auto mult = [](SimTime) { return 4.0; };
  engine_->SetCostMultiplier(mult);
  engine2.SetCostMultiplier(mult);
  for (int i = 0; i < 20; ++i) {
    engine_->Inject(SourceTuple(0.5, 0.0), 0.0);
    engine2.Inject(SourceTuple(0.5, 0.0), 0.0);
  }
  engine_->AdvanceTo(1.0);
  engine2.AdvanceTo(1.0);
  double c_raw = raw.Sample(1.0, 20, 2.0).cost;
  double c_smooth = smooth.Sample(1.0, 20, 2.0).cost;
  EXPECT_NEAR(c_raw, 0.040, 1e-9);
  EXPECT_NEAR(c_smooth, 0.3 * 0.040 + 0.7 * 0.010, 1e-9);
}

TEST_F(MonitorFixture, EstimationNoiseIsReproducible) {
  QueryNetwork net2;
  BuildUniformChain(&net2, 5, 0.010);
  Engine engine2(&net2, 1.0);
  Monitor a(engine_.get(), MonitorOptions{1.0, 1.0, 1.0, /*noise=*/0.1, 7});
  Monitor b(&engine2, MonitorOptions{1.0, 1.0, 1.0, /*noise=*/0.1, 7});
  for (int i = 0; i < 20; ++i) {
    engine_->Inject(SourceTuple(0.5, 0.0), 0.0);
    engine2.Inject(SourceTuple(0.5, 0.0), 0.0);
  }
  engine_->AdvanceTo(1.0);
  engine2.AdvanceTo(1.0);
  EXPECT_DOUBLE_EQ(a.Sample(1.0, 20, 2.0).cost, b.Sample(1.0, 20, 2.0).cost);
}

TEST_F(MonitorFixture, EstimationNoisePerturbsCost) {
  Monitor mon(engine_.get(), MonitorOptions{1.0, 1.0, 1.0, /*noise=*/0.2, 7});
  for (int i = 0; i < 20; ++i) engine_->Inject(SourceTuple(0.5, 0.0), 0.0);
  engine_->AdvanceTo(1.0);
  double c = mon.Sample(1.0, 20, 2.0).cost;
  EXPECT_NE(c, 0.010);
  EXPECT_GT(c, 0.005);
  EXPECT_LT(c, 0.020);
}

TEST_F(MonitorFixture, TargetDelayStamped) {
  Monitor mon(engine_.get(), MonitorOptions{1.0, 1.0, 1.0, 0.0, 1});
  EXPECT_DOUBLE_EQ(mon.Sample(1.0, 0, 3.5).target_delay, 3.5);
}

TEST(MonitorDeathTest, OfferedCounterMustBeMonotone) {
  QueryNetwork net;
  BuildUniformChain(&net, 3, 0.003);
  Engine engine(&net, 1.0);
  Monitor mon(&engine, MonitorOptions{1.0, 1.0, 1.0, 0.0, 1});
  mon.Sample(1.0, 10, 2.0);
  EXPECT_DEATH(mon.Sample(2.0, 5, 2.0), "backwards");
}

}  // namespace
}  // namespace ctrlshed
