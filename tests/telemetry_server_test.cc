#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include "telemetry/prom_export.h"
#include "telemetry/server.h"

namespace ctrlshed {
namespace {

// ---------------------------------------------------------------------------
// Loopback client helpers. Plain blocking sockets with a receive timeout:
// the server under test is nonblocking, the test client does not need to be.

int ConnectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(0, ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)))
      << std::strerror(errno);
  return fd;
}

void SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    ASSERT_GT(n, 0) << std::strerror(errno);
    off += static_cast<size_t>(n);
  }
}

/// One full HTTP exchange: the server closes non-SSE responses after the
/// flush, so reading to EOF yields the complete response.
std::string Fetch(int port, const std::string& request) {
  const int fd = ConnectTo(port);
  SendAll(fd, request);
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string Get(int port, const std::string& path) {
  return Fetch(port,
               "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n");
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Reads from an open SSE connection until the buffer holds `frames`
/// complete `data: ...\n\n` frames (or the deadline passes).
std::string ReadFrames(int fd, size_t frames, double timeout_s = 5.0) {
  std::string out;
  char buf[4096];
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (CountOccurrences(out, "\n\n") < frames &&
         std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Prometheus exposition mapping.

TEST(PrometheusName, SanitizesInvalidCharacters) {
  EXPECT_EQ("rt_pump_interval", PrometheusName("rt.pump-interval"));
  EXPECT_EQ("already_fine_09:x", PrometheusName("already_fine_09:x"));
}

TEST(PrometheusName, PrefixesLeadingDigit) {
  EXPECT_EQ("_9lives", PrometheusName("9lives"));
}

TEST(PrometheusName, EmptyBecomesUnderscore) {
  EXPECT_EQ("_", PrometheusName(""));
}

TEST(PrometheusText, CountersGetTotalSuffix) {
  MetricsSnapshot snap;
  snap.counters["rt.offered"] = 42;
  std::ostringstream out;
  WritePrometheusText(snap, out);
  EXPECT_NE(out.str().find("# TYPE rt_offered_total counter\n"),
            std::string::npos);
  EXPECT_NE(out.str().find("rt_offered_total 42\n"), std::string::npos);
}

TEST(PrometheusText, ShardMetricsFoldIntoLabeledFamily) {
  MetricsSnapshot snap;
  snap.gauges["rt.shard0.queue"] = 3.5;
  snap.gauges["rt.shard1.queue"] = 7.0;
  std::ostringstream out;
  WritePrometheusText(snap, out);
  const std::string text = out.str();
  // One family, one # TYPE line, two labeled samples.
  EXPECT_EQ(1u, CountOccurrences(text, "# TYPE rt_shard_queue gauge\n"));
  EXPECT_NE(text.find("rt_shard_queue{shard=\"0\"} 3.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("rt_shard_queue{shard=\"1\"} 7\n"), std::string::npos);
}

TEST(PrometheusText, OperatorCountersFoldIntoLabeledFamily) {
  MetricsSnapshot snap;
  snap.counters["engine.op.filter_a.processed"] = 10;
  snap.counters["engine.op.join.processed"] = 20;
  std::ostringstream out;
  WritePrometheusText(snap, out);
  const std::string text = out.str();
  EXPECT_EQ(1u, CountOccurrences(
                    text, "# TYPE engine_op_processed_total counter\n"));
  EXPECT_NE(text.find("engine_op_processed_total{op=\"filter_a\"} 10\n"),
            std::string::npos);
  EXPECT_NE(text.find("engine_op_processed_total{op=\"join\"} 20\n"),
            std::string::npos);
}

TEST(PrometheusText, HistogramsRenderAsSummaries) {
  MetricsSnapshot snap;
  MetricsSnapshot::HistogramStats h;
  h.count = 4;
  h.sum = 2.0;
  // Exactly representable doubles, so the %.17g output is the short form.
  h.p50 = 0.5;
  h.p95 = 0.75;
  h.p99 = 1.25;
  snap.histograms["rt.pump.interval"] = h;
  std::ostringstream out;
  WritePrometheusText(snap, out);
  const std::string text = out.str();
  EXPECT_EQ(1u, CountOccurrences(text, "# TYPE rt_pump_interval summary\n"));
  EXPECT_NE(text.find("rt_pump_interval{quantile=\"0.5\"} 0.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("rt_pump_interval{quantile=\"0.95\"} 0.75\n"),
            std::string::npos);
  EXPECT_NE(text.find("rt_pump_interval_sum 2\n"), std::string::npos);
  EXPECT_NE(text.find("rt_pump_interval_count 4\n"), std::string::npos);
}

TEST(PrometheusText, ShardHistogramsMergeQuantileIntoLabelSet) {
  // Per-shard histograms must fold into ONE summary family with the
  // quantile label spliced into the shard label set, not N families.
  MetricsSnapshot snap;
  MetricsSnapshot::HistogramStats h0;
  h0.count = 2;
  h0.sum = 1.0;
  h0.p50 = 0.25;
  h0.p95 = 0.5;
  h0.p99 = 0.5;
  MetricsSnapshot::HistogramStats h1;
  h1.count = 6;
  h1.sum = 3.0;
  h1.p50 = 0.125;
  h1.p95 = 0.75;
  h1.p99 = 1.5;
  snap.histograms["rt.shard0.pump_interval_s"] = h0;
  snap.histograms["rt.shard1.pump_interval_s"] = h1;
  std::ostringstream out;
  WritePrometheusText(snap, out);
  const std::string text = out.str();

  EXPECT_EQ(1u, CountOccurrences(
                    text, "# TYPE rt_shard_pump_interval_s summary\n"));
  EXPECT_NE(
      text.find("rt_shard_pump_interval_s{shard=\"0\",quantile=\"0.5\"} 0.25\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("rt_shard_pump_interval_s{shard=\"1\",quantile=\"0.99\"} 1.5\n"),
      std::string::npos);
  EXPECT_NE(text.find("rt_shard_pump_interval_s_sum{shard=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rt_shard_pump_interval_s_count{shard=\"1\"} 6\n"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Live server endpoints.

TEST(TelemetryServer, BindsEphemeralPort) {
  MetricsRegistry registry;
  TelemetryServer server(&registry, {});
  server.Start();
  EXPECT_GT(server.port(), 0);
  server.Stop();
}

TEST(TelemetryServer, MetricsEndpointServesRegistry) {
  MetricsRegistry registry;
  registry.GetGauge("rt.shard0.queue")->Set(12.0);
  registry.GetCounter("rt.offered")->Add(99);
  TelemetryServer server(&registry, {});
  server.Start();
  const std::string response = Get(server.port(), "/metrics");
  server.Stop();
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("# TYPE rt_shard_queue gauge"), std::string::npos);
  EXPECT_NE(response.find("rt_shard_queue{shard=\"0\"} 12"),
            std::string::npos);
  EXPECT_NE(response.find("rt_offered_total 99"), std::string::npos);
}

TEST(TelemetryServer, StatusMergesAppCallback) {
  MetricsRegistry registry;
  TelemetryServer server(&registry, {});
  server.SetStatusCallback([] { return std::string("{\"mode\":\"test\"}"); });
  server.Start();
  const std::string response = Get(server.port(), "/status");
  server.Stop();
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(response.find("\"sse\":"), std::string::npos);
  EXPECT_NE(response.find("\"app\":{\"mode\":\"test\"}"), std::string::npos);
}

TEST(TelemetryServer, DashboardAndErrorRoutes) {
  MetricsRegistry registry;
  TelemetryServer server(&registry, {});
  server.Start();
  const std::string root = Get(server.port(), "/");
  const std::string missing = Get(server.port(), "/nope");
  const std::string post = Fetch(
      server.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  server.Stop();
  EXPECT_NE(root.find("text/html"), std::string::npos);
  EXPECT_NE(root.find("EventSource"), std::string::npos);
  EXPECT_NE(missing.find("404"), std::string::npos);
  EXPECT_NE(post.find("405"), std::string::npos);
}

TEST(TelemetryServer, SseReplaysHistoryThenStreamsLive) {
  MetricsRegistry registry;
  TelemetryServer server(&registry, {});
  server.Start();
  server.PublishTimelineRow("{\"k\":1}");
  server.PublishTimelineRow("{\"k\":2}");

  const int fd = ConnectTo(server.port());
  SendAll(fd, "GET /timeline HTTP/1.1\r\nHost: x\r\n\r\n");
  const std::string replay = ReadFrames(fd, 2);
  EXPECT_NE(replay.find("text/event-stream"), std::string::npos);
  EXPECT_NE(replay.find("data: {\"k\":1}\n\n"), std::string::npos);
  EXPECT_NE(replay.find("data: {\"k\":2}\n\n"), std::string::npos);

  server.PublishTimelineRow("{\"k\":3}");
  const std::string live = ReadFrames(fd, 1);
  EXPECT_NE(live.find("data: {\"k\":3}\n\n"), std::string::npos);

  ::close(fd);
  server.Stop();
  EXPECT_EQ(3u, server.rows_published());
  EXPECT_EQ(0u, server.rows_dropped());
  EXPECT_EQ(1u, server.clients_accepted());
}

TEST(TelemetryServer, HistoryIsBounded) {
  MetricsRegistry registry;
  TelemetryServerOptions options;
  options.history_rows = 2;
  TelemetryServer server(&registry, options);
  server.Start();
  server.PublishTimelineRow("{\"k\":1}");
  server.PublishTimelineRow("{\"k\":2}");
  server.PublishTimelineRow("{\"k\":3}");

  const int fd = ConnectTo(server.port());
  SendAll(fd, "GET /timeline HTTP/1.1\r\nHost: x\r\n\r\n");
  const std::string replay = ReadFrames(fd, 2);
  ::close(fd);
  server.Stop();
  EXPECT_EQ(replay.find("data: {\"k\":1}\n\n"), std::string::npos);
  EXPECT_NE(replay.find("data: {\"k\":2}\n\n"), std::string::npos);
  EXPECT_NE(replay.find("data: {\"k\":3}\n\n"), std::string::npos);
}

TEST(TelemetryServer, SlowClientDropsRowsWithoutBlockingPublisher) {
  MetricsRegistry registry;
  TelemetryServerOptions options;
  options.client_buffer_bytes = 4096;  // tiny pending-write cap
  options.sndbuf_bytes = 4096;         // tiny kernel buffer too
  TelemetryServer server(&registry, options);
  server.Start();

  // Subscribe, read just the SSE response headers, then stop reading: the
  // kernel buffer and the 4 KiB server-side buffer fill, after which every
  // publish must drop for this client instead of blocking.
  const int fd = ConnectTo(server.port());
  SendAll(fd, "GET /timeline HTTP/1.1\r\nHost: x\r\n\r\n");
  char buf[512];
  ASSERT_GT(::recv(fd, buf, sizeof(buf), 0), 0);

  const std::string fat_row = "{\"pad\":\"" + std::string(512, 'x') + "\"}";
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.rows_dropped() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    server.PublishTimelineRow(fat_row);
  }
  EXPECT_GT(server.rows_dropped(), 0u);

  // The publisher stayed responsive; the metrics endpoint exposes the
  // drop counter the publisher just bumped.
  const std::string metrics = Get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("telemetry_sse_rows_dropped_total"),
            std::string::npos);

  ::close(fd);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Hardened deployment: auth token, non-loopback refusal, /fleet.

TEST(TelemetryServer, TokenGatesEveryRoute) {
  MetricsRegistry registry;
  TelemetryServerOptions options;
  options.auth_token = "s3cret";
  TelemetryServer server(&registry, options);
  server.Start();
  const int port = server.port();

  // No credentials -> 401 (and no registry content leaks).
  const std::string denied = Get(port, "/metrics");
  EXPECT_NE(denied.find("401"), std::string::npos);
  EXPECT_EQ(denied.find("# TYPE"), std::string::npos);

  // Wrong token -> 401.
  const std::string wrong =
      Fetch(port,
            "GET /metrics HTTP/1.1\r\nHost: x\r\n"
            "Authorization: Bearer nope\r\n\r\n");
  EXPECT_NE(wrong.find("401"), std::string::npos);

  // Bearer header -> 200.
  const std::string bearer =
      Fetch(port,
            "GET /metrics HTTP/1.1\r\nHost: x\r\n"
            "Authorization: Bearer s3cret\r\n\r\n");
  EXPECT_NE(bearer.find("200"), std::string::npos);

  // Query token (what EventSource/the dashboard must use) -> 200.
  const std::string query = Get(port, "/status?token=s3cret");
  EXPECT_NE(query.find("200"), std::string::npos);

  server.Stop();
}

TEST(TelemetryServerDeathTest, NonLoopbackBindWithoutTokenRefused) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MetricsRegistry registry;
  TelemetryServerOptions options;
  options.bind_address = "0.0.0.0";
  EXPECT_DEATH(
      {
        TelemetryServer server(&registry, options);
        server.Start();
      },
      "auth token");
}

TEST(TelemetryServer, FleetRouteServesCallbackOrEmptyDefault) {
  MetricsRegistry registry;
  TelemetryServer server(&registry, {});
  server.Start();
  const std::string empty = Get(server.port(), "/fleet");
  EXPECT_NE(empty.find("200"), std::string::npos);
  EXPECT_NE(empty.find("application/json"), std::string::npos);
  EXPECT_NE(empty.find("{\"nodes\":[]}"), std::string::npos);

  server.SetFleetCallback(
      [] { return std::string("{\"nodes\":[{\"id\":0}]}"); });
  const std::string live = Get(server.port(), "/fleet");
  EXPECT_NE(live.find("{\"nodes\":[{\"id\":0}]}"), std::string::npos);
  server.Stop();
}

TEST(TelemetryServer, StopIsIdempotentAndRestartUnsupportedPathsSafe) {
  MetricsRegistry registry;
  TelemetryServer server(&registry, {});
  server.Start();
  server.PublishTimelineRow("{\"k\":1}");
  server.Stop();
  server.Stop();  // second stop is a no-op
  // Publishing after stop must not crash (rows go to history only).
  server.PublishTimelineRow("{\"k\":2}");
}

}  // namespace
}  // namespace ctrlshed
