#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/engine.h"
#include "engine/query_network.h"
#include "runner/networks.h"

namespace ctrlshed {
namespace {

Tuple SourceTuple(double value, SimTime arrival, int source = 0) {
  Tuple t;
  t.source = source;
  t.arrival_time = arrival;
  t.value = value;
  return t;
}

class UniformChainEngine : public ::testing::Test {
 protected:
  void SetUp() override {
    BuildUniformChain(&net_, /*num_ops=*/5, /*target_entry_cost=*/0.010);
  }
  QueryNetwork net_;
};

TEST_F(UniformChainEngine, DelayModelEq1HoldsExactly) {
  // Paper Eq. (1): with q tuples ahead, a tuple's delay is (q+1) c.
  Engine engine(&net_, /*headroom=*/1.0);
  std::vector<double> delays;
  engine.SetDepartureCallback([&](const Departure& d) {
    delays.push_back(d.depart_time - d.arrival_time);
  });
  const int kN = 20;
  for (int i = 0; i < kN; ++i) engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  engine.AdvanceTo(10.0);
  ASSERT_EQ(delays.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_NEAR(delays[static_cast<size_t>(i)], (i + 1) * 0.010, 1e-9)
        << "tuple " << i;
  }
}

TEST_F(UniformChainEngine, HeadroomStretchesDelays) {
  Engine engine(&net_, /*headroom=*/0.5);
  std::vector<double> delays;
  engine.SetDepartureCallback([&](const Departure& d) {
    delays.push_back(d.depart_time - d.arrival_time);
  });
  engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  engine.AdvanceTo(10.0);
  ASSERT_EQ(delays.size(), 1u);
  EXPECT_NEAR(delays[0], 0.010 / 0.5, 1e-9);
}

TEST_F(UniformChainEngine, FifoOrderPreserved) {
  Engine engine(&net_, 1.0);
  std::vector<double> order;
  engine.SetDepartureCallback(
      [&](const Departure& d) { order.push_back(d.arrival_time); });
  for (int i = 0; i < 10; ++i) {
    engine.Inject(SourceTuple(0.5, 0.01 * i), 0.01 * i);
    engine.AdvanceTo(0.01 * (i + 1));
  }
  engine.AdvanceTo(10.0);
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 1; i < order.size(); ++i) EXPECT_GT(order[i], order[i - 1]);
}

TEST_F(UniformChainEngine, VirtualQueueCountsOutstandingTuples) {
  Engine engine(&net_, 1.0);
  EXPECT_DOUBLE_EQ(engine.VirtualQueueLength(), 0.0);
  for (int i = 0; i < 7; ++i) engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  EXPECT_NEAR(engine.VirtualQueueLength(), 7.0, 1e-9);
  engine.AdvanceTo(100.0);
  EXPECT_NEAR(engine.VirtualQueueLength(), 0.0, 1e-9);
}

TEST_F(UniformChainEngine, ConservationAdmittedEqualsDepartedPlusQueued) {
  Engine engine(&net_, 1.0);
  for (int i = 0; i < 50; ++i) engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  engine.AdvanceTo(0.2);  // partially drained
  const EngineCounters& c = engine.counters();
  EXPECT_EQ(c.admitted, 50u);
  EXPECT_GT(c.departed, 0u);
  EXPECT_LT(c.departed, 50u);
  // On the no-filter chain, queued instances = outstanding lineages.
  EXPECT_EQ(c.admitted - c.departed, engine.QueuedTuples());
}

TEST_F(UniformChainEngine, IdleEngineStartsServiceAtArrival) {
  Engine engine(&net_, 1.0);
  double depart = -1.0;
  engine.SetDepartureCallback([&](const Departure& d) { depart = d.depart_time; });
  engine.AdvanceTo(5.0);  // idle until t=5
  engine.Inject(SourceTuple(0.5, 5.0), 5.0);
  engine.AdvanceTo(10.0);
  EXPECT_NEAR(depart, 5.010, 1e-9);
}

TEST_F(UniformChainEngine, NonPreemptiveOvershootIsBounded) {
  Engine engine(&net_, 1.0);
  engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  engine.AdvanceTo(0.001);  // less than one invocation (0.002 each)
  // The CPU may finish the invocation it started, but no more than that.
  EXPECT_LE(engine.cpu_clock(), 0.002 + 1e-12);
}

TEST_F(UniformChainEngine, CostMultiplierScalesDelay) {
  Engine engine(&net_, 1.0);
  engine.SetCostMultiplier([](SimTime) { return 3.0; });
  double delay = -1.0;
  engine.SetDepartureCallback(
      [&](const Departure& d) { delay = d.depart_time - d.arrival_time; });
  engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  engine.AdvanceTo(10.0);
  EXPECT_NEAR(delay, 0.030, 1e-9);
}

TEST_F(UniformChainEngine, BusySecondsTracksWorkDone) {
  Engine engine(&net_, 0.97);
  for (int i = 0; i < 10; ++i) engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  engine.AdvanceTo(100.0);
  EXPECT_NEAR(engine.counters().busy_seconds, 10 * 0.010, 1e-9);
  EXPECT_NEAR(engine.counters().drained_base_load, 10 * 0.010, 1e-9);
}

TEST_F(UniformChainEngine, ShedFromQueuesRemovesLoadAndCountsLoss) {
  Engine engine(&net_, 1.0);
  Rng rng(1);
  for (int i = 0; i < 30; ++i) engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  const double before = engine.OutstandingBaseLoad();
  const double removed = engine.ShedFromQueues(0.1, rng);
  EXPECT_GE(removed, 0.1);
  EXPECT_NEAR(engine.OutstandingBaseLoad(), before - removed, 1e-9);

  uint64_t departures = 0;
  engine.SetDepartureCallback([&](const Departure&) { ++departures; });
  engine.AdvanceTo(100.0);
  const EngineCounters& c = engine.counters();
  EXPECT_GT(c.shed_lineages, 0u);
  EXPECT_EQ(c.departed + c.shed_lineages, 30u);
  // Shed tuples must not fire the departure callback.
  EXPECT_EQ(departures, c.departed);
}

TEST_F(UniformChainEngine, ShedMoreThanAvailableDrainsEverything) {
  Engine engine(&net_, 1.0);
  Rng rng(1);
  for (int i = 0; i < 5; ++i) engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  const double removed = engine.ShedFromQueues(1e9, rng);
  EXPECT_NEAR(removed, 5 * 0.010, 1e-9);
  EXPECT_EQ(engine.QueuedTuples(), 0u);
  EXPECT_EQ(engine.counters().shed_lineages, 5u);
}

TEST(EngineFilterTest, FilteredTuplesDepartAsFiltered) {
  QueryNetwork net;
  auto* f = net.Add(std::make_unique<FilterOp>("f", 0.001, 0.5));
  auto* m = net.Add(std::make_unique<MapOp>("m", 0.001));
  f->ConnectTo(m);
  net.AddEntry(0, f);
  net.Finalize();
  Engine engine(&net, 1.0);

  int filtered = 0, output = 0;
  engine.SetDepartureCallback([&](const Departure& d) {
    if (d.kind == DepartureKind::kFiltered) ++filtered;
    if (d.kind == DepartureKind::kOutput) ++output;
  });
  Rng rng(3);
  const int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    engine.Inject(SourceTuple(rng.Uniform(), 0.0), 0.0);
  }
  engine.AdvanceTo(1000.0);
  EXPECT_EQ(filtered + output, kN);
  EXPECT_NEAR(static_cast<double>(output) / kN, 0.5, 0.05);
  EXPECT_EQ(engine.counters().departed, static_cast<uint64_t>(kN));
}

TEST(EngineForkTest, ForkedLineageDepartsOnceAtLongestPath) {
  // a forks to fast branch (b) and slow branch (c -> d); the lineage must
  // be reported once, at the later departure.
  QueryNetwork net;
  auto* a = net.Add(std::make_unique<MapOp>("a", 0.001));
  auto* b = net.Add(std::make_unique<MapOp>("b", 0.001));
  auto* c = net.Add(std::make_unique<MapOp>("c", 0.001));
  auto* d = net.Add(std::make_unique<MapOp>("d", 0.004));
  a->ConnectTo(b);
  a->ConnectTo(c);
  c->ConnectTo(d);
  net.AddEntry(0, a);
  net.Finalize();
  Engine engine(&net, 1.0);

  std::vector<Departure> departures;
  engine.SetDepartureCallback(
      [&](const Departure& d2) { departures.push_back(d2); });
  engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  engine.AdvanceTo(10.0);
  ASSERT_EQ(departures.size(), 1u);
  // Longest path: a + c + d = 6 ms, plus round-robin interleaving with b.
  EXPECT_GE(departures[0].depart_time, 0.006);
  EXPECT_EQ(engine.counters().admitted, 1u);
  EXPECT_EQ(engine.counters().departed, 1u);
}

TEST(EngineDerivedTest, AggregateOutputsReportedAsDerived) {
  QueryNetwork net;
  auto* agg = net.Add(std::make_unique<WindowAggregateOp>(
      "agg", 0.001, 4, WindowAggregateOp::Kind::kMean));
  auto* m = net.Add(std::make_unique<MapOp>("m", 0.001));
  agg->ConnectTo(m);
  net.AddEntry(0, agg);
  net.Finalize();
  Engine engine(&net, 1.0);

  int derived = 0, source_departs = 0;
  engine.SetDepartureCallback([&](const Departure& d) {
    if (d.derived) {
      ++derived;
    } else {
      ++source_departs;
    }
  });
  for (int i = 0; i < 8; ++i) engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  engine.AdvanceTo(10.0);
  EXPECT_EQ(source_departs, 8);  // absorbed into windows
  EXPECT_EQ(derived, 2);         // two window closings reach the sink
  EXPECT_EQ(engine.counters().departed, 8u);
}

TEST(EngineMultiEntryTest, StreamEnteringTwoPointsForksAtEntry) {
  QueryNetwork net;
  auto* a = net.Add(std::make_unique<MapOp>("a", 0.001));
  auto* b = net.Add(std::make_unique<MapOp>("b", 0.002));
  net.AddEntry(0, a);
  net.AddEntry(0, b);
  net.Finalize();
  Engine engine(&net, 1.0);

  int departures = 0;
  engine.SetDepartureCallback([&](const Departure&) { ++departures; });
  engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  EXPECT_EQ(engine.QueuedTuples(), 2u);
  engine.AdvanceTo(1.0);
  EXPECT_EQ(departures, 1);  // one lineage, longest path reports
  EXPECT_EQ(engine.counters().admitted, 1u);
}

TEST(EngineRoundRobinTest, BacklogDrainsAtServiceRate) {
  QueryNetwork net;
  BuildUniformChain(&net, 4, 0.005);
  Engine engine(&net, 1.0);
  // 100 tuples of 5 ms each = 0.5 s of work.
  for (int i = 0; i < 100; ++i) engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  engine.AdvanceTo(0.25);
  EXPECT_NEAR(static_cast<double>(engine.counters().departed), 50.0, 3.0);
  engine.AdvanceTo(0.75);
  EXPECT_EQ(engine.counters().departed, 100u);
}

TEST_F(UniformChainEngine, ShedMostCostlyDropsNewestFromEntryQueue) {
  // All tuples sit in the entry queue (full remaining cost), so kMostCostly
  // must shed there, newest arrivals first.
  Engine engine(&net_, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    engine.Inject(SourceTuple(0.5, 0.001 * i), 0.0);
  }
  const double removed = engine.ShedFromQueues(
      0.025, rng, Engine::QueueVictimPolicy::kMostCostly);
  EXPECT_NEAR(removed, 3 * 0.010, 1e-9);  // ceil(0.025 / 0.010) tuples
  EXPECT_EQ(engine.counters().shed_lineages, 3u);

  std::vector<double> survivors;
  engine.SetDepartureCallback(
      [&](const Departure& d) { survivors.push_back(d.arrival_time); });
  engine.AdvanceTo(100.0);
  ASSERT_EQ(survivors.size(), 7u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_NEAR(survivors[static_cast<size_t>(i)], 0.001 * i, 1e-12)
        << "newest-first shedding must keep the earliest arrivals";
  }
}

/// Records which operator queues in-network shedding dropped from.
class DropRecorder : public EngineObserver {
 public:
  void OnInvocationStart(const OperatorBase&) override {}
  void OnQueueDrop(const OperatorBase& op) override {
    drops.push_back(op.name());
  }
  std::vector<std::string> drops;
};

TEST(EngineShedPolicyTest, MostCostlyPicksQueueWithHighestRemainingCost) {
  // a (6 ms) -> b (4 ms): a tuple queued at `a` carries 10 ms of remaining
  // work, a tuple queued at `b` only 4 ms, so kMostCostly must victimize
  // `a`'s queue while it is non-empty.
  QueryNetwork net;
  auto* a = net.Add(std::make_unique<MapOp>("a", 0.006));
  auto* b = net.Add(std::make_unique<MapOp>("b", 0.004));
  a->ConnectTo(b);
  net.AddEntry(0, a);
  net.Finalize();
  Engine engine(&net, 1.0);
  DropRecorder recorder;
  engine.SetObserver(&recorder);

  for (int i = 0; i < 4; ++i) engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  engine.AdvanceTo(0.006);  // one invocation of `a`: queues now a=3, b=1
  ASSERT_EQ(engine.QueuedTuples(), 4u);
  const double before = engine.OutstandingBaseLoad();
  EXPECT_NEAR(before, 3 * 0.010 + 0.004, 1e-9);

  Rng rng(2);
  const double removed = engine.ShedFromQueues(
      0.015, rng, Engine::QueueVictimPolicy::kMostCostly);
  EXPECT_NEAR(removed, 2 * 0.010, 1e-9);
  EXPECT_NEAR(engine.OutstandingBaseLoad(), before - removed, 1e-9);
  ASSERT_EQ(recorder.drops.size(), 2u);
  EXPECT_EQ(recorder.drops[0], "a");
  EXPECT_EQ(recorder.drops[1], "a");
}

TEST_F(UniformChainEngine, ShedFromEmptyNetworkReturnsZero) {
  Engine engine(&net_, 1.0);
  Rng rng(3);
  EXPECT_DOUBLE_EQ(engine.ShedFromQueues(1.0, rng), 0.0);
  EXPECT_DOUBLE_EQ(engine.ShedFromQueues(
                       1.0, rng, Engine::QueueVictimPolicy::kMostCostly),
                   0.0);
  EXPECT_EQ(engine.counters().shed_lineages, 0u);
  EXPECT_DOUBLE_EQ(engine.counters().shed_base_load, 0.0);
}

TEST_F(UniformChainEngine, ShedAfterFullDrainReturnsZero) {
  // Once every queue has drained there is nothing left to victimize, no
  // matter the budget: the shedder must not touch departed work.
  Engine engine(&net_, 1.0);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  engine.AdvanceTo(100.0);
  ASSERT_EQ(engine.QueuedTuples(), 0u);
  EXPECT_DOUBLE_EQ(engine.ShedFromQueues(1.0, rng), 0.0);
  EXPECT_EQ(engine.counters().shed_lineages, 0u);
  EXPECT_EQ(engine.counters().departed, 10u);
}

TEST(EngineShedPolicyTest, MostCostlyTieBreaksToLowestOperatorIndex) {
  // Two disjoint single-op chains with identical remaining cost: the
  // first-max scan must deterministically victimize the lower operator
  // index while its queue is non-empty, tie or not.
  QueryNetwork net;
  auto* a = net.Add(std::make_unique<MapOp>("a", 0.005));
  auto* b = net.Add(std::make_unique<MapOp>("b", 0.005));
  net.AddEntry(0, a);
  net.AddEntry(1, b);
  net.Finalize();
  Engine engine(&net, 1.0);
  DropRecorder recorder;
  engine.SetObserver(&recorder);
  for (int i = 0; i < 3; ++i) {
    engine.Inject(SourceTuple(0.5, 0.0, /*source=*/0), 0.0);
    engine.Inject(SourceTuple(0.5, 0.0, /*source=*/1), 0.0);
  }

  Rng rng(2);
  // Budget covers exactly two victims: both must come from `a`.
  const double removed = engine.ShedFromQueues(
      0.008, rng, Engine::QueueVictimPolicy::kMostCostly);
  EXPECT_NEAR(removed, 2 * 0.005, 1e-12);
  ASSERT_EQ(recorder.drops.size(), 2u);
  EXPECT_EQ(recorder.drops[0], "a");
  EXPECT_EQ(recorder.drops[1], "a");

  // Drain `a` completely: the tie is gone and `b` becomes the only victim.
  const double rest = engine.ShedFromQueues(
      1.0, rng, Engine::QueueVictimPolicy::kMostCostly);
  EXPECT_NEAR(rest, 0.005 + 3 * 0.005, 1e-12);
  EXPECT_EQ(engine.QueuedTuples(), 0u);
  EXPECT_EQ(recorder.drops.back(), "b");
}

TEST_F(UniformChainEngine, BudgetExhaustionMidQueueOverdeliversOneVictim) {
  // The loop sheds whole tuples until the budget is met, so the realized
  // removal may overshoot by at most one victim's remaining cost — the
  // executor reports the overshoot back through its return value.
  Engine engine(&net_, 1.0);
  Rng rng(5);
  for (int i = 0; i < 10; ++i) engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  const double removed = engine.ShedFromQueues(0.014, rng);
  EXPECT_GE(removed, 0.014);
  EXPECT_LE(removed, 0.014 + 0.010 + 1e-12);
  EXPECT_EQ(engine.counters().shed_lineages, 2u);  // ceil(0.014 / 0.010)
  EXPECT_EQ(engine.QueuedTuples(), 8u);
}

TEST(EngineInjectBatchTest, MatchesSequentialReplayBitForBit) {
  // InjectBatch is the rt pump's arrival-ordered replay loop as one call;
  // it must reproduce the sequential AdvanceTo+Inject loop exactly,
  // including floating-point clock positions and departure stamps.
  QueryNetwork net_seq, net_batch;
  BuildUniformChain(&net_seq, 5, 0.010);
  BuildUniformChain(&net_batch, 5, 0.010);
  Engine seq(&net_seq, 0.97);
  Engine batch(&net_batch, 0.97);

  std::vector<Tuple> tuples;
  for (int i = 0; i < 100; ++i) {
    tuples.push_back(SourceTuple(0.25 + 0.005 * (i % 7), 0.0037 * i));
  }

  std::vector<double> seq_departs, batch_departs;
  seq.SetDepartureCallback(
      [&](const Departure& d) { seq_departs.push_back(d.depart_time); });
  batch.SetDepartureCallback(
      [&](const Departure& d) { batch_departs.push_back(d.depart_time); });

  for (const Tuple& t : tuples) {
    seq.AdvanceTo(t.arrival_time);
    seq.Inject(t, t.arrival_time);
  }
  batch.InjectBatch(tuples.data(), tuples.size());

  EXPECT_EQ(seq.cpu_clock(), batch.cpu_clock());
  seq.AdvanceTo(100.0);
  batch.AdvanceTo(100.0);

  EXPECT_EQ(seq.cpu_clock(), batch.cpu_clock());
  EXPECT_EQ(seq.counters().admitted, batch.counters().admitted);
  EXPECT_EQ(seq.counters().departed, batch.counters().departed);
  EXPECT_EQ(seq.counters().invocations, batch.counters().invocations);
  EXPECT_EQ(seq.counters().busy_seconds, batch.counters().busy_seconds);
  ASSERT_EQ(seq_departs.size(), batch_departs.size());
  for (size_t i = 0; i < seq_departs.size(); ++i) {
    EXPECT_EQ(seq_departs[i], batch_departs[i]) << "departure " << i;
  }
}

TEST(EngineQuantumTest, TrainSchedulingPreservesWorkTotals) {
  // Quantum > 1 coarsens the interleaving but must not change how much
  // work is done or how many tuples depart.
  QueryNetwork net1, net4;
  BuildUniformChain(&net1, 5, 0.010);
  BuildUniformChain(&net4, 5, 0.010);
  Engine e1(&net1, 0.97);
  Engine e4(&net4, 0.97);
  e4.scheduler().set_quantum(4);

  for (int i = 0; i < 50; ++i) {
    e1.Inject(SourceTuple(0.5, 0.0), 0.0);
    e4.Inject(SourceTuple(0.5, 0.0), 0.0);
  }
  e1.AdvanceTo(100.0);
  e4.AdvanceTo(100.0);

  EXPECT_EQ(e1.counters().departed, 50u);
  EXPECT_EQ(e4.counters().departed, 50u);
  EXPECT_EQ(e1.counters().invocations, e4.counters().invocations);
  EXPECT_NEAR(e1.counters().busy_seconds, e4.counters().busy_seconds, 1e-9);
  EXPECT_NEAR(e1.counters().drained_base_load, e4.counters().drained_base_load,
              1e-9);
  EXPECT_EQ(e4.QueuedTuples(), 0u);
}

/// Counts batch-level observer callbacks (the telemetry calling convention:
/// one OnInvocationStart + one OnInvocationBatch per train).
class BatchCounter : public EngineObserver {
 public:
  void OnInvocationStart(const OperatorBase&) override { ++starts; }
  void OnInvocationBatch(const OperatorBase&, uint64_t n,
                         double cost_seconds) override {
    ++batches;
    invocations += n;
    max_n = n > max_n ? n : max_n;
    total_cost += cost_seconds;
  }
  void OnQueueDrop(const OperatorBase&) override {}
  uint64_t starts = 0;
  uint64_t batches = 0;
  uint64_t invocations = 0;
  uint64_t max_n = 0;
  double total_cost = 0.0;
};

/// Relies on the default OnInvocationBatch fan-out to OnInvocationEnd.
class PerInvocationCounter : public EngineObserver {
 public:
  void OnInvocationStart(const OperatorBase&) override {}
  void OnInvocationEnd(const OperatorBase&, double cost_seconds) override {
    ++ends;
    total_cost += cost_seconds;
  }
  void OnQueueDrop(const OperatorBase&) override {}
  uint64_t ends = 0;
  double total_cost = 0.0;
};

TEST_F(UniformChainEngine, ObserverBatchCallbackAccountsEveryInvocation) {
  Engine engine(&net_, 1.0);
  engine.scheduler().set_quantum(3);
  BatchCounter counter;
  engine.SetObserver(&counter);
  for (int i = 0; i < 20; ++i) engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  engine.AdvanceTo(100.0);

  EXPECT_EQ(counter.invocations, engine.counters().invocations);
  EXPECT_EQ(counter.starts, counter.batches);
  EXPECT_GE(counter.max_n, 2u);  // trains actually formed
  EXPECT_LE(counter.max_n, 3u);  // and never exceeded the quantum
  EXPECT_NEAR(counter.total_cost, engine.counters().busy_seconds, 1e-9);
}

TEST_F(UniformChainEngine, ObserverDefaultFanOutPreservesPerInvocationView) {
  Engine engine(&net_, 1.0);
  engine.scheduler().set_quantum(4);
  PerInvocationCounter counter;
  engine.SetObserver(&counter);
  for (int i = 0; i < 12; ++i) engine.Inject(SourceTuple(0.5, 0.0), 0.0);
  engine.AdvanceTo(100.0);

  EXPECT_EQ(counter.ends, engine.counters().invocations);
  EXPECT_NEAR(counter.total_cost, engine.counters().busy_seconds, 1e-9);
}

TEST(EngineDeathTest, UnfinalizedNetworkAborts) {
  QueryNetwork net;
  auto* a = net.Add(std::make_unique<MapOp>("a", 0.001));
  net.AddEntry(0, a);
  EXPECT_DEATH(Engine(&net, 1.0), "finalized");
}

TEST(EngineDeathTest, BadHeadroomAborts) {
  QueryNetwork net;
  auto* a = net.Add(std::make_unique<MapOp>("a", 0.001));
  net.AddEntry(0, a);
  net.Finalize();
  EXPECT_DEATH(Engine(&net, 0.0), "headroom");
  EXPECT_DEATH(Engine(&net, 1.5), "headroom");
}

}  // namespace
}  // namespace ctrlshed
