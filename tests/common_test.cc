#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "common/series.h"
#include "common/sim_time.h"
#include "common/table_printer.h"

namespace ctrlshed {
namespace {

TEST(SimTimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(Millis(1500.0), 1.5);
  EXPECT_DOUBLE_EQ(Micros(250.0), 0.00025);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeMean) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.1);
}

TEST(RngTest, UniformIntCoversEndpoints) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.Pareto(1.5, 2.0), 2.0);
  }
}

TEST(RngTest, ParetoMeanMatchesTheory) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  // alpha = 3: mean = alpha * xm / (alpha - 1) = 1.5 (finite variance).
  for (int i = 0; i < n; ++i) sum += rng.Pareto(3.0, 1.0);
  EXPECT_NEAR(sum / n, 1.5, 0.02);
}

TEST(RngTest, BoundedParetoWithinBounds) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.BoundedPareto(1.0, 1.0, 12.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 12.0);
  }
}

TEST(RngTest, BoundedParetoHeavierTailForSmallerShape) {
  // Smaller shape = more mass near the upper bound.
  Rng a(19), b(19);
  int high_a = 0, high_b = 0;
  for (int i = 0; i < 50000; ++i) {
    if (a.BoundedPareto(0.3, 1.0, 12.0) > 6.0) ++high_a;
    if (b.BoundedPareto(2.0, 1.0, 12.0) > 6.0) ++high_b;
  }
  EXPECT_GT(high_a, 2 * high_b);
}

TEST(SeriesTest, EmptySeriesStats) {
  TimeSeries s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Stats().count, 0u);
  EXPECT_DOUBLE_EQ(s.Max(), 0.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(SeriesTest, BasicStats) {
  TimeSeries s;
  s.Push(0.0, 1.0);
  s.Push(1.0, 3.0);
  s.Push(2.0, 5.0);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  SummaryStats st = s.Stats();
  EXPECT_DOUBLE_EQ(st.min, 1.0);
  EXPECT_NEAR(st.stddev, std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(SeriesTest, MaxWithAllNegativeValues) {
  TimeSeries s;
  s.Push(0.0, -5.0);
  s.Push(1.0, -2.0);
  EXPECT_DOUBLE_EQ(s.Max(), -2.0);
}

TEST(SeriesTest, SumAboveAndCountAbove) {
  TimeSeries s;
  s.Push(0.0, 1.0);
  s.Push(1.0, 2.5);
  s.Push(2.0, 4.0);
  EXPECT_DOUBLE_EQ(s.SumAbove(2.0), 0.5 + 2.0);
  EXPECT_EQ(s.CountAbove(2.0), 2u);
  EXPECT_EQ(s.CountAbove(10.0), 0u);
}

TEST(SeriesTest, ValuesPreserveOrder) {
  TimeSeries s;
  s.Push(0.0, 9.0);
  s.Push(1.0, 7.0);
  auto v = s.Values();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 9.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(TablePrinterTest, HeaderAndRows) {
  std::ostringstream out;
  TablePrinter t(out, {"a", "b"});
  t.PrintHeader();
  t.PrintRow({1.0, 2.5});
  std::string text = out.str();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("2.5000"), std::string::npos);
}

TEST(TablePrinterTest, StringRows) {
  std::ostringstream out;
  TablePrinter t(out, {"name", "value"});
  t.PrintRow(std::vector<std::string>{"x", "y"});
  EXPECT_NE(out.str().find("x"), std::string::npos);
}

TEST(TablePrinterTest, PrecisionConfigurable) {
  std::ostringstream out;
  TablePrinter t(out, {"v"});
  t.set_precision(1);
  t.PrintRow(std::vector<double>{3.14159});
  EXPECT_NE(out.str().find("3.1"), std::string::npos);
  EXPECT_EQ(out.str().find("3.14"), std::string::npos);
}

TEST(ComputeStatsTest, SingleValue) {
  SummaryStats st = ComputeStats({42.0});
  EXPECT_DOUBLE_EQ(st.min, 42.0);
  EXPECT_DOUBLE_EQ(st.max, 42.0);
  EXPECT_DOUBLE_EQ(st.mean, 42.0);
  EXPECT_DOUBLE_EQ(st.stddev, 0.0);
}

}  // namespace
}  // namespace ctrlshed
