// Unit tests of the controller-side aggregation: per-node stats reports
// folded into one virtual plant (Σ N_i·H_i effective headroom, summed
// counter deltas), the stale-node exclusion/readmission policy, and the
// conservation property of the proportional v(k) fan-out (satellite: the
// per-node slices must reassemble the aggregate command to well under one
// tuple per period).

#include "cluster/cluster_monitor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "control/period_math.h"

namespace ctrlshed {
namespace {

constexpr double kNominalCost = 0.97 / 190.0;

ClusterMonitorOptions Opts() {
  ClusterMonitorOptions o;
  o.period = 1.0;
  o.stale_periods = 3;
  return o;
}

NodeHello Hello(uint32_t id, uint32_t workers, double headroom = 0.97) {
  NodeHello h;
  h.node_id = id;
  h.workers = workers;
  h.headroom = headroom;
  h.nominal_cost = kNominalCost;
  h.period = 1.0;
  return h;
}

NodeStatsReport Report(uint32_t id, uint32_t seq, SimTime now,
                       uint64_t offered, uint64_t admitted, double busy,
                       double queue) {
  NodeStatsReport r;
  r.node_id = id;
  r.seq = seq;
  r.deltas.now = now;
  r.deltas.offered = offered;
  r.deltas.admitted = admitted;
  r.deltas.drained_base_load = busy;  // constant-cost plant: drained == busy
  r.deltas.busy_seconds = busy;
  r.deltas.queue = queue;
  return r;
}

TEST(ClusterMonitorTest, AggregatesTwoNodesLikeHandMath) {
  ClusterMonitor mon(kNominalCost, Opts());
  mon.OnHello(Hello(0, 2), 0.0);
  mon.OnHello(Hello(1, 1), 0.0);
  mon.OnReport(Report(0, 1, 1.0, 200, 150, 100 * kNominalCost, 30.0), 1.0);
  mon.OnReport(Report(1, 1, 1.0, 100, 80, 50 * kNominalCost, 10.0), 1.0);

  PeriodMeasurement m;
  ASSERT_TRUE(mon.Sample(1.0, 2.0, &m));
  EXPECT_EQ(mon.active_count(), 2);
  // Effective headroom is Σ N_i · H_i = 2·0.97 + 1·0.97.
  EXPECT_DOUBLE_EQ(mon.effective_headroom(), 3 * 0.97);
  EXPECT_DOUBLE_EQ(m.fin, 300.0);
  EXPECT_DOUBLE_EQ(m.admitted, 230.0);
  EXPECT_DOUBLE_EQ(m.fout, 150.0);
  EXPECT_DOUBLE_EQ(m.queue, 40.0);
  // Eq. (11) against the aggregate: y_hat = (q+1) c / (Σ N_i H_i).
  EXPECT_NEAR(m.y_hat, 41.0 * m.cost / (3 * 0.97), 1e-12);

  // The per-node decomposition feeding the fan-out.
  ASSERT_EQ(mon.node_fin().size(), 2u);
  EXPECT_DOUBLE_EQ(mon.node_fin()[0], 200.0);
  EXPECT_DOUBLE_EQ(mon.node_fin()[1], 100.0);
  EXPECT_DOUBLE_EQ(mon.node_queues()[0], 30.0);
  EXPECT_DOUBLE_EQ(mon.node_queues()[1], 10.0);
}

TEST(ClusterMonitorTest, SingleNodeMatchesPlainPeriodMathExactly) {
  // The identity contract at its smallest: one node's reported deltas
  // through the cluster monitor == the same deltas through a bare
  // PeriodMath with the node's own plant size. EXPECT_EQ, not NEAR.
  ClusterMonitor mon(kNominalCost, Opts());
  mon.OnHello(Hello(0, 1), 0.0);

  PeriodMathOptions po;
  po.period = 1.0;
  po.headroom = 0.97;
  po.max_headroom = 1.0;
  PeriodMath ref(kNominalCost, po);

  Rng rng(11);
  for (int k = 1; k <= 10; ++k) {
    const SimTime now = static_cast<SimTime>(k);
    const uint64_t offered = static_cast<uint64_t>(rng.UniformInt(50, 400));
    const uint64_t admitted = offered / 2;
    const double busy = static_cast<double>(admitted) * kNominalCost * 0.9;
    const double queue = rng.Uniform(0.0, 80.0);
    NodeStatsReport r = Report(0, static_cast<uint32_t>(k), now, offered,
                               admitted, busy, queue);
    mon.OnReport(r, now);

    PeriodMeasurement got;
    ASSERT_TRUE(mon.Sample(now, 2.0, &got));
    const PeriodMeasurement want = ref.SampleDeltas(r.deltas, 2.0, 1.0);
    EXPECT_EQ(got.fin, want.fin);
    EXPECT_EQ(got.admitted, want.admitted);
    EXPECT_EQ(got.fout, want.fout);
    EXPECT_EQ(got.queue, want.queue);
    EXPECT_EQ(got.cost, want.cost);
    EXPECT_EQ(got.y_hat, want.y_hat);
  }
}

TEST(ClusterMonitorTest, NodeWithoutHelloStaysOutOfAggregate) {
  // A report whose hello was lost registers the node but contributes
  // nothing until the hello supplies its plant size.
  ClusterMonitor mon(kNominalCost, Opts());
  mon.OnReport(Report(5, 1, 1.0, 100, 100, 0.1, 5.0), 1.0);
  PeriodMeasurement m;
  EXPECT_FALSE(mon.Sample(1.0, 2.0, &m));
  EXPECT_EQ(mon.known_count(), 1);
  EXPECT_EQ(mon.active_count(), 0);

  mon.OnHello(Hello(5, 1), 1.5);
  mon.OnReport(Report(5, 2, 2.0, 120, 110, 0.2, 6.0), 2.0);
  ASSERT_TRUE(mon.Sample(2.0, 2.0, &m));
  EXPECT_EQ(mon.active_count(), 1);
}

TEST(ClusterMonitorTest, StaleNodeIsExcludedAndHeadroomRetargets) {
  ClusterMonitor mon(kNominalCost, Opts());
  mon.OnHello(Hello(0, 2), 0.0);
  mon.OnHello(Hello(1, 2), 0.0);
  mon.OnReport(Report(0, 1, 1.0, 100, 90, 0.3, 10.0), 1.0);
  mon.OnReport(Report(1, 1, 1.0, 100, 90, 0.3, 10.0), 1.0);
  PeriodMeasurement m;
  ASSERT_TRUE(mon.Sample(1.0, 2.0, &m));
  EXPECT_DOUBLE_EQ(mon.effective_headroom(), 4 * 0.97);
  EXPECT_TRUE(mon.headroom_changed());

  // Node 1 goes silent; within the stale window it still counts (its
  // missing period contributes zero deltas, not exclusion)...
  for (int k = 2; k <= 4; ++k) {
    const SimTime now = static_cast<SimTime>(k);
    mon.OnReport(
        Report(0, static_cast<uint32_t>(k), now, 100, 90, 0.3, 10.0), now);
    ASSERT_TRUE(mon.Sample(now, 2.0, &m));
    EXPECT_EQ(mon.active_count(), 2) << "k=" << k;
    EXPECT_FALSE(mon.headroom_changed()) << "k=" << k;
  }

  // ...but past stale_periods = 3 the aggregate halves: the plant headroom
  // re-targets and the dead node's load disappears from fin.
  mon.OnReport(Report(0, 5, 5.0, 100, 90, 0.3, 10.0), 5.0);
  ASSERT_TRUE(mon.Sample(5.0, 2.0, &m));
  EXPECT_EQ(mon.active_count(), 1);
  EXPECT_TRUE(mon.headroom_changed());
  EXPECT_DOUBLE_EQ(mon.effective_headroom(), 2 * 0.97);
  EXPECT_DOUBLE_EQ(m.fin, 100.0);

  // Readmission: a fresh report brings it back with at most one period of
  // backlog (earlier buffered deltas were discarded at exclusion).
  mon.OnReport(Report(0, 6, 6.0, 100, 90, 0.3, 10.0), 6.0);
  mon.OnReport(Report(1, 2, 6.0, 400, 400, 1.2, 40.0), 6.0);
  ASSERT_TRUE(mon.Sample(6.0, 2.0, &m));
  EXPECT_EQ(mon.active_count(), 2);
  EXPECT_DOUBLE_EQ(mon.effective_headroom(), 4 * 0.97);
  EXPECT_DOUBLE_EQ(m.fin, 500.0);  // 100 + one period's 400, no spike
}

TEST(ClusterMonitorTest, DelayedReportsAccumulateAcrossBoundary) {
  // With network delay, two of a node's reports can land between two
  // controller boundaries; both periods' counters must enter the fold.
  ClusterMonitor mon(kNominalCost, Opts());
  mon.OnHello(Hello(0, 1), 0.0);
  mon.OnReport(Report(0, 1, 1.0, 100, 90, 0.3, 10.0), 1.0);
  PeriodMeasurement m;
  ASSERT_TRUE(mon.Sample(1.0, 2.0, &m));

  mon.OnReport(Report(0, 2, 2.0, 50, 40, 0.1, 12.0), 2.2);
  mon.OnReport(Report(0, 3, 3.0, 70, 60, 0.2, 14.0), 3.1);
  ASSERT_TRUE(mon.Sample(3.5, 2.0, &m));
  // 120 tuples over the 2.5 s since the last boundary; the queue is the
  // latest reported instantaneous value, not a sum.
  EXPECT_DOUBLE_EQ(m.fin, 120.0 / 2.5);
  EXPECT_DOUBLE_EQ(m.queue, 14.0);
}

// --- Fan-out conservation property (satellite c) ---------------------------

double SumOfSlices(double v, const std::vector<double>& loads) {
  const std::vector<double> shares = ProportionalShares(loads);
  double sum = 0.0;
  for (double s : shares) sum += v * s;
  return sum;
}

TEST(ProportionalSharesProperty, FanOutConservesAggregateCommand) {
  // Property: Σ_i v·share_i == v within far less than one tuple per
  // period, across skewed splits, zero-load plants, and single-hot-node
  // splits. One tuple per period at T = 1 s is an absolute error of 1.0;
  // we require twelve orders of magnitude better (relative 1e-12).
  Rng rng(20060807);
  for (int iter = 0; iter < 5000; ++iter) {
    const int n = static_cast<int>(rng.UniformInt(1, 12));
    std::vector<double> loads(static_cast<size_t>(n));
    const int shape = static_cast<int>(rng.UniformInt(0, 3));
    for (int i = 0; i < n; ++i) {
      switch (shape) {
        case 0:  // uniform-ish
          loads[static_cast<size_t>(i)] = rng.Uniform(0.0, 500.0);
          break;
        case 1:  // heavily skewed magnitudes
          loads[static_cast<size_t>(i)] =
              rng.Uniform(0.0, 1.0) * std::pow(10.0, rng.UniformInt(-3, 5));
          break;
        case 2:  // single hot node
          loads[static_cast<size_t>(i)] = i == 0 ? 1e6 : rng.Uniform(0.0, 1.0);
          break;
        default:  // all idle
          loads[static_cast<size_t>(i)] = 0.0;
          break;
      }
    }
    const double v = rng.Uniform(0.0, 2000.0);
    const double reassembled = SumOfSlices(v, loads);
    EXPECT_NEAR(reassembled, v, 1e-12 * std::max(v, 1.0))
        << "iter " << iter << " shape " << shape << " n " << n;
  }
}

TEST(ProportionalSharesProperty, EdgeCases) {
  // All-zero loads: even split, still conserving.
  EXPECT_DOUBLE_EQ(SumOfSlices(300.0, {0.0, 0.0, 0.0}), 300.0);
  // One node: exactly share 1.0, v passes through bit-for-bit.
  const std::vector<double> one = ProportionalShares({123.456});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 1.0);
  // Hot node takes essentially everything.
  const std::vector<double> hot = ProportionalShares({1e9, 1.0});
  EXPECT_GT(hot[0], 0.999999);
  EXPECT_GT(hot[1], 0.0);
}

}  // namespace
}  // namespace ctrlshed
