#include <gtest/gtest.h>

#include <memory>

#include "control/ctrl_controller.h"
#include "core/feedback_loop.h"
#include "engine/engine.h"
#include "engine/query_network.h"
#include "runner/networks.h"
#include "shedding/entry_shedder.h"
#include "sim/simulation.h"
#include "workload/arrival_source.h"
#include "workload/traces.h"

namespace ctrlshed {
namespace {

// A hand-assembled closed loop on the standard identification plant.
struct Rig {
  Rig(double capacity, double headroom, FeedbackLoopOptions opts)
      : engine_headroom(headroom) {
    BuildIdentificationNetwork(&net, headroom / capacity);
    engine = std::make_unique<Engine>(&net, headroom);
    sim.AttachProcess(engine.get());
    CtrlOptions ctrl_opts;
    ctrl_opts.headroom = headroom;
    controller = std::make_unique<CtrlController>(ctrl_opts);
    shedder = std::make_unique<EntryShedder>(5);
    loop = std::make_unique<FeedbackLoop>(&sim, engine.get(), controller.get(),
                                          shedder.get(), opts);
  }

  void Feed(RateTrace trace, SimTime end) {
    ArrivalSource src(0, std::move(trace), ArrivalSource::Spacing::kPoisson, 9);
    loop->Start();
    src.Start(&sim, [this](const Tuple& t) { loop->OnArrival(t); });
    sim.Run(end);
  }

  double engine_headroom;
  Simulation sim;
  QueryNetwork net;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<CtrlController> controller;
  std::unique_ptr<EntryShedder> shedder;
  std::unique_ptr<FeedbackLoop> loop;
};

TEST(FeedbackLoopTest, ConstantOverloadConvergesToTarget) {
  FeedbackLoopOptions opts;
  opts.target_delay = 2.0;
  Rig rig(190.0, 0.97, opts);
  rig.Feed(MakeConstantTrace(120.0, 300.0), 120.0);

  // Average measured delay over the last 60 periods must hug the target.
  double sum = 0.0;
  int n = 0;
  for (const auto& row : rig.loop->recorder().rows()) {
    if (row.m.t > 60.0 && row.m.has_y_measured) {
      sum += row.m.y_measured;
      ++n;
    }
  }
  ASSERT_GT(n, 40);
  EXPECT_NEAR(sum / n, 2.0, 0.25);
}

TEST(FeedbackLoopTest, UnderloadNeverSheds) {
  FeedbackLoopOptions opts;
  Rig rig(190.0, 0.97, opts);
  rig.Feed(MakeConstantTrace(60.0, 100.0), 60.0);
  EXPECT_EQ(rig.loop->entry_shed(), 0u);
  EXPECT_DOUBLE_EQ(rig.loop->LossRatio(), 0.0);
  // Delays stay at the no-queue service time, far below target.
  EXPECT_LT(rig.loop->qos().max_overshoot(), 0.01);
}

TEST(FeedbackLoopTest, OverloadLossMatchesTheory) {
  FeedbackLoopOptions opts;
  Rig rig(190.0, 0.97, opts);
  rig.Feed(MakeConstantTrace(200.0, 400.0), 200.0);
  // Sustainable rate is 190: loss ~ 1 - 190/400 = 0.525.
  EXPECT_NEAR(rig.loop->LossRatio(), 0.525, 0.03);
}

TEST(FeedbackLoopTest, TupleConservation) {
  FeedbackLoopOptions opts;
  Rig rig(190.0, 0.97, opts);
  rig.Feed(MakeConstantTrace(90.0, 300.0), 90.0);
  const EngineCounters& c = rig.engine->counters();
  EXPECT_EQ(rig.loop->offered(),
            rig.loop->entry_shed() + c.admitted);
  EXPECT_EQ(c.admitted,
            c.departed + c.shed_lineages + rig.engine->QueuedTuples());
}

TEST(FeedbackLoopTest, SetTargetDelayMovesSteadyState) {
  FeedbackLoopOptions opts;
  opts.target_delay = 1.0;
  Rig rig(190.0, 0.97, opts);
  rig.sim.Schedule(60.0, [&] { rig.loop->SetTargetDelay(3.0); });
  rig.Feed(MakeConstantTrace(120.0, 300.0), 120.0);

  double before = 0.0, after = 0.0;
  int nb = 0, na = 0;
  for (const auto& row : rig.loop->recorder().rows()) {
    if (!row.m.has_y_measured) continue;
    if (row.m.t > 30.0 && row.m.t < 60.0) {
      before += row.m.y_measured;
      ++nb;
    } else if (row.m.t > 90.0) {
      after += row.m.y_measured;
      ++na;
    }
  }
  ASSERT_GT(nb, 10);
  ASSERT_GT(na, 10);
  EXPECT_NEAR(before / nb, 1.0, 0.2);
  EXPECT_NEAR(after / na, 3.0, 0.4);
}

TEST(FeedbackLoopTest, RecorderCoversEveryPeriod) {
  FeedbackLoopOptions opts;
  opts.period = 0.5;
  Rig rig(190.0, 0.97, opts);
  rig.Feed(MakeConstantTrace(20.0, 150.0), 20.0);
  EXPECT_EQ(rig.loop->recorder().rows().size(), 40u);
  EXPECT_DOUBLE_EQ(rig.loop->recorder().rows()[0].m.t, 0.5);
}

TEST(FeedbackLoopTest, DepartureObserverSeesAllDepartures) {
  FeedbackLoopOptions opts;
  Rig rig(190.0, 0.97, opts);
  uint64_t observed = 0;
  rig.loop->SetDepartureObserver([&](const Departure&) { ++observed; });
  rig.Feed(MakeConstantTrace(30.0, 100.0), 30.0);
  EXPECT_EQ(observed, rig.loop->qos().departures());
  EXPECT_GT(observed, 0u);
}

TEST(FeedbackLoopTest, UncontrolledLoopStillMonitors) {
  Simulation sim;
  QueryNetwork net;
  BuildIdentificationNetwork(&net, 0.005);
  Engine engine(&net, 0.97);
  sim.AttachProcess(&engine);
  FeedbackLoop loop(&sim, &engine, nullptr, nullptr, FeedbackLoopOptions{});
  loop.Start();
  ArrivalSource src(0, MakeConstantTrace(20.0, 100.0),
                    ArrivalSource::Spacing::kDeterministic, 3);
  src.Start(&sim, [&](const Tuple& t) { loop.OnArrival(t); });
  sim.Run(20.0);
  EXPECT_EQ(loop.entry_shed(), 0u);
  EXPECT_EQ(loop.recorder().rows().size(), 20u);
  EXPECT_GT(loop.offered(), 1900u);
}

TEST(FeedbackLoopTest, SummaryIsConsistent) {
  FeedbackLoopOptions opts;
  Rig rig(190.0, 0.97, opts);
  rig.Feed(MakeConstantTrace(60.0, 260.0), 60.0);
  QosSummary s = rig.loop->Summary();
  EXPECT_EQ(s.offered, rig.loop->offered());
  EXPECT_EQ(s.shed, rig.loop->entry_shed() +
                        rig.engine->counters().shed_lineages);
  EXPECT_NEAR(s.loss_ratio,
              static_cast<double>(s.shed) / static_cast<double>(s.offered),
              1e-12);
  EXPECT_EQ(s.departures, rig.loop->qos().departures());
}

TEST(FeedbackLoopDeathTest, StartTwiceAborts) {
  Simulation sim;
  QueryNetwork net;
  BuildIdentificationNetwork(&net, 0.005);
  Engine engine(&net, 0.97);
  FeedbackLoop loop(&sim, &engine, nullptr, nullptr, FeedbackLoopOptions{});
  loop.Start();
  EXPECT_DEATH(loop.Start(), "twice");
}

TEST(FeedbackLoopDeathTest, ControllerWithoutShedderAborts) {
  Simulation sim;
  QueryNetwork net;
  BuildIdentificationNetwork(&net, 0.005);
  Engine engine(&net, 0.97);
  CtrlController ctrl{CtrlOptions{}};
  EXPECT_DEATH(
      FeedbackLoop(&sim, &engine, &ctrl, nullptr, FeedbackLoopOptions{}),
      "shedder");
}

}  // namespace
}  // namespace ctrlshed
