#include <gtest/gtest.h>

#include <cmath>

#include "common/series.h"
#include "sim/simulation.h"
#include "workload/arrival_source.h"
#include "workload/rate_trace.h"
#include "workload/traces.h"

namespace ctrlshed {
namespace {

TEST(RateTraceTest, LookupBySlot) {
  RateTrace t(0.5, {10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(t.At(0.0), 10.0);
  EXPECT_DOUBLE_EQ(t.At(0.49), 10.0);
  EXPECT_DOUBLE_EQ(t.At(0.5), 20.0);
  EXPECT_DOUBLE_EQ(t.At(1.2), 30.0);
  EXPECT_DOUBLE_EQ(t.At(99.0), 30.0);  // last slot extends
  EXPECT_DOUBLE_EQ(t.At(-1.0), 10.0);  // clamps
}

TEST(RateTraceTest, MeanMaxDuration) {
  RateTrace t(2.0, {1.0, 3.0});
  EXPECT_DOUBLE_EQ(t.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(t.Max(), 3.0);
  EXPECT_DOUBLE_EQ(t.Duration(), 4.0);
}

TEST(RateTraceTest, ScaledToMean) {
  RateTrace t(1.0, {1.0, 3.0});
  RateTrace s = t.ScaledToMean(10.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 10.0);
  EXPECT_DOUBLE_EQ(s.values()[0], 5.0);
  EXPECT_DOUBLE_EQ(s.values()[1], 15.0);
}

TEST(StepTraceTest, EdgeAtStepTime) {
  RateTrace t = MakeStepTrace(50.0, 10.0, 5.0, 300.0);
  EXPECT_DOUBLE_EQ(t.At(9.9), 5.0);
  EXPECT_DOUBLE_EQ(t.At(10.0), 300.0);
  EXPECT_DOUBLE_EQ(t.At(49.0), 300.0);
}

TEST(SineTraceTest, RangeAndMidpoint) {
  RateTrace t = MakeSineTrace(200.0, 0.0, 400.0, 100.0);
  EXPECT_NEAR(t.Mean(), 200.0, 10.0);
  EXPECT_LE(t.Max(), 400.0 + 1e-9);
  for (double v : t.values()) EXPECT_GE(v, -1e-9);
  // Quarter period: peak.
  EXPECT_NEAR(t.At(25.0), 400.0, 30.0);
}

TEST(RampTraceTest, MonotoneIncrease) {
  RateTrace t = MakeRampTrace(100.0, 100.0, 400.0);
  EXPECT_DOUBLE_EQ(t.values().front(), 100.0);
  EXPECT_DOUBLE_EQ(t.values().back(), 400.0);
  for (size_t i = 1; i < t.values().size(); ++i) {
    EXPECT_GE(t.values()[i], t.values()[i - 1]);
  }
}

TEST(ConstantTraceTest, AllSlotsEqual) {
  RateTrace t = MakeConstantTrace(10.0, 150.0);
  for (double v : t.values()) EXPECT_DOUBLE_EQ(v, 150.0);
}

TEST(ParetoTraceTest, MeanNearNominalAtBetaOne) {
  ParetoTraceParams p;
  p.beta = 1.0;
  p.mean_rate = 200.0;
  RateTrace t = MakeParetoTrace(4000.0, p, 7);
  EXPECT_NEAR(t.Mean(), 200.0, 25.0);
}

SummaryStats TraceStats(const RateTrace& t) { return ComputeStats(t.values()); }

TEST(ParetoTraceTest, SmallerBetaIsBurstier) {
  ParetoTraceParams lo, hi;
  lo.beta = 0.1;
  hi.beta = 1.5;
  RateTrace a = MakeParetoTrace(2000.0, lo, 7);
  RateTrace b = MakeParetoTrace(2000.0, hi, 7);
  EXPECT_GT(TraceStats(a).stddev, TraceStats(b).stddev);
  EXPECT_GT(a.Mean(), b.Mean());  // heavier tail, un-normalized by design
}

TEST(ParetoTraceTest, EpisodesPersistForSeveralSeconds) {
  ParetoTraceParams p;
  RateTrace t = MakeParetoTrace(400.0, p, 11);
  // Count level changes; with >= 3 s episodes there are at most ~133.
  int changes = 0;
  for (size_t i = 1; i < t.values().size(); ++i) {
    if (t.values()[i] != t.values()[i - 1]) ++changes;
  }
  EXPECT_LT(changes, 140);
  EXPECT_GT(changes, 10);
}

TEST(ParetoTraceTest, DeterministicPerSeed) {
  ParetoTraceParams p;
  RateTrace a = MakeParetoTrace(100.0, p, 5);
  RateTrace b = MakeParetoTrace(100.0, p, 5);
  EXPECT_EQ(a.values(), b.values());
  RateTrace c = MakeParetoTrace(100.0, p, 6);
  EXPECT_NE(a.values(), c.values());
}

TEST(WebTraceTest, MeanMatchesTarget) {
  WebTraceParams p;
  RateTrace t = MakeWebTrace(400.0, p, 42);
  EXPECT_NEAR(t.Mean(), p.mean_rate, 1.0);  // rescaled exactly
  EXPECT_EQ(TraceStats(t).count, 400u);
}

TEST(WebTraceTest, HasRealisticBursts) {
  WebTraceParams p;
  RateTrace t = MakeWebTrace(400.0, p, 42);
  // Fig. 13-like: peaks well above the mean, non-trivial variability.
  EXPECT_GT(t.Max(), 1.8 * t.Mean());
  EXPECT_GT(TraceStats(t).stddev, 0.25 * t.Mean());
}

TEST(WebTraceTest, NonNegativeEverywhere) {
  WebTraceParams p;
  RateTrace t = MakeWebTrace(200.0, p, 1);
  for (double v : t.values()) EXPECT_GE(v, 0.0);
}

TEST(CostTraceTest, CircumstancesPresent) {
  CostTraceParams p;
  RateTrace t = MakeCostTrace(400.0, p, 3);
  // Small peak near 50 s.
  EXPECT_GT(t.At(50.0), p.base_ms + 0.7 * p.small_peak_ms);
  // Sudden jump at 125 s: large rise vs 124 s.
  EXPECT_GT(t.At(125.5), t.At(123.0) + 0.6 * p.jump_ms);
  // Terrace: elevated and roughly flat in [250, 350).
  EXPECT_GT(t.At(300.0), p.base_ms + 0.8 * p.terrace_ms);
  // Sudden drop after the terrace.
  EXPECT_LT(t.At(355.0), t.At(345.0) - 0.6 * p.terrace_ms);
  // Gradual ramp before the terrace (paper: "c increases gradually").
  EXPECT_GT(t.At(230.0), t.At(205.0));
}

TEST(CostTraceTest, StaysInFig14Range) {
  CostTraceParams p;
  RateTrace t = MakeCostTrace(400.0, p, 3);
  for (double v : t.values()) {
    EXPECT_GT(v, 2.0);
    EXPECT_LT(v, 30.0);
  }
}

class ArrivalSourceTest : public ::testing::Test {
 protected:
  // Runs a source against `trace` and returns arrival timestamps.
  std::vector<SimTime> Collect(RateTrace trace, ArrivalSource::Spacing spacing,
                               SimTime end) {
    Simulation sim;
    ArrivalSource src(0, std::move(trace), spacing, 17);
    std::vector<SimTime> arrivals;
    src.Start(&sim, [&](const Tuple& t) {
      arrivals.push_back(t.arrival_time);
      EXPECT_GE(t.value, 0.0);
      EXPECT_LT(t.value, 1.0);
    });
    sim.Run(end);
    return arrivals;
  }
};

TEST_F(ArrivalSourceTest, DeterministicSpacingMatchesRate) {
  auto arrivals = Collect(MakeConstantTrace(10.0, 50.0),
                          ArrivalSource::Spacing::kDeterministic, 10.0);
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 500.0, 2.0);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_NEAR(arrivals[i] - arrivals[i - 1], 0.02, 1e-9);
  }
}

TEST_F(ArrivalSourceTest, PoissonRateMatchesExpectation) {
  auto arrivals = Collect(MakeConstantTrace(100.0, 80.0),
                          ArrivalSource::Spacing::kPoisson, 100.0);
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 8000.0, 300.0);
}

TEST_F(ArrivalSourceTest, ZeroRateSlotsProduceNoArrivals) {
  RateTrace t(1.0, {0.0, 0.0, 100.0, 0.0, 100.0});
  auto arrivals =
      Collect(std::move(t), ArrivalSource::Spacing::kDeterministic, 5.0);
  EXPECT_FALSE(arrivals.empty());
  for (SimTime a : arrivals) {
    const bool in_active_slot = (a >= 2.0 && a < 4.0) || (a >= 4.0 && a < 5.0);
    EXPECT_TRUE(in_active_slot) << "arrival at " << a;
    EXPECT_FALSE(a < 2.0) << "arrival in a zero-rate slot at " << a;
  }
}

TEST_F(ArrivalSourceTest, StepRateChangesArrivalDensity) {
  auto arrivals = Collect(MakeStepTrace(20.0, 10.0, 10.0, 200.0),
                          ArrivalSource::Spacing::kDeterministic, 20.0);
  int before = 0, after = 0;
  for (SimTime a : arrivals) (a < 10.0 ? before : after)++;
  EXPECT_NEAR(before, 100, 5);
  EXPECT_NEAR(after, 2000, 20);
}

TEST(ArrivalSourceDeathTest, StartTwiceAborts) {
  Simulation sim;
  ArrivalSource src(0, MakeConstantTrace(1.0, 1.0),
                    ArrivalSource::Spacing::kPoisson, 1);
  src.Start(&sim, [](const Tuple&) {});
  EXPECT_DEATH(src.Start(&sim, [](const Tuple&) {}), "twice");
}

}  // namespace
}  // namespace ctrlshed
