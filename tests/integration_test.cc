// Cross-module integration and robustness suite: every (method x workload
// x actuator) combination must uphold the system invariants, and the loop
// must survive hostile inputs (dead air, extreme cost spikes, degenerate
// control periods) without tripping a single CS_CHECK.

#include <gtest/gtest.h>

#include <tuple>

#include "core/feedback_loop.h"
#include "runner/experiment.h"

namespace ctrlshed {
namespace {

struct GridCase {
  Method method;
  WorkloadKind workload;
  bool queue_shedder;
};

class FullGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(FullGrid, InvariantsHold) {
  const GridCase& gc = GetParam();
  ExperimentConfig cfg;
  cfg.method = gc.method;
  cfg.workload = gc.workload;
  cfg.use_queue_shedder = gc.queue_shedder;
  cfg.duration = 150.0;
  cfg.vary_cost = true;
  cfg.estimation_noise = 0.1;
  ExperimentResult r = RunExperiment(cfg);
  const QosSummary& s = r.summary;

  EXPECT_GT(s.offered, 0u);
  EXPECT_GE(s.loss_ratio, 0.0);
  EXPECT_LE(s.loss_ratio, 1.0);
  EXPECT_LE(s.shed, s.offered);
  EXPECT_GE(s.max_overshoot, 0.0);
  EXPECT_GE(s.p99_delay, s.p95_delay);
  EXPECT_GE(s.p95_delay, s.p50_delay);
  EXPECT_GE(s.mean_delay, 0.0);
  // One recorder row per control period.
  EXPECT_EQ(r.recorder.rows().size(),
            static_cast<size_t>(cfg.duration / cfg.period));
  // Queue lengths and rates can never be negative.
  for (const PeriodRecord& row : r.recorder.rows()) {
    EXPECT_GE(row.m.queue, 0.0);
    EXPECT_GE(row.m.fin, 0.0);
    EXPECT_GE(row.m.fout, -1e-9);
    EXPECT_GT(row.m.cost, 0.0);
    EXPECT_GE(row.alpha, 0.0);
    EXPECT_LE(row.alpha, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsByWorkloads, FullGrid,
    ::testing::Values(
        GridCase{Method::kCtrl, WorkloadKind::kWeb, false},
        GridCase{Method::kCtrl, WorkloadKind::kPareto, false},
        GridCase{Method::kCtrl, WorkloadKind::kWeb, true},
        GridCase{Method::kCtrl, WorkloadKind::kPareto, true},
        GridCase{Method::kBaseline, WorkloadKind::kWeb, false},
        GridCase{Method::kBaseline, WorkloadKind::kPareto, false},
        GridCase{Method::kBaseline, WorkloadKind::kPareto, true},
        GridCase{Method::kAurora, WorkloadKind::kWeb, false},
        GridCase{Method::kAurora, WorkloadKind::kPareto, false},
        GridCase{Method::kNone, WorkloadKind::kWeb, false},
        GridCase{Method::kNone, WorkloadKind::kSine, false},
        GridCase{Method::kCtrl, WorkloadKind::kStep, false},
        GridCase{Method::kCtrl, WorkloadKind::kRamp, false},
        GridCase{Method::kCtrl, WorkloadKind::kMmpp, false},
        GridCase{Method::kPi, WorkloadKind::kPareto, false},
        GridCase{Method::kPi, WorkloadKind::kWeb, true},
        GridCase{Method::kCtrl, WorkloadKind::kConstant, true}));

TEST(RobustnessTest, SurvivesDeadAir) {
  // Rate drops to zero for a long stretch: monitor periods with no
  // arrivals, no departures, an idle engine.
  ExperimentConfig cfg;
  cfg.method = Method::kCtrl;
  cfg.workload = WorkloadKind::kStep;
  cfg.step_low = 250.0;
  cfg.step_high = 0.0;  // everything stops at t=10
  cfg.step_at = 10.0;
  cfg.duration = 60.0;
  ExperimentResult r = RunExperiment(cfg);
  EXPECT_EQ(r.recorder.rows().size(), 60u);
  // Whatever queued at the step must eventually drain.
  EXPECT_NEAR(r.recorder.rows().back().m.queue, 0.0, 1.0);
}

TEST(RobustnessTest, SurvivesExtremeCostSpike) {
  ExperimentConfig cfg;
  cfg.method = Method::kCtrl;
  cfg.workload = WorkloadKind::kConstant;
  cfg.constant_rate = 250.0;
  cfg.duration = 120.0;
  cfg.vary_cost = true;
  cfg.cost_params.jump_ms = 120.0;  // a 30x cost explosion at t=125...
  cfg.cost_params.jump_at = 40.0;   // ...moved into the run
  cfg.cost_params.jump_decay = 15.0;
  cfg.use_queue_shedder = true;
  ExperimentResult r = RunExperiment(cfg);
  EXPECT_GT(r.summary.loss_ratio, 0.3);
  // The loop must pull the delay back near the target by the end.
  double tail = 0.0;
  int n = 0;
  for (const PeriodRecord& row : r.recorder.rows()) {
    if (row.m.t > 100.0 && row.m.has_y_measured) {
      tail += row.m.y_measured;
      ++n;
    }
  }
  ASSERT_GT(n, 5);
  EXPECT_NEAR(tail / n, 2.0, 0.8);
}

TEST(RobustnessTest, SurvivesTinyAndHugeControlPeriods) {
  for (double period : {0.03125, 8.0}) {
    ExperimentConfig cfg;
    cfg.method = Method::kCtrl;
    cfg.workload = WorkloadKind::kPareto;
    cfg.period = period;
    cfg.duration = 80.0;
    ExperimentResult r = RunExperiment(cfg);
    EXPECT_GT(r.summary.offered, 0u);
    EXPECT_LE(r.summary.loss_ratio, 1.0);
  }
}

TEST(RobustnessTest, LongSoakStaysStable) {
  // 2000 simulated seconds of bursty overload with cost variation: the
  // delay must never run away (bounded overshoot) and the queue must not
  // trend upward across the run.
  ExperimentConfig cfg;
  cfg.method = Method::kCtrl;
  cfg.workload = WorkloadKind::kPareto;
  cfg.duration = 2000.0;
  cfg.vary_cost = true;
  cfg.estimation_noise = 0.1;
  ExperimentResult r = RunExperiment(cfg);
  EXPECT_LT(r.summary.max_overshoot, 25.0);
  double first_half = 0.0, second_half = 0.0;
  int n1 = 0, n2 = 0;
  for (const PeriodRecord& row : r.recorder.rows()) {
    if (row.m.t < 1000.0) {
      first_half += row.m.queue;
      ++n1;
    } else {
      second_half += row.m.queue;
      ++n2;
    }
  }
  // No systematic growth: second-half mean queue within 2x of first half.
  EXPECT_LT(second_half / n2, 2.0 * first_half / n1 + 50.0);
}

TEST(RobustnessTest, ZeroSelectivityPathDropsEverythingGracefully) {
  // A pipeline whose filter rejects all tuples still departs them (as
  // kFiltered) and the loop keeps functioning.
  ExperimentConfig cfg;  // unused fields; hand-build the bits we need
  (void)cfg;
  QueryNetwork net;
  auto* f = net.Add(std::make_unique<FilterOp>("reject", 0.001, 0.0));
  auto* m = net.Add(std::make_unique<MapOp>("m", 0.001));
  f->ConnectTo(m);
  net.AddEntry(0, f);
  net.Finalize();
  Engine engine(&net, 1.0);
  int filtered = 0;
  engine.SetDepartureCallback([&](const Departure& d) {
    if (d.kind == DepartureKind::kFiltered) ++filtered;
  });
  for (int i = 0; i < 100; ++i) {
    Tuple t;
    t.value = 0.5;
    engine.Inject(t, 0.0);
  }
  engine.AdvanceTo(10.0);
  EXPECT_EQ(filtered, 100);
  EXPECT_EQ(engine.QueuedTuples(), 0u);
}

TEST(PerSourceIntegrationTest, LoopTracksPerStreamStats) {
  // Hand-assembled two-stream loop with tracking enabled.
  Simulation sim;
  QueryNetwork net;
  auto* a = net.Add(std::make_unique<MapOp>("a", 0.004));
  auto* b = net.Add(std::make_unique<MapOp>("b", 0.004));
  net.AddEntry(0, a);
  net.AddEntry(1, b);
  net.Finalize();
  Engine engine(&net, 0.97);
  sim.AttachProcess(&engine);
  FeedbackLoopOptions opts;
  opts.track_sources = 2;
  FeedbackLoop loop(&sim, &engine, nullptr, nullptr, opts);
  loop.Start();

  for (int i = 0; i < 50; ++i) {
    Tuple t;
    t.source = i % 2;
    t.arrival_time = 0.01 * i;
    sim.Schedule(0.01 * i, [&loop, t]() { loop.OnArrival(t); });
  }
  sim.Run(5.0);
  ASSERT_NE(loop.per_source(), nullptr);
  EXPECT_EQ(loop.per_source()->offered(0), 25u);
  EXPECT_EQ(loop.per_source()->offered(1), 25u);
  EXPECT_EQ(loop.per_source()->departures(0), 25u);
  EXPECT_GT(loop.per_source()->MeanDelay(0), 0.0);
}

}  // namespace
}  // namespace ctrlshed
