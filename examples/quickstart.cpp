// Quickstart: the shortest path through the library. Build a small query
// pipeline with the StreamSystem facade, overload it with a bursty
// workload, and let the paper's feedback controller keep processing delay
// at the 2-second target by shedding just enough load.
//
// Everything runs on a virtual clock: the 400 "seconds" below replay in a
// fraction of a real second. See examples/adaptive_cost.cpp for the same
// loop assembled from the individual components.

#include <cstdio>

#include "core/stream_system.h"
#include "workload/traces.h"

using namespace ctrlshed;

int main() {
  // 1. A system with the paper's defaults: H = 0.97, T = 1 s, yd = 2 s,
  //    pole-placement feedback driving a random entry shedder.
  StreamSystem sys;

  // 2. One stream through a filter/map pipeline. Costs are milliseconds;
  //    this pipeline costs ~5.1 ms per tuple => ~190 tuples/s capacity.
  sys.AddStream("readings")
      .Filter(1.2, /*selectivity=*/0.9)
      .Map(2.0)
      .Filter(0.8, /*selectivity=*/0.8)
      .Map(1.5);

  // 3. A long-tailed bursty workload averaging 200 tuples/s — just past
  //    capacity, with bursts far beyond it.
  ParetoTraceParams wl;
  wl.mean_rate = 200.0;
  sys.SetWorkload(0, MakeParetoTrace(400.0, wl, /*seed=*/11));

  // 4. Run and report.
  sys.Run(400.0);
  const QosSummary s = sys.Summary();

  std::printf("ControlShed quickstart (400 simulated seconds)\n");
  std::printf("  pipeline cost           : %.2f ms/tuple (capacity ~%.0f/s)\n",
              1000.0 * sys.NominalCost(), 0.97 / sys.NominalCost());
  std::printf("  offered tuples          : %llu\n",
              static_cast<unsigned long long>(s.offered));
  std::printf("  shed (load shedding)    : %llu (%.1f%%)\n",
              static_cast<unsigned long long>(s.shed), 100.0 * s.loss_ratio);
  std::printf("  mean / p95 / p99 delay  : %.2f / %.2f / %.2f s (target 2 s)\n",
              s.mean_delay, s.p95_delay, s.p99_delay);
  std::printf("  delayed tuples (y > yd) : %llu of %llu\n",
              static_cast<unsigned long long>(s.delayed_tuples),
              static_cast<unsigned long long>(s.departures));
  std::printf("  accumulated violation   : %.1f tuple-seconds\n",
              s.accumulated_violation);
  std::printf("  maximal overshoot       : %.2f s\n", s.max_overshoot);
  return 0;
}
