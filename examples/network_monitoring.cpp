// Network-monitoring example: the kind of soft-deadline workload the
// paper's introduction motivates (intrusion detection over packet
// streams). Three packet sources feed a branched query network — shared
// filters, a union, a windowed aggregate computing per-window traffic
// statistics, and a sliding join correlating two streams. A flash crowd
// (web-like self-similar bursts) overloads the engine; results older than
// 1.5 s are useless to the analyst.
//
// The example runs the same scenario twice — once with the paper's
// feedback controller (CTRL), once with the open-loop Aurora policy — and
// prints both outcomes side by side.

#include <cstdio>
#include <memory>

#include "control/aurora_controller.h"
#include "control/ctrl_controller.h"
#include "core/feedback_loop.h"
#include "engine/engine.h"
#include "engine/query_network.h"
#include "runner/networks.h"
#include "shedding/aurora_shedder.h"
#include "shedding/entry_shedder.h"
#include "sim/simulation.h"
#include "workload/arrival_source.h"
#include "workload/traces.h"

using namespace ctrlshed;

namespace {

struct Outcome {
  QosSummary summary;
  uint64_t packets_analyzed = 0;   // source packets that fully traversed
  double worst_minute_mean = 0.0;  // worst 60 s mean delay
};

Outcome RunScenario(bool use_feedback) {
  constexpr double kDuration = 300.0;
  constexpr double kHeadroom = 0.97;
  constexpr double kTargetDelay = 1.5;

  Simulation sim;

  // The paper's Fig. 2-shaped multi-query network: per-source filters,
  // a shared union, a windowed aggregate, and a sliding join. One packet
  // costs ~6 ms of CPU on average => the engine sustains ~160 packets/s.
  QueryNetwork net;
  BuildBranchedNetwork(&net, /*target_entry_cost=*/0.006);
  Engine engine(&net, kHeadroom);
  sim.AttachProcess(&engine);

  std::unique_ptr<LoadController> controller;
  std::unique_ptr<Shedder> shedder;
  if (use_feedback) {
    CtrlOptions opts;
    opts.headroom = kHeadroom;
    controller = std::make_unique<CtrlController>(opts);
    shedder = std::make_unique<EntryShedder>(21);
  } else {
    controller = std::make_unique<AuroraController>(kHeadroom);
    shedder = std::make_unique<AuroraQuotaShedder>();
  }

  FeedbackLoopOptions loop_opts;
  loop_opts.period = 0.5;  // tight monitoring for a tight deadline
  loop_opts.target_delay = kTargetDelay;
  loop_opts.headroom = kHeadroom;
  FeedbackLoop loop(&sim, &engine, controller.get(), shedder.get(), loop_opts);
  uint64_t analyzed = 0;
  loop.SetDepartureObserver([&analyzed](const Departure& d) {
    if (!d.derived) ++analyzed;
  });
  loop.Start();

  // Three packet streams; together they average ~180 packets/s against a
  // ~160 packets/s capacity, with flash crowds far past it.
  WebTraceParams crowd;
  crowd.mean_rate = 60.0;
  crowd.num_sources = 6;
  std::unique_ptr<ArrivalSource> sources[3];
  for (int s = 0; s < 3; ++s) {
    sources[s] = std::make_unique<ArrivalSource>(
        s, MakeWebTrace(kDuration, crowd, 31 + s),
        ArrivalSource::Spacing::kPoisson, 41 + s);
    sources[s]->Start(&sim, [&loop](const Tuple& t) { loop.OnArrival(t); });
  }

  sim.Run(kDuration);

  Outcome out;
  out.summary = loop.Summary();
  out.packets_analyzed = analyzed;
  // Worst sliding minute of mean delay, from the per-period records.
  const auto& rows = loop.recorder().rows();
  const size_t window = 120;  // 120 half-second periods
  for (size_t i = 0; i + window <= rows.size(); i += 20) {
    double sum = 0.0;
    int n = 0;
    for (size_t j = i; j < i + window; ++j) {
      if (rows[j].m.has_y_measured) {
        sum += rows[j].m.y_measured;
        ++n;
      }
    }
    if (n > 0) out.worst_minute_mean = std::max(out.worst_minute_mean, sum / n);
  }
  return out;
}

void Print(const char* name, const Outcome& o) {
  std::printf("%-22s packets offered %7llu  analyzed %7llu  shed %5.1f%%\n",
              name, static_cast<unsigned long long>(o.summary.offered),
              static_cast<unsigned long long>(o.packets_analyzed),
              100.0 * o.summary.loss_ratio);
  std::printf("%-22s late results %7llu  worst overshoot %6.2f s  "
              "worst-minute mean delay %5.2f s\n",
              "", static_cast<unsigned long long>(o.summary.delayed_tuples),
              o.summary.max_overshoot, o.worst_minute_mean);
}

}  // namespace

int main() {
  std::printf("Network monitoring under a flash crowd "
              "(300 s, deadline 1.5 s)\n\n");
  Outcome feedback = RunScenario(/*use_feedback=*/true);
  Outcome open_loop = RunScenario(/*use_feedback=*/false);
  Print("feedback (CTRL):", feedback);
  std::printf("\n");
  Print("open loop (AURORA):", open_loop);
  std::printf("\nWith feedback, the monitor keeps result freshness pinned "
              "near the deadline and sheds only what the flash crowd makes "
              "unavoidable; the open-loop policy lets the backlog — and the "
              "analyst's staleness — run away during bursts.\n");
  return 0;
}
