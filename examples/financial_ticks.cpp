// Financial-ticks example: the firm-deadline use case from the paper's
// introduction (tracking of stock prices — results delivered after the
// deadline are worthless). Two tick streams (trades and quotes) are
// band-joined over a sliding window to detect price dislocations; the
// desk demands results within 500 ms, and relaxes the deadline to 2 s
// when the market closes volatile trading at t = 120 s.
//
// Demonstrates: a join-centric query network, a sub-second control period,
// the in-network QUEUE shedder (which can cut already-queued work the
// instant volatility makes tuples costlier), and a runtime setpoint
// change via FeedbackLoop::SetTargetDelay.

#include <cstdio>
#include <memory>

#include "control/ctrl_controller.h"
#include "core/feedback_loop.h"
#include "engine/engine.h"
#include "engine/query_network.h"
#include "shedding/queue_shedder.h"
#include "sim/simulation.h"
#include "workload/arrival_source.h"
#include "workload/traces.h"

using namespace ctrlshed;

int main() {
  constexpr double kDuration = 240.0;
  constexpr double kHeadroom = 0.95;  // co-located risk checks eat 5% CPU

  Simulation sim;

  // trades -> f_trades --+
  //                      +-- band-join (2 s window) -> enrich -> alert sink
  // quotes -> f_quotes --+
  QueryNetwork net;
  auto* f_trades = net.Add(std::make_unique<FilterOp>(
      "odd_lot_filter", Millis(0.8), /*threshold=*/0.9));
  auto* f_quotes = net.Add(std::make_unique<FilterOp>(
      "stale_quote_filter", Millis(0.8), /*threshold=*/0.85));
  auto* join = net.Add(std::make_unique<SlidingJoinOp>(
      "dislocation_join", Millis(2.0), /*window_seconds=*/0.4,
      /*band=*/0.01, /*expected_selectivity=*/0.8));
  auto* enrich = net.Add(std::make_unique<MapOp>("enrich", Millis(1.2)));
  auto* alert = net.Add(std::make_unique<MapOp>("alert_fmt", Millis(0.5)));
  f_trades->ConnectTo(join, /*port=*/0);
  f_quotes->ConnectTo(join, /*port=*/1);
  join->ConnectTo(enrich);
  enrich->ConnectTo(alert);
  net.AddEntry(/*source=*/0, f_trades);
  net.AddEntry(/*source=*/1, f_quotes);
  net.Finalize();

  Engine engine(&net, kHeadroom);
  sim.AttachProcess(&engine);
  std::printf("Per-tick expected CPU cost: %.2f ms -> capacity ~%.0f "
              "ticks/s\n\n",
              1000.0 * net.MeanEntryCost(),
              kHeadroom / net.MeanEntryCost());

  CtrlOptions ctrl_opts;
  ctrl_opts.headroom = kHeadroom;
  CtrlController controller(ctrl_opts);
  QueueShedder shedder(&engine, /*seed=*/77);

  FeedbackLoopOptions loop_opts;
  loop_opts.period = 0.25;        // T = 250 ms for a 500 ms deadline
  loop_opts.target_delay = 0.5;   // the desk's firm deadline
  loop_opts.headroom = kHeadroom;
  FeedbackLoop loop(&sim, &engine, &controller, &shedder, loop_opts);
  loop.Start();

  // After the close (t = 120 s) the deadline relaxes to 2 s.
  sim.Schedule(120.0, [&loop] { loop.SetTargetDelay(2.0); });

  // Bursty tick arrivals: volatile open, calmer afternoon.
  ParetoTraceParams ticks;
  ticks.mean_rate = 150.0;  // per stream; the pair overloads the engine
  ticks.beta = 0.8;
  ArrivalSource trades(0, MakeParetoTrace(kDuration, ticks, 51),
                       ArrivalSource::Spacing::kPoisson, 61);
  ArrivalSource quotes(1, MakeParetoTrace(kDuration, ticks, 52),
                       ArrivalSource::Spacing::kPoisson, 62);
  trades.Start(&sim, [&loop](const Tuple& t) { loop.OnArrival(t); });
  quotes.Start(&sim, [&loop](const Tuple& t) { loop.OnArrival(t); });

  sim.Run(kDuration);

  const QosSummary s = loop.Summary();
  std::printf("Ticks offered            : %llu\n",
              static_cast<unsigned long long>(s.offered));
  std::printf("Ticks shed               : %llu (%.1f%%)\n",
              static_cast<unsigned long long>(s.shed), 100.0 * s.loss_ratio);
  std::printf("Mean result latency      : %.0f ms\n", 1000.0 * s.mean_delay);
  std::printf("Late results             : %llu\n",
              static_cast<unsigned long long>(s.delayed_tuples));
  std::printf("Worst miss (overshoot)   : %.0f ms\n",
              1000.0 * s.max_overshoot);

  // Mean latency per regime from the per-period trace.
  double fast = 0.0, slow = 0.0;
  int nf = 0, ns = 0;
  for (const PeriodRecord& row : loop.recorder().rows()) {
    if (!row.m.has_y_measured || row.m.t < 20.0) continue;
    if (row.m.t < 120.0) {
      fast += row.m.y_measured;
      ++nf;
    } else if (row.m.t > 140.0) {
      slow += row.m.y_measured;
      ++ns;
    }
  }
  std::printf("\nMean latency, market hours (target 500 ms) : %6.0f ms\n",
              nf ? 1000.0 * fast / nf : 0.0);
  std::printf("Mean latency, after close  (target 2 s)    : %6.0f ms\n",
              ns ? 1000.0 * slow / ns : 0.0);
  return 0;
}
