// Priority-streams example: the paper's future-work idea of heterogeneous
// quality guarantees. An operations center ingests three telemetry
// streams — critical alarms, billing events, and debug telemetry — with
// very different importance. Under overload, the priority-aware shedder
// takes the whole loss out of the debug stream first, then billing, and
// touches alarms last; the feedback controller still decides WHEN and HOW
// MUCH to shed, the weights only decide FROM WHERE.

#include <cstdio>
#include <memory>

#include "control/ctrl_controller.h"
#include "core/feedback_loop.h"
#include "engine/engine.h"
#include "engine/query_network.h"
#include "shedding/weighted_shedder.h"
#include "sim/simulation.h"
#include "workload/arrival_source.h"
#include "workload/traces.h"

using namespace ctrlshed;

int main() {
  constexpr double kDuration = 300.0;
  constexpr double kHeadroom = 0.97;
  constexpr int kStreams = 3;
  const char* kNames[kStreams] = {"alarms", "billing", "debug"};
  const double kPriorities[kStreams] = {100.0, 10.0, 1.0};

  Simulation sim;

  // Identical per-stream pipelines (filter -> map -> map), ~6 ms/tuple.
  QueryNetwork net;
  OperatorBase* entries[kStreams];
  for (int s = 0; s < kStreams; ++s) {
    auto* f = net.Add(std::make_unique<FilterOp>("f", Millis(2.0), 0.9));
    auto* m1 = net.Add(std::make_unique<MapOp>("m1", Millis(2.0)));
    auto* m2 = net.Add(std::make_unique<MapOp>("m2", Millis(2.0)));
    f->ConnectTo(m1);
    m1->ConnectTo(m2);
    net.AddEntry(s, f);
    entries[s] = f;
  }
  (void)entries;
  net.FinalizeWithMeanEntryCost(Millis(6.0));

  Engine engine(&net, kHeadroom);
  sim.AttachProcess(&engine);

  CtrlOptions ctrl_opts;
  ctrl_opts.headroom = kHeadroom;
  CtrlController controller(ctrl_opts);
  WeightedEntryShedder shedder({kPriorities[0], kPriorities[1], kPriorities[2]},
                               /*seed=*/5);

  FeedbackLoopOptions loop_opts;
  loop_opts.period = 1.0;
  loop_opts.target_delay = 1.0;
  loop_opts.headroom = kHeadroom;
  FeedbackLoop loop(&sim, &engine, &controller, &shedder, loop_opts);

  // Per-stream accounting.
  uint64_t offered[kStreams] = {0, 0, 0};
  uint64_t admitted[kStreams] = {0, 0, 0};
  loop.Start();

  // Each stream offers ~75 tuples/s (225 total vs ~160 capacity).
  ParetoTraceParams wl;
  wl.mean_rate = 75.0;
  std::unique_ptr<ArrivalSource> sources[kStreams];
  for (int s = 0; s < kStreams; ++s) {
    sources[s] = std::make_unique<ArrivalSource>(
        s, MakeParetoTrace(kDuration, wl, 100 + s),
        ArrivalSource::Spacing::kPoisson, 200 + s);
    sources[s]->Start(&sim, [&, s](const Tuple& t) {
      ++offered[s];
      const uint64_t before = engine.counters().admitted;
      loop.OnArrival(t);
      if (engine.counters().admitted > before) ++admitted[s];
    });
  }

  sim.Run(kDuration);

  std::printf("Telemetry triage under overload (300 s, yd = 1 s)\n\n");
  std::printf("%-9s %10s %10s %10s %9s\n", "stream", "priority", "offered",
              "admitted", "loss");
  for (int s = 0; s < kStreams; ++s) {
    const double loss =
        offered[s] ? 1.0 - static_cast<double>(admitted[s]) / offered[s] : 0.0;
    std::printf("%-9s %10.0f %10llu %10llu %8.1f%%\n", kNames[s],
                kPriorities[s], static_cast<unsigned long long>(offered[s]),
                static_cast<unsigned long long>(admitted[s]), 100.0 * loss);
  }

  const QosSummary s = loop.Summary();
  std::printf("\nDelay QoS (all streams): mean %.2f s, p99 %.2f s, max "
              "overshoot %.2f s against the 1 s target.\n",
              s.mean_delay, s.p99_delay, s.max_overshoot);
  std::printf("Total loss %.1f%% — concentrated in the debug stream; the "
              "alarm stream is only touched during bursts so deep that "
              "blocking the other two streams entirely cannot cover the "
              "shed demand.\n",
              100.0 * s.loss_ratio);
  return 0;
}
