// System-identification tour: how to derive the paper's dynamic model for
// YOUR deployment, end to end — the Section 4.2 procedure as a program.
//
//   1. Probe the engine with step inputs and binary-search the capacity
//      threshold (the paper's "190 tuples/s" observation, Fig. 5).
//   2. Turn the threshold into the per-tuple cost constant c.
//   3. Fit the headroom factor H by comparing measured delays against the
//      Eq. (2) model (Fig. 6).
//   4. Cross-check in the frequency domain: the virtual queue must behave
//      as the integrator the controller design assumes.
//   5. Design the controller from the identified model and verify the
//      closed loop tracks its target.

#include <cstdio>

#include "control/pole_placement.h"
#include "runner/experiment.h"
#include "sysid/frequency_response.h"
#include "sysid/identification.h"
#include "sysid/integrator_model.h"

using namespace ctrlshed;

int main() {
  constexpr double kTrueCapacity = 190.0;  // what we pretend not to know
  constexpr double kTrueHeadroom = 0.97;

  std::printf("== 1. Capacity threshold ==\n");
  const double threshold = EstimateCapacityThreshold(
      100.0, 320.0, 2.0, /*duration=*/60.0, kTrueCapacity, kTrueHeadroom, 3);
  std::printf("largest stable input rate: %.1f tuples/s "
              "(true capacity %.0f)\n\n",
              threshold, kTrueCapacity);

  std::printf("== 2. Per-tuple cost ==\n");
  const double c = kTrueHeadroom / threshold;  // assume H from step 3 below
  std::printf("c = H / threshold = %.3f ms "
              "(the paper reports 1000/190 = 5.26 ms at H = 1)\n\n",
              1000.0 * c);

  std::printf("== 3. Headroom fit (Fig. 6 procedure) ==\n");
  StepResponse resp = RunStepResponse(300.0, 60.0, 10.0, kTrueCapacity,
                                      kTrueHeadroom, 7);
  std::vector<double> y, q;
  for (size_t i = 0; i < 40 && i < resp.delay.size(); ++i) {
    y.push_back(resp.delay[i].value);
    q.push_back(resp.queue[i].value);
  }
  double best_h = 0.0, best_sse = 1e300;
  for (double h = 0.90; h <= 1.001; h += 0.01) {
    const double sse = HeadroomFitErrorMidpoint(y, q, kTrueHeadroom / threshold, h);
    std::printf("  H = %.2f : SSE = %8.3f\n", h, sse);
    if (sse < best_sse) {
      best_sse = sse;
      best_h = h;
    }
  }
  std::printf("best fit H = %.2f (engine truth %.2f)\n\n", best_h,
              kTrueHeadroom);

  std::printf("== 4. Frequency-domain cross-check ==\n");
  FrequencySweepParams sweep;
  sweep.freqs_hz = {0.01, 0.05, 0.2};
  for (const FrequencyPoint& p : MeasureFrequencyResponse(sweep)) {
    std::printf("  f = %.2f Hz: gain %.2f vs integrator %.2f\n", p.freq_hz,
                p.gain, p.model_gain);
  }

  std::printf("\n== 5. Controller from the identified model ==\n");
  ControllerGains g = DesignPolePlacement(0.7, 0.7);
  std::printf("poles at 0.7 -> b0 = %.2f, b1 = %.3f, a = %.2f "
              "(the paper's published gains)\n",
              g.b0, g.b1, g.a);

  ExperimentConfig cfg;
  cfg.method = Method::kCtrl;
  cfg.workload = WorkloadKind::kConstant;
  cfg.constant_rate = 300.0;
  cfg.duration = 120.0;
  cfg.capacity_rate = kTrueCapacity;
  cfg.headroom_true = kTrueHeadroom;
  cfg.headroom_est = best_h;
  cfg.gains = g;
  ExperimentResult r = RunExperiment(cfg);
  double sum = 0.0;
  int n = 0;
  for (const PeriodRecord& row : r.recorder.rows()) {
    if (row.m.t > 60.0 && row.m.has_y_measured) {
      sum += row.m.y_measured;
      ++n;
    }
  }
  std::printf("closed loop under 300 tuples/s overload: steady-state mean "
              "delay %.2f s against the 2.0 s target, loss %.1f%%.\n",
              sum / n, 100.0 * r.summary.loss_ratio);
  return 0;
}
