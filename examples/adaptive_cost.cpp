// Adaptive-cost example: per-tuple processing cost is not a constant. The
// paper's Section 4.4 argues the closed loop absorbs slow cost drift and
// its evaluation drives the engine with the Fig. 14 cost trace (a smooth
// peak, a sudden jump, and a high terrace). This example reproduces that
// situation on the library's public API and reports how the controller
// rides through each cost event: the monitor's measured cost estimate
// follows the drift, and the shedding rate is re-planned every period.

#include <cstdio>
#include <memory>

#include "control/ctrl_controller.h"
#include "core/feedback_loop.h"
#include "engine/engine.h"
#include "engine/query_network.h"
#include "runner/networks.h"
#include "shedding/queue_shedder.h"
#include "sim/simulation.h"
#include "workload/arrival_source.h"
#include "workload/traces.h"

using namespace ctrlshed;

int main() {
  constexpr double kDuration = 400.0;
  constexpr double kHeadroom = 0.97;
  constexpr double kCapacity = 190.0;  // at nominal cost

  Simulation sim;
  QueryNetwork net;
  BuildIdentificationNetwork(&net, kHeadroom / kCapacity);
  Engine engine(&net, kHeadroom);
  sim.AttachProcess(&engine);

  // The Fig. 14 cost circumstances: query re-planning at t~50 s (small
  // peak), an expensive new query deployed at t = 125 s (sudden jump that
  // relaxes), and a selectivity shift from t = 250 s (high terrace).
  CostTraceParams cost_params;
  RateTrace cost = MakeCostTrace(kDuration, cost_params, 71);
  engine.SetCostMultiplier(
      [&cost, &cost_params](SimTime t) { return cost.At(t) / cost_params.base_ms; });

  CtrlOptions ctrl_opts;
  ctrl_opts.headroom = kHeadroom;
  CtrlController controller(ctrl_opts);
  // The in-network shedder can discard partially processed tuples, so a
  // sudden cost jump does not leave the loop stuck draining a queue that
  // became several times more expensive overnight (Section 4.5.2).
  QueueShedder shedder(&engine, 81);

  FeedbackLoopOptions loop_opts;
  loop_opts.period = 1.0;
  loop_opts.target_delay = 2.0;
  loop_opts.headroom = kHeadroom;
  FeedbackLoop loop(&sim, &engine, &controller, &shedder, loop_opts);
  loop.Start();

  ArrivalSource source(0, MakeConstantTrace(kDuration, 210.0),
                       ArrivalSource::Spacing::kPoisson, 91);
  source.Start(&sim, [&loop](const Tuple& t) { loop.OnArrival(t); });

  sim.Run(kDuration);

  std::printf("Riding the Fig. 14 cost trace (yd = 2 s, steady 210 t/s "
              "offered)\n\n");
  std::printf("%8s %12s %12s %12s %10s\n", "t (s)", "true c (ms)",
              "est c (ms)", "y_meas (s)", "shed %");
  for (const PeriodRecord& row : loop.recorder().rows()) {
    const int t = static_cast<int>(row.m.t + 0.5);
    const bool interesting =
        (t % 40 == 0) || (t >= 48 && t <= 56 && t % 2 == 0) ||
        (t >= 124 && t <= 136 && t % 2 == 0) || (t >= 248 && t <= 260 && t % 4 == 0);
    if (!interesting) continue;
    std::printf("%8d %12.2f %12.2f %12.3f %9.1f%%\n", t,
                cost.At(row.m.t - 0.5) *
                    (1000.0 * engine.NominalEntryCost() / cost_params.base_ms),
                1000.0 * row.m.cost,
                row.m.has_y_measured ? row.m.y_measured : 0.0,
                100.0 * row.alpha);
  }

  const QosSummary s = loop.Summary();
  std::printf("\nTotals: %.1f tuple-seconds of violation across %llu "
              "departures, %.1f%% shed, worst overshoot %.2f s.\n",
              s.accumulated_violation,
              static_cast<unsigned long long>(s.departures),
              100.0 * s.loss_ratio, s.max_overshoot);
  std::printf("The estimated cost column tracks the true one a period "
              "behind; the shed percentage rises with the cost so the "
              "delay returns to 2 s after each event.\n");
  return 0;
}
