#ifndef CTRLSHED_BENCH_BENCH_UTIL_H_
#define CTRLSHED_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "runner/experiment.h"

namespace ctrlshed::bench {

/// The canonical configuration of the paper's performance experiments
/// (Section 5): 400 s runs, T = 1 s, yd = 2 s, H = 0.97, the Fig. 14 cost
/// trace active, and cost-estimation noise calibrated to the error band
/// real Borealis shows in Figs. 6B/7B.
inline ExperimentConfig PaperConfig(Method m, WorkloadKind w, uint64_t seed) {
  ExperimentConfig cfg;
  cfg.method = m;
  cfg.workload = w;
  cfg.duration = 400.0;
  cfg.period = 1.0;
  cfg.target_delay = 2.0;
  cfg.vary_cost = true;
  cfg.estimation_noise = 0.1;
  cfg.seed = seed;
  return cfg;
}

/// Seeds used when a bench averages several runs (the paper reports single
/// 400 s runs; averaging stabilizes the reported ratios).
inline const std::vector<uint64_t>& Seeds() {
  static const std::vector<uint64_t> kSeeds = {11, 22, 33, 44, 55};
  return kSeeds;
}

/// Mean of the four paper metrics over the given seeds, with the spread of
/// the headline metric so single-run noise is visible in the reports.
struct MeanMetrics {
  double accumulated_violation = 0.0;
  double accumulated_violation_sd = 0.0;  // stddev across seeds
  double delayed_tuples = 0.0;
  double max_overshoot = 0.0;  // max over seeds, not mean
  double loss_ratio = 0.0;
};

inline MeanMetrics RunSeeds(ExperimentConfig cfg) {
  MeanMetrics out;
  const auto& seeds = Seeds();
  std::vector<double> accums;
  for (uint64_t seed : seeds) {
    cfg.seed = seed;
    QosSummary s = RunExperiment(cfg).summary;
    accums.push_back(s.accumulated_violation);
    out.accumulated_violation += s.accumulated_violation / seeds.size();
    out.delayed_tuples +=
        static_cast<double>(s.delayed_tuples) / seeds.size();
    out.max_overshoot = std::max(out.max_overshoot, s.max_overshoot);
    out.loss_ratio += s.loss_ratio / seeds.size();
  }
  double var = 0.0;
  for (double a : accums) {
    var += (a - out.accumulated_violation) * (a - out.accumulated_violation);
  }
  out.accumulated_violation_sd = std::sqrt(var / accums.size());
  return out;
}

inline const char* MethodName(Method m) {
  switch (m) {
    case Method::kNone:
      return "NONE";
    case Method::kCtrl:
      return "CTRL";
    case Method::kBaseline:
      return "BASELINE";
    case Method::kAurora:
      return "AURORA";
    case Method::kPi:
      return "PI";
  }
  return "?";
}

inline const char* WorkloadName(WorkloadKind w) {
  switch (w) {
    case WorkloadKind::kWeb:
      return "Web";
    case WorkloadKind::kPareto:
      return "Pareto";
    case WorkloadKind::kMmpp:
      return "MMPP";
    case WorkloadKind::kStep:
      return "Step";
    case WorkloadKind::kSine:
      return "Sine";
    case WorkloadKind::kRamp:
      return "Ramp";
    case WorkloadKind::kConstant:
      return "Constant";
  }
  return "?";
}

inline void Banner(const char* fig, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", fig, what);
  std::printf("==============================================================\n");
}

}  // namespace ctrlshed::bench

#endif  // CTRLSHED_BENCH_BENCH_UTIL_H_
