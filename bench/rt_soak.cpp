// rt_soak — the real-time runtime's overload soak: replay the Fig. 13 web
// workload, scaled to a sustained 2x overload of the engine's capacity,
// against the wall clock (src/rt), and check that the pole-placement
// controller holds the measured average delay at the setpoint.
//
// This is the acceptance demo of the rt subsystem: the same controller,
// shedder, and virtual-queue bookkeeping as the simulation, but with delay
// measurement, cost estimation, and actuation racing real arrival threads.
// Time compression (trace seconds per wall second) keeps the soak CI-sized;
// pass compress=1 for a true real-time hour-of-the-day soak.
//
//   rt_soak [duration=60] [compress=15] [yd=2] [overload=2] [seed=42]
//           [workers=1] [batch=1] [batch_adaptive=0|1] [pin=0|1]
//           [telemetry_dir=DIR] [telemetry_port=N]
//
// batch=B sets the datapath batch size (SPSC pop run length and engine
// invocation quantum; see RtEngineOptions::batch). 1 is the bit-identical
// per-tuple path. batch_adaptive=1 lets the controller adapt each worker's
// quantum per period (grow past B under backlog, shrink back with latency
// headroom). pin=1 pins worker i to CPU i % ncpu (see rt/cpu_affinity.h);
// best-effort, a no-op where affinity is unsupported.
//
// telemetry_port=N serves the live control-loop feed over HTTP while the
// soak runs (N=0 picks an ephemeral port, printed at startup): /metrics,
// /status, /timeline (SSE), and the dashboard at /.
//
// workers=N shards the plant across N engine workers under one aggregate
// feedback loop. `overload` stays defined against ONE worker's capacity,
// so the same trace feeds every N: workers=4 overload=8 is a 2x overload
// of the aggregate. With workers > 1 the soak first replays the identical
// trace at workers=1 and prints the comparison — the sharded run must
// shed measurably less (or process measurably more) than the single
// worker it outgrew, plus a per-shard drop/loss breakdown.
//
// Exit status 0 iff the converged mean delay estimate is within ±20% of
// the setpoint over the overloaded periods (fin >= N x capacity). When
// the trace never overloads the aggregate (fewer than 8 such periods —
// e.g. workers=4 overload=2), the gate degrades gracefully: the delay
// estimate must simply stay at or below the setpoint band (an unloaded
// shedder cannot create delay), and with workers > 1 the N-vs-1
// improvement must still hold. The summary includes the latency-jitter
// report: pump interval and actuation-lateness percentiles (p50/p95/p99),
// quantifying the thread-scheduling noise the rt runtime adds over the
// sim.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "rt/rt_runtime.h"

using namespace ctrlshed;

namespace {

double Arg(int argc, char** argv, const char* key, double fallback) {
  const size_t keylen = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, keylen) == 0 && argv[i][keylen] == '=') {
      return std::atof(argv[i] + keylen + 1);
    }
  }
  return fallback;
}

std::string StrArg(int argc, char** argv, const char* key,
                   const char* fallback) {
  const size_t keylen = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, keylen) == 0 && argv[i][keylen] == '=') {
      return argv[i] + keylen + 1;
    }
  }
  return fallback;
}

void PrintJitter(const char* label, const LatencyHistogram& h) {
  std::printf("%s p50/p95/p99    %.3f / %.3f / %.3f ms  "
              "(max %.3f ms, %llu samples)\n",
              label, h.Quantile(0.50) * 1e3, h.Quantile(0.95) * 1e3,
              h.Quantile(0.99) * 1e3, h.max() * 1e3,
              static_cast<unsigned long long>(h.count()));
}

void PrintShardBreakdown(const RtRunResult& r) {
  std::printf("\nper-shard breakdown (%d workers):\n", r.workers);
  for (size_t i = 0; i < r.shards.size(); ++i) {
    const RtShardSummary& s = r.shards[i];
    const uint64_t dropped = s.entry_shed + s.ring_dropped + s.queue_shed;
    const double loss =
        s.offered > 0
            ? static_cast<double>(dropped) / static_cast<double>(s.offered)
            : 0.0;
    std::printf("  shard %zu: offered %llu, entry_shed %llu, ring_drop %llu, "
                "in_net %llu (loss %.3f), departed %llu, "
                "pump p50/p99 %.3f/%.3f ms\n",
                i, static_cast<unsigned long long>(s.offered),
                static_cast<unsigned long long>(s.entry_shed),
                static_cast<unsigned long long>(s.ring_dropped),
                static_cast<unsigned long long>(s.queue_shed), loss,
                static_cast<unsigned long long>(s.departed),
                s.pump_intervals.Quantile(0.50) * 1e3,
                s.pump_intervals.Quantile(0.99) * 1e3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("rt_soak", "wall-clock overload soak of the rt runtime");

  const double duration = Arg(argc, argv, "duration", 60.0);
  const double compress = Arg(argc, argv, "compress", 15.0);
  const double yd = Arg(argc, argv, "yd", 2.0);
  const double overload = Arg(argc, argv, "overload", 2.0);
  const uint64_t seed = static_cast<uint64_t>(Arg(argc, argv, "seed", 42.0));
  const double workers_raw = Arg(argc, argv, "workers", 1.0);
  if (workers_raw < 1.0 || workers_raw > 64.0 ||
      workers_raw != std::floor(workers_raw)) {
    std::fprintf(stderr, "workers must be an integer in [1, 64]\n");
    return 2;
  }
  const int workers = static_cast<int>(workers_raw);
  const double batch_raw = Arg(argc, argv, "batch", 1.0);
  if (batch_raw < 1.0 || batch_raw > 4096.0 ||
      batch_raw != std::floor(batch_raw)) {
    std::fprintf(stderr, "batch must be an integer in [1, 4096]\n");
    return 2;
  }

  RtRunConfig cfg;
  cfg.base.method = Method::kCtrl;
  cfg.base.workload = WorkloadKind::kWeb;
  // The Fig. 13 web workload, rescaled so its long-run mean is a sustained
  // `overload` multiple of ONE worker's capacity threshold (the trace is
  // the same for every workers=N, so runs are comparable).
  cfg.base.web.mean_rate = overload * cfg.base.capacity_rate;
  cfg.base.duration = duration;
  cfg.base.target_delay = yd;
  cfg.base.seed = seed;
  cfg.time_compression = compress;
  cfg.workers = workers;
  cfg.batch = static_cast<size_t>(batch_raw);
  cfg.batch_adaptive = Arg(argc, argv, "batch_adaptive", 0.0) != 0.0;
  if (Arg(argc, argv, "pin", 0.0) != 0.0) cfg.pin_cpus = "auto";
  cfg.base.telemetry.dir = StrArg(argc, argv, "telemetry_dir", "");
  const double port_raw = Arg(argc, argv, "telemetry_port", -1.0);
  if (port_raw < -1.0 || port_raw > 65535.0 ||
      port_raw != std::floor(port_raw)) {
    std::fprintf(stderr, "telemetry_port must be an integer in [0, 65535]\n");
    return 2;
  }
  cfg.base.telemetry.server_port = static_cast<int>(port_raw);
  cfg.base.telemetry.on_server_start = [](int port) {
    std::printf("telemetry server: http://127.0.0.1:%d/ "
                "(/metrics /status /timeline)\n",
                port);
    std::fflush(stdout);
  };

  const double agg_capacity =
      static_cast<double>(workers) * cfg.base.capacity_rate;
  std::printf("workload: web trace, mean %.0f t/s vs %d x %.0f t/s capacity "
              "(%.1fx overload of the aggregate)\n",
              cfg.base.web.mean_rate, workers, cfg.base.capacity_rate,
              cfg.base.web.mean_rate / agg_capacity);
  std::printf("replaying %.0f trace seconds at %gx compression "
              "(~%.1f wall s), T = %.1f s, yd = %.1f s, batch = %zu%s%s\n\n",
              duration, compress, duration / compress, cfg.base.period, yd,
              cfg.batch, cfg.batch_adaptive ? " (adaptive)" : "",
              cfg.pin_cpus.empty() ? "" : ", workers pinned");

  // The single-worker yardstick: with workers > 1, first replay the same
  // trace against one worker so the sharded run has something to beat.
  RtRunResult single;
  if (workers > 1) {
    RtRunConfig one = cfg;
    one.workers = 1;
    one.base.telemetry.dir = "";
    one.base.telemetry.server_port = -1;
    one.base.telemetry.on_server_start = nullptr;
    std::printf("comparison run: workers=1 on the same trace ...\n");
    single = RunRtExperiment(one);
    std::printf("  workers=1: offered %llu, shed %llu (loss %.3f), "
                "departures %llu, mean delay %.3f s\n\n",
                static_cast<unsigned long long>(single.summary.offered),
                static_cast<unsigned long long>(single.summary.shed),
                single.summary.loss_ratio,
                static_cast<unsigned long long>(single.summary.departures),
                single.summary.mean_delay);
  }

  RtRunResult r = RunRtExperiment(cfg);

  TablePrinter table(std::cout, {"k", "fin", "admitted", "fout", "queue",
                                 "y_hat", "y_meas", "alpha"});
  table.PrintHeader();
  for (const PeriodRecord& row : r.recorder.rows()) {
    table.PrintRow({static_cast<double>(row.m.k), row.m.fin, row.m.admitted,
                    row.m.fout, row.m.queue, row.m.y_hat,
                    row.m.has_y_measured ? row.m.y_measured : 0.0,
                    row.alpha});
  }

  // Converged delay: mean y_hat after the transient (~3 control periods;
  // we allow one extra for the cold-start cost estimate), over the
  // OVERLOADED periods. During a burst lull (fin below capacity) the
  // correct outcome is a delay below the setpoint — a shedder cannot
  // create delay — so only overloaded periods test the tracking.
  const int kConvergedAfter = 4;
  double sum = 0.0;
  int n = 0;
  int lulls = 0;
  double sum_all = 0.0;
  int n_all = 0;
  for (const PeriodRecord& row : r.recorder.rows()) {
    if (row.m.k <= kConvergedAfter) continue;
    sum_all += row.m.y_hat;
    ++n_all;
    if (row.m.fin < agg_capacity) {
      ++lulls;
      continue;
    }
    sum += row.m.y_hat;
    ++n;
  }
  const double mean_yhat = n > 0 ? sum / n : 0.0;
  const double rel_err = std::abs(mean_yhat - yd) / yd;
  const double mean_yhat_all = n_all > 0 ? sum_all / n_all : 0.0;

  std::printf("\n");
  std::printf("offered %llu, shed %llu (loss %.3f), departures %llu, "
              "mean delay %.3f s\n",
              static_cast<unsigned long long>(r.summary.offered),
              static_cast<unsigned long long>(r.summary.shed),
              r.summary.loss_ratio,
              static_cast<unsigned long long>(r.summary.departures),
              r.summary.mean_delay);
  std::printf("ring drops          %llu\n",
              static_cast<unsigned long long>(r.ring_dropped));
  std::printf("loop health         %s\n", r.health.Summary().c_str());
  std::printf("wall time           %.2f s (%.0fx real time)\n",
              r.wall_seconds, duration / r.wall_seconds);
  PrintShardBreakdown(r);

  // Latency-jitter report: how noisily the threads hit their wall-clock
  // marks. Pump interval should sit near the 0.5 ms pacing; actuation
  // lateness is the control tick's overshoot past the period boundary.
  std::printf("\nlatency jitter (wall clock):\n");
  PrintJitter("pump interval     ", r.pump_intervals);
  PrintJitter("actuation lateness", r.actuation_lateness);
  if (!cfg.base.telemetry.dir.empty()) {
    std::printf("telemetry           %llu trace events (%llu dropped), "
                "%llu timeline rows -> %s\n",
                static_cast<unsigned long long>(r.trace_events),
                static_cast<unsigned long long>(r.trace_dropped),
                static_cast<unsigned long long>(r.timeline_rows),
                cfg.base.telemetry.dir.c_str());
  }
  if (r.telemetry_port >= 0) {
    std::printf("sse feed            port %d: %llu connections, "
                "%llu rows streamed, %llu dropped to slow clients\n",
                r.telemetry_port,
                static_cast<unsigned long long>(r.sse_clients),
                static_cast<unsigned long long>(r.sse_rows_published),
                static_cast<unsigned long long>(r.sse_rows_dropped));
  }
  std::printf("converged mean y    %.3f s (setpoint %.3f s, error %.1f%%, "
              "%d overloaded periods, %d lulls excluded)\n",
              mean_yhat, yd, 100.0 * rel_err, n, lulls);

  // Tracking gate. With >= 8 overloaded periods the converged estimate
  // must sit within +/-20% of the setpoint; a trace that never overloads
  // the aggregate (sharded headroom swallowed the burst) must instead
  // keep the estimate at or below the setpoint band.
  bool pass;
  if (n >= 8) {
    pass = rel_err <= 0.20;
    std::printf("%s: converged delay within +/-20%% of setpoint under "
                "overload\n",
                pass ? "PASS" : "FAIL");
  } else {
    pass = n_all >= 8 && mean_yhat_all <= 1.2 * yd;
    std::printf("%s: aggregate never overloaded (%d overloaded periods); "
                "mean y %.3f s stays at or below the setpoint band\n",
                pass ? "PASS" : "FAIL", n, mean_yhat_all);
  }

  // Sharding dividend gate: on the same trace, N workers must shed
  // measurably less or process measurably more than one.
  if (workers > 1) {
    const bool sheds_less =
        r.summary.loss_ratio + 0.02 < single.summary.loss_ratio;
    const bool processes_more =
        static_cast<double>(r.summary.departures) >
        1.05 * static_cast<double>(single.summary.departures);
    const bool improved = sheds_less || processes_more;
    std::printf("%s: workers=%d vs workers=1 — loss %.3f vs %.3f, "
                "departures %llu vs %llu\n",
                improved ? "PASS" : "FAIL", workers, r.summary.loss_ratio,
                single.summary.loss_ratio,
                static_cast<unsigned long long>(r.summary.departures),
                static_cast<unsigned long long>(single.summary.departures));
    pass = pass && improved;
  }
  return pass ? 0 : 1;
}
