// rt_soak — the real-time runtime's overload soak: replay the Fig. 13 web
// workload, scaled to a sustained 2x overload of the engine's capacity,
// against the wall clock (src/rt), and check that the pole-placement
// controller holds the measured average delay at the setpoint.
//
// This is the acceptance demo of the rt subsystem: the same controller,
// shedder, and virtual-queue bookkeeping as the simulation, but with delay
// measurement, cost estimation, and actuation racing real arrival threads.
// Time compression (trace seconds per wall second) keeps the soak CI-sized;
// pass compress=1 for a true real-time hour-of-the-day soak.
//
//   rt_soak [duration=60] [compress=15] [yd=2] [overload=2] [seed=42]
//           [telemetry_dir=DIR]
//
// Exit status 0 iff the converged mean delay estimate is within ±20% of
// the setpoint. The summary includes the latency-jitter report: pump
// interval and actuation-lateness percentiles (p50/p95/p99), quantifying
// the thread-scheduling noise the rt runtime adds over the sim.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "rt/rt_runtime.h"

using namespace ctrlshed;

namespace {

double Arg(int argc, char** argv, const char* key, double fallback) {
  const size_t keylen = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, keylen) == 0 && argv[i][keylen] == '=') {
      return std::atof(argv[i] + keylen + 1);
    }
  }
  return fallback;
}

std::string StrArg(int argc, char** argv, const char* key,
                   const char* fallback) {
  const size_t keylen = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, keylen) == 0 && argv[i][keylen] == '=') {
      return argv[i] + keylen + 1;
    }
  }
  return fallback;
}

void PrintJitter(const char* label, const LatencyHistogram& h) {
  std::printf("%s p50/p95/p99    %.3f / %.3f / %.3f ms  "
              "(max %.3f ms, %llu samples)\n",
              label, h.Quantile(0.50) * 1e3, h.Quantile(0.95) * 1e3,
              h.Quantile(0.99) * 1e3, h.max() * 1e3,
              static_cast<unsigned long long>(h.count()));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("rt_soak", "wall-clock overload soak of the rt runtime");

  const double duration = Arg(argc, argv, "duration", 60.0);
  const double compress = Arg(argc, argv, "compress", 15.0);
  const double yd = Arg(argc, argv, "yd", 2.0);
  const double overload = Arg(argc, argv, "overload", 2.0);
  const uint64_t seed = static_cast<uint64_t>(Arg(argc, argv, "seed", 42.0));

  RtRunConfig cfg;
  cfg.base.method = Method::kCtrl;
  cfg.base.workload = WorkloadKind::kWeb;
  // The Fig. 13 web workload, rescaled so its long-run mean is a sustained
  // `overload` multiple of the engine's capacity threshold.
  cfg.base.web.mean_rate = overload * cfg.base.capacity_rate;
  cfg.base.duration = duration;
  cfg.base.target_delay = yd;
  cfg.base.seed = seed;
  cfg.time_compression = compress;
  cfg.base.telemetry.dir = StrArg(argc, argv, "telemetry_dir", "");

  std::printf("workload: web trace, mean %.0f t/s vs capacity %.0f t/s "
              "(%.1fx overload)\n",
              cfg.base.web.mean_rate, cfg.base.capacity_rate, overload);
  std::printf("replaying %.0f trace seconds at %gx compression "
              "(~%.1f wall s), T = %.1f s, yd = %.1f s\n\n",
              duration, compress, duration / compress, cfg.base.period, yd);

  RtRunResult r = RunRtExperiment(cfg);

  TablePrinter table(std::cout, {"k", "fin", "admitted", "fout", "queue",
                                 "y_hat", "y_meas", "alpha"});
  table.PrintHeader();
  for (const PeriodRecord& row : r.recorder.rows()) {
    table.PrintRow({static_cast<double>(row.m.k), row.m.fin, row.m.admitted,
                    row.m.fout, row.m.queue, row.m.y_hat,
                    row.m.has_y_measured ? row.m.y_measured : 0.0,
                    row.alpha});
  }

  // Converged delay: mean y_hat after the transient (~3 control periods;
  // we allow one extra for the cold-start cost estimate), over the
  // OVERLOADED periods. During a burst lull (fin below capacity) the
  // correct outcome is a delay below the setpoint — a shedder cannot
  // create delay — so only overloaded periods test the tracking.
  const int kConvergedAfter = 4;
  double sum = 0.0;
  int n = 0;
  int lulls = 0;
  for (const PeriodRecord& row : r.recorder.rows()) {
    if (row.m.k <= kConvergedAfter) continue;
    if (row.m.fin < cfg.base.capacity_rate) {
      ++lulls;
      continue;
    }
    sum += row.m.y_hat;
    ++n;
  }
  const double mean_yhat = n > 0 ? sum / n : 0.0;
  const double rel_err = std::abs(mean_yhat - yd) / yd;

  std::printf("\n");
  std::printf("offered %llu, shed %llu (loss %.3f), departures %llu, "
              "mean delay %.3f s\n",
              static_cast<unsigned long long>(r.summary.offered),
              static_cast<unsigned long long>(r.summary.shed),
              r.summary.loss_ratio,
              static_cast<unsigned long long>(r.summary.departures),
              r.summary.mean_delay);
  std::printf("ring drops          %llu\n",
              static_cast<unsigned long long>(r.ring_dropped));
  std::printf("wall time           %.2f s (%.0fx real time)\n",
              r.wall_seconds, duration / r.wall_seconds);

  // Latency-jitter report: how noisily the threads hit their wall-clock
  // marks. Pump interval should sit near the 0.5 ms pacing; actuation
  // lateness is the control tick's overshoot past the period boundary.
  std::printf("\nlatency jitter (wall clock):\n");
  PrintJitter("pump interval     ", r.pump_intervals);
  PrintJitter("actuation lateness", r.actuation_lateness);
  if (!cfg.base.telemetry.dir.empty()) {
    std::printf("telemetry           %llu trace events (%llu dropped), "
                "%llu timeline rows -> %s\n",
                static_cast<unsigned long long>(r.trace_events),
                static_cast<unsigned long long>(r.trace_dropped),
                static_cast<unsigned long long>(r.timeline_rows),
                cfg.base.telemetry.dir.c_str());
  }
  std::printf("converged mean y    %.3f s (setpoint %.3f s, error %.1f%%, "
              "%d overloaded periods, %d lulls excluded)\n",
              mean_yhat, yd, 100.0 * rel_err, n, lulls);

  const bool pass = n >= 8 && rel_err <= 0.20;
  std::printf("%s: converged delay within +/-20%% of setpoint under "
              "overload\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
