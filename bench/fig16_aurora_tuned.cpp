// Reproduces Fig. 16: can AURORA be rescued by mis-tuning its headroom
// estimate downward (H = 0.96 instead of the identified 0.97), i.e. by
// shedding more aggressively? The paper finds this trades a large extra
// data loss for (sometimes) fewer delay violations, and that the outcome
// depends on the input pattern — the hallmark of poor open-loop
// robustness.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"

using namespace ctrlshed;
using namespace ctrlshed::bench;

int main() {
  Banner("Fig. 16", "AURORA with a deliberately lowered H estimate");

  // Delay series for the H = 0.96 variant on both workloads.
  for (WorkloadKind w : {WorkloadKind::kWeb, WorkloadKind::kPareto}) {
    ExperimentConfig cfg = PaperConfig(Method::kAurora, w, 11);
    cfg.headroom_est = 0.96;
    ExperimentResult r = RunExperiment(cfg);
    std::printf("\n%s, AURORA H = 0.96: measured delay per period (s)\n",
                WorkloadName(w));
    TablePrinter table(std::cout, {"t", "y_meas"});
    table.PrintHeader();
    for (const PeriodRecord& row : r.recorder.rows()) {
      table.PrintRow({row.m.t, row.m.has_y_measured ? row.m.y_measured : 0.0});
    }
  }

  // The trade-off sweep: H down => violations down, loss up (vs CTRL).
  std::printf("\nRelative data loss vs CTRL, and accumulated violations, as "
              "H is lowered (mean of 5 seeds):\n");
  TablePrinter table(std::cout, {"workload", "H", "accum_viol", "loss",
                                 "loss_vs_CTRL"});
  table.PrintHeader();
  for (WorkloadKind w : {WorkloadKind::kWeb, WorkloadKind::kPareto}) {
    MeanMetrics ctrl = RunSeeds(PaperConfig(Method::kCtrl, w, 0));
    for (double h : {0.97, 0.96, 0.93, 0.90}) {
      ExperimentConfig cfg = PaperConfig(Method::kAurora, w, 0);
      cfg.headroom_est = h;
      MeanMetrics m = RunSeeds(cfg);
      std::printf("%12s", WorkloadName(w));
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%12.2f%12.1f%12.4f%12.3f\n", h,
                    m.accumulated_violation, m.loss_ratio,
                    m.loss_ratio / ctrl.loss_ratio);
      std::printf("%s", buf);
    }
  }
  std::printf(
      "\nExpected shape: lowering H buys fewer violations at the price of "
      "extra loss, and how much depends on the input pattern — the paper's "
      "point about the fragility of open-loop tuning.\n");
  return 0;
}
