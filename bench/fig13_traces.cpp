// Reproduces Fig. 13: the arrival-rate traces of the two evaluation
// workloads — the synthetic "Web" trace (our stand-in for the LBL-PKT-4
// web-server trace, see DESIGN.md) and the Pareto trace with bias factor
// beta = 1.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/series.h"
#include "common/table_printer.h"
#include "workload/traces.h"

using namespace ctrlshed;

int main() {
  bench::Banner("Fig. 13", "traces of synthetic and web-like stream data");

  const double kDuration = 400.0;
  RateTrace web = MakeWebTrace(kDuration, WebTraceParams{}, 42);
  ParetoTraceParams pp;
  pp.beta = 1.0;
  RateTrace pareto = MakeParetoTrace(kDuration, pp, 42);

  TablePrinter table(std::cout, {"t", "web", "pareto"});
  table.PrintHeader();
  for (size_t k = 0; k < web.values().size(); ++k) {
    table.PrintRow({static_cast<double>(k), web.values()[k],
                    pareto.At(static_cast<double>(k))});
  }

  auto stats = [](const RateTrace& t, const char* name) {
    SummaryStats s = ComputeStats(t.values());
    std::printf("%-8s mean = %6.1f  sd = %6.1f  min = %6.1f  max = %6.1f "
                "tuples/s\n",
                name, s.mean, s.stddev, s.min, s.max);
  };
  std::printf("\n");
  stats(web, "Web");
  stats(pareto, "Pareto");
  std::printf(
      "(paper Fig. 13: both traces average ~200 tuples/s with multi-second "
      "bursts; the Pareto trace fluctuates more dramatically)\n");
  return 0;
}
