// Reproduces Fig. 5: system responses to step inputs.
//
// Panel A: the input rates (steps to 150/190/200/300 tuples/s at t = 10 s).
// Panel B: average delay y(t) — constant below the capacity threshold,
//          integrating above it.
// Panel C: delta-y — converging to a constant growth rate, the signature of
//          the integrator model with no further dynamics.
//
// The run also reports the inferred per-tuple cost at the threshold rate,
// the paper's "1000/190 = 5.26 ms" observation.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "sysid/identification.h"

using namespace ctrlshed;

int main() {
  bench::Banner("Fig. 5", "system responses to step inputs (uncontrolled)");

  const std::vector<double> rates = {150.0, 190.0, 200.0, 300.0};
  const double kCapacity = 190.0;
  const double kHeadroom = 0.97;
  std::vector<StepResponse> responses;
  responses.reserve(rates.size());
  for (double r : rates) {
    responses.push_back(
        RunStepResponse(r, /*duration=*/50.0, /*step_at=*/10.0, kCapacity,
                        kHeadroom, /*seed=*/5));
  }

  std::printf("\nPanels B/C: delay y (s) and delta-y (s) per input rate\n");
  TablePrinter table(std::cout, {"t", "y@150", "y@190", "y@200", "y@300",
                                 "dy@190", "dy@200", "dy@300"});
  table.PrintHeader();
  for (size_t k = 0; k + 1 < responses[0].delay.size(); ++k) {
    table.PrintRow({responses[0].delay[k].t, responses[0].delay[k].value,
                    responses[1].delay[k].value, responses[2].delay[k].value,
                    responses[3].delay[k].value,
                    k < responses[1].delta_delay.size()
                        ? responses[1].delta_delay[k]
                        : 0.0,
                    k < responses[2].delta_delay.size()
                        ? responses[2].delta_delay[k]
                        : 0.0,
                    k < responses[3].delta_delay.size()
                        ? responses[3].delta_delay[k]
                        : 0.0});
  }

  std::printf("\nStability verdicts (paper: <=190 stable, >190 diverges):\n");
  for (const StepResponse& r : responses) {
    std::printf("  fin = %3.0f tuples/s : %s\n", r.rate,
                DelayDiverges(r.delay, 10.0) ? "delay grows (overload)"
                                             : "delay constant (stable)");
  }

  const double threshold =
      EstimateCapacityThreshold(100.0, 300.0, 2.0, 60.0, kCapacity, kHeadroom, 5);
  std::printf(
      "\nEstimated capacity threshold: %.1f tuples/s -> per-tuple cost "
      "~ %.2f ms at H = 1 (paper: 190 tuples/s -> 5.26 ms)\n",
      threshold, 1000.0 / threshold);
  return 0;
}
