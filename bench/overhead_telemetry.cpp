// overhead_telemetry — the observability tax on the rt pump loop.
//
// Replays the same overloaded constant-rate workload through the rt
// runtime three times: telemetry fully off, file sinks only (trace +
// metrics + timeline on disk), and file sinks plus the live HTTP server
// with an SSE /timeline subscriber attached for the whole run. The pump
// interval histogram (wall-clock spacing of engine pump iterations) is
// the overhead probe: everything telemetry adds — span emission,
// per-operator counters, timeline serialization, SSE fan-out — lands
// between pumps, so a telemetry implementation that blocks or contends
// widens the intervals.
//
//   overhead_telemetry [duration=40] [compress=20] [rate=380] [reps=2]
//                      [out=out/overhead_telemetry] [cluster=1]
//
// Emits BENCH_telemetry.json (per-config pump stats and percent deltas
// vs. telemetry-off). Exit 0 iff the server-attached mean pump interval
// stays within 5% of telemetry-off (each config keeps its best of
// `reps` repetitions, so one scheduler hiccup does not fail the gate).
//
// The cluster cell (cluster=0 skips it) runs a controller plus two local
// nodes and two feeders in-process, twice: metrics-snapshot piggybacking
// on vs off, both with full node telemetry. The gate is the same probe
// one level up — the nodes' merged pump-interval mean with piggybacking
// must stay within 5% of the piggyback-off run. Emits
// BENCH_fleet_telemetry.json.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/controller_runner.h"
#include "cluster/feeder.h"
#include "cluster/node_runner.h"
#include "rt/rt_runtime.h"

using namespace ctrlshed;

namespace {

double Arg(int argc, char** argv, const char* key, double fallback) {
  const size_t keylen = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, keylen) == 0 && argv[i][keylen] == '=') {
      return std::atof(argv[i] + keylen + 1);
    }
  }
  return fallback;
}

std::string StrArg(int argc, char** argv, const char* key,
                   const char* fallback) {
  const size_t keylen = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, keylen) == 0 && argv[i][keylen] == '=') {
      return argv[i] + keylen + 1;
    }
  }
  return fallback;
}

/// A deliberately fast SSE subscriber: connects to /timeline and drains
/// everything the server sends until the run's teardown closes the
/// socket. Keeps one live client on the stream for the whole measured
/// window without ever becoming the bottleneck.
class SseDrain {
 public:
  void Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    const char req[] =
        "GET /timeline HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
    (void)::send(fd_, req, sizeof(req) - 1, 0);
    reader_ = std::thread([this] {
      char buf[4096];
      for (;;) {
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n <= 0) break;
        for (ssize_t i = 0; i < n; ++i) {
          if (buf[i] == '\n') ++lines_;
        }
      }
    });
  }

  /// Joins the reader (the server closing the stream ends it) and
  /// returns how many line terminators arrived — > 0 proves the
  /// subscription was live, not just accepted.
  uint64_t Finish() {
    if (reader_.joinable()) reader_.join();
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    return lines_;
  }

  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  uint64_t lines_ = 0;
  std::thread reader_;
};

struct RunStats {
  double mean = 0.0;   // seconds
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
  uint64_t pumps = 0;
  uint64_t timeline_rows = 0;
  uint64_t sse_rows = 0;
  uint64_t sse_dropped = 0;
  uint64_t client_lines = 0;
};

enum class Mode { kOff, kFile, kServer };

RunStats RunOnce(Mode mode, double duration, double compress, double rate,
                 const std::string& out_dir) {
  RtRunConfig cfg;
  cfg.base.method = Method::kCtrl;
  cfg.base.workload = WorkloadKind::kConstant;
  cfg.base.constant_rate = rate;
  cfg.base.duration = duration;
  cfg.time_compression = compress;
  cfg.base.seed = 42;
  SseDrain drain;
  if (mode != Mode::kOff) cfg.base.telemetry.dir = out_dir;
  if (mode == Mode::kServer) {
    cfg.base.telemetry.server_port = 0;  // ephemeral
    cfg.base.telemetry.on_server_start = [&drain](int port) {
      drain.Connect(port);
    };
  }

  RtRunResult r = RunRtExperiment(cfg);

  RunStats s;
  s.mean = r.pump_intervals.Mean();
  s.p50 = r.pump_intervals.Quantile(0.50);
  s.p95 = r.pump_intervals.Quantile(0.95);
  s.max = r.pump_intervals.max();
  s.pumps = r.pump_intervals.count();
  s.timeline_rows = r.timeline_rows;
  s.sse_rows = r.sse_rows_published;
  s.sse_dropped = r.sse_rows_dropped;
  s.client_lines = drain.Finish();
  return s;
}

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kOff:
      return "off";
    case Mode::kFile:
      return "file";
    case Mode::kServer:
      return "server";
  }
  return "?";
}

void PrintStats(const char* label, const RunStats& s) {
  std::printf("%-7s pump mean/p50/p95 %8.1f / %8.1f / %8.1f us  "
              "(%llu pumps, max %.2f ms)\n",
              label, s.mean * 1e6, s.p50 * 1e6, s.p95 * 1e6,
              static_cast<unsigned long long>(s.pumps), s.max * 1e3);
}

void WriteJson(const RunStats (&best)[3], double delta_file,
               double delta_server, bool pass) {
  FILE* f = std::fopen("BENCH_telemetry.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_telemetry.json");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"overhead_telemetry\",\n");
  std::fprintf(f, "  \"metric\": \"pump_interval_seconds\",\n");
  std::fprintf(f, "  \"configs\": {\n");
  const Mode modes[] = {Mode::kOff, Mode::kFile, Mode::kServer};
  for (int i = 0; i < 3; ++i) {
    const RunStats& s = best[i];
    std::fprintf(
        f,
        "    \"%s\": {\"mean\": %.9g, \"p50\": %.9g, \"p95\": %.9g, "
        "\"max\": %.9g, \"pumps\": %llu, \"timeline_rows\": %llu, "
        "\"sse_rows\": %llu, \"sse_dropped\": %llu, "
        "\"client_lines\": %llu}%s\n",
        ModeName(modes[i]), s.mean, s.p50, s.p95, s.max,
        static_cast<unsigned long long>(s.pumps),
        static_cast<unsigned long long>(s.timeline_rows),
        static_cast<unsigned long long>(s.sse_rows),
        static_cast<unsigned long long>(s.sse_dropped),
        static_cast<unsigned long long>(s.client_lines),
        i + 1 < 3 ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"mean_delta_pct\": {\"file\": %.3f, \"server\": %.3f},\n",
               delta_file, delta_server);
  std::fprintf(f, "  \"gate\": \"server mean within 5%% of off\",\n");
  std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
  std::fclose(f);
}

// --- Cluster cell -----------------------------------------------------------

struct FleetStats {
  double mean = 0.0;  // seconds, merged over both nodes' workers
  double p95 = 0.0;
  uint64_t pumps = 0;
  uint64_t reports = 0;
};

/// One in-process fleet: controller + two single-worker nodes + one web
/// feeder per node at ~2x capacity, all on threads over loopback TCP.
/// Both cells run with full node telemetry (registry + trace); the only
/// difference is whether each kStatsReport carries a metrics snapshot.
FleetStats RunFleetOnce(bool piggyback, double duration, double compress,
                        const std::string& out_dir) {
  ExperimentConfig control;
  control.method = Method::kCtrl;
  control.duration = duration;
  control.period = 1.0;
  control.target_delay = 2.0;

  std::promise<int> ctl_port_promise;
  auto ctl_port_future = ctl_port_promise.get_future();
  ClusterControllerResult ctl_result;
  std::thread ctl_thread([&] {
    ClusterControllerConfig cfg;
    cfg.base = control;
    cfg.base.telemetry.dir = out_dir + "/ctl";
    cfg.port = 0;
    cfg.min_nodes = 2;
    cfg.time_compression = compress;
    cfg.on_ready = [&ctl_port_promise](int port) {
      ctl_port_promise.set_value(port);
    };
    ctl_result = RunClusterController(cfg);
  });
  const int ctl_port = ctl_port_future.get();

  std::promise<int> node_port_promise[2];
  ClusterNodeResult node_result[2];
  std::vector<std::thread> node_threads;
  for (uint32_t id = 0; id < 2; ++id) {
    node_threads.emplace_back([&, id] {
      ClusterNodeConfig cfg;
      cfg.base = control;
      cfg.base.telemetry.dir =
          out_dir + "/node" + std::to_string(id);
      cfg.node_id = id;
      cfg.workers = 1;
      cfg.ingress_port = 0;
      cfg.controller_port = ctl_port;
      cfg.time_compression = compress;
      cfg.piggyback_metrics = piggyback;
      cfg.on_ready = [&, id](int port) {
        node_port_promise[id].set_value(port);
      };
      node_result[id] = RunClusterNode(cfg);
    });
  }
  const int ingress[2] = {node_port_promise[0].get_future().get(),
                          node_port_promise[1].get_future().get()};

  std::vector<std::thread> feed_threads;
  for (int i = 0; i < 2; ++i) {
    feed_threads.emplace_back([&, i] {
      ClusterFeedConfig cfg;
      cfg.base = control;
      cfg.base.workload = WorkloadKind::kWeb;
      cfg.base.web.mean_rate = 380.0;
      cfg.base.seed = 42 + static_cast<uint64_t>(i);
      cfg.port = ingress[i];
      cfg.source_id = static_cast<uint32_t>(i);
      cfg.time_compression = compress;
      (void)RunClusterFeeder(cfg);
    });
  }

  for (auto& t : feed_threads) t.join();
  for (auto& t : node_threads) t.join();
  ctl_thread.join();

  LatencyHistogram merged{1e-6, 1e3, 1.08};
  FleetStats s;
  for (int i = 0; i < 2; ++i) {
    merged.Merge(node_result[i].pump_intervals);
    s.reports += node_result[i].reports_sent;
  }
  s.mean = merged.Mean();
  s.p95 = merged.Quantile(0.95);
  s.pumps = merged.count();
  return s;
}

void WriteFleetJson(const FleetStats& off, const FleetStats& on,
                    double delta, bool pass) {
  FILE* f = std::fopen("BENCH_fleet_telemetry.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_fleet_telemetry.json");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"overhead_telemetry/fleet\",\n");
  std::fprintf(f, "  \"metric\": \"node_pump_interval_seconds\",\n");
  std::fprintf(f, "  \"configs\": {\n");
  const FleetStats* cells[] = {&off, &on};
  const char* names[] = {"piggyback_off", "piggyback_on"};
  for (int i = 0; i < 2; ++i) {
    std::fprintf(f,
                 "    \"%s\": {\"mean\": %.9g, \"p95\": %.9g, "
                 "\"pumps\": %llu, \"reports\": %llu}%s\n",
                 names[i], cells[i]->mean, cells[i]->p95,
                 static_cast<unsigned long long>(cells[i]->pumps),
                 static_cast<unsigned long long>(cells[i]->reports),
                 i == 0 ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"mean_delta_pct\": %.3f,\n", delta);
  std::fprintf(f,
               "  \"gate\": \"piggyback-on node pump mean within 5%% of "
               "piggyback-off\",\n");
  std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
  std::fclose(f);
}

/// Runs both fleet cells (best of `reps`) and gates the piggybacking
/// overhead. Returns true iff the gate holds.
bool RunClusterCell(double duration, double compress, int reps,
                    const std::string& out) {
  std::printf("\ncluster cell: controller + 2 nodes + 2 feeders, "
              "snapshot piggybacking off vs on\n");
  FleetStats best[2];
  for (int cell = 0; cell < 2; ++cell) {
    const bool piggyback = cell == 1;
    for (int rep = 0; rep < reps; ++rep) {
      const std::string dir = out + "/fleet_" +
                              (piggyback ? "on" : "off") + "_rep" +
                              std::to_string(rep);
      const FleetStats s = RunFleetOnce(piggyback, duration, compress, dir);
      if (rep == 0 || s.mean < best[cell].mean) best[cell] = s;
    }
    std::printf("piggyback %-3s node pump mean/p95 %8.1f / %8.1f us  "
                "(%llu pumps, %llu reports)\n",
                piggyback ? "on" : "off", best[cell].mean * 1e6,
                best[cell].p95 * 1e6,
                static_cast<unsigned long long>(best[cell].pumps),
                static_cast<unsigned long long>(best[cell].reports));
  }
  const double delta =
      100.0 * (best[1].mean - best[0].mean) / best[0].mean;
  const bool pass = delta <= 5.0;
  std::printf("node pump mean delta with piggybacking: %+.2f%%\n", delta);
  WriteFleetJson(best[0], best[1], delta, pass);
  std::printf("%s: piggybacking pump overhead %s 5%% "
              "(BENCH_fleet_telemetry.json written)\n",
              pass ? "PASS" : "FAIL", pass ? "within" : "exceeds");
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("overhead_telemetry",
                "pump-loop overhead of file telemetry and the live server");

  const double duration = Arg(argc, argv, "duration", 40.0);
  const double compress = Arg(argc, argv, "compress", 20.0);
  const double rate = Arg(argc, argv, "rate", 380.0);
  const int reps = static_cast<int>(Arg(argc, argv, "reps", 2.0));
  const std::string out = StrArg(argc, argv, "out", "out/overhead_telemetry");

  std::printf("constant %.0f t/s vs ~190 t/s capacity, %.0f trace s at "
              "%gx compression, best of %d reps per config\n\n",
              rate, duration, compress, reps);

  const Mode modes[] = {Mode::kOff, Mode::kFile, Mode::kServer};
  RunStats best[3];
  for (int m = 0; m < 3; ++m) {
    for (int rep = 0; rep < reps; ++rep) {
      const std::string dir =
          out + "/" + ModeName(modes[m]) + "_rep" + std::to_string(rep);
      const RunStats s = RunOnce(modes[m], duration, compress, rate, dir);
      if (rep == 0 || s.mean < best[m].mean) best[m] = s;
    }
    PrintStats(ModeName(modes[m]), best[m]);
  }

  // Sanity: the server run must actually have streamed to a live client,
  // otherwise the "server" column quietly measures the file config.
  if (best[2].client_lines == 0 || best[2].sse_rows == 0) {
    std::printf("\nFAIL: the SSE subscriber saw no data — the server "
                "config did not exercise the live stream\n");
    WriteJson(best, 0.0, 0.0, false);
    return 1;
  }

  const double delta_file =
      100.0 * (best[1].mean - best[0].mean) / best[0].mean;
  const double delta_server =
      100.0 * (best[2].mean - best[0].mean) / best[0].mean;
  std::printf("\nmean pump interval delta vs off: file %+.2f%%, "
              "server+SSE %+.2f%%\n",
              delta_file, delta_server);
  std::printf("server streamed %llu rows (%llu dropped) to the drain "
              "client (%llu lines received)\n",
              static_cast<unsigned long long>(best[2].sse_rows),
              static_cast<unsigned long long>(best[2].sse_dropped),
              static_cast<unsigned long long>(best[2].client_lines));

  const bool pass = delta_server <= 5.0;
  WriteJson(best, delta_file, delta_server, pass);
  std::printf("%s: server-attached pump overhead %s 5%% of telemetry-off "
              "(BENCH_telemetry.json written)\n",
              pass ? "PASS" : "FAIL", pass ? "within" : "exceeds");

  bool fleet_pass = true;
  if (Arg(argc, argv, "cluster", 1.0) != 0.0) {
    fleet_pass = RunClusterCell(duration, compress, reps, out);
  }
  return pass && fleet_pass ? 0 : 1;
}
