// Reproduces Fig. 19: performance of CTRL under nine control periods from
// 31.25 ms to 8000 ms (Web input). Each metric is reported relative to the
// smallest value observed for that metric across the sweep.
//
// Expected shape (Section 4.5.3): violations blow up once T exceeds a few
// seconds — the sampling theorem says the loop can no longer track bursts
// that last 4-5 s — while very small T suffers from noisy per-period
// estimates. The sweet spot sits around [250, 1000] ms.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"

using namespace ctrlshed;
using namespace ctrlshed::bench;

int main() {
  Banner("Fig. 19", "performance vs control period T (CTRL, Web input)");

  const std::vector<double> periods_ms = {31.25, 62.5, 125.0, 250.0, 500.0,
                                          1000.0, 2000.0, 4000.0, 8000.0};
  std::vector<MeanMetrics> metrics;
  for (double t_ms : periods_ms) {
    ExperimentConfig cfg = PaperConfig(Method::kCtrl, WorkloadKind::kWeb, 0);
    cfg.period = t_ms / 1000.0;
    metrics.push_back(RunSeeds(cfg));
  }

  MeanMetrics best;
  best.accumulated_violation = 1e300;
  best.delayed_tuples = 1e300;
  best.max_overshoot = 1e300;
  best.loss_ratio = 1e300;
  for (const MeanMetrics& m : metrics) {
    best.accumulated_violation =
        std::min(best.accumulated_violation, m.accumulated_violation);
    best.delayed_tuples = std::min(best.delayed_tuples, m.delayed_tuples);
    best.max_overshoot = std::min(best.max_overshoot, m.max_overshoot);
    best.loss_ratio = std::min(best.loss_ratio, m.loss_ratio);
  }

  TablePrinter table(std::cout, {"T_ms", "accum_viol", "delayed", "max_over",
                                 "loss"});
  table.PrintHeader();
  for (size_t i = 0; i < periods_ms.size(); ++i) {
    table.PrintRow({periods_ms[i],
                    metrics[i].accumulated_violation /
                        best.accumulated_violation,
                    metrics[i].delayed_tuples / best.delayed_tuples,
                    metrics[i].max_overshoot / best.max_overshoot,
                    metrics[i].loss_ratio / best.loss_ratio});
  }
  std::printf("\n(values are ratios to the best value across the sweep; the "
              "paper's best region is T in [250, 1000] ms, with violations "
              "exploding beyond 4000 ms)\n");
  return 0;
}
