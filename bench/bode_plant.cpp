// Frequency-domain verification of the plant model — a companion to the
// paper's time-domain verification (Figs. 5-7). The engine is excited with
// rate sines around its capacity; the virtual queue's gain must follow the
// discrete integrator T/|e^{jwT} - 1| (a -20 dB/decade roll-off) and its
// phase must lag ~90 degrees and deepen with frequency.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <numbers>

#include "bench_util.h"
#include "common/table_printer.h"
#include "sysid/frequency_response.h"

using namespace ctrlshed;

int main() {
  bench::Banner("Bode", "plant frequency response vs the integrator model");

  FrequencySweepParams params;
  params.freqs_hz = {0.005, 0.01, 0.02, 0.05, 0.1, 0.2};
  std::vector<FrequencyPoint> points = MeasureFrequencyResponse(params);

  TablePrinter table(std::cout, {"freq_hz", "gain_meas", "gain_model",
                                 "gain_db_err", "phase_deg"});
  table.PrintHeader();
  for (const FrequencyPoint& p : points) {
    table.PrintRow({p.freq_hz, p.gain, p.model_gain,
                    20.0 * std::log10(p.gain / p.model_gain),
                    p.phase_rad * 180.0 / std::numbers::pi});
  }
  std::printf("\n(gain errors within ~2 dB and a deepening ~-90..-150 degree "
              "phase confirm the paper's first-order integrator model in the "
              "frequency domain)\n");
  return 0;
}
