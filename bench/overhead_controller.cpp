// Reproduces the computational-overhead measurement of Section 5.1: "the
// operation of our controller only involves several floating point
// calculations at each control period ... about 20 microseconds" (on 2004
// hardware). This google-benchmark binary times one control decision —
// controller arithmetic alone, the monitor sampling path, and the full
// per-period decision including the actuator reconfiguration.

#include <benchmark/benchmark.h>

#include <memory>

#include "control/baseline_controller.h"
#include "control/ctrl_controller.h"
#include "control/monitor.h"
#include "engine/engine.h"
#include "engine/query_network.h"
#include "runner/networks.h"
#include "shedding/entry_shedder.h"

using namespace ctrlshed;

namespace {

PeriodMeasurement TypicalMeasurement() {
  PeriodMeasurement m;
  m.k = 100;
  m.period = 1.0;
  m.target_delay = 2.0;
  m.fin = 240.0;
  m.admitted = 190.0;
  m.fout = 185.0;
  m.queue = 350.0;
  m.cost = 0.0051;
  m.y_hat = 1.85;
  return m;
}

void BM_CtrlControllerDecision(benchmark::State& state) {
  CtrlController ctrl{CtrlOptions{}};
  PeriodMeasurement m = TypicalMeasurement();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctrl.DesiredRate(m));
  }
}
BENCHMARK(BM_CtrlControllerDecision);

void BM_BaselineControllerDecision(benchmark::State& state) {
  BaselineController ctrl(0.97);
  PeriodMeasurement m = TypicalMeasurement();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctrl.DesiredRate(m));
  }
}
BENCHMARK(BM_BaselineControllerDecision);

void BM_MonitorSample(benchmark::State& state) {
  QueryNetwork net;
  BuildIdentificationNetwork(&net, 0.0051);
  Engine engine(&net, 0.97);
  Monitor monitor(&engine, MonitorOptions{1.0, 0.97, 1.0, 0.0, 1});
  uint64_t offered = 0;
  for (auto _ : state) {
    offered += 200;
    benchmark::DoNotOptimize(monitor.Sample(0.0, offered, 2.0));
  }
}
BENCHMARK(BM_MonitorSample);

void BM_FullControlPeriod(benchmark::State& state) {
  QueryNetwork net;
  BuildIdentificationNetwork(&net, 0.0051);
  Engine engine(&net, 0.97);
  Monitor monitor(&engine, MonitorOptions{1.0, 0.97, 1.0, 0.0, 1});
  CtrlController ctrl{CtrlOptions{}};
  EntryShedder shedder(1);
  uint64_t offered = 0;
  for (auto _ : state) {
    offered += 200;
    PeriodMeasurement m = monitor.Sample(0.0, offered, 2.0);
    m.fin = 240.0;  // pretend a loaded period
    const double v = ctrl.DesiredRate(m);
    const double applied = shedder.Configure(v, m);
    ctrl.NotifyActuation(applied);
    benchmark::DoNotOptimize(applied);
  }
}
BENCHMARK(BM_FullControlPeriod);

}  // namespace

BENCHMARK_MAIN();
