// Reproduces Fig. 7: model verification with sinusoidal inputs.
//
// The input rate swings sinusoidally in [0, 400] tuples/s for 200 s; the
// model delays of Eq. (2) are compared against the measured delays. The
// paper observes small periodic modeling errors — unmodeled dynamics that
// the closed loop later suppresses.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "runner/experiment.h"
#include "sysid/identification.h"
#include "sysid/integrator_model.h"

using namespace ctrlshed;

int main() {
  bench::Banner("Fig. 7", "model verification with sinusoidal inputs");

  const double kCapacity = 190.0;
  const double kTrueHeadroom = 0.97;
  const double c = kTrueHeadroom / kCapacity;

  ArrivalGroupedDelays grouper(1.0);
  ExperimentConfig cfg;
  cfg.method = Method::kNone;
  cfg.workload = WorkloadKind::kSine;
  cfg.duration = 200.0;
  cfg.sine_lo = 0.0;
  cfg.sine_hi = 400.0;
  cfg.sine_period = 100.0;
  cfg.capacity_rate = kCapacity;
  cfg.headroom_true = kTrueHeadroom;
  cfg.headroom_est = kTrueHeadroom;
  cfg.spacing = ArrivalSource::Spacing::kDeterministic;
  cfg.departure_observer = [&grouper](const Departure& d) {
    grouper.OnDeparture(d);
  };
  ExperimentResult r = RunExperiment(cfg);

  TimeSeries delay = grouper.Series(cfg.duration);
  std::vector<double> y, q;
  const size_t usable = 185;  // tail arrivals depart after the run ends
  for (size_t i = 0; i < usable && i < delay.size(); ++i) {
    y.push_back(delay[i].value);
    q.push_back(r.recorder.rows()[i].m.queue);
  }

  const std::vector<double> hs = {0.95, 0.97, 1.00};
  std::vector<std::vector<double>> models;
  for (double h : hs) models.push_back(ModelDelayFromQueue(q, c, h));

  std::printf("\nPanel A/B: real vs model delays (s) and errors (s)\n");
  TablePrinter table(std::cout, {"t", "fin", "real", "H=0.97", "err97"});
  table.PrintHeader();
  for (size_t k = 0; k < y.size(); ++k) {
    table.PrintRow({static_cast<double>(k + 1),
                    r.arrival_trace.At(static_cast<double>(k)), y[k],
                    models[1][k], y[k] - models[1][k]});
  }

  std::printf("\nSum of squared modeling errors per H (Eq. 2 / midpoint-"
              "corrected):\n");
  for (size_t i = 0; i < hs.size(); ++i) {
    std::printf("  H = %.2f : SSE = %10.3f / %10.3f\n", hs[i],
                HeadroomFitError(y, q, c, hs[i]),
                HeadroomFitErrorMidpoint(y, q, c, hs[i]));
  }
  std::printf(
      "(small periodic residuals are expected — the paper sees them too and "
      "attributes them to unmodeled dynamics the feedback loop absorbs)\n");
  return 0;
}
