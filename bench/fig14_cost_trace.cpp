// Reproduces Fig. 14: the variable per-tuple cost trace — a long-tailed
// noisy base (~4 ms) with a small peak at ~50 s, a sudden-jump peak at
// 125 s, and a high terrace from 250 s to 350 s reached by a gradual ramp.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/series.h"
#include "common/table_printer.h"
#include "workload/traces.h"

using namespace ctrlshed;

int main() {
  bench::Banner("Fig. 14", "variable unit processing costs (ms)");

  RateTrace cost = MakeCostTrace(400.0, CostTraceParams{}, 43);
  TablePrinter table(std::cout, {"t", "cost_ms"});
  table.PrintHeader();
  for (size_t k = 0; k < cost.values().size(); ++k) {
    table.PrintRow({static_cast<double>(k), cost.values()[k]});
  }

  SummaryStats s = ComputeStats(cost.values());
  std::printf("\nmean = %.2f ms, min = %.2f, max = %.2f "
              "(paper Fig. 14 spans ~3-25 ms)\n",
              s.mean, s.min, s.max);
  return 0;
}
