// Reproduces Fig. 14: the variable per-tuple cost trace — a long-tailed
// noisy base (~4 ms) with a small peak at ~50 s, a sudden-jump peak at
// 125 s, and a high terrace from 250 s to 350 s reached by a gradual ramp.
//
// Since the actuation-plane refactor the trace is honored by both
// runtimes, so the bench also runs one CTRL cell per runtime (sim rt=0,
// real-threads rt=1) with the trace and the in-network queue shedder
// active, and reports the tracking summary side by side.
//
// `--quick` shrinks the run to a CI smoke: no per-second table, short
// duration, high time compression. Exits non-zero if either runtime's
// mean delay estimate leaves the sanity band around the setpoint.

#include <cstdio>
#include <cstring>
#include <iostream>

#include "bench_util.h"
#include "common/series.h"
#include "common/table_printer.h"
#include "rt/rt_runtime.h"
#include "workload/traces.h"

using namespace ctrlshed;

namespace {

struct Cell {
  const char* runtime;
  double mean_yhat = 0.0;
  double loss = 0.0;
  uint64_t entry_shed = 0;
  uint64_t queue_shed = 0;
};

double MeanYhat(const Recorder& recorder) {
  double sum = 0.0;
  int n = 0;
  for (const PeriodRecord& row : recorder.rows()) {
    if (row.m.k <= 5) continue;  // skip the cold-start transient
    sum += row.m.y_hat;
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::Banner("Fig. 14", "variable unit processing costs (ms)");

  const double duration = quick ? 30.0 : 400.0;
  RateTrace cost = MakeCostTrace(duration, CostTraceParams{}, 43);
  if (!quick) {
    TablePrinter table(std::cout, {"t", "cost_ms"});
    table.PrintHeader();
    for (size_t k = 0; k < cost.values().size(); ++k) {
      table.PrintRow({static_cast<double>(k), cost.values()[k]});
    }
  }

  SummaryStats s = ComputeStats(cost.values());
  std::printf("\nmean = %.2f ms, min = %.2f, max = %.2f "
              "(paper Fig. 14 spans ~3-25 ms)\n",
              s.mean, s.min, s.max);

  // One CTRL cell per runtime, cost trace + queue shedder active.
  ExperimentConfig base;
  base.method = Method::kCtrl;
  base.workload = WorkloadKind::kConstant;
  base.constant_rate = 300.0;
  base.duration = duration;
  base.target_delay = 2.0;
  base.vary_cost = true;
  base.use_queue_shedder = true;
  base.seed = 11;

  Cell cells[2];

  const ExperimentResult sim = RunExperiment(base);
  cells[0] = {"sim", MeanYhat(sim.recorder), sim.summary.loss_ratio,
              sim.summary.entry_shed, sim.summary.queue_shed};

  RtRunConfig rt_cfg;
  rt_cfg.base = base;
  rt_cfg.time_compression = quick ? 40.0 : 10.0;
  const RtRunResult rt = RunRtExperiment(rt_cfg);
  cells[1] = {"rt", MeanYhat(rt.recorder), rt.summary.loss_ratio,
              rt.summary.entry_shed, rt.summary.queue_shed};

  std::printf("\nCTRL under the cost trace (yd = %.1f s, rate = %.0f t/s, "
              "queue shedder on)\n", base.target_delay, base.constant_rate);
  std::printf("%-6s %12s %8s %12s %12s\n", "rt", "mean_y_hat", "loss",
              "entry_shed", "queue_shed");
  bool ok = true;
  for (const Cell& c : cells) {
    std::printf("%-6s %12.3f %8.3f %12llu %12llu\n", c.runtime, c.mean_yhat,
                c.loss, static_cast<unsigned long long>(c.entry_shed),
                static_cast<unsigned long long>(c.queue_shed));
    // Sanity band, not the tight rt_soak gate: both runtimes must keep the
    // estimated delay near the setpoint despite the cost events.
    if (c.mean_yhat < 0.5 * base.target_delay ||
        c.mean_yhat > 1.5 * base.target_delay) {
      std::printf("FAIL: %s mean y_hat %.3f outside [%.2f, %.2f]\n",
                  c.runtime, c.mean_yhat, 0.5 * base.target_delay,
                  1.5 * base.target_delay);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
