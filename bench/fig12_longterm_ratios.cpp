// Reproduces Fig. 12: long-term performance of AURORA and BASELINE
// relative to CTRL on the four paper metrics, for both the Web and the
// Pareto workloads (400 s runs, yd = 2 s, T = 1 s, H = 0.97, the Fig. 14
// cost trace active). All CTRL entries are 1.0 by construction; the paper
// reports AURORA at ~205x and BASELINE at ~23x accumulated violations on
// the Web input, with data loss within a few percent of CTRL's.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"

using namespace ctrlshed;
using namespace ctrlshed::bench;

int main() {
  Banner("Fig. 12", "long-term metric ratios vs CTRL (mean of 5 seeds)");

  for (WorkloadKind w : {WorkloadKind::kWeb, WorkloadKind::kPareto}) {
    MeanMetrics ctrl = RunSeeds(PaperConfig(Method::kCtrl, w, 0));
    MeanMetrics base = RunSeeds(PaperConfig(Method::kBaseline, w, 0));
    MeanMetrics aurora = RunSeeds(PaperConfig(Method::kAurora, w, 0));

    std::printf("\n%s workload — absolute values:\n", WorkloadName(w));
    TablePrinter abs_table(
        std::cout, {"method", "accum_viol_s", "(sd)", "delayed",
                    "max_over_s", "loss"});
    abs_table.PrintHeader();
    auto abs_row = [&](const char* name, const MeanMetrics& m) {
      std::printf("%12s", name);
      char buf[256];
      std::snprintf(buf, sizeof(buf), "%14.1f%12.1f%12.0f%12.3f%12.4f\n",
                    m.accumulated_violation, m.accumulated_violation_sd,
                    m.delayed_tuples, m.max_overshoot, m.loss_ratio);
      std::printf("%s", buf);
    };
    abs_row("CTRL", ctrl);
    abs_row("BASELINE", base);
    abs_row("AURORA", aurora);

    std::printf("\n%s workload — ratios to CTRL (paper Fig. 12):\n",
                WorkloadName(w));
    TablePrinter table(std::cout, {"method", "A:accum", "B:delayed",
                                   "C:max_over", "D:loss"});
    table.PrintHeader();
    auto ratio_row = [&](const char* name, const MeanMetrics& m) {
      std::printf("%12s", name);
      char buf[256];
      std::snprintf(buf, sizeof(buf), "%12.2f%12.2f%12.2f%12.3f\n",
                    m.accumulated_violation / ctrl.accumulated_violation,
                    m.delayed_tuples / ctrl.delayed_tuples,
                    m.max_overshoot / ctrl.max_overshoot,
                    m.loss_ratio / ctrl.loss_ratio);
      std::printf("%s", buf);
    };
    ratio_row("CTRL", ctrl);
    ratio_row("BASELINE", base);
    ratio_row("AURORA", aurora);
  }

  std::printf(
      "\nExpected shape: CTRL best on the delay metrics (A-C) with loss (D) "
      "within a few percent of the others; AURORA worst by a large factor.\n");
  return 0;
}
