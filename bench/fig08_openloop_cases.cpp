// Reproduces Fig. 8 (Section 4.3.2): the three failure cases of open-loop
// load shedding, illustrated on the closed-form integrator model with the
// Aurora rule S(k) = fin(k-1) - L0.
//
//   A. Monotone rate increase  -> queue (and delay) grows without bound.
//   B. Step to a higher rate   -> delay converges, but to the WRONG value.
//   C. Small step just over L0 -> data shed although the queue is empty
//                                  (unnecessary loss).

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"

using namespace ctrlshed;

namespace {

struct OpenLoopResult {
  std::vector<double> queue;
  std::vector<double> shed;
};

// Simulates q(k) under the Aurora rule on the nominal model: capacity L0
// tuples per period; shedding S(k) = max(0, fin(k-1) - L0) is an absolute
// amount removed from the inflow.
OpenLoopResult SimulateAurora(const std::vector<double>& fin, double l0) {
  OpenLoopResult r;
  double q = 0.0;
  double fin_prev = fin.empty() ? 0.0 : fin[0];
  for (double f : fin) {
    const double s = std::max(0.0, fin_prev - l0);
    const double admitted = std::max(0.0, f - s);
    const double served = std::min(l0, q + admitted);
    q = q + admitted - served;
    r.queue.push_back(q);
    r.shed.push_back(std::min(s, f));
    fin_prev = f;
  }
  return r;
}

}  // namespace

int main() {
  bench::Banner("Fig. 8", "open-loop failure cases (model illustration)");
  const double kL0 = 190.0;

  // Case A: ramp 150 -> 400 over 60 periods.
  std::vector<double> ramp;
  for (int k = 0; k < 60; ++k) ramp.push_back(150.0 + 250.0 * k / 59.0);
  OpenLoopResult a = SimulateAurora(ramp, kL0);

  // Case B: step from 150 to 320 at k = 10.
  std::vector<double> step(60, 150.0);
  for (size_t k = 10; k < step.size(); ++k) step[k] = 320.0;
  OpenLoopResult b = SimulateAurora(step, kL0);

  // Case C: step from 100 to 205 (slightly above L0) at k = 10.
  std::vector<double> nudge(60, 100.0);
  for (size_t k = 10; k < nudge.size(); ++k) nudge[k] = 205.0;
  OpenLoopResult c = SimulateAurora(nudge, kL0);

  TablePrinter table(std::cout, {"k", "A:fin", "A:q", "B:fin", "B:q",
                                 "C:fin", "C:q", "C:shed"});
  table.PrintHeader();
  for (size_t k = 0; k < ramp.size(); ++k) {
    table.PrintRow({static_cast<double>(k), ramp[k], a.queue[k], step[k],
                    b.queue[k], nudge[k], c.queue[k], c.shed[k]});
  }

  std::printf("\nExample 1 (ramp): q grows every period — final q = %.0f, "
              "still rising (instability).\n",
              a.queue.back());
  std::printf("Example 2 (step): q settles at %.0f tuples — a delay the "
              "open loop never corrects, whatever yd is.\n",
              b.queue.back());
  const double c_loss =
      c.shed.back();
  std::printf("Example 3 (small overshoot): the queue is ~%.0f yet %.0f "
              "tuples/period are shed — unnecessary loss.\n",
              c.queue.back(), c_loss);
  return 0;
}
