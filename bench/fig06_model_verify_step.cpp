// Reproduces Fig. 6: model verification with step inputs.
//
// An uncontrolled run measures the real per-period delays y(k) (grouped by
// arrival period, the paper's definition) and records the virtual queue
// q(k). The model delays from Eq. (2), y = (q(k-1) + 1) c / H, are computed
// for H in {0.95, 0.97, 1.00} and compared: panel A the absolute curves,
// panel B the modeling errors. The fit metric shows which H explains the
// data best (the paper finds 0.97).

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "sysid/identification.h"
#include "sysid/integrator_model.h"

using namespace ctrlshed;

int main() {
  bench::Banner("Fig. 6", "model verification with step inputs");

  const double kCapacity = 190.0;
  const double kTrueHeadroom = 0.97;
  const double c = kTrueHeadroom / kCapacity;

  StepResponse r = RunStepResponse(/*rate=*/300.0, /*duration=*/80.0,
                                   /*step_at=*/10.0, kCapacity, kTrueHeadroom,
                                   /*seed=*/6);

  // Only periods whose arrivals departed before the run end carry valid
  // measurements; with ~110 extra tuples/s the tail lags ~q c seconds.
  const size_t usable = 55;
  std::vector<double> y, q;
  for (size_t i = 0; i < usable && i < r.delay.size(); ++i) {
    y.push_back(r.delay[i].value);
    q.push_back(r.queue[i].value);
  }

  const std::vector<double> hs = {0.95, 0.97, 1.00};
  std::vector<std::vector<double>> models;
  for (double h : hs) models.push_back(ModelDelayFromQueue(q, c, h));

  std::printf("\nPanel A/B: real vs model delays (s) and errors (s)\n");
  TablePrinter table(std::cout, {"t", "real", "H=0.95", "H=0.97", "H=1.00",
                                 "err95", "err97", "err100"});
  table.PrintHeader();
  for (size_t k = 0; k < y.size(); ++k) {
    table.PrintRow({static_cast<double>(k + 1), y[k], models[0][k],
                    models[1][k], models[2][k], y[k] - models[0][k],
                    y[k] - models[1][k], y[k] - models[2][k]});
  }

  std::printf("\nSum of squared modeling errors per H (Eq. 2, start-of-"
              "period queue):\n");
  for (double h : hs) {
    std::printf("  H = %.2f : SSE = %10.3f\n", h, HeadroomFitError(y, q, c, h));
  }
  std::printf("\nSame fit with the half-period sampling bias removed "
              "(mid-period queue):\n");
  for (double h : hs) {
    std::printf("  H = %.2f : SSE = %10.3f\n", h,
                HeadroomFitErrorMidpoint(y, q, c, h));
  }
  std::printf(
      "(engine's true headroom is %.2f; tuples arriving across a period see "
      "the queue grow, so the raw Eq. 2 fit sits a percent or two low — the "
      "same magnitude of modeling error the paper's Fig. 6B reports — while "
      "the midpoint fit recovers the truth)\n",
      kTrueHeadroom);
  return 0;
}
