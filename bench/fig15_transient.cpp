// Reproduces Fig. 15: transient performance — the per-period average delay
// y(k) of CTRL, BASELINE, and AURORA over one 400 s run, for the Web
// (panel A) and Pareto (panel B) workloads.
//
// Expected shape: CTRL hugs the 2 s target with brief excursions at the
// cost-trace events (t ~ 50 s and ~ 125 s); BASELINE shows wider peaks;
// AURORA accumulates backlog and climbs far above the target.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"

using namespace ctrlshed;
using namespace ctrlshed::bench;

int main() {
  Banner("Fig. 15", "transient delay y(k) per method (yd = 2 s)");

  for (WorkloadKind w : {WorkloadKind::kWeb, WorkloadKind::kPareto}) {
    std::vector<ExperimentResult> results;
    for (Method m : {Method::kCtrl, Method::kBaseline, Method::kAurora}) {
      results.push_back(RunExperiment(PaperConfig(m, w, 11)));
    }

    std::printf("\nPanel %s: measured mean delay per period (s)\n",
                WorkloadName(w));
    TablePrinter table(std::cout, {"t", "CTRL", "BASELINE", "AURORA"});
    table.PrintHeader();
    const size_t n = results[0].recorder.rows().size();
    auto value = [&](size_t which, size_t k) {
      const PeriodRecord& row = results[which].recorder.rows()[k];
      return row.m.has_y_measured ? row.m.y_measured : 0.0;
    };
    for (size_t k = 0; k < n; ++k) {
      table.PrintRow({results[0].recorder.rows()[k].m.t, value(0, k),
                      value(1, k), value(2, k)});
    }

    for (size_t i = 0; i < 3; ++i) {
      const char* names[] = {"CTRL", "BASELINE", "AURORA"};
      const QosSummary& s = results[i].summary;
      std::printf("%-9s mean delay %6.3f s, max overshoot %7.3f s, "
                  "loss %.3f\n",
                  names[i], s.mean_delay, s.max_overshoot, s.loss_ratio);
    }
  }
  return 0;
}
