// Ablation studies of the design choices DESIGN.md calls out. These go
// beyond the paper's figures: they quantify why each piece of the design
// matters, using the canonical experimental setup of Fig. 12.
//
//   1. Feedback signal: the virtual-queue estimate y_hat (Eq. 11) vs the
//      delayed measurement of y (the signal the paper argues is unusable).
//   2. Actuator: entry shedding vs in-network queue shedding.
//   3. Anti-windup on the controller recursion.
//   4. Pole location: control authority vs convergence speed.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"

using namespace ctrlshed;
using namespace ctrlshed::bench;

namespace {

void PrintRow(const char* label, const MeanMetrics& m) {
  std::printf("%26s", label);
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%12.1f%12.0f%12.3f%12.4f\n",
                m.accumulated_violation, m.delayed_tuples, m.max_overshoot,
                m.loss_ratio);
  std::printf("%s", buf);
}

void Header() {
  TablePrinter t(std::cout, {"variant_________________", "accum_viol",
                             "delayed", "max_over", "loss"});
  t.PrintHeader();
}

}  // namespace

int main() {
  Banner("Ablations", "design-choice studies on the Fig. 12 setup (Pareto)");

  const WorkloadKind w = WorkloadKind::kPareto;

  std::printf("\n1. Feedback signal (Section 4.5.1)\n");
  Header();
  {
    ExperimentConfig cfg = PaperConfig(Method::kCtrl, w, 0);
    PrintRow("virtual-queue y_hat", RunSeeds(cfg));
    cfg.ctrl_feedback = FeedbackSignal::kMeasuredDelay;
    PrintRow("measured (stale) y", RunSeeds(cfg));
  }

  std::printf("\n2. Actuator (Section 4.5.2)\n");
  Header();
  {
    ExperimentConfig cfg = PaperConfig(Method::kCtrl, w, 0);
    PrintRow("entry shedder", RunSeeds(cfg));
    cfg.use_queue_shedder = true;
    PrintRow("queue shedder (random)", RunSeeds(cfg));
    cfg.cost_aware_shedding = true;
    PrintRow("queue shedder (LSRM-ish)", RunSeeds(cfg));
  }

  std::printf("\n3. Anti-windup back-calculation\n");
  Header();
  {
    ExperimentConfig cfg = PaperConfig(Method::kCtrl, w, 0);
    PrintRow("anti-windup on", RunSeeds(cfg));
    cfg.anti_windup = false;
    PrintRow("anti-windup off", RunSeeds(cfg));
  }

  std::printf("\n4. Closed-loop pole location (Section 4.4.1)\n");
  Header();
  for (double p : {0.3, 0.5, 0.7, 0.9}) {
    ExperimentConfig cfg = PaperConfig(Method::kCtrl, w, 0);
    cfg.gains = DesignPolePlacement(p, p);
    char label[64];
    std::snprintf(label, sizeof(label), "poles at %.1f", p);
    PrintRow(label, RunSeeds(cfg));
  }

  std::printf("\n5. Operator scheduler (the paper's conjecture that the "
              "model holds for non-priority policies)\n");
  Header();
  {
    const SchedulerKind kinds[] = {
        SchedulerKind::kRoundRobin, SchedulerKind::kGlobalFifo,
        SchedulerKind::kLongestQueue, SchedulerKind::kRandom};
    const char* names[] = {"round-robin (Borealis)", "global FIFO",
                           "longest queue", "random"};
    for (int i = 0; i < 4; ++i) {
      ExperimentConfig cfg = PaperConfig(Method::kCtrl, w, 0);
      cfg.scheduler = kinds[i];
      PrintRow(names[i], RunSeeds(cfg));
    }
  }

  std::printf("\n6. Arrival-rate predictor feeding the actuator "
              "(Section 6 future work)\n");
  Header();
  {
    const PredictorKind kinds[] = {PredictorKind::kLastValue,
                                   PredictorKind::kEwma, PredictorKind::kAr1,
                                   PredictorKind::kKalman};
    const char* names[] = {"last-value (Eq. 13)", "EWMA", "AR(1)", "Kalman"};
    for (int i = 0; i < 4; ++i) {
      ExperimentConfig cfg = PaperConfig(Method::kCtrl, w, 0);
      cfg.predictor = kinds[i];
      PrintRow(names[i], RunSeeds(cfg));
    }
  }

  std::printf("\n7. Online headroom adaptation under a mis-identified H "
              "(true H = 0.85, configured 0.97)\n");
  Header();
  {
    ExperimentConfig cfg = PaperConfig(Method::kCtrl, w, 0);
    cfg.headroom_true = 0.85;
    PrintRow("fixed (wrong) H", RunSeeds(cfg));
    cfg.adapt_headroom = true;
    PrintRow("adaptive H", RunSeeds(cfg));
  }

  std::printf("\n8. Controller structure (paper CTRL vs textbook PI vs "
              "deadbeat BASELINE), Pareto and MMPP workloads\n");
  Header();
  for (WorkloadKind w2 : {WorkloadKind::kPareto, WorkloadKind::kMmpp}) {
    for (Method m : {Method::kCtrl, Method::kPi, Method::kBaseline}) {
      ExperimentConfig cfg = PaperConfig(m, w2, 0);
      char label[64];
      std::snprintf(label, sizeof(label), "%s / %s", MethodName(m),
                    w2 == WorkloadKind::kPareto ? "Pareto" : "MMPP");
      PrintRow(label, RunSeeds(cfg));
    }
  }

  std::printf(
      "\n(faster poles shed harder on transients — more loss, fewer "
      "violations; the paper picks 0.7 as the balance)\n");
  return 0;
}
