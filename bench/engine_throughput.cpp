// engine_throughput — tuples/second of the batched, allocation-free
// datapath, gated against an in-binary seed-reference datapath.
//
// Two sweeps over batch sizes {1, 16, 64, 256}:
//   sim: Engine::InjectBatch + AdvanceTo with the scheduler quantum set to
//        the batch size (the pure virtual-time datapath);
//   rt:  RtEngine::OfferBatch into the SPSC ingress rings + a synchronous
//        Pump on an un-Started engine (adds the ring hop and the pump's
//        merge/holdover machinery on top of the sim path).
//
// The reference is a faithful replica of the pre-batching engine hot path
// compiled into this binary — std::deque operator queues, an
// unordered_map lineage table with an unordered_set shed-taint side table,
// a std::function emit closure built per invocation, and per-invocation
// round-robin re-selection — driving the same 14-operator identification
// chain over the same payload stream, so both datapaths execute the same
// operator invocations and filter decisions. Measuring both in one
// process removes cross-run variance from the gates.
//
// A third section microbenchmarks the whole-chunk kernels in isolation —
// filter (mask + compaction), map (passthrough lane copy), agg
// (sequential-order fold), shed (coin-flip mask + count) — over a hot
// 4096-tuple lane, and reports which SIMD mode the dispatch resolved to.
//
//   engine_throughput [--quick] [--check-allocs] [reps=N] [window=SECONDS]
//
//   --quick         short windows / fewer reps (the CI smoke setting)
//   --check-allocs  count heap allocations (global operator new) over the
//                   steady-state measurement rounds of the new datapath
//                   and fail unless the count is exactly zero
//
// Emits BENCH_engine.json. Exit 0 iff every gate holds:
//   sim batch=1  >= 0.97 x seed reference (the per-tuple path may not
//                  regress past noise), and
//   sim batch=64 >= 2.0 x seed reference on SIMD builds / >= 1.5 x on
//                  scalar-only builds (the vectorized columnar path must
//                  pay; --quick gates the scalar floor of 1.5 x — the
//                  columnar margin is wide enough that even short windows
//                  on a shared runner clear it),
//   and zero steady-state allocations when --check-allocs ran.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "engine/simd_kernels.h"
#include "rt/rt_clock.h"
#include "rt/rt_engine.h"
#include "runner/networks.h"

// ---------------------------------------------------------------------------
// Counting allocator: every path through global operator new bumps one
// relaxed atomic while counting is armed. The measured steady-state rounds
// of the pooled datapath must not allocate at all.

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<uint64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t n) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

using namespace ctrlshed;

namespace {

// Same chain the identification workloads run: nominal entry cost c =
// H / capacity with the paper's H = 0.97 and ~190 t/s capacity.
constexpr double kHeadroom = 0.97;
constexpr double kEntryCost = 0.97 / 190.0;

constexpr size_t kBatches[] = {1, 16, 64, 256};
constexpr size_t kNumBatches = sizeof(kBatches) / sizeof(kBatches[0]);
constexpr int kPerRound = 8192;  // tuples injected, then drained, per round

// Shared payload stream: both datapaths cycle this table, so every filter
// sees identical inputs and the invocation counts match exactly.
constexpr size_t kNumValues = 4096;

double Arg(int argc, char** argv, const char* key, double fallback) {
  const size_t keylen = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, keylen) == 0 && argv[i][keylen] == '=') {
      return std::atof(argv[i] + keylen + 1);
    }
  }
  return fallback;
}

bool Flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::vector<double> MakeValues() {
  Rng rng(123);
  std::vector<double> v(kNumValues);
  for (double& x : v) x = rng.Uniform();
  return v;
}

// ---------------------------------------------------------------------------
// The seed-reference datapath: the engine hot path exactly as it was before
// the batched rewrite. Kept deliberately line-for-line close to the old
// Engine::Inject / ExecuteOne / RoundRobinScheduler::Next, including its
// allocation behavior (deque nodes, hash-map lineage entries, and a
// std::function emit whose capture exceeds the small-buffer optimization).

namespace seedref {

using SeedEmitFn = std::function<void(const Tuple&)>;

double HashToUnit(double value, int op_id) {
  uint64_t x;
  static_assert(sizeof(x) == sizeof(value));
  __builtin_memcpy(&x, &value, sizeof(x));
  x ^= 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(op_id + 1);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x = x ^ (x >> 31);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

class Op {
 public:
  Op(char kind, double cost, double threshold)
      : kind_(kind), cost_(cost), threshold_(threshold) {}
  virtual ~Op() = default;

  // Virtual like the real OperatorBase::Process, so the reference pays the
  // same dispatch cost per invocation.
  virtual void Process(const Tuple& in, const SeedEmitFn& emit) {
    switch (kind_) {
      case 'f':
        if (HashToUnit(in.value, id) < threshold_) emit(in);
        break;
      default:  // map / union both forward unchanged here
        emit(in);
        break;
    }
  }

  int id = 0;
  Op* down = nullptr;
  std::deque<Tuple> queue;
  double cost() const { return cost_; }

 private:
  char kind_;
  double cost_;
  double threshold_;
};

struct LineageState {
  int live_instances = 0;
  bool derived = false;
};

class Engine {
 public:
  Engine() {
    struct Spec {
      char kind;
      double sel;
    };
    // The identification chain of BuildIdentificationNetwork, same cost
    // scaling: 14 uniform-cost operators, filters at the same positions.
    const Spec specs[] = {
        {'m', 1.0}, {'f', 0.90}, {'m', 1.0}, {'f', 0.80}, {'m', 1.0},
        {'u', 1.0}, {'f', 0.85}, {'m', 1.0}, {'f', 0.90}, {'m', 1.0},
        {'m', 1.0}, {'f', 0.95}, {'m', 1.0}, {'m', 1.0},
    };
    double expected = 0.0, reach = 1.0;
    for (const Spec& s : specs) {
      expected += reach;
      reach *= s.sel;
    }
    const double cost_each = kEntryCost / expected;
    for (const Spec& s : specs) {
      ops_.emplace_back(new Op(s.kind, cost_each, s.sel));
      ops_.back()->id = static_cast<int>(ops_.size()) - 1;
    }
    for (size_t i = 0; i + 1 < ops_.size(); ++i) {
      ops_[i]->down = ops_[i + 1].get();
    }
    // Remaining static cost from each position to the sink, weighted by
    // reach probability — what QueryNetwork::RemainingCost precomputes.
    remaining_.resize(ops_.size());
    double acc = 0.0;
    for (size_t i = ops_.size(); i-- > 0;) {
      // Downstream-of-i remaining, discounted by i's selectivity.
      acc = cost_each + specs[i].sel * acc;
      remaining_[i] = acc;
    }
  }

  void Inject(Tuple t, SimTime now) {
    if (queued_tuples_ == 0 && now > clock_) clock_ = now;
    t.lineage = next_lineage_++;
    lineages_[t.lineage] = LineageState{0, false};
    Tuple copy = t;
    lineages_[copy.lineage].live_instances++;
    copy.port = 0;
    ops_.front()->queue.push_back(copy);
    ++queued_tuples_;
    outstanding_ += remaining_[0];
  }

  void Drain() {
    while (true) {
      Op* op = Next();
      if (op == nullptr) return;
      ExecuteOne(op);
    }
  }

  uint64_t invocations() const { return invocations_; }
  uint64_t departed() const { return departed_; }

 private:
  Op* Next() {
    const size_t n = ops_.size();
    for (size_t step = 0; step < n; ++step) {
      Op* op = ops_[(rr_ + step) % n].get();
      if (!op->queue.empty()) {
        rr_ = (rr_ + step + 1) % n;
        return op;
      }
    }
    return nullptr;
  }

  void Release(const Tuple& t, bool shed) {
    auto it = lineages_.find(t.lineage);
    LineageState& st = it->second;
    --st.live_instances;
    if (shed) shed_taint_.insert(t.lineage);
    if (st.live_instances == 0) {
      const bool tainted = shed_taint_.erase(t.lineage) > 0;
      lineages_.erase(it);
      if (!tainted) ++departed_;
    }
  }

  void ExecuteOne(Op* op) {
    Tuple in = op->queue.front();
    op->queue.pop_front();
    --queued_tuples_;
    const size_t op_idx = static_cast<size_t>(op->id);
    const double r_in = remaining_[op_idx];
    outstanding_ -= r_in;
    if (queued_tuples_ == 0) outstanding_ = 0.0;
    double drained = r_in;

    const double cost = op->cost();
    clock_ += cost / kHeadroom;
    busy_seconds_ += cost;
    ++invocations_;

    bool emitted_to_sink = false;
    const SimTime completion = clock_;

    SeedEmitFn emit = [&](const Tuple& out_in) {
      Tuple out = out_in;
      if (op->down == nullptr) {
        emitted_to_sink = true;
        return;
      }
      Tuple copy = out;
      lineages_[copy.lineage].live_instances++;
      copy.port = 0;
      op->down->queue.push_back(copy);
      ++queued_tuples_;
      const double r = remaining_[static_cast<size_t>(op->down->id)];
      outstanding_ += r;
      drained -= r;
    };

    op->Process(in, emit);
    drained_load_ += drained;
    Release(in, /*shed=*/false);
    (void)emitted_to_sink;
    (void)completion;
  }

  std::vector<std::unique_ptr<Op>> ops_;
  std::vector<double> remaining_;
  std::unordered_map<LineageId, LineageState> lineages_;
  std::unordered_set<LineageId> shed_taint_;
  LineageId next_lineage_ = 1;
  size_t rr_ = 0;
  SimTime clock_ = 0.0;
  uint64_t queued_tuples_ = 0;
  double outstanding_ = 0.0;
  double busy_seconds_ = 0.0;
  double drained_load_ = 0.0;
  uint64_t invocations_ = 0;
  uint64_t departed_ = 0;
};

}  // namespace seedref

// ---------------------------------------------------------------------------
// Measurement loops. Each rep injects kPerRound tuples and drains, round
// after round, until `window` wall seconds elapse; the reported figure is
// tuples per second of the best rep (insulates the gates from scheduler
// hiccups, same policy as overhead_telemetry).

double MeasureSeedRef(const std::vector<double>& values, double window,
                      int reps) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    seedref::Engine eng;
    Tuple t;
    t.source = 0;
    size_t vi = 0;
    // Warmup: one round primes allocator caches and hash-map capacity.
    for (int i = 0; i < kPerRound; ++i) {
      t.value = values[vi++ % kNumValues];
      eng.Inject(t, 0.0);
    }
    eng.Drain();
    uint64_t total = 0;
    const auto t0 = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    while (elapsed < window) {
      for (int i = 0; i < kPerRound; ++i) {
        t.value = values[vi++ % kNumValues];
        eng.Inject(t, 0.0);
      }
      eng.Drain();
      total += kPerRound;
      elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count();
    }
    best = std::max(best, static_cast<double>(total) / elapsed);
  }
  return best;
}

/// One rep of the sim datapath at a given batch size; returns tuples/s and
/// (optionally) counts heap allocations over the post-warmup rounds.
double MeasureSimRep(size_t batch, const std::vector<double>& values,
                     double window, bool check_allocs, uint64_t* allocs_out) {
  QueryNetwork net;
  BuildIdentificationNetwork(&net, kEntryCost);
  Engine eng(&net, kHeadroom);
  eng.scheduler().set_quantum(batch);

  std::vector<Tuple> stage(batch);
  size_t vi = 0;
  auto run_round = [&] {
    for (int i = 0; i < kPerRound; i += static_cast<int>(batch)) {
      const size_t n =
          std::min(batch, static_cast<size_t>(kPerRound - i));
      for (size_t j = 0; j < n; ++j) {
        stage[j] = Tuple{};
        stage[j].source = 0;
        stage[j].value = values[vi++ % kNumValues];
      }
      eng.InjectBatch(stage.data(), n);
    }
    // Full drain: the horizon must lie beyond the idle clock (AdvanceTo
    // parks the virtual CPU at the horizon when the network empties).
    eng.AdvanceTo(eng.cpu_clock() + 1e9);
  };

  // Warmup until the chunk pool's high-water mark stops moving: from then
  // on the steady state must be allocation-free.
  uint64_t pool_high = 0;
  for (int r = 0; r < 8; ++r) {
    run_round();
    const uint64_t now_high = eng.chunk_pool().allocated();
    if (r > 2 && now_high == pool_high) break;
    pool_high = now_high;
  }

  if (check_allocs) {
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
  }
  uint64_t total = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  while (elapsed < window) {
    run_round();
    total += kPerRound;
    elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  if (check_allocs) {
    g_count_allocs.store(false, std::memory_order_relaxed);
    if (allocs_out != nullptr) {
      *allocs_out = g_alloc_count.load(std::memory_order_relaxed);
    }
  }
  return static_cast<double>(total) / elapsed;
}

double MeasureSim(size_t batch, const std::vector<double>& values,
                  double window, int reps, bool check_allocs,
                  uint64_t* allocs_out) {
  double best = 0.0;
  uint64_t worst_allocs = 0;
  for (int rep = 0; rep < reps; ++rep) {
    uint64_t allocs = 0;
    best = std::max(best, MeasureSimRep(batch, values, window, check_allocs,
                                        &allocs));
    worst_allocs = std::max(worst_allocs, allocs);
  }
  if (allocs_out != nullptr) *allocs_out = worst_allocs;
  return best;
}

/// One rep of the rt pump datapath: preload the ingress ring with
/// OfferBatch, then a synchronous Pump drains ring -> engine -> sinks.
double MeasureRtRep(size_t batch, const std::vector<double>& values,
                    double window, bool check_allocs, uint64_t* allocs_out) {
  QueryNetwork net;
  BuildIdentificationNetwork(&net, kEntryCost);
  RtClock clock(/*compression=*/1.0);
  clock.Start();
  RtEngineOptions opts;
  opts.headroom = kHeadroom;
  opts.ring_capacity = 4096;
  opts.batch = batch;
  RtEngine eng(&net, &clock, /*num_sources=*/1, opts);

  constexpr size_t kOfferChunk = 512;
  std::vector<Tuple> stage(kOfferChunk);
  size_t vi = 0;
  SimTime now = 0.0;
  auto run_round = [&] {
    size_t offered = 0;
    for (int i = 0; i < kPerRound; i += static_cast<int>(kOfferChunk)) {
      for (size_t j = 0; j < kOfferChunk; ++j) {
        stage[j] = Tuple{};
        stage[j].source = 0;
        stage[j].value = values[vi++ % kNumValues];
      }
      offered += eng.OfferBatch(stage.data(), kOfferChunk);
      // The ring holds 4096 and kPerRound fills it twice over; pump
      // between chunks like the worker would under backpressure.
      if ((i / kOfferChunk) % 4 == 3) {
        now += 1e6;
        eng.Pump(now);
      }
    }
    now += 1e6;
    eng.Pump(now);
    return offered;
  };

  for (int r = 0; r < 6; ++r) run_round();  // warmup (pool + scratch sizing)

  if (check_allocs) {
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
  }
  uint64_t total = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  while (elapsed < window) {
    total += run_round();
    elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  if (check_allocs) {
    g_count_allocs.store(false, std::memory_order_relaxed);
    if (allocs_out != nullptr) {
      *allocs_out = g_alloc_count.load(std::memory_order_relaxed);
    }
  }
  return static_cast<double>(total) / elapsed;
}

double MeasureRt(size_t batch, const std::vector<double>& values,
                 double window, int reps, bool check_allocs,
                 uint64_t* allocs_out) {
  double best = 0.0;
  uint64_t worst_allocs = 0;
  for (int rep = 0; rep < reps; ++rep) {
    uint64_t allocs = 0;
    best = std::max(best,
                    MeasureRtRep(batch, values, window, check_allocs, &allocs));
    worst_allocs = std::max(worst_allocs, allocs);
  }
  if (allocs_out != nullptr) *allocs_out = worst_allocs;
  return best;
}

// ---------------------------------------------------------------------------
// Per-kernel microbench: each cell drives one whole-chunk kernel over a hot
// 4096-tuple lane set and reports raw tuples/second. The cells isolate the
// kernels the columnar executor composes — regressions here localize a
// datapath slowdown to one kernel before anyone reads a profile.

struct KernelCells {
  double filter = 0.0;  // dispatch filter_mask + survivor compaction
  double map = 0.0;     // passthrough lane copy (value/aux/arrival/lineage)
  double agg = 0.0;     // sequential-order fold (AggRun)
  double shed = 0.0;    // dispatch shed_mask + admitted count
};

template <typename Fn>
double MeasureKernelCell(double window, size_t tuples_per_pass, Fn&& pass) {
  // Warm the lanes and let the branch predictor settle.
  for (int i = 0; i < 16; ++i) pass();
  uint64_t total = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  while (elapsed < window) {
    for (int i = 0; i < 64; ++i) pass();
    total += 64 * tuples_per_pass;
    elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return static_cast<double>(total) / elapsed;
}

KernelCells MeasureKernels(const std::vector<double>& values, double window) {
  const size_t n = values.size();
  const kernels::KernelTable& table = kernels::Kernels();

  std::vector<uint8_t> mask(n);
  std::vector<double> dst(n);
  std::vector<uint64_t> lineage_src(n), lineage_dst(n);
  for (size_t i = 0; i < n; ++i) lineage_src[i] = i;
  std::vector<double> uniforms(n);
  Rng rng(7);
  for (double& u : uniforms) u = rng.Uniform();

  // Sinks defeat dead-code elimination across passes.
  volatile size_t survivors_sink = 0;
  volatile double agg_sink = 0.0;

  KernelCells cells;
  const uint64_t salt = kernels::FilterSalt(1);
  const uint64_t bound = kernels::FilterPassBound(0.6);
  cells.filter = MeasureKernelCell(window, n, [&] {
    table.filter_mask(values.data(), n, salt, bound, mask.data());
    survivors_sink =
        kernels::CompactLane(values.data(), mask.data(), n, dst.data());
  });
  cells.map = MeasureKernelCell(window, n, [&] {
    // What the columnar passthrough moves per tuple: three double lanes
    // plus the lineage lane.
    std::memcpy(dst.data(), values.data(), n * sizeof(double));
    std::memcpy(uniforms.data(), dst.data(), n * sizeof(double));
    std::memcpy(dst.data(), uniforms.data(), n * sizeof(double));
    std::memcpy(lineage_dst.data(), lineage_src.data(),
                n * sizeof(uint64_t));
    survivors_sink = lineage_dst[n - 1] != 0 ? n : 0;
  });
  // Restore the uniform lane the map cell scribbled over.
  rng = Rng(7);
  for (double& u : uniforms) u = rng.Uniform();
  cells.agg = MeasureKernelCell(window, n, [&] {
    double acc = 0.0, mx = -1e300;
    kernels::AggRun(values.data(), n, &acc, &mx);
    agg_sink = acc + mx;
  });
  cells.shed = MeasureKernelCell(window, n, [&] {
    table.shed_mask(uniforms.data(), n, 0.3, mask.data());
    survivors_sink = kernels::CountMask(mask.data(), n);
  });
  (void)survivors_sink;
  (void)agg_sink;
  return cells;
}

void WriteJson(double seed_ref, const double (&sim)[kNumBatches],
               const double (&rt)[kNumBatches], const KernelCells& cells,
               double ratio1, double ratio64, double gate64,
               bool allocs_checked, uint64_t sim_allocs, uint64_t rt_allocs,
               bool quick, bool pass) {
  FILE* f = std::fopen("BENCH_engine.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_engine.json");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"engine_throughput\",\n");
  std::fprintf(f, "  \"metric\": \"tuples_per_second\",\n");
  std::fprintf(f, "  \"simd_mode\": \"%s\",\n", kernels::ActiveSimdModeName());
  std::fprintf(f, "  \"seed_reference\": %.9g,\n", seed_ref);
  std::fprintf(f, "  \"sim\": {");
  for (size_t i = 0; i < kNumBatches; ++i) {
    std::fprintf(f, "%s\"batch%zu\": %.9g", i == 0 ? "" : ", ", kBatches[i],
                 sim[i]);
  }
  std::fprintf(f, "},\n  \"rt_pump\": {");
  for (size_t i = 0; i < kNumBatches; ++i) {
    std::fprintf(f, "%s\"batch%zu\": %.9g", i == 0 ? "" : ", ", kBatches[i],
                 rt[i]);
  }
  std::fprintf(f, "},\n");
  std::fprintf(f,
               "  \"kernels\": {\"filter\": %.9g, \"map\": %.9g, "
               "\"agg\": %.9g, \"shed\": %.9g},\n",
               cells.filter, cells.map, cells.agg, cells.shed);
  std::fprintf(f, "  \"ratio_vs_seed\": {\"batch1\": %.4f, \"batch64\": %.4f},\n",
               ratio1, ratio64);
  std::fprintf(f, "  \"allocs_checked\": %s,\n",
               allocs_checked ? "true" : "false");
  if (allocs_checked) {
    std::fprintf(f,
                 "  \"steady_state_allocs\": {\"sim\": %llu, \"rt\": %llu},\n",
                 static_cast<unsigned long long>(sim_allocs),
                 static_cast<unsigned long long>(rt_allocs));
  }
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"gate\": \"batch1 >= 0.97x seed, batch64 >= %.1fx seed%s\",\n",
               gate64, allocs_checked ? ", zero steady-state allocs" : "");
  std::fprintf(f, "  \"pass\": %s\n}\n", pass ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("engine_throughput",
                "batched datapath tuples/sec vs the seed-reference hot path");

  const bool quick = Flag(argc, argv, "--quick");
  const bool check_allocs = Flag(argc, argv, "--check-allocs");
  const int reps =
      static_cast<int>(Arg(argc, argv, "reps", quick ? 2.0 : 3.0));
  const double window = Arg(argc, argv, "window", quick ? 0.15 : 0.6);

  std::printf("identification chain (14 ops, c = H/190, H = %.2f), "
              "%d tuples/round, best of %d reps x %.2fs windows%s\n",
              kHeadroom, kPerRound, reps, window,
              check_allocs ? ", counting steady-state allocations" : "");
  std::printf("simd dispatch: %s\n\n", kernels::ActiveSimdModeName());

  const std::vector<double> values = MakeValues();

  const double seed_ref = MeasureSeedRef(values, window, reps);
  std::printf("seed reference       %12.0f tuples/s\n", seed_ref);

  double sim[kNumBatches] = {};
  double rt[kNumBatches] = {};
  uint64_t sim_allocs = 0, rt_allocs = 0;
  for (size_t i = 0; i < kNumBatches; ++i) {
    const size_t b = kBatches[i];
    uint64_t a = 0;
    sim[i] = MeasureSim(b, values, window, reps,
                        check_allocs && b == 64, &a);
    if (b == 64) sim_allocs = a;
    std::printf("sim      batch %4zu  %12.0f tuples/s  (%.2fx seed)\n", b,
                sim[i], sim[i] / seed_ref);
  }
  for (size_t i = 0; i < kNumBatches; ++i) {
    const size_t b = kBatches[i];
    uint64_t a = 0;
    rt[i] = MeasureRt(b, values, window, reps, check_allocs && b == 64, &a);
    if (b == 64) rt_allocs = a;
    std::printf("rt pump  batch %4zu  %12.0f tuples/s  (%.2fx seed)\n", b,
                rt[i], rt[i] / seed_ref);
  }

  const KernelCells cells = MeasureKernels(values, quick ? 0.05 : 0.2);
  std::printf("\nper-kernel cells (%s, 4096-tuple lanes):\n",
              kernels::ActiveSimdModeName());
  std::printf("kernel filter        %12.0f tuples/s\n", cells.filter);
  std::printf("kernel map           %12.0f tuples/s\n", cells.map);
  std::printf("kernel agg           %12.0f tuples/s\n", cells.agg);
  std::printf("kernel shed          %12.0f tuples/s\n", cells.shed);

  const double ratio1 = sim[0] / seed_ref;
  const double ratio64 = sim[2] / seed_ref;
  // The batch=64 speedup gate: 2.0x where the vector kernels are live, the
  // 1.5x scalar floor otherwise. --quick (the CI smoke) always gates the
  // scalar floor — the columnar margin is wide enough that short windows on
  // a shared runner still clear 1.5x, while 2.0x is reserved for full runs
  // on an idle machine.
  const bool simd_live = kernels::ActiveSimdMode() != kernels::SimdMode::kScalar;
  const double gate64 = (quick || !simd_live) ? 1.5 : 2.0;
  bool pass = ratio1 >= 0.97 && ratio64 >= gate64;
  std::printf("\nbatch=1 ratio %.3f (gate >= 0.97), batch=64 ratio %.3f "
              "(gate >= %.1f)\n",
              ratio1, ratio64, gate64);
  if (check_allocs) {
    std::printf("steady-state heap allocations: sim %llu, rt pump %llu "
                "(gate: 0)\n",
                static_cast<unsigned long long>(sim_allocs),
                static_cast<unsigned long long>(rt_allocs));
    pass = pass && sim_allocs == 0 && rt_allocs == 0;
  }

  WriteJson(seed_ref, sim, rt, cells, ratio1, ratio64, gate64, check_allocs,
            sim_allocs, rt_allocs, quick, pass);
  std::printf("%s (BENCH_engine.json written)\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
