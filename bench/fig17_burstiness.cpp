// Reproduces Fig. 17: robustness against input burstiness. The Pareto
// workload's bias factor beta sweeps {0.1, 0.25, 0.5, 1, 1.25, 1.5}
// (smaller = burstier); each metric is reported relative to its value at
// beta = 1.5, separately for CTRL (panel A) and AURORA (panel B).
//
// Expected shape: CTRL's delay metrics move far less across the sweep than
// AURORA's, whose absolute values are an order of magnitude worse
// throughout.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"

using namespace ctrlshed;
using namespace ctrlshed::bench;

int main() {
  Banner("Fig. 17", "effect of input burstiness (relative to beta = 1.5)");

  const std::vector<double> betas = {0.1, 0.25, 0.5, 1.0, 1.25, 1.5};

  for (Method m : {Method::kCtrl, Method::kAurora}) {
    std::vector<MeanMetrics> metrics;
    for (double beta : betas) {
      ExperimentConfig cfg = PaperConfig(m, WorkloadKind::kPareto, 0);
      cfg.pareto.beta = beta;
      metrics.push_back(RunSeeds(cfg));
    }
    const MeanMetrics& ref = metrics.back();  // beta = 1.5

    std::printf("\nPanel %s (values relative to beta = 1.5):\n",
                MethodName(m));
    TablePrinter table(std::cout, {"beta", "max_over", "loss", "accum_viol",
                                   "delayed"});
    table.PrintHeader();
    for (size_t i = 0; i < betas.size(); ++i) {
      table.PrintRow({betas[i],
                      metrics[i].max_overshoot / ref.max_overshoot,
                      metrics[i].loss_ratio / ref.loss_ratio,
                      metrics[i].accumulated_violation /
                          ref.accumulated_violation,
                      metrics[i].delayed_tuples / ref.delayed_tuples});
    }
    std::printf("absolute accum violations at beta=1.5: %.1f tuple-seconds\n",
                ref.accumulated_violation);
  }
  return 0;
}
