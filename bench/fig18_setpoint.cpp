// Reproduces Fig. 18: responses to runtime changes of the target delay.
// yd starts at 1 s, becomes 3 s at t = 150 s and 5 s at t = 300 s. CTRL
// converges to each new target quickly; BASELINE lags; AURORA — being
// open-loop — does not react to yd at all.
//
// Holding a raised delay target requires a persistently full queue, i.e.
// sustained overload. The paper's LBL web trace ran well above its
// testbed's capacity throughout; our synthetic web trace has valleys below
// capacity where the delay sags (not a violation). The bench therefore
// shows two panels: a constant-overload input that isolates the setpoint
// dynamics, and the web-like input for the paper's setting.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"

using namespace ctrlshed;
using namespace ctrlshed::bench;

namespace {

void RunPanel(const char* label, WorkloadKind w) {
  std::vector<ExperimentResult> results;
  for (Method m : {Method::kCtrl, Method::kBaseline, Method::kAurora}) {
    ExperimentConfig cfg = PaperConfig(m, w, 11);
    cfg.vary_cost = false;  // isolate the setpoint dynamics
    cfg.constant_rate = 320.0;
    cfg.web.mean_rate = 300.0;
    cfg.target_delay = 1.0;
    cfg.setpoint_schedule = {{150.0, 3.0}, {300.0, 5.0}};
    results.push_back(RunExperiment(cfg));
  }

  std::printf("\nPanel %s: measured delay per period (s)\n", label);
  TablePrinter table(std::cout, {"t", "yd", "CTRL", "BASELINE", "AURORA"});
  table.PrintHeader();
  const size_t n = results[0].recorder.rows().size();
  auto value = [&](size_t which, size_t k) {
    const PeriodRecord& row = results[which].recorder.rows()[k];
    return row.m.has_y_measured ? row.m.y_measured : 0.0;
  };
  for (size_t k = 0; k < n; ++k) {
    table.PrintRow({results[0].recorder.rows()[k].m.t,
                    results[0].recorder.rows()[k].m.target_delay, value(0, k),
                    value(1, k), value(2, k)});
  }

  const char* names[] = {"CTRL", "BASELINE", "AURORA"};
  std::printf("\nMean delay over the settled part of each segment (s), "
              "targets 1 / 3 / 5:\n");
  std::printf("%-9s %10s %10s %10s\n", "method", "yd=1", "yd=3", "yd=5");
  for (size_t i = 0; i < 3; ++i) {
    double seg[3] = {0, 0, 0};
    int cnt[3] = {0, 0, 0};
    for (const PeriodRecord& row : results[i].recorder.rows()) {
      if (!row.m.has_y_measured) continue;
      int s = row.m.t < 150 ? 0 : (row.m.t < 300 ? 1 : 2);
      const double settle = s == 0 ? 50.0 : (s == 1 ? 180.0 : 330.0);
      if (row.m.t < settle) continue;
      seg[s] += row.m.y_measured;
      cnt[s]++;
    }
    std::printf("%-9s %10.3f %10.3f %10.3f\n", names[i],
                cnt[0] ? seg[0] / cnt[0] : 0.0, cnt[1] ? seg[1] / cnt[1] : 0.0,
                cnt[2] ? seg[2] / cnt[2] : 0.0);
  }

  // Convergence time after each setpoint change: first period from which
  // the measured delay stays within 15% of the new target for 5 periods.
  std::printf("\nSeconds to converge after each setpoint change:\n");
  std::printf("%-9s %10s %10s\n", "method", "1->3@150s", "3->5@300s");
  for (size_t i = 0; i < 3; ++i) {
    double conv[2] = {-1.0, -1.0};
    const double changes[2] = {150.0, 300.0};
    const double targets[2] = {3.0, 5.0};
    const auto& rows = results[i].recorder.rows();
    for (int c2 = 0; c2 < 2; ++c2) {
      for (size_t k = 0; k < rows.size(); ++k) {
        if (rows[k].m.t <= changes[c2]) continue;
        bool settled = true;
        for (size_t j = k; j < std::min(rows.size(), k + 5); ++j) {
          if (!rows[j].m.has_y_measured ||
              std::abs(rows[j].m.y_measured - targets[c2]) >
                  0.15 * targets[c2]) {
            settled = false;
            break;
          }
        }
        if (settled) {
          conv[c2] = rows[k].m.t - changes[c2];
          break;
        }
      }
    }
    auto fmt = [](double v) { return v < 0 ? -1.0 : v; };
    std::printf("%-9s %10.0f %10.0f   (-1 = never settled)\n", names[i],
                fmt(conv[0]), fmt(conv[1]));
  }
}

}  // namespace

int main() {
  Banner("Fig. 18", "responses to runtime target-delay changes");
  RunPanel("A (constant overload, 320 tuples/s)", WorkloadKind::kConstant);
  RunPanel("B (web-like input, mean 300 tuples/s)", WorkloadKind::kWeb);
  std::printf("\n(AURORA's segment means should show no relationship to the "
              "targets; delay sag during under-capacity valleys of panel B "
              "is expected and is not a violation)\n");
  return 0;
}
