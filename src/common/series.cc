#include "common/series.h"

#include <algorithm>
#include <cmath>

namespace ctrlshed {

std::vector<double> TimeSeries::Values() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const Sample& s : samples_) out.push_back(s.value);
  return out;
}

SummaryStats TimeSeries::Stats() const { return ComputeStats(Values()); }

double TimeSeries::Max() const {
  double m = 0.0;
  bool first = true;
  for (const Sample& s : samples_) {
    if (first || s.value > m) m = s.value;
    first = false;
  }
  return m;
}

double TimeSeries::Mean() const { return Stats().mean; }

double TimeSeries::SumAbove(double threshold) const {
  double sum = 0.0;
  for (const Sample& s : samples_) {
    if (s.value > threshold) sum += s.value - threshold;
  }
  return sum;
}

size_t TimeSeries::CountAbove(double threshold) const {
  size_t n = 0;
  for (const Sample& s : samples_) {
    if (s.value > threshold) ++n;
  }
  return n;
}

SummaryStats ComputeStats(const std::vector<double>& values) {
  SummaryStats st;
  st.count = values.size();
  if (values.empty()) return st;
  st.min = *std::min_element(values.begin(), values.end());
  st.max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (double v : values) sum += v;
  st.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - st.mean) * (v - st.mean);
  var /= static_cast<double>(values.size());
  st.stddev = std::sqrt(var);
  return st;
}

}  // namespace ctrlshed
