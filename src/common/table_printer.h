#ifndef CTRLSHED_COMMON_TABLE_PRINTER_H_
#define CTRLSHED_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace ctrlshed {

/// Fixed-width column table printer used by the benchmark harness to emit
/// the rows/series that correspond to the paper's figures. Numeric cells are
/// formatted with a fixed precision; the output doubles as whitespace-
/// separated data that gnuplot or pandas can ingest directly.
class TablePrinter {
 public:
  /// Creates a printer that writes to `out` with the given column headers.
  TablePrinter(std::ostream& out, std::vector<std::string> headers);

  /// Prints the header row (call once before the data rows).
  void PrintHeader();

  /// Prints one row of numeric cells; must match the header count.
  void PrintRow(const std::vector<double>& cells);

  /// Prints one row of preformatted string cells.
  void PrintRow(const std::vector<std::string>& cells);

  /// Sets the numeric precision (default 4 significant decimals).
  void set_precision(int p) { precision_ = p; }

 private:
  std::ostream& out_;
  std::vector<std::string> headers_;
  std::vector<size_t> widths_;
  int precision_ = 4;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_COMMON_TABLE_PRINTER_H_
