#include "common/table_printer.h"

#include <cstdio>
#include <iomanip>

#include "common/macros.h"

namespace ctrlshed {

TablePrinter::TablePrinter(std::ostream& out, std::vector<std::string> headers)
    : out_(out), headers_(std::move(headers)) {
  widths_.reserve(headers_.size());
  for (const std::string& h : headers_) {
    widths_.push_back(h.size() < 12 ? 12 : h.size() + 2);
  }
}

void TablePrinter::PrintHeader() {
  for (size_t i = 0; i < headers_.size(); ++i) {
    out_ << std::setw(static_cast<int>(widths_[i])) << headers_[i];
  }
  out_ << "\n";
}

void TablePrinter::PrintRow(const std::vector<double>& cells) {
  CS_CHECK_MSG(cells.size() == headers_.size(), "row width != header width");
  char buf[64];
  for (size_t i = 0; i < cells.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.*f", precision_, cells[i]);
    out_ << std::setw(static_cast<int>(widths_[i])) << buf;
  }
  out_ << "\n";
}

void TablePrinter::PrintRow(const std::vector<std::string>& cells) {
  CS_CHECK_MSG(cells.size() == headers_.size(), "row width != header width");
  for (size_t i = 0; i < cells.size(); ++i) {
    out_ << std::setw(static_cast<int>(widths_[i])) << cells[i];
  }
  out_ << "\n";
}

}  // namespace ctrlshed
