#ifndef CTRLSHED_COMMON_SIM_TIME_H_
#define CTRLSHED_COMMON_SIM_TIME_H_

namespace ctrlshed {

/// Simulated time, in seconds. The whole library runs on a virtual clock so
/// that a 400-second experiment replays in milliseconds of wall time.
using SimTime = double;

/// Converts milliseconds to SimTime seconds.
constexpr SimTime Millis(double ms) { return ms / 1000.0; }

/// Converts microseconds to SimTime seconds.
constexpr SimTime Micros(double us) { return us / 1e6; }

}  // namespace ctrlshed

#endif  // CTRLSHED_COMMON_SIM_TIME_H_
