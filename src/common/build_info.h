#ifndef CTRLSHED_COMMON_BUILD_INFO_H_
#define CTRLSHED_COMMON_BUILD_INFO_H_

#include <string>

namespace ctrlshed {

/// Identification of the running build, captured at CMake configure time.
/// All fields are static string literals — valid for the process lifetime
/// and safe to hand to async-signal contexts (the flight recorder stamps
/// them into crash dumps).
struct BuildInfo {
  const char* git_describe;  ///< `git describe --always --dirty --tags`.
  const char* compiler;      ///< Compiler id and version.
  const char* build_type;    ///< CMAKE_BUILD_TYPE.
  const char* sanitizer;     ///< CTRLSHED_SANITIZE mode, "" when off.
};

/// The build this binary was produced by.
const BuildInfo& GetBuildInfo();

/// One-line human form: `ctrlshed <git> (<type>, <compiler>[, <san>])`.
std::string BuildInfoLine();

/// JSON object form for /status and flight-recorder dumps:
/// {"git":"…","compiler":"…","build_type":"…","sanitizer":"…"}.
std::string BuildInfoJson();

}  // namespace ctrlshed

#endif  // CTRLSHED_COMMON_BUILD_INFO_H_
