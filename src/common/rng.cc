#include "common/rng.h"

#include <cmath>

#include "common/macros.h"

namespace ctrlshed {

double Rng::Pareto(double alpha, double xm) {
  CS_CHECK_MSG(alpha > 0.0 && xm > 0.0, "Pareto parameters must be positive");
  double u = Uniform();
  // Guard against u == 0, which would give an infinite variate.
  if (u <= 0.0) u = 1e-12;
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::BoundedPareto(double alpha, double lo, double hi) {
  CS_CHECK_MSG(alpha > 0.0 && lo > 0.0 && hi > lo,
               "BoundedPareto requires alpha > 0 and 0 < lo < hi");
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  double u = Uniform();
  if (u >= 1.0) u = 1.0 - 1e-12;
  // Inverse CDF of the bounded Pareto distribution.
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(1.0 / x, 1.0 / alpha);
}

}  // namespace ctrlshed
