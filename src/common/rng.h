#ifndef CTRLSHED_COMMON_RNG_H_
#define CTRLSHED_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace ctrlshed {

/// Deterministic pseudo-random source used across the library. Every
/// stochastic component takes an explicit Rng (or a seed) so that whole
/// experiments replay bit-identically.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return Uniform() < p;
  }

  /// Exponential variate with the given rate (mean 1/rate).
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Pareto variate with shape `alpha` and scale (minimum) `xm`:
  /// P(X > x) = (xm / x)^alpha for x >= xm.
  double Pareto(double alpha, double xm);

  /// Bounded Pareto variate on [lo, hi] with shape `alpha` (inverse-CDF
  /// sampling of the truncated distribution).
  double BoundedPareto(double alpha, double lo, double hi);

  /// Log-normal variate where the underlying normal has mean `mu` and
  /// standard deviation `sigma`.
  double LogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Normal variate.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Raw 64-bit draw, e.g. for deriving child seeds.
  uint64_t NextUint64() { return engine_(); }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace ctrlshed

#endif  // CTRLSHED_COMMON_RNG_H_
