#ifndef CTRLSHED_COMMON_SERIES_H_
#define CTRLSHED_COMMON_SERIES_H_

#include <cstddef>
#include <vector>

#include "common/sim_time.h"

namespace ctrlshed {

/// One timestamped observation.
struct Sample {
  SimTime t = 0.0;
  double value = 0.0;
};

/// Summary statistics of a collection of values.
struct SummaryStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  size_t count = 0;
};

/// Append-only time series with basic statistics, used by the monitor,
/// recorder, and system-identification code.
class TimeSeries {
 public:
  TimeSeries() = default;

  void Push(SimTime t, double value) { samples_.push_back({t, value}); }

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const Sample& operator[](size_t i) const { return samples_[i]; }
  const std::vector<Sample>& samples() const { return samples_; }

  /// Values only, in insertion order.
  std::vector<double> Values() const;

  /// Summary statistics over all values; zeros when empty.
  SummaryStats Stats() const;

  /// Largest value; 0 when empty.
  double Max() const;

  /// Arithmetic mean; 0 when empty.
  double Mean() const;

  /// Sum of max(value - threshold, 0) over all samples.
  double SumAbove(double threshold) const;

  /// Number of samples whose value exceeds `threshold`.
  size_t CountAbove(double threshold) const;

 private:
  std::vector<Sample> samples_;
};

/// Computes summary statistics of a raw value vector.
SummaryStats ComputeStats(const std::vector<double>& values);

}  // namespace ctrlshed

#endif  // CTRLSHED_COMMON_SERIES_H_
