#include "common/build_info.h"

#include "common/build_info.gen.h"

namespace ctrlshed {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info{CTRLSHED_BUILD_GIT, CTRLSHED_BUILD_COMPILER,
                              CTRLSHED_BUILD_TYPE, CTRLSHED_BUILD_SANITIZER};
  return info;
}

std::string BuildInfoLine() {
  const BuildInfo& b = GetBuildInfo();
  std::string line = "ctrlshed ";
  line += b.git_describe;
  line += " (";
  line += b.build_type;
  line += ", ";
  line += b.compiler;
  if (b.sanitizer[0] != '\0') {
    line += ", ";
    line += b.sanitizer;
    line += " sanitizer";
  }
  line += ")";
  return line;
}

std::string BuildInfoJson() {
  const BuildInfo& b = GetBuildInfo();
  std::string json = "{\"git\":\"";
  json += b.git_describe;
  json += "\",\"compiler\":\"";
  json += b.compiler;
  json += "\",\"build_type\":\"";
  json += b.build_type;
  json += "\",\"sanitizer\":\"";
  json += b.sanitizer;
  json += "\"}";
  return json;
}

}  // namespace ctrlshed
