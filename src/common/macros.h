#ifndef CTRLSHED_COMMON_MACROS_H_
#define CTRLSHED_COMMON_MACROS_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ctrlshed::internal {

/// Observer invoked on a CS_CHECK failure, after the diagnostic prints
/// and before abort(). The flight recorder (src/telemetry) registers one
/// to dump its ring; cs_common itself depends on nothing. The hook runs
/// on the failing thread mid-crash, so implementations must be reentrant
/// and allocation-free.
using FatalHook = void (*)(const char* expr, const char* file, int line,
                           const char* msg);

inline std::atomic<FatalHook> g_fatal_hook{nullptr};

/// Registers (or clears, with nullptr) the process-wide fatal hook.
/// Returns the previous hook.
inline FatalHook SetFatalHook(FatalHook hook) {
  return g_fatal_hook.exchange(hook, std::memory_order_acq_rel);
}

/// Prints a check-failure diagnostic and aborts the process.
[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "CS_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  if (FatalHook hook = g_fatal_hook.load(std::memory_order_acquire)) {
    hook(expr, file, line, msg);
  }
  std::abort();
}

}  // namespace ctrlshed::internal

/// Aborts with a diagnostic when `cond` is false. Used for programming
/// errors (broken invariants), never for expected runtime failures.
#define CS_CHECK(cond)                                               \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::ctrlshed::internal::CheckFailed(#cond, __FILE__, __LINE__, ""); \
    }                                                                \
  } while (0)

/// CS_CHECK with an explanatory message.
#define CS_CHECK_MSG(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::ctrlshed::internal::CheckFailed(#cond, __FILE__, __LINE__, msg); \
    }                                                                  \
  } while (0)

#endif  // CTRLSHED_COMMON_MACROS_H_
