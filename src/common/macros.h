#ifndef CTRLSHED_COMMON_MACROS_H_
#define CTRLSHED_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

namespace ctrlshed::internal {

/// Prints a check-failure diagnostic and aborts the process.
[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "CS_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace ctrlshed::internal

/// Aborts with a diagnostic when `cond` is false. Used for programming
/// errors (broken invariants), never for expected runtime failures.
#define CS_CHECK(cond)                                               \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::ctrlshed::internal::CheckFailed(#cond, __FILE__, __LINE__, ""); \
    }                                                                \
  } while (0)

/// CS_CHECK with an explanatory message.
#define CS_CHECK_MSG(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::ctrlshed::internal::CheckFailed(#cond, __FILE__, __LINE__, msg); \
    }                                                                  \
  } while (0)

#endif  // CTRLSHED_COMMON_MACROS_H_
