#include "metrics/qos_metrics.h"

#include <algorithm>

#include "common/macros.h"

namespace ctrlshed {

QosAccumulator::QosAccumulator(double target_delay)
    : target_delay_(target_delay) {
  CS_CHECK_MSG(target_delay_ > 0.0, "target delay must be positive");
}

void QosAccumulator::OnDeparture(const Departure& d) {
  const double delay = d.depart_time - d.arrival_time;
  CS_CHECK_MSG(delay >= -1e-9, "negative delay observed");
  ++departures_;
  delay_sum_ += delay;
  histogram_.Record(std::max(0.0, delay));
  const double over = delay - target_delay_;
  if (over > 0.0) {
    accumulated_violation_ += over;
    ++delayed_tuples_;
    max_overshoot_ = std::max(max_overshoot_, over);
  }
}

}  // namespace ctrlshed
