#include "metrics/per_source_stats.h"

#include "common/macros.h"

namespace ctrlshed {

PerSourceStats::PerSourceStats(int num_sources)
    : offered_(static_cast<size_t>(num_sources), 0),
      admitted_(static_cast<size_t>(num_sources), 0),
      departures_(static_cast<size_t>(num_sources), 0),
      delay_sum_(static_cast<size_t>(num_sources), 0.0) {
  CS_CHECK_MSG(num_sources > 0, "need at least one source");
}

void PerSourceStats::CheckSource(int source) const {
  CS_CHECK_MSG(source >= 0 && static_cast<size_t>(source) < offered_.size(),
               "unknown source");
}

void PerSourceStats::OnOffered(const Tuple& t) {
  CheckSource(t.source);
  ++offered_[static_cast<size_t>(t.source)];
}

void PerSourceStats::OnAdmitted(const Tuple& t) {
  CheckSource(t.source);
  ++admitted_[static_cast<size_t>(t.source)];
}

void PerSourceStats::OnDeparture(const Departure& d) {
  CheckSource(d.source);
  ++departures_[static_cast<size_t>(d.source)];
  delay_sum_[static_cast<size_t>(d.source)] += d.depart_time - d.arrival_time;
}

uint64_t PerSourceStats::offered(int source) const {
  CheckSource(source);
  return offered_[static_cast<size_t>(source)];
}

uint64_t PerSourceStats::admitted(int source) const {
  CheckSource(source);
  return admitted_[static_cast<size_t>(source)];
}

uint64_t PerSourceStats::departures(int source) const {
  CheckSource(source);
  return departures_[static_cast<size_t>(source)];
}

double PerSourceStats::LossRatio(int source) const {
  CheckSource(source);
  const uint64_t off = offered_[static_cast<size_t>(source)];
  if (off == 0) return 0.0;
  return 1.0 - static_cast<double>(admitted_[static_cast<size_t>(source)]) /
                   static_cast<double>(off);
}

double PerSourceStats::MeanDelay(int source) const {
  CheckSource(source);
  const uint64_t n = departures_[static_cast<size_t>(source)];
  if (n == 0) return 0.0;
  return delay_sum_[static_cast<size_t>(source)] / static_cast<double>(n);
}

}  // namespace ctrlshed
