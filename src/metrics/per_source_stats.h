#ifndef CTRLSHED_METRICS_PER_SOURCE_STATS_H_
#define CTRLSHED_METRICS_PER_SOURCE_STATS_H_

#include <cstdint>
#include <vector>

#include "engine/engine.h"
#include "engine/tuple.h"

namespace ctrlshed {

/// Per-stream QoS accounting, for systems with heterogeneous guarantees
/// (priority shedding, multi-tenant deployments). Wire OnOffered at the
/// arrival entry point, OnAdmitted after the shedder's decision, and
/// OnDeparture as a departure observer.
class PerSourceStats {
 public:
  explicit PerSourceStats(int num_sources);

  void OnOffered(const Tuple& t);
  void OnAdmitted(const Tuple& t);
  void OnDeparture(const Departure& d);

  int num_sources() const { return static_cast<int>(offered_.size()); }
  uint64_t offered(int source) const;
  uint64_t admitted(int source) const;
  uint64_t departures(int source) const;

  /// Shed fraction of a stream: 1 - admitted/offered (0 when idle).
  double LossRatio(int source) const;

  /// Mean delay of a stream's departed tuples (derived tuples inherit the
  /// source of their trigger tuple).
  double MeanDelay(int source) const;

 private:
  void CheckSource(int source) const;

  std::vector<uint64_t> offered_;
  std::vector<uint64_t> admitted_;
  std::vector<uint64_t> departures_;
  std::vector<double> delay_sum_;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_METRICS_PER_SOURCE_STATS_H_
