#include "metrics/recorder.h"

#include "common/table_printer.h"

namespace ctrlshed {

void Recorder::Write(std::ostream& out) const {
  TablePrinter table(out, {"t", "yd", "fin", "admitted", "fout", "q",
                           "c_ms", "y_hat", "y_meas", "v", "alpha"});
  table.PrintHeader();
  for (const PeriodRecord& r : rows_) {
    table.PrintRow({r.m.t, r.m.target_delay, r.m.fin, r.m.admitted, r.m.fout,
                    r.m.queue, r.m.cost * 1000.0, r.m.y_hat,
                    r.m.has_y_measured ? r.m.y_measured : 0.0, r.v, r.alpha});
  }
}

}  // namespace ctrlshed
