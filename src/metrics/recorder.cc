#include "metrics/recorder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/table_printer.h"

namespace ctrlshed {

void Recorder::Write(std::ostream& out) const {
  TablePrinter table(out, {"t", "yd", "fin", "admitted", "fout", "q",
                           "c_ms", "y_hat", "y_meas", "v", "alpha"});
  table.PrintHeader();
  for (const PeriodRecord& r : rows_) {
    table.PrintRow({r.m.t, r.m.target_delay, r.m.fin, r.m.admitted, r.m.fout,
                    r.m.queue, r.m.cost * 1000.0, r.m.y_hat,
                    r.m.has_y_measured ? r.m.y_measured : 0.0, r.v, r.alpha});
  }
}

void Recorder::WriteCsvHeader(std::ostream& out) {
  out << "k,t,period,yd,fin,fin_forecast,admitted,fout,q,c,y_hat,y_meas,"
         "e,u,v,alpha,loss,lateness,site,queue_shed\n";
}

void Recorder::WriteCsvRow(const PeriodRecord& r, std::ostream& out) {
  char buf[40];
  const auto field = [&out, &buf](double v, char sep) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << buf << sep;
  };
  const double e = r.m.target_delay - r.m.y_hat;
  const double u = r.v - r.m.fout;
  const double loss =
      r.m.fin > 0.0 ? std::max(0.0, (r.m.fin - r.m.admitted) / r.m.fin) : 0.0;
  out << r.m.k << ',';
  field(r.m.t, ',');
  field(r.m.period, ',');
  field(r.m.target_delay, ',');
  field(r.m.fin, ',');
  field(r.m.fin_forecast, ',');
  field(r.m.admitted, ',');
  field(r.m.fout, ',');
  field(r.m.queue, ',');
  field(r.m.cost, ',');
  field(r.m.y_hat, ',');
  field(r.m.has_y_measured ? r.m.y_measured
                           : std::numeric_limits<double>::quiet_NaN(),
        ',');
  field(e, ',');
  field(u, ',');
  field(r.v, ',');
  field(r.alpha, ',');
  field(loss, ',');
  field(r.lateness, ',');
  out << ActuationSiteName(r.site) << ',';
  field(r.queue_shed, '\n');
}

void Recorder::WriteCsv(std::ostream& out) const {
  WriteCsvHeader(out);
  for (const PeriodRecord& r : rows_) WriteCsvRow(r, out);
}

}  // namespace ctrlshed
