#include "metrics/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace ctrlshed {

LatencyHistogram::LatencyHistogram(double min_value, double max_value,
                                   double growth)
    : min_value_(min_value), log_growth_(std::log(growth)) {
  CS_CHECK_MSG(min_value > 0.0 && max_value > min_value && growth > 1.0,
               "invalid histogram layout");
  const size_t n = static_cast<size_t>(
                       std::ceil(std::log(max_value / min_value) / log_growth_)) +
                   2;  // one underflow + one overflow bucket
  buckets_.assign(n, 0);
}

size_t LatencyHistogram::BucketFor(double value) const {
  if (value < min_value_) return 0;
  const size_t i =
      1 + static_cast<size_t>(std::floor(std::log(value / min_value_) /
                                         log_growth_));
  return std::min(i, buckets_.size() - 1);
}

double LatencyHistogram::BucketUpperEdge(size_t i) const {
  if (i == 0) return min_value_;
  return min_value_ * std::exp(log_growth_ * static_cast<double>(i));
}

void LatencyHistogram::Record(double value) {
  CS_CHECK_MSG(value >= 0.0, "latency cannot be negative");
  buckets_[BucketFor(value)]++;
  sum_ += value;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
}

double LatencyHistogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double LatencyHistogram::Quantile(double q) const {
  CS_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (count_ == 0) return 0.0;
  const uint64_t target = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && seen > 0) return std::min(BucketUpperEdge(i), max_);
  }
  return max_;
}

double LatencyHistogram::FractionAbove(double threshold) const {
  if (count_ == 0) return 0.0;
  const size_t cut = BucketFor(threshold);
  uint64_t above = 0;
  for (size_t i = cut + 1; i < buckets_.size(); ++i) above += buckets_[i];
  return static_cast<double>(above) / static_cast<double>(count_);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  CS_CHECK_MSG(buckets_.size() == other.buckets_.size() &&
                   min_value_ == other.min_value_ &&
                   log_growth_ == other.log_growth_,
               "histogram layouts differ");
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    min_ = count_ ? std::min(min_, other.min_) : other.min_;
    max_ = count_ ? std::max(max_, other.max_) : other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

}  // namespace ctrlshed
