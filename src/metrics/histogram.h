#ifndef CTRLSHED_METRICS_HISTOGRAM_H_
#define CTRLSHED_METRICS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ctrlshed {

/// Log-bucketed latency histogram with quantile queries. Buckets grow
/// geometrically from `min_value` so that relative resolution is constant
/// across the microsecond-to-minute range that stream delays span; values
/// below/above the range clamp to the end buckets.
class LatencyHistogram {
 public:
  /// `growth` is the bucket width ratio (e.g. 1.1 = 10% resolution).
  LatencyHistogram(double min_value = 1e-4, double max_value = 1e3,
                   double growth = 1.08);

  void Record(double value);

  uint64_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double Mean() const;

  /// Quantile in [0, 1]; returns the upper edge of the bucket containing
  /// the q-th value (0 when empty). Quantile(0.5) is the median.
  double Quantile(double q) const;

  /// Fraction of recorded values strictly greater than `threshold`
  /// (bucket-resolution approximation).
  double FractionAbove(double threshold) const;

  /// Merges another histogram with identical bucket layout.
  void Merge(const LatencyHistogram& other);

 private:
  size_t BucketFor(double value) const;
  double BucketUpperEdge(size_t i) const;

  double min_value_;
  double log_growth_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_METRICS_HISTOGRAM_H_
