#ifndef CTRLSHED_METRICS_RECORDER_H_
#define CTRLSHED_METRICS_RECORDER_H_

#include <ostream>
#include <vector>

#include "common/sim_time.h"
#include "control/controller.h"

namespace ctrlshed {

/// One per-period row of the closed-loop trace.
struct PeriodRecord {
  PeriodMeasurement m;
  double v = 0.0;      ///< Controller output (desired admitted rate).
  double alpha = 0.0;  ///< Entry drop probability in force afterwards.
};

/// Collects the per-period trace of an experiment; feeds the transient
/// plots (Figs. 15, 16, 18) and debugging.
class Recorder {
 public:
  void Record(const PeriodMeasurement& m, double v, double alpha) {
    rows_.push_back(PeriodRecord{m, v, alpha});
  }

  const std::vector<PeriodRecord>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }

  /// Writes a whitespace-separated table with a header row.
  void Write(std::ostream& out) const;

 private:
  std::vector<PeriodRecord> rows_;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_METRICS_RECORDER_H_
