#ifndef CTRLSHED_METRICS_RECORDER_H_
#define CTRLSHED_METRICS_RECORDER_H_

#include <limits>
#include <ostream>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "control/actuation_plan.h"
#include "control/controller.h"

namespace ctrlshed {

/// One per-period row of the closed-loop trace.
struct PeriodRecord {
  PeriodMeasurement m;
  double v = 0.0;      ///< Controller output (desired admitted rate).
  double alpha = 0.0;  ///< Entry drop probability in force afterwards.
  /// Wall-clock lateness of the actuation, seconds: how far past the
  /// period deadline the control tick actually ran. Always 0 in the
  /// simulation (ticks fire exactly on the event heap); the rt loop
  /// records its scheduling jitter here.
  double lateness = 0.0;
  /// Per-shard virtual queue lengths at the sample (sums to m.queue).
  /// Empty for unsharded runs — the sim loop and the N = 1 rt loop — so
  /// their exports stay byte-identical.
  std::vector<double> shard_q;
  /// Where this period's ActuationPlan placed the shed (entry gate,
  /// in-network queues, or split across both).
  ActuationSite site = ActuationSite::kEntry;
  /// Tuples removed from operator queues during the period (in-network
  /// shedding executed; 0 for entry-only runs).
  double queue_shed = 0.0;
  /// Measured headroom H_hat: realized base-load drained per busy second,
  /// EWMA-smoothed (see docs/observability.md "Post-mortem & health").
  /// Report-only — the control law never consumes it. NaN when the loop
  /// does not estimate it, which keeps historical exports byte-identical
  /// (the timeline emits it only when finite).
  double h_hat = std::numeric_limits<double>::quiet_NaN();
};

/// Collects the per-period trace of an experiment; feeds the transient
/// plots (Figs. 15, 16, 18), the telemetry timeline export, and debugging.
class Recorder {
 public:
  void Record(const PeriodMeasurement& m, double v, double alpha,
              double lateness = 0.0, std::vector<double> shard_q = {}) {
    rows_.push_back(PeriodRecord{m, v, alpha, lateness, std::move(shard_q)});
  }
  void Record(PeriodRecord row) { rows_.push_back(std::move(row)); }

  const std::vector<PeriodRecord>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }

  /// Writes a whitespace-separated table with a header row.
  void Write(std::ostream& out) const;

  /// Machine-readable variant: comma-separated, locale-independent %.17g
  /// doubles (exact round-trip through strtod), one header row. Adds the
  /// derived control signals the table omits: the tracking error
  /// e = yd - y_hat, the queue-growth command u = v - fout (Eq. 10), the
  /// per-period loss (fin - admitted)/fin, and the actuation lateness.
  /// y_meas is `nan` for periods with no departures.
  void WriteCsv(std::ostream& out) const;

  /// Header + single-row pieces of WriteCsv, exposed so streaming sinks
  /// (the telemetry FileTimelineSink) produce byte-identical CSV while
  /// writing row by row instead of from a finished recorder.
  static void WriteCsvHeader(std::ostream& out);
  static void WriteCsvRow(const PeriodRecord& row, std::ostream& out);

 private:
  std::vector<PeriodRecord> rows_;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_METRICS_RECORDER_H_
