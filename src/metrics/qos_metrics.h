#ifndef CTRLSHED_METRICS_QOS_METRICS_H_
#define CTRLSHED_METRICS_QOS_METRICS_H_

#include <cstdint>

#include "engine/engine.h"
#include "metrics/histogram.h"

namespace ctrlshed {

/// The paper's evaluation metrics (Section 3), accumulated per tuple:
///  - accumulated delay violations: sum of (y - yd) over tuples with y > yd;
///  - total delayed tuples: count of tuples with y > yd;
///  - maximal overshoot: max (y - yd) observed;
/// plus bookkeeping for the data-loss ratio.
class QosAccumulator {
 public:
  explicit QosAccumulator(double target_delay);

  /// Updates the setpoint (violations are judged against the setpoint in
  /// force when the tuple departs).
  void SetTargetDelay(double yd) { target_delay_ = yd; }
  double target_delay() const { return target_delay_; }

  /// Observes one departure. Derived tuples inherit their trigger tuple's
  /// arrival time, so their delays are meaningful and counted too.
  void OnDeparture(const Departure& d);

  double accumulated_violation() const { return accumulated_violation_; }
  uint64_t delayed_tuples() const { return delayed_tuples_; }
  double max_overshoot() const { return max_overshoot_; }
  uint64_t departures() const { return departures_; }
  double mean_delay() const {
    return departures_ == 0 ? 0.0 : delay_sum_ / static_cast<double>(departures_);
  }

  /// Full delay distribution (log-bucketed); use for p50/p95/p99 reporting.
  const LatencyHistogram& delay_histogram() const { return histogram_; }

 private:
  double target_delay_;
  double accumulated_violation_ = 0.0;
  uint64_t delayed_tuples_ = 0;
  double max_overshoot_ = 0.0;
  uint64_t departures_ = 0;
  double delay_sum_ = 0.0;
  LatencyHistogram histogram_;
};

/// End-of-run summary of one experiment, combining the delay metrics with
/// the loss accounting.
struct QosSummary {
  double accumulated_violation = 0.0;  ///< Seconds, summed over tuples.
  uint64_t delayed_tuples = 0;
  double max_overshoot = 0.0;          ///< Seconds.
  double loss_ratio = 0.0;             ///< Shed tuples / offered tuples.
  uint64_t offered = 0;
  // Shed accounting, one scheme across sim/rt/cluster (see
  // docs/architecture.md "Shed accounting"):
  //   entry_shed   — coin-flip drops at the entry gate (alpha).
  //   ring_dropped — ingress-ring overflow before the gate (rt only).
  //   queue_shed   — lineages removed from operator queues in-network
  //                  (the engine's shed_lineages counter).
  // `shed` is always their sum.
  uint64_t shed = 0;                   ///< entry_shed+ring_dropped+queue_shed.
  uint64_t entry_shed = 0;
  uint64_t ring_dropped = 0;
  uint64_t queue_shed = 0;
  uint64_t departures = 0;
  double mean_delay = 0.0;             ///< Seconds.
  double p50_delay = 0.0;              ///< Median delay, seconds.
  double p95_delay = 0.0;
  double p99_delay = 0.0;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_METRICS_QOS_METRICS_H_
