#include "workload/traces.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"

namespace ctrlshed {

namespace {

size_t NumSlots(SimTime duration, SimTime slot_width) {
  CS_CHECK_MSG(duration > 0.0 && slot_width > 0.0,
               "duration and slot width must be positive");
  return static_cast<size_t>(std::ceil(duration / slot_width));
}

}  // namespace

RateTrace MakeConstantTrace(SimTime duration, double rate) {
  return RateTrace(1.0, std::vector<double>(NumSlots(duration, 1.0), rate));
}

RateTrace MakeStepTrace(SimTime duration, SimTime step_at, double low,
                        double high) {
  const SimTime dt = 0.25;  // quarter-second slots keep the edge sharp
  const size_t n = NumSlots(duration, dt);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = (static_cast<double>(i) * dt < step_at) ? low : high;
  }
  return RateTrace(dt, std::move(v));
}

RateTrace MakeSineTrace(SimTime duration, double lo, double hi, SimTime period,
                        SimTime slot_width) {
  CS_CHECK_MSG(hi >= lo, "sine range inverted");
  CS_CHECK_MSG(period > 0.0, "sine period must be positive");
  const size_t n = NumSlots(duration, slot_width);
  std::vector<double> v(n);
  const double mid = (hi + lo) / 2.0;
  const double amp = (hi - lo) / 2.0;
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * slot_width;
    v[i] = mid + amp * std::sin(2.0 * std::numbers::pi * t / period);
  }
  return RateTrace(slot_width, std::move(v));
}

RateTrace MakeRampTrace(SimTime duration, double start_rate, double end_rate) {
  const SimTime dt = 0.5;
  const size_t n = NumSlots(duration, dt);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    const double frac = (n <= 1) ? 0.0 : static_cast<double>(i) / (n - 1);
    v[i] = start_rate + frac * (end_rate - start_rate);
  }
  return RateTrace(dt, std::move(v));
}

namespace {

// Mean of the bounded Pareto distribution on [lo, hi] with shape a.
double BoundedParetoMean(double a, double lo, double hi) {
  if (std::abs(a - 1.0) < 1e-9) {
    return lo * hi / (hi - lo) * std::log(hi / lo);
  }
  const double la = std::pow(lo, a);
  const double ha = std::pow(hi, a);
  return la / (1.0 - la / ha) * (a / (a - 1.0)) *
         (1.0 / std::pow(lo, a - 1.0) - 1.0 / std::pow(hi, a - 1.0));
}

}  // namespace

RateTrace MakeParetoTrace(SimTime duration, const ParetoTraceParams& params,
                          uint64_t seed) {
  CS_CHECK_MSG(params.beta > 0.0, "bias factor must be positive");
  CS_CHECK_MSG(params.mean_rate > 0.0, "mean rate must be positive");
  Rng rng(seed);
  const size_t n = NumSlots(duration, params.slot_width);
  // The absolute scale is anchored at beta = 1 (the Fig. 13 reference
  // trace): rate = base x BoundedPareto(beta). Changing beta then changes
  // burstiness the way the paper describes (smaller beta = heavier tail =
  // burstier) without re-normalizing each trace, which would invert the
  // ordering; Fig. 17 accordingly reports metrics relative to beta = 1.5.
  const double base =
      params.mean_rate / BoundedParetoMean(1.0, 1.0, params.spread);
  std::vector<double> v(n);
  size_t i = 0;
  while (i < n) {
    const double level =
        base * rng.BoundedPareto(params.beta, 1.0, params.spread);
    const double len_s =
        rng.Pareto(params.episode_shape, params.episode_min_seconds);
    size_t len = static_cast<size_t>(std::ceil(len_s / params.slot_width));
    if (len == 0) len = 1;
    for (size_t j = 0; j < len && i < n; ++j, ++i) v[i] = level;
  }
  return RateTrace(params.slot_width, std::move(v));
}

RateTrace MakeWebTrace(SimTime duration, const WebTraceParams& params,
                       uint64_t seed) {
  CS_CHECK_MSG(params.num_sources > 0, "need at least one ON/OFF source");
  Rng rng(seed);
  const size_t n = NumSlots(duration, params.slot_width);
  std::vector<double> total(n, 0.0);

  // Superpose heavy-tailed ON/OFF sources; each contributes 1 unit of rate
  // while ON. The absolute level is fixed afterwards by rescaling.
  for (int s = 0; s < params.num_sources; ++s) {
    // Random initial phase: start a random way into an OFF period.
    SimTime t = -rng.Uniform() * params.off_min_seconds * 3.0;
    bool on = false;
    while (t < duration) {
      const double len = on ? rng.Pareto(params.on_shape, params.on_min_seconds)
                            : rng.Pareto(params.off_shape, params.off_min_seconds);
      if (on) {
        const SimTime begin = std::max(0.0, t);
        const SimTime end = std::min(duration, t + len);
        for (SimTime u = begin; u < end; u += params.slot_width) {
          const size_t i = static_cast<size_t>(u / params.slot_width);
          if (i < n) total[i] += 1.0;
        }
      }
      t += len;
      on = !on;
    }
  }

  // Slow "diurnal" modulation.
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * params.slot_width;
    total[i] *= 1.0 + params.modulation *
                          std::sin(2.0 * std::numbers::pi * t /
                                   params.modulation_period);
    if (total[i] < 0.0) total[i] = 0.0;
  }

  return RateTrace(params.slot_width, std::move(total))
      .ScaledToMean(params.mean_rate);
}

RateTrace MakeMmppTrace(SimTime duration, const MmppTraceParams& params,
                        uint64_t seed) {
  CS_CHECK_MSG(params.quiet_rate >= 0.0 && params.burst_rate >= 0.0,
               "rates must be non-negative");
  CS_CHECK_MSG(params.mean_quiet_seconds > 0.0 &&
                   params.mean_burst_seconds > 0.0,
               "mean sojourn times must be positive");
  Rng rng(seed);
  const size_t n = NumSlots(duration, params.slot_width);
  std::vector<double> v(n);
  bool bursting = false;
  // Geometric sojourns: leave the current state each slot with probability
  // slot_width / mean_sojourn.
  for (size_t i = 0; i < n; ++i) {
    v[i] = bursting ? params.burst_rate : params.quiet_rate;
    const double leave =
        params.slot_width /
        (bursting ? params.mean_burst_seconds : params.mean_quiet_seconds);
    if (rng.Bernoulli(std::min(1.0, leave))) bursting = !bursting;
  }
  return RateTrace(params.slot_width, std::move(v));
}

RateTrace MakeCostTrace(SimTime duration, const CostTraceParams& params,
                        uint64_t seed) {
  Rng rng(seed);
  const size_t n = NumSlots(duration, params.slot_width);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * params.slot_width;
    double c = params.base_ms;
    // Long-tailed but bounded noise floor (Fig. 14 stays under ~25 ms).
    c += params.noise_scale_ms *
         (rng.BoundedPareto(params.noise_shape, 1.0, 8.0) - 1.0);

    // Small, smooth peak.
    const double d_small = (t - params.small_peak_at) / params.small_peak_width;
    c += params.small_peak_ms * std::exp(-d_small * d_small);

    // Large peak with a sudden jump and exponential relaxation.
    if (t >= params.jump_at) {
      c += params.jump_ms * std::exp(-(t - params.jump_at) / params.jump_decay);
    }

    // Gradual ramp into a high terrace, then a sudden drop.
    if (t >= params.ramp_from && t < params.terrace_from) {
      const double frac =
          (t - params.ramp_from) / (params.terrace_from - params.ramp_from);
      c += params.terrace_ms * frac;
    } else if (t >= params.terrace_from && t < params.terrace_until) {
      c += params.terrace_ms;
    }
    v[i] = c;
  }
  return RateTrace(params.slot_width, std::move(v));
}

}  // namespace ctrlshed
