#include "workload/trace_io.h"

#include <cmath>
#include <iomanip>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace ctrlshed {

namespace {

std::string Trim(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

TraceParseResult Fail(int line, const std::string& what) {
  TraceParseResult r;
  r.ok = false;
  std::ostringstream msg;
  msg << "line " << line << ": " << what;
  r.error = msg.str();
  return r;
}

// True when the stream has unconsumed non-whitespace left on the line —
// "1.5garbage" parses as 1.5 via operator>>, and silently accepting it
// hides a corrupt trace file.
bool HasTrailingGarbage(std::istringstream& ls) {
  std::string rest;
  return static_cast<bool>(ls >> rest);
}

// Resize ceiling for timestamp-bucketed traces: a single corrupt timestamp
// like 1e300 must not turn into a multi-terabyte resize.
constexpr size_t kMaxSlots = size_t{1} << 24;  // 16.7M slots

}  // namespace

void WriteTrace(const RateTrace& trace, std::ostream& out) {
  // Round-trippable precision for doubles.
  out << std::setprecision(17);
  out << "# ctrlshed-trace v1\n";
  out << "slot_width " << trace.slot_width() << "\n";
  for (double v : trace.values()) out << v << "\n";
}

TraceParseResult ReadTrace(std::istream& in) {
  std::string line;
  int lineno = 0;
  double slot_width = 0.0;
  bool have_width = false;
  std::vector<double> values;

  while (std::getline(in, line)) {
    ++lineno;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    if (!have_width) {
      std::istringstream ls(line);
      std::string key;
      ls >> key >> slot_width;
      if (key != "slot_width" || ls.fail() || !std::isfinite(slot_width) ||
          slot_width <= 0.0 || HasTrailingGarbage(ls)) {
        return Fail(lineno, "expected 'slot_width <positive seconds>'");
      }
      have_width = true;
      continue;
    }
    std::istringstream ls(line);
    double v = 0.0;
    ls >> v;
    if (ls.fail() || v < 0.0 || !std::isfinite(v) || HasTrailingGarbage(ls)) {
      return Fail(lineno, "expected a non-negative finite rate value");
    }
    values.push_back(v);
  }

  if (!have_width) return Fail(lineno, "missing slot_width header");
  if (values.empty()) return Fail(lineno, "trace has no slots");

  TraceParseResult r;
  r.ok = true;
  r.trace = RateTrace(slot_width, std::move(values));
  return r;
}

TraceParseResult ReadTimestampTrace(std::istream& in, SimTime slot_width) {
  if (!std::isfinite(slot_width) || slot_width <= 0.0) {
    return Fail(0, "slot width must be positive");
  }
  std::string line;
  int lineno = 0;
  std::vector<double> counts;
  double prev = -1.0;

  while (std::getline(in, line)) {
    ++lineno;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    double t = 0.0;
    ls >> t;
    if (ls.fail() || t < 0.0 || !std::isfinite(t) || HasTrailingGarbage(ls)) {
      return Fail(lineno, "expected a non-negative finite timestamp");
    }
    if (t < prev) return Fail(lineno, "timestamps must be non-decreasing");
    prev = t;
    const double slot_f = t / slot_width;
    if (slot_f >= static_cast<double>(kMaxSlots)) {
      return Fail(lineno, "timestamp exceeds the supported trace length");
    }
    const size_t slot = static_cast<size_t>(slot_f);
    if (slot >= counts.size()) counts.resize(slot + 1, 0.0);
    counts[slot] += 1.0;
  }
  if (counts.empty()) return Fail(lineno, "no timestamps found");

  // Convert per-slot counts into rates.
  for (double& c : counts) c /= slot_width;
  TraceParseResult r;
  r.ok = true;
  r.trace = RateTrace(slot_width, std::move(counts));
  return r;
}

TraceParseResult ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    TraceParseResult r;
    r.error = "cannot open " + path;
    return r;
  }
  return ReadTrace(in);
}

bool WriteTraceFile(const RateTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteTrace(trace, out);
  return out.good();
}

}  // namespace ctrlshed
