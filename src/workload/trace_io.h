#ifndef CTRLSHED_WORKLOAD_TRACE_IO_H_
#define CTRLSHED_WORKLOAD_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "workload/rate_trace.h"

namespace ctrlshed {

/// Result of a trace parse; `ok` is false on malformed input and `error`
/// then carries a line-numbered message.
struct TraceParseResult {
  bool ok = false;
  RateTrace trace;
  std::string error;
};

/// Writes `trace` in the text format below (round-trippable):
///
///   # ctrlshed-trace v1
///   slot_width <seconds>
///   <value>        (one per line, slot order)
void WriteTrace(const RateTrace& trace, std::ostream& out);

/// Parses the WriteTrace format. Lines starting with '#' are comments.
TraceParseResult ReadTrace(std::istream& in);

/// Parses a timestamp list (one arrival timestamp in seconds per line,
/// non-decreasing — the shape of the Internet Traffic Archive packet
/// traces the paper replays) and bins it into a rate trace with the given
/// slot width. Use this to feed a real recorded trace to the workload
/// generators in place of our synthetic web stand-in.
TraceParseResult ReadTimestampTrace(std::istream& in, SimTime slot_width);

/// File-path conveniences; return ok = false when the file cannot be
/// opened.
TraceParseResult ReadTraceFile(const std::string& path);
bool WriteTraceFile(const RateTrace& trace, const std::string& path);

}  // namespace ctrlshed

#endif  // CTRLSHED_WORKLOAD_TRACE_IO_H_
