#include "workload/arrival_source.h"

#include <cmath>
#include <utility>

#include "common/macros.h"

namespace ctrlshed {

namespace {
// Rates below this are treated as "no arrivals in this slot".
constexpr double kMinRate = 1e-9;
}  // namespace

ArrivalSource::ArrivalSource(int source_index, RateTrace trace, Spacing spacing,
                             uint64_t seed)
    : source_index_(source_index),
      trace_(std::move(trace)),
      spacing_(spacing),
      rng_(seed) {
  CS_CHECK_MSG(!trace_.empty(), "arrival source needs a non-empty trace");
}

SimTime ArrivalSource::NextArrival(SimTime t) {
  const SimTime end = trace_.Duration();
  SimTime now = t;
  // Walk forward, slot by slot if necessary, until a gap fits before the
  // trace ends. Bounded by the number of slots.
  while (now < end) {
    const double rate = trace_.At(now);
    if (rate < kMinRate) {
      // Jump to the next slot boundary.
      const SimTime width = trace_.slot_width();
      now = (std::floor(now / width) + 1.0) * width;
      continue;
    }
    const double gap = (spacing_ == Spacing::kDeterministic)
                           ? 1.0 / rate
                           : rng_.Exponential(rate);
    const SimTime candidate = now + gap;
    // If the gap crosses into the next slot, re-evaluate from the boundary
    // so rate changes take effect promptly (thinning-style approximation).
    const SimTime width = trace_.slot_width();
    const SimTime boundary = (std::floor(now / width) + 1.0) * width;
    if (candidate > boundary && trace_.At(boundary) != rate) {
      now = boundary;
      continue;
    }
    return candidate;
  }
  return end + 1.0;  // exhausted
}

void ArrivalSource::ScheduleNext(Simulation* sim, SimTime t) {
  if (t > trace_.Duration()) return;
  sim->Schedule(t, [this, sim, t]() {
    Tuple tup;
    tup.source = source_index_;
    tup.arrival_time = t;
    tup.value = rng_.Uniform();
    tup.aux = rng_.Uniform();
    sink_(tup);
    ScheduleNext(sim, NextArrival(t));
  });
}

void ArrivalSource::Start(Simulation* sim, ArrivalCallback sink) {
  CS_CHECK_MSG(!sink_, "Start called twice");
  CS_CHECK(sink != nullptr);
  sink_ = std::move(sink);
  ScheduleNext(sim, NextArrival(0.0));
}

}  // namespace ctrlshed
