#ifndef CTRLSHED_WORKLOAD_TRACES_H_
#define CTRLSHED_WORKLOAD_TRACES_H_

#include <cstdint>

#include "common/sim_time.h"
#include "workload/rate_trace.h"

namespace ctrlshed {

/// Constant arrival rate.
RateTrace MakeConstantTrace(SimTime duration, double rate);

/// Step input: `low` until `step_at`, then `high` (paper Fig. 5A).
RateTrace MakeStepTrace(SimTime duration, SimTime step_at, double low, double high);

/// Sinusoidal input oscillating in [lo, hi] with the given period (paper's
/// sinusoidal identification input, Fig. 7: fin in [0, 400]).
RateTrace MakeSineTrace(SimTime duration, double lo, double hi,
                        SimTime period, SimTime slot_width = 1.0);

/// Monotonically increasing ramp from `start_rate` to `end_rate` (the
/// open-loop instability scenario of Section 4.3.2, Example 1).
RateTrace MakeRampTrace(SimTime duration, double start_rate, double end_rate);

/// Parameters of the long-tailed synthetic workload ("Pareto" in the
/// paper). The trace is a sequence of constant-rate EPISODES: each
/// episode's rate level follows a bounded Pareto distribution whose shape
/// is the bias factor `beta` (smaller beta = heavier tail = burstier), and
/// episode durations are heavy-tailed with a floor of a few seconds — the
/// paper observes that "most of the bursts in both traces last longer than
/// a few (4 to 5) seconds", which is what makes a one-second control
/// period satisfy the sampling theorem (Section 4.5.3). The whole trace is
/// rescaled to `mean_rate`.
struct ParetoTraceParams {
  double beta = 1.0;        ///< Bias factor (paper sweeps 0.1 .. 1.5).
  double mean_rate = 200.0; ///< Expected average at beta = 1, tuples/s.
                            ///< (Other beta values shift the mean: the
                            ///< absolute scale is fixed, not the mean, so
                            ///< smaller beta is genuinely burstier.)
  double spread = 12.0;     ///< hi/lo ratio of the bounded Pareto support;
                            ///< 12 reproduces Fig. 13's ~4x peak-to-mean.
  double episode_shape = 1.8;      ///< Pareto shape of episode durations.
  double episode_min_seconds = 3.0;///< Minimum episode duration.
  SimTime slot_width = 1.0; ///< Seconds per constant-rate slot.
};

RateTrace MakeParetoTrace(SimTime duration, const ParetoTraceParams& params,
                          uint64_t seed);

/// Parameters of the synthetic "Web" workload — our stand-in for the
/// LBL-PKT-4 web-server request trace used in the paper (the Internet
/// Traffic Archive is not available offline). The trace superposes
/// heavy-tailed ON/OFF sources (the standard generative model for
/// self-similar web traffic, per Paxson & Floyd) and applies a slow
/// sinusoidal "diurnal" modulation, then rescales to the target mean.
struct WebTraceParams {
  int num_sources = 12;        ///< Few sources = rough, self-similar swings
                               ///< like the LBL trace (100 -> ~700 spikes).
  double on_shape = 1.5;       ///< Pareto shape of ON durations.
  double on_min_seconds = 3.0; ///< Minimum ON duration (bursts last >= a few s).
  double off_shape = 1.5;
  double off_min_seconds = 9.0;
  double mean_rate = 200.0;    ///< Matches Fig. 13's visual average.
  double modulation = 0.25;    ///< Relative amplitude of the slow modulation.
  SimTime modulation_period = 200.0;
  SimTime slot_width = 1.0;
};

RateTrace MakeWebTrace(SimTime duration, const WebTraceParams& params,
                       uint64_t seed);

/// Parameters of a Markov-modulated arrival trace: a two-state (quiet /
/// burst) Markov chain with geometric sojourn times, the classic MMPP-2
/// burstiness model. Complements the Pareto-episode and ON/OFF-web
/// generators with a short-range-dependent alternative.
struct MmppTraceParams {
  double quiet_rate = 120.0;       ///< Tuples/s in the quiet state.
  double burst_rate = 450.0;       ///< Tuples/s in the burst state.
  double mean_quiet_seconds = 12.0;
  double mean_burst_seconds = 4.0;
  SimTime slot_width = 1.0;
};

RateTrace MakeMmppTrace(SimTime duration, const MmppTraceParams& params,
                        uint64_t seed);

/// Parameters of the per-tuple cost trace of Fig. 14: a long-tailed noisy
/// base with three "circumstances" — a small peak around t=50s, a large
/// sudden-jump peak starting at t=125s, and a high terrace reached by a
/// gradual ramp and ending with a sudden drop (250s..350s).
struct CostTraceParams {
  double base_ms = 4.0;
  double noise_shape = 1.5;    ///< Pareto shape of the additive noise.
  double noise_scale_ms = 0.4;
  double small_peak_at = 50.0;
  double small_peak_ms = 8.0;
  double small_peak_width = 4.0;
  double jump_at = 125.0;
  double jump_ms = 18.0;
  double jump_decay = 12.0;
  double ramp_from = 200.0;    ///< Gradual increase starts here...
  double terrace_from = 250.0; ///< ...reaching the terrace level here.
  double terrace_until = 350.0;
  double terrace_ms = 11.0;    ///< Height of the terrace above base.
  SimTime slot_width = 1.0;
};

/// Returns the per-tuple cost in MILLISECONDS over time.
RateTrace MakeCostTrace(SimTime duration, const CostTraceParams& params,
                        uint64_t seed);

}  // namespace ctrlshed

#endif  // CTRLSHED_WORKLOAD_TRACES_H_
