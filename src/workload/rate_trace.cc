#include "workload/rate_trace.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace ctrlshed {

RateTrace::RateTrace(SimTime slot_width, std::vector<double> values)
    : slot_width_(slot_width), values_(std::move(values)) {
  CS_CHECK_MSG(slot_width_ > 0.0, "slot width must be positive");
}

double RateTrace::At(SimTime t) const {
  CS_CHECK_MSG(!values_.empty(), "empty trace");
  if (t < 0.0) return values_.front();
  size_t i = static_cast<size_t>(t / slot_width_);
  if (i >= values_.size()) i = values_.size() - 1;
  return values_[i];
}

double RateTrace::Mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double RateTrace::Max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

RateTrace RateTrace::ScaledToMean(double target_mean) const {
  CS_CHECK_MSG(!values_.empty(), "cannot scale an empty trace");
  const double mean = Mean();
  CS_CHECK_MSG(mean > 0.0, "cannot scale a zero-mean trace");
  const double factor = target_mean / mean;
  std::vector<double> scaled = values_;
  for (double& v : scaled) v *= factor;
  return RateTrace(slot_width_, std::move(scaled));
}

RateTrace RateTrace::Scaled(double factor) const {
  CS_CHECK_MSG(factor >= 0.0, "scale factor must be non-negative");
  std::vector<double> scaled = values_;
  for (double& v : scaled) v *= factor;
  return RateTrace(slot_width_, std::move(scaled));
}

}  // namespace ctrlshed
