#ifndef CTRLSHED_WORKLOAD_ARRIVAL_SOURCE_H_
#define CTRLSHED_WORKLOAD_ARRIVAL_SOURCE_H_

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/sim_time.h"
#include "engine/tuple.h"
#include "sim/simulation.h"
#include "workload/rate_trace.h"

namespace ctrlshed {

/// Callback that receives each generated tuple at its arrival time.
using ArrivalCallback = std::function<void(const Tuple&)>;

/// Generates the arrival process of one stream source from a rate trace and
/// schedules the arrivals as simulation events.
///
/// Two spacing modes are supported: deterministic (tuples exactly 1/rate
/// apart — used for system identification, where the paper feeds clean step
/// and sine inputs) and Poisson (exponential gaps — used for the
/// performance experiments). Payload values are drawn uniformly from [0,1]
/// so downstream filter selectivities are fixed.
class ArrivalSource {
 public:
  enum class Spacing { kDeterministic, kPoisson };

  ArrivalSource(int source_index, RateTrace trace, Spacing spacing,
                uint64_t seed);

  /// Schedules this source's arrivals on `sim`, delivering each tuple to
  /// `sink`. Must be called once, before Simulation::Run.
  void Start(Simulation* sim, ArrivalCallback sink);

  int source_index() const { return source_index_; }
  const RateTrace& trace() const { return trace_; }

 private:
  /// Computes the next arrival time strictly after `t`, skipping
  /// zero-rate slots. Returns a time past the trace end when exhausted.
  SimTime NextArrival(SimTime t);

  void ScheduleNext(Simulation* sim, SimTime t);

  int source_index_;
  RateTrace trace_;
  Spacing spacing_;
  Rng rng_;
  ArrivalCallback sink_;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_WORKLOAD_ARRIVAL_SOURCE_H_
