#ifndef CTRLSHED_WORKLOAD_RATE_TRACE_H_
#define CTRLSHED_WORKLOAD_RATE_TRACE_H_

#include <vector>

#include "common/sim_time.h"

namespace ctrlshed {

/// A piecewise-constant function of time, stored as equal-width slots.
/// Used both for arrival rates (tuples/s) and per-tuple cost traces (ms).
class RateTrace {
 public:
  RateTrace() = default;

  /// `slot_width` seconds per slot; `values[i]` holds for
  /// t in [i*slot_width, (i+1)*slot_width).
  RateTrace(SimTime slot_width, std::vector<double> values);

  /// Value at time `t`; the last slot extends to +infinity and negative
  /// times clamp to the first slot.
  double At(SimTime t) const;

  SimTime slot_width() const { return slot_width_; }
  SimTime Duration() const { return slot_width_ * static_cast<double>(values_.size()); }
  const std::vector<double>& values() const { return values_; }
  bool empty() const { return values_.empty(); }

  /// Mean of all slot values (0 when empty).
  double Mean() const;

  /// Largest slot value (0 when empty).
  double Max() const;

  /// Returns a copy scaled so that Mean() == `target_mean`.
  RateTrace ScaledToMean(double target_mean) const;

  /// Returns a copy with every slot multiplied by `factor` (>= 0). Used to
  /// split one offered-rate trace evenly across N sharded replay sources.
  RateTrace Scaled(double factor) const;

 private:
  SimTime slot_width_ = 1.0;
  std::vector<double> values_;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_WORKLOAD_RATE_TRACE_H_
