#include "cluster/node_runner.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/node_agent.h"
#include "cluster/wire.h"
#include "common/macros.h"
#include "engine/query_network.h"
#include "net/frame_client.h"
#include "net/frame_server.h"
#include "net/socket_util.h"
#include "rt/cpu_affinity.h"
#include "rt/rt_clock.h"
#include "runner/networks.h"
#include "shedding/entry_shedder.h"
#include "telemetry/fleet_metrics.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"
#include "telemetry/tracer.h"
#include "workload/traces.h"

namespace ctrlshed {

namespace {
constexpr auto kMaxSleepChunk = std::chrono::milliseconds(5);

void SleepUntilWall(std::chrono::steady_clock::time_point deadline,
                    const std::atomic<bool>* stop) {
  for (;;) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return;
    const auto remaining = deadline - now;
    std::this_thread::sleep_for(
        remaining < std::chrono::steady_clock::duration(kMaxSleepChunk)
            ? remaining
            : std::chrono::steady_clock::duration(kMaxSleepChunk));
  }
}

bool StopRequested(const std::atomic<bool>* stop) {
  return stop != nullptr && stop->load(std::memory_order_relaxed);
}
}  // namespace

ClusterNodeResult RunClusterNode(const ClusterNodeConfig& config) {
  const ExperimentConfig& base = config.base;
  CS_CHECK_MSG(base.capacity_rate > 0.0, "capacity must be positive");
  CS_CHECK_MSG(config.workers >= 1 && config.workers <= 64,
               "workers must be in [1, 64]");
  IgnoreSigPipe();  // a dying peer must never kill the node process

  const int workers = config.workers;
  const double nominal_cost = base.headroom_true / base.capacity_rate;

  std::unique_ptr<Telemetry> telemetry = Telemetry::Open(base.telemetry);
  if (telemetry && !telemetry->dir().empty()) {
    SetFlightDumpPath(telemetry->dir() + "/ctrlshed.flightdump.json");
  }
  if (telemetry) {
    const uint32_t node_id = config.node_id;
    const int n_workers = workers;
    const double period = base.period;
    telemetry->SetStatusSource([node_id, n_workers, period] {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "{\"mode\":\"cluster\",\"cluster\":{\"role\":\"node\","
                    "\"node_id\":%u,\"workers\":%d,\"period\":%g}}",
                    node_id, n_workers, period);
      return std::string(buf);
    });
  }
  Counter* rejected_metric =
      telemetry ? telemetry->metrics()->GetCounter("net.ingress.rejected")
                : nullptr;

  RtClock clock(config.time_compression);

  // The plant: same construction as the sharded rt runtime, with the shard
  // index node-local (each node is its own plant; the cluster-wide view
  // lives in the controller's aggregation).
  // Fig. 14 time-varying cost, sampled on each worker's clock; the trace
  // lookup is read-only and the trace outlives the engines.
  RateTrace cost_trace;
  CostMultiplierFn cost_multiplier;
  if (base.vary_cost) {
    cost_trace = MakeCostTrace(base.duration, base.cost_params, base.seed + 1);
    const double cost_base = base.cost_params.base_ms;
    cost_multiplier = [&cost_trace, cost_base](SimTime t) {
      return cost_trace.At(t) / cost_base;
    };
  }

  std::vector<std::unique_ptr<QueryNetwork>> nets;
  std::vector<std::unique_ptr<RtEngine>> engines;
  std::vector<std::unique_ptr<EntryShedder>> shedders;
  std::vector<Shedder*> shedder_ptrs;
  std::string pin_error;
  const PinPlan pin_plan = ParsePinCpus(config.pin_cpus, &pin_error);
  for (int i = 0; i < workers; ++i) {
    nets.push_back(std::make_unique<QueryNetwork>());
    BuildIdentificationNetwork(nets.back().get(), nominal_cost);
    RtEngineOptions eopts;
    eopts.headroom = base.headroom_true;
    eopts.ring_capacity = config.ring_capacity;
    eopts.cost_mode = config.cost_mode;
    eopts.pacing_wall_seconds = config.pacing_wall_seconds;
    eopts.batch = config.batch;
    eopts.cost_multiplier = cost_multiplier;
    eopts.queue_shed_seed = base.seed + 6 + 7919 * static_cast<uint64_t>(i);
    eopts.telemetry = telemetry.get();
    eopts.shard_index = i;
    eopts.per_shard_pump_metric = workers > 1;
    eopts.pin_cpu = pin_plan.CpuForShard(i);
    engines.push_back(std::make_unique<RtEngine>(
        nets.back().get(), &clock, /*num_sources=*/1, eopts));
    shedders.push_back(std::make_unique<EntryShedder>(
        base.seed + 2 + 7919 * static_cast<uint64_t>(i)));
    shedder_ptrs.push_back(shedders.back().get());
  }

  NodeAgentOptions agent_opts;
  agent_opts.node_id = config.node_id;
  agent_opts.target_delay = base.target_delay;
  agent_opts.monitor.period = base.period;
  agent_opts.monitor.headroom = base.headroom_est;
  agent_opts.monitor.cost_ewma = base.cost_ewma;
  agent_opts.monitor.adapt_headroom = base.adapt_headroom;
  NodeAgent agent(nominal_cost, shedder_ptrs, agent_opts);

  // One plant mutex serializes the three users of the shedders/agent:
  // ingress admission (serve thread), the period tick (report thread), and
  // remote actuation (control reader thread).
  std::mutex plant_mu;

  // In-network budgets cross into the worker threads through the
  // RtSharedStats plan handshake: budget + policy stored relaxed, then the
  // bumped sequence released; the worker pump acquires the sequence and
  // drains the budget between engine advances. `plan_seq` is guarded by
  // plant_mu (the poster only runs inside agent.Apply).
  uint64_t plan_seq = 0;
  agent.SetBudgetPoster(
      [&engines, &plan_seq](size_t i, const ActuationPlan& plan, uint32_t) {
        RtSharedStats* stats = engines[i]->stats();
        stats->plan_queue_budget.store(plan.queue_budget_load,
                                       std::memory_order_relaxed);
        stats->plan_cost_aware.store(plan.cost_aware ? 1 : 0,
                                     std::memory_order_relaxed);
        stats->plan_seq.store(++plan_seq, std::memory_order_release);
      });

  if (telemetry && telemetry->server() != nullptr) {
    // HealthMonitor is internally locked, so the server thread may read a
    // verdict without plant_mu. Lifetime: the explicit telemetry->Stop()
    // below shuts the server down before `agent` leaves scope (failures
    // abort, never unwind).
    telemetry->server()->SetHealthCallback([&agent] {
      const HealthReport r = agent.Health();
      return std::make_pair(r.HttpStatus(), r.ToJson());
    });
  }

  ClusterNodeResult result;

  // --- Tuple ingress ------------------------------------------------------
  FrameServerOptions sopts;
  sopts.port = config.ingress_port;
  sopts.bind_address = config.bind_address;
  FrameServer ingress(sopts);
  std::vector<Tuple> admitted;  // serve-thread scratch
  ingress.OnFrame([&](uint64_t /*conn_id*/, const Frame& f) {
    TupleBatch batch;
    if (f.type != FrameType::kTupleBatch ||
        !DecodeTupleBatch(f.payload, &batch)) {
      ++result.ingress_rejected;
      if (rejected_metric != nullptr) rejected_metric->Add(1);
      agent.flight()->RecordEvent("decode_reject", "ingress tuple batch",
                                  clock.Now());
      return;
    }
    const int shard = static_cast<int>(batch.source) % workers;
    RtEngine* engine = engines[static_cast<size_t>(shard)].get();
    admitted.clear();
    {
      std::lock_guard<std::mutex> lock(plant_mu);
      for (Tuple t : batch.tuples) {
        t.source = 0;  // each shard engine has a single local source
        if (shedder_ptrs[static_cast<size_t>(shard)]->Admit(t)) {
          admitted.push_back(t);
        }
      }
    }
    RtSharedStats* stats = engine->stats();
    stats->offered.fetch_add(batch.tuples.size(), std::memory_order_relaxed);
    stats->entry_shed.fetch_add(batch.tuples.size() - admitted.size(),
                                std::memory_order_relaxed);
    if (!admitted.empty()) {
      engine->OfferBatch(admitted.data(), admitted.size());
    }
  });

  // --- Control channel ----------------------------------------------------
  // The reader thread owns its own trace buffer, registered lazily on the
  // first frame (registration must happen on the owning thread).
  FrameClient control;
  TraceBuffer* ctl_buf = nullptr;
  bool ctl_buf_init = false;
  control.OnFrame([&](const Frame& f) {
    if (!ctl_buf_init) {
      ctl_buf_init = true;
      if (telemetry) ctl_buf = telemetry->RegisterThread("node.control");
    }
    if (f.type == FrameType::kHelloAck) {
      HelloAck ha;
      if (!DecodeHelloAck(f.payload, &ha)) {
        ++result.control_rejected;
        agent.flight()->RecordEvent("decode_reject", "control hello ack",
                                    clock.Now());
        return;
      }
      // NTP-style midpoint: the controller's clock read sits halfway
      // through the hello/ack round trip. offset = controller - node, the
      // shift trace-merge applies to put this file on the controller's
      // timebase. Only meaningful when both ends were tracing.
      if (ctl_buf != nullptr && ha.ctrl_clock_us != 0 && ha.echo_t0_us != 0) {
        const int64_t t2 = ctl_buf->NowUs();
        const int64_t mid = (static_cast<int64_t>(ha.echo_t0_us) + t2) / 2;
        ctl_buf->Instant("clock_sync", "offset_us",
                         static_cast<int64_t>(ha.ctrl_clock_us) - mid);
      }
      return;
    }
    ClusterActuation act;
    if (f.type != FrameType::kActuation || !DecodeActuation(f.payload, &act)) {
      ++result.control_rejected;
      agent.flight()->RecordEvent("decode_reject", "control actuation",
                                  clock.Now());
      return;
    }
    ActuationAck ack;
    {
      ScopedSpan span(ctl_buf, "cluster.apply", "period",
                      static_cast<int64_t>(act.seq));
      std::lock_guard<std::mutex> lock(plant_mu);
      ack = agent.Apply(act);
    }
    ++result.actuations_applied;
    control.Send(EncodeAckFrame(ack));
  });

  const auto wall_start = std::chrono::steady_clock::now();
  clock.Start();
  for (auto& engine : engines) engine->Start();
  ingress.Start();

  if (config.controller_port > 0) {
    result.controller_connected =
        control.Connect(config.controller_host, config.controller_port,
                        config.connect_timeout_wall);
    if (result.controller_connected) {
      NodeHello hello = agent.Hello();
      // Stamp the node's trace clock so the controller's HelloAck can
      // close the offset estimate; 0 (= not tracing) suppresses the sync.
      if (telemetry && telemetry->tracer() != nullptr) {
        hello.trace_clock_us =
            static_cast<uint64_t>(telemetry->tracer()->NowUs());
      }
      control.Send(EncodeHelloFrame(hello));
    } else {
      std::fprintf(stderr,
                   "ctrlshed node %u: controller %s:%d unreachable; running "
                   "with local shedding only\n",
                   config.node_id, config.controller_host.c_str(),
                   config.controller_port);
    }
  }

  if (config.on_ready) config.on_ready(ingress.port());

  // --- Period loop: sample, report ---------------------------------------
  // Runs on this (main) thread: sleep to each period boundary, snapshot
  // every shard at one clock read, tick the agent, ship the report.
  TraceBuffer* period_buf =
      telemetry ? telemetry->RegisterThread("node.period") : nullptr;
  std::vector<RtSample> samples;
  samples.reserve(static_cast<size_t>(workers));
  for (int64_t k = 1;; ++k) {
    const SimTime boundary = static_cast<double>(k) * base.period;
    if (boundary > base.duration) break;
    SleepUntilWall(clock.WallDeadline(boundary), config.stop);
    if (StopRequested(config.stop)) break;
    ScopedSpan span(period_buf, "cluster.report");
    const SimTime now = clock.Now();
    samples.clear();
    for (auto& engine : engines) {
      samples.push_back(engine->stats()->Snapshot(now));
    }
    NodeStatsReport report;
    {
      std::lock_guard<std::mutex> lock(plant_mu);
      report = agent.Tick(samples);
    }
    // Tag the span with the last controller period seen — the correlation
    // id trace-merge intersects across processes. 0 means "no actuation
    // yet", which must not fake an overlap with the controller's seq 0.
    if (report.ctrl_seq > 0) {
      span.SetArg("period", static_cast<int64_t>(report.ctrl_seq));
    }
    if (config.piggyback_metrics && telemetry) {
      report.has_metrics = true;
      report.metrics = FlattenSnapshot(telemetry->metrics()->Snapshot());
    }
    if (control.connected()) {
      if (control.Send(EncodeStatsReportFrame(report))) ++result.reports_sent;
    }
  }
  result.interrupted = StopRequested(config.stop);

  // Teardown: ingress first (no new arrivals), then the control channel
  // (no new actuations), then the engine workers.
  ingress.Stop();
  control.Close();
  for (auto& engine : engines) engine->Stop();
  const auto wall_end = std::chrono::steady_clock::now();

  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.ingress_port = ingress.port();
  result.ingress_connections = ingress.connections_accepted();
  result.ingress_frames = ingress.frames_received();
  result.corrupt_streams = ingress.corrupt_streams();
  result.final_alpha = agent.last_alpha();
  result.health = agent.Health();
  for (auto& engine : engines) {
    const RtSharedStats* stats = engine->stats();
    result.offered += stats->offered.load(std::memory_order_relaxed);
    result.entry_shed += stats->entry_shed.load(std::memory_order_relaxed);
    result.ring_dropped += stats->ring_dropped.load(std::memory_order_relaxed);
    result.queue_shed += stats->queue_shed.load(std::memory_order_relaxed);
    result.departed += stats->departed.load(std::memory_order_relaxed);
    result.pump_intervals.Merge(engine->pump_intervals());
  }

  if (telemetry) {
    if (telemetry->server() != nullptr) {
      result.telemetry_port = telemetry->server()->port();
    }
    telemetry->Stop();
  }
  return result;
}

}  // namespace ctrlshed
