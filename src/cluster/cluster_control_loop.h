#ifndef CTRLSHED_CLUSTER_CLUSTER_CONTROL_LOOP_H_
#define CTRLSHED_CLUSTER_CLUSTER_CONTROL_LOOP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/cluster_monitor.h"
#include "cluster/wire.h"
#include "control/ctrl_controller.h"
#include "metrics/recorder.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/health.h"

namespace ctrlshed {

struct ClusterControlLoopOptions {
  /// Model constant c (seconds); must match the nodes' query networks.
  double nominal_entry_cost = 0.0;
  double target_delay = 2.0;
  ClusterMonitorOptions monitor;
  /// The paper's CTRL controller drives the aggregate plant; its headroom
  /// field is overwritten from cluster membership at every change.
  CtrlOptions ctrl;
  /// Stamp queue_shed / cost_aware plan flags on every actuation command:
  /// the nodes then build in-network-enabled ActuationPlans (see
  /// control/actuation_plan.h) instead of entry-only ones.
  bool queue_shed = false;
  bool cost_aware = false;
};

/// One fanned-out command: deliver `act` to node `node_id`.
struct NodeCommand {
  uint32_t node_id = 0;
  ClusterActuation act;
};

/// The controller-side half of the cluster loop, transport-agnostic (the
/// sim harness and the socket runner both drive it): aggregate the node
/// reports into one plant (ClusterMonitor), run the unchanged Eq. (10)
/// controller against it, and fan v(k) back out proportionally to
/// per-node offered load — the same ProportionalShares arithmetic RtLoop
/// uses across shards.
///
/// Anti-windup across the wire: the realized rate arrives in acks one
/// network round-trip later. A period's record is finalized — realized
/// actuation notified, recorder row emitted — either when every active
/// node acked (the zero-delay sim hits this before the next tick, which
/// preserves the single-process DesiredRate/NotifyActuation interleaving
/// exactly) or at the next Tick, where nodes that have not acked are
/// assumed to have applied their full slice (missing data must not look
/// like saturation).
///
/// Not thread-safe: the caller serializes On*/Tick (the socket runner
/// holds a mutex; the sim is single-threaded).
class ClusterControlLoop {
 public:
  using RecordCallback = std::function<void(const PeriodRecord&)>;

  explicit ClusterControlLoop(ClusterControlLoopOptions options);

  /// Emits each finalized period row (telemetry timeline hook).
  void SetRecordCallback(RecordCallback cb) { on_record_ = std::move(cb); }

  /// Federation sink: when set, every report carrying a piggybacked
  /// metrics snapshot is folded into this registry under node="<id>"
  /// labels (see FoldMetricsSnapshot). Observability only — the snapshot
  /// never reaches the monitor or the control law, which is what keeps
  /// the one-node zero-delay cluster byte-identical to the local loop.
  void SetMetricsSink(MetricsRegistry* sink) { metrics_sink_ = sink; }

  void OnHello(const NodeHello& h, SimTime recv_now);
  void OnReport(const NodeStatsReport& r, SimTime recv_now);
  void OnAck(const ActuationAck& a);

  /// Period boundary at controller-side time `now`. Returns the commands
  /// to deliver (empty when no node is active — nodes then keep shedding
  /// at their last configuration).
  std::vector<NodeCommand> Tick(SimTime now);

  /// Finalizes a period still waiting on acks (call once after the run).
  void Flush();

  void SetTargetDelay(double yd);

  const ClusterMonitor& monitor() const { return monitor_; }
  const Recorder& recorder() const { return recorder_; }
  const CtrlController& controller() const { return controller_; }

  /// Current control-loop health verdict (see telemetry/health.h). The
  /// HealthMonitor is internally locked, but callers that want a verdict
  /// consistent with the maps should hold the same mutex that serializes
  /// On*/Tick (the socket runner prebuilds the JSON under it).
  HealthReport Health() const { return health_.Report(); }

  /// The loop's flight recorder — the runner annotates transport-level
  /// events (decode rejects, connection drops) into the same ring.
  FlightRecorder* flight() { return &flight_; }
  double target_delay() const { return yd_; }
  int ticks() const { return ticks_; }
  /// Ticks skipped because no node was active.
  int idle_ticks() const { return idle_ticks_; }
  /// Seq of the most recent non-idle tick (0 before the first) — the
  /// period id stamped on actuations and echoed back in report ctrl_seq.
  uint32_t seq() const { return seq_; }

 private:
  struct PendingPeriod {
    bool open = false;
    uint32_t seq = 0;
    PeriodRecord record;
    std::vector<uint32_t> node_ids;  // active set the commands went to
    std::vector<double> shares;
    std::vector<double> v_i;
    std::vector<bool> acked;
    std::vector<double> applied;
    std::vector<double> alpha;  // per-node alpha (reported until acked)
    std::vector<uint32_t> site;       // per-node ActuationSite (from acks)
    std::vector<double> queue_shed;   // per-node planned in-network victims
    size_t acks = 0;
  };

  void Finalize();

  ClusterControlLoopOptions options_;
  ClusterMonitor monitor_;
  CtrlController controller_;
  Recorder recorder_;
  FlightRecorder flight_{"cluster"};
  HealthMonitor health_;
  RecordCallback on_record_;

  MetricsRegistry* metrics_sink_ = nullptr;
  ActuationSite last_site_ = ActuationSite::kEntry;
  double yd_;
  uint32_t seq_ = 0;
  int ticks_ = 0;
  int idle_ticks_ = 0;
  PendingPeriod pending_;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_CLUSTER_CLUSTER_CONTROL_LOOP_H_
