#ifndef CTRLSHED_CLUSTER_CLUSTER_SIM_H_
#define CTRLSHED_CLUSTER_CLUSTER_SIM_H_

#include <cstdint>
#include <vector>

#include "metrics/qos_metrics.h"
#include "metrics/recorder.h"
#include "runner/experiment.h"
#include "telemetry/metrics_registry.h"

namespace ctrlshed {

/// Deterministic multi-node cluster on the discrete-event substrate: N
/// nodes of W sim engines each, a ClusterControlLoop, and a modeled
/// message-passing network (delay + Bernoulli loss, seeded) instead of
/// sockets. Every event — arrivals, node ticks, message deliveries,
/// controller ticks — lives on one event heap with FIFO tie-breaking, so
/// runs are bit-reproducible.
///
/// Zero-delay messages are delivered INLINE (a direct call, not a
/// scheduled event): a report sent at a period boundary is then visible
/// to the controller tick at that same boundary, exactly like the
/// single-process loop where sampling and actuation are one call chain.
/// That, plus nodes ticking before the controller at shared timestamps,
/// is what makes nodes=1/delay=0/loss=0 arithmetically identical to the
/// single-process sharded loop.
struct ClusterSimConfig {
  /// Workload, duration, period, setpoint, headrooms, gains, seed. The
  /// cluster path supports method=kCtrl with last-value prediction and no
  /// setpoint schedule; the Fig. 14 cost trace (`vary_cost`) and the
  /// in-network queue shedder (`use_queue_shedder` /
  /// `cost_aware_shedding`, budgets planned per-node by the NodeAgent)
  /// ride along. Injected estimation noise stays sim-loop-only.
  ExperimentConfig base;

  int nodes = 1;
  int workers_per_node = 1;

  // --- Network model (trace seconds / probabilities) --------------------
  double report_delay = 0.0;    ///< node -> controller (reports and acks).
  double command_delay = 0.0;   ///< controller -> node.
  double loss = 0.0;            ///< Per-message loss probability.
  uint64_t net_seed_offset = 17;  ///< Loss RNG seed = base.seed + this.

  /// Stale-node policy M: excluded after missing this many periods.
  int stale_periods = 3;

  /// Piggyback a metrics snapshot (built from each node's cumulative
  /// counters) on every report, as the socket nodes do. On by default to
  /// prove the sim's EXPECT_EQ identity with the single-process loop
  /// survives federation: the snapshot never touches the plant math.
  bool piggyback_metrics = true;

  /// Optional federation sink: when set, piggybacked snapshots are folded
  /// here under node="<id>" labels, so tests can assert on the controller
  /// registry the socket runner would expose on /metrics. Not owned.
  MetricsRegistry* fleet_metrics = nullptr;

  /// When > 0, node `kill_node_id` stops ticking/reporting (and its
  /// producers' tuples vanish) at this trace time — the deterministic
  /// twin of kill -9 on a node process.
  double kill_node_at = 0.0;
  uint32_t kill_node_id = 0;
};

/// Shed counters follow the repo-wide scheme (docs/architecture.md "Shed
/// accounting"); the sim has no ingress rings, so ring_dropped is absent.
struct ClusterSimNodeResult {
  uint32_t node_id = 0;
  bool killed = false;
  uint64_t offered = 0;
  uint64_t entry_shed = 0;
  uint64_t queue_shed = 0;
  uint64_t departed = 0;
  double final_alpha = 0.0;
};

struct ClusterSimResult {
  Recorder recorder;  ///< The controller's per-period rows.
  std::vector<ClusterSimNodeResult> nodes;
  QosSummary summary;  ///< Aggregate over every node's departures.
  double nominal_cost = 0.0;
  uint64_t messages_sent = 0;
  uint64_t messages_lost = 0;
  int ticks = 0;
  int idle_ticks = 0;
  int final_active_nodes = 0;
};

ClusterSimResult RunClusterSim(const ClusterSimConfig& config);

}  // namespace ctrlshed

#endif  // CTRLSHED_CLUSTER_CLUSTER_SIM_H_
