#ifndef CTRLSHED_CLUSTER_WIRE_H_
#define CTRLSHED_CLUSTER_WIRE_H_

#include <cstdint>
#include <string>

#include "control/period_math.h"
#include "net/frame.h"
#include "telemetry/fleet_metrics.h"

namespace ctrlshed {

/// Control-plane messages exchanged between cluster nodes and the
/// controller. Stats travel as per-period counter DELTAS (the exact
/// PeriodDeltas the node's own monitor consumed), not cumulative totals:
/// summing deltas upstream reproduces the single-process aggregation
/// arithmetic bit-for-bit, and a node that leaves and rejoins never makes
/// a counter appear to run backwards.

/// node -> controller, once per connection: membership announcement.
struct NodeHello {
  uint32_t node_id = 0;
  uint32_t workers = 0;        ///< Shard count N_i of this node.
  double headroom = 0.0;       ///< Per-worker H estimate.
  double nominal_cost = 0.0;   ///< Model constant c (must match the plan).
  double period = 0.0;         ///< Control period T the node ticks at.
  /// Node trace-clock timestamp at send (us since the node tracer's
  /// epoch); 0 when the node has no tracer. The controller echoes it in
  /// HelloAck so the node can estimate the trace-clock offset for
  /// cross-process trace merging.
  uint64_t trace_clock_us = 0;
};

/// controller -> node, in response to a hello: clock-sync exchange for
/// trace correlation. `echo_t0_us` is the hello's trace_clock_us sent
/// back; `ctrl_clock_us` is the controller's trace clock when the hello
/// was handled (0 when the controller has no tracer). The node computes
/// offset = ctrl_clock_us - (t0 + t_receive)/2 — classic NTP-style
/// midpoint — and stamps it into its trace as a `clock_sync` instant.
struct HelloAck {
  uint32_t node_id = 0;
  uint64_t echo_t0_us = 0;
  uint64_t ctrl_clock_us = 0;
};

/// node -> controller, once per control period.
struct NodeStatsReport {
  uint32_t node_id = 0;
  uint32_t seq = 0;            ///< Node-local period index k.
  /// Controller period seq of the last actuation this node applied
  /// (0 = none yet). Lets the controller-side span for a report carry the
  /// same correlation id as the node-side apply span.
  uint32_t ctrl_seq = 0;
  PeriodDeltas deltas;         ///< This period's counter deltas + queue.
  double alpha = 0.0;          ///< Blended entry-drop probability in force.
  // Cumulative context for the controller's status/summary display only —
  // never fed into the aggregate plant math. Shed counters follow the
  // repo-wide scheme (docs/architecture.md "Shed accounting"): entry gate
  // drops, ingress-ring overflow, and in-network queue drops are disjoint.
  uint64_t offered_total = 0;
  uint64_t entry_shed_total = 0;
  uint64_t ring_dropped_total = 0;
  uint64_t queue_shed_total = 0;
  uint64_t departed_total = 0;
  /// Federated metrics piggyback (see telemetry/fleet_metrics.h). Strictly
  /// observability: the controller folds it into its registry and NEVER
  /// feeds it into the aggregate plant math, which keeps the cluster sim
  /// EXPECT_EQ-identical with piggybacking on.
  bool has_metrics = false;
  MetricsWireSnapshot metrics;
};

/// controller -> node, once per control period: this node's slice of v(k).
/// The two plan flags travel on every command (encoded as one flags word)
/// so the node builds the SAME ActuationPlan the controller's policy asks
/// for without any out-of-band configuration channel.
struct ClusterActuation {
  uint32_t seq = 0;            ///< Controller period index.
  double v = 0.0;              ///< Admitted-rate command for this node.
  double target_delay = 0.0;   ///< Current setpoint yd.
  bool queue_shed = false;     ///< Build in-network-enabled plans.
  bool cost_aware = false;     ///< Victim policy for the in-network half.
};

/// node -> controller, in response to an actuation.
struct ActuationAck {
  uint32_t node_id = 0;
  uint32_t seq = 0;            ///< Echoes ClusterActuation::seq.
  double applied = 0.0;        ///< Rate the shedders could actually target.
  double alpha = 0.0;          ///< Share-blended drop probability after apply.
  /// ActuationSite the node's plans chose this period (0 entry,
  /// 1 in_network, 2 split — numeric to keep the wire layer free of
  /// control-layer includes; decode rejects anything else).
  uint32_t site = 0;
  /// Planned in-network victim tuples across the node's shards (the plans'
  /// summed queue_target). Planned, not realized: the workers drain the
  /// budget asynchronously; realized drops flow back cumulatively in
  /// NodeStatsReport::queue_shed_total.
  double queue_shed = 0.0;
};

// Encoders return complete frames (header included), ready to send.
std::string EncodeHelloFrame(const NodeHello& h);
std::string EncodeHelloAckFrame(const HelloAck& a);
std::string EncodeStatsReportFrame(const NodeStatsReport& r);
std::string EncodeActuationFrame(const ClusterActuation& a);
std::string EncodeAckFrame(const ActuationAck& a);

// Decoders take a frame payload of the matching type and reject size
// mismatches, trailing bytes, and non-finite floats (a NaN queue length or
// rate would poison the aggregate plant silently).
bool DecodeHello(const std::string& payload, NodeHello* out);
bool DecodeHelloAck(const std::string& payload, HelloAck* out);
bool DecodeStatsReport(const std::string& payload, NodeStatsReport* out);
bool DecodeActuation(const std::string& payload, ClusterActuation* out);
bool DecodeAck(const std::string& payload, ActuationAck* out);

}  // namespace ctrlshed

#endif  // CTRLSHED_CLUSTER_WIRE_H_
