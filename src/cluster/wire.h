#ifndef CTRLSHED_CLUSTER_WIRE_H_
#define CTRLSHED_CLUSTER_WIRE_H_

#include <cstdint>
#include <string>

#include "control/period_math.h"
#include "net/frame.h"

namespace ctrlshed {

/// Control-plane messages exchanged between cluster nodes and the
/// controller. Stats travel as per-period counter DELTAS (the exact
/// PeriodDeltas the node's own monitor consumed), not cumulative totals:
/// summing deltas upstream reproduces the single-process aggregation
/// arithmetic bit-for-bit, and a node that leaves and rejoins never makes
/// a counter appear to run backwards.

/// node -> controller, once per connection: membership announcement.
struct NodeHello {
  uint32_t node_id = 0;
  uint32_t workers = 0;        ///< Shard count N_i of this node.
  double headroom = 0.0;       ///< Per-worker H estimate.
  double nominal_cost = 0.0;   ///< Model constant c (must match the plan).
  double period = 0.0;         ///< Control period T the node ticks at.
};

/// node -> controller, once per control period.
struct NodeStatsReport {
  uint32_t node_id = 0;
  uint32_t seq = 0;            ///< Node-local period index k.
  PeriodDeltas deltas;         ///< This period's counter deltas + queue.
  double alpha = 0.0;          ///< Blended entry-drop probability in force.
  // Cumulative context for the controller's status/summary display only —
  // never fed into the aggregate plant math.
  uint64_t offered_total = 0;
  uint64_t entry_shed_total = 0;
  uint64_t ring_dropped_total = 0;
  uint64_t departed_total = 0;
};

/// controller -> node, once per control period: this node's slice of v(k).
struct ClusterActuation {
  uint32_t seq = 0;            ///< Controller period index.
  double v = 0.0;              ///< Admitted-rate command for this node.
  double target_delay = 0.0;   ///< Current setpoint yd.
};

/// node -> controller, in response to an actuation.
struct ActuationAck {
  uint32_t node_id = 0;
  uint32_t seq = 0;            ///< Echoes ClusterActuation::seq.
  double applied = 0.0;        ///< Rate the shedders could actually target.
  double alpha = 0.0;          ///< Share-blended drop probability after apply.
};

// Encoders return complete frames (header included), ready to send.
std::string EncodeHelloFrame(const NodeHello& h);
std::string EncodeStatsReportFrame(const NodeStatsReport& r);
std::string EncodeActuationFrame(const ClusterActuation& a);
std::string EncodeAckFrame(const ActuationAck& a);

// Decoders take a frame payload of the matching type and reject size
// mismatches, trailing bytes, and non-finite floats (a NaN queue length or
// rate would poison the aggregate plant silently).
bool DecodeHello(const std::string& payload, NodeHello* out);
bool DecodeStatsReport(const std::string& payload, NodeStatsReport* out);
bool DecodeActuation(const std::string& payload, ClusterActuation* out);
bool DecodeAck(const std::string& payload, ActuationAck* out);

}  // namespace ctrlshed

#endif  // CTRLSHED_CLUSTER_WIRE_H_
