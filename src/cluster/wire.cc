#include "cluster/wire.h"

#include <cmath>

namespace ctrlshed {

namespace {

std::string Framed(FrameType type, const std::string& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(type, payload, &frame);
  return frame;
}

bool AllFinite(std::initializer_list<double> vs) {
  for (double v : vs) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

std::string EncodeHelloFrame(const NodeHello& h) {
  std::string p;
  PutU32(h.node_id, &p);
  PutU32(h.workers, &p);
  PutF64(h.headroom, &p);
  PutF64(h.nominal_cost, &p);
  PutF64(h.period, &p);
  return Framed(FrameType::kHello, p);
}

bool DecodeHello(const std::string& payload, NodeHello* out) {
  WireReader r(payload);
  if (!r.ReadU32(&out->node_id) || !r.ReadU32(&out->workers) ||
      !r.ReadF64(&out->headroom) || !r.ReadF64(&out->nominal_cost) ||
      !r.ReadF64(&out->period) || !r.AtEnd()) {
    return false;
  }
  // A hello that fails these invariants would seed an invalid plant.
  return out->workers >= 1 &&
         AllFinite({out->headroom, out->nominal_cost, out->period}) &&
         out->headroom > 0.0 && out->nominal_cost > 0.0 && out->period > 0.0;
}

std::string EncodeStatsReportFrame(const NodeStatsReport& r) {
  std::string p;
  PutU32(r.node_id, &p);
  PutU32(r.seq, &p);
  PutF64(r.deltas.now, &p);
  PutU64(r.deltas.offered, &p);
  PutU64(r.deltas.admitted, &p);
  PutF64(r.deltas.drained_base_load, &p);
  PutF64(r.deltas.busy_seconds, &p);
  PutF64(r.deltas.queue, &p);
  PutF64(r.deltas.delay_sum, &p);
  PutU64(r.deltas.delay_count, &p);
  PutF64(r.alpha, &p);
  PutU64(r.offered_total, &p);
  PutU64(r.entry_shed_total, &p);
  PutU64(r.ring_dropped_total, &p);
  PutU64(r.departed_total, &p);
  return Framed(FrameType::kStatsReport, p);
}

bool DecodeStatsReport(const std::string& payload, NodeStatsReport* out) {
  WireReader r(payload);
  if (!r.ReadU32(&out->node_id) || !r.ReadU32(&out->seq) ||
      !r.ReadF64(&out->deltas.now) || !r.ReadU64(&out->deltas.offered) ||
      !r.ReadU64(&out->deltas.admitted) ||
      !r.ReadF64(&out->deltas.drained_base_load) ||
      !r.ReadF64(&out->deltas.busy_seconds) || !r.ReadF64(&out->deltas.queue) ||
      !r.ReadF64(&out->deltas.delay_sum) ||
      !r.ReadU64(&out->deltas.delay_count) || !r.ReadF64(&out->alpha) ||
      !r.ReadU64(&out->offered_total) || !r.ReadU64(&out->entry_shed_total) ||
      !r.ReadU64(&out->ring_dropped_total) ||
      !r.ReadU64(&out->departed_total) || !r.AtEnd()) {
    return false;
  }
  return AllFinite({out->deltas.now, out->deltas.drained_base_load,
                    out->deltas.busy_seconds, out->deltas.queue,
                    out->deltas.delay_sum, out->alpha}) &&
         out->deltas.queue >= 0.0 && out->deltas.now >= 0.0;
}

std::string EncodeActuationFrame(const ClusterActuation& a) {
  std::string p;
  PutU32(a.seq, &p);
  PutF64(a.v, &p);
  PutF64(a.target_delay, &p);
  return Framed(FrameType::kActuation, p);
}

bool DecodeActuation(const std::string& payload, ClusterActuation* out) {
  WireReader r(payload);
  if (!r.ReadU32(&out->seq) || !r.ReadF64(&out->v) ||
      !r.ReadF64(&out->target_delay) || !r.AtEnd()) {
    return false;
  }
  return AllFinite({out->v, out->target_delay}) && out->target_delay > 0.0;
}

std::string EncodeAckFrame(const ActuationAck& a) {
  std::string p;
  PutU32(a.node_id, &p);
  PutU32(a.seq, &p);
  PutF64(a.applied, &p);
  PutF64(a.alpha, &p);
  return Framed(FrameType::kAck, p);
}

bool DecodeAck(const std::string& payload, ActuationAck* out) {
  WireReader r(payload);
  if (!r.ReadU32(&out->node_id) || !r.ReadU32(&out->seq) ||
      !r.ReadF64(&out->applied) || !r.ReadF64(&out->alpha) || !r.AtEnd()) {
    return false;
  }
  return AllFinite({out->applied, out->alpha});
}

}  // namespace ctrlshed
