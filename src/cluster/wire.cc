#include "cluster/wire.h"

#include <cmath>

namespace ctrlshed {

namespace {

std::string Framed(FrameType type, const std::string& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(type, payload, &frame);
  return frame;
}

bool AllFinite(std::initializer_list<double> vs) {
  for (double v : vs) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

void PutName(const std::string& name, std::string* out) {
  PutU32(static_cast<uint32_t>(name.size()), out);
  out->append(name);
}

bool ReadName(WireReader* r, std::string* name) {
  uint32_t len = 0;
  if (!r->ReadU32(&len)) return false;
  if (len == 0 || len > kMaxFleetNameBytes) return false;
  return r->ReadBytes(len, name);
}

// Piggybacked metrics snapshot section of a stats report: three counted
// runs of (name, value) entries. Caps and finiteness are enforced here on
// decode and re-checked whole via ValidMetricsWireSnapshot.
void PutMetricsSnapshot(const MetricsWireSnapshot& m, std::string* out) {
  PutU32(static_cast<uint32_t>(m.counters.size()), out);
  for (const auto& [name, value] : m.counters) {
    PutName(name, out);
    PutU64(value, out);
  }
  PutU32(static_cast<uint32_t>(m.gauges.size()), out);
  for (const auto& [name, value] : m.gauges) {
    PutName(name, out);
    PutF64(value, out);
  }
  PutU32(static_cast<uint32_t>(m.histograms.size()), out);
  for (const auto& h : m.histograms) {
    PutName(h.name, out);
    PutU64(h.stats.count, out);
    PutF64(h.stats.sum, out);
    PutF64(h.stats.min, out);
    PutF64(h.stats.max, out);
    PutF64(h.stats.p50, out);
    PutF64(h.stats.p95, out);
    PutF64(h.stats.p99, out);
  }
}

bool ReadMetricsSnapshot(WireReader* r, MetricsWireSnapshot* m) {
  uint32_t n = 0;
  if (!r->ReadU32(&n) || n > kMaxFleetEntries) return false;
  m->counters.clear();
  m->counters.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    uint64_t value = 0;
    if (!ReadName(r, &name) || !r->ReadU64(&value)) return false;
    m->counters.emplace_back(std::move(name), value);
  }
  if (!r->ReadU32(&n) || n > kMaxFleetEntries) return false;
  m->gauges.clear();
  m->gauges.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    double value = 0.0;
    if (!ReadName(r, &name) || !r->ReadF64(&value)) return false;
    m->gauges.emplace_back(std::move(name), value);
  }
  if (!r->ReadU32(&n) || n > kMaxFleetEntries) return false;
  m->histograms.clear();
  m->histograms.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    MetricsWireSnapshot::Hist h;
    if (!ReadName(r, &h.name) || !r->ReadU64(&h.stats.count) ||
        !r->ReadF64(&h.stats.sum) || !r->ReadF64(&h.stats.min) ||
        !r->ReadF64(&h.stats.max) || !r->ReadF64(&h.stats.p50) ||
        !r->ReadF64(&h.stats.p95) || !r->ReadF64(&h.stats.p99)) {
      return false;
    }
    m->histograms.push_back(std::move(h));
  }
  return ValidMetricsWireSnapshot(*m);
}

}  // namespace

std::string EncodeHelloFrame(const NodeHello& h) {
  std::string p;
  PutU32(h.node_id, &p);
  PutU32(h.workers, &p);
  PutF64(h.headroom, &p);
  PutF64(h.nominal_cost, &p);
  PutF64(h.period, &p);
  PutU64(h.trace_clock_us, &p);
  return Framed(FrameType::kHello, p);
}

bool DecodeHello(const std::string& payload, NodeHello* out) {
  WireReader r(payload);
  if (!r.ReadU32(&out->node_id) || !r.ReadU32(&out->workers) ||
      !r.ReadF64(&out->headroom) || !r.ReadF64(&out->nominal_cost) ||
      !r.ReadF64(&out->period) || !r.ReadU64(&out->trace_clock_us) ||
      !r.AtEnd()) {
    return false;
  }
  // A hello that fails these invariants would seed an invalid plant.
  return out->workers >= 1 &&
         AllFinite({out->headroom, out->nominal_cost, out->period}) &&
         out->headroom > 0.0 && out->nominal_cost > 0.0 && out->period > 0.0;
}

std::string EncodeHelloAckFrame(const HelloAck& a) {
  std::string p;
  PutU32(a.node_id, &p);
  PutU64(a.echo_t0_us, &p);
  PutU64(a.ctrl_clock_us, &p);
  return Framed(FrameType::kHelloAck, p);
}

bool DecodeHelloAck(const std::string& payload, HelloAck* out) {
  WireReader r(payload);
  return r.ReadU32(&out->node_id) && r.ReadU64(&out->echo_t0_us) &&
         r.ReadU64(&out->ctrl_clock_us) && r.AtEnd();
}

std::string EncodeStatsReportFrame(const NodeStatsReport& r) {
  std::string p;
  PutU32(r.node_id, &p);
  PutU32(r.seq, &p);
  PutU32(r.ctrl_seq, &p);
  PutF64(r.deltas.now, &p);
  PutU64(r.deltas.offered, &p);
  PutU64(r.deltas.admitted, &p);
  PutF64(r.deltas.drained_base_load, &p);
  PutF64(r.deltas.busy_seconds, &p);
  PutF64(r.deltas.queue, &p);
  PutF64(r.deltas.delay_sum, &p);
  PutU64(r.deltas.delay_count, &p);
  PutF64(r.alpha, &p);
  PutU64(r.offered_total, &p);
  PutU64(r.entry_shed_total, &p);
  PutU64(r.ring_dropped_total, &p);
  PutU64(r.queue_shed_total, &p);
  PutU64(r.departed_total, &p);
  PutU32(r.has_metrics ? 1 : 0, &p);
  if (r.has_metrics) PutMetricsSnapshot(r.metrics, &p);
  return Framed(FrameType::kStatsReport, p);
}

bool DecodeStatsReport(const std::string& payload, NodeStatsReport* out) {
  WireReader r(payload);
  if (!r.ReadU32(&out->node_id) || !r.ReadU32(&out->seq) ||
      !r.ReadU32(&out->ctrl_seq) ||
      !r.ReadF64(&out->deltas.now) || !r.ReadU64(&out->deltas.offered) ||
      !r.ReadU64(&out->deltas.admitted) ||
      !r.ReadF64(&out->deltas.drained_base_load) ||
      !r.ReadF64(&out->deltas.busy_seconds) || !r.ReadF64(&out->deltas.queue) ||
      !r.ReadF64(&out->deltas.delay_sum) ||
      !r.ReadU64(&out->deltas.delay_count) || !r.ReadF64(&out->alpha) ||
      !r.ReadU64(&out->offered_total) || !r.ReadU64(&out->entry_shed_total) ||
      !r.ReadU64(&out->ring_dropped_total) ||
      !r.ReadU64(&out->queue_shed_total) ||
      !r.ReadU64(&out->departed_total)) {
    return false;
  }
  uint32_t has_metrics = 0;
  if (!r.ReadU32(&has_metrics) || has_metrics > 1) return false;
  out->has_metrics = has_metrics == 1;
  out->metrics = MetricsWireSnapshot();
  if (out->has_metrics && !ReadMetricsSnapshot(&r, &out->metrics)) {
    return false;
  }
  if (!r.AtEnd()) return false;
  return AllFinite({out->deltas.now, out->deltas.drained_base_load,
                    out->deltas.busy_seconds, out->deltas.queue,
                    out->deltas.delay_sum, out->alpha}) &&
         out->deltas.queue >= 0.0 && out->deltas.now >= 0.0;
}

std::string EncodeActuationFrame(const ClusterActuation& a) {
  std::string p;
  PutU32(a.seq, &p);
  PutF64(a.v, &p);
  PutF64(a.target_delay, &p);
  uint32_t flags = 0;
  if (a.queue_shed) flags |= 1u;
  if (a.cost_aware) flags |= 2u;
  PutU32(flags, &p);
  return Framed(FrameType::kActuation, p);
}

bool DecodeActuation(const std::string& payload, ClusterActuation* out) {
  WireReader r(payload);
  uint32_t flags = 0;
  if (!r.ReadU32(&out->seq) || !r.ReadF64(&out->v) ||
      !r.ReadF64(&out->target_delay) || !r.ReadU32(&flags) || !r.AtEnd()) {
    return false;
  }
  if (flags > 3) return false;  // unknown plan flag: reject, don't guess
  out->queue_shed = (flags & 1u) != 0;
  out->cost_aware = (flags & 2u) != 0;
  return AllFinite({out->v, out->target_delay}) && out->target_delay > 0.0;
}

std::string EncodeAckFrame(const ActuationAck& a) {
  std::string p;
  PutU32(a.node_id, &p);
  PutU32(a.seq, &p);
  PutF64(a.applied, &p);
  PutF64(a.alpha, &p);
  PutU32(a.site, &p);
  PutF64(a.queue_shed, &p);
  return Framed(FrameType::kAck, p);
}

bool DecodeAck(const std::string& payload, ActuationAck* out) {
  WireReader r(payload);
  if (!r.ReadU32(&out->node_id) || !r.ReadU32(&out->seq) ||
      !r.ReadF64(&out->applied) || !r.ReadF64(&out->alpha) ||
      !r.ReadU32(&out->site) || !r.ReadF64(&out->queue_shed) || !r.AtEnd()) {
    return false;
  }
  return out->site <= 2 && AllFinite({out->applied, out->alpha,
                                      out->queue_shed}) &&
         out->queue_shed >= 0.0;
}

}  // namespace ctrlshed
