#include "cluster/controller_runner.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/cluster_control_loop.h"
#include "cluster/wire.h"
#include "common/macros.h"
#include "net/frame_server.h"
#include "net/socket_util.h"
#include "rt/rt_clock.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"
#include "telemetry/tracer.h"

namespace ctrlshed {

namespace {
constexpr auto kMaxSleepChunk = std::chrono::milliseconds(5);

void SleepUntilWall(std::chrono::steady_clock::time_point deadline,
                    const std::atomic<bool>* stop) {
  for (;;) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return;
    const auto remaining = deadline - now;
    std::this_thread::sleep_for(
        remaining < std::chrono::steady_clock::duration(kMaxSleepChunk)
            ? remaining
            : std::chrono::steady_clock::duration(kMaxSleepChunk));
  }
}

bool StopRequested(const std::atomic<bool>* stop) {
  return stop != nullptr && stop->load(std::memory_order_relaxed);
}
}  // namespace

ClusterControllerResult RunClusterController(
    const ClusterControllerConfig& config) {
  const ExperimentConfig& base = config.base;
  CS_CHECK_MSG(base.method == Method::kCtrl,
               "the cluster controller drives the CTRL method");
  CS_CHECK_MSG(base.capacity_rate > 0.0, "capacity must be positive");
  IgnoreSigPipe();

  const double nominal_cost = base.headroom_true / base.capacity_rate;

  std::unique_ptr<Telemetry> telemetry = Telemetry::Open(base.telemetry);
  if (telemetry && !telemetry->dir().empty()) {
    SetFlightDumpPath(telemetry->dir() + "/ctrlshed.flightdump.json");
  }

  RtClock clock(config.time_compression);

  ClusterControlLoopOptions lopts;
  lopts.nominal_entry_cost = nominal_cost;
  lopts.target_delay = base.target_delay;
  lopts.monitor.period = base.period;
  lopts.monitor.cost_ewma = base.cost_ewma;
  lopts.monitor.adapt_headroom = base.adapt_headroom;
  lopts.monitor.stale_periods = config.stale_periods;
  lopts.ctrl.gains = base.gains;
  lopts.ctrl.headroom = base.headroom_est;  // re-targeted from membership
  lopts.ctrl.feedback = base.ctrl_feedback;
  lopts.ctrl.anti_windup = base.anti_windup;
  lopts.queue_shed = base.use_queue_shedder;
  lopts.cost_aware = base.cost_aware_shedding;
  ClusterControlLoop ctl(lopts);
  if (telemetry) {
    // Record callbacks fire from the serve thread (ack-completed periods)
    // and the period loop (tick-finalized ones), always under loop_mu — the
    // mutex serializes the publishes the timeline contract asks for.
    ctl.SetRecordCallback([&telemetry](const PeriodRecord& row) {
      telemetry->PublishTimelineRow(row);
    });
    // Federate piggybacked node snapshots into this registry: one scrape
    // of the controller's /metrics then covers the whole fleet.
    ctl.SetMetricsSink(telemetry->metrics());
  }

  // loop_mu serializes the two threads that touch ctl and the node/conn
  // maps: the frame server's serve thread and this (period) thread.
  std::mutex loop_mu;
  std::unordered_map<uint64_t, uint32_t> conn_node;  // conn -> node
  std::unordered_map<uint32_t, uint64_t> node_conn;  // node -> live conn

  // The /status cluster block is PREBUILT here whenever membership or
  // freshness changes, and the telemetry status source only copies it out
  // under this leaf mutex. The source must not take loop_mu: the telemetry
  // server invokes it under its own lock, while the record callback above
  // publishes rows INTO that lock while holding loop_mu — sourcing status
  // through loop_mu would close a lock-order cycle.
  std::mutex status_mu;
  std::string status_json;
  std::string fleet_json = "{\"nodes\":[]}";
  std::string health_json = "{}";
  int health_status = 200;
  // Requires loop_mu held (reads ctl); safe before the threads start too.
  const auto refresh_status = [&ctl, &clock, &base, &status_mu, &status_json,
                               &fleet_json, &health_json, &health_status] {
    const SimTime now = clock.Now();
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"mode\":\"cluster\",\"cluster\":{\"role\":"
                  "\"controller\",\"period\":%g,\"target_delay\":%g,"
                  "\"nodes\":%d,\"active\":%d,\"node_list\":[",
                  base.period, ctl.target_delay(), ctl.monitor().known_count(),
                  ctl.monitor().active_count());
    std::string json(buf);
    std::string fleet("{\"nodes\":[");
    const std::vector<uint32_t>& active_ids = ctl.monitor().active_ids();
    const std::vector<double>& queues = ctl.monitor().node_queues();
    bool first = true;
    for (const auto& n : ctl.monitor().nodes()) {
      std::snprintf(buf, sizeof(buf),
                    "%s{\"id\":%u,\"workers\":%u,\"active\":%s,"
                    "\"last_report_age_s\":%.3f,\"alpha\":%.4f}",
                    first ? "" : ",", n.id, n.workers,
                    n.active ? "true" : "false",
                    n.ever_reported ? now - n.last_seen : -1.0, n.alpha);
      json += buf;
      // The fleet view adds the plant decomposition the dashboard panel
      // plots: last sampled queue, cumulative loss, last report seq.
      double queue = 0.0;
      for (size_t i = 0; i < active_ids.size() && i < queues.size(); ++i) {
        if (active_ids[i] == n.id) queue = queues[i];
      }
      const uint64_t lost = n.entry_shed_total + n.ring_dropped_total;
      const double loss = n.offered_total > 0
                              ? static_cast<double>(lost) /
                                    static_cast<double>(n.offered_total)
                              : 0.0;
      // Measured per-worker headroom next to the configured one — null
      // until the node's first report with busy time (see ISSUE H_hat).
      const double h_hat = n.h_hat_tracker.value();
      char h_hat_buf[32];
      if (h_hat == h_hat) {
        std::snprintf(h_hat_buf, sizeof(h_hat_buf), "%.3f", h_hat);
      } else {
        std::snprintf(h_hat_buf, sizeof(h_hat_buf), "null");
      }
      std::snprintf(
          buf, sizeof(buf),
          "%s{\"id\":%u,\"workers\":%u,\"fresh\":%s,"
          "\"last_report_age_s\":%.3f,\"queue\":%.3f,\"alpha\":%.4f,"
          "\"offered\":%llu,\"shed\":%llu,\"loss\":%.4f,\"last_seq\":%u,"
          "\"headroom\":%.3f,\"h_hat\":%s}",
          first ? "" : ",", n.id, n.workers, n.active ? "true" : "false",
          n.ever_reported ? now - n.last_seen : -1.0, queue, n.alpha,
          static_cast<unsigned long long>(n.offered_total),
          static_cast<unsigned long long>(lost), loss, n.last_seq,
          n.headroom, h_hat_buf);
      fleet += buf;
      first = false;
    }
    json += "]}}";
    std::snprintf(buf, sizeof(buf), "],\"period\":%g,\"target_delay\":%g}",
                  base.period, ctl.target_delay());
    fleet += buf;
    // The /health pair is prebuilt under loop_mu for the same reason the
    // status/fleet snapshots are: the server must never reach into ctl.
    const HealthReport health = ctl.Health();
    std::string hjson = health.ToJson();
    const int hstatus = health.HttpStatus();
    std::lock_guard<std::mutex> lock(status_mu);
    status_json = std::move(json);
    fleet_json = std::move(fleet);
    health_json = std::move(hjson);
    health_status = hstatus;
  };

  ClusterControllerResult result;

  FrameServerOptions sopts;
  sopts.port = config.port;
  sopts.bind_address = config.bind_address;
  FrameServer server(sopts);
  // The serve thread owns its own trace buffer, registered lazily on the
  // first frame (registration must happen on the owning thread).
  TraceBuffer* serve_buf = nullptr;
  bool serve_buf_init = false;
  server.OnFrame([&](uint64_t conn_id, const Frame& f) {
    if (!serve_buf_init) {
      serve_buf_init = true;
      if (telemetry) serve_buf = telemetry->RegisterThread("ctl.serve");
    }
    std::lock_guard<std::mutex> lock(loop_mu);
    switch (f.type) {
      case FrameType::kHello: {
        NodeHello h;
        if (!DecodeHello(f.payload, &h)) break;
        ctl.OnHello(h, clock.Now());
        conn_node[conn_id] = h.node_id;
        node_conn[h.node_id] = conn_id;
        ++result.hellos;
        // Close the clock-sync round trip: echo the node's trace clock
        // next to ours so the node can place itself on our timebase.
        HelloAck ha;
        ha.node_id = h.node_id;
        ha.echo_t0_us = h.trace_clock_us;
        ha.ctrl_clock_us =
            (telemetry && telemetry->tracer() != nullptr)
                ? static_cast<uint64_t>(telemetry->tracer()->NowUs())
                : 0;
        server.Send(conn_id, EncodeHelloAckFrame(ha));
        refresh_status();
        return;
      }
      case FrameType::kStatsReport: {
        NodeStatsReport r;
        if (!DecodeStatsReport(f.payload, &r)) break;
        ScopedSpan span(serve_buf, "cluster.on_report");
        // ctrl_seq echoes the last actuation the node applied — the
        // cross-process correlation id (0 = none yet, don't stamp).
        if (r.ctrl_seq > 0) {
          span.SetArg("period", static_cast<int64_t>(r.ctrl_seq));
        }
        ctl.OnReport(r, clock.Now());
        ++result.reports;
        refresh_status();
        return;
      }
      case FrameType::kAck: {
        ActuationAck a;
        if (!DecodeAck(f.payload, &a)) break;
        ScopedSpan span(serve_buf, "cluster.on_ack");
        if (a.seq > 0) span.SetArg("period", static_cast<int64_t>(a.seq));
        ctl.OnAck(a);
        ++result.acks;
        return;
      }
      default:
        break;
    }
    ++result.rejected;
    char detail[48];
    std::snprintf(detail, sizeof(detail), "conn %llu frame type %u",
                  static_cast<unsigned long long>(conn_id),
                  static_cast<unsigned>(f.type));
    ctl.flight()->RecordEvent("decode_reject", detail, clock.Now());
  });
  server.OnDisconnect([&](uint64_t conn_id) {
    std::lock_guard<std::mutex> lock(loop_mu);
    auto it = conn_node.find(conn_id);
    if (it == conn_node.end()) return;
    // Only forget the mapping if this connection is still the node's
    // current one (a reconnect may already have replaced it).
    auto live = node_conn.find(it->second);
    if (live != node_conn.end() && live->second == conn_id) {
      node_conn.erase(live);
    }
    conn_node.erase(it);
  });

  if (telemetry) {
    // The /status cluster block: role, membership, and per-node freshness,
    // served from the prebuilt snapshot (see refresh_status above).
    refresh_status();  // threads not started yet; loop_mu not needed
    telemetry->SetStatusSource([&status_mu, &status_json] {
      std::lock_guard<std::mutex> lock(status_mu);
      return status_json;
    });
    if (telemetry->server() != nullptr) {
      // Same leaf-mutex discipline as the status source: the server must
      // never pull /fleet through loop_mu (lock-order cycle with the
      // record callback publishing into the server's own lock).
      telemetry->server()->SetFleetCallback([&status_mu, &fleet_json] {
        std::lock_guard<std::mutex> lock(status_mu);
        return fleet_json;
      });
      telemetry->server()->SetHealthCallback(
          [&status_mu, &health_json, &health_status] {
            std::lock_guard<std::mutex> lock(status_mu);
            return std::make_pair(health_status, health_json);
          });
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  clock.Start();
  server.Start();
  if (config.on_ready) config.on_ready(server.port());

  // Optional bring-up barrier: give scripted nodes a window to join before
  // the first boundary, so early ticks aren't all idle.
  if (config.min_nodes > 0) {
    const auto deadline =
        wall_start + std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(
                             config.min_nodes_timeout_wall));
    while (!StopRequested(config.stop) &&
           std::chrono::steady_clock::now() < deadline) {
      {
        std::lock_guard<std::mutex> lock(loop_mu);
        if (ctl.monitor().known_count() >= config.min_nodes) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  // --- Period loop --------------------------------------------------------
  TraceBuffer* period_buf =
      telemetry ? telemetry->RegisterThread("ctl.period") : nullptr;
  for (int64_t k = 1;; ++k) {
    const SimTime boundary = static_cast<double>(k) * base.period;
    if (boundary > base.duration) break;
    SleepUntilWall(clock.WallDeadline(boundary), config.stop);
    if (StopRequested(config.stop)) break;
    ScopedSpan span(period_buf, "cluster.tick");
    std::vector<NodeCommand> commands;
    uint32_t tick_seq = 0;
    {
      std::lock_guard<std::mutex> lock(loop_mu);
      commands = ctl.Tick(clock.Now());
      // An idle tick assigns no seq; only a commanding tick gets the
      // period id stamped on its span.
      if (!commands.empty()) tick_seq = ctl.seq();
      // A tick can age a silent node out of the fold with no frame ever
      // arriving, so freshness changes here too, not just in OnFrame.
      refresh_status();
    }
    if (tick_seq > 0) {
      span.SetArg("period", static_cast<int64_t>(tick_seq));
    }
    for (const NodeCommand& cmd : commands) {
      uint64_t conn_id = 0;
      {
        std::lock_guard<std::mutex> lock(loop_mu);
        auto it = node_conn.find(cmd.node_id);
        if (it == node_conn.end()) continue;  // node dropped mid-period
        conn_id = it->second;
      }
      server.Send(conn_id, EncodeActuationFrame(cmd.act));
    }
  }
  result.interrupted = StopRequested(config.stop);

  server.Stop();
  {
    std::lock_guard<std::mutex> lock(loop_mu);
    ctl.Flush();
    result.recorder = ctl.recorder();
    result.ticks = ctl.ticks();
    result.idle_ticks = ctl.idle_ticks();
    result.nodes_seen = ctl.monitor().known_count();
    result.final_active = ctl.monitor().active_count();
    for (const auto& n : ctl.monitor().nodes()) {
      result.total_workers += static_cast<int>(n.workers);
    }
    result.health = ctl.Health();
  }
  const auto wall_end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.port = server.port();
  result.connections = server.connections_accepted();
  result.corrupt_streams = server.corrupt_streams();

  if (telemetry) {
    if (telemetry->server() != nullptr) {
      result.telemetry_port = telemetry->server()->port();
    }
    telemetry->Stop();
  }
  return result;
}

}  // namespace ctrlshed
