#ifndef CTRLSHED_CLUSTER_NODE_RUNNER_H_
#define CTRLSHED_CLUSTER_NODE_RUNNER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "metrics/histogram.h"
#include "rt/rt_engine.h"
#include "runner/experiment.h"
#include "telemetry/health.h"

namespace ctrlshed {

/// Configuration of one `ctrlshed node` process: a sharded rt plant whose
/// tuples arrive over a TCP ingress listener and whose control decisions
/// arrive from a remote cluster controller.
struct ClusterNodeConfig {
  /// Period, setpoint, headrooms, capacity, cost smoothing, seed,
  /// telemetry. The workload fields are unused — arrivals come from the
  /// network, not a local replay. `vary_cost` is honored locally (the
  /// Fig. 14 cost trace is a plant property, sampled on each worker's
  /// clock); in-network shedding needs no local flag — the controller's
  /// actuation commands carry the queue_shed/cost_aware plan flags.
  ExperimentConfig base;

  uint32_t node_id = 0;
  int workers = 1;

  /// Tuple ingress listener; 0 picks an ephemeral port (see on_ready).
  int ingress_port = 0;
  std::string bind_address = "127.0.0.1";

  /// Control channel. A node that cannot reach the controller still runs:
  /// it serves ingress and sheds with whatever configuration its shedders
  /// last had (initially admit-everything), the designed degradation mode.
  std::string controller_host = "127.0.0.1";
  int controller_port = 0;
  double connect_timeout_wall = 5.0;

  double time_compression = 20.0;
  size_t ring_capacity = 4096;
  RtCostMode cost_mode = RtCostMode::kSleep;
  double pacing_wall_seconds = 500e-6;
  size_t batch = 1;

  /// Worker core pinning, same syntax as the rt runtime's pin_cpus (see
  /// rt/cpu_affinity.h): "" / "0" off, "auto" round-robin, or a comma
  /// list. Best-effort; validated by the CLI before the run.
  std::string pin_cpus;

  /// Attach a compact metrics snapshot (counters/gauges/histogram
  /// quantiles) to every stats report so the controller can federate this
  /// node's registry under node="<id>" labels. Observability only: the
  /// controller never feeds piggybacked metrics into the control law.
  bool piggyback_metrics = true;

  /// Optional early-stop flag (e.g. a SIGINT handler's).
  const std::atomic<bool>* stop = nullptr;

  /// Called once the ingress listener is bound and the plant is running,
  /// with the bound ingress port — how tests and the smoke script learn an
  /// ephemeral port.
  std::function<void(int ingress_port)> on_ready;
};

struct ClusterNodeResult {
  // Plant accounting (summed over shards). Shed counters follow the
  // repo-wide scheme (docs/architecture.md "Shed accounting"): entry_shed
  // (gate drops) + ring_dropped (ingress overflow) + queue_shed
  // (in-network queue drops) are disjoint slices of the loss.
  uint64_t offered = 0;
  uint64_t entry_shed = 0;
  uint64_t ring_dropped = 0;
  uint64_t queue_shed = 0;
  uint64_t departed = 0;
  double final_alpha = 0.0;

  // Ingress accounting.
  uint64_t ingress_connections = 0;
  uint64_t ingress_frames = 0;
  /// Well-formed frames whose payload failed the hardened tuple decode
  /// (also exported as the net.ingress.rejected counter).
  uint64_t ingress_rejected = 0;
  /// Streams dropped for framing corruption (bad magic/length).
  uint64_t corrupt_streams = 0;

  // Control-channel accounting.
  bool controller_connected = false;
  uint64_t reports_sent = 0;
  uint64_t actuations_applied = 0;
  /// Malformed control frames (wrong type or failed decode).
  uint64_t control_rejected = 0;

  /// Wall seconds between worker pumps, merged over all shards — the
  /// fleet-telemetry bench gates piggybacking overhead on its mean.
  LatencyHistogram pump_intervals{1e-6, 1e3, 1.08};

  double wall_seconds = 0.0;
  int ingress_port = -1;
  int telemetry_port = -1;
  bool interrupted = false;
  HealthReport health;  ///< Node-local health verdict at shutdown.
};

/// Runs one cluster node for base.duration trace seconds: W sharded
/// RtEngines fed by the TCP tuple ingress, a NodeAgent ticking every
/// period (stats report upstream), and remote actuations applied to the
/// entry shedders. Blocks until the run completes.
ClusterNodeResult RunClusterNode(const ClusterNodeConfig& config);

}  // namespace ctrlshed

#endif  // CTRLSHED_CLUSTER_NODE_RUNNER_H_
