#ifndef CTRLSHED_CLUSTER_FEEDER_H_
#define CTRLSHED_CLUSTER_FEEDER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "runner/experiment.h"

namespace ctrlshed {

/// Configuration of a `ctrlshed feed` producer: replays the configured
/// workload's arrival trace against the wall clock and ships each batch to
/// a node's tuple ingress as kTupleBatch frames.
struct ClusterFeedConfig {
  /// Workload shape, spacing, seed, duration. The trace is the same one
  /// the sim/rt runners would build from this config.
  ExperimentConfig base;

  std::string host = "127.0.0.1";
  int port = 0;
  double connect_timeout_wall = 5.0;

  /// Wire source id of the first stream; stream i carries source_id + i.
  /// The node routes source s to shard s % workers.
  uint32_t source_id = 0;
  /// Replay streams, each an independent arrival process. With more than
  /// one, each stream's trace is scaled by 1/sources so the aggregate
  /// offered load matches the configured trace.
  int sources = 1;
  /// Extra scale on every stream's rate (e.g. 2.0 = 2x overload).
  double rate_scale = 1.0;

  double time_compression = 20.0;

  const std::atomic<bool>* stop = nullptr;
};

struct ClusterFeedResult {
  bool connected = false;
  uint64_t tuples_sent = 0;
  uint64_t frames_sent = 0;
  double wall_seconds = 0.0;
  bool interrupted = false;
};

/// Runs the producer for base.duration trace seconds (or until the
/// connection dies / stop flips). Blocks until done.
ClusterFeedResult RunClusterFeeder(const ClusterFeedConfig& config);

}  // namespace ctrlshed

#endif  // CTRLSHED_CLUSTER_FEEDER_H_
