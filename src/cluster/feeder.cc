#include "cluster/feeder.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "net/frame.h"
#include "net/frame_client.h"
#include "net/socket_util.h"
#include "rt/rt_clock.h"
#include "rt/rt_source.h"

namespace ctrlshed {

namespace {
constexpr auto kMaxSleepChunk = std::chrono::milliseconds(5);

void SleepUntilWall(std::chrono::steady_clock::time_point deadline,
                    const std::atomic<bool>* stop, const FrameClient* client) {
  for (;;) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
    if (!client->connected()) return;  // node died; nothing left to feed
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return;
    const auto remaining = deadline - now;
    std::this_thread::sleep_for(
        remaining < std::chrono::steady_clock::duration(kMaxSleepChunk)
            ? remaining
            : std::chrono::steady_clock::duration(kMaxSleepChunk));
  }
}
}  // namespace

ClusterFeedResult RunClusterFeeder(const ClusterFeedConfig& config) {
  const ExperimentConfig& base = config.base;
  CS_CHECK_MSG(config.port > 0, "feed needs a node ingress port");
  CS_CHECK_MSG(config.sources >= 1 && config.sources <= 64,
               "sources must be in [1, 64]");
  CS_CHECK_MSG(config.rate_scale > 0.0, "rate_scale must be positive");
  IgnoreSigPipe();

  ClusterFeedResult result;
  FrameClient client;  // send-only: no OnFrame handler
  result.connected =
      client.Connect(config.host, config.port, config.connect_timeout_wall);
  if (!result.connected) return result;

  RtClock clock(config.time_compression);

  const RateTrace full_trace = BuildArrivalTrace(base);
  const double per_stream_scale =
      config.rate_scale / static_cast<double>(config.sources);
  std::atomic<uint64_t> tuples_sent{0};
  std::atomic<uint64_t> frames_sent{0};
  std::vector<std::unique_ptr<RtArrivalSource>> streams;
  for (int i = 0; i < config.sources; ++i) {
    const RateTrace trace = per_stream_scale == 1.0
                                ? full_trace
                                : full_trace.Scaled(per_stream_scale);
    streams.push_back(std::make_unique<RtArrivalSource>(
        static_cast<int>(config.source_id) + i, trace, base.spacing,
        base.seed + 3 + static_cast<uint64_t>(i)));
  }

  const auto wall_start = std::chrono::steady_clock::now();
  clock.Start();
  for (int i = 0; i < config.sources; ++i) {
    const uint32_t wire_source = config.source_id + static_cast<uint32_t>(i);
    // The sink runs on this stream's replay thread; FrameClient::Send is
    // mutex-serialized, so the streams can share one connection.
    streams[static_cast<size_t>(i)]->Start(
        &clock, [&client, &tuples_sent, &frames_sent, wire_source](
                    const Tuple* tuples, size_t n) {
          if (client.Send(EncodeTupleBatchFrame(wire_source, tuples, n))) {
            tuples_sent.fetch_add(n, std::memory_order_relaxed);
            frames_sent.fetch_add(1, std::memory_order_relaxed);
          }
        });
  }

  SleepUntilWall(clock.WallDeadline(base.duration), config.stop, &client);
  result.interrupted =
      config.stop != nullptr && config.stop->load(std::memory_order_relaxed);

  for (auto& stream : streams) stream->Stop();
  client.Close();
  const auto wall_end = std::chrono::steady_clock::now();

  result.tuples_sent = tuples_sent.load(std::memory_order_relaxed);
  result.frames_sent = frames_sent.load(std::memory_order_relaxed);
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  return result;
}

}  // namespace ctrlshed
