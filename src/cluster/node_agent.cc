#include "cluster/node_agent.h"

#include <string>
#include <utility>

#include "common/macros.h"

namespace ctrlshed {

NodeAgent::NodeAgent(double nominal_entry_cost, std::vector<Shedder*> shedders,
                     NodeAgentOptions options)
    : options_(options),
      nominal_entry_cost_(nominal_entry_cost),
      shedders_(std::move(shedders)),
      monitor_(nominal_entry_cost, static_cast<int>(shedders_.size()),
               options.monitor),
      target_delay_(options.target_delay) {
  CS_CHECK_MSG(!shedders_.empty(), "need one shedder per shard");
  for (Shedder* s : shedders_) CS_CHECK(s != nullptr);
  CS_CHECK_MSG(target_delay_ > 0.0, "target delay must be positive");
}

NodeHello NodeAgent::Hello() const {
  NodeHello h;
  h.node_id = options_.node_id;
  h.workers = static_cast<uint32_t>(shedders_.size());
  h.headroom = options_.monitor.headroom;
  h.nominal_cost = nominal_entry_cost_;
  h.period = options_.monitor.period;
  return h;
}

NodeStatsReport NodeAgent::Tick(const std::vector<RtSample>& shards) {
  m_ = monitor_.Sample(shards, target_delay_);
  has_measurement_ = true;

  // Node-local observability: the same per-period ring + health the
  // single-process loops keep. v is the last commanded rate (the node
  // does not run the control law itself).
  PeriodRecord rec{m_, last_v_, alpha_, /*lateness=*/0.0, /*shard_q=*/{}};
  rec.site = last_site_;
  rec.h_hat = monitor_.h_hat();
  flight_.RecordPeriod(rec);
  health_.ObservePeriod(rec);
  health_.SetHeadroom(options_.monitor.headroom, monitor_.h_hat());

  NodeStatsReport r;
  r.node_id = options_.node_id;
  r.seq = ++seq_;
  r.ctrl_seq = ctrl_seq_;
  r.deltas = monitor_.last_deltas();
  r.alpha = alpha_;
  for (const RtSample& s : shards) {
    r.offered_total += s.offered;
    r.entry_shed_total += s.entry_shed;
    r.ring_dropped_total += s.ring_dropped;
    r.queue_shed_total += s.queue_shed;
    r.departed_total += s.departed;
  }
  return r;
}

ActuationAck NodeAgent::Apply(const ClusterActuation& a) {
  target_delay_ = a.target_delay;
  ctrl_seq_ = a.seq;
  last_v_ = a.v;

  ActuationAck ack;
  ack.node_id = options_.node_id;
  ack.seq = a.seq;
  if (!has_measurement_) {
    // Nothing arrived/was sampled yet, so there is no load to slice; the
    // shedders stay wide open and the ack reports the command as applied
    // (the anti-windup hook must not see a phantom saturation).
    ack.applied = a.v;
    ack.alpha = alpha_;
    return ack;
  }

  // Identical arithmetic to RtLoop::ControlTick's shard fan-out: per-shard
  // ActuationPlans built from the same measurement slices. With queue_shed
  // off the plans are entry-only and ApplyPlan degrades to Configure, bit
  // for bit the pre-plan agent.
  const ActuationPlanner planner(ActuationPlannerOptions{
      nominal_entry_cost_, /*allow_in_network=*/a.queue_shed, a.cost_aware});
  const std::vector<double>& shard_fin = monitor_.shard_fin();
  const std::vector<double>& shard_queues = monitor_.shard_queues();
  const std::vector<double> shares = ProportionalShares(shard_fin);
  double applied = 0.0;
  double alpha = 0.0;
  double queue_target = 0.0;
  for (size_t i = 0; i < shedders_.size(); ++i) {
    const double share = shares[i];
    PeriodMeasurement mi = m_;
    mi.fin = shard_fin[i];
    mi.fin_forecast = m_.fin_forecast * share;
    mi.admitted = m_.admitted * share;
    mi.queue = shard_queues[i];
    const ActuationPlan plan = planner.BuildPlan(a.v * share, mi);
    if (a.queue_shed && budget_poster_) budget_poster_(i, plan, a.seq);
    applied += shedders_[i]->ApplyPlan(plan, mi);
    alpha += share * shedders_[i]->drop_probability();
    queue_target += plan.queue_target;
  }
  alpha_ = alpha;
  ack.applied = applied;
  ack.alpha = alpha;
  ack.queue_shed = queue_target;
  const ActuationSite site =
      queue_target > 0.0
          ? (alpha > 0.0 ? ActuationSite::kSplit : ActuationSite::kInNetwork)
          : ActuationSite::kEntry;
  ack.site = static_cast<uint32_t>(site);
  if (site != last_site_) {
    const std::string detail = std::string(ActuationSiteName(last_site_)) +
                               " -> " + std::string(ActuationSiteName(site));
    flight_.RecordEvent("site_switch", detail.c_str(), m_.t);
    last_site_ = site;
  }
  return ack;
}

}  // namespace ctrlshed
