#ifndef CTRLSHED_CLUSTER_CONTROLLER_RUNNER_H_
#define CTRLSHED_CLUSTER_CONTROLLER_RUNNER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "metrics/recorder.h"
#include "runner/experiment.h"
#include "telemetry/health.h"

namespace ctrlshed {

/// Configuration of the `ctrlshed cluster` controller process: one TCP
/// control channel that nodes connect to, the aggregate feedback loop
/// ticking once per period, and commands fanned back out.
struct ClusterControllerConfig {
  /// Period, setpoint, gains, feedback signal, anti-windup, cost
  /// smoothing, headrooms/capacity (for the model constant c), duration,
  /// telemetry. `use_queue_shedder`/`cost_aware_shedding` stamp the plan
  /// flags on every actuation command (the nodes do the in-network work).
  /// Workload fields are unused — the plant is remote.
  ExperimentConfig base;

  /// Control-channel listen port; 0 picks an ephemeral one (see on_ready).
  int port = 0;
  std::string bind_address = "127.0.0.1";

  /// Stale-node exclusion threshold M (reporting periods).
  int stale_periods = 3;

  /// Hold the first control tick until this many nodes said hello (or the
  /// wait times out) so a scripted bring-up isn't racing the controller.
  int min_nodes = 0;
  double min_nodes_timeout_wall = 10.0;

  double time_compression = 20.0;

  const std::atomic<bool>* stop = nullptr;

  /// Called once the control channel is bound, with the bound port.
  std::function<void(int port)> on_ready;
};

struct ClusterControllerResult {
  Recorder recorder;  ///< Per-period aggregate closed-loop trace.
  int ticks = 0;
  int idle_ticks = 0;       ///< Boundaries with no active node.
  int nodes_seen = 0;       ///< Distinct nodes that ever said hello.
  int final_active = 0;     ///< Active nodes at the last boundary.
  int total_workers = 0;    ///< Sum of worker counts over nodes seen.
  uint64_t hellos = 0;
  uint64_t reports = 0;
  uint64_t acks = 0;
  /// Malformed control frames (unexpected type or failed decode).
  uint64_t rejected = 0;
  uint64_t connections = 0;
  uint64_t corrupt_streams = 0;
  double wall_seconds = 0.0;
  int port = -1;
  int telemetry_port = -1;
  bool interrupted = false;
  HealthReport health;  ///< Controller health verdict at shutdown.
};

/// Runs the cluster controller for base.duration trace seconds. Blocks
/// until the run completes.
ClusterControllerResult RunClusterController(
    const ClusterControllerConfig& config);

}  // namespace ctrlshed

#endif  // CTRLSHED_CLUSTER_CONTROLLER_RUNNER_H_
