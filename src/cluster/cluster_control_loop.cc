#include "cluster/cluster_control_loop.h"

#include <cstdio>
#include <utility>

#include "common/macros.h"

namespace ctrlshed {

ClusterControlLoop::ClusterControlLoop(ClusterControlLoopOptions options)
    : options_(options),
      monitor_(options.nominal_entry_cost, options.monitor),
      controller_(options.ctrl),
      yd_(options.target_delay) {
  CS_CHECK_MSG(yd_ > 0.0, "target delay must be positive");
  monitor_.SetTransitionCallback([this](const char* what, uint32_t node_id) {
    char detail[32];
    std::snprintf(detail, sizeof(detail), "node %u", node_id);
    flight_.RecordEvent(what, detail);
  });
}

void ClusterControlLoop::OnHello(const NodeHello& h, SimTime recv_now) {
  monitor_.OnHello(h, recv_now);
}

void ClusterControlLoop::OnReport(const NodeStatsReport& r, SimTime recv_now) {
  monitor_.OnReport(r, recv_now);
  if (metrics_sink_ != nullptr && r.has_metrics) {
    FoldMetricsSnapshot(r.node_id, r.metrics, metrics_sink_);
  }
}

void ClusterControlLoop::OnAck(const ActuationAck& a) {
  if (!pending_.open || a.seq != pending_.seq) return;
  for (size_t i = 0; i < pending_.node_ids.size(); ++i) {
    if (pending_.node_ids[i] != a.node_id || pending_.acked[i]) continue;
    pending_.acked[i] = true;
    pending_.applied[i] = a.applied;
    pending_.alpha[i] = a.alpha;
    pending_.site[i] = a.site;
    pending_.queue_shed[i] = a.queue_shed;
    ++pending_.acks;
    break;
  }
  // The zero-delay path finalizes here, before the next tick — preserving
  // the single-process DesiredRate -> NotifyActuation interleaving.
  if (pending_.acks == pending_.node_ids.size()) Finalize();
}

std::vector<NodeCommand> ClusterControlLoop::Tick(SimTime now) {
  ++ticks_;
  Finalize();  // a period still waiting on late/lost acks

  PeriodMeasurement m;
  const bool have_plant = monitor_.Sample(now, yd_, &m);
  // Staleness is (re)judged at every boundary, including idle ones — an
  // all-stale cluster must be able to go critical while no periods close.
  health_.SetStaleNodes(static_cast<uint64_t>(monitor_.stale_count()),
                        static_cast<uint64_t>(monitor_.stale_count() +
                                              monitor_.active_count()));
  if (!have_plant) {
    ++idle_ticks_;
    return {};
  }
  if (monitor_.headroom_changed()) {
    controller_.SetHeadroom(monitor_.effective_headroom());
  }
  const double v = controller_.DesiredRate(m);

  const std::vector<uint32_t>& ids = monitor_.active_ids();
  const std::vector<double> shares = ProportionalShares(monitor_.node_fin());

  pending_ = PendingPeriod{};
  pending_.open = true;
  pending_.seq = ++seq_;
  pending_.record.m = m;
  pending_.record.v = v;
  // Per-node queue decomposition in the shard_q slot — the timeline/CSV
  // exports then work unchanged on a controller (empty at one node, like
  // the N = 1 rt loop, keeping those exports byte-identical).
  pending_.record.shard_q =
      ids.size() > 1 ? monitor_.node_queues() : std::vector<double>{};

  std::vector<NodeCommand> commands;
  commands.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    const double v_i = v * shares[i];
    NodeCommand cmd;
    cmd.node_id = ids[i];
    cmd.act.seq = pending_.seq;
    cmd.act.v = v_i;
    cmd.act.target_delay = yd_;
    cmd.act.queue_shed = options_.queue_shed;
    cmd.act.cost_aware = options_.cost_aware;
    commands.push_back(cmd);

    pending_.node_ids.push_back(ids[i]);
    pending_.shares.push_back(shares[i]);
    pending_.v_i.push_back(v_i);
    pending_.acked.push_back(false);
    pending_.applied.push_back(0.0);
    // Until the ack lands, fall back to the node's last reported alpha.
    const ClusterMonitor::NodeState* n = monitor_.Find(ids[i]);
    pending_.alpha.push_back(n != nullptr ? n->alpha : 0.0);
    // Unacked nodes default to entry-site, zero in-network victims —
    // missing data must not fabricate in-network actuation.
    pending_.site.push_back(static_cast<uint32_t>(ActuationSite::kEntry));
    pending_.queue_shed.push_back(0.0);
  }
  return commands;
}

void ClusterControlLoop::Finalize() {
  if (!pending_.open) return;
  pending_.open = false;
  double applied = 0.0;
  double alpha = 0.0;
  double queue_shed = 0.0;
  bool in_network = false;
  for (size_t i = 0; i < pending_.node_ids.size(); ++i) {
    // A node whose ack was lost or delayed is assumed to have applied its
    // full slice: missing data must not masquerade as actuator
    // saturation, or the anti-windup would rewrite controller state on
    // every dropped message.
    applied += pending_.acked[i] ? pending_.applied[i] : pending_.v_i[i];
    alpha += pending_.shares[i] * pending_.alpha[i];
    queue_shed += pending_.queue_shed[i];
    in_network |=
        pending_.site[i] != static_cast<uint32_t>(ActuationSite::kEntry);
  }
  controller_.NotifyActuation(applied);
  pending_.record.alpha = alpha;
  // Cluster-level site: entry unless some node actuated in-network this
  // period; split when entry drops ran alongside.
  pending_.record.site =
      !in_network ? ActuationSite::kEntry
                  : (alpha > 0.0 ? ActuationSite::kSplit
                                 : ActuationSite::kInNetwork);
  pending_.record.queue_shed = queue_shed;
  pending_.record.h_hat = monitor_.h_hat();
  if (pending_.record.site != last_site_) {
    const std::string detail =
        std::string(ActuationSiteName(last_site_)) + " -> " +
        std::string(ActuationSiteName(pending_.record.site));
    flight_.RecordEvent("site_switch", detail.c_str(), pending_.record.m.t);
    last_site_ = pending_.record.site;
  }
  flight_.RecordPeriod(pending_.record);
  health_.ObservePeriod(pending_.record);
  // Configured headroom for the drift warning: the active fleet's mean
  // per-worker H (the aggregate H_hat is per-worker by construction).
  double active_workers = 0.0;
  double weighted_h = 0.0;
  for (const ClusterMonitor::NodeState& n : monitor_.nodes()) {
    if (!n.active) continue;
    active_workers += static_cast<double>(n.workers);
    weighted_h += static_cast<double>(n.workers) * n.headroom;
  }
  health_.SetHeadroom(active_workers > 0.0 ? weighted_h / active_workers
                                           : std::numeric_limits<double>::quiet_NaN(),
                      monitor_.h_hat());
  if (metrics_sink_ != nullptr) {
    metrics_sink_
        ->GetCounter(std::string("actuation.site.") +
                     std::string(ActuationSiteName(pending_.record.site)))
        ->Add();
  }
  recorder_.Record(pending_.record);
  if (on_record_) on_record_(recorder_.rows().back());
}

void ClusterControlLoop::Flush() { Finalize(); }

void ClusterControlLoop::SetTargetDelay(double yd) {
  CS_CHECK_MSG(yd > 0.0, "target delay must be positive");
  yd_ = yd;
}

}  // namespace ctrlshed
