#include "cluster/cluster_monitor.h"

#include "common/macros.h"

namespace ctrlshed {

namespace {
PeriodMathOptions ToMathOptions(const ClusterMonitorOptions& o) {
  PeriodMathOptions mo;
  mo.period = o.period;
  // Placeholder plant until the first node is active; Sample re-targets
  // via SetHeadroom before the first measurement is formed.
  mo.headroom = 0.97;
  mo.max_headroom = 1.0;
  mo.cost_ewma = o.cost_ewma;
  mo.adapt_headroom = o.adapt_headroom;
  mo.headroom_ewma = o.headroom_ewma;
  return mo;
}
}  // namespace

ClusterMonitor::ClusterMonitor(double nominal_entry_cost,
                               ClusterMonitorOptions options)
    : nominal_entry_cost_(nominal_entry_cost),
      options_(options),
      math_(nominal_entry_cost, ToMathOptions(options)) {
  CS_CHECK_MSG(options_.period > 0.0, "period must be positive");
  CS_CHECK_MSG(options_.stale_periods >= 1, "stale_periods must be >= 1");
}

ClusterMonitor::NodeState* ClusterMonitor::FindMutable(uint32_t id) {
  for (NodeState& n : nodes_) {
    if (n.id == id) return &n;
  }
  return nullptr;
}

const ClusterMonitor::NodeState* ClusterMonitor::Find(uint32_t id) const {
  for (const NodeState& n : nodes_) {
    if (n.id == id) return &n;
  }
  return nullptr;
}

void ClusterMonitor::OnHello(const NodeHello& h, SimTime recv_now) {
  NodeState* n = FindMutable(h.node_id);
  if (n == nullptr) {
    nodes_.emplace_back();
    n = &nodes_.back();
    n->id = h.node_id;
    if (on_transition_) on_transition_("node_join", h.node_id);
  }
  n->workers = h.workers;
  n->headroom = h.headroom;
  n->last_seen = recv_now;
}

void ClusterMonitor::OnReport(const NodeStatsReport& r, SimTime recv_now) {
  NodeState* n = FindMutable(r.node_id);
  // Reports from unknown nodes (hello lost or not yet processed) register
  // the node with zero workers; it stays out of the aggregate until a
  // hello fills in its plant size.
  if (n == nullptr) {
    nodes_.emplace_back();
    n = &nodes_.back();
    n->id = r.node_id;
  }
  if (n->active) {
    // Accumulate: with network delay several reports may land between two
    // controller boundaries and each is one period of real counters.
    n->pending.now = r.deltas.now;
    n->pending.offered += r.deltas.offered;
    n->pending.admitted += r.deltas.admitted;
    n->pending.drained_base_load += r.deltas.drained_base_load;
    n->pending.busy_seconds += r.deltas.busy_seconds;
    n->pending.delay_sum += r.deltas.delay_sum;
    n->pending.delay_count += r.deltas.delay_count;
    n->pending.queue = r.deltas.queue;
  } else {
    // (Re)joining: replace, so at most one period of backlog enters the
    // aggregate at readmission.
    n->pending = r.deltas;
  }
  n->ever_reported = true;
  n->last_seen = recv_now;
  n->last_seq = r.seq;
  n->alpha = r.alpha;
  // Each report carries one period's realized deltas — exactly the
  // drained/busy ratio the per-node H_hat estimate needs (report-only).
  n->h_hat_tracker.Update(r.deltas.drained_base_load, r.deltas.busy_seconds);
  n->offered_total = r.offered_total;
  n->entry_shed_total = r.entry_shed_total;
  n->ring_dropped_total = r.ring_dropped_total;
  n->departed_total = r.departed_total;
}

bool ClusterMonitor::Sample(SimTime now, double target_delay,
                            PeriodMeasurement* m) {
  // Refresh the active set: reporting, plant-sized, and fresh enough.
  const double stale_age =
      static_cast<double>(options_.stale_periods) * options_.period;
  active_ids_.clear();
  for (NodeState& n : nodes_) {
    const bool fresh =
        n.ever_reported && n.workers >= 1 && (now - n.last_seen) <= stale_age;
    if (n.active && !fresh) {
      // Going stale: its buffered deltas describe a plant we no longer
      // trust; drop them so a later readmission starts clean.
      n.pending = PeriodDeltas{};
      if (on_transition_) on_transition_("node_stale", n.id);
    }
    if (!n.active && fresh && n.ever_active && on_transition_) {
      on_transition_("node_readmit", n.id);
    }
    n.active = fresh;
    if (fresh) n.ever_active = true;
    if (fresh) active_ids_.push_back(n.id);
  }
  if (active_ids_.empty()) {
    headroom_changed_ = false;
    return false;
  }

  double headroom = 0.0;
  double max_headroom = 0.0;
  for (const NodeState& n : nodes_) {
    if (!n.active) continue;
    headroom += static_cast<double>(n.workers) * n.headroom;
    max_headroom += static_cast<double>(n.workers);
  }
  headroom_changed_ = headroom != effective_headroom_;
  if (headroom_changed_) {
    math_.SetHeadroom(headroom, max_headroom);
    effective_headroom_ = headroom;
  }

  CS_CHECK_MSG(now > prev_now_, "samples must move forward in time");
  const double elapsed = now - prev_now_;
  prev_now_ = now;

  // Fold the active nodes in registration order — a fixed order keeps the
  // floating-point sums deterministic run to run.
  PeriodDeltas d;
  d.now = now;
  node_fin_.clear();
  node_queues_.clear();
  for (NodeState& n : nodes_) {
    if (!n.active) continue;
    d.offered += n.pending.offered;
    d.admitted += n.pending.admitted;
    d.drained_base_load += n.pending.drained_base_load;
    d.busy_seconds += n.pending.busy_seconds;
    d.queue += n.pending.queue;
    d.delay_sum += n.pending.delay_sum;
    d.delay_count += n.pending.delay_count;
    node_fin_.push_back(static_cast<double>(n.pending.offered) / elapsed);
    node_queues_.push_back(n.pending.queue);
    n.pending = PeriodDeltas{};
  }

  h_hat_tracker_.Update(d.drained_base_load, d.busy_seconds);

  *m = math_.SampleDeltas(d, target_delay, elapsed);
  return true;
}

int ClusterMonitor::stale_count() const {
  int stale = 0;
  for (const NodeState& n : nodes_) {
    if (n.ever_active && !n.active) ++stale;
  }
  return stale;
}

}  // namespace ctrlshed
