#ifndef CTRLSHED_CLUSTER_NODE_AGENT_H_
#define CTRLSHED_CLUSTER_NODE_AGENT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/wire.h"
#include "control/actuation_plan.h"
#include "rt/rt_monitor.h"
#include "shedding/shedder.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/health.h"

namespace ctrlshed {

struct NodeAgentOptions {
  uint32_t node_id = 0;
  double target_delay = 2.0;   ///< Initial yd until an actuation arrives.
  RtMonitorOptions monitor;    ///< Same options the node's rt loop uses.
};

/// The node-side half of the cluster control loop, transport-agnostic so
/// the sim harness and the socket runner share it verbatim.
///
/// Tick() is RtLoop::ControlTick's measurement half: fold the shard
/// snapshots through the node's own RtMonitor and emit the upstream stats
/// report (the monitor's exact PeriodDeltas plus cumulative context).
/// Apply() is the actuation half: fan the received v(k) out to the shard
/// shedders proportionally to per-shard offered load — byte-for-byte the
/// arithmetic of RtLoop::ControlTick's fan-out, which is what makes the
/// nodes=1/delay=0 cluster identical to the single-process sharded loop.
///
/// Not thread-safe: the caller serializes Tick/Apply against each other
/// and against the admission path's shedder use (the socket runner holds
/// one plant mutex; the sim is single-threaded).
class NodeAgent {
 public:
  /// `shedders` has one entry per shard, in shard order; pointers must
  /// outlive the agent.
  NodeAgent(double nominal_entry_cost, std::vector<Shedder*> shedders,
            NodeAgentOptions options);

  /// Period boundary: one snapshot per shard, all at the same trace time.
  NodeStatsReport Tick(const std::vector<RtSample>& shards);

  /// Applies a received command to the entry shedders. Safe to call
  /// before the first Tick (nothing to fan out yet: acks applied = 0).
  /// When the command carries queue_shed, each shard's in-network budget
  /// is handed to the budget poster (below) before the entry shedder sees
  /// the plan, and the ack reports the chosen site + planned victims.
  ActuationAck Apply(const ClusterActuation& a);

  /// Shard-budget delivery seam for in-network shedding. The runner owns
  /// how a budget reaches shard `i`'s engine: the socket runner posts it
  /// through the RtSharedStats plan handshake (the worker pump drains it),
  /// the single-threaded cluster sim executes ShedFromQueues directly.
  /// Called from Apply, once per shard, only for queue_shed commands.
  using BudgetPoster =
      std::function<void(size_t shard, const ActuationPlan& plan,
                         uint32_t ctrl_seq)>;
  void SetBudgetPoster(BudgetPoster poster) {
    budget_poster_ = std::move(poster);
  }

  const RtMonitor& monitor() const { return monitor_; }
  const PeriodMeasurement& last_measurement() const { return m_; }

  /// Current node-local health verdict (see telemetry/health.h).
  /// Thread-safe against the Tick/Apply thread.
  HealthReport Health() const { return health_.Report(); }

  /// The agent's flight recorder — the runner annotates transport-level
  /// events (decode rejects, controller drops) into the same ring.
  FlightRecorder* flight() { return &flight_; }

  double last_alpha() const { return alpha_; }
  double target_delay() const { return target_delay_; }
  /// Controller seq of the last actuation applied (0 before the first);
  /// also stamped into every report's ctrl_seq for trace correlation.
  uint32_t last_ctrl_seq() const { return ctrl_seq_; }
  uint32_t node_id() const { return options_.node_id; }
  int workers() const { return monitor_.num_shards(); }

  /// The hello this node announces itself with.
  NodeHello Hello() const;

 private:
  NodeAgentOptions options_;
  double nominal_entry_cost_;
  std::vector<Shedder*> shedders_;
  RtMonitor monitor_;
  BudgetPoster budget_poster_;

  double target_delay_;
  uint32_t seq_ = 0;
  uint32_t ctrl_seq_ = 0;
  bool has_measurement_ = false;
  PeriodMeasurement m_;
  double alpha_ = 0.0;
  double last_v_ = 0.0;  ///< Last commanded admitted rate (for the ring).
  ActuationSite last_site_ = ActuationSite::kEntry;
  FlightRecorder flight_{"node"};
  HealthMonitor health_;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_CLUSTER_NODE_AGENT_H_
