#ifndef CTRLSHED_CLUSTER_CLUSTER_MONITOR_H_
#define CTRLSHED_CLUSTER_CLUSTER_MONITOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/wire.h"
#include "control/period_math.h"
#include "telemetry/health.h"

namespace ctrlshed {

struct ClusterMonitorOptions {
  SimTime period = 1.0;     ///< Control period T, trace seconds.
  double cost_ewma = 1.0;
  bool adapt_headroom = false;
  double headroom_ewma = 0.2;
  /// A node whose last report is older than this many periods at a Sample
  /// boundary is excluded from the aggregate (its entry shedders keep the
  /// last configuration they received, i.e. local shedding continues).
  int stale_periods = 3;
};

/// The controller-side aggregation: folds per-node stats reports into one
/// virtual plant, exactly the way RtMonitor folds shards — the effective
/// headroom is Σ over active nodes of N_i·H_i, counters are summed, and
/// the shared PeriodMath produces the Eq. (11) measurement. Because nodes
/// ship the very PeriodDeltas their own monitors consumed, a one-node
/// zero-delay cluster reproduces the single-process arithmetic bit for
/// bit.
///
/// Membership: nodes announce themselves with a hello and stay known
/// forever; the ACTIVE set (what the plant sums over) is recomputed at
/// every Sample from report recency. A stale node's buffered deltas are
/// discarded (its plant state is unknown); when its reports resume it
/// carries at most one period of backlog back in, so readmission cannot
/// spike the aggregate rates.
///
/// Not thread-safe: owned by whichever thread runs the controller.
class ClusterMonitor {
 public:
  struct NodeState {
    uint32_t id = 0;
    uint32_t workers = 0;
    double headroom = 0.0;       ///< Per-worker H.
    bool active = false;
    bool ever_reported = false;
    bool ever_active = false;    ///< Distinguishes join from readmit.
    SimTime last_seen = 0.0;     ///< Receive-side clock of the last report.
    uint32_t last_seq = 0;
    PeriodDeltas pending;        ///< Deltas accumulated since last Sample.
    double alpha = 0.0;          ///< Last reported drop probability.
    /// Measured per-worker headroom of this node (base load drained per
    /// busy second across its report deltas). Report-only; NaN until the
    /// node's first busy report.
    HeadroomTracker h_hat_tracker;
    uint64_t offered_total = 0;
    uint64_t entry_shed_total = 0;
    uint64_t ring_dropped_total = 0;
    uint64_t departed_total = 0;
  };

  ClusterMonitor(double nominal_entry_cost, ClusterMonitorOptions options);

  /// Membership-transition hook: called with "node_join" (first hello),
  /// "node_stale" (aged out of the active set at a Sample boundary), or
  /// "node_readmit" (re-entered it), plus the node id. Feeds the owning
  /// loop's flight recorder; called on the thread driving OnHello/Sample.
  void SetTransitionCallback(
      std::function<void(const char* what, uint32_t node_id)> cb) {
    on_transition_ = std::move(cb);
  }

  /// Registers or refreshes a node (re-hello after reconnect is fine).
  void OnHello(const NodeHello& h, SimTime recv_now);

  /// Buffers one period's deltas from a node. `recv_now` is the
  /// controller-side clock (staleness is judged on receive times — node
  /// clocks are not comparable across processes).
  void OnReport(const NodeStatsReport& r, SimTime recv_now);

  /// Period boundary: refreshes the active set, re-targets the plant
  /// headroom on membership change, folds the active nodes' pending
  /// deltas and runs the shared math. Returns false (and leaves *m
  /// untouched) when no node is active — there is no plant to measure.
  bool Sample(SimTime now, double target_delay, PeriodMeasurement* m);

  // --- Last Sample's per-node decomposition (registration order) --------
  const std::vector<uint32_t>& active_ids() const { return active_ids_; }
  const std::vector<double>& node_fin() const { return node_fin_; }
  const std::vector<double>& node_queues() const { return node_queues_; }

  /// Σ over active nodes of N_i·H_i after the last Sample (0 before).
  double effective_headroom() const { return effective_headroom_; }
  /// True when the last Sample changed the plant size (the control loop
  /// re-gains its controller on this).
  bool headroom_changed() const { return headroom_changed_; }

  int known_count() const { return static_cast<int>(nodes_.size()); }
  int active_count() const { return static_cast<int>(active_ids_.size()); }
  /// Nodes that once fed the aggregate but have aged out of the active
  /// set (as of the last Sample) — the health monitor's stale_node input.
  int stale_count() const;
  /// Aggregate measured per-worker headroom: Σ drained / Σ busy over the
  /// active nodes' folded deltas, EWMA-smoothed. NaN before the first
  /// busy Sample.
  double h_hat() const { return h_hat_tracker_.value(); }
  const std::vector<NodeState>& nodes() const { return nodes_; }
  const NodeState* Find(uint32_t id) const;

  double CostEstimate() const { return math_.CostEstimate(); }
  double HeadroomEstimate() const { return math_.HeadroomEstimate(); }
  const ClusterMonitorOptions& options() const { return options_; }

 private:
  NodeState* FindMutable(uint32_t id);

  double nominal_entry_cost_;
  ClusterMonitorOptions options_;
  PeriodMath math_;

  std::vector<NodeState> nodes_;  // registration order, never shrinks
  SimTime prev_now_ = 0.0;
  double effective_headroom_ = 0.0;
  bool headroom_changed_ = false;
  HeadroomTracker h_hat_tracker_;
  std::function<void(const char* what, uint32_t node_id)> on_transition_;

  std::vector<uint32_t> active_ids_;
  std::vector<double> node_fin_;
  std::vector<double> node_queues_;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_CLUSTER_CLUSTER_MONITOR_H_
