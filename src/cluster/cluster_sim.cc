#include "cluster/cluster_sim.h"

#include <memory>
#include <utility>
#include <vector>

#include "cluster/cluster_control_loop.h"
#include "cluster/node_agent.h"
#include "common/macros.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "engine/query_network.h"
#include "metrics/qos_metrics.h"
#include "rt/rt_stats.h"
#include "runner/networks.h"
#include "shedding/entry_shedder.h"
#include "sim/simulation.h"
#include "workload/arrival_source.h"
#include "workload/traces.h"

namespace ctrlshed {

namespace {

/// One simulated worker: its own query network, engine and entry shedder,
/// fed by its own slice of the arrival trace — the sim twin of one rt
/// shard (engine thread + SPSC ring) of one node process.
struct SimShard {
  std::unique_ptr<QueryNetwork> net;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<EntryShedder> shedder;
  std::unique_ptr<ArrivalSource> source;
  /// Victim RNG for in-network budgets, same seed stream as the rt
  /// workers' (seed + 6 + 7919g); null when the queue shedder is off.
  std::unique_ptr<Rng> shed_rng;

  // Ingress-side counters (what RtSharedStats holds in the socket runner).
  uint64_t offered = 0;
  uint64_t entry_shed = 0;
  double delay_sum = 0.0;
  uint64_t delay_count = 0;
};

struct SimNode {
  uint32_t id = 0;
  bool dead = false;
  std::vector<SimShard> shards;
  std::vector<Shedder*> shedder_ptrs;
  std::unique_ptr<NodeAgent> agent;
};

}  // namespace

ClusterSimResult RunClusterSim(const ClusterSimConfig& config) {
  const ExperimentConfig& base = config.base;
  CS_CHECK_MSG(config.nodes >= 1, "need at least one node");
  CS_CHECK_MSG(config.workers_per_node >= 1, "need at least one worker");
  CS_CHECK_MSG(config.loss >= 0.0 && config.loss < 1.0,
               "loss must be in [0, 1)");
  CS_CHECK_MSG(config.report_delay >= 0.0 && config.command_delay >= 0.0,
               "delays must be non-negative");
  CS_CHECK_MSG(base.method == Method::kCtrl,
               "the cluster loop drives the CTRL controller");
  CS_CHECK_MSG(base.predictor == PredictorKind::kLastValue,
               "rate predictors are not supported in the cluster loop");
  CS_CHECK_MSG(base.setpoint_schedule.empty(),
               "setpoint schedules are not supported in the cluster loop");
  CS_CHECK_MSG(base.estimation_noise == 0.0,
               "injected estimation noise is a single-process sim knob");

  const int total_shards = config.nodes * config.workers_per_node;
  const double nominal_cost = base.headroom_true / base.capacity_rate;

  Simulation sim;
  QosAccumulator qos(base.target_delay);
  uint64_t total_queue_shed = 0;  // folded at the end from engines

  // --- Plants: N nodes x W shards, each shard a full engine --------------
  // Seeds and trace slices follow the rt runtime's convention with the
  // shard index taken cluster-wide, so nodes=1 reproduces the
  // single-process sharded runtime's streams exactly.
  const RateTrace full_trace = BuildArrivalTrace(base);

  // Fig. 14 time-varying cost: ONE shared trace (seed + 1, the sim and rt
  // runtimes' stream) sampled by every engine — the cluster twin of a
  // workload-wide cost drift.
  RateTrace cost_trace;
  CostMultiplierFn cost_multiplier;
  if (base.vary_cost) {
    cost_trace = MakeCostTrace(base.duration, base.cost_params, base.seed + 1);
    const double cost_base = base.cost_params.base_ms;
    cost_multiplier = [&cost_trace, cost_base](SimTime t) {
      return cost_trace.At(t) / cost_base;
    };
  }

  std::vector<std::unique_ptr<SimNode>> nodes;
  nodes.reserve(static_cast<size_t>(config.nodes));
  for (int n = 0; n < config.nodes; ++n) {
    auto node = std::make_unique<SimNode>();
    node->id = static_cast<uint32_t>(n);
    node->shards.resize(static_cast<size_t>(config.workers_per_node));
    for (int w = 0; w < config.workers_per_node; ++w) {
      const int g = n * config.workers_per_node + w;  // cluster-wide index
      SimShard& shard = node->shards[static_cast<size_t>(w)];
      shard.net = std::make_unique<QueryNetwork>();
      BuildIdentificationNetwork(shard.net.get(), nominal_cost);
      shard.engine =
          std::make_unique<Engine>(shard.net.get(), base.headroom_true);
      if (cost_multiplier) shard.engine->SetCostMultiplier(cost_multiplier);
      sim.AttachProcess(shard.engine.get());
      shard.shedder = std::make_unique<EntryShedder>(
          base.seed + 2 + 7919 * static_cast<uint64_t>(g));
      if (base.use_queue_shedder) {
        shard.shed_rng = std::make_unique<Rng>(
            base.seed + 6 + 7919 * static_cast<uint64_t>(g));
      }
      node->shedder_ptrs.push_back(shard.shedder.get());
      shard.source = std::make_unique<ArrivalSource>(
          g,
          total_shards == 1
              ? full_trace
              : full_trace.Scaled(1.0 / static_cast<double>(total_shards)),
          base.spacing, base.seed + 3 + static_cast<uint64_t>(g));
      shard.engine->SetDepartureCallback(
          [&shard, &qos](const Departure& d) {
            shard.delay_sum += d.depart_time - d.arrival_time;
            ++shard.delay_count;
            qos.OnDeparture(d);
          });
    }

    NodeAgentOptions agent_opts;
    agent_opts.node_id = node->id;
    agent_opts.target_delay = base.target_delay;
    agent_opts.monitor.period = base.period;
    agent_opts.monitor.headroom = base.headroom_est;
    agent_opts.monitor.cost_ewma = base.cost_ewma;
    agent_opts.monitor.adapt_headroom = base.adapt_headroom;
    node->agent = std::make_unique<NodeAgent>(nominal_cost, node->shedder_ptrs,
                                              agent_opts);
    if (base.use_queue_shedder) {
      // The sim's budget "handshake" is a direct call: the plant is
      // single-threaded, so the shard drains its in-network budget at the
      // moment the plan lands (the rt runner posts through RtSharedStats
      // instead and the worker pump drains it asynchronously).
      SimNode* node_raw = node.get();
      const Engine::QueueVictimPolicy policy =
          base.cost_aware_shedding ? Engine::QueueVictimPolicy::kMostCostly
                                   : Engine::QueueVictimPolicy::kRandom;
      node->agent->SetBudgetPoster(
          [node_raw, policy](size_t i, const ActuationPlan& plan, uint32_t) {
            if (plan.queue_budget_load <= 0.0) return;
            SimShard& shard = node_raw->shards[i];
            shard.engine->ShedFromQueues(plan.queue_budget_load,
                                         *shard.shed_rng, policy);
          });
    }
    nodes.push_back(std::move(node));
  }

  // --- Controller --------------------------------------------------------
  ClusterControlLoopOptions loop_opts;
  loop_opts.nominal_entry_cost = nominal_cost;
  loop_opts.target_delay = base.target_delay;
  loop_opts.monitor.period = base.period;
  loop_opts.monitor.cost_ewma = base.cost_ewma;
  loop_opts.monitor.adapt_headroom = base.adapt_headroom;
  loop_opts.monitor.stale_periods = config.stale_periods;
  loop_opts.ctrl.gains = base.gains;
  loop_opts.ctrl.headroom = base.headroom_est;  // re-targeted on membership
  loop_opts.ctrl.feedback = base.ctrl_feedback;
  loop_opts.ctrl.anti_windup = base.anti_windup;
  loop_opts.queue_shed = base.use_queue_shedder;
  loop_opts.cost_aware = base.cost_aware_shedding;
  ClusterControlLoop ctl(loop_opts);
  if (config.fleet_metrics != nullptr) {
    ctl.SetMetricsSink(config.fleet_metrics);
  }

  // --- Modeled network ---------------------------------------------------
  // Zero delay = a direct call, so a message sent at a period boundary is
  // processed before the events scheduled for that boundary run (the
  // single-process ordering). Positive delay = a scheduled event; loss is
  // one seeded Bernoulli draw per message in deterministic event order.
  uint64_t messages_sent = 0;
  uint64_t messages_lost = 0;
  Rng net_rng(base.seed + config.net_seed_offset);
  auto deliver = [&](double delay, std::function<void()> fn) {
    ++messages_sent;
    if (config.loss > 0.0 && net_rng.Bernoulli(config.loss)) {
      ++messages_lost;
      return;
    }
    if (delay <= 0.0) {
      fn();
    } else {
      sim.Schedule(sim.now() + delay, std::move(fn));
    }
  };

  // Membership: hellos are exchanged at connection setup in the socket
  // runner; here that is time zero, before any arrival.
  for (const auto& node : nodes) {
    ctl.OnHello(node->agent->Hello(), 0.0);
  }

  // --- Arrivals ----------------------------------------------------------
  for (const auto& node_ptr : nodes) {
    SimNode* node = node_ptr.get();
    for (SimShard& shard_ref : node->shards) {
      SimShard* shard = &shard_ref;
      shard->source->Start(&sim, [node, shard](const Tuple& t) {
        // A dead node's producers write into a closed socket: the tuples
        // vanish before any counter on the node side sees them.
        if (node->dead) return;
        ++shard->offered;
        if (!shard->shedder->Admit(t)) {
          ++shard->entry_shed;
          return;
        }
        Tuple local = t;
        local.source = 0;  // each shard's network has a single entry
        shard->engine->Inject(local, local.arrival_time);
      });
    }
  }

  // --- Period events -----------------------------------------------------
  // Node ticks are registered before the controller tick, so at a shared
  // boundary kT every node samples and (at zero delay) its report lands
  // before the controller aggregates — the exact single-process order of
  // RtLoop::ControlTick. ScheduleEvery re-schedules in execution order, so
  // the invariant holds every round.
  for (const auto& node_ptr : nodes) {
    SimNode* node = node_ptr.get();
    sim.ScheduleEvery(base.period, base.period, [&, node](SimTime t) {
      if (node->dead) return false;
      std::vector<RtSample> samples;
      samples.reserve(node->shards.size());
      for (const SimShard& shard : node->shards) {
        RtSample s;
        s.now = t;
        s.offered = shard.offered;
        s.entry_shed = shard.entry_shed;
        s.ring_dropped = 0;
        const EngineCounters& c = shard.engine->counters();
        s.admitted = c.admitted;
        s.departed = c.departed;
        s.queue_shed = c.shed_lineages;
        s.queue_shed_load = c.shed_base_load;
        s.busy_seconds = c.busy_seconds;
        s.drained_base_load = c.drained_base_load;
        s.queued_tuples = shard.engine->QueuedTuples();
        s.outstanding_base_load = shard.engine->OutstandingBaseLoad();
        s.delay_sum = shard.delay_sum;
        s.delay_count = shard.delay_count;
        samples.push_back(s);
      }
      NodeStatsReport report = node->agent->Tick(samples);
      if (config.piggyback_metrics) {
        // The sim nodes have no registry; the snapshot mirrors the same
        // cumulative counters a socket node's registry carries. Attaching
        // it must not perturb the plant: the controller folds it into a
        // metrics sink (when one is set) and nothing else.
        report.has_metrics = true;
        report.metrics.counters = {
            {"rt.offered", report.offered_total},
            {"rt.entry_shed", report.entry_shed_total},
            {"rt.departed", report.departed_total}};
        report.metrics.gauges = {{"rt.alpha", report.alpha}};
      }
      deliver(config.report_delay,
              [&ctl, &sim, report]() { ctl.OnReport(report, sim.now()); });
      return true;
    });
  }

  sim.ScheduleEvery(base.period, base.period, [&](SimTime t) {
    const std::vector<NodeCommand> commands = ctl.Tick(t);
    for (const NodeCommand& cmd : commands) {
      SimNode* target = nullptr;
      for (const auto& node : nodes) {
        if (node->id == cmd.node_id) {
          target = node.get();
          break;
        }
      }
      if (target == nullptr) continue;
      deliver(config.command_delay, [&, target, act = cmd.act]() {
        if (target->dead) return;
        const ActuationAck ack = target->agent->Apply(act);
        deliver(config.report_delay, [&ctl, ack]() { ctl.OnAck(ack); });
      });
    }
    return true;
  });

  if (config.kill_node_at > 0.0) {
    CS_CHECK_MSG(config.kill_node_id < static_cast<uint32_t>(config.nodes),
                 "kill_node_id out of range");
    SimNode* victim = nodes[config.kill_node_id].get();
    sim.Schedule(config.kill_node_at, [victim]() { victim->dead = true; });
  }

  sim.Run(base.duration);
  ctl.Flush();  // a period still waiting on delayed/lost acks

  // --- Results -----------------------------------------------------------
  ClusterSimResult result;
  result.recorder = ctl.recorder();
  result.nominal_cost = nominal_cost;
  result.messages_sent = messages_sent;
  result.messages_lost = messages_lost;
  result.ticks = ctl.ticks();
  result.idle_ticks = ctl.idle_ticks();
  result.final_active_nodes = ctl.monitor().active_count();

  uint64_t offered = 0;
  uint64_t entry_shed = 0;
  for (const auto& node : nodes) {
    ClusterSimNodeResult nr;
    nr.node_id = node->id;
    nr.killed = node->dead;
    nr.final_alpha = node->agent->last_alpha();
    for (const SimShard& shard : node->shards) {
      nr.offered += shard.offered;
      nr.entry_shed += shard.entry_shed;
      nr.queue_shed += shard.engine->counters().shed_lineages;
      nr.departed += shard.engine->counters().departed;
    }
    offered += nr.offered;
    entry_shed += nr.entry_shed;
    total_queue_shed += nr.queue_shed;
    result.nodes.push_back(nr);
  }

  QosSummary& s = result.summary;
  s.accumulated_violation = qos.accumulated_violation();
  s.delayed_tuples = qos.delayed_tuples();
  s.max_overshoot = qos.max_overshoot();
  s.offered = offered;
  s.entry_shed = entry_shed;
  s.ring_dropped = 0;  // the sim has no ingress rings
  s.queue_shed = total_queue_shed;
  s.shed = entry_shed + total_queue_shed;
  s.loss_ratio = offered == 0 ? 0.0
                              : static_cast<double>(s.shed) /
                                    static_cast<double>(offered);
  s.departures = qos.departures();
  s.mean_delay = qos.mean_delay();
  s.p50_delay = qos.delay_histogram().Quantile(0.50);
  s.p95_delay = qos.delay_histogram().Quantile(0.95);
  s.p99_delay = qos.delay_histogram().Quantile(0.99);
  return result;
}

}  // namespace ctrlshed
