#include "rt/cpu_affinity.h"

#include <cstdlib>
#include <thread>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace ctrlshed {

int NumCpus() {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return n;
  }
#endif
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

bool PinCurrentThreadToCpu(int cpu) {
#ifdef __linux__
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

int PinPlan::CpuForShard(int shard_index) const {
  if (!enabled) return -1;
  if (cpus.empty()) return shard_index % NumCpus();
  return cpus[static_cast<size_t>(shard_index) % cpus.size()];
}

PinPlan ParsePinCpus(const std::string& value, std::string* error) {
  PinPlan plan;
  error->clear();
  if (value.empty() || value == "0" || value == "off") return plan;
  if (value == "auto" || value == "1") {
    plan.enabled = true;
    return plan;
  }
  size_t pos = 0;
  while (pos <= value.size()) {
    const size_t comma = value.find(',', pos);
    const std::string item =
        value.substr(pos, comma == std::string::npos ? std::string::npos
                                                     : comma - pos);
    char* end = nullptr;
    const long cpu = std::strtol(item.c_str(), &end, 10);
    if (item.empty() || end == item.c_str() || *end != '\0' || cpu < 0) {
      *error = "pin_cpus expects 'auto', '0', or a comma list of CPU ids, "
               "got '" +
               value + "'";
      return PinPlan{};
    }
    plan.cpus.push_back(static_cast<int>(cpu));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  plan.enabled = true;
  return plan;
}

}  // namespace ctrlshed
