#ifndef CTRLSHED_RT_RT_STATS_H_
#define CTRLSHED_RT_RT_STATS_H_

#include <atomic>
#include <cstdint>

#include "common/sim_time.h"

namespace ctrlshed {

/// One coherent-enough snapshot of the shared counters, taken by the
/// monitor thread at a period boundary. Plain values: everything the
/// RtMonitor needs to reproduce the sim Monitor's per-period math.
struct RtSample {
  SimTime now = 0.0;  ///< Trace time the snapshot was taken at.

  // Ingress side (cumulative).
  uint64_t offered = 0;       ///< Tuples offered by the sources.
  uint64_t entry_shed = 0;    ///< Dropped by the entry shedder.
  uint64_t ring_dropped = 0;  ///< Rejected by a full ingress ring.

  // Engine side (cumulative mirrors of EngineCounters + queue state).
  uint64_t admitted = 0;
  uint64_t departed = 0;
  /// In-network drops: lineages removed from operator queues (mirror of the
  /// engine's shed_lineages counter). One scheme repo-wide: entry_shed /
  /// ring_dropped / queue_shed — see docs/architecture.md "Shed accounting".
  uint64_t queue_shed = 0;
  double queue_shed_load = 0.0;  ///< Same, in base-load seconds.
  double busy_seconds = 0.0;
  double drained_base_load = 0.0;
  uint64_t queued_tuples = 0;
  double outstanding_base_load = 0.0;

  // Departure-delay accumulation (cumulative; the monitor takes deltas).
  double delay_sum = 0.0;
  uint64_t delay_count = 0;
};

/// The cross-thread observation surface of the real-time runtime: every
/// field is a monotonic cumulative counter in a std::atomic.
///
/// Writers: the ingress counters are bumped with relaxed fetch_add by the
/// source threads (there may be several); the engine counters are written
/// by the single RtEngine worker thread, which republishes them after
/// every pump. Readers (the monitor thread, tests) load with relaxed
/// order: each field is individually race-free, and the slight skew
/// *between* fields within one snapshot is bounded by one pump interval —
/// the same imprecision a real engine's profiler sampling has, and far
/// below the control period it feeds.
///
/// The doubles rely on std::atomic<double> loads/stores (lock-free on the
/// platforms we target); fetch_add on doubles is avoided so C++17-era
/// toolchains under sanitizers stay happy — the single-writer fields use
/// plain store, and multi-writer fields are integers.
struct RtSharedStats {
  // Ingress side: any source thread, fetch_add relaxed.
  std::atomic<uint64_t> offered{0};
  std::atomic<uint64_t> entry_shed{0};
  std::atomic<uint64_t> ring_dropped{0};

  // Engine side: single writer (the worker), store relaxed.
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> departed{0};
  std::atomic<uint64_t> queue_shed{0};
  std::atomic<double> queue_shed_load{0.0};
  std::atomic<double> busy_seconds{0.0};
  std::atomic<double> drained_base_load{0.0};
  std::atomic<uint64_t> queued_tuples{0};
  std::atomic<double> outstanding_base_load{0.0};
  std::atomic<double> delay_sum{0.0};
  std::atomic<uint64_t> delay_count{0};

  // --- Actuation-plan handshake (controller -> worker) ------------------
  //
  // The in-network shed budget crosses the period boundary here instead of
  // through any cross-thread queue access: the controller thread stores the
  // payload fields with relaxed order, then release-stores plan_seq; the
  // worker acquire-loads plan_seq inside its pump and, on a new sequence,
  // reads the payload and replaces its remaining budget (an unspent budget
  // expires at the next period boundary — it does not accumulate). The
  // worker alone touches operator queues.
  std::atomic<uint64_t> plan_seq{0};
  std::atomic<double> plan_queue_budget{0.0};  ///< Base-load seconds to shed.
  std::atomic<uint32_t> plan_cost_aware{0};    ///< Victim policy (bool).

  /// Adaptive scheduler quantum (controller -> worker). Unlike the shed
  /// budget this is a self-contained value, not a one-shot grant, so it
  /// needs no sequence handshake: the controller relaxed-stores the next
  /// quantum each period and the worker relaxed-loads it at pump start,
  /// applying it when it differs from what the scheduler currently grants.
  /// 0 means "no override" (the worker keeps the configured batch).
  std::atomic<uint64_t> plan_quantum{0};

  /// Takes a snapshot of all counters at `now`.
  ///
  /// Skew bound: the loads are not one atomic transaction, so a snapshot
  /// taken mid-pump can mix ingress counters that a source just bumped
  /// with engine mirrors from the previous Publish — the engine-side
  /// fields lag the ingress side by at most one pump interval (and each
  /// other by nothing: Publish writes them back-to-back between pumps).
  /// Two guarantees follow, and the telemetry exporter depends on them:
  ///
  ///  1. Every field is individually monotonic non-decreasing across
  ///     successive snapshots (each is a cumulative counter with relaxed
  ///     but per-field-ordered atomics), so per-period deltas of any one
  ///     field are never negative.
  ///  2. Cross-field invariants (e.g. admitted <= offered - entry_shed)
  ///     may be transiently violated within a snapshot, but only by the
  ///     tuples of a single in-flight pump — far below the control period
  ///     the samples feed.
  ///
  /// rt_stats_test.cc locks both in with a fake-clock sequence and a
  /// concurrent stress run.
  RtSample Snapshot(SimTime now) const {
    RtSample s;
    s.now = now;
    s.offered = offered.load(std::memory_order_relaxed);
    s.entry_shed = entry_shed.load(std::memory_order_relaxed);
    s.ring_dropped = ring_dropped.load(std::memory_order_relaxed);
    s.admitted = admitted.load(std::memory_order_relaxed);
    s.departed = departed.load(std::memory_order_relaxed);
    s.queue_shed = queue_shed.load(std::memory_order_relaxed);
    s.queue_shed_load = queue_shed_load.load(std::memory_order_relaxed);
    s.busy_seconds = busy_seconds.load(std::memory_order_relaxed);
    s.drained_base_load = drained_base_load.load(std::memory_order_relaxed);
    s.queued_tuples = queued_tuples.load(std::memory_order_relaxed);
    s.outstanding_base_load =
        outstanding_base_load.load(std::memory_order_relaxed);
    s.delay_sum = delay_sum.load(std::memory_order_relaxed);
    s.delay_count = delay_count.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace ctrlshed

#endif  // CTRLSHED_RT_RT_STATS_H_
