#ifndef CTRLSHED_RT_RT_ENGINE_H_
#define CTRLSHED_RT_RT_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "engine/engine.h"
#include "engine/query_network.h"
#include "engine/tuple.h"
#include "metrics/histogram.h"
#include "rt/rt_clock.h"
#include "rt/rt_stats.h"
#include "rt/spsc_ring.h"
#include "telemetry/telemetry.h"

namespace ctrlshed {

class OperatorTelemetry;

/// How the worker charges per-tuple processing cost against real time.
enum class RtCostMode {
  /// Busy-loop while the engine is catching up to the wall clock: the
  /// worker genuinely occupies the CPU for the duration of the virtual
  /// work, so the plant is the actual processor.
  kBusySpin,
  /// Sleep between pumps instead of spinning. Same wall-clock dynamics
  /// (work still completes only as real time passes), but the CPU is
  /// yielded — the right mode for CI, sanitizers, and single-core boxes.
  kSleep,
};

struct RtEngineOptions {
  double headroom = 0.97;        ///< TRUE CPU fraction, as in Engine.
  size_t ring_capacity = 4096;   ///< Per-source ingress ring size.
  RtCostMode cost_mode = RtCostMode::kSleep;
  /// Pump granularity in WALL seconds: how often the worker drains the
  /// rings and advances the engine. Must be well below the control
  /// period's wall duration.
  double pacing_wall_seconds = 500e-6;
  /// Datapath batch size, in [1, 4096]: how many tuples each SPSC pop
  /// moves per index publish, and the invocation quantum the engine's
  /// scheduler grants per operator visit. 1 is the seed-equivalent
  /// per-tuple path (bit-identical control arithmetic); larger values
  /// amortize the atomics and the per-visit scheduling/observer overhead.
  size_t batch = 1;
  /// Optional telemetry session (non-owning; must outlive the engine).
  /// Null disables tracing/metric registration — the worker's hot path
  /// then carries one dead branch per pump.
  Telemetry* telemetry = nullptr;
  /// Which shard of a partitioned plant this engine is; labels the worker
  /// thread's telemetry ("rt.worker<i>"). 0 for the unsharded runtime.
  int shard_index = 0;
  /// Register a per-shard pump-interval histogram
  /// ("rt.shard<i>.pump_interval_s") in addition to the aggregate
  /// "rt.pump_interval_s". The sharded runtime enables this so the
  /// Prometheus exporter can serve one labeled summary family.
  bool per_shard_pump_metric = false;
  /// Time-varying per-tuple cost multiplier, sampled on the WORKER's clock
  /// as the engine executes (Fig. 14 circumstances ported to rt). Installed
  /// on the inner engine before the worker starts; null = constant cost.
  /// The callable must be safe to invoke from the worker thread for the
  /// engine's lifetime (a read-only trace lookup qualifies).
  CostMultiplierFn cost_multiplier;
  /// CPU to pin the worker thread to at start (-1 = unpinned). Pinning is
  /// a best-effort performance hint: a failed pin (non-Linux platform, CPU
  /// out of range) is ignored and the worker runs unpinned.
  int pin_cpu = -1;
  /// Seed of the worker-owned victim RNG for in-network shedding. The
  /// worker consumes the controller's posted queue budget (see
  /// RtSharedStats plan handshake) inside its pump, so victim selection
  /// must not share the controller thread's RNG.
  uint64_t queue_shed_seed = 0;
};

/// The real-time plant: one worker thread that owns a sim Engine
/// exclusively and slaves its virtual CPU to the wall clock.
///
/// Every pump the worker (1) drains the per-source SPSC ingress rings into
/// the engine, (2) calls Engine::AdvanceTo(clock->Now()), so exactly the
/// work that fits in the real elapsed time executes — wall time, not an
/// event queue, is what gates progress — and (3) republishes the engine's
/// counters into the RtSharedStats atomics for the monitor thread. All of
/// the sim engine's O(1) bookkeeping invariants (virtual queue length,
/// outstanding base load, lineage refcounts, busy/drained accounting) are
/// reused verbatim; the engine object itself is never touched by any other
/// thread.
///
/// Ingress is lock-free: producers call Offer() (one designated thread per
/// source index) which pushes into that source's ring; a full ring rejects
/// the tuple and the drop is counted into the shared stats — overflow is
/// load shedding the controller must account for.
class RtEngine {
 public:
  /// `network` must be finalized and outlive the engine; `clock` must be
  /// started before Start() and outlive the engine.
  RtEngine(QueryNetwork* network, const RtClock* clock, int num_sources,
           RtEngineOptions options);
  ~RtEngine();

  RtEngine(const RtEngine&) = delete;
  RtEngine& operator=(const RtEngine&) = delete;

  /// Installs the per-departure observer. Runs on the WORKER thread; must
  /// be set before Start. The observer's state may be read by other
  /// threads only after Stop() (thread join gives the happens-before).
  void SetDepartureCallback(DepartureCallback cb);

  /// Launches the worker thread.
  void Start();

  /// Signals the worker, joins it, and publishes a final snapshot.
  /// Idempotent.
  void Stop();

  /// Ingress: pushes `t` into the ring of `t.source`. At most one thread
  /// per source index may call this. Returns false when the ring is full
  /// (the drop has already been counted).
  bool Offer(const Tuple& t);

  /// Batched ingress: pushes `n` tuples — all with the same `source` —
  /// into that source's ring with one index publish. Returns how many were
  /// accepted; the rejected tail has already been counted as ring drops.
  /// Same producer contract as Offer.
  size_t OfferBatch(const Tuple* tuples, size_t n);

  /// One drain-and-advance step: moves every due tuple (arrival <= `now`)
  /// from the ingress rings into the engine in arrival order and advances
  /// the virtual CPU to `now`. Normally driven by the worker thread;
  /// exposed so benchmarks and tests can run the pump synchronously on an
  /// un-Started engine (same single-thread ownership rules as Start).
  void Pump(SimTime now);

  /// Shared observation surface (monitor thread reads, see RtSharedStats).
  RtSharedStats* stats() { return &stats_; }
  RtSample Snapshot() const { return stats_.Snapshot(clock_->Now()); }

  double NominalEntryCost() const { return nominal_entry_cost_; }
  const RtEngineOptions& options() const { return options_; }
  int num_sources() const { return static_cast<int>(rings_.size()); }

  /// The inner engine's counters. Only valid after Stop().
  const EngineCounters& counters() const { return engine_.counters(); }

  /// Wall-clock interval between consecutive pump starts — the worker's
  /// scheduling-jitter record, always collected (one histogram increment
  /// per pump). Only valid after Stop().
  const LatencyHistogram& pump_intervals() const { return pump_intervals_; }

 private:
  void WorkerLoop();
  /// Republishes the engine-side counters into the shared atomics.
  void Publish();
  /// Executes the pending in-network shed budget against the engine's
  /// operator queues (worker thread only; see RtSharedStats handshake).
  void ConsumeShedBudget();
  /// Merges the per-ring arrival-sorted runs recorded in `run_bounds_`
  /// into `inject_order_` (stable across rings: ties go to the lower ring
  /// index, reproducing what stable_sort over the concatenation gives).
  void MergeRunsByArrival();

  const RtClock* clock_;
  RtEngineOptions options_;
  Engine engine_;  ///< Worker-thread-owned after Start().
  double nominal_entry_cost_;
  std::vector<std::unique_ptr<SpscRing<Tuple>>> rings_;

  RtSharedStats stats_;
  DepartureCallback on_departure_;

  // Worker-local pump scratch, all reused across pumps so the steady
  // state allocates nothing: the per-ring batch-pop staging buffer, the
  // due tuples of this pump (as per-ring sorted runs), the run boundaries,
  // the merged injection order, and the parked not-yet-due tuples per ring
  // (a FIFO drained from `head`; batch pops can park several at once).
  struct Holdover {
    std::vector<Tuple> buf;
    size_t head = 0;
    bool empty() const { return head == buf.size(); }
  };
  std::vector<Tuple> scratch_;
  std::vector<Tuple> pending_;
  std::vector<std::pair<size_t, size_t>> run_bounds_;
  std::vector<Tuple> inject_order_;
  std::vector<size_t> run_cursor_;
  std::vector<Holdover> holdover_;

  // Worker-local departure-delay accumulation, published each pump.
  double delay_sum_local_ = 0.0;
  uint64_t delay_count_local_ = 0;

  // Worker-owned in-network shedding state: the remaining budget of the
  // current plan (base-load seconds), refreshed whenever plan_seq changes
  // (an unspent budget expires at the period boundary), and the victim RNG
  // (worker-thread-only — the plan crosses threads, the queues never do).
  Rng shed_rng_;
  uint64_t plan_seq_seen_ = 0;
  double shed_budget_remaining_ = 0.0;
  bool shed_cost_aware_ = false;

  /// Scheduler quantum currently applied to the inner engine (worker
  /// thread only); starts at the configured batch and follows the
  /// controller's plan_quantum overrides (see RtSharedStats).
  size_t applied_quantum_ = 1;

  // Worker-local telemetry (trace buffer registered at thread start;
  // histogram read by other threads only after the join in Stop()).
  LatencyHistogram pump_intervals_{1e-6, 1e3, 1.08};
  TraceBuffer* trace_buf_ = nullptr;
  HistogramMetric* pump_interval_metric_ = nullptr;
  HistogramMetric* shard_pump_interval_metric_ = nullptr;
  Counter* pump_counter_ = nullptr;
  /// Per-operator spans/counters (worker-thread-owned; created at thread
  /// start, torn down after the join).
  std::unique_ptr<OperatorTelemetry> op_telemetry_;

  std::atomic<bool> stop_{false};
  std::thread worker_;
  bool started_ = false;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_RT_RT_ENGINE_H_
