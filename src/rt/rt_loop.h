#ifndef CTRLSHED_RT_RT_LOOP_H_
#define CTRLSHED_RT_RT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "control/controller.h"
#include "control/rate_predictor.h"
#include "metrics/qos_metrics.h"
#include "metrics/recorder.h"
#include "rt/rt_clock.h"
#include "rt/rt_engine.h"
#include "rt/rt_monitor.h"
#include "shedding/shedder.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/health.h"

namespace ctrlshed {

/// One partition of a sharded real-time plant: a worker-owned engine plus
/// the entry shedder that gates its ingress. Pointees are non-owning and
/// must outlive the loop; `shedder` may be null only in open runs (no
/// controller).
struct RtShard {
  RtEngine* engine = nullptr;
  Shedder* shedder = nullptr;
};

/// Options of the real-time control loop; the subset of
/// FeedbackLoopOptions that survives contact with a real clock.
struct RtLoopOptions {
  SimTime period = 1.0;        ///< Control period T, trace seconds.
  double target_delay = 2.0;   ///< Initial setpoint yd (trace seconds).
  double headroom = 0.97;      ///< PER-WORKER H estimate (see RtMonitor).
  double cost_ewma = 1.0;      ///< Cost-estimate smoothing (see RtMonitor).
  bool adapt_headroom = false; ///< Online H estimation (see RtMonitor).
  /// Build in-network-enabled ActuationPlans: each period the controller
  /// thread posts a per-shard queue-shed budget through the RtSharedStats
  /// handshake (the worker consumes it inside its pump) and the entry
  /// shedders apply the plan's analytic entry remainder. Off = classic
  /// entry-only actuation, bit-identical to the pre-plan loop.
  bool queue_shed = false;
  /// Victim policy for the in-network half (kMostCostly vs kRandom).
  bool cost_aware_shed = false;
  /// Adapt each shard worker's scheduler quantum at every period boundary
  /// (see rt/adaptive_quantum.h): grow it under backlog, shrink it back
  /// toward the configured batch when there is latency headroom. Off = the
  /// configured batch is the quantum for the whole run, bit-identical to
  /// the fixed-quantum loop.
  bool adaptive_quantum = false;
  /// Optional telemetry session (non-owning; must outlive the loop).
  Telemetry* telemetry = nullptr;
};

/// The wall-clock twin of FeedbackLoop: monitor -> controller -> shedders
/// -> N sharded RtEngines, with the feedback ticking on a real periodic
/// thread instead of simulation events.
///
/// Sharding model: the plant is hash-partitioned across N shards, each a
/// worker thread owning its own sim Engine, ingress rings, and shedder.
/// Global source index s routes to shard s % N (and becomes local source
/// s / N inside that shard's engine), so each global source still has
/// exactly one SPSC producer per ring. One controller drives the
/// aggregate: the monitor folds the N shard snapshots into a single
/// virtual plant (q = sum q_i, drain-weighted cost, effective headroom
/// N*H), the controller computes one admitted rate v(k), and actuation
/// fans v back out per shard proportionally to each shard's offered rate
/// over the last period (an even 1/N split when nothing arrived). With
/// N = 1 every aggregation and fan-out step is the identity, so the
/// single-shard loop is bit-identical to the pre-sharding runtime.
///
/// Threading model:
///  - OnArrival runs on the source threads: it counts the offer against
///    the owning shard, asks that shard's shedder for admission (under a
///    per-shard mutex — the shedders are reused unchanged from the sim
///    and are not thread-safe by themselves), and pushes survivors into
///    the shard engine's lock-free ingress ring.
///  - The controller thread wakes at every period boundary, snapshots all
///    shards' shared atomics at one clock read (the aggregation barrier),
///    runs the monitor/controller math, and reconfigures each shedder
///    under its mutex. Controller, monitor, predictor and recorder are
///    touched by this thread only.
///  - QoS accounting rides the N engine workers' departure callbacks,
///    serialized by a departure mutex, and is read by other threads only
///    after Stop() (joins give happens-before).
class RtLoop {
 public:
  /// Sharded plant. All pointees must outlive the loop; shards must be
  /// homogeneous (same nominal entry cost). The controller may be null
  /// (open run: admit everything); per-shard shedders are required
  /// otherwise.
  RtLoop(std::vector<RtShard> shards, const RtClock* clock,
         LoadController* controller, RtLoopOptions options);

  /// Single-shard convenience, the historical signature.
  RtLoop(RtEngine* engine, const RtClock* clock, LoadController* controller,
         Shedder* shedder, RtLoopOptions options);
  ~RtLoop();

  RtLoop(const RtLoop&) = delete;
  RtLoop& operator=(const RtLoop&) = delete;

  /// Installs an additional per-departure observer (runs on the engine
  /// worker threads, serialized by the loop). Must be called before Start.
  void SetDepartureObserver(DepartureCallback observer);

  /// Installs a one-step-ahead arrival-rate predictor (controller thread
  /// only). Must be called before Start.
  void SetRatePredictor(RatePredictor* predictor);

  /// Starts the engine workers and the periodic controller thread. The
  /// clock must already be started.
  void Start();

  /// Stops the controller thread and the engine workers. Idempotent.
  /// Stop the arrival sources first so nothing races the teardown.
  void Stop();

  /// Ingress entry point; one designated thread per GLOBAL tuple source
  /// index. Routes to shard t.source % num_shards().
  void OnArrival(const Tuple& t);

  /// Batched ingress: `n` tuples from ONE source (all t.source equal), in
  /// arrival order. Takes the shard's shedder mutex once and pushes the
  /// admitted survivors into the engine ring with one batched publish.
  /// At n == 1 this is exactly OnArrival.
  void OnArrivalBatch(const Tuple* tuples, size_t n);

  /// Changes the delay setpoint at runtime (any thread).
  void SetTargetDelay(double yd);
  double target_delay() const {
    return target_delay_.load(std::memory_order_relaxed);
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  // --- Results (valid after Stop()) --------------------------------------

  const Recorder& recorder() const { return recorder_; }
  const RtMonitor& monitor() const { return monitor_; }
  const QosAccumulator& qos() const { return qos_; }

  /// Current control-loop health verdict (see telemetry/health.h).
  /// Thread-safe — the telemetry server's /health handler calls it while
  /// the controller thread keeps feeding periods.
  HealthReport Health() const { return health_.Report(); }

  /// Wall-clock lateness of each control tick past its period deadline
  /// (actuation jitter). Only valid after Stop().
  const LatencyHistogram& actuation_lateness() const {
    return actuation_lateness_;
  }

  // Aggregates over all shards; the per-shard decomposition is available
  // from each shard's RtEngine stats.
  uint64_t offered() const;
  uint64_t entry_shed() const;
  uint64_t ring_dropped() const;

  /// Total shed tuples (entry drops + ring overflow + in-network) over
  /// offered. Ring overflow counts as loss: a full ingress queue sheds
  /// load whether the controller asked for it or not.
  double LossRatio() const;

  /// End-of-run summary on the same reporting path as the sim loop.
  QosSummary Summary() const;

 private:
  void ControllerLoop();
  /// `lateness_wall` is how far (wall seconds, >= 0) past the period
  /// deadline the tick started — the actuation jitter this period.
  void ControlTick(SimTime now, double lateness_wall);
  uint64_t SumStat(std::atomic<uint64_t> RtSharedStats::* member) const;

  std::vector<RtShard> shards_;
  const RtClock* clock_;
  LoadController* controller_;
  RtLoopOptions options_;

  RtMonitor monitor_;
  QosAccumulator qos_;
  Recorder recorder_;
  FlightRecorder flight_{"rt"};  ///< Post-mortem ring (last periods/events).
  HealthMonitor health_;
  HealthGauges health_gauges_;
  DepartureCallback observer_;
  RatePredictor* predictor_ = nullptr;

  // Actuation plane (controller thread only): the per-shard plan builder,
  // the handshake sequence posted to the workers, and the last aggregate
  // queue-shed total (for per-period timeline deltas).
  ActuationPlanner planner_;
  uint64_t plan_seq_ = 0;
  uint64_t prev_queue_shed_ = 0;

  // Controller-thread scratch, sized once (no per-tick allocation).
  std::vector<RtSample> samples_;

  // Adaptive-quantum state (controller thread only): the quantum each
  // shard was last told to use, seeded from its configured batch.
  std::vector<size_t> shard_quanta_;

  // Controller-thread telemetry (histogram read elsewhere only after the
  // join in Stop()).
  LatencyHistogram actuation_lateness_{1e-6, 1e3, 1.08};
  TraceBuffer* trace_buf_ = nullptr;
  HistogramMetric* lateness_metric_ = nullptr;
  Gauge* queue_gauge_ = nullptr;
  Gauge* y_hat_gauge_ = nullptr;
  Gauge* alpha_gauge_ = nullptr;
  Gauge* h_hat_gauge_ = nullptr;
  // Per-shard decomposition gauges, registered only when num_shards > 1
  // (the unsharded telemetry surface is unchanged).
  std::vector<Gauge*> shard_queue_gauges_;
  std::vector<Gauge*> shard_alpha_gauges_;
  std::vector<Gauge*> shard_h_hat_gauges_;
  ActuationSite last_site_ = ActuationSite::kEntry;

  /// One mutex per shard guarding Admit (source threads) vs Configure
  /// (controller thread) on that shard's shedder.
  std::unique_ptr<std::mutex[]> shedder_mutexes_;
  /// Serializes the N workers' departure fan-in into qos_/observer_.
  std::mutex departure_mutex_;
  std::atomic<double> target_delay_;
  std::atomic<bool> stop_{false};
  std::thread controller_thread_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_RT_RT_LOOP_H_
