#ifndef CTRLSHED_RT_RT_LOOP_H_
#define CTRLSHED_RT_RT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>

#include "control/controller.h"
#include "control/rate_predictor.h"
#include "metrics/qos_metrics.h"
#include "metrics/recorder.h"
#include "rt/rt_clock.h"
#include "rt/rt_engine.h"
#include "rt/rt_monitor.h"
#include "shedding/shedder.h"

namespace ctrlshed {

/// Options of the real-time control loop; the subset of
/// FeedbackLoopOptions that survives contact with a real clock.
struct RtLoopOptions {
  SimTime period = 1.0;        ///< Control period T, trace seconds.
  double target_delay = 2.0;   ///< Initial setpoint yd (trace seconds).
  double headroom = 0.97;      ///< H estimate shared by monitor & estimator.
  double cost_ewma = 1.0;      ///< Cost-estimate smoothing (see RtMonitor).
  bool adapt_headroom = false; ///< Online H estimation (see RtMonitor).
  /// Optional telemetry session (non-owning; must outlive the loop).
  Telemetry* telemetry = nullptr;
};

/// The wall-clock twin of FeedbackLoop: monitor -> controller -> shedder
/// -> RtEngine, with the feedback ticking on a real periodic thread
/// instead of simulation events.
///
/// Threading model:
///  - OnArrival runs on the source threads: it counts the offer, asks the
///    shedder for admission (under a small mutex — the shedders are reused
///    unchanged from the sim and are not thread-safe by themselves), and
///    pushes survivors into the engine's lock-free ingress ring.
///  - The controller thread wakes at every period boundary, snapshots the
///    shared atomics, runs the monitor/controller math, and reconfigures
///    the shedder under the same mutex. Controller, monitor, predictor and
///    recorder are touched by this thread only.
///  - QoS accounting rides the engine worker's departure callback and is
///    read by other threads only after Stop() (joins give happens-before).
class RtLoop {
 public:
  /// All pointees must outlive the loop. The controller may be null
  /// (open run: admit everything); a shedder is required otherwise.
  RtLoop(RtEngine* engine, const RtClock* clock, LoadController* controller,
         Shedder* shedder, RtLoopOptions options);
  ~RtLoop();

  RtLoop(const RtLoop&) = delete;
  RtLoop& operator=(const RtLoop&) = delete;

  /// Installs an additional per-departure observer (runs on the engine
  /// worker thread). Must be called before Start.
  void SetDepartureObserver(DepartureCallback observer);

  /// Installs a one-step-ahead arrival-rate predictor (controller thread
  /// only). Must be called before Start.
  void SetRatePredictor(RatePredictor* predictor);

  /// Starts the engine worker and the periodic controller thread. The
  /// clock must already be started.
  void Start();

  /// Stops the controller thread and the engine worker. Idempotent.
  /// Stop the arrival sources first so nothing races the teardown.
  void Stop();

  /// Ingress entry point; one designated thread per tuple source index.
  void OnArrival(const Tuple& t);

  /// Changes the delay setpoint at runtime (any thread).
  void SetTargetDelay(double yd);
  double target_delay() const {
    return target_delay_.load(std::memory_order_relaxed);
  }

  // --- Results (valid after Stop()) --------------------------------------

  const Recorder& recorder() const { return recorder_; }
  const RtMonitor& monitor() const { return monitor_; }
  const QosAccumulator& qos() const { return qos_; }

  /// Wall-clock lateness of each control tick past its period deadline
  /// (actuation jitter). Only valid after Stop().
  const LatencyHistogram& actuation_lateness() const {
    return actuation_lateness_;
  }

  uint64_t offered() const;
  uint64_t entry_shed() const;
  uint64_t ring_dropped() const;

  /// Total shed tuples (entry drops + ring overflow + in-network) over
  /// offered. Ring overflow counts as loss: a full ingress queue sheds
  /// load whether the controller asked for it or not.
  double LossRatio() const;

  /// End-of-run summary on the same reporting path as the sim loop.
  QosSummary Summary() const;

 private:
  void ControllerLoop();
  /// `lateness_wall` is how far (wall seconds, >= 0) past the period
  /// deadline the tick started — the actuation jitter this period.
  void ControlTick(SimTime now, double lateness_wall);

  RtEngine* engine_;
  const RtClock* clock_;
  LoadController* controller_;
  Shedder* shedder_;
  RtLoopOptions options_;

  RtMonitor monitor_;
  QosAccumulator qos_;
  Recorder recorder_;
  DepartureCallback observer_;
  RatePredictor* predictor_ = nullptr;

  // Controller-thread telemetry (histogram read elsewhere only after the
  // join in Stop()).
  LatencyHistogram actuation_lateness_{1e-6, 1e3, 1.08};
  TraceBuffer* trace_buf_ = nullptr;
  HistogramMetric* lateness_metric_ = nullptr;
  Gauge* queue_gauge_ = nullptr;
  Gauge* y_hat_gauge_ = nullptr;
  Gauge* alpha_gauge_ = nullptr;

  std::mutex shedder_mutex_;  ///< Guards Admit (sources) vs Configure (ctrl).
  std::atomic<double> target_delay_;
  std::atomic<bool> stop_{false};
  std::thread controller_thread_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_RT_RT_LOOP_H_
