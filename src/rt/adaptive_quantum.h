#ifndef CTRLSHED_RT_ADAPTIVE_QUANTUM_H_
#define CTRLSHED_RT_ADAPTIVE_QUANTUM_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace ctrlshed {

/// Per-period signals the adaptive-quantum policy reads, all already
/// computed by the monitor at the tick boundary — the policy adds no new
/// measurement machinery.
struct QuantumSignals {
  double y_hat = 0.0;         ///< Estimated worst-case delay (trace s).
  double target_delay = 0.0;  ///< Delay setpoint yd (trace s).
  uint64_t queued = 0;        ///< Queued tuples in this shard's engine.
};

/// Bounds of the adaptive quantum walk. `floor_q` is normally the
/// configured datapath batch: the quantum never adapts below what the
/// operator asked for, only above it when backlog justifies coarser
/// interleaving.
struct QuantumLimits {
  size_t floor_q = 1;
  size_t ceil_q = 4096;
};

/// One step of the adaptive scheduler-quantum policy (pure function; the
/// controller thread evaluates it once per shard per period and posts the
/// result through the RtSharedStats::plan_quantum handshake).
///
/// Rationale: a large quantum amortizes per-visit scheduling and observer
/// overhead (throughput), a small one keeps operator interleaving fine
/// (latency). So:
///
///  - GROW (x2) when the plant is behind the setpoint (y_hat > yd) and
///    there is enough backlog to actually fill the bigger train
///    (queued > 2 * current) — growing on an empty queue would only
///    coarsen interleaving for nothing.
///  - SHRINK (/2) when there is comfortable latency headroom
///    (y_hat < yd / 2): the plant is keeping up, so buy back fine
///    interleaving.
///  - HOLD inside the band [yd/2, yd] — the hysteresis that keeps the
///    quantum from oscillating every period around the setpoint.
///
/// Multiplicative steps bound convergence to O(log(ceil/floor)) periods in
/// either direction; the clamp keeps the result in [floor_q, ceil_q].
inline size_t NextQuantum(size_t current, const QuantumSignals& s,
                          const QuantumLimits& lim) {
  size_t next = current;
  if (s.y_hat > s.target_delay &&
      s.queued > 2 * static_cast<uint64_t>(current)) {
    next = current * 2;
  } else if (s.y_hat < 0.5 * s.target_delay) {
    next = current / 2;
  }
  return std::clamp(next, lim.floor_q, lim.ceil_q);
}

}  // namespace ctrlshed

#endif  // CTRLSHED_RT_ADAPTIVE_QUANTUM_H_
