#ifndef CTRLSHED_RT_RT_RUNTIME_H_
#define CTRLSHED_RT_RT_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "metrics/histogram.h"
#include "metrics/qos_metrics.h"
#include "metrics/recorder.h"
#include "rt/rt_engine.h"
#include "runner/experiment.h"
#include "telemetry/health.h"
#include "workload/rate_trace.h"

namespace ctrlshed {

/// One real-time closed-loop run. `base` carries everything the sim
/// harness already knows how to describe — method, workload, duration,
/// control period, setpoint (schedule), headrooms, capacity, gains,
/// predictor, spacing, seed, the Fig. 14 time-varying cost trace
/// (`vary_cost`, sampled on each worker's clock), and the in-network queue
/// shedder (`use_queue_shedder` / `cost_aware_shedding`, executed by the
/// worker pumps from controller-posted budgets — see the RtSharedStats
/// actuation-plan handshake). The one remaining simulation-only knob is
/// injected estimation noise (real noise comes free in rt); see
/// RtConfigError.
struct RtRunConfig {
  ExperimentConfig base;

  /// Trace-seconds per wall-second (see RtClock). 20 replays a 400 s
  /// experiment in 20 wall seconds; CI soaks use more.
  double time_compression = 20.0;
  size_t ring_capacity = 4096;
  RtCostMode cost_mode = RtCostMode::kSleep;
  double pacing_wall_seconds = 500e-6;

  /// Datapath batch size (see RtEngineOptions::batch): SPSC pop run length
  /// and engine invocation quantum. 1 (default) is the seed-equivalent
  /// per-tuple path with bit-identical control arithmetic.
  size_t batch = 1;

  /// Adapt each worker's scheduler quantum per control period (see
  /// rt/adaptive_quantum.h): grow past `batch` under backlog, shrink back
  /// with latency headroom. Off = fixed quantum `batch` for the whole run.
  bool batch_adaptive = false;

  /// Worker core pinning (see rt/cpu_affinity.h): "" or "0" = unpinned
  /// (default), "auto" = shard i pins to CPU i % NumCpus(), a comma list
  /// like "0,2,4" = shard i pins to list[i % len]. Validated by
  /// RtConfigError; pinning itself is best-effort.
  std::string pin_cpus;

  /// Worker shards the plant is partitioned across (see RtLoop). The
  /// offered-rate trace is split evenly: N replay sources, each driving
  /// its own shard with the base trace scaled by 1/N (independent arrival
  /// draws per source), so the aggregate offered load matches the
  /// unsharded run. 1 = the historical single-worker runtime, bit for
  /// bit.
  int workers = 1;

  /// Optional early-stop flag (e.g. set by a SIGINT handler). The main
  /// thread polls it between sleep chunks; when it flips true the run
  /// tears down cleanly — sources stop, threads join, telemetry flushes
  /// complete trace.json / timeline.* files — and the result covers the
  /// periods that finished. Not owned; may be null.
  const std::atomic<bool>* stop = nullptr;
};

/// Per-shard slice of a sharded run's accounting. Shed counters follow the
/// repo-wide scheme (docs/architecture.md "Shed accounting"): entry_shed
/// (gate drops) + ring_dropped (ingress overflow) + queue_shed (in-network
/// drops from operator queues) sum to the shard's total loss.
struct RtShardSummary {
  uint64_t offered = 0;
  uint64_t entry_shed = 0;
  uint64_t ring_dropped = 0;
  uint64_t queue_shed = 0;
  double queue_shed_load = 0.0;  ///< queue_shed in base-load seconds.
  uint64_t departed = 0;
  /// Measured per-worker headroom H_hat at the end of the run (see
  /// RtMonitor::shard_h_hat); NaN when the shard never got busy.
  double h_hat = std::numeric_limits<double>::quiet_NaN();
  LatencyHistogram pump_intervals{1e-6, 1e3, 1.08};
};

/// Results on the same reporting path as the sim's ExperimentResult, plus
/// the rt-specific accounting.
struct RtRunResult {
  QosSummary summary;
  Recorder recorder;        ///< Per-period closed-loop trace.
  RateTrace arrival_trace;  ///< The offered-rate trace that was replayed.
  double nominal_cost = 0.0;

  uint64_t ring_dropped = 0;  ///< Ingress-ring overflow drops (in `shed`).
  double wall_seconds = 0.0;  ///< Real elapsed time of the run.

  /// Worker shards of the run, and each shard's slice of the counters
  /// (`shards.size() == workers`; the summary holds the aggregates).
  int workers = 1;
  std::vector<RtShardSummary> shards;

  // Scheduling-jitter record, always collected (see RtEngine/RtLoop):
  // wall seconds between worker pumps (merged over all shards), and wall
  // seconds each control tick ran past its period deadline.
  LatencyHistogram pump_intervals{1e-6, 1e3, 1.08};
  LatencyHistogram actuation_lateness{1e-6, 1e3, 1.08};

  // Telemetry accounting, non-zero only when telemetry was on.
  uint64_t trace_events = 0;   ///< Span/instant events captured.
  uint64_t trace_dropped = 0;  ///< Events lost to full trace rings.
  uint64_t timeline_rows = 0;  ///< Per-period rows exported.

  // Live-server accounting, meaningful only with base.telemetry.server_port
  // >= 0.
  int telemetry_port = -1;          ///< Bound port; -1 when no server ran.
  uint64_t sse_clients = 0;         ///< HTTP connections accepted.
  uint64_t sse_rows_published = 0;  ///< Timeline rows offered to the feed.
  uint64_t sse_rows_dropped = 0;    ///< Rows lost to slow SSE clients.

  /// Health verdict at the end of the run (see telemetry/health.h).
  HealthReport health;

  bool interrupted = false;  ///< True when config.stop ended the run early.
};

/// Validates `config` against what the rt runtime supports. Returns an
/// empty string when runnable, else an actionable message naming the
/// offending knob. CLIs should call this and exit(2) on a non-empty result;
/// RunRtExperiment CS_CHECKs it (passing an unvalidated config is a
/// programming error).
std::string RtConfigError(const RtRunConfig& config);

/// Builds the standard plant (identification network + RtEngine + replay
/// source + chosen controller/shedder), races it against the wall clock
/// for `base.duration` trace seconds, joins everything, and returns the
/// metrics.
RtRunResult RunRtExperiment(const RtRunConfig& config);

}  // namespace ctrlshed

#endif  // CTRLSHED_RT_RT_RUNTIME_H_
