#ifndef CTRLSHED_RT_RT_CLOCK_H_
#define CTRLSHED_RT_RT_CLOCK_H_

#include <chrono>

#include "common/macros.h"
#include "common/sim_time.h"

namespace ctrlshed {

/// Maps the wall clock onto *trace time* — the time base every reused
/// component (traces, control period, per-tuple costs, delay setpoints)
/// is expressed in.
///
/// `compression` is trace-seconds per wall-second: at compression 20 a
/// 400-second experiment replays in 20 wall seconds, with all rates and
/// costs scaled consistently (the closed-loop dynamics are invariant, only
/// the absolute wall durations shrink). This is what lets CI soaks finish
/// in seconds while still racing real threads against a real clock.
///
/// The clock is immutable after Start(), so concurrent Now() calls from
/// any thread are race-free.
class RtClock {
 public:
  explicit RtClock(double compression = 1.0) : compression_(compression) {
    CS_CHECK_MSG(compression_ > 0.0, "time compression must be positive");
  }

  /// Marks trace time zero. Call once, before any thread reads the clock.
  void Start() { start_ = std::chrono::steady_clock::now(); }

  /// Trace seconds elapsed since Start().
  SimTime Now() const {
    const auto wall = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(wall).count() * compression_;
  }

  /// The wall-clock time point at which trace time reaches `trace_t`
  /// (for sleep_until-style pacing with no cumulative drift).
  std::chrono::steady_clock::time_point WallDeadline(SimTime trace_t) const {
    return start_ + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(trace_t / compression_));
  }

  /// Converts a trace duration to a wall duration.
  std::chrono::steady_clock::duration WallDuration(SimTime trace_dt) const {
    return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(trace_dt / compression_));
  }

  double compression() const { return compression_; }

 private:
  double compression_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace ctrlshed

#endif  // CTRLSHED_RT_RT_CLOCK_H_
