#ifndef CTRLSHED_RT_SPSC_RING_H_
#define CTRLSHED_RT_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace ctrlshed {

/// Bounded lock-free single-producer/single-consumer ring buffer — the
/// ingress queue between one arrival thread and the RtEngine worker.
///
/// Exactly ONE thread may call TryPush and exactly ONE thread may call
/// TryPop (they may be different threads). Synchronization is a classic
/// two-index scheme: the producer publishes a slot with a release store of
/// `tail_`, the consumer acquires it before reading, and vice versa for
/// `head_`. Each side keeps a cached copy of the other side's index so the
/// hot path touches only its own cache line (no ping-pong until the ring
/// is actually near-full or near-empty).
///
/// TryPush returns false when the ring is full instead of blocking: the
/// caller counts the rejection as a drop, which feeds the loss-ratio
/// accounting (an overflowing ingress queue is load shedding by another
/// name, and the controller must see it).
template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 2).
  explicit SpscRing(size_t capacity) {
    CS_CHECK_MSG(capacity >= 1, "ring capacity must be at least 1");
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false (and leaves the ring unchanged) when
  /// full. Takes the value by value and moves it into the slot, so both
  /// lvalues (copied at the call site) and rvalues (moved all the way
  /// through) work without a second overload.
  bool TryPush(T value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= slots_.size()) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side, batched: pushes up to `n` values from `src` and
  /// returns how many were accepted (0 when full — the caller counts the
  /// rejected tail as drops). The whole run is published with a SINGLE
  /// release store of `tail_`, amortizing the fence and the consumer-side
  /// cache miss over the batch; at n == 1 it is exactly TryPush.
  size_t TryPushBatch(const T* src, size_t n) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    size_t space = slots_.size() - static_cast<size_t>(tail - cached_head_);
    if (space < n) {
      cached_head_ = head_.load(std::memory_order_acquire);
      space = slots_.size() - static_cast<size_t>(tail - cached_head_);
    }
    const size_t count = n < space ? n : space;
    for (size_t i = 0; i < count; ++i) slots_[(tail + i) & mask_] = src[i];
    if (count > 0) tail_.store(tail + count, std::memory_order_release);
    return count;
  }

  /// Consumer side. Returns false when empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, batched: pops up to `max` values into `out`, returning
  /// how many were taken (0 when empty). One release store of `head_`
  /// frees all consumed slots at once.
  size_t TryPopBatch(T* out, size_t max) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    size_t avail = static_cast<size_t>(cached_tail_ - head);
    if (avail < max) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = static_cast<size_t>(cached_tail_ - head);
    }
    const size_t count = max < avail ? max : avail;
    for (size_t i = 0; i < count; ++i) out[i] = std::move(slots_[(head + i) & mask_]);
    if (count > 0) head_.store(head + count, std::memory_order_release);
    return count;
  }

  /// Snapshot of the element count; exact only when both sides are quiet.
  size_t SizeApprox() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<size_t>(tail - head);
  }

  size_t capacity() const { return slots_.size(); }

 private:
  // 64 is the usual cache-line size; std::hardware_destructive_
  // interference_size is not implemented everywhere we build.
  static constexpr size_t kCacheLine = 64;

  // `slots_` itself (the vector header, read by both sides every
  // push/pop) is cold after construction, but without padding it would
  // share a cache line with `head_`'s line predecessor on some layouts;
  // the alignas on head_ below starts a fresh line, and the pad_ keeps
  // the header from being dragged into whatever precedes the ring object.
  char pad_[kCacheLine];
  std::vector<T> slots_;
  size_t mask_ = 0;

  alignas(kCacheLine) std::atomic<uint64_t> head_{0};  ///< Consumer index.
  alignas(kCacheLine) std::atomic<uint64_t> tail_{0};  ///< Producer index.
  alignas(kCacheLine) uint64_t cached_head_ = 0;  ///< Producer's view of head_.
  alignas(kCacheLine) uint64_t cached_tail_ = 0;  ///< Consumer's view of tail_.
};

}  // namespace ctrlshed

#endif  // CTRLSHED_RT_SPSC_RING_H_
