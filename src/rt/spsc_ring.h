#ifndef CTRLSHED_RT_SPSC_RING_H_
#define CTRLSHED_RT_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace ctrlshed {

/// Bounded lock-free single-producer/single-consumer ring buffer — the
/// ingress queue between one arrival thread and the RtEngine worker.
///
/// Exactly ONE thread may call TryPush and exactly ONE thread may call
/// TryPop (they may be different threads). Synchronization is a classic
/// two-index scheme: the producer publishes a slot with a release store of
/// `tail_`, the consumer acquires it before reading, and vice versa for
/// `head_`. Each side keeps a cached copy of the other side's index so the
/// hot path touches only its own cache line (no ping-pong until the ring
/// is actually near-full or near-empty).
///
/// TryPush returns false when the ring is full instead of blocking: the
/// caller counts the rejection as a drop, which feeds the loss-ratio
/// accounting (an overflowing ingress queue is load shedding by another
/// name, and the controller must see it).
template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 2).
  explicit SpscRing(size_t capacity) {
    CS_CHECK_MSG(capacity >= 1, "ring capacity must be at least 1");
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false (and leaves the ring unchanged) when
  /// full.
  bool TryPush(const T& value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= slots_.size()) return false;
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    *out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Snapshot of the element count; exact only when both sides are quiet.
  size_t SizeApprox() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<size_t>(tail - head);
  }

  size_t capacity() const { return slots_.size(); }

 private:
  // 64 is the usual cache-line size; std::hardware_destructive_
  // interference_size is not implemented everywhere we build.
  static constexpr size_t kCacheLine = 64;

  std::vector<T> slots_;
  size_t mask_ = 0;

  alignas(kCacheLine) std::atomic<uint64_t> head_{0};  ///< Consumer index.
  alignas(kCacheLine) std::atomic<uint64_t> tail_{0};  ///< Producer index.
  alignas(kCacheLine) uint64_t cached_head_ = 0;  ///< Producer's view of head_.
  alignas(kCacheLine) uint64_t cached_tail_ = 0;  ///< Consumer's view of tail_.
};

}  // namespace ctrlshed

#endif  // CTRLSHED_RT_SPSC_RING_H_
