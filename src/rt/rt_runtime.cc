#include "rt/rt_runtime.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "control/aurora_controller.h"
#include "rt/cpu_affinity.h"
#include "control/baseline_controller.h"
#include "control/ctrl_controller.h"
#include "control/pi_controller.h"
#include "engine/query_network.h"
#include "rt/rt_clock.h"
#include "rt/rt_loop.h"
#include "rt/rt_source.h"
#include "runner/networks.h"
#include "shedding/aurora_shedder.h"
#include "shedding/entry_shedder.h"
#include "workload/traces.h"

namespace ctrlshed {

namespace {
constexpr auto kMaxSleepChunk = std::chrono::milliseconds(5);

// Interruptible absolute sleep on the main thread: wakes early when the
// caller-provided stop flag (e.g. a signal handler's) flips true.
void SleepUntilWall(std::chrono::steady_clock::time_point deadline,
                    const std::atomic<bool>* stop) {
  for (;;) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return;
    const auto remaining = deadline - now;
    std::this_thread::sleep_for(
        remaining < std::chrono::steady_clock::duration(kMaxSleepChunk)
            ? remaining
            : std::chrono::steady_clock::duration(kMaxSleepChunk));
  }
}

bool StopRequested(const std::atomic<bool>* stop) {
  return stop != nullptr && stop->load(std::memory_order_relaxed);
}
}  // namespace

std::string RtConfigError(const RtRunConfig& config) {
  const ExperimentConfig& base = config.base;
  if (base.capacity_rate <= 0.0) {
    return "capacity must be positive";
  }
  if (base.estimation_noise != 0.0) {
    return "the rt runtime does not inject estimation noise (noise is a "
           "sim-only knob; real measurement noise comes free) — drop "
           "noise or use `ctrlshed run`";
  }
  if (base.use_queue_shedder && base.method == Method::kAurora) {
    return "the in-network queue shedder drives entry gates from "
           "ActuationPlans, which the Aurora quota shedder does not "
           "consume — use method=ctrl, baseline, or pi with queue_shed=1";
  }
  if (config.workers < 1 || config.workers > 64) {
    return "workers must be in [1, 64]";
  }
  if (config.time_compression <= 0.0) {
    return "time compression must be positive";
  }
  if (config.ring_capacity == 0) {
    return "ring capacity must be positive";
  }
  if (config.batch < 1 || config.batch > 4096) {
    return "batch must be in [1, 4096]";
  }
  std::string pin_error;
  ParsePinCpus(config.pin_cpus, &pin_error);
  if (!pin_error.empty()) return pin_error;
  return "";
}

RtRunResult RunRtExperiment(const RtRunConfig& config) {
  const ExperimentConfig& base = config.base;
  CS_CHECK_MSG(RtConfigError(config).empty(),
               "unsupported rt config (validate with RtConfigError first)");
  const int workers = config.workers;

  const double nominal_cost = base.headroom_true / base.capacity_rate;

  // The telemetry session outlives every thread that traces into it
  // (engine worker, controller, sources, this thread).
  std::unique_ptr<Telemetry> telemetry = Telemetry::Open(base.telemetry);
  TraceBuffer* main_buf =
      telemetry ? telemetry->RegisterThread("main") : nullptr;
  if (telemetry && !telemetry->dir().empty()) {
    // Post-mortem dumps land next to the run's other telemetry files.
    SetFlightDumpPath(telemetry->dir() + "/ctrlshed.flightdump.json");
  }
  if (telemetry) {
    // Everything the status lambda captures is immutable for the run, so
    // the server thread can render it without synchronization.
    const double duration = base.duration;
    const double period = base.period;
    const double compression = config.time_compression;
    const int n_workers = config.workers;
    telemetry->SetStatusSource([duration, period, compression, n_workers] {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "{\"mode\":\"rt\",\"workers\":%d,\"duration\":%g,"
                    "\"period\":%g,\"compression\":%g}",
                    n_workers, duration, period, compression);
      return std::string(buf);
    });
  }
  std::optional<ScopedSpan> phase;
  phase.emplace(main_buf, "setup");

  RtClock clock(config.time_compression);

  // Fig. 14 time-varying cost, ported to rt: one shared trace (same seed
  // stream as the sim wiring), sampled by each worker on its own clock as
  // the engine executes. RateTrace::At is read-only after construction, so
  // sharing one instance across worker threads is safe. Declared before
  // the engines so it outlives them.
  RateTrace cost_trace;
  CostMultiplierFn cost_multiplier;
  if (base.vary_cost) {
    cost_trace = MakeCostTrace(base.duration, base.cost_params,
                               base.seed + 1);
    const double cost_base = base.cost_params.base_ms;
    cost_multiplier = [&cost_trace, cost_base](SimTime t) {
      return cost_trace.At(t) / cost_base;
    };
  }

  // The partitioned plant: one network/engine pair per shard, each with
  // one local source (global source i is shard i's local source 0).
  std::vector<std::unique_ptr<QueryNetwork>> nets;
  std::vector<std::unique_ptr<RtEngine>> engines;
  nets.reserve(static_cast<size_t>(workers));
  engines.reserve(static_cast<size_t>(workers));
  std::string pin_error;
  const PinPlan pin_plan = ParsePinCpus(config.pin_cpus, &pin_error);
  for (int i = 0; i < workers; ++i) {
    nets.push_back(std::make_unique<QueryNetwork>());
    BuildIdentificationNetwork(nets.back().get(), nominal_cost);
    RtEngineOptions eopts;
    eopts.headroom = base.headroom_true;
    eopts.ring_capacity = config.ring_capacity;
    eopts.cost_mode = config.cost_mode;
    eopts.pacing_wall_seconds = config.pacing_wall_seconds;
    eopts.batch = config.batch;
    eopts.telemetry = telemetry.get();
    eopts.shard_index = i;
    eopts.per_shard_pump_metric = workers > 1;
    eopts.cost_multiplier = cost_multiplier;
    eopts.pin_cpu = pin_plan.CpuForShard(i);
    // A distinct seed stream from the entry shedders' (seed+2+7919i): the
    // worker's victim RNG must never share state across threads.
    eopts.queue_shed_seed = base.seed + 6 + 7919 * static_cast<uint64_t>(i);
    engines.push_back(std::make_unique<RtEngine>(
        nets.back().get(), &clock, /*num_sources=*/1, eopts));
  }

  // One controller drives the aggregate plant; its headroom belief is the
  // aggregate's effective headroom N*H (what the monitor reports against).
  const double headroom_agg = static_cast<double>(workers) * base.headroom_est;
  std::unique_ptr<LoadController> controller;
  switch (base.method) {
    case Method::kNone:
      break;
    case Method::kCtrl: {
      CtrlOptions opts;
      opts.gains = base.gains;
      opts.headroom = headroom_agg;
      opts.feedback = base.ctrl_feedback;
      opts.anti_windup = base.anti_windup;
      controller = std::make_unique<CtrlController>(opts);
      break;
    }
    case Method::kBaseline:
      controller = std::make_unique<BaselineController>(headroom_agg);
      break;
    case Method::kAurora:
      controller = std::make_unique<AuroraController>(headroom_agg);
      break;
    case Method::kPi:
      controller = std::make_unique<PiController>(headroom_agg);
      break;
  }

  // Per-shard entry shedders (decorrelated streams; i = 0 reproduces the
  // historical single-shedder seed).
  std::vector<std::unique_ptr<Shedder>> shedders;
  std::vector<RtShard> shards;
  for (int i = 0; i < workers; ++i) {
    RtShard shard;
    shard.engine = engines[static_cast<size_t>(i)].get();
    if (controller != nullptr) {
      if (base.method == Method::kAurora) {
        shedders.push_back(std::make_unique<AuroraQuotaShedder>());
      } else {
        shedders.push_back(
            std::make_unique<EntryShedder>(base.seed + 2 + 7919 * i));
      }
      shard.shedder = shedders.back().get();
    }
    shards.push_back(shard);
  }

  RtLoopOptions lopts;
  lopts.period = base.period;
  lopts.target_delay = base.target_delay;
  lopts.headroom = base.headroom_est;
  lopts.cost_ewma = base.cost_ewma;
  lopts.adapt_headroom = base.adapt_headroom;
  lopts.queue_shed = base.use_queue_shedder;
  lopts.cost_aware_shed = base.cost_aware_shedding;
  lopts.adaptive_quantum = config.batch_adaptive;
  lopts.telemetry = telemetry.get();
  RtLoop loop(std::move(shards), &clock, controller.get(), lopts);
  if (telemetry && telemetry->server() != nullptr) {
    // Lifetime: the explicit telemetry->Stop() below shuts the server
    // down before `loop` leaves scope (failures abort, never unwind).
    telemetry->server()->SetHealthCallback([&loop] {
      const HealthReport r = loop.Health();
      return std::make_pair(r.HttpStatus(), r.ToJson());
    });
  }
  if (base.departure_observer) {
    loop.SetDepartureObserver(base.departure_observer);
  }
  std::unique_ptr<RatePredictor> predictor;
  if (base.predictor != PredictorKind::kLastValue) {
    predictor = MakePredictor(base.predictor);
    loop.SetRatePredictor(predictor.get());
  }

  // The offered load splits evenly across N replay sources — the same
  // aggregate trace, each source drawing its 1/N slice with its own seed.
  // At N = 1 the trace is passed through unscaled (identical arrivals to
  // the historical runtime).
  const RateTrace full_trace = BuildArrivalTrace(base);
  std::vector<std::unique_ptr<RtArrivalSource>> sources;
  for (int i = 0; i < workers; ++i) {
    const RateTrace trace =
        workers == 1 ? full_trace
                     : full_trace.Scaled(1.0 / static_cast<double>(workers));
    sources.push_back(std::make_unique<RtArrivalSource>(
        i, trace, base.spacing, base.seed + 3 + i));
    sources.back()->SetTelemetry(telemetry.get());
  }

  // Setpoint schedule, applied by the main thread between waits.
  std::vector<std::pair<SimTime, double>> schedule = base.setpoint_schedule;
  std::sort(schedule.begin(), schedule.end());
  for (const auto& [when, yd] : schedule) {
    CS_CHECK_MSG(when >= 0.0 && when <= base.duration,
                 "setpoint change outside the run");
    CS_CHECK_MSG(yd > 0.0, "target delay must be positive");
  }

  const auto wall_start = std::chrono::steady_clock::now();
  clock.Start();
  loop.Start();
  for (auto& source : sources) {
    source->Start(&clock, [&loop](const Tuple* tuples, size_t n) {
      loop.OnArrivalBatch(tuples, n);
    });
  }

  phase.emplace(main_buf, "replay");
  for (const auto& [when, yd] : schedule) {
    SleepUntilWall(clock.WallDeadline(when), config.stop);
    if (StopRequested(config.stop)) break;
    loop.SetTargetDelay(yd);
  }
  SleepUntilWall(clock.WallDeadline(base.duration), config.stop);

  // Teardown order: sources first (no new arrivals), then the loop (which
  // stops the controller thread, then the engine workers).
  phase.emplace(main_buf, "teardown");
  for (auto& source : sources) source->Stop();
  loop.Stop();
  const auto wall_end = std::chrono::steady_clock::now();
  phase.reset();

  RtRunResult result;
  result.summary = loop.Summary();
  result.recorder = loop.recorder();
  result.arrival_trace = full_trace;
  result.nominal_cost = nominal_cost;
  result.ring_dropped = loop.ring_dropped();
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.workers = workers;
  for (size_t i = 0; i < engines.size(); ++i) {
    const RtSharedStats* stats = engines[i]->stats();
    RtShardSummary shard;
    shard.offered = stats->offered.load(std::memory_order_relaxed);
    shard.entry_shed = stats->entry_shed.load(std::memory_order_relaxed);
    shard.ring_dropped = stats->ring_dropped.load(std::memory_order_relaxed);
    shard.queue_shed = stats->queue_shed.load(std::memory_order_relaxed);
    shard.queue_shed_load =
        stats->queue_shed_load.load(std::memory_order_relaxed);
    shard.departed = stats->departed.load(std::memory_order_relaxed);
    shard.h_hat = loop.monitor().shard_h_hat()[i];
    shard.pump_intervals = engines[i]->pump_intervals();
    result.shards.push_back(std::move(shard));
    result.pump_intervals.Merge(engines[i]->pump_intervals());
  }
  result.actuation_lateness = loop.actuation_lateness();
  result.health = loop.Health();

  result.interrupted = StopRequested(config.stop);

  // Telemetry epilogue: every thread has joined, so a final drain sees
  // everything. The timeline files were streamed row by row through the
  // loop's TimelineSink path (complete even on an interrupted run).
  if (telemetry) {
    if (telemetry->server() != nullptr) {
      result.telemetry_port = telemetry->server()->port();
    }
    telemetry->Stop();
    result.timeline_rows = telemetry->timeline_rows();
    result.trace_events = telemetry->trace_events();
    result.trace_dropped = telemetry->trace_dropped();
    result.sse_clients = telemetry->sse_clients_accepted();
    result.sse_rows_published = telemetry->sse_rows_published();
    result.sse_rows_dropped = telemetry->sse_rows_dropped();
  }
  return result;
}

}  // namespace ctrlshed
