#include "rt/rt_source.h"

#include <chrono>
#include <cmath>
#include <string>
#include <utility>

#include "common/macros.h"
#include "telemetry/telemetry.h"

namespace ctrlshed {

namespace {
// Rates below this are treated as "no arrivals in this slot" (same
// threshold as the sim-side ArrivalSource).
constexpr double kMinRate = 1e-9;
// Longest uninterruptible sleep, so Stop() is honored promptly.
constexpr auto kMaxSleepChunk = std::chrono::milliseconds(5);
}  // namespace

RtArrivalSource::RtArrivalSource(int source_index, RateTrace trace,
                                 ArrivalSource::Spacing spacing, uint64_t seed)
    : source_index_(source_index),
      trace_(std::move(trace)),
      spacing_(spacing),
      rng_(seed) {
  CS_CHECK_MSG(!trace_.empty(), "arrival source needs a non-empty trace");
}

RtArrivalSource::~RtArrivalSource() { Stop(); }

void RtArrivalSource::SetTelemetry(Telemetry* telemetry) {
  CS_CHECK_MSG(!started_, "telemetry must be set before Start");
  telemetry_ = telemetry;
}

void RtArrivalSource::Start(const RtClock* clock, RtBatchSink sink) {
  CS_CHECK_MSG(!started_, "Start called twice");
  CS_CHECK(clock != nullptr);
  CS_CHECK(sink != nullptr);
  started_ = true;
  clock_ = clock;
  sink_ = std::move(sink);
  thread_ = std::thread([this] { Run(); });
}

void RtArrivalSource::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

// Same walk as ArrivalSource::NextArrival: slot-by-slot with re-evaluation
// at boundaries so rate changes take effect promptly.
SimTime RtArrivalSource::NextArrival(SimTime t) {
  const SimTime end = trace_.Duration();
  SimTime now = t;
  while (now < end) {
    const double rate = trace_.At(now);
    const SimTime width = trace_.slot_width();
    if (rate < kMinRate) {
      now = (std::floor(now / width) + 1.0) * width;
      continue;
    }
    const double gap = (spacing_ == ArrivalSource::Spacing::kDeterministic)
                           ? 1.0 / rate
                           : rng_.Exponential(rate);
    const SimTime candidate = now + gap;
    const SimTime boundary = (std::floor(now / width) + 1.0) * width;
    if (candidate > boundary && trace_.At(boundary) != rate) {
      now = boundary;
      continue;
    }
    return candidate;
  }
  return end + 1.0;  // exhausted
}

void RtArrivalSource::Run() {
  using Clock = std::chrono::steady_clock;
  if (telemetry_ != nullptr) {
    trace_buf_ = telemetry_->RegisterThread("rt.source" +
                                            std::to_string(source_index_));
  }
  SimTime t = NextArrival(0.0);
  const SimTime end = trace_.Duration();

  while (!stop_.load(std::memory_order_acquire) && t <= end) {
    // Sleep (in interruptible chunks) until the arrival is due; arrivals
    // already in the past are delivered immediately, in order — the replay
    // catches up rather than silently thinning the trace.
    const auto deadline = clock_->WallDeadline(t);
    while (!stop_.load(std::memory_order_acquire)) {
      const auto now = Clock::now();
      if (now >= deadline) break;
      const auto remaining = deadline - now;
      std::this_thread::sleep_for(
          remaining < kMaxSleepChunk
              ? std::chrono::duration_cast<Clock::duration>(remaining)
              : Clock::duration(kMaxSleepChunk));
    }
    if (stop_.load(std::memory_order_acquire)) break;

    // Gather every arrival that is already due into one batch: on-time
    // replay wakes per arrival (n == 1, the seed-identical path), while a
    // catch-up burst after an oversleep moves in bulk. The payload rng
    // draws stay per tuple in the seed's order, so the generated stream
    // is identical regardless of how it is chunked.
    Tuple batch[kRtArrivalBatchMax];
    size_t n = 0;
    for (;;) {
      Tuple& tup = batch[n];
      tup = Tuple{};
      tup.source = source_index_;
      tup.arrival_time = t;
      tup.value = rng_.Uniform();
      tup.aux = rng_.Uniform();
      ++n;
      t = NextArrival(t);
      if (n == kRtArrivalBatchMax || t > end) break;
      if (Clock::now() < clock_->WallDeadline(t)) break;
    }
    {
      ScopedSpan span(trace_buf_, "deliver");
      sink_(batch, n);
    }
    generated_.fetch_add(n, std::memory_order_relaxed);
  }
  exhausted_.store(true, std::memory_order_release);
}

}  // namespace ctrlshed
