#ifndef CTRLSHED_RT_RT_MONITOR_H_
#define CTRLSHED_RT_RT_MONITOR_H_

#include <cstdint>

#include "control/controller.h"
#include "rt/rt_stats.h"

namespace ctrlshed {

/// Options of the real-time measurement process; mirrors MonitorOptions
/// minus the simulation-only knobs (measurement noise is no longer
/// injected — the real runtime has real noise).
struct RtMonitorOptions {
  SimTime period = 1.0;    ///< Nominal control period T, trace seconds.
  double headroom = 0.97;  ///< H estimate used in the Eq. (11) delay estimate.
  /// EWMA weight of the newest per-period cost measurement in (0,1];
  /// 1 = no smoothing (the paper's "estimate c(k) with c(k-1)").
  double cost_ewma = 1.0;
  /// Online headroom estimation (see Monitor::adapt_headroom).
  bool adapt_headroom = false;
  double headroom_ewma = 0.2;
};

/// The monitor of the real-time feedback loop: the same per-period math as
/// the sim-side Monitor (Eq. 11 delay estimate from the virtual queue
/// length, measured cost c(k) = nominal * busy/drained, drain rate fout),
/// but computed from RtSample snapshots of the shared atomics instead of
/// poking the engine object — the engine lives on another thread.
///
/// Real-time wrinkle: the controller thread's wakeups jitter, so rates are
/// formed over the *actual* elapsed trace time between samples, not the
/// nominal T. The PeriodMeasurement still reports the nominal period
/// (controller gains are designed for T; the jitter is orders of magnitude
/// smaller).
///
/// Not thread-safe: owned and called by the controller thread only (or a
/// test driving it with a fake clock).
class RtMonitor {
 public:
  /// `nominal_entry_cost` is the network's model constant c (seconds), the
  /// same value Engine::NominalEntryCost reports.
  RtMonitor(double nominal_entry_cost, RtMonitorOptions options);

  /// Forms the measurement for the period ending at `s.now`.
  PeriodMeasurement Sample(const RtSample& s, double target_delay);

  double CostEstimate() const { return cost_estimate_; }
  double HeadroomEstimate() const { return headroom_estimate_; }
  const RtMonitorOptions& options() const { return options_; }

 private:
  double nominal_entry_cost_;
  RtMonitorOptions options_;

  int k_ = 0;
  RtSample prev_{};  ///< Previous snapshot (zeros before the first sample).
  double prev_queue_ = 0.0;
  double cost_estimate_ = 0.0;
  double headroom_estimate_ = 0.0;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_RT_RT_MONITOR_H_
