#ifndef CTRLSHED_RT_RT_MONITOR_H_
#define CTRLSHED_RT_RT_MONITOR_H_

#include <cstdint>
#include <vector>

#include "control/controller.h"
#include "control/period_math.h"
#include "rt/rt_stats.h"
#include "telemetry/health.h"

namespace ctrlshed {

/// Options of the real-time measurement process; mirrors MonitorOptions
/// minus the simulation-only knobs (measurement noise is no longer
/// injected — the real runtime has real noise).
struct RtMonitorOptions {
  SimTime period = 1.0;    ///< Nominal control period T, trace seconds.
  /// PER-WORKER H estimate used in the Eq. (11) delay estimate. An
  /// N-shard monitor presents the controller with the aggregate plant's
  /// effective headroom N*H.
  double headroom = 0.97;
  /// EWMA weight of the newest per-period cost measurement in (0,1];
  /// 1 = no smoothing (the paper's "estimate c(k) with c(k-1)").
  double cost_ewma = 1.0;
  /// Online headroom estimation (see Monitor::adapt_headroom).
  bool adapt_headroom = false;
  double headroom_ewma = 0.2;
};

/// The monitor of the real-time feedback loop: the same per-period math as
/// the sim-side Monitor (shared via control/period_math.h — Eq. 11 delay
/// estimate from the virtual queue length, measured cost
/// c(k) = nominal * busy/drained, drain rate fout), but computed from
/// RtSample snapshots of the shared atomics instead of poking the engine
/// objects — the engines live on other threads.
///
/// Sharded plants: with N > 1 shards the monitor aggregates one snapshot
/// per shard into a single virtual plant the unchanged controller can
/// drive — q = Σ q_i, fout = Σ fout_i, a drain-weighted cost
/// c = nominal * Σ busy_i / Σ drained_i, and an Eq. (11) estimate against
/// the aggregate's effective headroom N*H (N workers each grant H of a
/// CPU, so the aggregate drains at N*H/c tuples per second). Per-shard
/// offered rates and queue lengths of the last period are kept for the
/// actuation fan-out and the telemetry export.
///
/// Real-time wrinkle: the controller thread's wakeups jitter, so rates are
/// formed over the *actual* elapsed trace time between samples, not the
/// nominal T. The PeriodMeasurement still reports the nominal period
/// (controller gains are designed for T; the jitter is orders of magnitude
/// smaller).
///
/// Not thread-safe: owned and called by the controller thread only (or a
/// test driving it with a fake clock).
class RtMonitor {
 public:
  /// `nominal_entry_cost` is the model constant c (seconds) each shard's
  /// Engine::NominalEntryCost reports (shards are homogeneous).
  RtMonitor(double nominal_entry_cost, int num_shards,
            RtMonitorOptions options);

  /// Single-shard convenience (the N = 1 plant).
  RtMonitor(double nominal_entry_cost, RtMonitorOptions options)
      : RtMonitor(nominal_entry_cost, 1, options) {}

  /// Forms the aggregate measurement for the period ending at the common
  /// snapshot time. `shards` holds one snapshot per shard, all taken at
  /// the same `now`, in shard order; its size must equal num_shards().
  PeriodMeasurement Sample(const std::vector<RtSample>& shards,
                           double target_delay);

  /// Single-shard convenience.
  PeriodMeasurement Sample(const RtSample& s, double target_delay);

  double CostEstimate() const { return math_.CostEstimate(); }
  double HeadroomEstimate() const { return math_.HeadroomEstimate(); }

  /// Counter deltas the last Sample consumed — exactly what a cluster node
  /// reports upstream so the cluster plant can re-derive the aggregate
  /// measurement without a second cumulative-differencing pass.
  const PeriodDeltas& last_deltas() const { return math_.last_deltas(); }
  int num_shards() const { return num_shards_; }
  const RtMonitorOptions& options() const { return options_; }

  // --- Last period's per-shard decomposition (valid after a Sample) -----

  /// Offered rate of each shard over the last period (tuples/second);
  /// the actuation fan-out weights the admitted rate by these.
  const std::vector<double>& shard_fin() const { return shard_fin_; }

  /// Virtual queue length of each shard at the last sample.
  const std::vector<double>& shard_queues() const { return shard_queues_; }

  /// Measured per-worker headroom H_hat of each shard — base load drained
  /// per busy second, EWMA-smoothed (see HeadroomTracker). Report-only;
  /// NaN until a shard's first busy period.
  const std::vector<double>& shard_h_hat() const { return shard_h_hat_; }

  /// Aggregate measured per-worker headroom: Σ drained / Σ busy across
  /// shards, which recovers the per-worker H (not N*H) at any load level.
  double h_hat() const { return h_hat_tracker_.value(); }

 private:
  double nominal_entry_cost_;
  int num_shards_;
  RtMonitorOptions options_;
  PeriodMath math_;

  SimTime prev_now_ = 0.0;
  std::vector<uint64_t> prev_shard_offered_;
  std::vector<double> prev_shard_busy_;
  std::vector<double> prev_shard_drained_;
  double prev_delay_sum_ = 0.0;
  uint64_t prev_delay_count_ = 0;

  std::vector<double> shard_fin_;
  std::vector<double> shard_queues_;
  std::vector<HeadroomTracker> shard_h_hat_trackers_;
  std::vector<double> shard_h_hat_;
  HeadroomTracker h_hat_tracker_;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_RT_RT_MONITOR_H_
