#ifndef CTRLSHED_RT_RT_SOURCE_H_
#define CTRLSHED_RT_RT_SOURCE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "common/rng.h"
#include "engine/tuple.h"
#include "rt/rt_clock.h"
#include "workload/arrival_source.h"
#include "workload/rate_trace.h"

namespace ctrlshed {

class Telemetry;
class TraceBuffer;

/// Largest run of already-due arrivals a replay thread delivers per sink
/// call. Catch-up bursts (oversleeps, overload) arrive in batches of up to
/// this many tuples; on-time replay wakes per arrival and delivers runs of
/// one, which keeps the batched path behaviorally identical to the seed's
/// per-tuple delivery whenever the replay is keeping up.
inline constexpr size_t kRtArrivalBatchMax = 64;

/// Batched delivery callback: `n` in [1, kRtArrivalBatchMax] tuples from
/// one source in arrival order.
using RtBatchSink = std::function<void(const Tuple* tuples, size_t n)>;

/// Replays one stream's rate trace against the wall clock: a thread that
/// draws the same arrival process as the sim-side ArrivalSource (same
/// spacing modes, same slot-boundary thinning, same payload distribution)
/// and delivers each tuple at its wall deadline — trace time mapped
/// through the RtClock's compression factor.
///
/// The sink runs on this source's thread; with one RtArrivalSource per
/// source index the per-source SPSC ingress contract holds by
/// construction. Tuples are stamped with their scheduled trace arrival
/// time (the instant they hit the system boundary), so delay statistics
/// include any backlog the replay itself accumulates when the thread
/// oversleeps.
class RtArrivalSource {
 public:
  RtArrivalSource(int source_index, RateTrace trace,
                  ArrivalSource::Spacing spacing, uint64_t seed);
  ~RtArrivalSource();

  RtArrivalSource(const RtArrivalSource&) = delete;
  RtArrivalSource& operator=(const RtArrivalSource&) = delete;

  /// Installs a telemetry session (non-owning; must outlive the source).
  /// The replay thread registers itself and traces a span per delivery.
  /// Must be called before Start.
  void SetTelemetry(Telemetry* telemetry);

  /// Launches the replay thread. `clock` must be started and outlive this
  /// source; `sink` is invoked on the replay thread.
  void Start(const RtClock* clock, RtBatchSink sink);

  /// Signals the thread and joins it. Idempotent.
  void Stop();

  /// True once the trace has been replayed to its end.
  bool exhausted() const { return exhausted_.load(std::memory_order_acquire); }

  /// Tuples delivered so far (monotonic, any thread may read).
  uint64_t generated() const {
    return generated_.load(std::memory_order_relaxed);
  }

  int source_index() const { return source_index_; }
  const RateTrace& trace() const { return trace_; }

 private:
  SimTime NextArrival(SimTime t);
  void Run();

  int source_index_;
  RateTrace trace_;
  ArrivalSource::Spacing spacing_;
  Rng rng_;

  const RtClock* clock_ = nullptr;
  RtBatchSink sink_;
  Telemetry* telemetry_ = nullptr;
  TraceBuffer* trace_buf_ = nullptr;  ///< Replay-thread-owned.
  std::atomic<bool> stop_{false};
  std::atomic<bool> exhausted_{false};
  std::atomic<uint64_t> generated_{0};
  std::thread thread_;
  bool started_ = false;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_RT_RT_SOURCE_H_
