#include "rt/rt_monitor.h"

#include <algorithm>

#include "common/macros.h"

namespace ctrlshed {

namespace {
PeriodMathOptions ToMathOptions(const RtMonitorOptions& o, int num_shards) {
  PeriodMathOptions mo;
  mo.period = o.period;
  // The aggregate of N workers, each granted H of a CPU, is one plant
  // with effective headroom N*H (and an online estimate that may climb
  // to N full CPUs of work per second).
  mo.headroom = static_cast<double>(num_shards) * o.headroom;
  mo.max_headroom = static_cast<double>(num_shards);
  mo.cost_ewma = o.cost_ewma;
  mo.adapt_headroom = o.adapt_headroom;
  mo.headroom_ewma = o.headroom_ewma;
  return mo;
}

int CheckedShards(int num_shards) {
  CS_CHECK_MSG(num_shards >= 1, "need at least one shard");
  return num_shards;
}
}  // namespace

RtMonitor::RtMonitor(double nominal_entry_cost, int num_shards,
                     RtMonitorOptions options)
    : nominal_entry_cost_(nominal_entry_cost),
      num_shards_(CheckedShards(num_shards)),
      options_(options),
      math_(nominal_entry_cost, ToMathOptions(options, num_shards)),
      prev_shard_offered_(static_cast<size_t>(num_shards), 0),
      prev_shard_busy_(static_cast<size_t>(num_shards), 0.0),
      prev_shard_drained_(static_cast<size_t>(num_shards), 0.0),
      shard_fin_(static_cast<size_t>(num_shards), 0.0),
      shard_queues_(static_cast<size_t>(num_shards), 0.0),
      shard_h_hat_trackers_(static_cast<size_t>(num_shards)),
      shard_h_hat_(static_cast<size_t>(num_shards),
                   std::numeric_limits<double>::quiet_NaN()) {
  CS_CHECK_MSG(options_.headroom > 0.0 && options_.headroom <= 1.0,
               "per-worker headroom must be in (0,1]");
}

PeriodMeasurement RtMonitor::Sample(const std::vector<RtSample>& shards,
                                    double target_delay) {
  CS_CHECK_MSG(shards.size() == static_cast<size_t>(num_shards_),
               "one snapshot per shard required");
  const SimTime now = shards[0].now;
  CS_CHECK_MSG(now > prev_now_, "samples must move forward in time");
  // Rates use the actual elapsed trace time; the controller sees the
  // nominal period its gains were designed for (PeriodMath handles that).
  const double elapsed = now - prev_now_;

  PeriodCounters pc;
  pc.now = now;
  double delay_sum = 0.0;
  uint64_t delay_count = 0;
  double delta_busy = 0.0;
  double delta_drained = 0.0;
  for (size_t i = 0; i < shards.size(); ++i) {
    const RtSample& s = shards[i];
    CS_CHECK_MSG(s.now == now, "shard snapshots must share one sample time");
    pc.offered += s.offered;
    pc.admitted += s.admitted;
    pc.drained_base_load += s.drained_base_load;
    pc.busy_seconds += s.busy_seconds;
    delay_sum += s.delay_sum;
    delay_count += s.delay_count;

    // Per-shard virtual queue length from the outstanding static load,
    // with the same empty-queue residue clamp as Engine::VirtualQueueLength.
    const double q =
        s.queued_tuples == 0
            ? 0.0
            : std::max(0.0, s.outstanding_base_load / nominal_entry_cost_);
    shard_queues_[i] = q;
    pc.queue += q;

    shard_fin_[i] =
        static_cast<double>(s.offered - prev_shard_offered_[i]) / elapsed;
    prev_shard_offered_[i] = s.offered;

    // Measured per-worker headroom: base load this shard drained per busy
    // second over the period (report-only — the control law keeps the
    // configured H).
    shard_h_hat_[i] = shard_h_hat_trackers_[i].Update(
        s.drained_base_load - prev_shard_drained_[i],
        s.busy_seconds - prev_shard_busy_[i]);
    delta_drained += s.drained_base_load - prev_shard_drained_[i];
    delta_busy += s.busy_seconds - prev_shard_busy_[i];
    prev_shard_busy_[i] = s.busy_seconds;
    prev_shard_drained_[i] = s.drained_base_load;
  }
  h_hat_tracker_.Update(delta_drained, delta_busy);
  pc.delay_sum = delay_sum - prev_delay_sum_;
  pc.delay_count = delay_count - prev_delay_count_;
  prev_delay_sum_ = delay_sum;
  prev_delay_count_ = delay_count;
  prev_now_ = now;

  return math_.Sample(pc, target_delay, elapsed);
}

PeriodMeasurement RtMonitor::Sample(const RtSample& s, double target_delay) {
  CS_CHECK_MSG(num_shards_ == 1,
               "single-sample Sample on a multi-shard monitor");
  return Sample(std::vector<RtSample>{s}, target_delay);
}

}  // namespace ctrlshed
