#include "rt/rt_monitor.h"

#include <algorithm>

#include "common/macros.h"

namespace ctrlshed {

RtMonitor::RtMonitor(double nominal_entry_cost, RtMonitorOptions options)
    : nominal_entry_cost_(nominal_entry_cost), options_(options) {
  CS_CHECK_MSG(nominal_entry_cost_ > 0.0, "nominal cost must be positive");
  CS_CHECK_MSG(options_.period > 0.0, "period must be positive");
  CS_CHECK_MSG(options_.headroom > 0.0 && options_.headroom <= 1.0,
               "headroom must be in (0,1]");
  CS_CHECK_MSG(options_.cost_ewma > 0.0 && options_.cost_ewma <= 1.0,
               "cost_ewma must be in (0,1]");
  CS_CHECK_MSG(options_.headroom_ewma > 0.0 && options_.headroom_ewma <= 1.0,
               "headroom_ewma must be in (0,1]");
  // Until the first measurement arrives, fall back to the static catalog
  // estimate — same bootstrap as the sim Monitor.
  cost_estimate_ = nominal_entry_cost_;
  headroom_estimate_ = options_.headroom;
}

PeriodMeasurement RtMonitor::Sample(const RtSample& s, double target_delay) {
  CS_CHECK_MSG(s.now > prev_.now, "samples must move forward in time");
  CS_CHECK_MSG(s.offered >= prev_.offered, "offered counter went backwards");
  // Rates use the actual elapsed trace time; the controller sees the
  // nominal period its gains were designed for.
  const double elapsed = s.now - prev_.now;
  const double T = options_.period;

  PeriodMeasurement m;
  m.k = ++k_;
  m.t = s.now;
  m.period = T;
  m.target_delay = target_delay;

  m.fin = static_cast<double>(s.offered - prev_.offered) / elapsed;
  m.fin_forecast = m.fin;  // the loop overrides this when a predictor is set
  m.admitted = static_cast<double>(s.admitted - prev_.admitted) / elapsed;

  const double drained = s.drained_base_load - prev_.drained_base_load;
  const double busy = s.busy_seconds - prev_.busy_seconds;
  m.fout = drained / nominal_entry_cost_ / elapsed;

  // Measured per-tuple cost: CPU seconds consumed per entry-tuple
  // equivalent drained. Only meaningful when enough work was processed.
  if (drained > nominal_entry_cost_) {
    const double measured = nominal_entry_cost_ * busy / drained;
    cost_estimate_ = options_.cost_ewma * measured +
                     (1.0 - options_.cost_ewma) * cost_estimate_;
  }
  m.cost = cost_estimate_;

  // Virtual queue length from the outstanding static load, with the same
  // empty-queue residue clamp as Engine::VirtualQueueLength.
  m.queue = s.queued_tuples == 0
                ? 0.0
                : std::max(0.0, s.outstanding_base_load / nominal_entry_cost_);

  // Online headroom estimate: with queued work at both ends of the period
  // the CPU never idled, so work done per trace second IS the headroom.
  if (options_.adapt_headroom && m.queue > 1.0 && prev_queue_ > 1.0 &&
      busy > 0.0) {
    const double measured_h = std::min(1.0, busy / elapsed);
    headroom_estimate_ = options_.headroom_ewma * measured_h +
                         (1.0 - options_.headroom_ewma) * headroom_estimate_;
  }
  prev_queue_ = m.queue;

  const double h =
      options_.adapt_headroom ? headroom_estimate_ : options_.headroom;
  m.y_hat = (m.queue + 1.0) * m.cost / h;

  const uint64_t departures = s.delay_count - prev_.delay_count;
  if (departures > 0) {
    m.y_measured =
        (s.delay_sum - prev_.delay_sum) / static_cast<double>(departures);
    m.has_y_measured = true;
  }

  prev_ = s;
  return m;
}

}  // namespace ctrlshed
