#ifndef CTRLSHED_RT_CPU_AFFINITY_H_
#define CTRLSHED_RT_CPU_AFFINITY_H_

#include <string>
#include <vector>

namespace ctrlshed {

/// Number of CPUs the process may run on (>= 1). Falls back to 1 when the
/// platform gives no answer.
int NumCpus();

/// Pins the CALLING thread to the single CPU `cpu`. Returns true on
/// success; false (and leaves affinity untouched) when `cpu` is out of
/// range or the platform does not support affinity — pinning is a
/// performance hint, never a correctness requirement, so callers treat a
/// false as "run unpinned".
bool PinCurrentThreadToCpu(int cpu);

/// Parsed form of a `pin_cpus=` knob.
struct PinPlan {
  bool enabled = false;
  /// Explicit CPU list; empty with enabled=true means "auto": shard i
  /// takes CPU i % NumCpus().
  std::vector<int> cpus;

  /// CPU for shard `shard_index` under this plan, or -1 when disabled.
  int CpuForShard(int shard_index) const;
};

/// Parses a pin_cpus knob value: "" / "0" / "off" disable, "auto" (and
/// "1", the rt_soak-style boolean) enable round-robin over NumCpus(), and
/// a comma list like "0,2,4" pins shard i to list[i % len]. On a malformed
/// value (non-numeric entry, negative CPU) returns a plan with
/// enabled=false and fills `*error`; `*error` stays empty on success.
PinPlan ParsePinCpus(const std::string& value, std::string* error);

}  // namespace ctrlshed

#endif  // CTRLSHED_RT_CPU_AFFINITY_H_
