#include "rt/rt_loop.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/macros.h"
#include "rt/adaptive_quantum.h"
#include "rt/rt_source.h"

namespace ctrlshed {

namespace {
// Longest uninterruptible sleep of the controller thread, so Stop() is
// honored promptly even with long control periods.
constexpr auto kMaxSleepChunk = std::chrono::milliseconds(5);

std::vector<RtShard> CheckedShards(std::vector<RtShard> shards,
                                   const LoadController* controller) {
  CS_CHECK_MSG(!shards.empty(), "need at least one shard");
  for (const RtShard& s : shards) {
    CS_CHECK(s.engine != nullptr);
    CS_CHECK_MSG(s.engine->NominalEntryCost() ==
                     shards[0].engine->NominalEntryCost(),
                 "shards must be homogeneous (same nominal entry cost)");
    if (controller != nullptr) CS_CHECK(s.shedder != nullptr);
  }
  return shards;
}

RtMonitorOptions ToMonitorOptions(const RtLoopOptions& options) {
  RtMonitorOptions mo;
  mo.period = options.period;
  mo.headroom = options.headroom;
  mo.cost_ewma = options.cost_ewma;
  mo.adapt_headroom = options.adapt_headroom;
  return mo;
}
}  // namespace

RtLoop::RtLoop(std::vector<RtShard> shards, const RtClock* clock,
               LoadController* controller, RtLoopOptions options)
    : shards_(CheckedShards(std::move(shards), controller)),
      clock_(clock),
      controller_(controller),
      options_(options),
      monitor_(shards_[0].engine->NominalEntryCost(),
               static_cast<int>(shards_.size()), ToMonitorOptions(options)),
      qos_(options.target_delay),
      planner_(ActuationPlannerOptions{shards_[0].engine->NominalEntryCost(),
                                       options.queue_shed,
                                       options.cost_aware_shed}),
      samples_(shards_.size()),
      shedder_mutexes_(new std::mutex[shards_.size()]),
      target_delay_(options.target_delay) {
  CS_CHECK(clock_ != nullptr);
  CS_CHECK_MSG(options_.period > 0.0, "period must be positive");
  if (options_.adaptive_quantum) {
    shard_quanta_.reserve(shards_.size());
    for (const RtShard& s : shards_) {
      shard_quanta_.push_back(s.engine->options().batch);
    }
  }
}

RtLoop::RtLoop(RtEngine* engine, const RtClock* clock,
               LoadController* controller, Shedder* shedder,
               RtLoopOptions options)
    : RtLoop(std::vector<RtShard>{{engine, shedder}}, clock, controller,
             options) {}

RtLoop::~RtLoop() { Stop(); }

void RtLoop::SetDepartureObserver(DepartureCallback observer) {
  CS_CHECK_MSG(!started_, "observer must be set before Start");
  observer_ = std::move(observer);
}

void RtLoop::SetRatePredictor(RatePredictor* predictor) {
  CS_CHECK_MSG(!started_, "predictor must be set before Start");
  predictor_ = predictor;
}

void RtLoop::Start() {
  CS_CHECK_MSG(!started_, "Start called twice");
  started_ = true;

  // Departure fan-in runs on the N engine worker threads, serialized by
  // the departure mutex (uncontended at N = 1). The setpoint is re-read
  // per departure so runtime setpoint changes are judged like the sim
  // loop judges them: against the setpoint in force at departure.
  for (const RtShard& shard : shards_) {
    shard.engine->SetDepartureCallback([this](const Departure& d) {
      std::lock_guard<std::mutex> lock(departure_mutex_);
      const double yd = target_delay_.load(std::memory_order_relaxed);
      if (yd != qos_.target_delay()) qos_.SetTargetDelay(yd);
      qos_.OnDeparture(d);
      if (observer_) observer_(d);
    });
  }

  for (const RtShard& shard : shards_) shard.engine->Start();
  controller_thread_ = std::thread([this] { ControllerLoop(); });
}

void RtLoop::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stop_.store(true, std::memory_order_release);
  if (controller_thread_.joinable()) controller_thread_.join();
  for (const RtShard& shard : shards_) shard.engine->Stop();
}

void RtLoop::OnArrival(const Tuple& t) { OnArrivalBatch(&t, 1); }

void RtLoop::OnArrivalBatch(const Tuple* tuples, size_t n) {
  if (n == 0) return;
  // Hash partitioning: global source s lives on shard s % N as that
  // engine's local source s / N. The global->local remap keeps the
  // one-producer-per-ring SPSC contract intact (a batch comes from one
  // source thread, so the whole batch lands on one shard).
  const size_t shard_idx =
      static_cast<size_t>(tuples[0].source) % shards_.size();
  const RtShard& shard = shards_[shard_idx];
  RtSharedStats* stats = shard.engine->stats();
  stats->offered.fetch_add(n, std::memory_order_relaxed);
  const int local_source =
      tuples[0].source / static_cast<int>(shards_.size());

  // Stage the admitted survivors (source remapped) and push them with one
  // ring publish; chunked so callers may exceed kRtArrivalBatchMax.
  Tuple admitted[kRtArrivalBatchMax];
  uint8_t admit_mask[kRtArrivalBatchMax];
  for (size_t base = 0; base < n;) {
    const size_t chunk_end =
        n - base < kRtArrivalBatchMax ? n : base + kRtArrivalBatchMax;
    const size_t chunk_n = chunk_end - base;
    for (size_t i = base; i < chunk_end; ++i) {
      CS_CHECK_MSG(tuples[i].source == tuples[0].source,
                   "a batch must come from a single source");
    }
    size_t m = 0;
    uint64_t shed = 0;
    if (shard.shedder != nullptr && controller_ != nullptr) {
      {
        // One batched decision under the mutex (coin-flip shedders draw
        // their RNG stream and compare branch-free); the survivor
        // compaction below runs outside the critical section.
        std::lock_guard<std::mutex> lock(shedder_mutexes_[shard_idx]);
        shard.shedder->AdmitBatch(tuples + base, chunk_n, admit_mask);
      }
      for (size_t i = 0; i < chunk_n; ++i) {
        admitted[m] = tuples[base + i];
        admitted[m].source = local_source;
        m += admit_mask[i] != 0;
      }
      shed = chunk_n - m;
    } else {
      for (size_t i = 0; i < chunk_n; ++i) {
        admitted[i] = tuples[base + i];
        admitted[i].source = local_source;
      }
      m = chunk_n;
    }
    if (shed > 0) stats->entry_shed.fetch_add(shed, std::memory_order_relaxed);
    shard.engine->OfferBatch(admitted, m);  // a full ring counts its drops
    base = chunk_end;
  }
}

void RtLoop::SetTargetDelay(double yd) {
  CS_CHECK_MSG(yd > 0.0, "target delay must be positive");
  target_delay_.store(yd, std::memory_order_relaxed);
}

void RtLoop::ControllerLoop() {
  if (options_.telemetry != nullptr) {
    trace_buf_ = options_.telemetry->RegisterThread("rt.controller");
    MetricsRegistry* reg = options_.telemetry->metrics();
    lateness_metric_ = reg->GetHistogram("rt.actuation_lateness_s");
    queue_gauge_ = reg->GetGauge("rt.queue");
    y_hat_gauge_ = reg->GetGauge("rt.y_hat");
    alpha_gauge_ = reg->GetGauge("rt.alpha");
    h_hat_gauge_ = reg->GetGauge("rt.h_hat");
    health_gauges_.Init(reg);
    if (shards_.size() > 1) {
      for (size_t i = 0; i < shards_.size(); ++i) {
        const std::string prefix = "rt.shard" + std::to_string(i);
        shard_queue_gauges_.push_back(reg->GetGauge(prefix + ".queue"));
        shard_alpha_gauges_.push_back(reg->GetGauge(prefix + ".alpha"));
        shard_h_hat_gauges_.push_back(reg->GetGauge(prefix + ".h_hat"));
      }
    }
  }
  int k = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    ++k;
    const auto deadline =
        clock_->WallDeadline(static_cast<SimTime>(k) * options_.period);
    while (!stop_.load(std::memory_order_acquire)) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      const auto remaining = deadline - now;
      std::this_thread::sleep_for(
          remaining < std::chrono::steady_clock::duration(kMaxSleepChunk)
              ? remaining
              : std::chrono::steady_clock::duration(kMaxSleepChunk));
    }
    if (stop_.load(std::memory_order_acquire)) break;
    // Actuation jitter: how late past the period boundary this tick runs.
    const double lateness =
        std::max(0.0, std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - deadline)
                          .count());
    ControlTick(clock_->Now(), lateness);
  }
}

void RtLoop::ControlTick(SimTime now, double lateness_wall) {
  ScopedSpan tick_span(trace_buf_, "control_tick");
  PeriodMeasurement m;
  {
    // The aggregation barrier: every shard is snapshotted at the same
    // trace instant, so the monitor folds a consistent cut of the
    // partitioned plant (per-shard skew stays bounded by one pump).
    ScopedSpan sample_span(trace_buf_, "sample");
    for (size_t i = 0; i < shards_.size(); ++i) {
      samples_[i] = shards_[i].engine->stats()->Snapshot(now);
    }
    m = monitor_.Sample(samples_,
                        target_delay_.load(std::memory_order_relaxed));
  }
  if (predictor_ != nullptr) m.fin_forecast = predictor_->Observe(m.fin);
  if (options_.adaptive_quantum) {
    // Adaptive scheduler quantum: one policy step per shard from this
    // period's delay estimate and that shard's backlog, posted through the
    // lone plan_quantum atomic (the worker picks it up at its next pump).
    // The configured batch is the floor — adaptation only coarsens
    // interleaving beyond it under backlog, never below it.
    for (size_t i = 0; i < shards_.size(); ++i) {
      const QuantumSignals sig{m.y_hat, m.target_delay,
                               samples_[i].queued_tuples};
      const QuantumLimits lim{shards_[i].engine->options().batch, 4096};
      const size_t next = NextQuantum(shard_quanta_[i], sig, lim);
      if (next != shard_quanta_[i]) {
        shard_quanta_[i] = next;
        shards_[i].engine->stats()->plan_quantum.store(
            static_cast<uint64_t>(next), std::memory_order_relaxed);
      }
    }
  }
  double v = 0.0;
  double alpha = 0.0;
  ActuationSite site = ActuationSite::kEntry;
  if (controller_ != nullptr) {
    ScopedSpan actuate_span(trace_buf_, "actuate");
    v = controller_->DesiredRate(m);
    // Fan the one admitted rate back out per shard, proportionally to
    // each shard's offered rate over the last period (even split when
    // nothing arrived anywhere). Each shard gets its own ActuationPlan
    // over its slice of the measurement; at N = 1 share == 1.0 exactly
    // and (entry-only) this reduces to the historical single-shedder
    // actuation bit for bit.
    const std::vector<double>& shard_fin = monitor_.shard_fin();
    const std::vector<double>& shard_queues = monitor_.shard_queues();
    const std::vector<double> shares = ProportionalShares(shard_fin);
    double applied = 0.0;
    double queue_target_total = 0.0;
    ++plan_seq_;
    for (size_t i = 0; i < shards_.size(); ++i) {
      const double share = shares[i];
      PeriodMeasurement mi = m;
      mi.fin = shard_fin[i];
      mi.fin_forecast = m.fin_forecast * share;
      mi.admitted = m.admitted * share;
      mi.queue = shard_queues[i];
      // Per-queue feedback stays worker-side in rt; the shard's virtual
      // queue (via outstanding_base_load) is the backlog signal that
      // crossed the stats surface, and it is what clamps queue_target.
      const ActuationPlan plan = planner_.BuildPlan(v * share, mi);
      if (options_.queue_shed) {
        // Post the in-network budget to the worker: payload first
        // (relaxed), then the release-store of the sequence the worker
        // acquires. The worker owns the queues; we never touch them.
        RtSharedStats* stats = shards_[i].engine->stats();
        stats->plan_queue_budget.store(plan.queue_budget_load,
                                       std::memory_order_relaxed);
        stats->plan_cost_aware.store(plan.cost_aware ? 1 : 0,
                                     std::memory_order_relaxed);
        stats->plan_seq.store(plan_seq_, std::memory_order_release);
      }
      queue_target_total += plan.queue_target;
      double alpha_i = 0.0;
      {
        std::lock_guard<std::mutex> lock(shedder_mutexes_[i]);
        applied += shards_[i].shedder->ApplyPlan(plan, mi);
        alpha_i = shards_[i].shedder->drop_probability();
      }
      alpha += share * alpha_i;
      if (i < shard_alpha_gauges_.size()) {
        shard_queue_gauges_[i]->Set(shard_queues[i]);
        shard_alpha_gauges_[i]->Set(alpha_i);
        const double h_hat_i = monitor_.shard_h_hat()[i];
        if (h_hat_i == h_hat_i) shard_h_hat_gauges_[i]->Set(h_hat_i);
      }
    }
    controller_->NotifyActuation(applied);
    if (queue_target_total > 0.0) {
      site = alpha > 0.0 ? ActuationSite::kSplit : ActuationSite::kInNetwork;
    }
  }
  actuation_lateness_.Record(lateness_wall);
  if (lateness_metric_ != nullptr) lateness_metric_->Record(lateness_wall);
  const double h_hat = monitor_.h_hat();
  if (queue_gauge_ != nullptr) {
    queue_gauge_->Set(m.queue);
    y_hat_gauge_->Set(m.y_hat);
    alpha_gauge_->Set(alpha);
    if (h_hat == h_hat) h_hat_gauge_->Set(h_hat);
  }
  PeriodRecord rec{m, v, alpha, lateness_wall,
                   shards_.size() > 1 ? monitor_.shard_queues()
                                      : std::vector<double>{}};
  rec.site = site;
  rec.h_hat = h_hat;
  // Executed in-network drops this period (lags the posted budget by up to
  // one pump — the workers drain it asynchronously).
  const uint64_t queue_shed_total = SumStat(&RtSharedStats::queue_shed);
  rec.queue_shed = static_cast<double>(queue_shed_total - prev_queue_shed_);
  prev_queue_shed_ = queue_shed_total;
  if (site != last_site_) {
    const std::string detail = std::string(ActuationSiteName(last_site_)) +
                               " -> " + std::string(ActuationSiteName(site));
    flight_.RecordEvent("site_switch", detail.c_str(), now);
    last_site_ = site;
  }
  flight_.RecordPeriod(rec);
  health_.ObservePeriod(rec);
  health_.SetHeadroom(options_.headroom, h_hat);
  if (options_.telemetry != nullptr) {
    options_.telemetry->metrics()
        ->GetCounter(std::string("actuation.site.") +
                     std::string(ActuationSiteName(site)))
        ->Add();
    options_.telemetry->PublishTimelineRow(rec);
    health_.SetSelfLoss(/*trace_events=*/0, /*trace_dropped=*/0,
                        options_.telemetry->sse_rows_published(),
                        options_.telemetry->sse_rows_dropped());
    health_gauges_.Publish(health_.Report());
  }
  recorder_.Record(std::move(rec));
}

uint64_t RtLoop::SumStat(
    std::atomic<uint64_t> RtSharedStats::* member) const {
  uint64_t total = 0;
  for (const RtShard& shard : shards_) {
    total += (shard.engine->stats()->*member).load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t RtLoop::offered() const { return SumStat(&RtSharedStats::offered); }

uint64_t RtLoop::entry_shed() const {
  return SumStat(&RtSharedStats::entry_shed);
}

uint64_t RtLoop::ring_dropped() const {
  return SumStat(&RtSharedStats::ring_dropped);
}

double RtLoop::LossRatio() const {
  const uint64_t off = offered();
  if (off == 0) return 0.0;
  const uint64_t shed = entry_shed() + ring_dropped() +
                        SumStat(&RtSharedStats::queue_shed);
  return static_cast<double>(shed) / static_cast<double>(off);
}

QosSummary RtLoop::Summary() const {
  QosSummary s;
  s.accumulated_violation = qos_.accumulated_violation();
  s.delayed_tuples = qos_.delayed_tuples();
  s.max_overshoot = qos_.max_overshoot();
  s.loss_ratio = LossRatio();
  s.offered = offered();
  s.entry_shed = entry_shed();
  s.ring_dropped = ring_dropped();
  s.queue_shed = SumStat(&RtSharedStats::queue_shed);
  s.shed = s.entry_shed + s.ring_dropped + s.queue_shed;
  s.departures = qos_.departures();
  s.mean_delay = qos_.mean_delay();
  s.p50_delay = qos_.delay_histogram().Quantile(0.50);
  s.p95_delay = qos_.delay_histogram().Quantile(0.95);
  s.p99_delay = qos_.delay_histogram().Quantile(0.99);
  return s;
}

}  // namespace ctrlshed
