#include "rt/rt_loop.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/macros.h"

namespace ctrlshed {

namespace {
// Longest uninterruptible sleep of the controller thread, so Stop() is
// honored promptly even with long control periods.
constexpr auto kMaxSleepChunk = std::chrono::milliseconds(5);
}  // namespace

RtLoop::RtLoop(RtEngine* engine, const RtClock* clock,
               LoadController* controller, Shedder* shedder,
               RtLoopOptions options)
    : engine_(engine),
      clock_(clock),
      controller_(controller),
      shedder_(shedder),
      options_(options),
      monitor_(engine->NominalEntryCost(),
               [&options] {
                 RtMonitorOptions mo;
                 mo.period = options.period;
                 mo.headroom = options.headroom;
                 mo.cost_ewma = options.cost_ewma;
                 mo.adapt_headroom = options.adapt_headroom;
                 return mo;
               }()),
      qos_(options.target_delay),
      target_delay_(options.target_delay) {
  CS_CHECK(engine_ != nullptr);
  CS_CHECK(clock_ != nullptr);
  CS_CHECK_MSG(options_.period > 0.0, "period must be positive");
  if (controller_ != nullptr) CS_CHECK(shedder_ != nullptr);
}

RtLoop::~RtLoop() { Stop(); }

void RtLoop::SetDepartureObserver(DepartureCallback observer) {
  CS_CHECK_MSG(!started_, "observer must be set before Start");
  observer_ = std::move(observer);
}

void RtLoop::SetRatePredictor(RatePredictor* predictor) {
  CS_CHECK_MSG(!started_, "predictor must be set before Start");
  predictor_ = predictor;
}

void RtLoop::Start() {
  CS_CHECK_MSG(!started_, "Start called twice");
  started_ = true;

  // Departure fan-out runs on the engine worker thread. The setpoint is
  // re-read per departure so runtime setpoint changes are judged like the
  // sim loop judges them: against the setpoint in force at departure.
  engine_->SetDepartureCallback([this](const Departure& d) {
    const double yd = target_delay_.load(std::memory_order_relaxed);
    if (yd != qos_.target_delay()) qos_.SetTargetDelay(yd);
    qos_.OnDeparture(d);
    if (observer_) observer_(d);
  });

  engine_->Start();
  controller_thread_ = std::thread([this] { ControllerLoop(); });
}

void RtLoop::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stop_.store(true, std::memory_order_release);
  if (controller_thread_.joinable()) controller_thread_.join();
  engine_->Stop();
}

void RtLoop::OnArrival(const Tuple& t) {
  RtSharedStats* stats = engine_->stats();
  stats->offered.fetch_add(1, std::memory_order_relaxed);
  if (shedder_ != nullptr && controller_ != nullptr) {
    std::lock_guard<std::mutex> lock(shedder_mutex_);
    if (!shedder_->Admit(t)) {
      stats->entry_shed.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  engine_->Offer(t);  // a full ring counts its own drop
}

void RtLoop::SetTargetDelay(double yd) {
  CS_CHECK_MSG(yd > 0.0, "target delay must be positive");
  target_delay_.store(yd, std::memory_order_relaxed);
}

void RtLoop::ControllerLoop() {
  if (options_.telemetry != nullptr) {
    trace_buf_ = options_.telemetry->RegisterThread("rt.controller");
    MetricsRegistry* reg = options_.telemetry->metrics();
    lateness_metric_ = reg->GetHistogram("rt.actuation_lateness_s");
    queue_gauge_ = reg->GetGauge("rt.queue");
    y_hat_gauge_ = reg->GetGauge("rt.y_hat");
    alpha_gauge_ = reg->GetGauge("rt.alpha");
  }
  int k = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    ++k;
    const auto deadline =
        clock_->WallDeadline(static_cast<SimTime>(k) * options_.period);
    while (!stop_.load(std::memory_order_acquire)) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      const auto remaining = deadline - now;
      std::this_thread::sleep_for(
          remaining < std::chrono::steady_clock::duration(kMaxSleepChunk)
              ? remaining
              : std::chrono::steady_clock::duration(kMaxSleepChunk));
    }
    if (stop_.load(std::memory_order_acquire)) break;
    // Actuation jitter: how late past the period boundary this tick runs.
    const double lateness =
        std::max(0.0, std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - deadline)
                          .count());
    ControlTick(clock_->Now(), lateness);
  }
}

void RtLoop::ControlTick(SimTime now, double lateness_wall) {
  ScopedSpan tick_span(trace_buf_, "control_tick");
  PeriodMeasurement m;
  {
    ScopedSpan sample_span(trace_buf_, "sample");
    const RtSample s = engine_->stats()->Snapshot(now);
    m = monitor_.Sample(s, target_delay_.load(std::memory_order_relaxed));
  }
  if (predictor_ != nullptr) m.fin_forecast = predictor_->Observe(m.fin);
  double v = 0.0;
  double alpha = 0.0;
  if (controller_ != nullptr) {
    ScopedSpan actuate_span(trace_buf_, "actuate");
    v = controller_->DesiredRate(m);
    double applied = 0.0;
    {
      std::lock_guard<std::mutex> lock(shedder_mutex_);
      applied = shedder_->Configure(v, m);
      alpha = shedder_->drop_probability();
    }
    controller_->NotifyActuation(applied);
  }
  actuation_lateness_.Record(lateness_wall);
  if (lateness_metric_ != nullptr) lateness_metric_->Record(lateness_wall);
  if (queue_gauge_ != nullptr) {
    queue_gauge_->Set(m.queue);
    y_hat_gauge_->Set(m.y_hat);
    alpha_gauge_->Set(alpha);
  }
  recorder_.Record(m, v, alpha, lateness_wall);
}

uint64_t RtLoop::offered() const {
  return engine_->stats()->offered.load(std::memory_order_relaxed);
}

uint64_t RtLoop::entry_shed() const {
  return engine_->stats()->entry_shed.load(std::memory_order_relaxed);
}

uint64_t RtLoop::ring_dropped() const {
  return engine_->stats()->ring_dropped.load(std::memory_order_relaxed);
}

double RtLoop::LossRatio() const {
  const uint64_t off = offered();
  if (off == 0) return 0.0;
  const uint64_t shed =
      entry_shed() + ring_dropped() +
      engine_->stats()->shed_lineages.load(std::memory_order_relaxed);
  return static_cast<double>(shed) / static_cast<double>(off);
}

QosSummary RtLoop::Summary() const {
  QosSummary s;
  s.accumulated_violation = qos_.accumulated_violation();
  s.delayed_tuples = qos_.delayed_tuples();
  s.max_overshoot = qos_.max_overshoot();
  s.loss_ratio = LossRatio();
  s.offered = offered();
  s.shed = entry_shed() + ring_dropped() +
           engine_->stats()->shed_lineages.load(std::memory_order_relaxed);
  s.departures = qos_.departures();
  s.mean_delay = qos_.mean_delay();
  s.p50_delay = qos_.delay_histogram().Quantile(0.50);
  s.p95_delay = qos_.delay_histogram().Quantile(0.95);
  s.p99_delay = qos_.delay_histogram().Quantile(0.99);
  return s;
}

}  // namespace ctrlshed
