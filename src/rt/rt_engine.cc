#include "rt/rt_engine.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/macros.h"
#include "rt/cpu_affinity.h"
#include "telemetry/op_telemetry.h"

namespace ctrlshed {

RtEngine::RtEngine(QueryNetwork* network, const RtClock* clock,
                   int num_sources, RtEngineOptions options)
    : clock_(clock),
      options_(options),
      engine_(network, options.headroom),
      nominal_entry_cost_(engine_.NominalEntryCost()),
      shed_rng_(options.queue_shed_seed) {
  CS_CHECK(clock_ != nullptr);
  CS_CHECK_MSG(num_sources >= 1, "need at least one source");
  CS_CHECK_MSG(options_.pacing_wall_seconds > 0.0,
               "pacing must be positive");
  CS_CHECK_MSG(options_.batch >= 1 && options_.batch <= 4096,
               "batch must be in [1, 4096]");
  engine_.scheduler().set_quantum(options_.batch);
  applied_quantum_ = options_.batch;
  if (options_.cost_multiplier) {
    engine_.SetCostMultiplier(options_.cost_multiplier);
  }
  rings_.reserve(static_cast<size_t>(num_sources));
  for (int i = 0; i < num_sources; ++i) {
    rings_.push_back(std::make_unique<SpscRing<Tuple>>(options_.ring_capacity));
  }
  holdover_.resize(static_cast<size_t>(num_sources));
  run_bounds_.reserve(static_cast<size_t>(num_sources));
  run_cursor_.reserve(static_cast<size_t>(num_sources));
  scratch_.resize(options_.batch);
  engine_.SetDepartureCallback([this](const Departure& d) {
    delay_sum_local_ += d.depart_time - d.arrival_time;
    ++delay_count_local_;
    if (on_departure_) on_departure_(d);
  });
}

RtEngine::~RtEngine() { Stop(); }

void RtEngine::SetDepartureCallback(DepartureCallback cb) {
  CS_CHECK_MSG(!started_, "departure callback must be set before Start");
  on_departure_ = std::move(cb);
}

void RtEngine::Start() {
  CS_CHECK_MSG(!started_, "Start called twice");
  started_ = true;
  worker_ = std::thread([this] { WorkerLoop(); });
}

void RtEngine::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  if (worker_.joinable()) worker_.join();
}

bool RtEngine::Offer(const Tuple& t) {
  CS_CHECK_MSG(t.source >= 0 && t.source < num_sources(),
               "tuple source out of range");
  if (rings_[static_cast<size_t>(t.source)]->TryPush(t)) return true;
  stats_.ring_dropped.fetch_add(1, std::memory_order_relaxed);
  return false;
}

size_t RtEngine::OfferBatch(const Tuple* tuples, size_t n) {
  if (n == 0) return 0;
  const int source = tuples[0].source;
  CS_CHECK_MSG(source >= 0 && source < num_sources(),
               "tuple source out of range");
  const size_t pushed =
      rings_[static_cast<size_t>(source)]->TryPushBatch(tuples, n);
  if (pushed < n) {
    stats_.ring_dropped.fetch_add(n - pushed, std::memory_order_relaxed);
  }
  return pushed;
}

void RtEngine::Pump(SimTime now) {
  // Adaptive scheduler quantum: pick up the controller's latest override
  // (0 = none posted yet; keep the configured batch). The value is
  // self-contained, so a relaxed load suffices — worst case we apply a
  // period-old quantum for one pump.
  const uint64_t q = stats_.plan_quantum.load(std::memory_order_relaxed);
  if (q != 0 && static_cast<size_t>(q) != applied_quantum_) {
    applied_quantum_ = static_cast<size_t>(q);
    engine_.scheduler().set_quantum(applied_quantum_);
  }

  // Collect the due tuples (arrival <= now). Each ring is FIFO with
  // non-decreasing arrival times, so a not-yet-due tuple ends that ring's
  // drain; popped-but-not-due tuples park in the ring's holdover FIFO
  // until their time comes (sources can deliver a hair early through
  // wall-deadline truncation, and a batch pop can overshoot the due
  // prefix). The per-ring drain is bounded so a producer refilling
  // concurrently cannot pin us.
  pending_.clear();
  run_bounds_.clear();
  for (size_t i = 0; i < rings_.size(); ++i) {
    const size_t run_start = pending_.size();
    Holdover& held = holdover_[i];
    while (!held.empty() && held.buf[held.head].arrival_time <= now) {
      pending_.push_back(held.buf[held.head++]);
    }
    if (held.empty()) {
      held.buf.clear();
      held.head = 0;
      // Ring order is arrival order, so stop at the first not-due tuple.
      bool parked = false;
      size_t budget = rings_[i]->capacity();
      while (budget > 0 && !parked) {
        const size_t want = budget < options_.batch ? budget : options_.batch;
        const size_t got = rings_[i]->TryPopBatch(scratch_.data(), want);
        if (got == 0) break;
        budget -= got;
        for (size_t j = 0; j < got; ++j) {
          if (!parked && scratch_[j].arrival_time <= now) {
            pending_.push_back(scratch_[j]);
          } else {
            parked = true;
            held.buf.push_back(scratch_[j]);
          }
        }
      }
    }
    run_bounds_.emplace_back(run_start, pending_.size());
  }

  // Interleave injection with advancement in timestamp order, exactly as
  // the simulation's event queue does: the engine must never hold a tuple
  // whose arrival is in its virtual CPU's future, or a backlogged engine
  // could "process" it before it arrived (negative delay). Each per-ring
  // run is already arrival-sorted, so a K-way merge replaces the seed's
  // stable_sort (whose temporary buffer was a per-pump heap allocation).
  if (run_bounds_.size() <= 1) {
    engine_.InjectBatch(pending_.data(), pending_.size());
  } else {
    MergeRunsByArrival();
    engine_.InjectBatch(inject_order_.data(), inject_order_.size());
  }
  engine_.AdvanceTo(now);
  ConsumeShedBudget();
}

void RtEngine::ConsumeShedBudget() {
  // Worker half of the actuation-plan handshake (see RtSharedStats): on a
  // new plan the posted budget REPLACES whatever was left — an unspent
  // budget expires at the period boundary rather than accumulating. The
  // budget drains across this period's pumps as backlog becomes available.
  const uint64_t seq = stats_.plan_seq.load(std::memory_order_acquire);
  if (seq != plan_seq_seen_) {
    plan_seq_seen_ = seq;
    shed_budget_remaining_ =
        stats_.plan_queue_budget.load(std::memory_order_relaxed);
    shed_cost_aware_ =
        stats_.plan_cost_aware.load(std::memory_order_relaxed) != 0;
  }
  if (shed_budget_remaining_ <= 0.0 || engine_.QueuedTuples() == 0) return;
  const auto policy = shed_cost_aware_ ? Engine::QueueVictimPolicy::kMostCostly
                                       : Engine::QueueVictimPolicy::kRandom;
  const double removed =
      engine_.ShedFromQueues(shed_budget_remaining_, shed_rng_, policy);
  shed_budget_remaining_ -= removed;
  if (shed_budget_remaining_ < 1e-12) shed_budget_remaining_ = 0.0;
}

void RtEngine::MergeRunsByArrival() {
  inject_order_.clear();
  run_cursor_.clear();
  for (const auto& bounds : run_bounds_) run_cursor_.push_back(bounds.first);
  // K is the source count (small); a linear scan per pop beats a heap and,
  // by breaking ties toward the lowest ring index, reproduces exactly what
  // stable_sort over the concatenated runs produced in the seed.
  for (;;) {
    size_t best = run_bounds_.size();
    for (size_t k = 0; k < run_bounds_.size(); ++k) {
      if (run_cursor_[k] == run_bounds_[k].second) continue;
      if (best == run_bounds_.size() ||
          pending_[run_cursor_[k]].arrival_time <
              pending_[run_cursor_[best]].arrival_time) {
        best = k;
      }
    }
    if (best == run_bounds_.size()) break;
    inject_order_.push_back(pending_[run_cursor_[best]++]);
  }
}

void RtEngine::Publish() {
  const EngineCounters& c = engine_.counters();
  stats_.admitted.store(c.admitted, std::memory_order_relaxed);
  stats_.departed.store(c.departed, std::memory_order_relaxed);
  stats_.queue_shed.store(c.shed_lineages, std::memory_order_relaxed);
  stats_.queue_shed_load.store(c.shed_base_load, std::memory_order_relaxed);
  stats_.busy_seconds.store(c.busy_seconds, std::memory_order_relaxed);
  stats_.drained_base_load.store(c.drained_base_load,
                                 std::memory_order_relaxed);
  stats_.queued_tuples.store(engine_.QueuedTuples(),
                             std::memory_order_relaxed);
  stats_.outstanding_base_load.store(engine_.OutstandingBaseLoad(),
                                     std::memory_order_relaxed);
  stats_.delay_sum.store(delay_sum_local_, std::memory_order_relaxed);
  stats_.delay_count.store(delay_count_local_, std::memory_order_relaxed);
}

void RtEngine::WorkerLoop() {
  using Clock = std::chrono::steady_clock;
  if (options_.pin_cpu >= 0) PinCurrentThreadToCpu(options_.pin_cpu);
  if (options_.telemetry != nullptr) {
    trace_buf_ = options_.telemetry->RegisterThread(
        "rt.worker" + std::to_string(options_.shard_index));
    // Metric objects are shared across shards (the registry is
    // thread-safe and Counter/HistogramMetric updates are atomic or
    // internally locked), so these aggregate over all workers.
    pump_interval_metric_ =
        options_.telemetry->metrics()->GetHistogram("rt.pump_interval_s");
    if (options_.per_shard_pump_metric) {
      // Per-shard jitter next to the aggregate: the Prometheus exporter
      // folds rt.shard<i>.pump_interval_s into one summary family
      // rt_shard_pump_interval_s{shard="i"}.
      shard_pump_interval_metric_ = options_.telemetry->metrics()->GetHistogram(
          "rt.shard" + std::to_string(options_.shard_index) +
          ".pump_interval_s");
    }
    pump_counter_ = options_.telemetry->metrics()->GetCounter("rt.pumps");
    // Operator-granular spans/counters on this worker's engine. Counters
    // are registry-shared, so shards aggregate per operator name.
    op_telemetry_ = std::make_unique<OperatorTelemetry>(
        options_.telemetry, trace_buf_, engine_.network());
    engine_.SetObserver(op_telemetry_.get());
  }
  const auto pacing = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(options_.pacing_wall_seconds));
  auto deadline = Clock::now() + pacing;
  auto last_pump = Clock::now();
  bool have_last_pump = false;

  while (!stop_.load(std::memory_order_acquire)) {
    const auto pump_start = Clock::now();
    if (have_last_pump) {
      const double interval =
          std::chrono::duration<double>(pump_start - last_pump).count();
      pump_intervals_.Record(interval);
      if (pump_interval_metric_ != nullptr) {
        pump_interval_metric_->Record(interval);
      }
      if (shard_pump_interval_metric_ != nullptr) {
        shard_pump_interval_metric_->Record(interval);
      }
    }
    have_last_pump = true;
    last_pump = pump_start;
    {
      ScopedSpan span(trace_buf_, "pump");
      Pump(clock_->Now());
      Publish();
    }
    if (pump_counter_ != nullptr) pump_counter_->Add();

    const bool busy = engine_.QueuedTuples() > 0;
    if (options_.cost_mode == RtCostMode::kBusySpin && busy) {
      // The busy-loop cost charge: occupy the CPU until the next pump is
      // due, as a real engine executing the queued work would.
      while (Clock::now() < deadline &&
             !stop_.load(std::memory_order_acquire)) {
      }
    } else {
      std::this_thread::sleep_until(deadline);
    }
    const auto now = Clock::now();
    deadline += pacing;
    if (deadline < now) deadline = now + pacing;  // don't chase a lost past
  }

  // Final pump + publish so end-of-run stats include everything that
  // happened before the stop signal.
  Pump(clock_->Now());
  Publish();
}

}  // namespace ctrlshed
