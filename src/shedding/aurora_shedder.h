#ifndef CTRLSHED_SHEDDING_AURORA_SHEDDER_H_
#define CTRLSHED_SHEDDING_AURORA_SHEDDER_H_

#include "shedding/shedder.h"

namespace ctrlshed {

/// Absolute-amount entry shedder matching the Aurora drop-box semantics the
/// paper's open-loop analysis assumes (Eq. 7/8): each period, an amount
/// S(k) = max(0, fin(k) - v(k)) TUPLES PER SECOND is discarded — not a drop
/// *fraction*. Under a monotonically rising rate this reproduces Example 1
/// exactly: q(k) = q(k-1) + fin(k) - fin(k-1), i.e. the backlog tracks the
/// ramp and the delay grows without bound.
///
/// Realization: a per-period drop quota of S T tuples, paced against the
/// expected arrival count so drops spread across the period. If more
/// tuples arrive than forecast, the quota runs out and the excess is
/// admitted (the Eq. 8 behavior); if fewer arrive, drops stay pro-rata.
class AuroraQuotaShedder : public Shedder {
 public:
  AuroraQuotaShedder() = default;

  double Configure(double v, const PeriodMeasurement& m) override;
  bool Admit(const Tuple& t) override;
  double drop_probability() const override;
  std::string_view name() const override { return "aurora-quota"; }

 private:
  double quota_ = 0.0;              ///< Tuples to drop this period.
  double expected_arrivals_ = 1.0;  ///< Forecast arrivals this period.
  double arrivals_seen_ = 0.0;
  double drops_done_ = 0.0;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_SHEDDING_AURORA_SHEDDER_H_
