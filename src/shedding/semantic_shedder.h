#ifndef CTRLSHED_SHEDDING_SEMANTIC_SHEDDER_H_
#define CTRLSHED_SHEDDING_SEMANTIC_SHEDDER_H_

#include <functional>
#include <vector>

#include "shedding/shedder.h"

namespace ctrlshed {

/// Utility of a tuple to the application; higher = more valuable. The
/// default uses the payload value itself.
using UtilityFn = std::function<double(const Tuple&)>;

/// Semantic entry shedder (the Aurora-style semantic drop the paper cites
/// in Section 2): instead of flipping a fair coin, drop the LEAST useful
/// tuples first. The utility distribution of the arriving stream is
/// estimated from the previous period's sample; to drop a fraction alpha,
/// tuples whose utility falls below the alpha-quantile are discarded.
///
/// With utility correlated to query relevance, the same loss RATE costs
/// much less result quality than random shedding — at identical delay
/// behavior, since the controller's v(k) is untouched.
class SemanticShedder : public Shedder {
 public:
  explicit SemanticShedder(UtilityFn utility = nullptr);

  double Configure(double v, const PeriodMeasurement& m) override;
  bool Admit(const Tuple& t) override;
  double drop_probability() const override { return alpha_; }
  std::string_view name() const override { return "semantic"; }

  /// Current drop threshold: tuples with utility < threshold are dropped.
  double threshold() const { return threshold_; }

 private:
  UtilityFn utility_;
  double alpha_ = 0.0;
  double threshold_ = -1.0;  // nothing dropped initially
  std::vector<double> sample_;       // utilities seen this period
  std::vector<double> last_sample_;  // previous period, sorted
};

}  // namespace ctrlshed

#endif  // CTRLSHED_SHEDDING_SEMANTIC_SHEDDER_H_
