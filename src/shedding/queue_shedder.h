#ifndef CTRLSHED_SHEDDING_QUEUE_SHEDDER_H_
#define CTRLSHED_SHEDDING_QUEUE_SHEDDER_H_

#include "common/rng.h"
#include "engine/engine.h"
#include "shedding/shedder.h"

namespace ctrlshed {

/// The second load shedder of Section 4.5.2, matching what the paper's
/// evaluation actually used: "allows shedding from the queue and randomly
/// selects shedding locations".
///
/// At each period boundary the load to shed over the coming period is
/// Ls = (fin(k) - v(k)) T c. Unlike the entry shedder, this actuator can
/// realize a NEGATIVE desired rate v: the paper's point that "shedding
/// only intact tuples (outside the network) or partially processed tuples
/// (in the network) makes no difference: the same 'load' is being
/// discarded". The part of Ls beyond the total inflow is removed from
/// randomly chosen operator queues immediately; the rest becomes an entry
/// drop probability. This is what lets the controller cut queued work
/// instantly when the per-tuple cost jumps (Fig. 15's brief CTRL peaks).
class QueueShedder : public Shedder {
 public:
  /// `engine` must outlive the shedder. `cost_aware` switches victim
  /// selection from the paper's random locations to the LSRM-flavored
  /// most-load-per-tuple choice, minimizing tuples lost per load shed.
  QueueShedder(Engine* engine, uint64_t seed, bool cost_aware = false);

  /// Builds an in-network plan from the engine's queue feedback and applies
  /// it — one code path with ApplyPlan, bit-identical to the historical
  /// inline arithmetic.
  double Configure(double v, const PeriodMeasurement& m) override;

  /// Executes the plan's in-network budget against the engine's queues
  /// right now, then derives the entry alpha and anti-windup value from the
  /// load ACTUALLY removed (unlike detached executors, which must assume
  /// the budget is achieved).
  double ApplyPlan(const ActuationPlan& plan,
                   const PeriodMeasurement& m) override;

  bool Admit(const Tuple& t) override;
  void AdmitBatch(const Tuple* tuples, size_t n, uint8_t* admit) override;
  double drop_probability() const override { return alpha_; }
  std::string_view name() const override { return "queue"; }

 private:
  Engine* engine_;
  Rng rng_;
  ActuationPlanner planner_;
  double alpha_ = 0.0;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_SHEDDING_QUEUE_SHEDDER_H_
