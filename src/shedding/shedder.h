#ifndef CTRLSHED_SHEDDING_SHEDDER_H_
#define CTRLSHED_SHEDDING_SHEDDER_H_

#include <cstdint>
#include <string_view>

#include "common/rng.h"
#include "control/actuation_plan.h"
#include "control/controller.h"
#include "engine/simd_kernels.h"
#include "engine/tuple.h"

namespace ctrlshed {

/// The actuator of the control loop: given the controller's desired
/// admitted rate v(k), realize it by dropping tuples.
class Shedder {
 public:
  virtual ~Shedder() = default;

  /// Reconfigures the shedder at a period boundary. `v` is the desired
  /// admitted rate for the coming period and `m` the measurement it was
  /// derived from (`m.fin_forecast` estimates the coming period's
  /// input rate, as in Eq. 13). Returns the admitted rate the shedder can
  /// actually target after clamping, which the controller's anti-windup
  /// hook consumes.
  virtual double Configure(double v, const PeriodMeasurement& m) = 0;

  /// Applies one period's ActuationPlan — the actuator seam every runtime
  /// drives. The default forwards to Configure(plan.v, m), which keeps
  /// plan-unaware shedders (Aurora quota, semantic, ...) byte-identical to
  /// the pre-plan loop; shedders that split load across sites override it.
  /// Returns the achievable admitted rate, like Configure.
  virtual double ApplyPlan(const ActuationPlan& plan,
                           const PeriodMeasurement& m) {
    return Configure(plan.v, m);
  }

  /// Decides the fate of one arriving tuple: true = admit into the engine.
  virtual bool Admit(const Tuple& t) = 0;

  /// Batched admission: admit[i] = 1 iff tuples[i] is admitted. The
  /// default loops Admit, so every shedder is batch-callable; coin-flip
  /// shedders override it with a branch-free draw-then-compare kernel
  /// whose decisions are bit-identical to n sequential Admit calls (the
  /// chi-square and stream-identity tests gate this).
  virtual void AdmitBatch(const Tuple* tuples, size_t n, uint8_t* admit) {
    for (size_t i = 0; i < n; ++i) admit[i] = Admit(tuples[i]) ? 1 : 0;
  }

  /// Current entry drop probability (diagnostics).
  virtual double drop_probability() const = 0;

  virtual std::string_view name() const = 0;
};

/// Branch-free batched coin flip shared by the probabilistic shedders:
/// decisions (and the RNG stream consumed) are exactly those of n
/// sequential `!rng.Bernoulli(drop_p)` calls — Bernoulli draws nothing at
/// the clamps, otherwise one Uniform per tuple, which lands in a lane
/// buffer and is compared against drop_p by the vectorized shed-mask
/// kernel.
inline void BatchCoinFlipAdmit(Rng& rng, double drop_p, size_t n,
                               uint8_t* admit) {
  if (drop_p <= 0.0) {
    for (size_t i = 0; i < n; ++i) admit[i] = 1;
    return;
  }
  if (drop_p >= 1.0) {
    for (size_t i = 0; i < n; ++i) admit[i] = 0;
    return;
  }
  constexpr size_t kBlock = 128;
  alignas(64) double u[kBlock];
  size_t done = 0;
  while (done < n) {
    const size_t k = n - done < kBlock ? n - done : kBlock;
    for (size_t i = 0; i < k; ++i) u[i] = rng.Uniform();
    kernels::Kernels().shed_mask(u, k, drop_p, admit + done);
    done += k;
  }
}

}  // namespace ctrlshed

#endif  // CTRLSHED_SHEDDING_SHEDDER_H_
