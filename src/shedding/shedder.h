#ifndef CTRLSHED_SHEDDING_SHEDDER_H_
#define CTRLSHED_SHEDDING_SHEDDER_H_

#include <string_view>

#include "control/actuation_plan.h"
#include "control/controller.h"
#include "engine/tuple.h"

namespace ctrlshed {

/// The actuator of the control loop: given the controller's desired
/// admitted rate v(k), realize it by dropping tuples.
class Shedder {
 public:
  virtual ~Shedder() = default;

  /// Reconfigures the shedder at a period boundary. `v` is the desired
  /// admitted rate for the coming period and `m` the measurement it was
  /// derived from (`m.fin_forecast` estimates the coming period's
  /// input rate, as in Eq. 13). Returns the admitted rate the shedder can
  /// actually target after clamping, which the controller's anti-windup
  /// hook consumes.
  virtual double Configure(double v, const PeriodMeasurement& m) = 0;

  /// Applies one period's ActuationPlan — the actuator seam every runtime
  /// drives. The default forwards to Configure(plan.v, m), which keeps
  /// plan-unaware shedders (Aurora quota, semantic, ...) byte-identical to
  /// the pre-plan loop; shedders that split load across sites override it.
  /// Returns the achievable admitted rate, like Configure.
  virtual double ApplyPlan(const ActuationPlan& plan,
                           const PeriodMeasurement& m) {
    return Configure(plan.v, m);
  }

  /// Decides the fate of one arriving tuple: true = admit into the engine.
  virtual bool Admit(const Tuple& t) = 0;

  /// Current entry drop probability (diagnostics).
  virtual double drop_probability() const = 0;

  virtual std::string_view name() const = 0;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_SHEDDING_SHEDDER_H_
