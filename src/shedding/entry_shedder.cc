#include "shedding/entry_shedder.h"

#include <algorithm>

namespace ctrlshed {

EntryShedder::EntryShedder(uint64_t seed) : rng_(seed) {}

double EntryShedder::Configure(double v, const PeriodMeasurement& m) {
  if (m.fin_forecast <= 0.0) {
    // Nothing arriving: admit whatever comes (a closed gate on an idle
    // stream would drop the first tuples of the next burst for no reason).
    alpha_ = 0.0;
    return v;
  }
  alpha_ = std::clamp(1.0 - v / m.fin_forecast, 0.0, 1.0);
  return (1.0 - alpha_) * m.fin_forecast;
}

double EntryShedder::ApplyPlan(const ActuationPlan& plan,
                               const PeriodMeasurement& m) {
  if (!plan.in_network_enabled) return Configure(plan.v, m);
  alpha_ = plan.entry_alpha;
  return plan.planned_applied;
}

bool EntryShedder::Admit(const Tuple& /*t*/) { return !rng_.Bernoulli(alpha_); }

void EntryShedder::AdmitBatch(const Tuple* /*tuples*/, size_t n,
                              uint8_t* admit) {
  BatchCoinFlipAdmit(rng_, alpha_, n, admit);
}

}  // namespace ctrlshed
