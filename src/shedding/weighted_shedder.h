#ifndef CTRLSHED_SHEDDING_WEIGHTED_SHEDDER_H_
#define CTRLSHED_SHEDDING_WEIGHTED_SHEDDER_H_

#include <vector>

#include "common/rng.h"
#include "shedding/shedder.h"

namespace ctrlshed {

/// Priority-aware entry shedder — the paper's future-work direction of
/// "heterogeneous quality guarantees for streams with different
/// priorities". The total amount to shed is the same as EntryShedder's
/// (fin_hat - v per second), but it is taken from the LOWEST-priority
/// streams first (water-filling): stream s is only shed once every stream
/// with lower priority is already fully blocked.
///
/// Per-stream arrival rates are estimated from the shedder's own arrival
/// counts over the previous period.
class WeightedEntryShedder : public Shedder {
 public:
  /// `priorities[s]` is the priority of source s — HIGHER survives longer.
  WeightedEntryShedder(std::vector<double> priorities, uint64_t seed);

  double Configure(double v, const PeriodMeasurement& m) override;
  bool Admit(const Tuple& t) override;
  double drop_probability() const override;  // aggregate
  std::string_view name() const override { return "weighted-entry"; }

  /// Per-source drop probability in force (diagnostics).
  double drop_probability(int source) const;

 private:
  std::vector<double> priorities_;
  std::vector<double> alpha_;          // per source
  std::vector<uint64_t> seen_;         // arrivals this period, per source
  std::vector<double> rate_estimate_;  // arrivals last period, per source
  double aggregate_alpha_ = 0.0;
  double period_ = 1.0;
  Rng rng_;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_SHEDDING_WEIGHTED_SHEDDER_H_
