#include "shedding/weighted_shedder.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace ctrlshed {

WeightedEntryShedder::WeightedEntryShedder(std::vector<double> priorities,
                                           uint64_t seed)
    : priorities_(std::move(priorities)),
      alpha_(priorities_.size(), 0.0),
      seen_(priorities_.size(), 0),
      rate_estimate_(priorities_.size(), 0.0),
      rng_(seed) {
  CS_CHECK_MSG(!priorities_.empty(), "need at least one stream priority");
}

double WeightedEntryShedder::Configure(double v, const PeriodMeasurement& m) {
  period_ = m.period;

  // Refresh per-source rate estimates from this period's own counts.
  for (size_t s = 0; s < seen_.size(); ++s) {
    rate_estimate_[s] = static_cast<double>(seen_[s]) / m.period;
    seen_[s] = 0;
  }

  const double total_rate =
      std::accumulate(rate_estimate_.begin(), rate_estimate_.end(), 0.0);
  const double requested_drop =
      std::max(0.0, std::min(m.fin_forecast, total_rate) - std::max(0.0, v));

  // Water-fill the drop demand starting at the lowest priority.
  std::vector<size_t> order(priorities_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return priorities_[a] < priorities_[b];
  });
  std::fill(alpha_.begin(), alpha_.end(), 0.0);
  double remaining = requested_drop;
  for (size_t s : order) {
    if (remaining <= 0.0 || rate_estimate_[s] <= 0.0) continue;
    const double drop_here = std::min(remaining, rate_estimate_[s]);
    alpha_[s] = drop_here / rate_estimate_[s];
    remaining -= drop_here;
  }

  const double realized_drop = requested_drop - remaining;
  aggregate_alpha_ =
      total_rate > 0.0 ? std::clamp(realized_drop / total_rate, 0.0, 1.0)
                       : 0.0;

  // Anything still undropped was unrealizable (demand beyond total inflow).
  return std::max(0.0, v) + remaining;
}

bool WeightedEntryShedder::Admit(const Tuple& t) {
  const size_t s = static_cast<size_t>(t.source);
  CS_CHECK_MSG(s < alpha_.size(), "tuple from unknown source");
  ++seen_[s];
  return !rng_.Bernoulli(alpha_[s]);
}

double WeightedEntryShedder::drop_probability() const {
  return aggregate_alpha_;
}

double WeightedEntryShedder::drop_probability(int source) const {
  CS_CHECK(source >= 0 && static_cast<size_t>(source) < alpha_.size());
  return alpha_[static_cast<size_t>(source)];
}

}  // namespace ctrlshed
