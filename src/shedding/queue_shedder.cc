#include "shedding/queue_shedder.h"

#include <algorithm>

#include "common/macros.h"

namespace ctrlshed {

QueueShedder::QueueShedder(Engine* engine, uint64_t seed, bool cost_aware)
    : engine_(engine), rng_(seed), cost_aware_(cost_aware) {
  CS_CHECK(engine_ != nullptr);
}

double QueueShedder::Configure(double v, const PeriodMeasurement& m) {
  const double T = m.period;
  // Load to shed over the coming period, in entry-tuple equivalents
  // (multiplying by c gives the paper's Ls; c cancels from the balance).
  // A negative desired rate v means "remove queued work beyond blocking
  // all arrivals" — the capability that distinguishes this actuator.
  const double to_shed = (m.fin_forecast - v) * T;
  if (to_shed <= 0.0) {
    alpha_ = 0.0;
    return v;
  }

  // The part that blocking the whole inflow cannot cover is taken from
  // random locations inside the network, right now.
  const double incoming = m.fin_forecast * T;
  const double queue_target = std::min(std::max(0.0, to_shed - incoming),
                                       m.queue);
  double queue_removed = 0.0;
  if (queue_target > 0.0) {
    const auto policy = cost_aware_
                            ? Engine::QueueVictimPolicy::kMostCostly
                            : Engine::QueueVictimPolicy::kRandom;
    queue_removed =
        engine_->ShedFromQueues(queue_target * engine_->NominalEntryCost(),
                                rng_, policy) /
        engine_->NominalEntryCost();
  }

  // The rest becomes an entry drop probability for the coming period.
  const double remainder = to_shed - queue_removed;
  alpha_ = (incoming > 0.0) ? std::clamp(remainder / incoming, 0.0, 1.0) : 0.0;

  const double unachieved =
      std::max(0.0, remainder - incoming) + (queue_target - queue_removed);
  return v + unachieved / T;
}

bool QueueShedder::Admit(const Tuple& /*t*/) { return !rng_.Bernoulli(alpha_); }

}  // namespace ctrlshed
