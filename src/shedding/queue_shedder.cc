#include "shedding/queue_shedder.h"

#include <algorithm>

#include "common/macros.h"

namespace ctrlshed {

QueueShedder::QueueShedder(Engine* engine, uint64_t seed, bool cost_aware)
    : engine_(engine),
      rng_(seed),
      planner_(ActuationPlannerOptions{
          engine != nullptr ? engine->NominalEntryCost() : 1.0,
          /*allow_in_network=*/true, cost_aware}) {
  CS_CHECK(engine_ != nullptr);
}

double QueueShedder::Configure(double v, const PeriodMeasurement& m) {
  QueueFeedback fb;
  CollectQueueFeedback(*engine_, &fb);
  return ApplyPlan(planner_.BuildPlan(v, m, fb), m);
}

double QueueShedder::ApplyPlan(const ActuationPlan& plan,
                               const PeriodMeasurement& m) {
  if (!plan.in_network_enabled) return Configure(plan.v, m);
  const double T = m.period;
  // Load to shed over the coming period, in entry-tuple equivalents
  // (multiplying by c gives the paper's Ls; c cancels from the balance).
  // A negative desired rate v means "remove queued work beyond blocking
  // all arrivals" — the capability that distinguishes this actuator.
  if (plan.to_shed <= 0.0) {
    alpha_ = 0.0;
    return plan.v;
  }

  // The part that blocking the whole inflow cannot cover is taken from
  // locations inside the network, right now.
  double queue_removed = 0.0;
  if (plan.queue_target > 0.0) {
    const auto policy = plan.cost_aware
                            ? Engine::QueueVictimPolicy::kMostCostly
                            : Engine::QueueVictimPolicy::kRandom;
    queue_removed =
        engine_->ShedFromQueues(plan.queue_budget_load, rng_, policy) /
        engine_->NominalEntryCost();
  }

  // The rest becomes an entry drop probability for the coming period.
  const double remainder = plan.to_shed - queue_removed;
  alpha_ = (plan.incoming > 0.0)
               ? std::clamp(remainder / plan.incoming, 0.0, 1.0)
               : 0.0;

  const double unachieved = std::max(0.0, remainder - plan.incoming) +
                            (plan.queue_target - queue_removed);
  return plan.v + unachieved / T;
}

bool QueueShedder::Admit(const Tuple& /*t*/) { return !rng_.Bernoulli(alpha_); }

void QueueShedder::AdmitBatch(const Tuple* /*tuples*/, size_t n,
                              uint8_t* admit) {
  BatchCoinFlipAdmit(rng_, alpha_, n, admit);
}

}  // namespace ctrlshed
