#ifndef CTRLSHED_SHEDDING_ENTRY_SHEDDER_H_
#define CTRLSHED_SHEDDING_ENTRY_SHEDDER_H_

#include "common/rng.h"
#include "shedding/shedder.h"

namespace ctrlshed {

/// The first load shedder of Section 4.5.2: treat the engine as a black
/// box and drop arriving tuples before they enter the query network.
/// Every stream carries a shedding factor alpha; each arrival flips an
/// unfair coin and is admitted with probability 1 - alpha, where
///
///   alpha = 1 - v(k) / fin(k+1)  ~  1 - v(k) / fin(k)       (Eq. 13)
///
/// (the coming period's rate is estimated by the current one).
class EntryShedder : public Shedder {
 public:
  explicit EntryShedder(uint64_t seed);

  double Configure(double v, const PeriodMeasurement& m) override;

  /// Entry-only plans forward to Configure (bit-identical to the classic
  /// loop). In-network-enabled plans apply the planner's analytic entry
  /// alpha and anti-windup value — the queue budget executes elsewhere (an
  /// rt worker pump or a remote node), so this gate only carries the entry
  /// remainder.
  double ApplyPlan(const ActuationPlan& plan,
                   const PeriodMeasurement& m) override;

  bool Admit(const Tuple& t) override;
  void AdmitBatch(const Tuple* tuples, size_t n, uint8_t* admit) override;
  double drop_probability() const override { return alpha_; }
  std::string_view name() const override { return "entry"; }

 private:
  Rng rng_;
  double alpha_ = 0.0;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_SHEDDING_ENTRY_SHEDDER_H_
