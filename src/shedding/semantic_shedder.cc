#include "shedding/semantic_shedder.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ctrlshed {

SemanticShedder::SemanticShedder(UtilityFn utility)
    : utility_(utility ? std::move(utility)
                       : [](const Tuple& t) { return t.value; }) {}

double SemanticShedder::Configure(double v, const PeriodMeasurement& m) {
  if (m.fin_forecast <= 0.0) {
    alpha_ = 0.0;
  } else {
    alpha_ = std::clamp(1.0 - v / m.fin_forecast, 0.0, 1.0);
  }

  // Re-estimate the utility distribution from the period that just ended.
  if (!sample_.empty()) {
    last_sample_ = std::move(sample_);
    std::sort(last_sample_.begin(), last_sample_.end());
  }
  sample_.clear();

  if (alpha_ <= 0.0 || last_sample_.empty()) {
    threshold_ = -std::numeric_limits<double>::infinity();
  } else {
    const size_t idx = std::min(
        last_sample_.size() - 1,
        static_cast<size_t>(alpha_ * static_cast<double>(last_sample_.size())));
    threshold_ = last_sample_[idx];
  }
  return (1.0 - alpha_) * std::max(0.0, m.fin_forecast);
}

bool SemanticShedder::Admit(const Tuple& t) {
  const double u = utility_(t);
  sample_.push_back(u);
  return u >= threshold_;
}

}  // namespace ctrlshed
