#include "shedding/aurora_shedder.h"

#include <algorithm>

namespace ctrlshed {

double AuroraQuotaShedder::Configure(double v, const PeriodMeasurement& m) {
  const double shed_rate = std::max(0.0, m.fin_forecast - std::max(0.0, v));
  quota_ = shed_rate * m.period;
  expected_arrivals_ = std::max(1.0, m.fin_forecast * m.period);
  arrivals_seen_ = 0.0;
  drops_done_ = 0.0;
  return std::max(0.0, v);
}

bool AuroraQuotaShedder::Admit(const Tuple& /*t*/) {
  arrivals_seen_ += 1.0;
  if (drops_done_ < quota_ &&
      (drops_done_ + 1.0) <=
          quota_ * arrivals_seen_ / expected_arrivals_ + 1.0) {
    drops_done_ += 1.0;
    return false;
  }
  return true;
}

double AuroraQuotaShedder::drop_probability() const {
  return std::min(1.0, quota_ / expected_arrivals_);
}

}  // namespace ctrlshed
