#ifndef CTRLSHED_CONTROL_PERIOD_MATH_H_
#define CTRLSHED_CONTROL_PERIOD_MATH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "control/controller.h"

namespace ctrlshed {

/// Options of the per-period measurement math shared by the sim Monitor
/// and the rt RtMonitor (Section 4.5.1, Eq. 11).
struct PeriodMathOptions {
  SimTime period = 1.0;    ///< Nominal control period T the gains assume.
  /// Effective headroom H of the plant the measurement describes. A
  /// single-worker plant has H in (0,1]; an N-worker aggregate presents
  /// effective headroom N*H, so the only hard bound is (0, max_headroom].
  double headroom = 0.97;
  /// Upper clamp of the online headroom estimate: 1.0 for one worker,
  /// N for an N-worker aggregate (N CPUs can do N seconds of work per
  /// second).
  double max_headroom = 1.0;
  /// EWMA weight of the newest per-period cost measurement in (0,1];
  /// 1 = no smoothing (the paper's "estimate c(k) with c(k-1)").
  double cost_ewma = 1.0;
  /// Online headroom estimation (the paper's Section 6 future work): when
  /// the engine is saturated for a whole period, the CPU work done per
  /// trace second IS the headroom; an EWMA of that measurement replaces
  /// `headroom` in the Eq. (11) delay estimate.
  bool adapt_headroom = false;
  double headroom_ewma = 0.2;
};

/// Per-period counter deltas plus the instantaneous queue state at the
/// period boundary. This is the wire-friendly form: cluster nodes ship
/// exactly these deltas upstream so the aggregate plant sums them without
/// re-deriving differences from floating-point cumulative totals (which
/// would break bit-identity with the single-process loop).
struct PeriodDeltas {
  SimTime now = 0.0;         ///< Boundary time (trace seconds).
  uint64_t offered = 0;      ///< Tuples offered this period (pre-shed).
  uint64_t admitted = 0;     ///< Tuples admitted this period.
  double drained_base_load = 0.0;  ///< Static load drained, seconds.
  double busy_seconds = 0.0;       ///< CPU work performed, seconds.
  /// Instantaneous virtual queue length q in entry-tuple equivalents at
  /// the boundary, already clamped by the caller.
  double queue = 0.0;
  /// Departure-delay accumulation of this period.
  double delay_sum = 0.0;
  uint64_t delay_count = 0;
};

/// Cumulative plant counters at a period boundary, plus the instantaneous
/// queue state. The caller supplies cumulative totals; PeriodMath keeps
/// the previous boundary's values and forms the deltas itself.
struct PeriodCounters {
  SimTime now = 0.0;          ///< Boundary time (trace seconds).
  uint64_t offered = 0;       ///< Tuples offered by the sources (pre-shed).
  uint64_t admitted = 0;      ///< Tuples admitted into the network.
  double drained_base_load = 0.0;  ///< Static load drained, seconds.
  double busy_seconds = 0.0;       ///< CPU work performed, seconds.
  /// Instantaneous virtual queue length q in entry-tuple equivalents,
  /// already clamped by the caller (Engine::VirtualQueueLength or the
  /// RtSample reconstruction).
  double queue = 0.0;
  /// Departure-delay accumulation of THIS period (deltas, not cumulative:
  /// the two monitors accumulate differently, so each hands over the
  /// per-period sums it already has).
  double delay_sum = 0.0;
  uint64_t delay_count = 0;
};

/// The per-period measurement process both feedback loops share: rates
/// from counter deltas, the measured per-tuple cost c(k) = nominal *
/// busy/drained with EWMA smoothing, the optional online headroom
/// estimate, and the Eq. (11) delay estimate
///
///   y_hat(k) = q(k) c(k)/H + c(k)/H = (q(k) + 1) c(k) / H.
///
/// The sim Monitor samples at exact event-heap boundaries and passes
/// elapsed = T; the rt RtMonitor's wakeups jitter, so it passes the actual
/// elapsed trace time between snapshots (the PeriodMeasurement still
/// reports the nominal T the controller gains were designed for).
///
/// Not thread-safe: owned by whichever thread runs the monitor.
class PeriodMath {
 public:
  /// `nominal_entry_cost` is the network's model constant c (seconds).
  PeriodMath(double nominal_entry_cost, PeriodMathOptions options);

  /// Forms the measurement for the period ending at `c.now`. `elapsed` is
  /// the trace time the period actually spanned (> 0). `cost_noise`, when
  /// non-null, supplies a multiplier for the raw cost measurement (the sim
  /// Monitor's injected estimation noise); it is invoked only on periods
  /// where the cost update fires, preserving the caller's noise-RNG stream
  /// exactly as the pre-refactor Monitor consumed it.
  PeriodMeasurement Sample(const PeriodCounters& c, double target_delay,
                           double elapsed,
                           const std::function<double()>& cost_noise = nullptr);

  /// Delta entry point: forms the measurement for the period whose counter
  /// deltas are `d`, spanning `elapsed` trace seconds ending at `d.now`.
  /// Sample() is a thin wrapper that differences cumulative counters and
  /// calls this, so both paths share one arithmetic sequence bit-for-bit.
  PeriodMeasurement SampleDeltas(
      const PeriodDeltas& d, double target_delay, double elapsed,
      const std::function<double()>& cost_noise = nullptr);

  /// The deltas consumed by the most recent Sample/SampleDeltas call —
  /// what a cluster node reports upstream for aggregate re-derivation.
  const PeriodDeltas& last_deltas() const { return last_deltas_; }

  /// Re-targets the plant size mid-run (cluster membership change: the
  /// effective headroom is the sum over active nodes of N_i*H_i). Keeps
  /// the cost EWMA and period index; snaps the online headroom estimate
  /// into the new bound.
  void SetHeadroom(double headroom, double max_headroom);

  double CostEstimate() const { return cost_estimate_; }
  double HeadroomEstimate() const { return headroom_estimate_; }
  const PeriodMathOptions& options() const { return options_; }

 private:
  double nominal_entry_cost_;
  PeriodMathOptions options_;

  int k_ = 0;
  uint64_t prev_offered_ = 0;
  uint64_t prev_admitted_ = 0;
  double prev_drained_ = 0.0;
  double prev_busy_ = 0.0;
  double prev_queue_ = 0.0;
  double cost_estimate_ = 0.0;
  double headroom_estimate_ = 0.0;
  PeriodDeltas last_deltas_;
};

/// Normalized fan-out weights proportional to `loads` (per-shard or
/// per-node offered rates). Falls back to an even split when the total is
/// zero or negative so an idle plant still distributes the command. The
/// shares sum to 1 up to rounding, so v_i = v * share_i conserves the
/// aggregate command within floating-point error (well under one tuple
/// per period).
std::vector<double> ProportionalShares(const std::vector<double>& loads);

}  // namespace ctrlshed

#endif  // CTRLSHED_CONTROL_PERIOD_MATH_H_
