#include "control/aurora_controller.h"

#include "common/macros.h"

namespace ctrlshed {

AuroraController::AuroraController(double headroom) : headroom_(headroom) {
  // > 1 is legal: sharded plants aggregate to an effective headroom N*H.
  CS_CHECK_MSG(headroom_ > 0.0, "headroom must be positive");
}

double AuroraController::DesiredRate(const PeriodMeasurement& m) {
  CS_CHECK_MSG(m.cost > 0.0, "cost estimate must be positive");
  const double capacity = headroom_ / m.cost;  // L0
  const double measured_load = m.fin;          // fin(k-1) by the time it is used
  if (measured_load > capacity) return capacity;
  return measured_load;
}

}  // namespace ctrlshed
