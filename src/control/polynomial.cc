#include "control/polynomial.h"

#include <cmath>

#include "common/macros.h"

namespace ctrlshed {

Polynomial::Polynomial(std::vector<double> ascending_coeffs)
    : coeffs_(std::move(ascending_coeffs)) {
  if (coeffs_.empty()) coeffs_.push_back(0.0);
  Trim();
}

void Polynomial::Trim() {
  while (coeffs_.size() > 1 && coeffs_.back() == 0.0) coeffs_.pop_back();
}

Polynomial Polynomial::FromRoots(const std::vector<std::complex<double>>& roots) {
  // Multiply out (x - r_i). Complex roots must come in conjugate pairs for
  // the result to be real; we multiply in complex and take real parts.
  std::vector<std::complex<double>> c{1.0};
  for (const auto& r : roots) {
    std::vector<std::complex<double>> next(c.size() + 1, 0.0);
    for (size_t i = 0; i < c.size(); ++i) {
      next[i + 1] += c[i];
      next[i] -= r * c[i];
    }
    c = std::move(next);
  }
  std::vector<double> real(c.size());
  for (size_t i = 0; i < c.size(); ++i) {
    CS_CHECK_MSG(std::abs(c[i].imag()) < 1e-9,
                 "complex roots must come in conjugate pairs");
    real[i] = c[i].real();
  }
  return Polynomial(std::move(real));
}

int Polynomial::Degree() const { return static_cast<int>(coeffs_.size()) - 1; }

bool Polynomial::IsZero() const {
  return coeffs_.size() == 1 && coeffs_[0] == 0.0;
}

double Polynomial::Evaluate(double x) const {
  double acc = 0.0;
  for (size_t i = coeffs_.size(); i-- > 0;) acc = acc * x + coeffs_[i];
  return acc;
}

std::complex<double> Polynomial::Evaluate(std::complex<double> x) const {
  std::complex<double> acc = 0.0;
  for (size_t i = coeffs_.size(); i-- > 0;) acc = acc * x + coeffs_[i];
  return acc;
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  std::vector<double> out(std::max(coeffs_.size(), other.coeffs_.size()), 0.0);
  for (size_t i = 0; i < out.size(); ++i) out[i] = (*this)[i] + other[i];
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  std::vector<double> out(coeffs_.size() + other.coeffs_.size() - 1, 0.0);
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    for (size_t j = 0; j < other.coeffs_.size(); ++j) {
      out[i + j] += coeffs_[i] * other.coeffs_[j];
    }
  }
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator*(double scalar) const {
  std::vector<double> out = coeffs_;
  for (double& c : out) c *= scalar;
  return Polynomial(std::move(out));
}

std::vector<std::complex<double>> Polynomial::Roots() const {
  CS_CHECK_MSG(!IsZero(), "zero polynomial has no well-defined roots");
  const int n = Degree();
  if (n == 0) return {};

  // Normalize to a monic polynomial.
  std::vector<std::complex<double>> a(n + 1);
  for (int i = 0; i <= n; ++i) a[i] = coeffs_[i] / coeffs_[n];

  auto eval = [&](std::complex<double> x) {
    std::complex<double> acc = 0.0;
    for (int i = n; i >= 0; --i) acc = acc * x + a[i];
    return acc;
  };

  // Durand-Kerner: start from non-real, non-unit-magnitude seeds.
  std::vector<std::complex<double>> roots(n);
  const std::complex<double> seed(0.4, 0.9);
  std::complex<double> p = 1.0;
  for (int i = 0; i < n; ++i) {
    p *= seed;
    roots[i] = p;
  }

  for (int iter = 0; iter < 500; ++iter) {
    double max_step = 0.0;
    for (int i = 0; i < n; ++i) {
      std::complex<double> denom = 1.0;
      for (int j = 0; j < n; ++j) {
        if (j != i) denom *= roots[i] - roots[j];
      }
      const std::complex<double> delta = eval(roots[i]) / denom;
      roots[i] -= delta;
      max_step = std::max(max_step, std::abs(delta));
    }
    if (max_step < 1e-13) break;
  }
  return roots;
}

}  // namespace ctrlshed
