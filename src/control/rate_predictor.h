#ifndef CTRLSHED_CONTROL_RATE_PREDICTOR_H_
#define CTRLSHED_CONTROL_RATE_PREDICTOR_H_

#include <memory>
#include <string_view>

namespace ctrlshed {

/// One-step-ahead predictor of the arrival rate. The paper's actuator uses
/// fin(k) as the estimate of fin(k+1) (Eq. 13) and names time-series
/// prediction "a promising direction worth serious consideration"
/// (Section 6); these predictors implement that direction. The drop
/// probability alpha = 1 - v/fin_hat is only as good as fin_hat, so a
/// better forecast directly reduces the burst-onset tuples that slip
/// through and the over-shedding right after a burst ends.
class RatePredictor {
 public:
  virtual ~RatePredictor() = default;

  /// Feeds the rate observed over the period that just ended and returns
  /// the forecast for the coming period (tuples/s, >= 0).
  virtual double Observe(double fin) = 0;

  virtual std::string_view name() const = 0;
};

/// The paper's estimator: fin_hat(k+1) = fin(k).
class LastValuePredictor : public RatePredictor {
 public:
  double Observe(double fin) override { return fin; }
  std::string_view name() const override { return "last-value"; }
};

/// Exponentially weighted moving average: smooths measurement noise at the
/// cost of lag on burst edges.
class EwmaPredictor : public RatePredictor {
 public:
  explicit EwmaPredictor(double alpha);
  double Observe(double fin) override;
  std::string_view name() const override { return "ewma"; }

 private:
  double alpha_;
  double state_ = 0.0;
  bool primed_ = false;
};

/// Online AR(1) model fin(k+1) = mu + phi (fin(k) - mu), with mu and phi
/// estimated by exponentially-forgetting least squares. Captures the
/// persistence of multi-second bursts without assuming their level.
class Ar1Predictor : public RatePredictor {
 public:
  /// `forgetting` in (0, 1]: weight decay of old samples (1 = none).
  explicit Ar1Predictor(double forgetting = 0.98);
  double Observe(double fin) override;
  std::string_view name() const override { return "ar1"; }

  double phi() const;

 private:
  double forgetting_;
  double prev_ = 0.0;
  bool primed_ = false;
  // Forgetting-weighted sufficient statistics of (x = fin(k-1), y = fin(k)).
  double n_ = 0.0, sx_ = 0.0, sy_ = 0.0, sxx_ = 0.0, sxy_ = 0.0;
};

/// Local-level + slope Kalman filter (a discrete double-exponential
/// smoother): tracks a drifting mean and forecasts level + slope. The
/// paper's Section 6 explicitly suggests combining Kalman filters with the
/// controller.
class KalmanPredictor : public RatePredictor {
 public:
  /// `process_noise` scales how fast level/slope may wander relative to
  /// the measurement noise (which adapts to the observed residuals).
  explicit KalmanPredictor(double process_noise = 25.0);
  double Observe(double fin) override;
  std::string_view name() const override { return "kalman"; }

  double level() const { return level_; }
  double slope() const { return slope_; }

 private:
  double q_;  // process noise (variance per step on the level)
  double level_ = 0.0;
  double slope_ = 0.0;
  // State covariance.
  double p00_ = 1e6, p01_ = 0.0, p11_ = 1e6;
  double meas_var_ = 100.0;
  bool primed_ = false;
};

enum class PredictorKind { kLastValue, kEwma, kAr1, kKalman };

std::unique_ptr<RatePredictor> MakePredictor(PredictorKind kind);

}  // namespace ctrlshed

#endif  // CTRLSHED_CONTROL_RATE_PREDICTOR_H_
