#include "control/transfer_function.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace ctrlshed {

TransferFunction::TransferFunction(Polynomial num, Polynomial den)
    : num_(std::move(num)), den_(std::move(den)) {
  CS_CHECK_MSG(!den_.IsZero(), "transfer function denominator is zero");
}

TransferFunction TransferFunction::FromDescending(std::vector<double> num,
                                                  std::vector<double> den) {
  std::reverse(num.begin(), num.end());
  std::reverse(den.begin(), den.end());
  return TransferFunction(Polynomial(std::move(num)), Polynomial(std::move(den)));
}

bool TransferFunction::IsProper() const {
  return num_.Degree() <= den_.Degree();
}

bool TransferFunction::IsStable() const {
  for (const auto& p : Poles()) {
    if (std::abs(p) >= 1.0 - 1e-12) return false;
  }
  return true;
}

double TransferFunction::StaticGain() const {
  const double d = den_.Evaluate(1.0);
  if (d == 0.0) return std::numeric_limits<double>::infinity();
  return num_.Evaluate(1.0) / d;
}

TransferFunction TransferFunction::Series(const TransferFunction& other) const {
  return TransferFunction(num_ * other.num_, den_ * other.den_);
}

TransferFunction TransferFunction::CloseUnityFeedback() const {
  // L/(1+L) = num / (den + num).
  return TransferFunction(num_, den_ + num_);
}

std::vector<double> TransferFunction::Simulate(
    const std::vector<double>& input) const {
  CS_CHECK_MSG(IsProper(), "cannot simulate an improper transfer function");
  const int nd = den_.Degree();
  const int nn = num_.Degree();
  const double a_lead = den_[static_cast<size_t>(nd)];
  CS_CHECK_MSG(a_lead != 0.0, "leading denominator coefficient is zero");

  // Difference equation (shifting so the current output has delay 0):
  //   a_nd y[k] = sum_j b_j u[k - (nd - j)] - sum_{i<nd} a_i y[k - (nd - i)]
  std::vector<double> y(input.size(), 0.0);
  for (size_t k = 0; k < input.size(); ++k) {
    double acc = 0.0;
    for (int j = 0; j <= nn; ++j) {
      const int lag = nd - j;
      if (static_cast<int>(k) - lag >= 0) {
        acc += num_[static_cast<size_t>(j)] * input[k - static_cast<size_t>(lag)];
      }
    }
    for (int i = 0; i < nd; ++i) {
      const int lag = nd - i;
      if (static_cast<int>(k) - lag >= 0) {
        acc -= den_[static_cast<size_t>(i)] * y[k - static_cast<size_t>(lag)];
      }
    }
    y[k] = acc / a_lead;
  }
  return y;
}

std::vector<double> TransferFunction::StepResponse(int n) const {
  CS_CHECK_MSG(n >= 0, "negative length");
  return Simulate(std::vector<double>(static_cast<size_t>(n), 1.0));
}

}  // namespace ctrlshed
