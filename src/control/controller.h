#ifndef CTRLSHED_CONTROL_CONTROLLER_H_
#define CTRLSHED_CONTROL_CONTROLLER_H_

#include <string_view>

#include "common/sim_time.h"

namespace ctrlshed {

/// One control period's worth of measurements, produced by the Monitor at
/// each period boundary. All rates are in tuples/second (entry-tuple
/// equivalents); delays and costs are in seconds.
struct PeriodMeasurement {
  int k = 0;               ///< Period index (first full period is k = 1).
  SimTime t = 0.0;         ///< Period end time.
  double period = 1.0;     ///< Control period T.
  double target_delay = 0; ///< Current setpoint yd.
  double fin = 0.0;        ///< Offered rate (pre-shedding), last period.
  double fin_forecast = 0.0;  ///< Forecast of the COMING period's offered
                              ///< rate; equals fin unless a RatePredictor
                              ///< is installed (the paper's Eq. 13 default).
  double admitted = 0.0;   ///< Rate actually admitted into the network.
  double fout = 0.0;       ///< Drain rate of the virtual queue.
  double queue = 0.0;      ///< Virtual queue length q(k), entry equivalents.
  double cost = 0.0;       ///< Estimated per-tuple cost c(k), seconds.
  double y_hat = 0.0;      ///< Estimated delay from Eq. (11).
  double y_measured = 0.0; ///< Mean delay of tuples departing this period.
  bool has_y_measured = false;  ///< False when nothing departed.
};

/// Decides the desired admitted data rate v(k) for the coming period — the
/// "when and how much to shed" policy. The actuator (Shedder) then tries to
/// realize this rate.
class LoadController {
 public:
  virtual ~LoadController() = default;

  /// Returns the desired admitted rate v(k) >= 0 in tuples/second.
  virtual double DesiredRate(const PeriodMeasurement& m) = 0;

  /// Informs the controller of the rate the actuator could actually target
  /// after clamping (anti-windup hook; default no-op).
  virtual void NotifyActuation(double /*v_applied*/) {}

  /// Updates the delay setpoint at runtime (Fig. 18 experiments).
  virtual void SetTargetDelay(double /*yd*/) {}

  /// Updates the plant-size estimate H at runtime. The cluster controller
  /// calls this when membership changes (effective headroom is the sum of
  /// active nodes' N_i*H_i); controllers whose gain depends on H override
  /// it, others ignore it.
  virtual void SetHeadroom(double /*headroom*/) {}

  virtual std::string_view name() const = 0;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_CONTROL_CONTROLLER_H_
