#include "control/pole_placement.h"

#include "common/macros.h"

namespace ctrlshed {

ControllerGains DesignPolePlacement(double p1, double p2, double a) {
  // Matching z^2 + (a - 1 + b0) z + (-a + b1) = z^2 - (p1+p2) z + p1 p2:
  ControllerGains g;
  g.a = a;
  g.b0 = 1.0 - (p1 + p2) - a;
  g.b1 = p1 * p2 + a;
  // Unity static gain (Eq. 19) holds by construction:
  //   b0 + b1 = 1 - (p1+p2) + p1 p2 = (1-p1)(1-p2).
  return g;
}

TransferFunction NormalizedPlant() {
  // 1 / (z - 1), ascending coefficients: num {1}, den {-1, 1}.
  return TransferFunction(Polynomial({1.0}), Polynomial({-1.0, 1.0}));
}

TransferFunction NormalizedController(const ControllerGains& gains) {
  // (b0 z + b1) / (z + a), ascending: num {b1, b0}, den {a, 1}.
  return TransferFunction(Polynomial({gains.b1, gains.b0}),
                          Polynomial({gains.a, 1.0}));
}

TransferFunction ClosedLoop(const ControllerGains& gains, double gain) {
  CS_CHECK_MSG(gain > 0.0, "loop gain must be positive");
  TransferFunction loop =
      NormalizedController(gains).Series(NormalizedPlant());
  TransferFunction scaled(loop.num() * gain, loop.den());
  return scaled.CloseUnityFeedback();
}

}  // namespace ctrlshed
