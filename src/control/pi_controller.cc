#include "control/pi_controller.h"

#include <cmath>

#include "common/macros.h"

namespace ctrlshed {

PiController::PiController(double headroom)
    : PiController(headroom, Gains{}) {}

PiController::PiController(double headroom, Gains gains, bool anti_windup)
    : headroom_(headroom), gains_(gains), anti_windup_(anti_windup) {
  // > 1 is legal: sharded plants aggregate to an effective headroom N*H.
  CS_CHECK_MSG(headroom_ > 0.0, "headroom must be positive");
  CS_CHECK_MSG(gains_.kp > 0.0 && gains_.ki >= 0.0, "bad PI gains");
}

void PiController::Reset() {
  integral_ = 0.0;
  last_gain_ = 0.0;
  last_fout_ = 0.0;
  last_v_ = 0.0;
  last_e_ = 0.0;
}

double PiController::DesiredRate(const PeriodMeasurement& m) {
  CS_CHECK_MSG(m.cost > 0.0, "cost estimate must be positive");
  CS_CHECK_MSG(m.period > 0.0, "control period must be positive");

  const double e = m.target_delay - m.y_hat;
  integral_ += e * m.period;
  last_e_ = e;
  last_gain_ = headroom_ / (m.cost * m.period);
  last_fout_ = m.fout;
  last_v_ = last_gain_ * (gains_.kp * e + gains_.ki * integral_) + m.fout;
  return last_v_;
}

void PiController::NotifyActuation(double v_applied) {
  if (!anti_windup_ || last_gain_ <= 0.0 || gains_.ki <= 0.0) return;
  // Back-calculate the integral so the stored state reproduces the
  // realized command instead of the unrealizable one.
  if (std::abs(v_applied - last_v_) > 1e-12) {
    const double u_applied = v_applied - last_fout_;
    integral_ = (u_applied / last_gain_ - gains_.kp * last_e_) / gains_.ki;
  }
}

}  // namespace ctrlshed
