#include "control/baseline_controller.h"

#include <algorithm>

#include "common/macros.h"

namespace ctrlshed {

BaselineController::BaselineController(double headroom) : headroom_(headroom) {
  // > 1 is legal: sharded plants aggregate to an effective headroom N*H.
  CS_CHECK_MSG(headroom_ > 0.0, "headroom must be positive");
}

double BaselineController::DesiredRate(const PeriodMeasurement& m) {
  CS_CHECK_MSG(m.cost > 0.0, "cost estimate must be positive");
  const double target_queue = m.target_delay * headroom_ / m.cost;
  const double u = (target_queue - m.queue) / m.period;
  const double service_rate = headroom_ / m.cost;
  // Clamping to realizable rates is the actuator's job.
  return u + service_rate;
}

}  // namespace ctrlshed
