#ifndef CTRLSHED_CONTROL_PI_CONTROLLER_H_
#define CTRLSHED_CONTROL_PI_CONTROLLER_H_

#include "control/controller.h"

namespace ctrlshed {

/// A textbook PI controller on the same virtual-queue feedback — the
/// comparison point control engineers reach for first:
///
///   u(k) = (H / (c T)) (Kp e(k) + Ki T sum_{i<=k} e(i)),
///   v(k) = u(k) + fout(k).
///
/// On a pure integrator plant the integral term adds a second open-loop
/// pole at z = 1, so tuning is touchier than the paper's first-order
/// phase-lead controller: Kp buys speed, Ki removes offset but erodes the
/// phase margin. The defaults place the dominant closed-loop poles near
/// 0.7 like the paper's design; bench/ablations compares the two.
class PiController : public LoadController {
 public:
  struct Gains {
    double kp = 0.5;
    double ki = 0.05;
  };

  explicit PiController(double headroom);
  PiController(double headroom, Gains gains, bool anti_windup = true);

  double DesiredRate(const PeriodMeasurement& m) override;
  void NotifyActuation(double v_applied) override;
  std::string_view name() const override { return "PI"; }

  void Reset();

 private:
  double headroom_;
  Gains gains_;
  bool anti_windup_;
  double integral_ = 0.0;  // sum of e(i) * T, seconds^2
  double last_gain_ = 0.0;
  double last_fout_ = 0.0;
  double last_v_ = 0.0;
  double last_e_ = 0.0;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_CONTROL_PI_CONTROLLER_H_
