#ifndef CTRLSHED_CONTROL_ACTUATION_PLAN_H_
#define CTRLSHED_CONTROL_ACTUATION_PLAN_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "control/controller.h"

namespace ctrlshed {

class Engine;

/// Where this period's shedding happens. The controller picks the site per
/// period from the plan arithmetic: entry-only when the backlog cannot absorb
/// any of the excess, in-network when the queued backlog covers all of it,
/// split when both halves carry load.
enum class ActuationSite : uint8_t {
  kEntry = 0,      ///< All shedding at the entry gate (coin flip on arrival).
  kInNetwork = 1,  ///< All shedding from operator queues.
  kSplit = 2,      ///< Queue backlog absorbs part, entry gate the rest.
};

std::string_view ActuationSiteName(ActuationSite site);

/// One operator queue's backlog, as reported upstream into the plan builder
/// (the punctuation-style inter-operator feedback signal). Engine-independent
/// so the control layer never touches operator internals directly.
struct QueueFeedbackEntry {
  int op_index = 0;            ///< Operator index in the query network.
  double backlog_tuples = 0;   ///< Tuples queued at this operator.
  double queued_load = 0.0;    ///< Base-load seconds those tuples still cost.
  double drain_cost = 0.0;     ///< Remaining per-tuple cost (seconds).
};

/// Per-period upstream feedback: each operator reports its backlog and drain
/// cost so the planner can decompose the in-network budget over the cheapest
/// victims. Empty feedback is always valid (the scalar budget still applies).
struct QueueFeedback {
  std::vector<QueueFeedbackEntry> queues;
  double total_backlog_tuples = 0.0;
  double total_queued_load = 0.0;
};

/// Advisory per-queue victim budget (base-load seconds) decomposed from the
/// scalar in-network budget using the feedback report. Executors may consume
/// the scalar budget instead; the decomposition records *where* the planner
/// expects the load to come from.
struct QueueBudget {
  int op_index = 0;
  double budget_load = 0.0;
};

/// One period's actuation decision, produced by the controller layer and
/// consumed by every runtime's actuator (sim FeedbackLoop shedders, rt worker
/// pumps via the RtSharedStats handshake, cluster NodeAgents via kActuation
/// frames). All tuple quantities are entry-tuple equivalents; *_load fields
/// are base-load seconds.
///
/// The plan stores the intermediate terms of the shed computation (to_shed,
/// incoming, queue_target) in the exact floating-point expression order the
/// legacy QueueShedder::Configure used, so an executor that re-derives the
/// entry remainder from the *actual* queue removal reproduces the pre-plan
/// arithmetic bit for bit.
struct ActuationPlan {
  int k = 0;              ///< Period index the plan applies to.
  double v = 0.0;         ///< Controller's desired admitted rate v(k).
  ActuationSite site = ActuationSite::kEntry;

  /// True when the planner ran the in-network (queue-shedder) arithmetic,
  /// even if the chosen site is kEntry. Actuators switch semantics on this
  /// flag, not on `site`: the two arithmetics clamp anti-windup differently
  /// (the in-network plan can target v < fin, the entry-only one cannot).
  bool in_network_enabled = false;

  // Entry half (analytic, assuming the in-network budget is achieved).
  double entry_alpha = 0.0;      ///< Planned entry drop probability.
  double planned_applied = 0.0;  ///< Achievable admitted rate (anti-windup).

  // In-network half.
  double to_shed = 0.0;       ///< Excess tuples this period, (fin_f - v)*T.
  double incoming = 0.0;      ///< Expected arrivals this period, fin_f*T.
  double queue_target = 0.0;  ///< Tuples to remove from operator queues.
  double queue_budget_load = 0.0;  ///< queue_target in base-load seconds.
  bool cost_aware = false;    ///< Victim policy: kMostCostly vs kRandom.
  std::vector<QueueBudget> budgets;  ///< Advisory per-queue decomposition.
};

struct ActuationPlannerOptions {
  /// Mean per-tuple base load at entry (seconds); converts tuple counts to
  /// base-load budgets. Must match the executing engine's NominalEntryCost().
  double nominal_entry_cost = 1.0;
  /// When false the planner never emits an in-network budget and every plan
  /// is site=kEntry with the classic Eq. 13 entry alpha.
  bool allow_in_network = false;
  /// Victim policy for the in-network half.
  bool cost_aware = false;
};

/// Builds per-period ActuationPlans from the controller's desired rate and
/// the monitor's measurement. Pure function of its inputs — safe to share or
/// rebuild per call; holds no cross-period state.
class ActuationPlanner {
 public:
  ActuationPlanner() = default;
  explicit ActuationPlanner(const ActuationPlannerOptions& options)
      : options_(options) {}

  const ActuationPlannerOptions& options() const { return options_; }

  /// Computes the coming period's plan. `fb` decomposes the in-network
  /// budget over reported queues; pass an empty feedback when per-queue
  /// backlogs are not visible (rt controller thread, cluster controller).
  ActuationPlan BuildPlan(double v, const PeriodMeasurement& m,
                          const QueueFeedback& fb = QueueFeedback{}) const;

 private:
  ActuationPlannerOptions options_;
};

/// Fills `fb` from the engine's operator queues (backlog and remaining
/// drain cost per operator). Read-only; call only from the thread that owns
/// the engine.
void CollectQueueFeedback(const Engine& engine, QueueFeedback* fb);

}  // namespace ctrlshed

#endif  // CTRLSHED_CONTROL_ACTUATION_PLAN_H_
