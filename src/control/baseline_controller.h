#ifndef CTRLSHED_CONTROL_BASELINE_CONTROLLER_H_
#define CTRLSHED_CONTROL_BASELINE_CONTROLLER_H_

#include "control/controller.h"

namespace ctrlshed {

/// The paper's BASELINE method (Section 5): a naive feedback rule that
/// inverts the system model without any controller design. The target
/// delay yd allows yd * H / c outstanding tuples, so
///
///   u(k) = (yd H / c(k) - q(k)) / T,      v(k) = u(k) + H / c(k)
///
/// (the paper's v(k) = -q(k) + yd H/c + T H/c, written as rates; c(k) is
/// estimated by the previous period's measurement, which the Monitor
/// already provides). Deadbeat-aggressive: it tries to reach the target
/// queue in a single period, which the paper shows causes large transients
/// and slow recovery compared to CTRL.
class BaselineController : public LoadController {
 public:
  explicit BaselineController(double headroom);

  double DesiredRate(const PeriodMeasurement& m) override;
  std::string_view name() const override { return "BASELINE"; }

 private:
  double headroom_;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_CONTROL_BASELINE_CONTROLLER_H_
