#include "control/ctrl_controller.h"

#include <cmath>

#include "common/macros.h"

namespace ctrlshed {

CtrlController::CtrlController(CtrlOptions options) : options_(options) {
  // May exceed 1: an N-worker sharded plant presents the aggregate
  // effective headroom N*H (N CPUs' worth of drain) to one controller.
  CS_CHECK_MSG(options_.headroom > 0.0, "headroom must be positive");
}

void CtrlController::Reset() {
  prev_error_ = 0.0;
  prev_u_ = 0.0;
  last_fout_ = 0.0;
  last_v_ = 0.0;
}

double CtrlController::DesiredRate(const PeriodMeasurement& m) {
  CS_CHECK_MSG(m.cost > 0.0, "cost estimate must be positive");
  CS_CHECK_MSG(m.period > 0.0, "control period must be positive");

  const double feedback =
      (options_.feedback == FeedbackSignal::kMeasuredDelay && m.has_y_measured)
          ? m.y_measured
          : m.y_hat;
  const double e = m.target_delay - feedback;
  const double gain = options_.headroom / (m.cost * m.period);
  const double u = gain * (options_.gains.b0 * e + options_.gains.b1 * prev_error_) -
                   options_.gains.a * prev_u_;

  prev_error_ = e;
  prev_u_ = u;
  last_fout_ = m.fout;
  // Clamping is the actuator's job: an entry shedder cannot realize a
  // negative rate, a queue shedder can (it removes queued work).
  last_v_ = u + m.fout;
  return last_v_;
}

void CtrlController::SetHeadroom(double headroom) {
  CS_CHECK_MSG(headroom > 0.0, "headroom must be positive");
  // The Eq. (10) gain H/(cT) re-reads options_.headroom every period, so
  // updating it here re-scales the loop gain from the next DesiredRate on;
  // the dynamic state (e(k-1), u(k-1)) carries over unchanged.
  options_.headroom = headroom;
}

void CtrlController::NotifyActuation(double v_applied) {
  if (!options_.anti_windup) return;
  // Back-calculation: if the actuator could not realize v(k), rewrite the
  // stored u(k) with the value that was actually applied so the recursion
  // -a u(k-1) does not integrate an unrealizable command.
  if (std::abs(v_applied - last_v_) > 1e-12) {
    prev_u_ = v_applied - last_fout_;
  }
}

}  // namespace ctrlshed
