#include "control/rate_predictor.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace ctrlshed {

EwmaPredictor::EwmaPredictor(double alpha) : alpha_(alpha) {
  CS_CHECK_MSG(alpha_ > 0.0 && alpha_ <= 1.0, "alpha must be in (0,1]");
}

double EwmaPredictor::Observe(double fin) {
  if (!primed_) {
    state_ = fin;
    primed_ = true;
  } else {
    state_ = alpha_ * fin + (1.0 - alpha_) * state_;
  }
  return state_;
}

Ar1Predictor::Ar1Predictor(double forgetting) : forgetting_(forgetting) {
  CS_CHECK_MSG(forgetting_ > 0.0 && forgetting_ <= 1.0,
               "forgetting factor must be in (0,1]");
}

double Ar1Predictor::phi() const {
  const double denom = n_ * sxx_ - sx_ * sx_;
  if (n_ < 3.0 || std::abs(denom) < 1e-9) return 0.0;
  double phi = (n_ * sxy_ - sx_ * sy_) / denom;
  // Clamp to a stable, sensible persistence range.
  return std::clamp(phi, 0.0, 0.99);
}

double Ar1Predictor::Observe(double fin) {
  if (primed_) {
    n_ = forgetting_ * n_ + 1.0;
    sx_ = forgetting_ * sx_ + prev_;
    sy_ = forgetting_ * sy_ + fin;
    sxx_ = forgetting_ * sxx_ + prev_ * prev_;
    sxy_ = forgetting_ * sxy_ + prev_ * fin;
  }
  prev_ = fin;
  primed_ = true;

  const double p = phi();
  const double mean = (n_ > 0.5) ? sy_ / n_ : fin;
  return std::max(0.0, mean + p * (fin - mean));
}

KalmanPredictor::KalmanPredictor(double process_noise) : q_(process_noise) {
  CS_CHECK_MSG(q_ > 0.0, "process noise must be positive");
}

double KalmanPredictor::Observe(double fin) {
  if (!primed_) {
    level_ = fin;
    slope_ = 0.0;
    primed_ = true;
    return std::max(0.0, fin);
  }

  // Predict: level += slope; covariance propagates through F = [1 1; 0 1].
  const double pl = level_ + slope_;
  const double p00 = p00_ + 2.0 * p01_ + p11_ + q_;
  const double p01 = p01_ + p11_ + 0.1 * q_;
  const double p11 = p11_ + 0.25 * q_;

  // Update with the measurement of the level.
  const double innovation = fin - pl;
  const double s = p00 + meas_var_;
  const double k0 = p00 / s;
  const double k1 = p01 / s;
  level_ = pl + k0 * innovation;
  slope_ = slope_ + k1 * innovation;
  p00_ = (1.0 - k0) * p00;
  p01_ = (1.0 - k0) * p01;
  p11_ = p11 - k1 * p01;

  // Adapt the measurement-noise estimate to the innovation magnitude.
  meas_var_ = 0.95 * meas_var_ + 0.05 * innovation * innovation;
  meas_var_ = std::max(meas_var_, 1.0);

  return std::max(0.0, level_ + slope_);
}

std::unique_ptr<RatePredictor> MakePredictor(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kLastValue:
      return std::make_unique<LastValuePredictor>();
    case PredictorKind::kEwma:
      return std::make_unique<EwmaPredictor>(0.5);
    case PredictorKind::kAr1:
      return std::make_unique<Ar1Predictor>();
    case PredictorKind::kKalman:
      return std::make_unique<KalmanPredictor>();
  }
  CS_CHECK_MSG(false, "unknown predictor kind");
  return nullptr;
}

}  // namespace ctrlshed
