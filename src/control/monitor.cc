#include "control/monitor.h"

#include "common/macros.h"

namespace ctrlshed {

namespace {
PeriodMathOptions ToMathOptions(const MonitorOptions& o) {
  PeriodMathOptions mo;
  mo.period = o.period;
  mo.headroom = o.headroom;
  mo.max_headroom = 1.0;  // one worker owns the whole plant here
  mo.cost_ewma = o.cost_ewma;
  mo.adapt_headroom = o.adapt_headroom;
  mo.headroom_ewma = o.headroom_ewma;
  return mo;
}

double CheckedNominalCost(Engine* engine) {
  CS_CHECK(engine != nullptr);
  return engine->NominalEntryCost();
}
}  // namespace

Monitor::Monitor(Engine* engine, MonitorOptions options)
    : engine_(engine),
      options_(options),
      noise_rng_(options.noise_seed),
      math_(CheckedNominalCost(engine), ToMathOptions(options)) {}

void Monitor::OnDeparture(const Departure& d) {
  delay_sum_ += d.depart_time - d.arrival_time;
  ++delay_count_;
}

PeriodMeasurement Monitor::Sample(SimTime now, uint64_t offered_cum,
                                  double target_delay) {
  const EngineCounters& c = engine_->counters();

  PeriodCounters pc;
  pc.now = now;
  pc.offered = offered_cum;
  pc.admitted = c.admitted;
  pc.drained_base_load = c.drained_base_load;
  pc.busy_seconds = c.busy_seconds;
  pc.queue = engine_->VirtualQueueLength();
  pc.delay_sum = delay_sum_;
  pc.delay_count = delay_count_;

  // The sim samples on the event heap at exact boundaries: the period's
  // actual span IS the nominal T.
  PeriodMeasurement m =
      options_.estimation_noise > 0.0
          ? math_.Sample(pc, target_delay, options_.period, [this] {
              return noise_rng_.LogNormal(0.0, options_.estimation_noise);
            })
          : math_.Sample(pc, target_delay, options_.period);

  delay_sum_ = 0.0;
  delay_count_ = 0;
  return m;
}

}  // namespace ctrlshed
