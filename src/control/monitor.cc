#include "control/monitor.h"

#include <algorithm>

#include "common/macros.h"

namespace ctrlshed {

Monitor::Monitor(Engine* engine, MonitorOptions options)
    : engine_(engine), options_(options), noise_rng_(options.noise_seed) {
  CS_CHECK(engine_ != nullptr);
  CS_CHECK_MSG(options_.period > 0.0, "period must be positive");
  CS_CHECK_MSG(options_.headroom > 0.0 && options_.headroom <= 1.0,
               "headroom must be in (0,1]");
  CS_CHECK_MSG(options_.cost_ewma > 0.0 && options_.cost_ewma <= 1.0,
               "cost_ewma must be in (0,1]");
  CS_CHECK_MSG(options_.headroom_ewma > 0.0 && options_.headroom_ewma <= 1.0,
               "headroom_ewma must be in (0,1]");
  // Until the first measurement arrives, fall back to the static estimate
  // (Borealis can always compute this from its cost x selectivity catalog).
  cost_estimate_ = engine_->NominalEntryCost();
  headroom_estimate_ = options_.headroom;
}

void Monitor::OnDeparture(const Departure& d) {
  delay_sum_ += d.depart_time - d.arrival_time;
  ++delay_count_;
}

PeriodMeasurement Monitor::Sample(SimTime now, uint64_t offered_cum,
                                  double target_delay) {
  const EngineCounters& c = engine_->counters();
  const double T = options_.period;

  PeriodMeasurement m;
  m.k = ++k_;
  m.t = now;
  m.period = T;
  m.target_delay = target_delay;

  CS_CHECK_MSG(offered_cum >= prev_offered_, "offered counter went backwards");
  m.fin = static_cast<double>(offered_cum - prev_offered_) / T;
  m.fin_forecast = m.fin;  // the loop overrides this when a predictor is set
  m.admitted = static_cast<double>(c.admitted - prev_admitted_) / T;

  const double nominal = engine_->NominalEntryCost();
  const double drained = c.drained_base_load - prev_drained_;
  const double busy = c.busy_seconds - prev_busy_;
  m.fout = drained / nominal / T;

  // Measured per-tuple cost: CPU seconds consumed per entry-tuple
  // equivalent drained. Only meaningful when enough work was processed.
  if (drained > nominal) {
    double measured = nominal * busy / drained;
    if (options_.estimation_noise > 0.0) {
      measured *= noise_rng_.LogNormal(0.0, options_.estimation_noise);
    }
    cost_estimate_ = options_.cost_ewma * measured +
                     (1.0 - options_.cost_ewma) * cost_estimate_;
  }
  m.cost = cost_estimate_;

  m.queue = engine_->VirtualQueueLength();

  // Online headroom estimate: when there was queued work at both ends of
  // the period the CPU never idled, so its work done per wall second
  // equals the true headroom.
  if (options_.adapt_headroom && m.queue > 1.0 && prev_queue_ > 1.0 &&
      busy > 0.0) {
    const double measured_h = std::min(1.0, busy / T);
    headroom_estimate_ = options_.headroom_ewma * measured_h +
                         (1.0 - options_.headroom_ewma) * headroom_estimate_;
  }
  prev_queue_ = m.queue;

  const double h =
      options_.adapt_headroom ? headroom_estimate_ : options_.headroom;
  m.y_hat = (m.queue + 1.0) * m.cost / h;

  if (delay_count_ > 0) {
    m.y_measured = delay_sum_ / static_cast<double>(delay_count_);
    m.has_y_measured = true;
  }
  delay_sum_ = 0.0;
  delay_count_ = 0;

  prev_offered_ = offered_cum;
  prev_admitted_ = c.admitted;
  prev_drained_ = c.drained_base_load;
  prev_busy_ = c.busy_seconds;
  return m;
}

}  // namespace ctrlshed
