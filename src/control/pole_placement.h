#ifndef CTRLSHED_CONTROL_POLE_PLACEMENT_H_
#define CTRLSHED_CONTROL_POLE_PLACEMENT_H_

#include "control/transfer_function.h"

namespace ctrlshed {

/// Parameters of the paper's first-order controller
///   C(z) = H (b0 z + b1) / (c T (z + a))           (Eq. 15)
/// whose time-domain control law is
///   u(k) = (H / (c T)) (b0 e(k) + b1 e(k-1)) - a u(k-1)   (Eq. 10).
struct ControllerGains {
  double a = 0.0;
  double b0 = 0.0;
  double b1 = 0.0;
};

/// Pole-placement design of Appendix A. The plant is the integrator
/// G(z) = cT / (H (z-1)); with the controller's built-in H/(cT) factor the
/// closed-loop characteristic equation is
///   z^2 + (a - 1 + b0) z + (-a + b1) = 0              (Eq. 17)
/// which is matched to the desired (z - p1)(z - p2) = 0   (Eq. 18),
/// and unity static gain (Eq. 19) requires b0 + b1 = (1 - p1)(1 - p2),
/// which matching already implies. The system is therefore one equation
/// short of pinning all three parameters: `a` is the free choice (the
/// paper uses a = -0.8, giving b0 = 0.4, b1 = -0.31 for p1 = p2 = 0.7).
ControllerGains DesignPolePlacement(double p1, double p2, double a = -0.8);

/// The normalized plant: G(z) with the gain cT/H replaced by 1, i.e.
/// 1/(z-1). Composing it with NormalizedController(gains) gives the loop
/// gain whose closed loop has exactly the designed poles.
TransferFunction NormalizedPlant();

/// The controller (b0 z + b1)/(z + a) with the H/(cT) factor normalized
/// away (it cancels against the plant gain when c and H are known exactly).
TransferFunction NormalizedController(const ControllerGains& gains);

/// Closed-loop transfer function from reference yd to output y for the
/// nominal design, possibly with a multiplicative loop-gain error `gain`
/// (gain = c_true/c_est * H_est/H_true models mis-estimated cost or
/// headroom; gain = 1 is the nominal case of Eq. 16).
TransferFunction ClosedLoop(const ControllerGains& gains, double gain = 1.0);

}  // namespace ctrlshed

#endif  // CTRLSHED_CONTROL_POLE_PLACEMENT_H_
