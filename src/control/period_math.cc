#include "control/period_math.h"

#include <algorithm>

#include "common/macros.h"

namespace ctrlshed {

PeriodMath::PeriodMath(double nominal_entry_cost, PeriodMathOptions options)
    : nominal_entry_cost_(nominal_entry_cost), options_(options) {
  CS_CHECK_MSG(nominal_entry_cost_ > 0.0, "nominal cost must be positive");
  CS_CHECK_MSG(options_.period > 0.0, "period must be positive");
  CS_CHECK_MSG(options_.max_headroom >= 1.0, "max headroom must be >= 1");
  CS_CHECK_MSG(
      options_.headroom > 0.0 && options_.headroom <= options_.max_headroom,
      "headroom must be in (0, max_headroom]");
  CS_CHECK_MSG(options_.cost_ewma > 0.0 && options_.cost_ewma <= 1.0,
               "cost_ewma must be in (0,1]");
  CS_CHECK_MSG(options_.headroom_ewma > 0.0 && options_.headroom_ewma <= 1.0,
               "headroom_ewma must be in (0,1]");
  // Until the first measurement arrives, fall back to the static estimate
  // (Borealis can always compute this from its cost x selectivity catalog).
  cost_estimate_ = nominal_entry_cost_;
  headroom_estimate_ = options_.headroom;
}

PeriodMeasurement PeriodMath::Sample(const PeriodCounters& c,
                                     double target_delay, double elapsed,
                                     const std::function<double()>& cost_noise) {
  CS_CHECK_MSG(c.offered >= prev_offered_, "offered counter went backwards");
  CS_CHECK_MSG(c.admitted >= prev_admitted_, "admitted counter went backwards");

  PeriodDeltas d;
  d.now = c.now;
  d.offered = c.offered - prev_offered_;
  d.admitted = c.admitted - prev_admitted_;
  d.drained_base_load = c.drained_base_load - prev_drained_;
  d.busy_seconds = c.busy_seconds - prev_busy_;
  d.queue = c.queue;
  d.delay_sum = c.delay_sum;
  d.delay_count = c.delay_count;

  prev_offered_ = c.offered;
  prev_admitted_ = c.admitted;
  prev_drained_ = c.drained_base_load;
  prev_busy_ = c.busy_seconds;

  return SampleDeltas(d, target_delay, elapsed, cost_noise);
}

PeriodMeasurement PeriodMath::SampleDeltas(
    const PeriodDeltas& d, double target_delay, double elapsed,
    const std::function<double()>& cost_noise) {
  CS_CHECK_MSG(elapsed > 0.0, "elapsed time must be positive");
  last_deltas_ = d;

  PeriodMeasurement m;
  m.k = ++k_;
  m.t = d.now;
  m.period = options_.period;
  m.target_delay = target_delay;

  m.fin = static_cast<double>(d.offered) / elapsed;
  m.fin_forecast = m.fin;  // the loop overrides this when a predictor is set
  m.admitted = static_cast<double>(d.admitted) / elapsed;

  const double drained = d.drained_base_load;
  const double busy = d.busy_seconds;
  m.fout = drained / nominal_entry_cost_ / elapsed;

  // Measured per-tuple cost: CPU seconds consumed per entry-tuple
  // equivalent drained. Only meaningful when enough work was processed.
  if (drained > nominal_entry_cost_) {
    double measured = nominal_entry_cost_ * busy / drained;
    if (cost_noise) measured *= cost_noise();
    cost_estimate_ = options_.cost_ewma * measured +
                     (1.0 - options_.cost_ewma) * cost_estimate_;
  }
  m.cost = cost_estimate_;

  m.queue = d.queue;

  // Online headroom estimate: with queued work at both ends of the period
  // the CPU never idled, so work done per trace second IS the headroom.
  if (options_.adapt_headroom && m.queue > 1.0 && prev_queue_ > 1.0 &&
      busy > 0.0) {
    const double measured_h = std::min(options_.max_headroom, busy / elapsed);
    headroom_estimate_ = options_.headroom_ewma * measured_h +
                         (1.0 - options_.headroom_ewma) * headroom_estimate_;
  }
  prev_queue_ = m.queue;

  const double h =
      options_.adapt_headroom ? headroom_estimate_ : options_.headroom;
  m.y_hat = (m.queue + 1.0) * m.cost / h;

  if (d.delay_count > 0) {
    m.y_measured = d.delay_sum / static_cast<double>(d.delay_count);
    m.has_y_measured = true;
  }

  return m;
}

void PeriodMath::SetHeadroom(double headroom, double max_headroom) {
  CS_CHECK_MSG(max_headroom >= 1.0, "max headroom must be >= 1");
  CS_CHECK_MSG(headroom > 0.0 && headroom <= max_headroom,
               "headroom must be in (0, max_headroom]");
  options_.headroom = headroom;
  options_.max_headroom = max_headroom;
  if (options_.adapt_headroom && k_ > 0) {
    // Keep the learned estimate but respect the new plant bound.
    headroom_estimate_ = std::min(headroom_estimate_, max_headroom);
  } else {
    headroom_estimate_ = headroom;
  }
}

std::vector<double> ProportionalShares(const std::vector<double>& loads) {
  std::vector<double> shares(loads.size(), 0.0);
  if (loads.empty()) return shares;
  double total = 0.0;
  for (double l : loads) total += l;
  const double even = 1.0 / static_cast<double>(loads.size());
  for (size_t i = 0; i < loads.size(); ++i) {
    shares[i] = total > 0.0 ? loads[i] / total : even;
  }
  return shares;
}

}  // namespace ctrlshed
