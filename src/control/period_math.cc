#include "control/period_math.h"

#include <algorithm>

#include "common/macros.h"

namespace ctrlshed {

PeriodMath::PeriodMath(double nominal_entry_cost, PeriodMathOptions options)
    : nominal_entry_cost_(nominal_entry_cost), options_(options) {
  CS_CHECK_MSG(nominal_entry_cost_ > 0.0, "nominal cost must be positive");
  CS_CHECK_MSG(options_.period > 0.0, "period must be positive");
  CS_CHECK_MSG(options_.max_headroom >= 1.0, "max headroom must be >= 1");
  CS_CHECK_MSG(
      options_.headroom > 0.0 && options_.headroom <= options_.max_headroom,
      "headroom must be in (0, max_headroom]");
  CS_CHECK_MSG(options_.cost_ewma > 0.0 && options_.cost_ewma <= 1.0,
               "cost_ewma must be in (0,1]");
  CS_CHECK_MSG(options_.headroom_ewma > 0.0 && options_.headroom_ewma <= 1.0,
               "headroom_ewma must be in (0,1]");
  // Until the first measurement arrives, fall back to the static estimate
  // (Borealis can always compute this from its cost x selectivity catalog).
  cost_estimate_ = nominal_entry_cost_;
  headroom_estimate_ = options_.headroom;
}

PeriodMeasurement PeriodMath::Sample(const PeriodCounters& c,
                                     double target_delay, double elapsed,
                                     const std::function<double()>& cost_noise) {
  CS_CHECK_MSG(elapsed > 0.0, "elapsed time must be positive");
  CS_CHECK_MSG(c.offered >= prev_offered_, "offered counter went backwards");

  PeriodMeasurement m;
  m.k = ++k_;
  m.t = c.now;
  m.period = options_.period;
  m.target_delay = target_delay;

  m.fin = static_cast<double>(c.offered - prev_offered_) / elapsed;
  m.fin_forecast = m.fin;  // the loop overrides this when a predictor is set
  m.admitted = static_cast<double>(c.admitted - prev_admitted_) / elapsed;

  const double drained = c.drained_base_load - prev_drained_;
  const double busy = c.busy_seconds - prev_busy_;
  m.fout = drained / nominal_entry_cost_ / elapsed;

  // Measured per-tuple cost: CPU seconds consumed per entry-tuple
  // equivalent drained. Only meaningful when enough work was processed.
  if (drained > nominal_entry_cost_) {
    double measured = nominal_entry_cost_ * busy / drained;
    if (cost_noise) measured *= cost_noise();
    cost_estimate_ = options_.cost_ewma * measured +
                     (1.0 - options_.cost_ewma) * cost_estimate_;
  }
  m.cost = cost_estimate_;

  m.queue = c.queue;

  // Online headroom estimate: with queued work at both ends of the period
  // the CPU never idled, so work done per trace second IS the headroom.
  if (options_.adapt_headroom && m.queue > 1.0 && prev_queue_ > 1.0 &&
      busy > 0.0) {
    const double measured_h = std::min(options_.max_headroom, busy / elapsed);
    headroom_estimate_ = options_.headroom_ewma * measured_h +
                         (1.0 - options_.headroom_ewma) * headroom_estimate_;
  }
  prev_queue_ = m.queue;

  const double h =
      options_.adapt_headroom ? headroom_estimate_ : options_.headroom;
  m.y_hat = (m.queue + 1.0) * m.cost / h;

  if (c.delay_count > 0) {
    m.y_measured = c.delay_sum / static_cast<double>(c.delay_count);
    m.has_y_measured = true;
  }

  prev_offered_ = c.offered;
  prev_admitted_ = c.admitted;
  prev_drained_ = c.drained_base_load;
  prev_busy_ = c.busy_seconds;
  return m;
}

}  // namespace ctrlshed
