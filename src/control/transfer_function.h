#ifndef CTRLSHED_CONTROL_TRANSFER_FUNCTION_H_
#define CTRLSHED_CONTROL_TRANSFER_FUNCTION_H_

#include <complex>
#include <vector>

#include "control/polynomial.h"

namespace ctrlshed {

/// A discrete-time (z-domain) rational transfer function
/// G(z) = num(z) / den(z), with polynomials stored in ascending powers of z.
///
/// Supports the analysis the paper performs: poles/zeros, stability,
/// static gain, series/feedback composition, and time-domain simulation via
/// the corresponding difference equation.
class TransferFunction {
 public:
  TransferFunction(Polynomial num, Polynomial den);

  /// Convenience: coefficients in DESCENDING powers of z, the common
  /// textbook notation. E.g. Descending({1.0, -1.4, 0.49}, ...) means
  /// z^2 - 1.4 z + 0.49.
  static TransferFunction FromDescending(std::vector<double> num,
                                         std::vector<double> den);

  const Polynomial& num() const { return num_; }
  const Polynomial& den() const { return den_; }

  /// The system is proper when deg(num) <= deg(den); simulation requires it.
  bool IsProper() const;

  std::vector<std::complex<double>> Poles() const { return den_.Roots(); }
  std::vector<std::complex<double>> Zeros() const { return num_.Roots(); }

  /// True when every pole lies strictly inside the unit circle.
  bool IsStable() const;

  /// DC gain G(1); infinite when den(1) == 0 (integrator).
  double StaticGain() const;

  /// Series composition: this * other.
  TransferFunction Series(const TransferFunction& other) const;

  /// Unity negative feedback around the loop gain L = this:
  /// L / (1 + L). This is the closed-loop transfer function when `this`
  /// is C(z) G(z).
  TransferFunction CloseUnityFeedback() const;

  /// Simulates the output sequence for `input` with zero initial
  /// conditions, using the direct-form difference equation.
  std::vector<double> Simulate(const std::vector<double>& input) const;

  /// Response to a unit step of length `n`.
  std::vector<double> StepResponse(int n) const;

 private:
  Polynomial num_;
  Polynomial den_;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_CONTROL_TRANSFER_FUNCTION_H_
