#include "control/actuation_plan.h"

#include <algorithm>
#include <numeric>

#include "engine/engine.h"
#include "engine/operator.h"
#include "engine/query_network.h"

namespace ctrlshed {

std::string_view ActuationSiteName(ActuationSite site) {
  switch (site) {
    case ActuationSite::kEntry:
      return "entry";
    case ActuationSite::kInNetwork:
      return "in_network";
    case ActuationSite::kSplit:
      return "split";
  }
  return "entry";
}

namespace {

// Decomposes the scalar budget over the reported queues: cost-aware planners
// fill victims in descending drain-cost order (ties to the lowest operator
// index, matching ShedFromQueues' first-max-wins scan); random planners
// spread proportionally to each queue's share of the backlog load.
void DecomposeBudget(const QueueFeedback& fb, double budget_load,
                     bool cost_aware, std::vector<QueueBudget>* out) {
  out->clear();
  if (budget_load <= 0.0 || fb.queues.empty()) return;
  if (cost_aware) {
    std::vector<size_t> order(fb.queues.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&fb](size_t a, size_t b) {
      return fb.queues[a].drain_cost > fb.queues[b].drain_cost;
    });
    double remaining = budget_load;
    for (size_t i : order) {
      if (remaining <= 0.0) break;
      const double take = std::min(remaining, fb.queues[i].queued_load);
      if (take <= 0.0) continue;
      out->push_back({fb.queues[i].op_index, take});
      remaining -= take;
    }
    return;
  }
  if (fb.total_queued_load <= 0.0) return;
  for (const QueueFeedbackEntry& q : fb.queues) {
    const double take = budget_load * (q.queued_load / fb.total_queued_load);
    if (take > 0.0) out->push_back({q.op_index, take});
  }
}

}  // namespace

ActuationPlan ActuationPlanner::BuildPlan(double v, const PeriodMeasurement& m,
                                          const QueueFeedback& fb) const {
  ActuationPlan plan;
  plan.k = m.k;
  plan.v = v;
  plan.cost_aware = options_.cost_aware;
  plan.in_network_enabled = options_.allow_in_network;

  if (!options_.allow_in_network) {
    // Entry-only: the classic Eq. 13 gate, expression-for-expression the
    // arithmetic EntryShedder::Configure has always used.
    plan.site = ActuationSite::kEntry;
    if (m.fin_forecast <= 0.0) {
      plan.entry_alpha = 0.0;
      plan.planned_applied = v;
    } else {
      plan.entry_alpha = std::clamp(1.0 - v / m.fin_forecast, 0.0, 1.0);
      plan.planned_applied = (1.0 - plan.entry_alpha) * m.fin_forecast;
    }
    return plan;
  }

  // In-network planning: identical expression order to the legacy
  // QueueShedder::Configure so executors that re-derive the entry remainder
  // from the actual queue removal stay bit-identical to the pre-plan loop.
  const double T = m.period;
  plan.to_shed = (m.fin_forecast - v) * T;
  if (plan.to_shed <= 0.0) {
    plan.site = ActuationSite::kEntry;
    plan.entry_alpha = 0.0;
    plan.planned_applied = v;
    return plan;
  }
  plan.incoming = m.fin_forecast * T;
  plan.queue_target =
      std::min(std::max(0.0, plan.to_shed - plan.incoming), m.queue);
  plan.queue_budget_load = plan.queue_target * options_.nominal_entry_cost;

  // Analytic entry half, assuming the budget is achieved. Executors with
  // direct queue access (sim) recompute from the actual removal; detached
  // executors (rt entry gate, cluster agents) apply these values as-is.
  const double remainder = plan.to_shed - plan.queue_target;
  plan.entry_alpha =
      (plan.incoming > 0.0) ? std::clamp(remainder / plan.incoming, 0.0, 1.0)
                            : 0.0;
  const double unachieved = std::max(0.0, remainder - plan.incoming);
  plan.planned_applied = v + unachieved / T;

  plan.site = plan.queue_target > 0.0
                  ? (plan.entry_alpha > 0.0 ? ActuationSite::kSplit
                                            : ActuationSite::kInNetwork)
                  : ActuationSite::kEntry;
  DecomposeBudget(fb, plan.queue_budget_load, plan.cost_aware, &plan.budgets);
  return plan;
}

void CollectQueueFeedback(const Engine& engine, QueueFeedback* fb) {
  fb->queues.clear();
  fb->total_backlog_tuples = 0.0;
  fb->total_queued_load = 0.0;
  const QueryNetwork& net = engine.network();
  for (size_t i = 0; i < net.NumOperators(); ++i) {
    const OperatorBase* op = net.Operator(i);
    const size_t backlog = op->queue().size();
    if (backlog == 0) continue;
    const double drain_cost = net.RemainingCost(op);
    QueueFeedbackEntry entry;
    entry.op_index = static_cast<int>(i);
    entry.backlog_tuples = static_cast<double>(backlog);
    entry.queued_load = static_cast<double>(backlog) * drain_cost;
    entry.drain_cost = drain_cost;
    fb->total_backlog_tuples += entry.backlog_tuples;
    fb->total_queued_load += entry.queued_load;
    fb->queues.push_back(entry);
  }
}

}  // namespace ctrlshed
