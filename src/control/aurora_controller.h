#ifndef CTRLSHED_CONTROL_AURORA_CONTROLLER_H_
#define CTRLSHED_CONTROL_AURORA_CONTROLLER_H_

#include "control/controller.h"

namespace ctrlshed {

/// The open-loop Aurora/Borealis load shedder (paper Fig. 1 and
/// Section 4.3.2): every period, compare the measured load L = fin(k-1)
/// against the CPU capacity L0 = H / c(k-1); shed the excess
/// S(k) = max(0, L - L0), i.e. target an admitted rate of
///
///   v(k) = L0        when fin(k-1) > L0   (overloaded)
///   v(k) = fin(k-1)  otherwise            (admit everything)
///
/// No system output (delay or queue) is consulted — this is what makes the
/// method open-loop and produces Examples 1-3 of Section 4.3.2.
class AuroraController : public LoadController {
 public:
  /// `headroom` is the H used to derive the capacity threshold L0 = H/c.
  /// The paper's Fig. 16 experiment deliberately mis-tunes it to 0.96.
  explicit AuroraController(double headroom);

  double DesiredRate(const PeriodMeasurement& m) override;
  std::string_view name() const override { return "AURORA"; }

 private:
  double headroom_;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_CONTROL_AURORA_CONTROLLER_H_
