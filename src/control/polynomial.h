#ifndef CTRLSHED_CONTROL_POLYNOMIAL_H_
#define CTRLSHED_CONTROL_POLYNOMIAL_H_

#include <complex>
#include <vector>

namespace ctrlshed {

/// A real-coefficient polynomial c[0] + c[1] x + ... + c[n] x^n.
/// Used for the numerators/denominators of z-domain transfer functions.
class Polynomial {
 public:
  Polynomial() = default;

  /// Coefficients in ascending order of power.
  explicit Polynomial(std::vector<double> ascending_coeffs);

  /// Polynomial with the given roots (monic).
  static Polynomial FromRoots(const std::vector<std::complex<double>>& roots);

  /// Degree after trimming trailing (highest-power) zero coefficients;
  /// the zero polynomial has degree 0.
  int Degree() const;

  const std::vector<double>& coeffs() const { return coeffs_; }
  double operator[](size_t i) const { return i < coeffs_.size() ? coeffs_[i] : 0.0; }
  bool IsZero() const;

  double Evaluate(double x) const;
  std::complex<double> Evaluate(std::complex<double> x) const;

  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator*(const Polynomial& other) const;
  Polynomial operator*(double scalar) const;

  /// All complex roots, via the Durand-Kerner iteration. The polynomial
  /// must not be the zero polynomial; degree-0 polynomials have no roots.
  std::vector<std::complex<double>> Roots() const;

 private:
  void Trim();

  std::vector<double> coeffs_{0.0};
};

}  // namespace ctrlshed

#endif  // CTRLSHED_CONTROL_POLYNOMIAL_H_
