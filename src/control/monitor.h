#ifndef CTRLSHED_CONTROL_MONITOR_H_
#define CTRLSHED_CONTROL_MONITOR_H_

#include <cstdint>

#include "common/rng.h"
#include "control/controller.h"
#include "control/period_math.h"
#include "engine/engine.h"

namespace ctrlshed {

/// Options of the periodic measurement process.
struct MonitorOptions {
  SimTime period = 1.0;     ///< Control/sampling period T.
  double headroom = 0.97;   ///< H estimate used in the Eq. (11) delay estimate.
  /// EWMA weight of the newest per-period cost measurement in [0,1].
  /// 1 = no smoothing (the paper's "estimate c(k) with c(k-1)").
  double cost_ewma = 1.0;
  /// Multiplicative log-normal noise (sigma of log) applied to the
  /// per-period cost measurement. The simulated engine's counters are
  /// unrealistically exact compared to real Borealis, whose verification
  /// plots (paper Figs. 6B/7B) show ~10% modeling/estimation error; the
  /// performance experiments set this to 0.1 to restore that error band.
  /// 0 disables the noise.
  double estimation_noise = 0.0;
  uint64_t noise_seed = 99;
  /// Adaptive-control extension (the paper's Section 6 future work):
  /// estimate the true headroom H online instead of trusting the
  /// configured value. When the engine is saturated for a whole period,
  /// the CPU work done per wall second IS the headroom; an EWMA of that
  /// measurement replaces `headroom` in the Eq. (11) delay estimate,
  /// correcting the steady-state offset a mis-identified H causes.
  bool adapt_headroom = false;
  double headroom_ewma = 0.2;
};

/// The monitor of the feedback loop (Fig. 3): at every period boundary it
/// reads the engine's counters, forms the per-period measurement, and
/// computes the estimated output signal
///
///   y_hat(k) = q(k) c(k)/H + c(k)/H                      (Eq. 11)
///
/// from the virtual queue length — the paper's answer to the delay signal
/// not being measurable in real time (Section 4.5.1). The measurement
/// math itself lives in control/period_math.h, shared with the rt
/// runtime's RtMonitor; this class binds it to a sim Engine.
class Monitor {
 public:
  /// `engine` must outlive the monitor.
  Monitor(Engine* engine, MonitorOptions options);

  /// Observes one departure (wire the engine's departure callback here,
  /// possibly fanned out with the metrics accumulators).
  void OnDeparture(const Departure& d);

  /// Takes the period-boundary sample. `now` is the period end time,
  /// `offered_cum` the cumulative count of tuples offered by the sources
  /// (pre-shedding; the entry shedder sits before the engine so the engine
  /// cannot count them), and `target_delay` the current setpoint.
  PeriodMeasurement Sample(SimTime now, uint64_t offered_cum,
                           double target_delay);

  /// Current smoothed per-tuple cost estimate (seconds).
  double CostEstimate() const { return math_.CostEstimate(); }

  /// Headroom in use for the delay estimate: the configured value, or the
  /// online estimate when `adapt_headroom` is set.
  double HeadroomEstimate() const { return math_.HeadroomEstimate(); }

  const MonitorOptions& options() const { return options_; }

 private:
  Engine* engine_;
  MonitorOptions options_;
  Rng noise_rng_;
  PeriodMath math_;

  // Departure accumulation since the last sample.
  double delay_sum_ = 0.0;
  uint64_t delay_count_ = 0;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_CONTROL_MONITOR_H_
