#ifndef CTRLSHED_CONTROL_CTRL_CONTROLLER_H_
#define CTRLSHED_CONTROL_CTRL_CONTROLLER_H_

#include "control/controller.h"
#include "control/pole_placement.h"

namespace ctrlshed {

/// Which signal the controller feeds back.
enum class FeedbackSignal {
  /// The virtual-queue estimate y_hat of Eq. (11) — the paper's answer to
  /// the unavailability of a real-time delay measurement (Section 4.5.1).
  kVirtualQueue,
  /// The measured mean delay of tuples that departed last period. This
  /// signal is delayed by an unknown amount (the delay itself!), which is
  /// exactly why the paper rejects it; exposed for the ablation bench.
  kMeasuredDelay,
};

/// Options of the paper's feedback controller (the CTRL method).
struct CtrlOptions {
  /// Controller gains; the default is the paper's published set
  /// (b0 = 0.4, b1 = -0.31, a = -0.8; closed-loop poles at 0.7).
  ControllerGains gains = DesignPolePlacement(0.7, 0.7, -0.8);

  /// The controller's estimate of the headroom factor H.
  double headroom = 0.97;

  /// Feedback signal selection (see FeedbackSignal).
  FeedbackSignal feedback = FeedbackSignal::kVirtualQueue;

  /// Back-calculation anti-windup: when the actuator saturates (it cannot
  /// admit more tuples than arrive, nor fewer than zero), rewrite the
  /// controller state with the realized control so the recursion does not
  /// wind up. The paper does not discuss saturation; this is a standard
  /// remedy and can be disabled for ablation.
  bool anti_windup = true;
};

/// The paper's pole-placement feedback controller (Section 4.4, Eq. 10):
///
///   e(k) = yd - y_hat(k)
///   u(k) = (H / (c T)) (b0 e(k) + b1 e(k-1)) - a u(k-1)
///   v(k) = u(k) + fout(k)
///
/// where y_hat is the virtual-queue delay estimate and u is the allowed
/// growth rate of the virtual queue.
class CtrlController : public LoadController {
 public:
  explicit CtrlController(CtrlOptions options);

  double DesiredRate(const PeriodMeasurement& m) override;
  void NotifyActuation(double v_applied) override;
  void SetHeadroom(double headroom) override;
  std::string_view name() const override { return "CTRL"; }

  /// Resets the dynamic state (e(k-1), u(k-1)).
  void Reset();

  const CtrlOptions& options() const { return options_; }

 private:
  CtrlOptions options_;
  double prev_error_ = 0.0;
  double prev_u_ = 0.0;
  double last_fout_ = 0.0;
  double last_v_ = 0.0;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_CONTROL_CTRL_CONTROLLER_H_
