#ifndef CTRLSHED_CORE_STREAM_SYSTEM_H_
#define CTRLSHED_CORE_STREAM_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "control/controller.h"
#include "control/rate_predictor.h"
#include "core/feedback_loop.h"
#include "engine/engine.h"
#include "engine/query_network.h"
#include "engine/scheduler.h"
#include "metrics/qos_metrics.h"
#include "shedding/shedder.h"
#include "sim/simulation.h"
#include "workload/arrival_source.h"
#include "workload/rate_trace.h"

namespace ctrlshed {

class StreamSystem;

/// Fluent builder for one stream's processing pipeline. Obtained from
/// StreamSystem::AddStream; each call appends an operator and returns the
/// builder so stages chain:
///
///   sys.AddStream("trades")
///      .Filter(0.8, 0.9)
///      .Map(1.2)
///      .Aggregate(0.5, 16);
///
/// Costs are given in MILLISECONDS (the natural unit at this scale).
class StreamBuilder {
 public:
  /// Appends a fixed-selectivity filter.
  StreamBuilder& Filter(double cost_ms, double selectivity);

  /// Appends a map (optional payload transform).
  StreamBuilder& Map(double cost_ms, MapOp::MapFn fn = nullptr);

  /// Appends a tumbling window aggregate.
  StreamBuilder& Aggregate(double cost_ms, int window_size,
                           WindowAggregateOp::Kind kind =
                               WindowAggregateOp::Kind::kMean);

  /// Appends a sliding band-join whose other input is the current end of
  /// `other`'s pipeline. Both pipelines continue from the join's output;
  /// further stages may be added through either builder.
  StreamBuilder& JoinWith(StreamBuilder& other, double cost_ms,
                          double window_seconds, double band,
                          double expected_selectivity);

  /// Index of the underlying stream source.
  int source() const { return source_; }

 private:
  friend class StreamSystem;
  StreamBuilder(StreamSystem* system, int source) : system_(system), source_(source) {}

  void Append(OperatorBase* op);

  StreamSystem* system_;
  int source_;
  OperatorBase* tail_ = nullptr;
};

/// One-stop facade over the whole library: build a query network with
/// fluent pipelines, pick a shedding policy, attach workloads, run on the
/// virtual clock, read the QoS. See examples/quickstart.cpp.
class StreamSystem {
 public:
  enum class Policy {
    kNone,      ///< No shedding (observe the uncontrolled system).
    kControl,   ///< The paper's pole-placement feedback controller.
    kBaseline,  ///< Naive model-inverting feedback.
    kAurora,    ///< Open-loop Aurora shedding.
  };

  enum class Actuator {
    kEntry,     ///< Random drops before the network (Eq. 13).
    kQueue,     ///< In-network shedding from random queues.
    kSemantic,  ///< Utility-ordered entry drops.
    kWeighted,  ///< Priority-weighted drops (set `stream_priorities`).
  };

  struct Options {
    double headroom = 0.97;        ///< Fraction of CPU for query processing.
    SimTime control_period = 1.0;  ///< T.
    double target_delay = 2.0;     ///< yd, seconds.
    Policy policy = Policy::kControl;
    Actuator actuator = Actuator::kEntry;
    PredictorKind predictor = PredictorKind::kLastValue;
    SchedulerKind scheduler = SchedulerKind::kRoundRobin;
    /// Per-stream priorities for Actuator::kWeighted (higher survives
    /// longer); must match the number of declared streams.
    std::vector<double> stream_priorities;
    /// Keep per-stream offered/admitted/delay statistics.
    bool track_per_stream = false;
    uint64_t seed = 42;
  };

  StreamSystem();  // default options
  explicit StreamSystem(Options options);
  ~StreamSystem();

  StreamSystem(const StreamSystem&) = delete;
  StreamSystem& operator=(const StreamSystem&) = delete;

  /// Declares a new input stream and returns its pipeline builder. All
  /// streams must be declared (and their pipelines built) before Run.
  StreamBuilder& AddStream(std::string name);

  /// Attaches an arrival workload to a declared stream.
  void SetWorkload(int source, RateTrace trace,
                   ArrivalSource::Spacing spacing =
                       ArrivalSource::Spacing::kPoisson);

  /// Changes the delay target at virtual time `when`.
  void ScheduleTargetDelay(SimTime when, double target);

  /// Runs the system until virtual time `end`. May be called repeatedly
  /// with increasing horizons; the first call freezes the topology.
  void Run(SimTime end);

  // --- Results (valid after Run) ------------------------------------------

  QosSummary Summary() const;
  const Recorder& recorder() const;
  double LossRatio() const;

  /// Per-stream statistics (null unless `track_per_stream` was set).
  const PerSourceStats* per_stream() const;

  /// The model constant c: expected CPU cost of one tuple (seconds).
  double NominalCost() const;

  const Engine& engine() const;

 private:
  friend class StreamBuilder;

  void Freeze();  // finalizes the network and wires the loop

  Options options_;
  Simulation sim_;
  QueryNetwork net_;
  std::vector<std::unique_ptr<StreamBuilder>> streams_;
  std::vector<std::string> stream_names_;
  struct PendingWorkload {
    int source;
    RateTrace trace;
    ArrivalSource::Spacing spacing;
  };
  std::vector<PendingWorkload> pending_workloads_;
  std::vector<std::pair<SimTime, double>> pending_setpoints_;

  // Live after Freeze().
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<LoadController> controller_;
  std::unique_ptr<Shedder> shedder_;
  std::unique_ptr<RatePredictor> predictor_;
  std::unique_ptr<FeedbackLoop> loop_;
  std::vector<std::unique_ptr<ArrivalSource>> sources_;
  bool frozen_ = false;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_CORE_STREAM_SYSTEM_H_
