#ifndef CTRLSHED_CORE_FEEDBACK_LOOP_H_
#define CTRLSHED_CORE_FEEDBACK_LOOP_H_

#include <cstdint>

#include "control/controller.h"
#include "control/monitor.h"
#include "control/rate_predictor.h"
#include "engine/engine.h"
#include <memory>

#include "metrics/per_source_stats.h"
#include "metrics/qos_metrics.h"
#include "metrics/recorder.h"
#include "shedding/shedder.h"
#include "sim/simulation.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/health.h"

namespace ctrlshed {

class Telemetry;

/// Options of the closed control loop.
struct FeedbackLoopOptions {
  SimTime period = 1.0;        ///< Control period T.
  double target_delay = 2.0;   ///< Initial setpoint yd (seconds).
  double headroom = 0.97;      ///< H estimate shared by monitor & estimator.
  double cost_ewma = 1.0;      ///< Cost-estimate smoothing (see Monitor).
  double estimation_noise = 0.0;  ///< Cost-measurement noise (see Monitor).
  uint64_t noise_seed = 99;
  bool adapt_headroom = false;    ///< Online H estimation (see Monitor).
  /// When > 0, keep per-stream offered/admitted/delay statistics for this
  /// many sources (see PerSourceStats). 0 disables the accounting.
  int track_sources = 0;
  /// Build in-network-enabled ActuationPlans: each period the loop collects
  /// per-queue backlog feedback from the engine and lets the planner split
  /// the shed between operator queues and the entry gate. Off = classic
  /// entry-only plans (bit-identical to the pre-plan loop).
  bool allow_in_network_shed = false;
  /// Victim policy for the in-network half (see QueueShedder).
  bool cost_aware_shed = false;
  /// When set, every finished control period is published to the
  /// telemetry timeline sinks (streaming files + SSE) as it happens,
  /// instead of only being exported after the run. Not owned.
  Telemetry* telemetry = nullptr;
};

/// The complete feedback control loop of Fig. 3: monitor -> controller ->
/// actuator (shedder) -> plant (engine). This is the paper's contribution
/// assembled into a reusable component.
///
/// Wiring: route every source's arrivals into OnArrival (the loop applies
/// the shedder and injects survivors into the engine), call Start once
/// before Simulation::Run, and read the metrics afterwards.
class FeedbackLoop {
 public:
  /// All pointees must outlive the loop. The controller may be null, in
  /// which case no shedding control happens (open run: admit everything) —
  /// useful for system identification.
  FeedbackLoop(Simulation* sim, Engine* engine, LoadController* controller,
               Shedder* shedder, FeedbackLoopOptions options);

  FeedbackLoop(const FeedbackLoop&) = delete;
  FeedbackLoop& operator=(const FeedbackLoop&) = delete;

  /// Installs an additional per-departure observer (e.g. for system
  /// identification, which groups delays by arrival period). Must be
  /// called before Start.
  void SetDepartureObserver(DepartureCallback observer);

  /// Installs a one-step-ahead arrival-rate predictor feeding the
  /// actuator's fin forecast (default: the paper's last-value estimate).
  /// The pointee must outlive the loop; must be called before Start.
  void SetRatePredictor(RatePredictor* predictor);

  /// Installs callbacks and schedules the periodic control events.
  void Start();

  /// Entry point for arriving tuples (wire ArrivalSource sinks here).
  void OnArrival(const Tuple& t);

  /// Changes the delay setpoint at runtime (Fig. 18).
  void SetTargetDelay(double yd);
  double target_delay() const { return target_delay_; }

  // --- Results ------------------------------------------------------------

  const QosAccumulator& qos() const { return qos_; }
  const Recorder& recorder() const { return recorder_; }
  const Monitor& monitor() const { return monitor_; }

  /// Current control-loop health verdict (see telemetry/health.h).
  /// Thread-safe — the telemetry server's /health handler calls it.
  HealthReport Health() const { return health_.Report(); }

  /// Per-stream statistics, or nullptr when `track_sources` was 0.
  const PerSourceStats* per_source() const { return per_source_.get(); }

  uint64_t offered() const { return offered_; }
  uint64_t entry_shed() const { return entry_shed_; }

  /// Total shed tuples (entry drops + in-network shedding) over offered.
  double LossRatio() const;

  /// End-of-run summary combining delay metrics and loss.
  QosSummary Summary() const;

 private:
  void ControlTick(SimTime now);

  Simulation* sim_;
  Engine* engine_;
  LoadController* controller_;
  Shedder* shedder_;
  FeedbackLoopOptions options_;

  Monitor monitor_;
  QosAccumulator qos_;
  Recorder recorder_;
  std::unique_ptr<PerSourceStats> per_source_;

  DepartureCallback observer_;
  RatePredictor* predictor_ = nullptr;
  ActuationPlanner planner_;
  QueueFeedback feedback_;  ///< Scratch, refilled each period.
  FlightRecorder flight_{"sim"};  ///< Post-mortem ring (last periods/events).
  HealthMonitor health_;
  HeadroomTracker headroom_tracker_;
  uint64_t prev_queue_shed_ = 0;  ///< Engine shed_lineages at last tick.
  double prev_busy_seconds_ = 0.0;
  double prev_drained_base_load_ = 0.0;
  ActuationSite last_site_ = ActuationSite::kEntry;
  double target_delay_;
  uint64_t offered_ = 0;
  uint64_t entry_shed_ = 0;
  bool started_ = false;
};

}  // namespace ctrlshed

#endif  // CTRLSHED_CORE_FEEDBACK_LOOP_H_
