#include "core/stream_system.h"

#include <utility>

#include "common/macros.h"
#include "control/aurora_controller.h"
#include "control/baseline_controller.h"
#include "control/ctrl_controller.h"
#include "shedding/aurora_shedder.h"
#include "shedding/entry_shedder.h"
#include "shedding/queue_shedder.h"
#include "shedding/semantic_shedder.h"
#include "shedding/weighted_shedder.h"

namespace ctrlshed {

StreamBuilder& StreamBuilder::Filter(double cost_ms, double selectivity) {
  Append(system_->net_.Add(std::make_unique<FilterOp>(
      "filter", Millis(cost_ms), selectivity)));
  return *this;
}

StreamBuilder& StreamBuilder::Map(double cost_ms, MapOp::MapFn fn) {
  Append(system_->net_.Add(
      std::make_unique<MapOp>("map", Millis(cost_ms), std::move(fn))));
  return *this;
}

StreamBuilder& StreamBuilder::Aggregate(double cost_ms, int window_size,
                                        WindowAggregateOp::Kind kind) {
  Append(system_->net_.Add(std::make_unique<WindowAggregateOp>(
      "aggregate", Millis(cost_ms), window_size, kind)));
  return *this;
}

StreamBuilder& StreamBuilder::JoinWith(StreamBuilder& other, double cost_ms,
                                       double window_seconds, double band,
                                       double expected_selectivity) {
  CS_CHECK_MSG(tail_ != nullptr && other.tail_ != nullptr,
               "both pipelines need at least one stage before a join");
  CS_CHECK_MSG(system_ == other.system_, "cannot join across systems");
  auto* join = system_->net_.Add(std::make_unique<SlidingJoinOp>(
      "join", Millis(cost_ms), window_seconds, band, expected_selectivity));
  tail_->ConnectTo(join, /*port=*/0);
  other.tail_->ConnectTo(join, /*port=*/1);
  tail_ = join;
  other.tail_ = join;
  return *this;
}

void StreamBuilder::Append(OperatorBase* op) {
  CS_CHECK_MSG(!system_->frozen_, "topology is frozen after Run");
  if (tail_ == nullptr) {
    system_->net_.AddEntry(source_, op);
  } else {
    tail_->ConnectTo(op, /*port=*/0);
  }
  tail_ = op;
}

StreamSystem::StreamSystem() : StreamSystem(Options{}) {}

StreamSystem::StreamSystem(Options options) : options_(options) {}

StreamSystem::~StreamSystem() = default;

StreamBuilder& StreamSystem::AddStream(std::string name) {
  CS_CHECK_MSG(!frozen_, "topology is frozen after Run");
  const int source = static_cast<int>(streams_.size());
  streams_.push_back(
      std::unique_ptr<StreamBuilder>(new StreamBuilder(this, source)));
  stream_names_.push_back(std::move(name));
  return *streams_.back();
}

void StreamSystem::SetWorkload(int source, RateTrace trace,
                               ArrivalSource::Spacing spacing) {
  CS_CHECK_MSG(!frozen_, "workloads must be attached before Run");
  CS_CHECK_MSG(source >= 0 && static_cast<size_t>(source) < streams_.size(),
               "unknown stream");
  pending_workloads_.push_back(
      PendingWorkload{source, std::move(trace), spacing});
}

void StreamSystem::ScheduleTargetDelay(SimTime when, double target) {
  CS_CHECK_MSG(!frozen_, "setpoint schedule must be set before Run");
  pending_setpoints_.emplace_back(when, target);
}

void StreamSystem::Freeze() {
  CS_CHECK_MSG(!streams_.empty(), "no streams declared");
  for (size_t s = 0; s < streams_.size(); ++s) {
    CS_CHECK_MSG(streams_[s]->tail_ != nullptr,
                 "a declared stream has an empty pipeline");
  }
  net_.Finalize();

  engine_ = std::make_unique<Engine>(
      &net_, options_.headroom,
      MakeScheduler(options_.scheduler, options_.seed + 5));
  sim_.AttachProcess(engine_.get());

  switch (options_.policy) {
    case Policy::kNone:
      break;
    case Policy::kControl: {
      CtrlOptions opts;
      opts.headroom = options_.headroom;
      controller_ = std::make_unique<CtrlController>(opts);
      break;
    }
    case Policy::kBaseline:
      controller_ = std::make_unique<BaselineController>(options_.headroom);
      break;
    case Policy::kAurora:
      controller_ = std::make_unique<AuroraController>(options_.headroom);
      break;
  }

  if (controller_ != nullptr) {
    if (options_.policy == Policy::kAurora) {
      shedder_ = std::make_unique<AuroraQuotaShedder>();
    } else {
      switch (options_.actuator) {
        case Actuator::kEntry:
          shedder_ = std::make_unique<EntryShedder>(options_.seed + 2);
          break;
        case Actuator::kQueue:
          shedder_ =
              std::make_unique<QueueShedder>(engine_.get(), options_.seed + 2);
          break;
        case Actuator::kSemantic:
          shedder_ = std::make_unique<SemanticShedder>();
          break;
        case Actuator::kWeighted: {
          CS_CHECK_MSG(options_.stream_priorities.size() == streams_.size(),
                       "stream_priorities must match the declared streams");
          shedder_ = std::make_unique<WeightedEntryShedder>(
              options_.stream_priorities, options_.seed + 2);
          break;
        }
      }
    }
  }

  FeedbackLoopOptions loop_opts;
  loop_opts.period = options_.control_period;
  loop_opts.target_delay = options_.target_delay;
  loop_opts.headroom = options_.headroom;
  if (options_.track_per_stream) {
    loop_opts.track_sources = static_cast<int>(streams_.size());
  }
  loop_ = std::make_unique<FeedbackLoop>(&sim_, engine_.get(),
                                         controller_.get(), shedder_.get(),
                                         loop_opts);
  if (options_.predictor != PredictorKind::kLastValue) {
    predictor_ = MakePredictor(options_.predictor);
    loop_->SetRatePredictor(predictor_.get());
  }
  loop_->Start();

  for (const auto& [when, target] : pending_setpoints_) {
    sim_.Schedule(when, [this, target = target]() {
      loop_->SetTargetDelay(target);
    });
  }

  for (PendingWorkload& w : pending_workloads_) {
    sources_.push_back(std::make_unique<ArrivalSource>(
        w.source, std::move(w.trace), w.spacing,
        options_.seed + 10 + static_cast<uint64_t>(w.source)));
    sources_.back()->Start(
        &sim_, [this](const Tuple& t) { loop_->OnArrival(t); });
  }
  pending_workloads_.clear();
  frozen_ = true;
}

void StreamSystem::Run(SimTime end) {
  if (!frozen_) Freeze();
  sim_.Run(end);
}

QosSummary StreamSystem::Summary() const {
  CS_CHECK_MSG(frozen_, "Run first");
  return loop_->Summary();
}

const Recorder& StreamSystem::recorder() const {
  CS_CHECK_MSG(frozen_, "Run first");
  return loop_->recorder();
}

double StreamSystem::LossRatio() const {
  CS_CHECK_MSG(frozen_, "Run first");
  return loop_->LossRatio();
}

double StreamSystem::NominalCost() const {
  CS_CHECK_MSG(frozen_, "Run first");
  return engine_->NominalEntryCost();
}

const PerSourceStats* StreamSystem::per_stream() const {
  CS_CHECK_MSG(frozen_, "Run first");
  return loop_->per_source();
}

const Engine& StreamSystem::engine() const {
  CS_CHECK_MSG(frozen_, "Run first");
  return *engine_;
}

}  // namespace ctrlshed
