#include "core/feedback_loop.h"

#include "common/macros.h"
#include "telemetry/telemetry.h"

namespace ctrlshed {

FeedbackLoop::FeedbackLoop(Simulation* sim, Engine* engine,
                           LoadController* controller, Shedder* shedder,
                           FeedbackLoopOptions options)
    : sim_(sim),
      engine_(engine),
      controller_(controller),
      shedder_(shedder),
      options_(options),
      monitor_(engine,
               [&options] {
                 MonitorOptions mo;
                 mo.period = options.period;
                 mo.headroom = options.headroom;
                 mo.cost_ewma = options.cost_ewma;
                 mo.estimation_noise = options.estimation_noise;
                 mo.noise_seed = options.noise_seed;
                 mo.adapt_headroom = options.adapt_headroom;
                 return mo;
               }()),
      qos_(options.target_delay),
      planner_(ActuationPlannerOptions{
          engine != nullptr ? engine->NominalEntryCost() : 1.0,
          options.allow_in_network_shed, options.cost_aware_shed}),
      target_delay_(options.target_delay) {
  CS_CHECK(sim_ != nullptr);
  CS_CHECK(engine_ != nullptr);
  if (options.track_sources > 0) {
    per_source_ = std::make_unique<PerSourceStats>(options.track_sources);
  }
  // controller_ may be null (uncontrolled run); shedder is required only
  // when a controller is present.
  if (controller_ != nullptr) CS_CHECK(shedder_ != nullptr);
}

void FeedbackLoop::SetDepartureObserver(DepartureCallback observer) {
  CS_CHECK_MSG(!started_, "observer must be set before Start");
  observer_ = std::move(observer);
}

void FeedbackLoop::SetRatePredictor(RatePredictor* predictor) {
  CS_CHECK_MSG(!started_, "predictor must be set before Start");
  predictor_ = predictor;
}

void FeedbackLoop::Start() {
  CS_CHECK_MSG(!started_, "Start called twice");
  started_ = true;

  engine_->SetDepartureCallback([this](const Departure& d) {
    monitor_.OnDeparture(d);
    qos_.OnDeparture(d);
    if (per_source_) per_source_->OnDeparture(d);
    if (observer_) observer_(d);
  });

  sim_->ScheduleEvery(options_.period, options_.period, [this](SimTime now) {
    ControlTick(now);
    return true;
  });
}

void FeedbackLoop::OnArrival(const Tuple& t) {
  ++offered_;
  if (per_source_) per_source_->OnOffered(t);
  if (shedder_ != nullptr && controller_ != nullptr && !shedder_->Admit(t)) {
    ++entry_shed_;
    return;
  }
  if (per_source_) per_source_->OnAdmitted(t);
  engine_->Inject(t, t.arrival_time);
}

void FeedbackLoop::SetTargetDelay(double yd) {
  CS_CHECK_MSG(yd > 0.0, "target delay must be positive");
  target_delay_ = yd;
  qos_.SetTargetDelay(yd);
}

void FeedbackLoop::ControlTick(SimTime now) {
  PeriodMeasurement m = monitor_.Sample(now, offered_, target_delay_);
  if (predictor_ != nullptr) m.fin_forecast = predictor_->Observe(m.fin);
  double v = 0.0;
  double alpha = 0.0;
  ActuationSite site = ActuationSite::kEntry;
  if (controller_ != nullptr) {
    v = controller_->DesiredRate(m);
    if (options_.allow_in_network_shed) {
      CollectQueueFeedback(*engine_, &feedback_);
    }
    const ActuationPlan plan = planner_.BuildPlan(v, m, feedback_);
    const double applied = shedder_->ApplyPlan(plan, m);
    controller_->NotifyActuation(applied);
    alpha = shedder_->drop_probability();
    site = plan.site;
  }
  PeriodRecord rec{m, v, alpha, /*lateness=*/0.0, /*shard_q=*/{}};
  rec.site = site;
  const EngineCounters& counters = engine_->counters();
  rec.queue_shed = counters.shed_lineages - prev_queue_shed_;
  prev_queue_shed_ = counters.shed_lineages;
  rec.h_hat = headroom_tracker_.Update(
      counters.drained_base_load - prev_drained_base_load_,
      counters.busy_seconds - prev_busy_seconds_);
  prev_drained_base_load_ = counters.drained_base_load;
  prev_busy_seconds_ = counters.busy_seconds;
  if (site != last_site_) {
    const std::string detail = std::string(ActuationSiteName(last_site_)) +
                               " -> " + std::string(ActuationSiteName(site));
    flight_.RecordEvent("site_switch", detail.c_str(), now);
    last_site_ = site;
  }
  flight_.RecordPeriod(rec);
  health_.ObservePeriod(rec);
  health_.SetHeadroom(options_.headroom, rec.h_hat);
  if (options_.telemetry != nullptr) {
    options_.telemetry->metrics()
        ->GetCounter(std::string("actuation.site.") +
                     std::string(ActuationSiteName(site)))
        ->Add();
    options_.telemetry->PublishTimelineRow(rec);
    health_.SetSelfLoss(/*trace_events=*/0, /*trace_dropped=*/0,
                        options_.telemetry->sse_rows_published(),
                        options_.telemetry->sse_rows_dropped());
  }
  recorder_.Record(std::move(rec));
}

double FeedbackLoop::LossRatio() const {
  if (offered_ == 0) return 0.0;
  const uint64_t shed = entry_shed_ + engine_->counters().shed_lineages;
  return static_cast<double>(shed) / static_cast<double>(offered_);
}

QosSummary FeedbackLoop::Summary() const {
  QosSummary s;
  s.accumulated_violation = qos_.accumulated_violation();
  s.delayed_tuples = qos_.delayed_tuples();
  s.max_overshoot = qos_.max_overshoot();
  s.loss_ratio = LossRatio();
  s.offered = offered_;
  s.entry_shed = entry_shed_;
  s.queue_shed = engine_->counters().shed_lineages;
  s.shed = s.entry_shed + s.ring_dropped + s.queue_shed;
  s.departures = qos_.departures();
  s.mean_delay = qos_.mean_delay();
  s.p50_delay = qos_.delay_histogram().Quantile(0.50);
  s.p95_delay = qos_.delay_histogram().Quantile(0.95);
  s.p99_delay = qos_.delay_histogram().Quantile(0.99);
  return s;
}

}  // namespace ctrlshed
