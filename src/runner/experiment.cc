#include "runner/experiment.h"

#include <cstdio>
#include <memory>
#include <optional>

#include "common/macros.h"
#include "control/aurora_controller.h"
#include "control/baseline_controller.h"
#include "control/ctrl_controller.h"
#include "control/pi_controller.h"
#include "core/feedback_loop.h"
#include "engine/query_network.h"
#include "runner/networks.h"
#include "shedding/aurora_shedder.h"
#include "shedding/entry_shedder.h"
#include "shedding/queue_shedder.h"
#include "sim/simulation.h"
#include "telemetry/op_telemetry.h"

namespace ctrlshed {

RateTrace BuildArrivalTrace(const ExperimentConfig& config) {
  switch (config.workload) {
    case WorkloadKind::kWeb:
      return MakeWebTrace(config.duration, config.web, config.seed);
    case WorkloadKind::kPareto:
      return MakeParetoTrace(config.duration, config.pareto, config.seed);
    case WorkloadKind::kMmpp:
      return MakeMmppTrace(config.duration, config.mmpp, config.seed);
    case WorkloadKind::kStep:
      return MakeStepTrace(config.duration, config.step_at, config.step_low,
                           config.step_high);
    case WorkloadKind::kSine:
      return MakeSineTrace(config.duration, config.sine_lo, config.sine_hi,
                           config.sine_period);
    case WorkloadKind::kRamp:
      return MakeRampTrace(config.duration, config.ramp_from, config.ramp_to);
    case WorkloadKind::kConstant:
      return MakeConstantTrace(config.duration, config.constant_rate);
  }
  CS_CHECK_MSG(false, "unknown workload kind");
  return RateTrace();
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  CS_CHECK_MSG(config.capacity_rate > 0.0, "capacity must be positive");

  // The sim is single-threaded, so the whole run traces onto one track:
  // phase spans (build/run/summarize) plus the timeline export at the end.
  std::unique_ptr<Telemetry> telemetry = Telemetry::Open(config.telemetry);
  TraceBuffer* trace_buf =
      telemetry ? telemetry->RegisterThread("sim.main") : nullptr;
  if (telemetry && !telemetry->dir().empty()) {
    // Post-mortem dumps land next to the run's other telemetry files.
    SetFlightDumpPath(telemetry->dir() + "/ctrlshed.flightdump.json");
  }
  std::optional<ScopedSpan> phase;
  phase.emplace(trace_buf, "build_plant");

  // The model constant c: at nominal cost the engine sustains exactly
  // `capacity_rate` tuples/s, i.e. c = H_true / capacity.
  const double nominal_cost = config.headroom_true / config.capacity_rate;

  Simulation sim;
  QueryNetwork net;
  BuildIdentificationNetwork(&net, nominal_cost);
  Engine engine(&net, config.headroom_true,
                MakeScheduler(config.scheduler, config.seed + 5));
  sim.AttachProcess(&engine);

  // Operator-granular instrumentation: op:<name> spans on the sim track,
  // per-operator processed/dropped counters for /metrics.
  std::unique_ptr<OperatorTelemetry> op_telemetry;
  if (telemetry) {
    op_telemetry =
        std::make_unique<OperatorTelemetry>(telemetry.get(), trace_buf, net);
    engine.SetObserver(op_telemetry.get());
    const double duration = config.duration;
    const double period = config.period;
    telemetry->SetStatusSource([duration, period] {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "{\"mode\":\"sim\",\"duration\":%g,\"period\":%g}",
                    duration, period);
      return std::string(buf);
    });
  }

  RateTrace cost_trace;
  if (config.vary_cost) {
    cost_trace = MakeCostTrace(config.duration, config.cost_params,
                               config.seed + 1);
    const double base = config.cost_params.base_ms;
    engine.SetCostMultiplier(
        [&cost_trace, base](SimTime t) { return cost_trace.At(t) / base; });
  }

  std::unique_ptr<LoadController> controller;
  switch (config.method) {
    case Method::kNone:
      break;
    case Method::kCtrl: {
      CtrlOptions opts;
      opts.gains = config.gains;
      opts.headroom = config.headroom_est;
      opts.feedback = config.ctrl_feedback;
      opts.anti_windup = config.anti_windup;
      controller = std::make_unique<CtrlController>(opts);
      break;
    }
    case Method::kBaseline:
      controller = std::make_unique<BaselineController>(config.headroom_est);
      break;
    case Method::kAurora:
      controller = std::make_unique<AuroraController>(config.headroom_est);
      break;
    case Method::kPi:
      controller = std::make_unique<PiController>(config.headroom_est);
      break;
  }

  std::unique_ptr<Shedder> shedder;
  if (controller != nullptr) {
    if (config.method == Method::kAurora) {
      // Aurora sheds an absolute load amount via drop boxes (Eq. 7/8), not
      // a drop fraction; the quota shedder realizes those semantics.
      shedder = std::make_unique<AuroraQuotaShedder>();
    } else if (config.use_queue_shedder) {
      shedder = std::make_unique<QueueShedder>(&engine, config.seed + 2,
                                               config.cost_aware_shedding);
    } else {
      shedder = std::make_unique<EntryShedder>(config.seed + 2);
    }
  }

  FeedbackLoopOptions loop_opts;
  loop_opts.period = config.period;
  loop_opts.target_delay = config.target_delay;
  loop_opts.headroom = config.headroom_est;
  loop_opts.cost_ewma = config.cost_ewma;
  loop_opts.estimation_noise = config.estimation_noise;
  loop_opts.noise_seed = config.seed + 4;
  loop_opts.adapt_headroom = config.adapt_headroom;
  loop_opts.allow_in_network_shed =
      config.use_queue_shedder && config.method != Method::kAurora;
  loop_opts.cost_aware_shed = config.cost_aware_shedding;
  loop_opts.telemetry = telemetry.get();
  FeedbackLoop loop(&sim, &engine, controller.get(), shedder.get(), loop_opts);
  if (telemetry && telemetry->server() != nullptr) {
    // Lifetime: the explicit telemetry->Stop() below shuts the server
    // down before `loop` leaves scope (failures abort, never unwind).
    telemetry->server()->SetHealthCallback([&loop] {
      const HealthReport r = loop.Health();
      return std::make_pair(r.HttpStatus(), r.ToJson());
    });
  }
  if (config.departure_observer) {
    loop.SetDepartureObserver(config.departure_observer);
  }
  std::unique_ptr<RatePredictor> predictor;
  if (config.predictor != PredictorKind::kLastValue) {
    predictor = MakePredictor(config.predictor);
    loop.SetRatePredictor(predictor.get());
  }
  loop.Start();

  for (const auto& [when, yd] : config.setpoint_schedule) {
    CS_CHECK_MSG(when >= 0.0 && when <= config.duration,
                 "setpoint change outside the run");
    sim.Schedule(when, [&loop, yd = yd]() { loop.SetTargetDelay(yd); });
  }

  ArrivalSource source(0, BuildArrivalTrace(config), config.spacing,
                       config.seed + 3);
  source.Start(&sim, [&loop](const Tuple& t) { loop.OnArrival(t); });

  phase.emplace(trace_buf, "simulate");
  sim.Run(config.duration);
  phase.emplace(trace_buf, "summarize");

  ExperimentResult result;
  result.summary = loop.Summary();
  result.recorder = loop.recorder();
  result.arrival_trace = source.trace();
  result.nominal_cost = nominal_cost;
  result.health = loop.Health();
  phase.reset();

  if (telemetry) {
    MetricsRegistry* reg = telemetry->metrics();
    reg->GetCounter("sim.offered")->Add(result.summary.offered);
    reg->GetCounter("sim.shed")->Add(result.summary.shed);
    reg->GetCounter("sim.departures")->Add(result.summary.departures);
    reg->GetGauge("sim.loss_ratio")->Set(result.summary.loss_ratio);
    reg->GetGauge("sim.mean_delay")->Set(result.summary.mean_delay);
    // timeline.csv / timeline.jsonl were streamed row-by-row through the
    // loop's TimelineSink path; nothing left to export here.
    telemetry->Stop();
  }
  return result;
}

}  // namespace ctrlshed
