#include "runner/networks.h"

#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/sim_time.h"

namespace ctrlshed {

namespace {

// Descriptor of one chain position: 'm' map, 'f' filter (with selectivity),
// 'u' union.
struct ChainSpec {
  char kind;
  double sel;
};

// Operator name "<kind><index>". Built with append() rather than
// operator+: GCC 12's -O2 inliner raises a spurious -Wrestrict on the
// rvalue string operator+ overloads, and the warnings CI job compiles
// with -Werror.
std::string OpName(char kind, int index) {
  std::string name(1, kind);
  name.append(std::to_string(index));
  return name;
}

}  // namespace

void BuildIdentificationNetwork(QueryNetwork* net, double target_entry_cost) {
  CS_CHECK(net != nullptr);
  CS_CHECK_MSG(target_entry_cost > 0.0, "target cost must be positive");

  // 14 operators; filters keep the chain's selectivity profile stable
  // because payload values are uniform in [0,1].
  const std::vector<ChainSpec> specs = {
      {'m', 1.0}, {'f', 0.90}, {'m', 1.0}, {'f', 0.80}, {'m', 1.0},
      {'u', 1.0}, {'f', 0.85}, {'m', 1.0}, {'f', 0.90}, {'m', 1.0},
      {'m', 1.0}, {'f', 0.95}, {'m', 1.0}, {'m', 1.0},
  };

  // Expected number of operator invocations per entry tuple with uniform
  // per-operator cost: sum of reach probabilities.
  double expected_invocations = 0.0;
  double reach = 1.0;
  for (const ChainSpec& s : specs) {
    expected_invocations += reach;
    reach *= s.sel;
  }
  const double cost_each = target_entry_cost / expected_invocations;

  std::vector<OperatorBase*> ops;
  ops.reserve(specs.size());
  int idx = 1;
  for (const ChainSpec& s : specs) {
    const std::string name = OpName(s.kind, idx++);
    OperatorBase* op = nullptr;
    switch (s.kind) {
      case 'm':
        op = net->Add(std::make_unique<MapOp>(name, cost_each));
        break;
      case 'f':
        op = net->Add(std::make_unique<FilterOp>(name, cost_each, s.sel));
        break;
      case 'u':
        op = net->Add(std::make_unique<UnionOp>(name, cost_each));
        break;
      default:
        CS_CHECK_MSG(false, "unknown chain op kind");
    }
    ops.push_back(op);
  }
  for (size_t i = 0; i + 1 < ops.size(); ++i) ops[i]->ConnectTo(ops[i + 1]);
  net->AddEntry(0, ops.front());
  net->Finalize();

  // The scaling must land exactly on the target.
  const double got = net->MeanEntryCost();
  CS_CHECK_MSG(got > 0.999 * target_entry_cost && got < 1.001 * target_entry_cost,
               "identification network cost scaling failed");
}

void BuildBranchedNetwork(QueryNetwork* net, double target_entry_cost) {
  CS_CHECK(net != nullptr);
  CS_CHECK_MSG(target_entry_cost > 0.0, "target cost must be positive");

  // Shape of the paper's Fig. 2: S1 feeds query I; S2 enters at two points
  // (operators of query I and II); S3 feeds query III which joins with a
  // branch of query II. Built with unit costs first, then rescaled.
  const double u = 1.0;  // placeholder unit cost, rescaled below

  auto* f1 = net->Add(std::make_unique<FilterOp>("f1", u, 0.9));
  auto* m2 = net->Add(std::make_unique<MapOp>("m2", u));
  auto* f3 = net->Add(std::make_unique<FilterOp>("f3", u, 0.8));
  auto* f4 = net->Add(std::make_unique<FilterOp>("f4", u, 0.7));
  auto* u5 = net->Add(std::make_unique<UnionOp>("u5", u));
  auto* m6 = net->Add(std::make_unique<MapOp>("m6", u));
  auto* a7 = net->Add(std::make_unique<WindowAggregateOp>(
      "agg7", u, /*window_size=*/8, WindowAggregateOp::Kind::kMean));
  auto* m8 = net->Add(std::make_unique<MapOp>("m8", u));
  // Join sized so the expected fan-out stays ~1 at the ~50-100 tuples/s
  // rates the examples drive (matches ~ rate x window x 2 band).
  auto* j9 = net->Add(std::make_unique<SlidingJoinOp>(
      "join9", u, /*window_seconds=*/0.5, /*band=*/0.02,
      /*expected_selectivity=*/1.0));
  auto* m10 = net->Add(std::make_unique<MapOp>("m10", u));
  auto* f11 = net->Add(std::make_unique<FilterOp>("f11", u, 0.85));
  auto* m12 = net->Add(std::make_unique<MapOp>("m12", u));

  // Query I: S1 -> f1 -> u5 -> m6 -> agg7 -> m8 (sink).
  f1->ConnectTo(u5);
  u5->ConnectTo(m6);
  m6->ConnectTo(a7);
  a7->ConnectTo(m8);

  // Query II: S2 -> m2 -> (u5 shared with query I) and S2 -> f3 -> j9.
  m2->ConnectTo(u5);
  f3->ConnectTo(j9, /*port=*/0);

  // Query III: S3 -> f4 -> j9 (other side) -> m10 -> f11 -> m12 (sink).
  f4->ConnectTo(j9, /*port=*/1);
  j9->ConnectTo(m10);
  m10->ConnectTo(f11);
  f11->ConnectTo(m12);

  net->AddEntry(0, f1);
  net->AddEntry(1, m2);
  net->AddEntry(1, f3);  // S2 enters the network at two points
  net->AddEntry(2, f4);
  net->FinalizeWithMeanEntryCost(target_entry_cost);
}

void BuildUniformChain(QueryNetwork* net, int num_ops, double target_entry_cost) {
  CS_CHECK(net != nullptr);
  CS_CHECK_MSG(num_ops > 0, "need at least one operator");
  const double cost_each = target_entry_cost / num_ops;
  OperatorBase* prev = nullptr;
  for (int i = 0; i < num_ops; ++i) {
    auto* op = net->Add(std::make_unique<MapOp>(OpName('m', i + 1), cost_each));
    if (prev != nullptr) prev->ConnectTo(op);
    prev = op;
  }
  net->AddEntry(0, net->Operator(0));
  net->Finalize();
}

}  // namespace ctrlshed
