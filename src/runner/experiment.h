#ifndef CTRLSHED_RUNNER_EXPERIMENT_H_
#define CTRLSHED_RUNNER_EXPERIMENT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "control/ctrl_controller.h"
#include "control/pole_placement.h"
#include "control/rate_predictor.h"
#include "engine/engine.h"
#include "metrics/qos_metrics.h"
#include "metrics/recorder.h"
#include "telemetry/health.h"
#include "telemetry/telemetry.h"
#include "workload/arrival_source.h"
#include "workload/traces.h"

namespace ctrlshed {

/// Load shedding policy under test.
enum class Method {
  kNone,      ///< No shedding (uncontrolled run; system identification).
  kCtrl,      ///< The paper's pole-placement feedback controller.
  kBaseline,  ///< Naive model-inverting feedback (paper's BASELINE).
  kAurora,    ///< Open-loop Aurora/Borealis shedder.
  kPi,        ///< Textbook PI controller on the same feedback (extension).
};

/// Input workload shape.
enum class WorkloadKind {
  kWeb, kPareto, kMmpp, kStep, kSine, kRamp, kConstant,
};

/// Full description of one closed-loop experiment. Defaults reproduce the
/// paper's standard setup: 400 s runs, T = 1 s, yd = 2 s, H = 0.97, an
/// identification network whose capacity threshold is ~190 tuples/s.
struct ExperimentConfig {
  Method method = Method::kCtrl;
  WorkloadKind workload = WorkloadKind::kWeb;

  SimTime duration = 400.0;
  SimTime period = 1.0;        ///< Control period T.
  double target_delay = 2.0;   ///< yd, seconds.

  double headroom_true = 0.97; ///< Engine's actual headroom.
  double headroom_est = 0.97;  ///< H the monitor/controllers believe in.
  double capacity_rate = 190.0;///< Tuples/s the CPU can sustain at nominal
                               ///< cost; pins the model constant c.

  bool use_queue_shedder = false;  ///< In-network shedding actuator.
  bool cost_aware_shedding = false;  ///< LSRM-flavored victim selection.
  bool vary_cost = false;          ///< Apply the Fig. 14 cost trace.
  CostTraceParams cost_params;
  SchedulerKind scheduler = SchedulerKind::kRoundRobin;

  // Workload parameters (the member matching `workload` is used).
  ParetoTraceParams pareto;
  WebTraceParams web;
  MmppTraceParams mmpp;
  double step_low = 10.0, step_high = 300.0;
  SimTime step_at = 10.0;
  double sine_lo = 0.0, sine_hi = 400.0;
  SimTime sine_period = 100.0;
  double ramp_from = 100.0, ramp_to = 400.0;
  double constant_rate = 150.0;
  ArrivalSource::Spacing spacing = ArrivalSource::Spacing::kPoisson;

  // Controller details.
  ControllerGains gains = DesignPolePlacement(0.7, 0.7, -0.8);
  bool anti_windup = true;
  FeedbackSignal ctrl_feedback = FeedbackSignal::kVirtualQueue;
  /// Arrival-rate forecast feeding the actuator (Eq. 13 uses last-value).
  PredictorKind predictor = PredictorKind::kLastValue;
  /// Online headroom estimation (adaptive-control extension).
  bool adapt_headroom = false;
  /// 1.0 = use the raw per-period cost measurement, the paper's
  /// "estimate c(k) with c(k-1)". Lower values smooth it (extension).
  double cost_ewma = 1.0;
  /// Cost-estimation noise (log-sigma). The performance comparisons use
  /// 0.1 to match the ~10% estimation-error band real Borealis shows in
  /// the paper's Figs. 6B/7B; identification runs use 0.
  double estimation_noise = 0.0;

  /// Setpoint schedule: (time, new yd) pairs applied during the run
  /// (Fig. 18 uses {(150, 3.0), (300, 5.0)} with target_delay = 1.0).
  std::vector<std::pair<SimTime, double>> setpoint_schedule;

  /// Optional per-departure observer (system identification).
  DepartureCallback departure_observer;

  /// Observability: an empty dir disables everything; a set dir makes the
  /// run write trace.json (spans), metrics.jsonl (periodic registry
  /// snapshots), and timeline.csv/.jsonl (the per-period control-loop
  /// export) into it. Shared by the sim and rt harnesses.
  TelemetryOptions telemetry;

  uint64_t seed = 42;
};

/// Everything a bench/test needs from one run.
struct ExperimentResult {
  QosSummary summary;
  Recorder recorder;        ///< Per-period closed-loop trace.
  RateTrace arrival_trace;  ///< The offered-rate trace that was used.
  double nominal_cost = 0.0;  ///< Model constant c of the built network.
  HealthReport health;      ///< Health verdict at the end of the run.
};

/// Builds the standard plant (identification network + engine + workload +
/// chosen controller/shedder), runs it for `config.duration` simulated
/// seconds, and returns the metrics.
ExperimentResult RunExperiment(const ExperimentConfig& config);

/// The arrival-rate trace `config` describes (used by RunExperiment, and
/// exposed for the Fig. 13 trace plots).
RateTrace BuildArrivalTrace(const ExperimentConfig& config);

}  // namespace ctrlshed

#endif  // CTRLSHED_RUNNER_EXPERIMENT_H_
