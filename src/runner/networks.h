#ifndef CTRLSHED_RUNNER_NETWORKS_H_
#define CTRLSHED_RUNNER_NETWORKS_H_

#include "engine/query_network.h"

namespace ctrlshed {

/// Builds the 14-operator identification network of Section 4.2 into `net`
/// (one source, a chain of maps/filters/union with fixed selectivities,
/// uniform per-operator cost) and finalizes it. Operator costs are scaled
/// so that the expected per-tuple cost is exactly `target_entry_cost`
/// seconds — the paper pins the aggregate constraint (a ~190 tuples/s
/// capacity threshold, i.e. c ~ 5.26 ms at H = 1) but omits the network
/// details.
void BuildIdentificationNetwork(QueryNetwork* net, double target_entry_cost);

/// Builds a branched multi-query network in the shape of the paper's
/// Fig. 2: three sources, two queries sharing operators, a fork, a union,
/// a windowed aggregate and a sliding join. Used by examples and tests
/// that exercise branched execution paths. Costs are scaled so the mean
/// entry cost is `target_entry_cost`.
void BuildBranchedNetwork(QueryNetwork* net, double target_entry_cost);

/// Builds a trivial `num_ops`-operator chain of maps with uniform cost and
/// no filtering; expected per-tuple cost is exactly `target_entry_cost`.
/// The delay model of Eq. (1)/(2) holds exactly on this network.
void BuildUniformChain(QueryNetwork* net, int num_ops, double target_entry_cost);

}  // namespace ctrlshed

#endif  // CTRLSHED_RUNNER_NETWORKS_H_
