#include "net/socket_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/macros.h"

namespace ctrlshed {

void IgnoreSigPipe() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa {};
    sa.sa_handler = SIG_IGN;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGPIPE, &sa, nullptr);
  });
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  CS_CHECK_MSG(flags >= 0, "fcntl(F_GETFL) failed");
  CS_CHECK_MSG(fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "fcntl(F_SETFL, O_NONBLOCK) failed");
}

int CreateListener(const std::string& bind_ip, int port, int* bound_port,
                   std::string* error) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket() failed";
    return -1;
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, bind_ip.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad bind address " + bind_ip;
    close(fd);
    return -1;
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 64) != 0) {
    if (error != nullptr) {
      *error = "cannot listen on " + bind_ip + ": " + std::strerror(errno);
    }
    close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    if (error != nullptr) *error = "getsockname failed";
    close(fd);
    return -1;
  }
  if (bound_port != nullptr) *bound_port = ntohs(addr.sin_port);
  return fd;
}

int ConnectWithRetry(const std::string& host, int port,
                     double deadline_wall_seconds) {
  IgnoreSigPipe();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return -1;

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(deadline_wall_seconds));
  while (true) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    close(fd);
    if (std::chrono::steady_clock::now() >= deadline) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace ctrlshed
