#ifndef CTRLSHED_NET_FRAME_CLIENT_H_
#define CTRLSHED_NET_FRAME_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "net/frame.h"

namespace ctrlshed {

/// Blocking TCP client for the frame protocol: one reader thread decodes
/// inbound frames into a handler, Send() serializes writers through a
/// mutex. Used by cluster nodes for the control channel (reports out,
/// actuations in) and by `ctrlshed feed` for tuple ingress (send-only).
///
/// A send/recv failure (peer died) flips connected() to false and stays
/// there; callers poll it and decide whether to keep running standalone
/// (nodes keep local shedding when the controller is gone).
class FrameClient {
 public:
  using FrameHandler = std::function<void(const Frame&)>;

  FrameClient() = default;
  ~FrameClient();

  /// Must be installed before Connect; runs on the reader thread.
  void OnFrame(FrameHandler handler);

  /// Connects to host:port, retrying for up to `timeout_wall_seconds`.
  bool Connect(const std::string& host, int port,
               double timeout_wall_seconds = 5.0);

  /// Queues nothing: writes the already-framed bytes synchronously
  /// (MSG_NOSIGNAL, mutex-serialized). Returns false once disconnected.
  bool Send(const std::string& bytes);

  void Close();

  bool connected() const { return connected_.load(std::memory_order_acquire); }
  uint64_t frames_received() const { return frames_received_.load(); }
  /// Nonzero when the peer stream desynced (connection is then closed).
  uint64_t corrupt_streams() const { return corrupt_streams_.load(); }

 private:
  void ReadLoop();

  FrameHandler on_frame_;
  int fd_ = -1;
  std::thread reader_;
  std::mutex send_mu_;
  std::atomic<bool> connected_{false};
  std::atomic<bool> closing_{false};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> corrupt_streams_{0};
};

}  // namespace ctrlshed

#endif  // CTRLSHED_NET_FRAME_CLIENT_H_
