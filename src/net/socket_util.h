#ifndef CTRLSHED_NET_SOCKET_UTIL_H_
#define CTRLSHED_NET_SOCKET_UTIL_H_

#include <string>

namespace ctrlshed {

/// Installs SIG_IGN for SIGPIPE once per process (idempotent, thread-safe).
/// Every send() in the tree also passes MSG_NOSIGNAL; this catches any
/// other path (e.g. a stdio write to a dead pipe) so an abruptly
/// disconnected peer can never kill a live run.
void IgnoreSigPipe();

/// Puts `fd` into non-blocking mode; aborts on fcntl failure.
void SetNonBlocking(int fd);

/// Creates a listening TCP socket bound to `bind_ip:port` (port 0 picks an
/// ephemeral port). Returns the fd and stores the bound port in
/// `*bound_port`. Returns -1 with an explanation in `*error` on failure.
int CreateListener(const std::string& bind_ip, int port, int* bound_port,
                   std::string* error);

/// Blocking connect to host:port, retrying until `deadline_wall_seconds`
/// of wall time elapse (covers the node-starts-before-controller race in
/// scripts). Returns the connected fd or -1.
int ConnectWithRetry(const std::string& host, int port,
                     double deadline_wall_seconds);

}  // namespace ctrlshed

#endif  // CTRLSHED_NET_SOCKET_UTIL_H_
