#include "net/frame_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "common/macros.h"
#include "net/socket_util.h"

namespace ctrlshed {

namespace {
double NowWall() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

struct FrameServer::Conn {
  uint64_t id = 0;
  int fd = -1;
  FrameDecoder decoder{kMaxFramePayload};
  std::string out;
  bool closed = false;

  explicit Conn(size_t max_payload) : decoder(max_payload) {}
};

FrameServer::FrameServer(FrameServerOptions options)
    : options_(std::move(options)) {}

FrameServer::~FrameServer() { Stop(); }

void FrameServer::OnFrame(FrameHandler handler) {
  CS_CHECK_MSG(!started_.load(), "handlers must be set before Start");
  on_frame_ = std::move(handler);
}

void FrameServer::OnDisconnect(DisconnectHandler handler) {
  CS_CHECK_MSG(!started_.load(), "handlers must be set before Start");
  on_disconnect_ = std::move(handler);
}

void FrameServer::Start() {
  CS_CHECK_MSG(!started_.load(), "FrameServer::Start called twice");
  IgnoreSigPipe();

  std::string error;
  listen_fd_ = CreateListener(options_.bind_address, options_.port, &port_,
                              &error);
  CS_CHECK_MSG(listen_fd_ >= 0, "frame server: cannot bind ingress port");
  SetNonBlocking(listen_fd_);

  CS_CHECK_MSG(pipe(wake_pipe_) == 0, "frame server: pipe failed");
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);

  started_.store(true);
  thread_ = std::thread([this] { Serve(); });
}

void FrameServer::Stop() {
  if (!started_.exchange(false)) return;
  stop_requested_.store(true);
  Wake();
  thread_.join();
  stop_requested_.store(false);

  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : conns_) {
    if (!c->closed) CloseConn(c.get());
  }
  conns_.clear();
  close(listen_fd_);
  close(wake_pipe_[0]);
  close(wake_pipe_[1]);
  listen_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;
}

void FrameServer::Wake() {
  const char b = 'w';
  [[maybe_unused]] ssize_t n = write(wake_pipe_[1], &b, 1);
}

bool FrameServer::Send(uint64_t conn_id, std::string bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Conn* target = nullptr;
    for (auto& c : conns_) {
      if (c->id == conn_id && !c->closed) {
        target = c.get();
        break;
      }
    }
    if (target == nullptr) return false;
    if (target->out.size() + bytes.size() > options_.max_out_buffer) {
      CloseConn(target);
      return false;
    }
    target->out += bytes;
  }
  Wake();
  return true;
}

void FrameServer::AcceptNew() {
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    SetNonBlocking(fd);
    std::lock_guard<std::mutex> lock(mu_);
    size_t active = 0;
    for (const auto& c : conns_) {
      if (!c->closed) ++active;
    }
    if (active >= static_cast<size_t>(options_.max_clients)) {
      close(fd);
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Conn>(options_.max_payload);
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conns_.push_back(std::move(conn));
  }
}

void FrameServer::HandleReadable(Conn* c,
                                 std::vector<PendingFrame>* decoded) {
  char buf[16384];
  while (true) {
    const ssize_t n = recv(c->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c->decoder.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      CloseConn(c);
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(c);
    break;
  }
  // Drain complete frames even when the peer just hung up: its final
  // batch is already buffered and must not be lost.
  Frame frame;
  while (true) {
    const FrameDecoder::Status st = c->decoder.Next(&frame);
    if (st == FrameDecoder::Status::kNeedMore) break;
    if (st == FrameDecoder::Status::kCorrupt) {
      // A byte stream that desyncs cannot be trusted again; count it and
      // cut the peer loose rather than guess at a resync point.
      corrupt_streams_.fetch_add(1, std::memory_order_relaxed);
      CloseConn(c);
      return;
    }
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    decoded->push_back({c->id, std::move(frame)});
  }
}

void FrameServer::FlushConn(Conn* c) {
  while (!c->out.empty()) {
    const ssize_t n = send(c->fd, c->out.data(), c->out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      c->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    CloseConn(c);
    return;
  }
}

// Requires mu_ held. The disconnect handler runs later, outside the lock,
// so handlers may call Send() freely.
void FrameServer::CloseConn(Conn* c) {
  if (c->closed) return;
  close(c->fd);
  c->fd = -1;
  c->closed = true;
  disconnected_.push_back(c->id);
}

void FrameServer::Serve() {
  bool draining = false;
  double drain_deadline = 0.0;
  while (true) {
    if (stop_requested_.load() && !draining) {
      draining = true;
      drain_deadline = NowWall() + options_.drain_timeout_wall;
    }

    std::vector<pollfd> fds;
    std::vector<Conn*> fd_conn;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    if (!draining) fds.push_back({listen_fd_, POLLIN, 0});
    bool pending_out = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& c : conns_) {
        if (c->closed) continue;
        short events = POLLIN;
        if (!c->out.empty()) {
          events |= POLLOUT;
          pending_out = true;
        }
        fds.push_back({c->fd, events, 0});
        fd_conn.push_back(c.get());
      }
    }

    if (draining && (!pending_out || NowWall() >= drain_deadline)) break;

    poll(fds.data(), fds.size(), draining ? 20 : 200);

    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    const size_t conn_base = draining ? 1 : 2;
    if (!draining && (fds[1].revents & POLLIN)) AcceptNew();

    std::vector<PendingFrame> decoded;
    std::vector<uint64_t> disconnects;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < fd_conn.size(); ++i) {
        Conn* c = fd_conn[i];
        const short re = fds[conn_base + i].revents;
        if (c->closed) continue;
        if (re & (POLLERR | POLLNVAL)) {
          CloseConn(c);
          continue;
        }
        // POLLHUP can accompany final buffered bytes; read first so a
        // producer's last batch before disconnect is not lost.
        if (re & (POLLIN | POLLHUP)) HandleReadable(c, &decoded);
        if (!c->closed && !c->out.empty()) FlushConn(c);
      }
      conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                  [](const std::unique_ptr<Conn>& c) {
                                    return c->closed;
                                  }),
                   conns_.end());
      disconnects.swap(disconnected_);
    }
    // Handlers run on this thread but outside mu_, so they may call
    // Send() (which locks) without deadlocking.
    for (const PendingFrame& pf : decoded) {
      if (on_frame_) on_frame_(pf.conn_id, pf.frame);
    }
    for (uint64_t id : disconnects) {
      if (on_disconnect_) on_disconnect_(id);
    }
  }
}

}  // namespace ctrlshed
